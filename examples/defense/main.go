// Defense walkthrough: run the paper's evasive Variant3 attacker
// against a victim under selective sedation and show the mechanism at
// work — the per-thread weighted averages the monitor maintains, the
// culprit reports raised to the OS, and the resulting execution-time
// breakdown (the attacker spends its life sedated, the victim barely
// notices).
package main

import (
	"fmt"
	"log"

	heatstroke "github.com/heatstroke-sim/heatstroke"
)

func main() {
	log.SetFlags(0)
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 12_000_000

	victim, err := heatstroke.SpecProgram("applu", 1)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := heatstroke.Variant(3)
	if err != nil {
		log.Fatal(err)
	}
	threads := []heatstroke.Thread{
		{Name: "applu", Prog: victim},
		{Name: "variant3", Prog: attacker},
	}

	s, err := heatstroke.NewSimulator(cfg, threads, heatstroke.Options{
		Policy:       heatstroke.PolicySelectiveSedation,
		WarmupCycles: 500_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Selective sedation vs. the evasive attacker (Variant3)")
	fmt.Println()
	fmt.Printf("%-10s %8s %14s %18s\n", "thread", "IPC", "RF rate/cyc", "time sedated")
	for _, tr := range res.Threads {
		_, _, sed := tr.Breakdown.Fractions()
		fmt.Printf("%-10s %8.2f %14.2f %17.1f%%\n", tr.Name, tr.IPC, tr.IntRegRate, sed*100)
	}

	fmt.Println()
	fmt.Printf("sedation actions: %d   resumes: %d   re-examinations: %d   emergencies: %d\n",
		res.Sedation.Sedations, res.Sedation.Resumes, res.Sedation.Reexaminations, res.Emergencies)

	if len(res.Reports) > 0 {
		fmt.Println()
		fmt.Println("OS reports (first 5):")
		for i, r := range res.Reports {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(res.Reports)-5)
				break
			}
			fmt.Printf("  cycle %9d: thread %d (%s) sedated for %s at %.1f accesses/cycle\n",
				r.Cycle, r.Thread, res.Threads[r.Thread].Name, r.Unit, r.Rate)
		}
	}

	// The monitor's live weighted averages at quantum end.
	fmt.Println()
	fmt.Println("final weighted averages at the integer register file:")
	for tid, tr := range res.Threads {
		fmt.Printf("  %-10s %.2f accesses/cycle\n", tr.Name, s.Monitor().Rate(tid, heatstroke.UnitIntReg))
	}
}
