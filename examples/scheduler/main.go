// Scheduler integration: an OS-level view of the defense (Section 3.3).
// Four tasks — three normal programs and one attacker — time-share a
// 2-context SMT. The hardware's selective sedation reports the culprit
// to the scheduler, which marks it ineligible; the remaining tasks then
// run unharmed.
package main

import (
	"fmt"
	"log"

	heatstroke "github.com/heatstroke-sim/heatstroke"
)

func main() {
	log.SetFlags(0)
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 6_000_000

	mk := func(name string, seed int64) *heatstroke.Task {
		prog, err := heatstroke.SpecProgram(name, seed)
		if err != nil {
			log.Fatal(err)
		}
		return &heatstroke.Task{Name: name, Prog: prog}
	}
	attackProg, err := heatstroke.Variant(2)
	if err != nil {
		log.Fatal(err)
	}
	tasks := []*heatstroke.Task{
		mk("gcc", 1),
		mk("crafty", 2),
		mk("applu", 3),
		{Name: "variant2", Prog: attackProg},
	}

	sched, err := heatstroke.NewScheduler(cfg, tasks, heatstroke.SchedulerOptions{
		Policy:              heatstroke.PolicySelectiveSedation,
		SuspendAfterReports: 12,
		WarmupCycles:        300_000,
	})
	if err != nil {
		log.Fatal(err)
	}

	const quanta = 8
	for q := 1; q <= quanta; q++ {
		res, err := sched.RunQuantum()
		if err != nil {
			log.Fatal(err)
		}
		names := make([]string, len(res.Threads))
		for i, tr := range res.Threads {
			names[i] = fmt.Sprintf("%s(%.2f)", tr.Name, tr.IPC)
		}
		fmt.Printf("quantum %d: ran %v  reports=%d emergencies=%d\n",
			q, names, len(res.Reports), res.Emergencies)
	}

	fmt.Println()
	fmt.Printf("%-10s %8s %8s %10s %10s\n", "task", "quanta", "IPC", "reports", "state")
	for _, task := range sched.Tasks() {
		state := "runnable"
		if task.Suspended {
			state = "SUSPENDED"
		}
		fmt.Printf("%-10s %8d %8.2f %10d %10s\n",
			task.Name, task.Quanta, task.IPC(cfg.Run.QuantumCycles), task.Reports, state)
	}
}
