// Quickstart: run one SPEC-like benchmark next to the paper's Variant2
// attacker under the three interesting regimes — no co-runner, attack
// under the stop-and-go base case, and attack under selective sedation —
// and print the victim's IPC for each (the essence of Figure 5).
package main

import (
	"fmt"
	"log"

	heatstroke "github.com/heatstroke-sim/heatstroke"
)

func main() {
	log.SetFlags(0)
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 8_000_000 // one scaled OS quantum

	victim, err := heatstroke.SpecProgram("crafty", 1)
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := heatstroke.Variant(2)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, threads []heatstroke.Thread, policy heatstroke.Policy) *heatstroke.Result {
		s, err := heatstroke.NewSimulator(cfg, threads, heatstroke.Options{
			Policy:       policy,
			WarmupCycles: 500_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s crafty IPC %.2f   emergencies %-3d stalled %4.1f%%\n",
			label, res.Threads[0].IPC, res.Emergencies,
			100*float64(res.StopGoCycles)/float64(res.Cycles))
		return res
	}

	fmt.Println("Heat Stroke quickstart (crafty vs. Variant2)")
	fmt.Println()
	solo := run("solo",
		[]heatstroke.Thread{{Name: "crafty", Prog: victim}},
		heatstroke.PolicyStopAndGo)
	attacked := run("under attack (stop-and-go)",
		[]heatstroke.Thread{{Name: "crafty", Prog: victim}, {Name: "variant2", Prog: attacker}},
		heatstroke.PolicyStopAndGo)
	cured := run("under attack (sedation)",
		[]heatstroke.Thread{{Name: "crafty", Prog: victim}, {Name: "variant2", Prog: attacker}},
		heatstroke.PolicySelectiveSedation)

	fmt.Println()
	fmt.Printf("heat stroke cost the victim %.0f%% of its throughput;\n",
		100*(1-attacked.Threads[0].IPC/solo.Threads[0].IPC))
	fmt.Printf("selective sedation restored it to %.0f%% of solo performance.\n",
		100*cured.Threads[0].IPC/solo.Threads[0].IPC)
}
