// Attack anatomy: build the paper's malicious code from its assembly
// listing, run it against a victim with only the stop-and-go base case,
// and trace the register file's temperature through the heat-stroke
// cycle — fast heating to the 358.5 K emergency, a long forced cooling
// stall, repeat.
package main

import (
	"fmt"
	"log"
	"strings"

	heatstroke "github.com/heatstroke-sim/heatstroke"
)

func main() {
	log.SetFlags(0)
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 12_000_000

	// The Figure 1 attacker, straight from its assembly. Renaming makes
	// the repeated adds independent, so they issue at the ALU limit and
	// hammer the integer register file.
	var sb strings.Builder
	sb.WriteString("L$1:\n")
	for i := 0; i < 48; i++ {
		sb.WriteString("\taddl $1, $2, $3\n")
	}
	sb.WriteString("\tbr L$1\n")
	attacker, err := heatstroke.Assemble("variant1", sb.String())
	if err != nil {
		log.Fatal(err)
	}

	victim, err := heatstroke.SpecProgram("gcc", 1)
	if err != nil {
		log.Fatal(err)
	}

	s, err := heatstroke.NewSimulator(cfg,
		[]heatstroke.Thread{
			{Name: "gcc", Prog: victim},
			{Name: "variant1", Prog: attacker},
		},
		heatstroke.Options{
			Policy:       heatstroke.PolicyStopAndGo,
			WarmupCycles: 500_000,
			TraceTemps:   true,
		})
	if err != nil {
		log.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Register-file temperature during the attack (one column per 400k cycles):")
	fmt.Println()
	printTrace(res.RFTrace, cfg.Thermal.EmergencyK)
	fmt.Println()
	fmt.Printf("emergencies: %d    pipeline stalled for cooling: %.1f%% of the quantum\n",
		res.Emergencies, 100*float64(res.StopGoCycles)/float64(res.Cycles))
	fmt.Printf("victim (gcc) IPC: %.2f    attacker IPC: %.2f\n",
		res.Threads[0].IPC, res.Threads[1].IPC)
	n, c, _ := res.Threads[0].Breakdown.Fractions()
	fmt.Printf("victim time: %.0f%% running, %.0f%% frozen by the attacker's hot spot\n", n*100, c*100)
}

// printTrace renders an ASCII strip chart of the temperature trace.
func printTrace(trace []float64, emergency float64) {
	if len(trace) == 0 {
		return
	}
	// Downsample to at most 72 columns.
	step := len(trace)/72 + 1
	var samples []float64
	for i := 0; i < len(trace); i += step {
		samples = append(samples, trace[i])
	}
	lo, hi := samples[0], samples[0]
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 1 {
		hi = lo + 1
	}
	const rows = 10
	for r := rows; r >= 0; r-- {
		level := lo + (hi-lo)*float64(r)/rows
		mark := "      "
		if level <= emergency && emergency < level+(hi-lo)/rows {
			mark = "EMERG>"
		}
		fmt.Printf("%s %6.1fK |", mark, level)
		for _, v := range samples {
			if v >= level {
				fmt.Print("#")
			} else {
				fmt.Print(" ")
			}
		}
		fmt.Println()
	}
}
