module github.com/heatstroke-sim/heatstroke

go 1.22
