package client_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// flaky429 serves n transient failures before succeeding, recording
// how many attempts it saw.
type flaky429 struct {
	fail     int32 // remaining failures
	code     int
	attempts int32
	retryHdr string
}

func (f *flaky429) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	atomic.AddInt32(&f.attempts, 1)
	if atomic.AddInt32(&f.fail, -1) >= 0 {
		if f.retryHdr != "" {
			w.Header().Set("Retry-After", f.retryHdr)
		}
		w.WriteHeader(f.code)
		json.NewEncoder(w).Encode(api.Error{Code: f.code, Message: "try later"})
		return
	}
	switch {
	case r.Method == http.MethodPost:
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(api.JobStatus{ID: "ok", Status: api.StatusQueued})
	default:
		json.NewEncoder(w).Encode(api.Stats{Submitted: 42})
	}
}

func fastRetry(attempts int) *client.RetryPolicy {
	return &client.RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

// TestRetryTransientStatuses: each of 429/502/503 is retried until
// success within the attempt budget; the call succeeds transparently.
func TestRetryTransientStatuses(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable} {
		h := &flaky429{fail: 2, code: code}
		ts := httptest.NewServer(h)
		c := client.New(ts.URL)
		c.Retry = fastRetry(4)
		st, err := c.Submit(context.Background(), api.JobRequest{Experiment: "fig3"})
		ts.Close()
		if err != nil {
			t.Fatalf("code %d: submit after retries: %v", code, err)
		}
		if st.ID != "ok" || atomic.LoadInt32(&h.attempts) != 3 {
			t.Fatalf("code %d: id=%q attempts=%d, want ok after 3", code, st.ID, h.attempts)
		}
	}
}

// TestRetryBudgetExhausted: when every attempt fails the final error
// carries the server's status, and exactly MaxAttempts requests were
// made — no unbounded spinning.
func TestRetryBudgetExhausted(t *testing.T) {
	h := &flaky429{fail: 100, code: http.StatusTooManyRequests}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	c.Retry = fastRetry(3)
	_, err := c.Submit(context.Background(), api.JobRequest{Experiment: "fig3"})
	if err == nil || !strings.Contains(err.Error(), "429") {
		t.Fatalf("want 429 error after exhausting budget, got %v", err)
	}
	if got := atomic.LoadInt32(&h.attempts); got != 3 {
		t.Fatalf("attempts = %d, want exactly MaxAttempts", got)
	}
}

// TestRetryDisabled: MaxAttempts 1 restores the old single-shot
// behaviour (a 429 surfaces straight to the caller).
func TestRetryDisabled(t *testing.T) {
	h := &flaky429{fail: 1, code: http.StatusTooManyRequests}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	c.Retry = &client.RetryPolicy{MaxAttempts: 1}
	if _, err := c.Submit(context.Background(), api.JobRequest{Experiment: "fig3"}); err == nil {
		t.Fatal("want immediate 429 with retries disabled")
	}
	if got := atomic.LoadInt32(&h.attempts); got != 1 {
		t.Fatalf("attempts = %d, want 1", got)
	}
}

// TestRetryHonorsRetryAfter: the server's Retry-After pacing is used
// instead of the backoff schedule.
func TestRetryHonorsRetryAfter(t *testing.T) {
	h := &flaky429{fail: 1, code: http.StatusServiceUnavailable, retryHdr: "1"}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	c.Retry = &client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 30 * time.Second}
	start := time.Now()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retried after %v; Retry-After: 1 demands ~1s", elapsed)
	}
}

// TestRetryContextBounded: a context cancelled mid-backoff aborts the
// retry loop promptly with the context's error.
func TestRetryContextBounded(t *testing.T) {
	h := &flaky429{fail: 100, code: http.StatusTooManyRequests, retryHdr: "30"}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	c.Retry = &client.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second, MaxDelay: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("want context-bounded failure, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("retry loop outlived its context")
	}
}

// TestNonRetryableStatusSurfaces: a 400 is the caller's problem, not a
// transient — exactly one attempt.
func TestNonRetryableStatusSurfaces(t *testing.T) {
	h := &flaky429{fail: 100, code: http.StatusBadRequest}
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := client.New(ts.URL)
	c.Retry = fastRetry(5)
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("want 400 error")
	}
	if got := atomic.LoadInt32(&h.attempts); got != 1 {
		t.Fatalf("attempts = %d, want 1 (400 is not retryable)", got)
	}
}
