// Package client is the typed Go client for the heatstroked
// experiment daemon (internal/server). It covers the full API:
// submitting content-addressed jobs, polling status, streaming live
// progress over SSE, fetching rendered artifacts, and listing the
// experiment registry. cmd/heatstroke's -server passthrough mode is
// built on it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// RetryPolicy governs the client's automatic retries of transient
// server responses: 429 (queue backpressure), 502, and 503. Retried
// requests are safe to repeat — the daemon content-addresses
// submissions, so a duplicate POST joins the original job rather than
// starting another simulation. Transport-level errors are NOT retried:
// a fleet coordinator wants an unreachable worker to surface
// immediately so it can re-dispatch, and plain callers see the real
// error.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first
	// (default 4; 1 disables retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms). Attempt
	// n waits a uniformly jittered [0, BaseDelay*2^n), capped at
	// MaxDelay — full jitter, so synchronized clients (a sweep fan-out
	// hitting one 429ing daemon) spread out instead of re-colliding.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff wait (default 5s).
	MaxDelay time.Duration
}

// DefaultRetry is the policy used when Client.Retry is nil.
var DefaultRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}

// delay computes the jittered wait before retry number attempt
// (0-based), honouring a Retry-After header when the server sent one:
// an explicit Retry-After is the server's own pacing and is used
// verbatim (still capped at MaxDelay).
func (p RetryPolicy) delay(attempt int, retryAfter string) time.Duration {
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs >= 0 {
		d := time.Duration(secs) * time.Second
		if d > p.MaxDelay {
			return p.MaxDelay
		}
		return d
	}
	if t, err := http.ParseTime(retryAfter); err == nil {
		if d := time.Until(t); d > 0 {
			if d > p.MaxDelay {
				return p.MaxDelay
			}
			return d
		}
		return 0
	}
	ceil := p.BaseDelay << uint(attempt)
	if ceil <= 0 || ceil > p.MaxDelay {
		ceil = p.MaxDelay
	}
	return time.Duration(rand.Int63n(int64(ceil) + 1))
}

// retryableStatus reports whether a response status is worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests ||
		code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable
}

// Client talks to one heatstroked daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. SSE streams live on
	// long-running requests, so it must not set a global Timeout;
	// cancel via context instead.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling when the event stream
	// is unavailable (default 500ms).
	PollInterval time.Duration
	// Retry configures transient-failure retries (nil = DefaultRetry;
	// &RetryPolicy{MaxAttempts: 1} disables them). Every wait is
	// context-bounded: a cancelled context ends the retry budget
	// immediately, whatever the policy says.
	Retry *RetryPolicy
	// Token, when set, is sent as "Authorization: Bearer <Token>" on
	// every request (the daemon's fleet-token gate on /v1/warm).
	Token string
	// Tracer, when set, records client-side spans (client.submit,
	// client.wait, client.artifact) whose contexts propagate to the
	// daemon as W3C traceparent headers, parenting the server's job
	// span under the client's. A nil Tracer costs nothing: requests
	// still propagate any span context already present on the caller's
	// context, so the client composes with an ambient tracer either
	// way.
	Tracer *tracing.Tracer
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) retry() RetryPolicy {
	p := DefaultRetry
	if c.Retry != nil {
		p = *c.Retry
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetry.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetry.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetry.MaxDelay
	}
	return p
}

// traceCtx folds the client's Tracer into ctx (when set and ctx does
// not already carry one), so spans opened by client methods record
// into it.
func (c *Client) traceCtx(ctx context.Context) context.Context {
	if c.Tracer != nil && tracing.TracerFrom(ctx) == nil {
		ctx = tracing.ContextWithTracer(ctx, c.Tracer)
	}
	return ctx
}

// do issues one API request with the retry policy applied: transient
// statuses (429/502/503) are retried with jittered exponential backoff
// honouring Retry-After, until the policy's attempt budget or the
// context runs out. When the context carries a span (the caller's or
// one opened by a client method), its W3C traceparent rides on the
// request so the daemon joins the same trace. The caller owns the
// returned response body.
func (c *Client) do(ctx context.Context, method, path string, body []byte, contentType string) (*http.Response, error) {
	pol := c.retry()
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if c.Token != "" {
			req.Header.Set("Authorization", "Bearer "+c.Token)
		}
		if sc, ok := tracing.SpanContextFrom(ctx); ok && sc.Valid() {
			req.Header.Set("traceparent", sc.Traceparent())
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return nil, err
		}
		if !retryableStatus(resp.StatusCode) || attempt+1 >= pol.MaxAttempts {
			return resp, nil
		}
		wait := pol.delay(attempt, resp.Header.Get("Retry-After"))
		// Drain so the connection is reusable, then back off.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// apiError converts a non-2xx response into an error, decoding the
// server's JSON envelope when present.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Message != "" {
		return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, e.Message)
	}
	return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job. The returned status may already be terminal
// (Cached) or joined to an in-flight run (Coalesced); identical
// requests always return the same job ID. A 429 (queue backpressure)
// is retried under the client's RetryPolicy — resubmission is safe
// because identical requests content-address to one job.
func (c *Client) Submit(ctx context.Context, jr api.JobRequest) (*api.JobStatus, error) {
	ctx, sp := tracing.StartSpan(c.traceCtx(ctx), "client.submit")
	sp.SetAttr("experiment", jr.Experiment)
	st, err := c.submit(ctx, jr)
	if err == nil {
		sp.SetAttr("job", shortID(st.ID))
	}
	sp.EndErr(err)
	return st, err
}

func (c *Client) submit(ctx context.Context, jr api.JobRequest) (*api.JobStatus, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, "application/json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// Cancel aborts a queued or running job (DELETE /v1/jobs/{id}).
// Cancellation is asynchronous: the returned snapshot may still be
// running; poll or Wait for the terminal canceled state. The fleet
// coordinator uses this to put down the losing side of a hedged
// dispatch.
func (c *Client) Cancel(ctx context.Context, id string) (*api.JobStatus, error) {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// FetchWarm downloads a warmup snapshot (GET /v1/warm/{key}) in the
// sim.WriteState wire form, suitable for PutWarm on another daemon.
func (c *Client) FetchWarm(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/warm/"+key, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// PutWarm installs a warmup snapshot (PUT /v1/warm/{key}) on the
// daemon, making its warm key servable there without re-warming.
func (c *Client) PutWarm(ctx context.Context, key string, snapshot []byte) error {
	resp, err := c.do(ctx, http.MethodPut, "/v1/warm/"+key, snapshot, "application/octet-stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Artifact fetches a completed job's rendered table in the given
// format ("table", "json", or "csv"; empty means "table").
func (c *Client) Artifact(ctx context.Context, id, format string) ([]byte, error) {
	ctx, sp := tracing.StartSpan(c.traceCtx(ctx), "client.artifact")
	sp.SetAttr("job", shortID(id))
	path := "/v1/jobs/" + id + "/artifact"
	if format != "" {
		path += "?format=" + format
	}
	resp, err := c.do(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		err := apiError(resp)
		sp.EndErr(err)
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	sp.EndErr(err)
	return body, err
}

// Trace fetches every span of one trace known to the serving node
// (GET /v1/traces/{id}); id may be a 32-hex W3C trace id or a 64-hex
// job id. Against a fleet coordinator the response is stitched from
// the coordinator's own spans plus every reachable worker's.
func (c *Client) Trace(ctx context.Context, id string) (*api.Trace, error) {
	var tr api.Trace
	if err := c.getJSON(ctx, "/v1/traces/"+id, &tr); err != nil {
		return nil, err
	}
	return &tr, nil
}

// Experiments lists the daemon's experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]api.ExperimentInfo, error) {
	var infos []api.ExperimentInfo
	if err := c.getJSON(ctx, "/v1/experiments", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats fetches the daemon's serving counters.
func (c *Client) Stats(ctx context.Context) (*api.Stats, error) {
	var st api.Stats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the daemon's Prometheus text-format exposition
// (GET /metrics), returned verbatim.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthy checks the liveness endpoint. It deliberately skips the
// retry policy: health probes want the instantaneous truth.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Events consumes a job's SSE progress stream, calling fn for each
// event until the stream ends (terminal "done" event), fn returns an
// error, or ctx is cancelled. A nil return means the terminal event
// was received.
func (c *Client) Events(ctx context.Context, id string, fn func(api.Event) error) error {
	// The retrying path covers the connection handshake (a 503 from a
	// restarting daemon); once the stream is up, breaks surface to the
	// caller, which falls back to polling (see Wait).
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event-type lines and heartbeat comments
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("client: bad event frame: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("client: event stream: %w", err)
	}
	return fmt.Errorf("client: event stream ended without a terminal event")
}

// Wait blocks until the job reaches a terminal state, reporting live
// progress through onProgress (which may be nil). It prefers the SSE
// stream and falls back to status polling if streaming fails.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(api.Progress)) (*api.JobStatus, error) {
	ctx, sp := tracing.StartSpan(c.traceCtx(ctx), "client.wait")
	sp.SetAttr("job", shortID(id))
	st, err := c.wait(ctx, id, onProgress)
	sp.EndErr(err)
	return st, err
}

func (c *Client) wait(ctx context.Context, id string, onProgress func(api.Progress)) (*api.JobStatus, error) {
	err := c.Events(ctx, id, func(ev api.Event) error {
		if ev.Type == "progress" && ev.Progress != nil && onProgress != nil {
			onProgress(*ev.Progress)
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Whether the stream delivered the terminal event or broke, the
	// status endpoint is authoritative; poll it until terminal.
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if onProgress != nil {
			onProgress(st.Progress)
		}
		if st.Status.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
