// Package client is the typed Go client for the heatstroked
// experiment daemon (internal/server). It covers the full API:
// submitting content-addressed jobs, polling status, streaming live
// progress over SSE, fetching rendered artifacts, and listing the
// experiment registry. cmd/heatstroke's -server passthrough mode is
// built on it.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// Client talks to one heatstroked daemon.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. SSE streams live on
	// long-running requests, so it must not set a global Timeout;
	// cancel via context instead.
	HTTPClient *http.Client
	// PollInterval paces Wait's status polling when the event stream
	// is unavailable (default 500ms).
	PollInterval time.Duration
}

// New returns a client for the daemon at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError converts a non-2xx response into an error, decoding the
// server's JSON envelope when present.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e api.Error
	if err := json.Unmarshal(body, &e); err == nil && e.Message != "" {
		return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, e.Message)
	}
	return fmt.Errorf("client: server returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a job. The returned status may already be terminal
// (Cached) or joined to an in-flight run (Coalesced); identical
// requests always return the same job ID.
func (c *Client) Submit(ctx context.Context, jr api.JobRequest) (*api.JobStatus, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError(resp)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches a job's current status.
func (c *Client) Job(ctx context.Context, id string) (*api.JobStatus, error) {
	var st api.JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Artifact fetches a completed job's rendered table in the given
// format ("table", "json", or "csv"; empty means "table").
func (c *Client) Artifact(ctx context.Context, id, format string) ([]byte, error) {
	url := c.BaseURL + "/v1/jobs/" + id + "/artifact"
	if format != "" {
		url += "?format=" + format
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Experiments lists the daemon's experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]api.ExperimentInfo, error) {
	var infos []api.ExperimentInfo
	if err := c.getJSON(ctx, "/v1/experiments", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Stats fetches the daemon's serving counters.
func (c *Client) Stats(ctx context.Context) (*api.Stats, error) {
	var st api.Stats
	if err := c.getJSON(ctx, "/v1/stats", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Metrics fetches the daemon's Prometheus text-format exposition
// (GET /metrics), returned verbatim.
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	return io.ReadAll(resp.Body)
}

// Healthy checks the liveness endpoint.
func (c *Client) Healthy(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	return nil
}

// Events consumes a job's SSE progress stream, calling fn for each
// event until the stream ends (terminal "done" event), fn returns an
// error, or ctx is cancelled. A nil return means the terminal event
// was received.
func (c *Client) Events(ctx context.Context, id string, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue // event-type lines and heartbeat comments
		}
		var ev api.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			return fmt.Errorf("client: bad event frame: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("client: event stream: %w", err)
	}
	return fmt.Errorf("client: event stream ended without a terminal event")
}

// Wait blocks until the job reaches a terminal state, reporting live
// progress through onProgress (which may be nil). It prefers the SSE
// stream and falls back to status polling if streaming fails.
func (c *Client) Wait(ctx context.Context, id string, onProgress func(api.Progress)) (*api.JobStatus, error) {
	err := c.Events(ctx, id, func(ev api.Event) error {
		if ev.Type == "progress" && ev.Progress != nil && onProgress != nil {
			onProgress(*ev.Progress)
		}
		return nil
	})
	if err != nil && ctx.Err() != nil {
		return nil, ctx.Err()
	}
	// Whether the stream delivered the terminal event or broke, the
	// status endpoint is authoritative; poll it until terminal.
	interval := c.PollInterval
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if onProgress != nil {
			onProgress(st.Progress)
		}
		if st.Status.Terminal() {
			return st, nil
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}
