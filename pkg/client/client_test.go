package client_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/server"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

func startDaemon(t *testing.T) *client.Client {
	t.Helper()
	s, err := server.New(server.Options{
		BaseConfig: func() config.Config {
			cfg := config.Default()
			cfg.Run.QuantumCycles = 60_000
			return cfg
		},
		Version: "client-test",
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return client.New(ts.URL + "/") // trailing slash is normalized away
}

func TestClientEndToEnd(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := c.Healthy(ctx); err != nil {
		t.Fatalf("healthy: %v", err)
	}
	infos, err := c.Experiments(ctx)
	if err != nil || len(infos) != 17 {
		t.Fatalf("experiments: %d, %v", len(infos), err)
	}

	seed := int64(7)
	req := api.JobRequest{
		Experiment: "fig3",
		Benchmarks: []string{"crafty"},
		Quantum:    60_000,
		Warmup:     1_000,
		Seed:       &seed,
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Status.Terminal() {
		t.Fatalf("submit status: %+v", st)
	}

	// Wait over the SSE stream; progress must be monotonic.
	last := -1
	final, err := c.Wait(ctx, st.ID, func(p api.Progress) {
		if p.Completed < last {
			t.Errorf("progress regressed: %d -> %d", last, p.Completed)
		}
		last = p.Completed
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.StatusDone || final.Summary == nil || final.Summary.Succeeded != 4 {
		t.Fatalf("final: %+v", final)
	}
	if last != 4 {
		t.Errorf("last observed progress = %d, want 4", last)
	}

	// The artifact is fetchable in every format.
	for _, format := range []string{"", "table", "json", "csv"} {
		b, err := c.Artifact(ctx, st.ID, format)
		if err != nil {
			t.Fatalf("artifact %q: %v", format, err)
		}
		if !strings.Contains(string(b), "crafty") {
			t.Errorf("artifact %q missing data:\n%s", format, b)
		}
	}

	// Resubmitting is a cache hit with the same content address.
	st2, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.ID != st.ID {
		t.Fatalf("resubmit: %+v", st2)
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 1 || stats.CacheHits != 1 {
		t.Errorf("stats: %+v", stats)
	}
}

func TestClientErrors(t *testing.T) {
	c := startDaemon(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.Submit(ctx, api.JobRequest{Experiment: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("bad experiment err = %v", err)
	}
	if _, err := c.Job(ctx, "missing"); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("missing job err = %v", err)
	}
	if _, err := c.Artifact(ctx, "missing", "csv"); err == nil {
		t.Error("missing artifact should error")
	}
	if err := c.Events(ctx, "missing", func(api.Event) error { return nil }); err == nil {
		t.Error("missing events should error")
	}
}
