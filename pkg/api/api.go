// Package api defines the wire types of the heatstroked experiment
// daemon: job requests, job status, progress snapshots, and the
// experiment listing. Both the server (internal/server) and the typed
// client (pkg/client) speak these types, so the JSON encoding here is
// the protocol.
//
// Endpoints (all JSON unless noted):
//
//	POST   /v1/jobs                  submit a job; identical requests are
//	                                 content-addressed to one result
//	GET    /v1/jobs/{id}             status + summary
//	DELETE /v1/jobs/{id}             cancel a queued or running job
//	GET    /v1/jobs/{id}/artifact    rendered table (?format=table|json|csv)
//	GET    /v1/jobs/{id}/events      SSE progress stream
//	GET    /v1/experiments           experiment registry listing
//	GET    /v1/traces/{id}           the spans of one trace (trace id or
//	                                 job id; fleet-stitched on the
//	                                 coordinator)
//	GET    /v1/stats                 serving counters
//	GET    /v1/warm/{key}            warmup snapshot gob (fleet shipping)
//	PUT    /v1/warm/{key}            install a warmup snapshot
//	GET    /healthz, GET /readyz     liveness / readiness
//
// The fleet coordinator (internal/fleet, cmd/heatstroke-fleet) serves
// the same job surface plus worker membership:
//
//	GET    /v1/workers               registered workers + health
//	POST   /v1/workers               register a worker {"url": ...}
//	DELETE /v1/workers?url=...       deregister a worker
package api

import (
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// JobRequest describes one experiment run. Every field except
// Experiment is optional; omitted fields take the daemon's defaults.
// Two requests that resolve to the same parameters share one cache
// entry — and one in-flight simulation — regardless of how many
// clients submit them.
type JobRequest struct {
	// Experiment names one of the registry's experiments (see
	// GET /v1/experiments).
	Experiment string `json:"experiment"`
	// Benchmarks selects the SPEC-like workload subset (default: all).
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Quantum overrides the per-run cycle count (0 = config default).
	Quantum int64 `json:"quantum,omitempty"`
	// Warmup overrides the unmeasured warmup prefix (0 = default).
	Warmup int64 `json:"warmup,omitempty"`
	// Scale overrides the thermal scale factor (0 = config default).
	Scale float64 `json:"scale,omitempty"`
	// Cores overrides the die's core count (0 = config default, which
	// is 1 for single-core experiments and what multi-core experiments
	// raise to 2). More than one core requires the grid solver.
	Cores int `json:"cores,omitempty"`
	// Solver overrides the thermal solver: "lumped" (single-core fast
	// path) or "grid" ("" = config default).
	Solver string `json:"solver,omitempty"`
	// Seed seeds workload generation. A present-but-zero seed is
	// honoured as literal seed 0; an absent seed means the config
	// default (the pointer distinguishes the two).
	Seed *int64 `json:"seed,omitempty"`
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// Progress is a live snapshot of a running job's sweep.
type Progress struct {
	// Completed / Total count the sweep's finished vs planned
	// simulations. Completed is monotonically non-decreasing.
	Completed int `json:"completed"`
	Total     int `json:"total"`
	// PeakTempK is the hottest sensor observation across completed
	// simulations so far (0 until the first one finishes).
	PeakTempK float64 `json:"peak_temp_k,omitempty"`
	// CyclesPerSec is the most recent simulation's speed.
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
	// SimCycles is the total cycles simulated so far.
	SimCycles float64 `json:"sim_cycles,omitempty"`
}

// JobStatus is the server's view of one job.
type JobStatus struct {
	// ID is the job's content address: a digest of (experiment,
	// resolved config, seed, benchmarks, code version). Identical
	// requests get identical IDs.
	ID         string     `json:"id"`
	Experiment string     `json:"experiment"`
	Request    JobRequest `json:"request"`
	Status     Status     `json:"status"`
	// Cached is set on submit responses served from a completed cache
	// entry (no new simulation); Coalesced on submit responses joined
	// to an identical in-flight job.
	Cached    bool     `json:"cached,omitempty"`
	Coalesced bool     `json:"coalesced,omitempty"`
	Progress  Progress `json:"progress"`
	// Summary is the sweep's execution summary: complete for done
	// jobs, partial (rebuilt from progress events) for jobs cancelled
	// mid-flight.
	Summary *sweep.Summary `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
	// TraceID is the W3C trace id (32 hex chars) of the job's
	// distributed trace, resolvable at GET /v1/traces/{id}. Empty when
	// the serving node runs with tracing disabled.
	TraceID string `json:"trace_id,omitempty"`
}

// Trace is the GET /v1/traces/{id} response: every span of one trace
// known to the serving node, sorted by start time. On a fleet
// coordinator the set is stitched from the coordinator's own spans
// plus every reachable worker's.
type Trace struct {
	TraceID string         `json:"trace_id"`
	Spans   []tracing.Span `json:"spans"`
}

// ExperimentInfo is one registry entry of GET /v1/experiments.
type ExperimentInfo struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
	// Cores is the experiment's default die core count (0 for entries
	// that run no simulations); Solver names the thermal solver it runs
	// on by default ("lumped" or "grid").
	Cores  int    `json:"cores,omitempty"`
	Solver string `json:"solver,omitempty"`
}

// Stats are the daemon's serving counters (GET /v1/stats).
type Stats struct {
	// Submitted counts POST /v1/jobs requests accepted (including
	// cache hits and coalesced joins); Runs counts sweeps actually
	// started. Runs <= Submitted, and the gap is work saved.
	Submitted int64 `json:"submitted"`
	Runs      int64 `json:"runs"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	Rejected  int64 `json:"rejected"` // 429 backpressure rejections
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Jobs      int   `json:"jobs"` // entries resident (cache + active)
	// Advertise is the address the daemon wants peers to reach it at
	// (the -advertise flag); empty when the daemon is not fleet-aware.
	Advertise string `json:"advertise,omitempty"`
	// WarmKeys lists the warmup-snapshot keys resident in the daemon's
	// warmup cache (memory or disk), so a fleet coordinator can
	// discover snapshot locations from a single stats poll instead of
	// probing /v1/warm/{key} per key.
	WarmKeys []string `json:"warm_keys,omitempty"`
}

// WorkerRegistration is the body of the coordinator's
// POST /v1/workers: one worker joining (or rejoining) the fleet.
type WorkerRegistration struct {
	// URL is the worker's base URL as the coordinator should dial it.
	URL string `json:"url"`
}

// WorkerInfo is the coordinator's view of one registered worker
// (GET /v1/workers, and embedded per-worker in FleetStats).
type WorkerInfo struct {
	URL string `json:"url"`
	// Name labels the worker in aggregated metrics and logs: the
	// worker's advertised address when it reports one, else URL.
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Stats is the worker's own /v1/stats snapshot from the last
	// successful poll (nil before the first one succeeds).
	Stats *Stats `json:"stats,omitempty"`
}

// FleetStats are the coordinator's serving counters plus every
// worker's latest stats (coordinator GET /v1/stats).
type FleetStats struct {
	// Submitted / CacheHits / Coalesced mirror the single-daemon
	// counters, observed at the coordinator's edge.
	Submitted int64 `json:"submitted"`
	CacheHits int64 `json:"cache_hits"`
	Coalesced int64 `json:"coalesced"`
	// Retries counts dispatch attempts after a worker failure; Hedges
	// counts straggler jobs speculatively duplicated onto a second
	// replica; HedgeWins counts hedges that finished first.
	Retries   int64 `json:"retries"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedge_wins"`
	// WarmShipped counts warmup snapshots copied between workers
	// before dispatch so warm-reuse hit rates survive resharding.
	WarmShipped int64 `json:"warm_shipped"`
	// Jobs counts job entries tracked by the coordinator.
	Jobs    int          `json:"jobs"`
	Workers []WorkerInfo `json:"workers"`
}

// Error is the JSON error envelope for non-2xx responses.
type Error struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

// Event is one SSE frame of GET /v1/jobs/{id}/events. Progress frames
// carry Progress; the final frame carries the terminal JobStatus.
type Event struct {
	// Type is "progress" or "done" (terminal, regardless of outcome).
	Type     string     `json:"type"`
	Progress *Progress  `json:"progress,omitempty"`
	Job      *JobStatus `json:"job,omitempty"`
}
