package api

import (
	"encoding/json"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

// ptr helps build optional fields.
func ptr[T any](v T) *T { return &v }

// roundTrip encodes v, decodes into a fresh value of the same type,
// and fails unless the two are deep-equal. The wire types carry no
// unexported or non-JSON state, so marshal→unmarshal must be lossless.
func roundTrip[T any](t *testing.T, v T) {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal %T: %v", v, err)
	}
	var got T
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("unmarshal %T: %v", v, err)
	}
	if !reflect.DeepEqual(v, got) {
		t.Errorf("%T round trip:\n in  %+v\n out %+v\n wire %s", v, v, got, b)
	}
}

func TestWireTypesRoundTrip(t *testing.T) {
	roundTrip(t, JobRequest{
		Experiment: "fig5",
		Benchmarks: []string{"crafty", "mcf"},
		Quantum:    60_000,
		Warmup:     1_000,
		Scale:      35,
		Seed:       ptr(int64(0)), // literal seed 0 must survive the wire
	})
	roundTrip(t, JobStatus{
		ID:         "deadbeef",
		Experiment: "fig5",
		Request:    JobRequest{Experiment: "fig5"},
		Status:     StatusRunning,
		Cached:     true,
		Coalesced:  true,
		Progress:   Progress{Completed: 3, Total: 9, PeakTempK: 356.5, CyclesPerSec: 1e6, SimCycles: 1.8e5},
		Summary: &sweep.Summary{
			Jobs:      9,
			Succeeded: 3,
			Metrics:   map[string]sweep.Agg{"peak_temp_k": {Count: 3, Sum: 1069.5, Max: 356.5, Min: 356.0}},
		},
		Error: "boom",
	})
	roundTrip(t, Stats{
		Submitted: 10, Runs: 4, CacheHits: 3, Coalesced: 2, Rejected: 1,
		Queued: 1, Running: 2, Jobs: 7,
		Advertise: "10.0.0.7:8080",
		WarmKeys:  []string{"aa", "bb"},
	})
	roundTrip(t, Event{Type: "progress", Progress: &Progress{Completed: 1, Total: 2}})
	roundTrip(t, Event{Type: "done", Job: &JobStatus{ID: "x", Status: StatusDone}})
	roundTrip(t, Error{Code: 429, Message: "queue full"})
	roundTrip(t, ExperimentInfo{Name: "fig3", Title: "t", Description: "d"})
	roundTrip(t, WorkerRegistration{URL: "http://w1:8080"})
	roundTrip(t, WorkerInfo{
		URL: "http://w1:8080", Name: "w1", Healthy: true,
		Stats: &Stats{Submitted: 1, WarmKeys: []string{"k"}},
	})
	roundTrip(t, FleetStats{
		Submitted: 5, CacheHits: 1, Coalesced: 1,
		Retries: 2, Hedges: 1, HedgeWins: 1, WarmShipped: 3, Jobs: 4,
		Workers: []WorkerInfo{{URL: "http://w1:8080", Name: "w1", Healthy: true}},
	})
}

// TestSeedPointerDistinguishesAbsentFromZero pins the protocol detail
// the server's seed round-tripping depends on: an absent seed and a
// literal zero seed must encode differently.
func TestSeedPointerDistinguishesAbsentFromZero(t *testing.T) {
	absent, _ := json.Marshal(JobRequest{Experiment: "fig3"})
	zero, _ := json.Marshal(JobRequest{Experiment: "fig3", Seed: ptr(int64(0))})
	if string(absent) == string(zero) {
		t.Fatalf("absent and zero seed encode identically: %s", absent)
	}
	var back JobRequest
	if err := json.Unmarshal(zero, &back); err != nil {
		t.Fatal(err)
	}
	if back.Seed == nil || *back.Seed != 0 {
		t.Fatalf("literal seed 0 lost on the wire: %+v", back.Seed)
	}
}

// TestUnknownFieldTolerance pins the protocol's forward compatibility:
// a newer peer may add fields, and an older one must ignore them
// rather than erroring — that is what lets coordinator and workers be
// upgraded independently. (encoding/json does this by default; the
// test exists so nobody "tightens" decoding with DisallowUnknownFields
// on a shared path without tripping it.)
func TestUnknownFieldTolerance(t *testing.T) {
	cases := []struct {
		name string
		into any
		wire string
	}{
		{"JobRequest", &JobRequest{}, `{"experiment":"fig3","benchmarks":["mcf"],"hedge_class":"gold","priority":9}`},
		{"JobStatus", &JobStatus{}, `{"id":"x","status":"done","placement":{"worker":"w1"},"attempt":2}`},
		{"Stats", &Stats{}, `{"submitted":3,"gpu_seconds":1.5,"warm_keys":["k"]}`},
		{"FleetStats", &FleetStats{}, `{"submitted":3,"workers":[{"url":"u","shard_epoch":7}],"ring_version":12}`},
		{"Event", &Event{}, `{"type":"progress","progress":{"completed":1,"total":2,"eta_s":3.5}}`},
	}
	for _, tc := range cases {
		if err := json.Unmarshal([]byte(tc.wire), tc.into); err != nil {
			t.Errorf("%s: unknown fields rejected: %v", tc.name, err)
		}
	}
	// Spot-check that known fields still landed.
	var st Stats
	if err := json.Unmarshal([]byte(`{"submitted":3,"future":true}`), &st); err != nil || st.Submitted != 3 {
		t.Fatalf("known field lost among unknown ones: %+v err=%v", st, err)
	}
}
