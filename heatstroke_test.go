package heatstroke_test

import (
	"strings"
	"testing"

	heatstroke "github.com/heatstroke-sim/heatstroke"
)

func TestPublicQuickstartFlow(t *testing.T) {
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 500_000

	victim, err := heatstroke.SpecProgram("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := heatstroke.Variant(2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := heatstroke.NewSimulator(cfg,
		[]heatstroke.Thread{
			{Name: "crafty", Prog: victim},
			{Name: "variant2", Prog: attacker},
		},
		heatstroke.Options{Policy: heatstroke.PolicySelectiveSedation, WarmupCycles: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 2 || res.Threads[0].Committed == 0 {
		t.Fatalf("unexpected result %+v", res.Threads)
	}
}

func TestPublicConfigs(t *testing.T) {
	d := heatstroke.DefaultConfig()
	p := heatstroke.PaperConfig()
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if p.Thermal.Scale != 1 {
		t.Error("paper config must be unscaled")
	}
}

func TestPublicAssemble(t *testing.T) {
	prog, err := heatstroke.Assemble("demo", "L$1:\taddl $1, $2, $3\n\tbr L$1\n")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 2 {
		t.Errorf("len = %d", prog.Len())
	}
	if _, err := heatstroke.Assemble("bad", "junk!"); err == nil {
		t.Error("bad assembly should fail")
	}
}

func TestPublicWorkloads(t *testing.T) {
	if len(heatstroke.SpecNames()) < 16 {
		t.Error("benchmark suite too small")
	}
	for v := 1; v <= 3; v++ {
		if _, err := heatstroke.Variant(v); err != nil {
			t.Errorf("variant %d: %v", v, err)
		}
	}
	if _, err := heatstroke.VariantForScale(2, 8); err != nil {
		t.Error(err)
	}
	if _, err := heatstroke.SpecProgram("nope", 1); err == nil {
		t.Error("unknown benchmark should fail")
	}
}

func TestPublicExperiment(t *testing.T) {
	if len(heatstroke.ExperimentNames()) != 17 {
		t.Errorf("experiments = %v", heatstroke.ExperimentNames())
	}
	cfg := heatstroke.DefaultConfig()
	cfg.Run.QuantumCycles = 200_000
	table, err := heatstroke.RunExperiment("table1", heatstroke.ExperimentOptions{Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "Table 1") {
		t.Error("table1 render wrong")
	}
}
