// Package stats provides the small aggregation helpers the experiment
// harness uses: means, geometric means, time breakdowns, and simple
// series containers.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs; non-positive values are
// clamped to a small epsilon so a single zero doesn't zero the mean.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x < 1e-12 {
			x = 1e-12
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Min and Max return the extrema of xs (0 for an empty slice).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (0 for an empty slice).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Breakdown is one thread's execution-time split over an OS quantum
// (the paper's Figure 6 categories).
type Breakdown struct {
	// NormalCycles is time the pipeline ran and the thread could fetch.
	NormalCycles int64
	// CoolingCycles is time lost to global stop-and-go stalls.
	CoolingCycles int64
	// SedationCycles is time the thread itself was sedated (fetch
	// gated) while the pipeline ran.
	SedationCycles int64
}

// Total returns the quantum length the breakdown covers.
func (b Breakdown) Total() int64 { return b.NormalCycles + b.CoolingCycles + b.SedationCycles }

// Fractions returns the three shares of the total (0 if empty).
func (b Breakdown) Fractions() (normal, cooling, sedation float64) {
	tot := float64(b.Total())
	if tot == 0 {
		return 0, 0, 0
	}
	return float64(b.NormalCycles) / tot, float64(b.CoolingCycles) / tot, float64(b.SedationCycles) / tot
}

// String formats the breakdown as percentages.
func (b Breakdown) String() string {
	n, c, s := b.Fractions()
	return fmt.Sprintf("normal %.1f%% cooling %.1f%% sedation %.1f%%", n*100, c*100, s*100)
}

// Degradation returns the relative slowdown of value vs baseline
// (e.g. IPC): 0.88 means an 88% loss.
func Degradation(baseline, value float64) float64 {
	if baseline <= 0 {
		return 0
	}
	d := 1 - value/baseline
	if d < 0 {
		return 0
	}
	return d
}
