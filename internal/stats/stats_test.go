package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
}

func TestGeoMean(t *testing.T) {
	if GeoMean(nil) != 0 {
		t.Error("empty geomean")
	}
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-9 {
		t.Errorf("geomean = %v", got)
	}
	// A zero must not zero the whole mean.
	if got := GeoMean([]float64{0, 4}); got <= 0 {
		t.Errorf("geomean with zero = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Error("min/max wrong")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max")
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{NormalCycles: 50, CoolingCycles: 30, SedationCycles: 20}
	if b.Total() != 100 {
		t.Error("total")
	}
	n, c, s := b.Fractions()
	if n != 0.5 || c != 0.3 || s != 0.2 {
		t.Errorf("fractions = %v %v %v", n, c, s)
	}
	if !strings.Contains(b.String(), "cooling 30.0%") {
		t.Errorf("string = %q", b.String())
	}
	var zero Breakdown
	n, c, s = zero.Fractions()
	if n != 0 || c != 0 || s != 0 {
		t.Error("zero breakdown fractions")
	}
}

// TestQuickBreakdownFractionsSumToOne property: the three fractions
// always sum to 1 for non-empty breakdowns.
func TestQuickBreakdownFractionsSumToOne(t *testing.T) {
	f := func(a, b, c uint16) bool {
		br := Breakdown{int64(a), int64(b), int64(c)}
		if br.Total() == 0 {
			return true
		}
		n, co, s := br.Fractions()
		return math.Abs(n+co+s-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegradation(t *testing.T) {
	if got := Degradation(2.0, 0.25); math.Abs(got-0.875) > 1e-12 {
		t.Errorf("degradation = %v", got)
	}
	if Degradation(0, 1) != 0 {
		t.Error("zero baseline")
	}
	if Degradation(1, 2) != 0 {
		t.Error("speedup clamps to 0")
	}
}
