package mem

import (
	"fmt"
	"slices"
)

// CacheState is the serializable state of one cache level. Geometry is
// carried implicitly by the slice lengths and checked on restore; the
// static fields (name, sets, assoc, latency) stay with the live cache.
type CacheState struct {
	Tags  []uint64
	Valid []bool
	Dirty []bool
	LRU   []uint64
	Clock uint64
	Stats CacheStats
}

// HierarchyState is the serializable state of the full memory system.
type HierarchyState struct {
	L1I CacheState
	L1D CacheState
	L2  CacheState
	// Banks is nil when interleaving is disabled.
	Banks           []int64
	BankQueueCycles uint64
}

// MemoryState is the serializable state of one functional memory image.
type MemoryState struct {
	Pages map[uint64][]int64
}

// Clone returns a deep copy of the cache state.
func (st CacheState) Clone() CacheState {
	out := st
	out.Tags = slices.Clone(st.Tags)
	out.Valid = slices.Clone(st.Valid)
	out.Dirty = slices.Clone(st.Dirty)
	out.LRU = slices.Clone(st.LRU)
	return out
}

// Clone returns a deep copy of the hierarchy state.
func (st HierarchyState) Clone() HierarchyState {
	out := st
	out.L1I = st.L1I.Clone()
	out.L1D = st.L1D.Clone()
	out.L2 = st.L2.Clone()
	out.Banks = slices.Clone(st.Banks)
	return out
}

// Clone returns a deep copy of the memory image state.
func (st MemoryState) Clone() MemoryState {
	if st.Pages == nil {
		return st
	}
	pages := make(map[uint64][]int64, len(st.Pages))
	for k, v := range st.Pages {
		pages[k] = slices.Clone(v)
	}
	return MemoryState{Pages: pages}
}

// Snapshot returns a deep copy of the cache's state.
func (c *Cache) Snapshot() CacheState {
	return CacheState{
		Tags:  append([]uint64(nil), c.tags...),
		Valid: append([]bool(nil), c.valid...),
		Dirty: append([]bool(nil), c.dirty...),
		LRU:   append([]uint64(nil), c.lru...),
		Clock: c.clock,
		Stats: c.Stats,
	}
}

// Restore loads st into c. The geometry (total line count) must match.
func (c *Cache) Restore(st CacheState) error {
	n := len(c.tags)
	if len(st.Tags) != n || len(st.Valid) != n || len(st.Dirty) != n || len(st.LRU) != n {
		return fmt.Errorf("mem: %s state has %d/%d/%d/%d lines, want %d",
			c.name, len(st.Tags), len(st.Valid), len(st.Dirty), len(st.LRU), n)
	}
	copy(c.tags, st.Tags)
	copy(c.valid, st.Valid)
	copy(c.dirty, st.Dirty)
	copy(c.lru, st.LRU)
	c.clock = st.Clock
	c.Stats = st.Stats
	return nil
}

// Snapshot returns a deep copy of the hierarchy's state.
func (h *Hierarchy) Snapshot() HierarchyState {
	st := HierarchyState{
		L1I:             h.L1I.Snapshot(),
		L1D:             h.L1D.Snapshot(),
		L2:              h.L2.Snapshot(),
		BankQueueCycles: h.BankQueueCycles,
	}
	if h.banks != nil {
		st.Banks = append([]int64(nil), h.banks...)
	}
	return st
}

// Restore loads st into h. Cache geometries and the bank count must
// match the live hierarchy's configuration.
func (h *Hierarchy) Restore(st HierarchyState) error {
	if err := h.L1I.Restore(st.L1I); err != nil {
		return err
	}
	if err := h.L1D.Restore(st.L1D); err != nil {
		return err
	}
	if err := h.L2.Restore(st.L2); err != nil {
		return err
	}
	if len(st.Banks) != len(h.banks) {
		return fmt.Errorf("mem: state has %d memory banks, want %d", len(st.Banks), len(h.banks))
	}
	copy(h.banks, st.Banks)
	h.BankQueueCycles = st.BankQueueCycles
	return nil
}

// Snapshot returns a deep copy of the memory image.
func (m *Memory) Snapshot() MemoryState {
	pages := make(map[uint64][]int64, len(m.pages))
	for k, v := range m.pages {
		pages[k] = append([]int64(nil), v...)
	}
	return MemoryState{Pages: pages}
}

// Restore replaces the memory image with a deep copy of st.
func (m *Memory) Restore(st MemoryState) error {
	pages := make(map[uint64][]int64, len(st.Pages))
	for k, v := range st.Pages {
		if len(v) != pageWords {
			return fmt.Errorf("mem: page %#x has %d words, want %d", k, len(v), pageWords)
		}
		pages[k] = append([]int64(nil), v...)
	}
	m.pages = pages
	return nil
}
