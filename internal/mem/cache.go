// Package mem implements the simulated memory system: set-associative
// LRU caches (split L1 instruction/data, shared L2) in front of a flat
// off-chip memory latency, plus the per-thread functional memory image
// programs execute against.
//
// Timing follows the paper's SimpleScalar substrate: caches are latency
// probes (an access returns the total latency to first use) and the L2
// is physically shared between SMT contexts, so threads conflict in its
// sets — the mechanism Variant2's nine-address conflict loop abuses.
package mem

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

// CacheStats counts cache events; one per cache level.
type CacheStats struct {
	Accesses   uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns misses per access, or 0 for an idle cache.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-allocate, write-back cache level
// with true-LRU replacement.
type Cache struct {
	name     string
	sets     int
	assoc    int
	lineBits uint
	lat      int

	tags  []uint64
	valid []bool
	dirty []bool
	lru   []uint64
	clock uint64

	Stats CacheStats
}

// NewCache builds a cache from its geometry.
func NewCache(name string, g config.CacheGeom) (*Cache, error) {
	if g.LineBytes <= 0 || g.LineBytes&(g.LineBytes-1) != 0 {
		return nil, fmt.Errorf("mem: %s line size %d must be a power of two", name, g.LineBytes)
	}
	sets := g.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: %s set count %d must be a positive power of two", name, sets)
	}
	lineBits := uint(0)
	for 1<<lineBits < g.LineBytes {
		lineBits++
	}
	n := sets * g.Assoc
	return &Cache{
		name:     name,
		sets:     sets,
		assoc:    g.Assoc,
		lineBits: lineBits,
		lat:      g.LatencyCycles,
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		lru:      make([]uint64, n),
	}, nil
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.lat }

// Access looks up addr, allocating the line on a miss. It returns
// whether the access hit.
func (c *Cache) Access(addr uint64, write bool) (hit bool) {
	hit, _ = c.AccessEvict(addr, write)
	return hit
}

// AccessEvict is Access that also reports whether the miss evicted a
// dirty line (the write-back the memory system must absorb).
func (c *Cache) AccessEvict(addr uint64, write bool) (hit, evictedDirty bool) {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.assoc
	c.clock++
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = c.clock
			if write {
				c.dirty[i] = true
			}
			c.Stats.Accesses++
			return true, false
		}
	}
	// Miss: pick the invalid or least-recently-used way.
	victim := base
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		c.Stats.Evictions++
		evictedDirty = c.dirty[victim]
		if evictedDirty {
			c.Stats.Writebacks++
		}
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write
	c.lru[victim] = c.clock
	c.Stats.Accesses++
	c.Stats.Misses++
	return false, evictedDirty
}

// Probe reports whether addr is resident without touching LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	line := addr >> c.lineBits
	set := int(line) & (c.sets - 1)
	base := set * c.assoc
	for w := 0; w < c.assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
		c.dirty[i] = false
	}
}

// AccessResult describes one memory-system access.
type AccessResult struct {
	// Latency is the cycles until the data is available.
	Latency int
	// L1Miss and L2Miss report where the access missed.
	L1Miss bool
	L2Miss bool
}

// Hierarchy is the full memory system: split L1s over a shared L2 over
// flat memory. SMT contexts are distinguished by the address's thread
// bits (the pipeline tags addresses with the context id), so contexts
// conflict in cache sets but never falsely hit each other's data.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache

	memLat int

	// banks model off-chip memory interleaving: each L2 miss occupies
	// one bank for bankBusy cycles; overlapping misses to the same bank
	// queue. banks[i] is the cycle the bank next frees up.
	banks    []int64
	bankMask uint64
	bankBusy int64
	// writebackDirty charges dirty L2 evictions one extra bank
	// occupancy (the write-back burst).
	writebackDirty bool

	// Stats.
	BankQueueCycles uint64
}

// NewHierarchy builds the Table 1 memory system.
func NewHierarchy(m config.Memory) (*Hierarchy, error) {
	l1i, err := NewCache("L1I", m.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache("L1D", m.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", m.L2)
	if err != nil {
		return nil, err
	}
	if m.MemLatency <= 0 {
		return nil, fmt.Errorf("mem: memory latency %d must be positive", m.MemLatency)
	}
	h := &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, memLat: m.MemLatency, writebackDirty: m.WritebackDirty}
	nb := m.MemInterleave
	if nb < 1 {
		nb = 1
	}
	if nb&(nb-1) != 0 {
		return nil, fmt.Errorf("mem: memory interleave %d must be a power of two", nb)
	}
	if nb > 1 {
		h.banks = make([]int64, nb)
		h.bankMask = uint64(nb - 1)
		h.bankBusy = int64(m.MemLatency / 8)
		if h.bankBusy < 1 {
			h.bankBusy = 1
		}
	}
	return h, nil
}

// bankDelay reserves the memory bank serving addr at the given cycle
// and returns the queueing delay. cycle < 0 disables contention (used
// by the cycle-less probes).
func (h *Hierarchy) bankDelay(addr uint64, cycle int64, dirtyEvict bool) int64 {
	if cycle < 0 || h.banks == nil {
		return 0
	}
	// Spread sequential lines across banks; fold higher bits in so
	// large power-of-two strides don't all collapse onto bank 0.
	b := ((addr >> 7) ^ (addr >> 14)) & h.bankMask
	delay := h.banks[b] - cycle
	if delay < 0 {
		delay = 0
	}
	occupancy := h.bankBusy
	if dirtyEvict && h.writebackDirty {
		occupancy += h.bankBusy
	}
	h.banks[b] = cycle + delay + occupancy
	h.BankQueueCycles += uint64(delay)
	return delay
}

// Data performs a data access without bank-contention modelling (a
// cycle-less timing probe; see DataAt).
func (h *Hierarchy) Data(addr uint64, write bool) AccessResult {
	return h.DataAt(addr, write, -1)
}

// DataAt performs a data access at the given cycle: on an L2 miss the
// serving memory bank is reserved and any queueing delay is added to
// the latency (plus the write-back burst for dirty L2 evictions when
// the configuration enables it).
func (h *Hierarchy) DataAt(addr uint64, write bool, cycle int64) AccessResult {
	res := AccessResult{Latency: h.L1D.Latency()}
	if h.L1D.Access(addr, write) {
		return res
	}
	res.L1Miss = true
	res.Latency += h.L2.Latency()
	// Store misses allocate the L2 line dirty: the write-back of the
	// dirty L1 line will land in it (inclusive-hierarchy approximation).
	hit, evDirty := h.L2.AccessEvict(addr, write)
	if hit {
		return res
	}
	res.L2Miss = true
	res.Latency += h.memLat + int(h.bankDelay(addr, cycle, evDirty))
	return res
}

// Inst performs an instruction-fetch access without bank contention.
func (h *Hierarchy) Inst(addr uint64) AccessResult {
	return h.InstAt(addr, -1)
}

// InstAt performs an instruction-fetch access at the given cycle.
func (h *Hierarchy) InstAt(addr uint64, cycle int64) AccessResult {
	res := AccessResult{Latency: h.L1I.Latency()}
	if h.L1I.Access(addr, false) {
		return res
	}
	res.L1Miss = true
	res.Latency += h.L2.Latency()
	hit, evDirty := h.L2.AccessEvict(addr, false)
	if hit {
		return res
	}
	res.L2Miss = true
	res.Latency += h.memLat + int(h.bankDelay(addr, cycle, evDirty))
	return res
}

// Memory is a per-thread functional memory image: a sparse paged array
// of 64-bit words. Loads of never-written locations return zero.
type Memory struct {
	pages map[uint64][]int64
}

const (
	pageShift = 16 // 64 KiB pages
	pageWords = 1 << (pageShift - 3)
)

// NewMemory returns an empty memory image.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64][]int64)}
}

// Read returns the 8-byte word containing addr.
func (m *Memory) Read(addr uint64) int64 {
	page, ok := m.pages[addr>>pageShift]
	if !ok {
		return 0
	}
	return page[(addr>>3)&(pageWords-1)]
}

// Write stores an 8-byte word at addr and returns the previous value
// (the pipeline keeps it for squash rollback).
func (m *Memory) Write(addr uint64, v int64) (old int64) {
	key := addr >> pageShift
	page, ok := m.pages[key]
	if !ok {
		page = make([]int64, pageWords)
		m.pages[key] = page
	}
	i := (addr >> 3) & (pageWords - 1)
	old = page[i]
	page[i] = v
	return old
}

// Pages returns the number of resident pages (for tests).
func (m *Memory) Pages() int { return len(m.pages) }
