package mem

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

func TestBankContentionSerializesSameBank(t *testing.T) {
	m := config.Default().Memory
	m.MemInterleave = 4
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	// Two same-cycle misses to the same bank: the second queues.
	addr := uint64(0x4000_0000)
	r1 := h.DataAt(addr, false, 1000)
	r2 := h.DataAt(addr+(1<<22), false, 1000) // same bank bits, different line
	if !r1.L2Miss {
		t.Fatal("first access should miss to memory")
	}
	// Find a truly same-bank partner: scan candidate offsets.
	base := uint64(0x5000_0000)
	bank := func(a uint64) uint64 { return ((a >> 7) ^ (a >> 14)) & 3 }
	var partner uint64
	for off := uint64(1); ; off++ {
		cand := base + off*(1<<20)
		if bank(cand) == bank(base) && cand != base {
			partner = cand
			break
		}
	}
	h2, _ := NewHierarchy(m)
	a := h2.DataAt(base, false, 5000)
	b := h2.DataAt(partner, false, 5000)
	if !a.L2Miss || !b.L2Miss {
		t.Fatal("both should miss")
	}
	if b.Latency <= a.Latency {
		t.Errorf("same-bank queueing missing: %d vs %d", b.Latency, a.Latency)
	}
	if h2.BankQueueCycles == 0 {
		t.Error("queue cycles not counted")
	}
	_ = r2
}

func TestBankContentionOverlapsAcrossBanks(t *testing.T) {
	m := config.Default().Memory
	m.MemInterleave = 4
	h, _ := NewHierarchy(m)
	bank := func(a uint64) uint64 { return ((a >> 7) ^ (a >> 14)) & 3 }
	base := uint64(0x6000_0000)
	var other uint64
	for off := uint64(1); ; off++ {
		cand := base + off*128
		if bank(cand) != bank(base) {
			other = cand
			break
		}
	}
	a := h.DataAt(base, false, 9000)
	b := h.DataAt(other, false, 9000)
	if b.Latency != a.Latency {
		t.Errorf("different banks should not queue: %d vs %d", b.Latency, a.Latency)
	}
}

func TestBankContentionDisabled(t *testing.T) {
	m := config.Default().Memory
	m.MemInterleave = 1
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	a := h.DataAt(0x7000_0000, false, 100)
	b := h.DataAt(0x7100_0000, false, 100)
	if a.Latency != b.Latency {
		t.Error("interleave=1 disables contention modelling")
	}
	if h.BankQueueCycles != 0 {
		t.Error("no queue cycles expected")
	}
}

func TestBankInterleaveValidation(t *testing.T) {
	m := config.Default().Memory
	m.MemInterleave = 3
	if _, err := NewHierarchy(m); err == nil {
		t.Error("non-power-of-two interleave should fail")
	}
}

func TestDirtyWritebackCharged(t *testing.T) {
	m := config.Default().Memory
	m.MemInterleave = 2
	m.WritebackDirty = true
	// Tiny L2 so evictions happen quickly: 16KB, 2-way, 128B lines.
	m.L2 = config.CacheGeom{SizeBytes: 16 << 10, LineBytes: 128, Assoc: 2, LatencyCycles: 12}
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a line in L2... L2 lines are filled with write=false by the
	// hierarchy, so exercise the cache directly.
	c := h.L2
	stride := uint64(16 << 10 / 2) // same-set stride
	c.Access(0, true)              // dirty
	c.Access(stride, false)
	_, evDirty := c.AccessEvict(2*stride, false) // evicts the dirty LRU line
	if !evDirty {
		t.Fatal("expected a dirty eviction")
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCycleLessProbesSkipBanks(t *testing.T) {
	m := config.Default().Memory
	h, _ := NewHierarchy(m)
	a := h.Data(0x9000_0000, false)
	b := h.Data(0x9100_0000, false)
	if a.Latency != b.Latency {
		t.Error("cycle-less probes must not model contention")
	}
}
