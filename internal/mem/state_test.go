package mem

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

func TestCacheSnapshotRestore(t *testing.T) {
	a, err := NewCache("t", geom(1<<12, 64, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a.Access(uint64(rng.Intn(1<<14)), rng.Intn(2) == 0)
	}
	st := a.Snapshot()

	b, err := NewCache("t", geom(1<<12, 64, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Same subsequent stream must hit and miss identically.
	for i := 0; i < 2000; i++ {
		addr, write := uint64(rng.Intn(1<<14)), rng.Intn(2) == 0
		ha, da := a.AccessEvict(addr, write)
		hb, db := b.AccessEvict(addr, write)
		if ha != hb || da != db {
			t.Fatalf("access %d %#x: (%v,%v) vs (%v,%v)", i, addr, ha, da, hb, db)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}

	// The snapshot is a copy: the accesses above must not have mutated it.
	c, err := NewCache("t", geom(1<<12, 64, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(st); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c.Snapshot(), a.Snapshot()) {
		t.Fatal("continued cache still equals the snapshot — test is vacuous")
	}

	wrong, err := NewCache("t", geom(1<<11, 64, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.Restore(st); err == nil {
		t.Error("mismatched geometry should fail")
	}
}

func TestHierarchySnapshotRestore(t *testing.T) {
	m := config.Default().Memory
	a, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	cycle := int64(0)
	for i := 0; i < 3000; i++ {
		cycle += int64(rng.Intn(4))
		if rng.Intn(4) == 0 {
			a.InstAt(uint64(rng.Intn(1<<16)), cycle)
		} else {
			a.DataAt(uint64(rng.Intn(1<<18)), rng.Intn(3) == 0, cycle)
		}
	}
	st := a.Snapshot()

	b, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		cycle += int64(rng.Intn(4))
		addr := uint64(rng.Intn(1 << 18))
		write := rng.Intn(3) == 0
		ra := a.DataAt(addr, write, cycle)
		rb := b.DataAt(addr, write, cycle)
		if ra != rb {
			t.Fatalf("access %d: %+v vs %+v", i, ra, rb)
		}
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("hierarchies diverged after identical streams")
	}

	bad := st
	bad.Banks = append([]int64(nil), st.Banks...)
	bad.Banks = append(bad.Banks, 0)
	if err := b.Restore(bad); err == nil {
		t.Error("mismatched bank count should fail")
	}
}

func TestMemorySnapshotRestore(t *testing.T) {
	a := NewMemory()
	rng := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 200)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
		a.Write(addrs[i], int64(i))
	}
	st := a.Snapshot()

	b := NewMemory()
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i, addr := range addrs {
		if got := b.Read(addr); got != a.Read(addr) {
			t.Fatalf("addr %#x: %d vs %d (i=%d)", addr, b.Read(addr), a.Read(addr), i)
		}
	}
	if a.Pages() != b.Pages() {
		t.Fatalf("page counts diverge: %d vs %d", a.Pages(), b.Pages())
	}

	// Deep copy: writing through the restored image must not leak into
	// the snapshot or the source.
	b.Write(addrs[0], -1)
	if a.Read(addrs[0]) == -1 {
		t.Fatal("restored memory aliases the source")
	}
	c := NewMemory()
	if err := c.Restore(st); err != nil {
		t.Fatal(err)
	}
	if c.Read(addrs[0]) == -1 {
		t.Fatal("snapshot was mutated through a restored image")
	}

	bad := MemoryState{Pages: map[uint64][]int64{0: make([]int64, 3)}}
	if err := c.Restore(bad); err == nil {
		t.Error("wrong page size should fail")
	}
}
