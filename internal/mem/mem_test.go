package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

func geom(size, line, assoc, lat int) config.CacheGeom {
	return config.CacheGeom{SizeBytes: size, LineBytes: line, Assoc: assoc, LatencyCycles: lat}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache("t", geom(1<<10, 64, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0, false) {
		t.Fatal("cold access should miss")
	}
	if !c.Access(0, false) {
		t.Fatal("second access should hit")
	}
	if !c.Access(63, false) {
		t.Fatal("same line should hit")
	}
	if c.Access(64, false) {
		t.Fatal("next line should miss")
	}
	if c.Stats.Accesses != 4 || c.Stats.Misses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if got := c.Stats.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 8 sets of 64B lines: addresses k*512 share set 0.
	c, _ := NewCache("t", geom(1<<10, 64, 2, 1))
	c.Access(0*512, false)
	c.Access(1*512, false)
	c.Access(0*512, false) // touch 0: now 1*512 is LRU
	c.Access(2*512, false) // evicts 1*512
	if !c.Probe(0 * 512) {
		t.Error("0 should be resident")
	}
	if c.Probe(1 * 512) {
		t.Error("1 should have been evicted (LRU)")
	}
	if !c.Probe(2 * 512) {
		t.Error("2 should be resident")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Stats.Evictions)
	}
}

// TestCacheConflictLoop checks the mechanism Variant2 abuses: accessing
// assoc+1 lines that map to one set in cyclic order misses every time
// under true LRU.
func TestCacheConflictLoop(t *testing.T) {
	c, _ := NewCache("t", geom(64<<10, 64, 4, 1)) // 256 sets
	stride := uint64(64 << 10 / 4)                // same-set stride
	// Warm: first pass misses are compulsory.
	for i := uint64(0); i < 5; i++ {
		c.Access(i*stride, false)
	}
	c.Stats = CacheStats{}
	for round := 0; round < 10; round++ {
		for i := uint64(0); i < 5; i++ {
			if c.Access(i*stride, false) {
				t.Fatalf("round %d line %d: conflict loop should always miss", round, i)
			}
		}
	}
	// Control: assoc lines fit and always hit.
	c.Flush()
	for i := uint64(0); i < 4; i++ {
		c.Access(i*stride, false)
	}
	for i := uint64(0); i < 4; i++ {
		if !c.Access(i*stride, false) {
			t.Fatal("within-associativity loop should hit")
		}
	}
}

func TestCacheFlushAndDirty(t *testing.T) {
	c, _ := NewCache("t", geom(1<<10, 64, 2, 1))
	c.Access(0, true)
	if !c.Probe(0) {
		t.Fatal("line should be resident")
	}
	c.Flush()
	if c.Probe(0) {
		t.Fatal("flush should invalidate")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	m := config.Default().Memory
	h, err := NewHierarchy(m)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss + L2 miss -> full path.
	r := h.Data(0x1000, false)
	wantCold := m.L1D.LatencyCycles + m.L2.LatencyCycles + m.MemLatency
	if !r.L1Miss || !r.L2Miss || r.Latency != wantCold {
		t.Fatalf("cold access = %+v, want latency %d", r, wantCold)
	}
	// Hot: L1 hit.
	r = h.Data(0x1000, false)
	if r.L1Miss || r.Latency != m.L1D.LatencyCycles {
		t.Fatalf("hot access = %+v", r)
	}
	// L1-evicted but L2-resident: touch enough conflicting lines.
	// Instead use the instruction path for an independent check.
	ri := h.Inst(0x2000)
	if !ri.L2Miss {
		t.Fatalf("cold fetch should go to memory: %+v", ri)
	}
	ri = h.Inst(0x2000)
	if ri.Latency != m.L1I.LatencyCycles {
		t.Fatalf("warm fetch latency %d", ri.Latency)
	}
}

func TestHierarchyL1MissL2Hit(t *testing.T) {
	m := config.Default().Memory
	h, _ := NewHierarchy(m)
	base := uint64(0x10000)
	h.Data(base, false) // L2 now has the line
	// Evict from L1 (4-way): 4 more lines in the same L1 set.
	l1Stride := uint64(m.L1D.SizeBytes / m.L1D.Assoc)
	for i := uint64(1); i <= 4; i++ {
		h.Data(base+i*l1Stride, false)
	}
	r := h.Data(base, false)
	if !r.L1Miss {
		t.Fatal("line should have been evicted from L1")
	}
	if r.L2Miss {
		t.Fatal("line should still be in the 2MB L2")
	}
	if want := m.L1D.LatencyCycles + m.L2.LatencyCycles; r.Latency != want {
		t.Fatalf("latency %d, want %d", r.Latency, want)
	}
}

func TestBadGeometries(t *testing.T) {
	if _, err := NewCache("t", geom(1000, 60, 2, 1)); err == nil {
		t.Error("non-power-of-two line size should fail")
	}
	if _, err := NewCache("t", geom(768, 64, 2, 1)); err == nil {
		t.Error("non-power-of-two sets should fail")
	}
	m := config.Default().Memory
	m.MemLatency = 0
	if _, err := NewHierarchy(m); err == nil {
		t.Error("zero memory latency should fail")
	}
}

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory()
	if m.Read(0x1234) != 0 {
		t.Fatal("uninitialized memory should read zero")
	}
	old := m.Write(0x1230, 42)
	if old != 0 {
		t.Fatalf("old value = %d", old)
	}
	if m.Read(0x1230) != 42 {
		t.Fatal("readback failed")
	}
	// Same 8-byte word regardless of low bits.
	if m.Read(0x1237) != 42 {
		t.Fatal("sub-word addressing should alias the word")
	}
	old = m.Write(0x1230, 7)
	if old != 42 {
		t.Fatalf("old = %d, want 42", old)
	}
	if m.Pages() != 1 {
		t.Fatalf("pages = %d", m.Pages())
	}
	m.Write(1<<30, 1)
	if m.Pages() != 2 {
		t.Fatalf("pages = %d", m.Pages())
	}
}

// TestQuickMemoryWriteUndo property: writing then restoring the old
// value always returns memory to its prior state (the squash-rollback
// contract).
func TestQuickMemoryWriteUndo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMemory()
		type wr struct {
			addr uint64
			old  int64
		}
		// Random prefix state.
		for i := 0; i < 50; i++ {
			m.Write(uint64(rng.Intn(1<<20))&^7, rng.Int63())
		}
		snapshot := map[uint64]int64{}
		addrs := make([]uint64, 30)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1<<20)) &^ 7
			snapshot[addrs[i]] = m.Read(addrs[i])
		}
		// Speculative writes...
		var undo []wr
		for _, a := range addrs {
			undo = append(undo, wr{a, m.Write(a, rng.Int63())})
		}
		// ...rolled back newest-first.
		for i := len(undo) - 1; i >= 0; i-- {
			m.Write(undo[i].addr, undo[i].old)
		}
		for a, v := range snapshot {
			if m.Read(a) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCacheProbeConsistent property: Probe agrees with a
// shadow-model of residency implied by Access return values for
// single-set workloads.
func TestQuickCacheProbeConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewCache("q", geom(1<<10, 64, 2, 1))
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			addr := uint64(rng.Intn(8)) * 512 // one set
			c.Access(addr, rng.Intn(2) == 0)
			// After an access the line is always resident.
			if !c.Probe(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
