package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// Pool recycles simulators across warm-restore runs. Constructing a
// Simulator is dominated by the pipeline: register files, cache
// hierarchies, predictor tables, and per-entry bookkeeping all
// allocate, and a sweep that restores hundreds of jobs from one shared
// warmup snapshot pays that cost per job. A Pool keeps finished
// simulators and hands them to the next job with the same construction
// identity, which then overwrites every piece of mutable state by
// restoring its snapshot.
//
// The contract: a simulator obtained from Get holds stale machine
// state from its previous run, and the caller MUST Restore a warmup
// snapshot into it before running. Restore with a policy-agnostic
// snapshot overwrites the core, power model, thermal network, and
// monitor, empties the report and event accumulators, and rebuilds the
// DTM policy and engine from scratch — leaving the simulator
// indistinguishable from a freshly constructed one (enforced by the
// dirty-reuse equivalence tests).
//
// A Pool is safe for concurrent use.
type Pool struct {
	mu   sync.Mutex
	free map[string][]*Simulator

	hits, misses uint64
}

// NewPool returns an empty simulator pool.
func NewPool() *Pool {
	return &Pool{free: make(map[string][]*Simulator)}
}

// poolKey is the construction identity a recycled simulator must
// share with the request: the machine configuration, the programs
// (they are wired into the pipeline at construction), the warmup
// length, and the fast-forward switch. The DTM policy and the
// observation flags are deliberately excluded — Get adapts them,
// because the warm restore rebuilds the policy anyway.
func poolKey(cfg config.Config, threads []Thread, opts Options) string {
	h := sha256.New()
	io.WriteString(h, "heatstroke-pool\x00")
	io.WriteString(h, cfg.Digest())
	h.Write([]byte{0})
	io.WriteString(h, ProgramsDigest(threads))
	fmt.Fprintf(h, "\x00%d\x00%t", opts.WarmupCycles, opts.DisableFastForward)
	return hex.EncodeToString(h.Sum(nil))
}

// Get returns a simulator for the given machine, threads, and options:
// a recycled one whose construction identity matches, else a freshly
// built one. Recycled simulators are re-optioned in place (policy,
// temperature tracing, event collection) and their policy rebuilt, so
// the only stale state left is what Restore overwrites. Requests with
// a Recorder bypass the pool entirely: the recorder is caller-owned
// per-job state, so those simulators are built fresh and never
// recycled.
func (p *Pool) Get(cfg config.Config, threads []Thread, opts Options) (*Simulator, error) {
	if p == nil || opts.Recorder != nil {
		return New(cfg, threads, opts)
	}
	key := poolKey(cfg, threads, opts)
	p.mu.Lock()
	stack := p.free[key]
	var s *Simulator
	if n := len(stack); n > 0 {
		s = stack[n-1]
		stack[n-1] = nil
		p.free[key] = stack[:n-1]
		p.hits++
	} else {
		p.misses++
	}
	p.mu.Unlock()
	if s == nil {
		fresh, err := New(cfg, threads, opts)
		if err != nil {
			return nil, err
		}
		fresh.poolKey = key
		return fresh, nil
	}
	if opts.Policy == "" {
		opts.Policy = dtm.StopAndGo
	}
	s.opts = opts
	if opts.CollectEvents {
		if s.events == nil {
			s.events = &telemetry.EventLog{}
		}
	} else {
		s.events = nil
	}
	if err := s.buildPolicy(); err != nil {
		return nil, err
	}
	return s, nil
}

// Put returns s to the pool for recycling. Simulators that bypassed
// the pool (Recorder attached) or hold an open quantum are dropped;
// passing one is harmless.
func (p *Pool) Put(s *Simulator) {
	if p == nil || s == nil || s.poolKey == "" || s.qr != nil {
		return
	}
	p.mu.Lock()
	p.free[s.poolKey] = append(p.free[s.poolKey], s)
	p.mu.Unlock()
}

// Stats reports how many Gets were served by recycling versus fresh
// construction (recorder-bypassed Gets count as neither).
func (p *Pool) Stats() (hits, misses uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}
