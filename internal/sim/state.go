package sim

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"

	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/cpu"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/thermal"
)

// StateVersion is the snapshot format version. It changes whenever any
// composed state struct gains, loses, or reinterprets a field; old
// snapshots are rejected, never migrated (re-running warmup is always
// cheaper than a migration bug).
//
// v2: MachineState gained WarmConfigDigest (the relaxed warm-sharing
// identity) and Quantum (mid-quantum fork state).
//
// v3: MachineState gained Multi, the whole-die state of a multi-core
// simulation: per-core machine states, the shared solver's kind-tagged
// temperature field, and the DTM scope. Single-core snapshots are
// unchanged apart from the version (Multi stays nil).
const StateVersion = 3

// stateMagic prefixes on-disk snapshots so a wrong file fails fast with
// a clear error instead of a gob panic deep in decode.
const stateMagic = "HEATSTROKE-SNAP\n"

// MachineState is one whole-machine snapshot: every piece of mutable
// simulation state, composed from the per-package state structs, plus
// the identity of the machine that produced it. A MachineState is fully
// self-contained (deep-copied on both snapshot and restore), so one
// snapshot can seed any number of concurrently-running simulators.
//
// Policy records the producing simulator's DTM policy. The empty string
// is the warmup sentinel: the snapshot carries no policy actuation
// state (none existed — warmup never ticks the policy) and may be
// restored into a simulator running any policy.
type MachineState struct {
	Version      int
	ConfigDigest string
	// WarmConfigDigest is the producing config's WarmDigest: the
	// configuration with every field warmup never reads normalized away
	// (see config.Config.WarmDigest). Warmup snapshots are restorable
	// into any simulator matching it — the relaxation that lets a
	// threshold grid fork from one shared warm prefix. Policy snapshots
	// still require the full ConfigDigest to match.
	WarmConfigDigest string
	ProgsDigest      string
	Policy           dtm.Kind
	Warmed           bool

	Core    cpu.CoreState
	Model   power.ModelState
	Thermal thermal.NetworkState
	Monitor score.MonitorState
	// Engine is non-nil only for Policy == dtm.SelectiveSedation.
	Engine *score.EngineState
	// DTM is nil for warmup snapshots (Policy == "").
	DTM *dtm.State

	Reports []score.Report
	Events  []telemetry.Event

	// Quantum is non-nil when the snapshot was taken mid-quantum
	// (between BeginRun and FinishRun): the loop position and partial
	// accumulators needed to resume the measurement exactly where it
	// paused. Restoring it re-opens the quantum in the target simulator.
	Quantum *QuantumState

	// Multi is non-nil for snapshots of a MultiSimulator: the whole-die
	// state. Multi-core snapshots leave the single-core fields above
	// (Core, Model, Thermal, Monitor, ...) zero and restore only into a
	// MultiSimulator of matching configuration.
	Multi *MultiState
}

// QuantumState is the serializable state of a measurement quantum in
// progress: everything quantumRun holds, so a mid-quantum fork's child
// finishes with a Result deep-equal to the unforked original's.
type QuantumState struct {
	Quantum int64
	Done    int64
	Chunks  int64

	AboveEmergency bool
	EnergyAccum    float64
	EventsStart    int

	StartCycle    int64
	StartStalled  uint64
	StartStats    []cpu.ThreadStats
	StartRF       []uint64
	LastCommitted []uint64

	// Partial Result accumulators.
	PeakTemp    float64
	PeakUnit    power.Unit
	Emergencies int
	RFTrace     []float64
}

// Clone returns a deep copy of the quantum state.
func (q QuantumState) Clone() QuantumState {
	out := q
	out.StartStats = slices.Clone(q.StartStats)
	out.StartRF = slices.Clone(q.StartRF)
	out.LastCommitted = slices.Clone(q.LastCommitted)
	out.RFTrace = slices.Clone(q.RFTrace)
	return out
}

// Clone returns a deep copy of the machine state without a gob
// round-trip: the fork-tree hot path for handing one snapshot to many
// children. The clone shares no memory with ms — mutating either side
// never leaks into the other (enforced by the aliasing regression
// tests).
func (ms *MachineState) Clone() *MachineState {
	out := *ms
	if ms.Multi != nil {
		// Whole-die snapshot: the single-core composites are zero values
		// (cloning them would perturb their nil slices), all state lives
		// under Multi.
		out.Multi = ms.Multi.Clone()
		out.Reports = slices.Clone(ms.Reports)
		out.Events = slices.Clone(ms.Events)
		return &out
	}
	out.Core = ms.Core.Clone()
	out.Thermal = ms.Thermal.Clone()
	out.Monitor = ms.Monitor.Clone()
	if ms.Engine != nil {
		es := ms.Engine.Clone()
		out.Engine = &es
	}
	if ms.DTM != nil {
		ds := ms.DTM.Clone()
		out.DTM = &ds
	}
	out.Reports = slices.Clone(ms.Reports)
	out.Events = slices.Clone(ms.Events)
	if ms.Quantum != nil {
		qs := ms.Quantum.Clone()
		out.Quantum = &qs
	}
	if ms.Multi != nil {
		out.Multi = ms.Multi.Clone()
	}
	return &out
}

// ProgramsDigest hashes the threads' identity — names, entry points,
// and full instruction streams — so a snapshot can prove it was built
// from the same programs it is being restored into.
func ProgramsDigest(threads []Thread) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(int64(len(threads)))
	for _, t := range threads {
		io.WriteString(h, t.Name)
		h.Write([]byte{0})
		if t.Prog == nil {
			writeInt(-1)
			continue
		}
		io.WriteString(h, t.Prog.Name)
		h.Write([]byte{0})
		writeInt(int64(t.Prog.Entry))
		writeInt(int64(len(t.Prog.Insts)))
		for _, in := range t.Prog.Insts {
			writeInt(int64(in.Op))
			h.Write([]byte{in.Dst, in.Src1, in.Src2})
			writeInt(in.Imm)
			writeInt(int64(in.Target))
			if in.UseImm {
				h.Write([]byte{1})
			} else {
				h.Write([]byte{0})
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Snapshot captures the simulator's complete mutable state. The
// returned state shares no memory with the simulator; both sides may
// continue (or restore) independently.
func (s *Simulator) Snapshot() (*MachineState, error) {
	ms := &MachineState{
		Version:          StateVersion,
		ConfigDigest:     s.cfg.Digest(),
		WarmConfigDigest: s.cfg.WarmDigest(),
		ProgsDigest:      ProgramsDigest(s.threads),
		Policy:           s.opts.Policy,
		Warmed:           s.warmed,
		Core:             s.core.Snapshot(),
		Model:            s.model.Snapshot(),
		Thermal:          s.net.Snapshot(),
		Monitor:          s.mon.Snapshot(),
	}
	ds, err := dtm.Snapshot(s.policy)
	if err != nil {
		return nil, err
	}
	ms.DTM = &ds
	if eng := s.policy.Engine(); eng != nil {
		es := eng.Snapshot()
		ms.Engine = &es
	}
	if len(s.reports) > 0 {
		ms.Reports = append([]score.Report(nil), s.reports...)
	}
	if s.events != nil && len(s.events.Events) > 0 {
		ms.Events = append([]telemetry.Event(nil), s.events.Events...)
	}
	if qr := s.qr; qr != nil {
		qs := QuantumState{
			Quantum:        qr.quantum,
			Done:           qr.done,
			Chunks:         qr.chunks,
			AboveEmergency: qr.aboveEmergency,
			EnergyAccum:    qr.energyAccum,
			EventsStart:    qr.eventsStart,
			StartCycle:     qr.startCycle,
			StartStalled:   qr.startStalled,
			StartStats:     slices.Clone(qr.startStats),
			StartRF:        slices.Clone(qr.startRF),
			LastCommitted:  slices.Clone(qr.lastCommitted),
			PeakTemp:       qr.res.PeakTemp,
			PeakUnit:       qr.res.PeakUnit,
			Emergencies:    qr.res.Emergencies,
			RFTrace:        slices.Clone(qr.res.RFTrace),
		}
		ms.Quantum = &qs
	}
	return ms, nil
}

// WarmupSnapshot runs the warmup phase (if not yet run) and captures
// the machine state it established, tagged policy-agnostic: warmup
// never ticks the DTM policy, so the state is identical under every
// policy and the snapshot restores into a simulator running any of
// them. It must be called before any measurement (RunCycles).
func (s *Simulator) WarmupSnapshot() (*MachineState, error) {
	if s.started {
		return nil, fmt.Errorf("sim: warmup snapshot requested after measurement started")
	}
	s.warmup()
	ms, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	ms.Policy = ""
	ms.DTM = nil
	ms.Engine = nil
	return ms, nil
}

// Restore loads ms into s, which must have been built from the same
// configuration and threads (enforced by digest) and — unless ms is a
// policy-agnostic warmup snapshot — the same DTM policy. After Restore,
// continuing s is deep-equal-indistinguishable from continuing the
// simulator that produced ms. The state is copied, never aliased.
func (s *Simulator) Restore(ms *MachineState) error {
	if ms.Version != StateVersion {
		return fmt.Errorf("sim: snapshot format v%d, this build reads v%d", ms.Version, StateVersion)
	}
	if ms.Policy == "" {
		// Warmup snapshots are identical under every value of the
		// warmup-invariant fields (thresholds, ablation switches, the
		// quantum length), so they restore across configs agreeing on
		// the relaxed warm digest: the fork-tree sweep's shared prefix.
		if d := s.cfg.WarmDigest(); ms.WarmConfigDigest != d {
			return fmt.Errorf("sim: warmup snapshot built from warm-config %.12s.., simulator runs %.12s..", ms.WarmConfigDigest, d)
		}
	} else if d := s.cfg.Digest(); ms.ConfigDigest != d {
		return fmt.Errorf("sim: snapshot built from config %.12s.., simulator runs %.12s..", ms.ConfigDigest, d)
	}
	if d := ProgramsDigest(s.threads); ms.ProgsDigest != d {
		return fmt.Errorf("sim: snapshot built from programs %.12s.., simulator runs %.12s..", ms.ProgsDigest, d)
	}
	if ms.Policy != "" && ms.Policy != s.opts.Policy {
		return fmt.Errorf("sim: snapshot carries %q policy state, simulator runs %q", ms.Policy, s.opts.Policy)
	}
	if err := s.core.Restore(ms.Core); err != nil {
		return err
	}
	if err := s.model.Restore(ms.Model); err != nil {
		return err
	}
	if err := s.net.Restore(ms.Thermal); err != nil {
		return err
	}
	if err := s.mon.Restore(ms.Monitor); err != nil {
		return err
	}
	if ms.Policy != "" {
		if ms.DTM == nil {
			return fmt.Errorf("sim: %q snapshot missing policy state", ms.Policy)
		}
		if err := dtm.Restore(s.policy, *ms.DTM); err != nil {
			return err
		}
		if eng := s.policy.Engine(); eng != nil {
			if ms.Engine == nil {
				return fmt.Errorf("sim: sedation snapshot missing engine state")
			}
			if err := eng.Restore(*ms.Engine); err != nil {
				return err
			}
		}
	} else {
		// A warmup snapshot carries no policy state because none existed
		// when it was taken. Rebuild the policy and engine from scratch
		// (after the model restore above, so DVS captures the nominal
		// supply voltage) so that restoring into a previously-run
		// simulator is indistinguishable from restoring into a new one —
		// the precondition for recycling simulators through a Pool.
		if err := s.buildPolicy(); err != nil {
			return err
		}
	}
	s.reports = append(s.reports[:0], ms.Reports...)
	if s.events != nil {
		s.events.Events = append(s.events.Events[:0], ms.Events...)
	}
	s.warmed = ms.Warmed
	if q := ms.Quantum; q != nil {
		n := len(s.threads)
		if len(q.StartStats) != n || len(q.StartRF) != n || len(q.LastCommitted) != n {
			return fmt.Errorf("sim: quantum state has %d/%d/%d contexts, want %d",
				len(q.StartStats), len(q.StartRF), len(q.LastCommitted), n)
		}
		if q.Quantum <= 0 || q.Done < 0 || q.Chunks < 0 {
			return fmt.Errorf("sim: quantum state position %d/%d (chunks %d) invalid", q.Done, q.Quantum, q.Chunks)
		}
		s.qr = &quantumRun{
			quantum: q.Quantum,
			done:    q.Done,
			chunks:  q.Chunks,
			res: &Result{
				PeakTemp:    q.PeakTemp,
				PeakUnit:    q.PeakUnit,
				Emergencies: q.Emergencies,
				RFTrace:     slices.Clone(q.RFTrace),
			},
			aboveEmergency: q.AboveEmergency,
			energyAccum:    q.EnergyAccum,
			eventsStart:    q.EventsStart,
			startCycle:     q.StartCycle,
			startStalled:   q.StartStalled,
			startStats:     slices.Clone(q.StartStats),
			startRF:        slices.Clone(q.StartRF),
			lastCommitted:  slices.Clone(q.LastCommitted),
		}
		s.started = true
	} else {
		s.qr = nil
		if ms.Policy == "" {
			// A policy-agnostic snapshot precedes measurement by
			// definition; restoring one re-arms WarmupSnapshot exactly as
			// on a freshly built simulator.
			s.started = false
		}
	}
	return nil
}

// WriteState gob-encodes ms to w behind a magic header.
func WriteState(w io.Writer, ms *MachineState) error {
	if _, err := io.WriteString(w, stateMagic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(ms)
}

// ReadState decodes a snapshot written by WriteState.
func ReadState(r io.Reader) (*MachineState, error) {
	magic := make([]byte, len(stateMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("sim: reading snapshot header: %w", err)
	}
	if string(magic) != stateMagic {
		return nil, fmt.Errorf("sim: not a snapshot file (bad magic)")
	}
	ms := &MachineState{}
	if err := gob.NewDecoder(r).Decode(ms); err != nil {
		return nil, fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	if ms.Version != StateVersion {
		return nil, fmt.Errorf("sim: snapshot format v%d, this build reads v%d", ms.Version, StateVersion)
	}
	return ms, nil
}

// WriteStateFile writes ms to path atomically (temp file + rename).
func WriteStateFile(path string, ms *MachineState) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".snap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	if err := WriteState(bw, ms); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadStateFile reads a snapshot file written by WriteStateFile.
func ReadStateFile(path string) (*MachineState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadState(bufio.NewReader(f))
}
