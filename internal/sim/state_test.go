package sim

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
)

// stateOptions is the option set the snapshot tests run under: every
// optional observation channel on, so divergence anywhere shows up in
// the deep-equal.
func stateOptions(policy dtm.Kind) Options {
	return Options{
		Policy:        policy,
		WarmupCycles:  60_000,
		TraceTemps:    true,
		CollectEvents: true,
	}
}

// TestRestoreEquivalence locks in the tentpole invariant: snapshot
// mid-run, restore into a fresh simulator, continue — and the
// continuation must be deep-equal to the original simulator continuing
// straight through. Checked for every DTM policy with the fast-forward
// both enabled and disabled (the same discipline as
// TestFastForwardEquivalence).
func TestRestoreEquivalence(t *testing.T) {
	const quantum = 120_000
	for _, policy := range dtm.Kinds() {
		for _, ff := range []bool{true, false} {
			policy, ff := policy, ff
			name := string(policy) + "/ff=on"
			if !ff {
				name = string(policy) + "/ff=off"
			}
			t.Run(name, func(t *testing.T) {
				cfg := quickCfg()
				threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
				a, err := New(cfg, threads, stateOptions(policy))
				if err != nil {
					t.Fatal(err)
				}
				a.Core().SetFastForward(ff)
				if _, err := a.RunCycles(quantum); err != nil {
					t.Fatal(err)
				}
				ms, err := a.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				straight, err := a.RunCycles(quantum)
				if err != nil {
					t.Fatal(err)
				}

				b, err := New(cfg, threads, stateOptions(policy))
				if err != nil {
					t.Fatal(err)
				}
				b.Core().SetFastForward(ff)
				if err := b.Restore(ms); err != nil {
					t.Fatal(err)
				}
				restored, err := b.RunCycles(quantum)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(straight, restored) {
					t.Errorf("continuations diverge:\nstraight: %+v\nrestored: %+v", straight, restored)
				}
			})
		}
	}
}

// TestSnapshotIsDeepCopy proves a snapshot does not alias the live
// simulator: continuing the source must leave the snapshot untouched,
// so one snapshot can seed many clones.
func TestSnapshotIsDeepCopy(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	s, err := New(cfg, threads, stateOptions(dtm.SelectiveSedation))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCycles(100_000); err != nil {
		t.Fatal(err)
	}
	ms, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCycles(100_000); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, before) {
		t.Fatal("continuing the source simulator mutated an earlier snapshot")
	}
}

// TestRestoreRoundTripsState proves restore reconstructs the exact
// state: snapshotting the restored simulator yields the original
// MachineState again.
func TestRestoreRoundTripsState(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	a, err := New(cfg, threads, stateOptions(dtm.SelectiveSedation))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RunCycles(140_000); err != nil {
		t.Fatal(err)
	}
	ms, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg, threads, stateOptions(dtm.SelectiveSedation))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(ms); err != nil {
		t.Fatal(err)
	}
	ms2, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, ms2) {
		t.Fatal("snapshot of restored simulator differs from the original snapshot")
	}
}

// TestWarmupSnapshotEquivalence proves warmup-snapshot reuse is exact
// for every policy: restoring a policy-agnostic warmup snapshot (built
// under dtm.None) into a fresh simulator must reproduce, deep-equally,
// the result of that simulator running its own warmup.
func TestWarmupSnapshotEquivalence(t *testing.T) {
	const quantum = 150_000
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}

	warm, err := New(cfg, threads, Options{Policy: dtm.None, WarmupCycles: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := warm.WarmupSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ms.Policy != "" || ms.DTM != nil || ms.Engine != nil {
		t.Fatalf("warmup snapshot carries policy state: policy=%q dtm=%v engine=%v",
			ms.Policy, ms.DTM, ms.Engine)
	}

	for _, policy := range dtm.Kinds() {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			cold, err := New(cfg, threads, stateOptions(policy))
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.RunCycles(quantum)
			if err != nil {
				t.Fatal(err)
			}

			reused, err := New(cfg, threads, stateOptions(policy))
			if err != nil {
				t.Fatal(err)
			}
			if err := reused.Restore(ms); err != nil {
				t.Fatal(err)
			}
			got, err := reused.RunCycles(quantum)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("warmup reuse diverges from cold warmup:\ncold:   %+v\nreused: %+v", want, got)
			}
		})
	}
}

// TestWarmupSnapshotAfterStart rejects snapshotting once measurement
// has begun (the state would no longer be policy-agnostic).
func TestWarmupSnapshotAfterStart(t *testing.T) {
	s, err := New(quickCfg(), []Thread{variantThread(t, 1)}, Options{Policy: dtm.None})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCycles(20_000); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WarmupSnapshot(); err == nil {
		t.Fatal("WarmupSnapshot after RunCycles should fail")
	}
}

// TestRestoreRejectsMismatch covers the identity checks: wrong config,
// wrong programs, wrong policy, wrong version.
func TestRestoreRejectsMismatch(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	a, err := New(cfg, threads, stateOptions(dtm.StopAndGo))
	if err != nil {
		t.Fatal(err)
	}
	ms, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	otherCfg := quickCfg()
	otherCfg.Run.QuantumCycles++
	if b, err := New(otherCfg, threads, stateOptions(dtm.StopAndGo)); err != nil {
		t.Fatal(err)
	} else if err := b.Restore(ms); err == nil {
		t.Error("restore into a different config should fail")
	}

	otherThreads := []Thread{specThread(t, "gcc"), variantThread(t, 2)}
	if b, err := New(cfg, otherThreads, stateOptions(dtm.StopAndGo)); err != nil {
		t.Fatal(err)
	} else if err := b.Restore(ms); err == nil {
		t.Error("restore into different programs should fail")
	}

	if b, err := New(cfg, threads, stateOptions(dtm.DVS)); err != nil {
		t.Fatal(err)
	} else if err := b.Restore(ms); err == nil {
		t.Error("restore of stopgo state into dvs should fail")
	}

	bad := *ms
	bad.Version = StateVersion + 1
	if b, err := New(cfg, threads, stateOptions(dtm.StopAndGo)); err != nil {
		t.Fatal(err)
	} else if err := b.Restore(&bad); err == nil {
		t.Error("restore of a future format version should fail")
	}
}

// TestStateFileRoundTrip proves on-disk snapshots reproduce: write a
// warmup snapshot to disk, read it back, restore, and the continuation
// must match restoring the in-memory state.
func TestStateFileRoundTrip(t *testing.T) {
	const quantum = 100_000
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	warm, err := New(cfg, threads, Options{Policy: dtm.None, WarmupCycles: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := warm.WarmupSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "warm.snap")
	if err := WriteStateFile(path, ms); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}

	run := func(state *MachineState) *Result {
		s, err := New(cfg, threads, stateOptions(dtm.SelectiveSedation))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Restore(state); err != nil {
			t.Fatal(err)
		}
		r, err := s.RunCycles(quantum)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	if want, got := run(ms), run(decoded); !reflect.DeepEqual(want, got) {
		t.Errorf("decoded snapshot continuation diverges:\nmemory: %+v\ndisk:   %+v", want, got)
	}

	if _, err := ReadState(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input should be rejected")
	}
}

// FuzzSnapshotContinuation snapshots at a fuzz-chosen sensor boundary
// mid-attack (with a gob round-trip thrown in) and checks continuation
// equality under a fuzz-chosen policy — on the single-core lumped
// machine and, when gridSel selects it, on a 2-core grid die with a
// fuzz-chosen mesh resolution (exercising the solver's snapshot
// boundaries and the chip DTM scope).
func FuzzSnapshotContinuation(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(0))
	f.Add(uint8(0), uint8(4), uint8(0))
	f.Add(uint8(7), uint8(2), uint8(0))
	f.Add(uint8(2), uint8(4), uint8(1)) // 2-core grid, per-core sedation
	f.Add(uint8(5), uint8(5), uint8(3)) // 2-core grid, chip scope
	f.Fuzz(func(t *testing.T, splitSel, policySel, gridSel uint8) {
		cfg := quickCfg()
		sensor := int64(cfg.Thermal.SensorIntervalCycles)
		// Snapshot after 1..8 sensor intervals, continue to a fixed total.
		split := (1 + int64(splitSel)%8) * sensor
		total := 10 * sensor
		kinds := append(dtm.Kinds(), dtm.ChipRoundRobin)
		policy := kinds[int(policySel)%len(kinds)]
		threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}

		if gridSel != 0 {
			// Multi-core grid path: the attack pair split across two cores.
			cfg.Topology = config.Topology{Cores: 2, Solver: config.SolverGrid,
				GridN: 8 * (1 + int(gridSel)%3)}
			mo := MultiOptions{WarmupCycles: 60_000, TraceTemps: true, CollectEvents: true}
			if policy == dtm.ChipRoundRobin {
				mo.Scope = dtm.ScopeChip
			} else {
				mo.Scope, mo.Policy = dtm.ScopePerCore, policy
			}
			coreThreads := [][]Thread{{threads[1]}, {threads[0]}}
			a, err := NewMulti(cfg, coreThreads, mo)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := a.RunCycles(split); err != nil {
				t.Fatal(err)
			}
			ms, err := a.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			straight, err := a.RunCycles(total - split)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteState(&buf, ms); err != nil {
				t.Fatal(err)
			}
			decoded, err := ReadState(&buf)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewMulti(cfg, coreThreads, mo)
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Restore(decoded); err != nil {
				t.Fatal(err)
			}
			restored, err := b.RunCycles(total - split)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(straight, restored) {
				t.Errorf("grid %s split %d: continuation diverges after gob round-trip", policy, split)
			}
			return
		}
		if policy == dtm.ChipRoundRobin {
			policy = dtm.StopAndGo // chip scope has no single-core form
		}

		a, err := New(cfg, threads, stateOptions(policy))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.RunCycles(split); err != nil {
			t.Fatal(err)
		}
		ms, err := a.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		straight, err := a.RunCycles(total - split)
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := WriteState(&buf, ms); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadState(&buf)
		if err != nil {
			t.Fatal(err)
		}

		b, err := New(cfg, threads, stateOptions(policy))
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Restore(decoded); err != nil {
			t.Fatal(err)
		}
		restored, err := b.RunCycles(total - split)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(straight, restored) {
			t.Errorf("policy %s split %d: continuation diverges after gob round-trip", policy, split)
		}
	})
}
