// Package sim wires the full system together — SMT core, activity-based
// power model, RC thermal network, temperature sensors, and a dynamic
// thermal management policy — and runs OS quanta, producing the
// measurements the paper's figures report.
package sim

import (
	"fmt"
	"strconv"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/cpu"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/stats"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/internal/thermal"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
)

// Thread is one software thread scheduled onto a hardware context.
type Thread struct {
	Name string
	Prog *isa.Program
}

// Options tune a simulation beyond the machine configuration.
type Options struct {
	// Policy selects the DTM policy (default dtm.StopAndGo).
	Policy dtm.Kind
	// TraceTemps records the IntReg die temperature every sensor
	// interval into Result.RFTrace.
	TraceTemps bool
	// WarmupCycles runs the pipeline this long before measurement
	// begins: caches fill, predictors train, and the thermal network is
	// then re-anchored at its steady operating point. Warmup activity
	// is excluded from every reported statistic.
	WarmupCycles int64
	// Recorder, when set, receives one trace.Sample per sensor interval
	// (temperatures, power, stall state, per-thread interval IPC).
	Recorder *trace.Recorder
	// CollectEvents enables the typed DTM event stream: threshold
	// crossings, sedation start/end with the culprit thread and EWMA
	// score, stop-and-go engage/release, emergency trips, and OS
	// culprit reports land in Result.Events in emission order. Events
	// are emitted only at sensor boundaries, so collection does not
	// perturb the hot path (and results stay byte-identical).
	CollectEvents bool
	// DisableFastForward runs every cycle through the full pipeline
	// step instead of fast-forwarding provably idle stall spans. The
	// two modes are byte-identical by construction (enforced by the
	// fast-forward equivalence tests); the switch exists so differential
	// suites can prove properties on both execution paths.
	DisableFastForward bool
	// Tracer, when set, records one "sim.quantum" span per measurement
	// quantum (BeginRun through FinishRun) parented under TraceParent.
	// Spans carry wall-clock boundaries plus cycle/temperature attrs and
	// never feed back into simulation state, so results are
	// byte-identical with and without them (enforced by the tracing
	// determinism guard). With Tracer nil the entire cost is one nil
	// check per quantum — zero allocations, like the disabled sensor
	// pipeline.
	Tracer *tracing.Tracer
	// TraceParent is the span context quantum spans parent under
	// (typically the per-sweep-job span). Ignored when invalid.
	TraceParent tracing.SpanContext
}

// ThreadResult is one thread's measurements over the quantum.
type ThreadResult struct {
	Name      string
	Committed uint64
	Fetched   uint64
	// IPC is committed instructions per quantum cycle (stalls included,
	// as in the paper's Figure 5).
	IPC float64
	// IntRegRate is the flat average integer-register-file access rate
	// in accesses per cycle over the whole quantum (Figure 3's metric).
	IntRegRate  float64
	Breakdown   stats.Breakdown
	Mispredicts uint64
	L2Squashes  uint64
}

// Result is one quantum's measurements.
type Result struct {
	Cycles  int64
	Threads []ThreadResult
	// Emergencies counts rising crossings of the emergency temperature
	// at any sensor (Figure 4's metric).
	Emergencies int
	// StopGoCycles is time the whole pipeline was halted.
	StopGoCycles int64
	// PeakTemp/PeakUnit track the hottest observation.
	PeakTemp float64
	PeakUnit power.Unit
	// FinalTemps are per-unit die temperatures at quantum end.
	FinalTemps [power.NumUnits]float64
	// Sedation carries the engine counters and OS reports (empty for
	// other policies).
	Sedation score.Stats
	Reports  []score.Report
	// RFTrace is the IntReg temperature per sensor interval when
	// Options.TraceTemps is set.
	RFTrace []float64
	// TotalPowerW is the average chip power over the quantum.
	TotalPowerW float64
	// Events is the quantum's typed DTM timeline when
	// Options.CollectEvents is set (see telemetry.Event).
	Events []telemetry.Event
}

// Simulator couples one core with its power, thermal, and DTM models.
type Simulator struct {
	cfg    config.Config
	core   *cpu.Core
	model  *power.Model
	net    *thermal.Network
	mon    *score.Monitor
	policy dtm.Policy
	opts   Options

	threads []Thread
	reports []score.Report
	events  *telemetry.EventLog
	// unitTemp is net.UnitTemp bound once at construction: policy.Tick
	// takes it as a func value, and rebuilding the bound method every
	// sensor interval was one heap allocation per interval.
	unitTemp func(power.Unit) float64
	// sampleScratch is the reusable sensor-interval observation handed
	// to the recorder. RecordCopy deep-copies it into recorder-owned
	// storage, so refilling the same scratch every interval is safe and
	// keeps the record path allocation-free.
	sampleScratch trace.Sample
	warmed        bool
	// started flips at the first RunCycles; WarmupSnapshot refuses to
	// run after it (the state would no longer be policy-agnostic).
	started bool
	// poolKey is the construction identity under which a Pool recycles
	// this simulator; empty for simulators built outside a pool.
	poolKey string
	// qr is the measurement quantum in progress between BeginRun and
	// FinishRun (nil otherwise). Snapshot captures it, so a simulation
	// can fork mid-quantum at any sensor boundary.
	qr *quantumRun
}

// quantumRun is the live state of one measurement quantum: the loop
// counters and partial accumulators RunCycles used to keep in locals,
// lifted into a struct so a quantum can pause at a chunk boundary,
// be snapshotted, and resume — in this simulator or a forked one.
type quantumRun struct {
	quantum int64
	done    int64
	chunks  int64

	res            *Result
	aboveEmergency bool
	energyAccum    float64
	eventsStart    int

	startCycle    int64
	startStalled  uint64
	startStats    []cpu.ThreadStats
	startRF       []uint64
	lastCommitted []uint64

	// traceStartNS is the quantum's wall-clock open time, captured only
	// when a tracer is attached (zero otherwise).
	traceStartNS int64
}

// New builds a simulator for the given machine, threads, and options.
func New(cfg config.Config, threads []Thread, opts Options) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(threads) == 0 {
		return nil, fmt.Errorf("sim: no threads")
	}
	if cfg.Thermal.SensorIntervalCycles%cfg.Sedation.SampleIntervalCycles != 0 {
		return nil, fmt.Errorf("sim: sensor interval %d must be a multiple of the sample interval %d",
			cfg.Thermal.SensorIntervalCycles, cfg.Sedation.SampleIntervalCycles)
	}
	if opts.Policy == "" {
		opts.Policy = dtm.StopAndGo
	}

	progs := make([]*isa.Program, len(threads))
	for i, t := range threads {
		if t.Prog == nil {
			return nil, fmt.Errorf("sim: thread %d (%s) has no program", i, t.Name)
		}
		progs[i] = t.Prog
	}
	c, err := cpu.New(&cfg, progs)
	if err != nil {
		return nil, err
	}
	if opts.DisableFastForward {
		c.SetFastForward(false)
	}

	fp := floorplan.Default()
	model, err := power.NewModel(power.DefaultEnergies(), cfg.Power.FrequencyHz, cfg.Power.Vdd,
		cfg.Power.EnergyScale, cfg.Power.LeakageWPerMM2, fp.UnitAreas())
	if err != nil {
		return nil, err
	}
	net, err := thermal.New(fp, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	// Start the die at its steady operating point for a typical mix, so
	// quanta begin at the paper's normal operating temperatures.
	net.InitSteady(model.SteadyPowers(power.TypicalRates()))

	s := &Simulator{cfg: cfg, core: c, model: model, net: net, opts: opts, threads: threads}
	s.unitTemp = net.UnitTemp
	if opts.Recorder != nil {
		s.sampleScratch.ThreadIPC = make([]float64, len(threads))
		s.sampleScratch.ThreadSedated = make([]bool, len(threads))
	}
	if opts.CollectEvents {
		s.events = &telemetry.EventLog{}
	}

	mon, err := score.NewMonitor(cfg.Sedation, c.Activity())
	if err != nil {
		return nil, err
	}
	s.mon = mon

	if err := s.buildPolicy(); err != nil {
		return nil, err
	}
	return s, nil
}

// buildPolicy constructs the DTM policy (and, for selective sedation,
// its engine) from the simulator's configuration, replacing any
// previous one. New calls it once; Restore calls it again when loading
// a policy-agnostic warmup snapshot, so a recycled simulator's policy
// is indistinguishable from a freshly constructed one. Policy
// constructors read only configuration and nominal machine parameters
// (DVS captures the supply voltage, which warmup never changes), so
// building before warmup and rebuilding after a warm restore yield
// identical policies.
func (s *Simulator) buildPolicy() error {
	p, err := buildCorePolicy(s.opts.Policy, s.cfg, s.core, s.model, s.mon,
		s.coolingCycles(), s.events, &s.reports)
	if err != nil {
		return err
	}
	s.policy = p
	return nil
}

// buildCorePolicy constructs one core's DTM policy (and, for selective
// sedation, its engine) from configuration and that core's machinery.
// It is shared between the single-core Simulator and each core of a
// MultiSimulator, so per-core policies behave identically in both.
func buildCorePolicy(kind dtm.Kind, cfg config.Config, c *cpu.Core, model *power.Model,
	mon *score.Monitor, cool int64, events *telemetry.EventLog, reports *[]score.Report) (dtm.Policy, error) {
	var policy dtm.Policy
	switch kind {
	case dtm.None:
		policy = dtm.NewNone()
	case dtm.StopAndGo:
		policy = dtm.NewStopAndGo(c, cfg.Thermal, cool)
	case dtm.DVS:
		policy = dtm.NewDVS(c, model, cfg.Thermal, cool)
	case dtm.TTDFS:
		policy = dtm.NewTTDFS(c, cfg.Thermal)
	case dtm.SelectiveSedation:
		engine, err := score.NewEngine(cfg.Sedation, mon, c, cool,
			func(r score.Report) {
				*reports = append(*reports, r)
				events.Emit(telemetry.Event{Cycle: r.Cycle, Kind: telemetry.KindOSReport,
					Unit: r.Unit.String(), Thread: r.Thread, Rate: r.Rate})
			})
		if err != nil {
			return nil, err
		}
		engine.SetEvents(events)
		policy, err = dtm.NewSelectiveSedation(c, cfg.Thermal, engine, cool)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sim: unknown policy %q", kind)
	}
	dtm.SetEventLog(policy, events)
	return policy, nil
}

// coolingCycles converts Table 1's thermal-RC cooling time into scaled
// cycles; stop-and-go stalls this long per emergency and selective
// sedation derives its re-examination delay from it.
func (s *Simulator) coolingCycles() int64 {
	return coolingCyclesFor(s.cfg)
}

func coolingCyclesFor(cfg config.Config) int64 {
	ms := cfg.Thermal.CoolingTimeMs
	if ms <= 0 {
		ms = 10
	}
	seconds := ms * 1e-3 / cfg.Thermal.Scale
	return int64(seconds * cfg.Power.FrequencyHz)
}

// Core exposes the pipeline (for tests and examples).
func (s *Simulator) Core() *cpu.Core { return s.core }

// Network exposes the thermal network.
func (s *Simulator) Network() *thermal.Network { return s.net }

// Monitor exposes the sedation monitor.
func (s *Simulator) Monitor() *score.Monitor { return s.mon }

// Policy exposes the active DTM policy.
func (s *Simulator) Policy() dtm.Policy { return s.policy }

// Run simulates one OS quantum and returns its measurements.
func (s *Simulator) Run() (*Result, error) {
	return s.RunCycles(s.cfg.Run.QuantumCycles)
}

// record captures one trace sample at a sensor boundary into the
// reusable scratch and hands it to the recorder by copy.
func (s *Simulator) record(powers *[power.NumUnits]float64, stalled bool, lastCommitted []uint64) {
	sample := &s.sampleScratch
	sample.Cycle = s.core.Cycle()
	sample.Stalled = stalled
	sample.TotalPowerW = thermal.TotalPower(*powers)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		sample.UnitTempK[u] = s.net.UnitTemp(u)
	}
	interval := float64(s.cfg.Thermal.SensorIntervalCycles)
	for tid := range s.threads {
		cur := s.core.Stats(tid).Committed
		sample.ThreadIPC[tid] = float64(cur-lastCommitted[tid]) / interval
		lastCommitted[tid] = cur
		sample.ThreadSedated[tid] = !s.core.FetchEnabled(tid)
	}
	s.opts.Recorder.RecordCopy(sample)
}

// warmup runs the pipeline without measurement so caches fill and
// predictors train, then re-anchors every measurement baseline.
func (s *Simulator) warmup() {
	if s.warmed {
		return
	}
	s.warmed = true
	if s.opts.WarmupCycles <= 0 {
		return
	}
	s.core.Run(s.opts.WarmupCycles)
	s.model.Prime(s.core.Activity())
	s.mon.Prime()
	s.net.InitSteady(s.model.SteadyPowers(power.TypicalRates()))
}

// RunCycles simulates the given number of cycles.
func (s *Simulator) RunCycles(quantum int64) (*Result, error) {
	if err := s.BeginRun(quantum); err != nil {
		return nil, err
	}
	if _, err := s.StepRun(quantum); err != nil {
		return nil, err
	}
	return s.FinishRun()
}

// BeginRun opens a measurement quantum: it runs the warmup (if
// pending) and anchors every per-quantum baseline. Advance the quantum
// with StepRun and close it with FinishRun; RunCycles is exactly that
// composition. Only one quantum may be in progress at a time.
func (s *Simulator) BeginRun(quantum int64) error {
	if quantum <= 0 {
		return fmt.Errorf("sim: quantum %d must be positive", quantum)
	}
	if s.qr != nil {
		return fmt.Errorf("sim: a quantum is already in progress (%d of %d cycles done)", s.qr.done, s.qr.quantum)
	}
	s.started = true
	s.warmup()

	// FinishRun copies the open quantum's event span out into its
	// Result, so nothing outside the quantum reads the log: each
	// BeginRun reuses the log's backing storage instead of letting a
	// long-lived simulator grow it without bound.
	s.events.Reset()

	qr := &quantumRun{
		quantum:       quantum,
		res:           &Result{PeakTemp: -1},
		eventsStart:   s.events.Len(),
		startCycle:    s.core.Cycle(),
		startStalled:  s.core.StalledCycles(),
		startStats:    make([]cpu.ThreadStats, len(s.threads)),
		startRF:       make([]uint64, len(s.threads)),
		lastCommitted: make([]uint64, len(s.threads)),
	}
	for tid := range s.threads {
		qr.startStats[tid] = s.core.Stats(tid)
		qr.startRF[tid] = s.core.Activity().Thread(tid, power.UnitIntReg)
	}
	if s.opts.TraceTemps {
		// One entry per sensor boundary: size the trace up front so the
		// appends in StepRun never grow the backing array.
		qr.res.RFTrace = make([]float64, 0, quantum/int64(s.cfg.Thermal.SensorIntervalCycles)+1)
	}
	if s.opts.Recorder != nil {
		for tid := range s.threads {
			qr.lastCommitted[tid] = s.core.Stats(tid).Committed
		}
	}
	if s.opts.Tracer != nil {
		qr.traceStartNS = time.Now().UnixNano()
	}
	s.qr = qr
	return nil
}

// StepRun advances the open quantum until at least upTo of its cycles
// are done (clamped to the quantum length), stopping at a sample-chunk
// boundary, and reports whether the quantum is complete. Every sensor
// boundary inside the advanced span runs exactly as it would have in a
// single RunCycles call, so pausing — and forking via Snapshot — at
// any chunk boundary is invisible to the results.
func (s *Simulator) StepRun(upTo int64) (bool, error) {
	qr := s.qr
	if qr == nil {
		return false, fmt.Errorf("sim: StepRun without BeginRun")
	}
	if upTo > qr.quantum {
		upTo = qr.quantum
	}
	sample := int64(s.cfg.Sedation.SampleIntervalCycles)
	sensorEvery := int64(s.cfg.Thermal.SensorIntervalCycles) / sample
	secondsPerSensor := float64(s.cfg.Thermal.SensorIntervalCycles) / s.cfg.Power.FrequencyHz
	res := qr.res
	var powers [power.NumUnits]float64
	for qr.done < upTo {
		// stalled feeds the trace recorder only; the gated-cycle count
		// comes from the core's own accounting below, which stays exact
		// even if a policy ever toggles the stall mid-chunk.
		stalled := s.core.GlobalStalled()
		s.core.Run(sample)
		qr.done += sample
		qr.chunks++
		s.mon.Sample()

		if qr.chunks%sensorEvery == 0 {
			if err := s.model.Interval(s.core.Activity(), int64(s.cfg.Thermal.SensorIntervalCycles), &powers); err != nil {
				return false, err
			}
			qr.energyAccum += thermal.TotalPower(powers) * secondsPerSensor
			s.net.Step(powers, secondsPerSensor)
			maxU, maxT := s.net.MaxUnit()
			if maxT > res.PeakTemp {
				res.PeakTemp, res.PeakUnit = maxT, maxU
			}
			if maxT >= s.cfg.Thermal.EmergencyK {
				if !qr.aboveEmergency {
					res.Emergencies++
					qr.aboveEmergency = true
					s.events.Emit(telemetry.Event{Cycle: s.core.Cycle(), Kind: telemetry.KindEmergency,
						Unit: maxU.String(), Thread: -1, TempK: maxT})
				}
			} else {
				qr.aboveEmergency = false
			}
			s.policy.Tick(s.core.Cycle(), maxT, s.unitTemp)
			if s.opts.TraceTemps {
				res.RFTrace = append(res.RFTrace, s.net.UnitTemp(power.UnitIntReg))
			}
			if s.opts.Recorder != nil {
				s.record(&powers, stalled, qr.lastCommitted)
			}
		}
	}
	return qr.done >= qr.quantum, nil
}

// RunProgress reports the open quantum's position (cycles done, total);
// both are zero when no quantum is in progress.
func (s *Simulator) RunProgress() (done, quantum int64) {
	if s.qr == nil {
		return 0, 0
	}
	return s.qr.done, s.qr.quantum
}

// FinishRun closes the open quantum and returns its measurements. It
// finalizes at the quantum's current position, so a caller that
// stepped only part of the quantum gets a correspondingly shorter
// Result (RunCycles always steps to completion first).
func (s *Simulator) FinishRun() (*Result, error) {
	qr := s.qr
	if qr == nil {
		return nil, fmt.Errorf("sim: FinishRun without BeginRun")
	}
	s.qr = nil
	res := qr.res

	elapsed := s.core.Cycle() - qr.startCycle
	res.Cycles = elapsed
	res.StopGoCycles = int64(s.core.StalledCycles() - qr.startStalled)
	res.TotalPowerW = qr.energyAccum / (float64(elapsed) / s.cfg.Power.FrequencyHz)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		res.FinalTemps[u] = s.net.UnitTemp(u)
	}
	if eng := s.policy.Engine(); eng != nil {
		res.Sedation = eng.Stats()
	}
	res.Reports = append(res.Reports, s.reports...)
	if s.events != nil {
		res.Events = append(res.Events, s.events.Events[qr.eventsStart:]...)
	}

	res.Threads = make([]ThreadResult, 0, len(s.threads))
	for tid, t := range s.threads {
		st := s.core.Stats(tid).Sub(qr.startStats[tid])
		sed := int64(st.SedatedCycles)
		cooling := res.StopGoCycles
		normal := elapsed - cooling - sed
		if normal < 0 {
			normal = 0
		}
		res.Threads = append(res.Threads, ThreadResult{
			Name:       t.Name,
			Committed:  st.Committed,
			Fetched:    st.Fetched,
			IPC:        st.IPC(elapsed),
			IntRegRate: float64(s.core.Activity().Thread(tid, power.UnitIntReg)-qr.startRF[tid]) / float64(elapsed),
			Breakdown: stats.Breakdown{
				NormalCycles:   normal,
				CoolingCycles:  cooling,
				SedationCycles: sed,
			},
			Mispredicts: st.Mispredicts,
			L2Squashes:  st.L2Squashes,
		})
	}
	s.traceQuantum(res, qr.traceStartNS)
	return res, nil
}

// traceQuantum records the quantum-boundary span when a tracer is
// attached. The nil check is the entire disabled-path cost: no time
// reads, no allocations, no branch inside the cycle loop.
func (s *Simulator) traceQuantum(res *Result, startNS int64) {
	tr := s.opts.Tracer
	if tr == nil {
		return
	}
	parent := s.opts.TraceParent
	if !parent.Valid() {
		return
	}
	tr.Emit(parent, "sim.quantum", startNS, time.Now().UnixNano(), map[string]string{
		"cycles":      strconv.FormatInt(res.Cycles, 10),
		"peak_temp_k": strconv.FormatFloat(res.PeakTemp, 'f', 2, 64),
		"policy":      string(s.opts.Policy),
	})
}
