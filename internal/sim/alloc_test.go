package sim

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// allocSim builds a warmed-up simulator mid-quantum, so AllocsPerRun
// measures the steady-state sensor pipeline, not construction or the
// first quantum's capacity growth.
func allocSim(t *testing.T, policy dtm.Kind, opts Options) *Simulator {
	t.Helper()
	cfg := config.Default()
	cfg.Run.QuantumCycles = 1_000_000
	prog, err := workload.Spec("gcc", 1)
	if err != nil {
		t.Fatal(err)
	}
	opts.Policy = policy
	s, err := New(cfg, []Thread{{Name: "gcc", Prog: prog}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One full quantum grows every buffer to its high-water mark. A
	// caller that drains the recorder per quantum resets it, which is
	// what keeps the record path allocation-free afterwards.
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if opts.Recorder != nil {
		opts.Recorder.Reset()
	}
	if err := s.BeginRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	return s
}

// stepOneInterval advances the open quantum by exactly one sensor
// interval — the sensor pipeline's unit of work.
func stepOneInterval(t *testing.T, s *Simulator) func() {
	t.Helper()
	interval := int64(s.cfg.Thermal.SensorIntervalCycles)
	return func() {
		done, _ := s.RunProgress()
		if done+interval > s.qr.quantum {
			// Re-open a fresh quantum when the current one runs out.
			if _, err := s.FinishRun(); err != nil {
				t.Fatal(err)
			}
			if s.opts.Recorder != nil {
				s.opts.Recorder.Reset()
			}
			if err := s.BeginRun(s.cfg.Run.QuantumCycles); err != nil {
				t.Fatal(err)
			}
			done = 0
		}
		if _, err := s.StepRun(done + interval); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSensorPipelineZeroAllocs pins the per-sensor-interval allocation
// count of the full sensor pipeline — monitor sample, power interval,
// thermal step, policy tick — at zero for every observation mode: the
// hot path must not allocate whether or not a recorder or the event
// stream is attached.
func TestSensorPipelineZeroAllocs(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"bare", Options{}},
		{"events", Options{CollectEvents: true}},
		{"temps", Options{TraceTemps: true}},
		{"recorder", Options{Recorder: &trace.Recorder{}}},
		{"recorder+events", Options{Recorder: &trace.Recorder{}, CollectEvents: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := allocSim(t, dtm.StopAndGo, tc.opts)
			step := stepOneInterval(t, s)
			if allocs := testing.AllocsPerRun(50, step); allocs > 0 {
				t.Fatalf("sensor interval allocates %.1f times per run, want 0", allocs)
			}
		})
	}
}

// TestTraceQuantumDisabledZeroAlloc pins the tracing-off fast path:
// with no Tracer attached, the quantum-boundary trace hook is a single
// nil check — zero allocations, zero time reads — so a daemon running
// with -trace-buf -1 pays nothing per quantum.
func TestTraceQuantumDisabledZeroAlloc(t *testing.T) {
	s := allocSim(t, dtm.StopAndGo, Options{})
	res := &Result{Cycles: 1_000_000, PeakTemp: 350}
	if allocs := testing.AllocsPerRun(100, func() {
		s.traceQuantum(res, 0)
	}); allocs > 0 {
		t.Fatalf("disabled traceQuantum allocates %.1f times per run, want 0", allocs)
	}
	// An attached tracer without a span context is still a no-op: the
	// simulator never invents trace roots of its own.
	s.opts.Tracer = tracing.NewTracer("sim-test", 16)
	if allocs := testing.AllocsPerRun(100, func() {
		s.traceQuantum(res, 0)
	}); allocs > 0 {
		t.Fatalf("parentless traceQuantum allocates %.1f times per run, want 0", allocs)
	}
	if got := s.opts.Tracer.Recorded(); got != 0 {
		t.Fatalf("parentless traceQuantum recorded %d spans, want 0", got)
	}
}

// TestSensorPipelineZeroAllocsSedation repeats the gate under the
// paper's policy, whose tick path (monitor scan, engine bookkeeping)
// is the most involved.
func TestSensorPipelineZeroAllocsSedation(t *testing.T) {
	s := allocSim(t, dtm.SelectiveSedation, Options{CollectEvents: true})
	step := stepOneInterval(t, s)
	if allocs := testing.AllocsPerRun(50, step); allocs > 0 {
		t.Fatalf("sensor interval allocates %.1f times per run, want 0", allocs)
	}
}
