package sim

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
)

// poolWarm builds the policy-agnostic warmup snapshot the pool tests
// restore from.
func poolWarm(t *testing.T, o Options) *MachineState {
	t.Helper()
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	s, err := New(cfg, threads, Options{Policy: dtm.None, WarmupCycles: o.WarmupCycles})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := s.WarmupSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// TestPoolDirtyReuseByteIdentity is the reuse pool's proof obligation:
// a simulator that already ran a full quantum under one policy, went
// back to the pool, and was recycled for a different policy must —
// after restoring the shared warmup snapshot — produce a Result
// deep-equal to a freshly constructed simulator's. Checked for every
// DTM policy, each recycled from a dirty simulator that ran under a
// different one.
func TestPoolDirtyReuseByteIdentity(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	total := 10 * int64(cfg.Thermal.SensorIntervalCycles)

	kinds := dtm.Kinds()
	for i, policy := range kinds {
		t.Run(string(policy), func(t *testing.T) {
			opts := stateOptions(policy)
			ms := poolWarm(t, opts)

			fresh, err := New(cfg, threads, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := fresh.Restore(ms); err != nil {
				t.Fatal(err)
			}
			want, err := fresh.RunCycles(total)
			if err != nil {
				t.Fatal(err)
			}

			// Dirty a pooled simulator under a different policy first.
			pool := NewPool()
			dirtyOpts := stateOptions(kinds[(i+1)%len(kinds)])
			dirty, err := pool.Get(cfg, threads, dirtyOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := dirty.Restore(ms); err != nil {
				t.Fatal(err)
			}
			if _, err := dirty.RunCycles(total); err != nil {
				t.Fatal(err)
			}
			pool.Put(dirty)

			s, err := pool.Get(cfg, threads, opts)
			if err != nil {
				t.Fatal(err)
			}
			if hits, _ := pool.Stats(); hits != 1 {
				t.Fatalf("pool hits = %d, want 1 (cross-policy recycle)", hits)
			}
			if s != dirty {
				t.Fatal("pool returned a different simulator than it recycled")
			}
			if err := s.Restore(ms); err != nil {
				t.Fatal(err)
			}
			got, err := s.RunCycles(total)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("recycled simulator diverges from fresh construction under %s", policy)
			}
		})
	}
}

// TestPoolObservationAdaptation checks that Get re-options a recycled
// simulator: a simulator pooled with events and temperature tracing on
// must serve a bare request (and vice versa) with results identical to
// fresh construction.
func TestPoolObservationAdaptation(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	total := 10 * int64(cfg.Thermal.SensorIntervalCycles)
	rich := stateOptions(dtm.SelectiveSedation)
	bare := Options{Policy: dtm.SelectiveSedation, WarmupCycles: rich.WarmupCycles}
	ms := poolWarm(t, rich)

	run := func(s *Simulator) *Result {
		t.Helper()
		if err := s.Restore(ms); err != nil {
			t.Fatal(err)
		}
		r, err := s.RunCycles(total)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	for name, pair := range map[string][2]Options{
		"rich-then-bare": {rich, bare},
		"bare-then-rich": {bare, rich},
	} {
		t.Run(name, func(t *testing.T) {
			fresh, err := New(cfg, threads, pair[1])
			if err != nil {
				t.Fatal(err)
			}
			want := run(fresh)

			pool := NewPool()
			first, err := pool.Get(cfg, threads, pair[0])
			if err != nil {
				t.Fatal(err)
			}
			run(first)
			pool.Put(first)
			second, err := pool.Get(cfg, threads, pair[1])
			if err != nil {
				t.Fatal(err)
			}
			if hits, _ := pool.Stats(); hits != 1 {
				t.Fatalf("pool hits = %d, want 1", hits)
			}
			got := run(second)
			if !reflect.DeepEqual(got, want) {
				t.Error("re-optioned recycled simulator diverges from fresh construction")
			}
		})
	}
}

// TestPoolBypassesRecorder: requests carrying a caller-owned recorder
// never recycle (fresh construction, and Put drops them).
func TestPoolBypassesRecorder(t *testing.T) {
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty")}
	opts := stateOptions(dtm.StopAndGo)

	pool := NewPool()
	plain, err := pool.Get(cfg, threads, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(plain)

	withRec := opts
	withRec.Recorder = &trace.Recorder{}
	s, err := pool.Get(cfg, threads, withRec)
	if err != nil {
		t.Fatal(err)
	}
	if s == plain {
		t.Fatal("pool served a recycled simulator to a recorder-carrying request")
	}
	if s.poolKey != "" {
		t.Fatal("recorder-carrying simulator is marked poolable")
	}
	pool.Put(s) // must be a no-op
	if hits, misses := pool.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("pool stats = %d hits / %d misses, want 0/1", hits, misses)
	}
}
