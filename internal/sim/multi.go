package sim

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/cpu"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/stats"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/thermal"
)

// MultiOptions tune a multi-core simulation.
type MultiOptions struct {
	// Scope selects the DTM scope (default dtm.ScopePerCore).
	Scope dtm.Scope
	// Policy selects each core's DTM policy under the per-core scope
	// (default dtm.StopAndGo). Under the chip scope it must be empty or
	// dtm.ChipRoundRobin — the chip scope's one policy.
	Policy dtm.Kind
	// WarmupCycles runs every core this long before measurement begins,
	// then re-anchors the die at its steady operating point.
	WarmupCycles int64
	// TraceTemps records each core's IntReg temperature per sensor
	// interval into its CoreResult.RFTrace.
	TraceTemps bool
	// CollectEvents enables the typed DTM event stream (one merged
	// chip-wide timeline; per-core policies emit in core order).
	CollectEvents bool
	// DisableFastForward disables the stall fast-forward on every core.
	DisableFastForward bool
}

// MultiResult is one quantum's measurements over the whole die.
type MultiResult struct {
	Cycles int64
	// Cores holds one per-core Result: its threads, stall breakdowns,
	// sedation stats, per-core emergencies, and final temperatures.
	Cores []Result
	// Emergencies counts rising crossings of the emergency temperature
	// by the chip's hottest sensor (the DoS metric on a shared die).
	Emergencies int
	// PeakTemp/PeakUnit/PeakCore locate the hottest observation.
	PeakTemp float64
	PeakUnit power.Unit
	PeakCore int
	// Events is the merged chip-wide DTM timeline when
	// MultiOptions.CollectEvents is set.
	Events []telemetry.Event
}

// coreSim bundles one core's private machinery: pipeline, power model,
// sedation monitor, and (under the per-core scope) its DTM policy.
type coreSim struct {
	core    *cpu.Core
	model   *power.Model
	mon     *score.Monitor
	policy  dtm.Policy
	threads []Thread
	reports []score.Report
	// temp is the core's bound sensor read, allocated once so
	// policy.Tick never rebuilds the closure on the hot path.
	temp func(power.Unit) float64
}

// MultiSimulator drives K cores against one shared thermal substrate:
// each core has its own pipeline, power model, and monitor, but their
// power all lands on the same die, so one core's heat is every core's
// problem — the physical channel the neighbor-heat attack exploits.
type MultiSimulator struct {
	cfg    config.Config
	solver thermal.Solver
	cores  []*coreSim
	chip   dtm.ChipPolicy
	opts   MultiOptions
	events *telemetry.EventLog

	warmed  bool
	started bool
	mqr     *multiQuantumRun

	// powersScratch holds the per-core power vectors handed to the
	// solver each sensor interval, reused across intervals.
	powersScratch [][power.NumUnits]float64
	coreMaxT      []float64
}

// multiQuantumRun is the live state of one whole-die measurement
// quantum, the multi-core analogue of quantumRun: lifted into a struct
// so a quantum can pause at a chunk boundary, snapshot, and resume.
type multiQuantumRun struct {
	quantum int64
	done    int64
	chunks  int64

	res            *MultiResult
	aboveEmergency bool
	coreAbove      []bool
	eventsStart    int

	startCycle   int64
	startStalled []uint64
	startStats   [][]cpu.ThreadStats
	startRF      [][]uint64
}

// NewMulti builds a simulator for cfg.Topology.Cores cores, each
// running its own thread set, over one shared thermal solver.
func NewMulti(cfg config.Config, coreThreads [][]Thread, opts MultiOptions) (*MultiSimulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := cfg.Topology.Cores
	if k < 1 {
		k = 1
	}
	if len(coreThreads) != k {
		return nil, fmt.Errorf("sim: %d thread sets for %d cores", len(coreThreads), k)
	}
	if cfg.Thermal.SensorIntervalCycles%cfg.Sedation.SampleIntervalCycles != 0 {
		return nil, fmt.Errorf("sim: sensor interval %d must be a multiple of the sample interval %d",
			cfg.Thermal.SensorIntervalCycles, cfg.Sedation.SampleIntervalCycles)
	}
	if opts.Scope == "" {
		opts.Scope = dtm.ScopePerCore
	}
	switch opts.Scope {
	case dtm.ScopePerCore:
		if opts.Policy == "" {
			opts.Policy = dtm.StopAndGo
		}
	case dtm.ScopeChip:
		if opts.Policy == "" {
			opts.Policy = dtm.ChipRoundRobin
		}
		if opts.Policy != dtm.ChipRoundRobin {
			return nil, fmt.Errorf("sim: chip scope runs %q, not %q", dtm.ChipRoundRobin, opts.Policy)
		}
	default:
		return nil, fmt.Errorf("sim: unknown DTM scope %q", opts.Scope)
	}

	solver, err := thermal.NewSolver(cfg.Topology, cfg.Thermal)
	if err != nil {
		return nil, err
	}
	if solver.Cores() != k {
		return nil, fmt.Errorf("sim: solver models %d cores, topology %d", solver.Cores(), k)
	}

	m := &MultiSimulator{
		cfg:           cfg,
		solver:        solver,
		opts:          opts,
		cores:         make([]*coreSim, k),
		powersScratch: make([][power.NumUnits]float64, k),
		coreMaxT:      make([]float64, k),
	}
	if opts.CollectEvents {
		m.events = &telemetry.EventLog{}
	}

	// Each core's power model uses the single-core tile areas: a core
	// tile is a copy of the paper's floorplan, and the shared L2 spine's
	// K-fold area is matched by the K cores' summed L2 power, so power
	// density everywhere equals the single-core machine's.
	areas := floorplan.Default().UnitAreas()
	for c := 0; c < k; c++ {
		threads := coreThreads[c]
		if len(threads) == 0 {
			return nil, fmt.Errorf("sim: core %d has no threads", c)
		}
		progs := make([]*isa.Program, len(threads))
		for i, t := range threads {
			if t.Prog == nil {
				return nil, fmt.Errorf("sim: core %d thread %d (%s) has no program", c, i, t.Name)
			}
			progs[i] = t.Prog
		}
		cpuCore, err := cpu.New(&cfg, progs)
		if err != nil {
			return nil, err
		}
		if opts.DisableFastForward {
			cpuCore.SetFastForward(false)
		}
		model, err := power.NewModel(power.DefaultEnergies(), cfg.Power.FrequencyHz, cfg.Power.Vdd,
			cfg.Power.EnergyScale, cfg.Power.LeakageWPerMM2, areas)
		if err != nil {
			return nil, err
		}
		mon, err := score.NewMonitor(cfg.Sedation, cpuCore.Activity())
		if err != nil {
			return nil, err
		}
		cs := &coreSim{core: cpuCore, model: model, mon: mon, threads: threads}
		c := c
		cs.temp = func(u power.Unit) float64 { return m.solver.CoreUnitTemp(c, u) }
		m.cores[c] = cs
	}
	if err := m.buildPolicies(); err != nil {
		return nil, err
	}

	steady := make([][power.NumUnits]float64, k)
	for c, cs := range m.cores {
		steady[c] = cs.model.SteadyPowers(power.TypicalRates())
	}
	m.solver.InitSteadyCores(steady)
	return m, nil
}

// buildPolicies constructs the DTM layer for the configured scope:
// one policy per core (per-core scope, the five single-core policies
// unchanged) or one chip policy over every core's pipeline plus inert
// per-core policies (chip scope).
func (m *MultiSimulator) buildPolicies() error {
	cool := coolingCyclesFor(m.cfg)
	if m.opts.Scope == dtm.ScopeChip {
		pipes := make([]dtm.Pipeline, len(m.cores))
		for c, cs := range m.cores {
			cs.policy = dtm.NewNone()
			pipes[c] = cs.core
		}
		chip, err := dtm.NewChipRoundRobin(pipes, m.cfg.Thermal, cool)
		if err != nil {
			return err
		}
		dtm.SetChipEventLog(chip, m.events)
		m.chip = chip
		return nil
	}
	m.chip = nil
	for _, cs := range m.cores {
		p, err := buildCorePolicy(m.opts.Policy, m.cfg, cs.core, cs.model, cs.mon,
			cool, m.events, &cs.reports)
		if err != nil {
			return err
		}
		cs.policy = p
	}
	return nil
}

// Cores returns the die's core count.
func (m *MultiSimulator) Cores() int { return len(m.cores) }

// Solver exposes the shared thermal substrate.
func (m *MultiSimulator) Solver() thermal.Solver { return m.solver }

// Core exposes one core's pipeline (for tests).
func (m *MultiSimulator) Core(c int) *cpu.Core { return m.cores[c].core }

// ChipPolicy exposes the chip-scope policy (nil under per-core scope).
func (m *MultiSimulator) ChipPolicy() dtm.ChipPolicy { return m.chip }

// warmup mirrors the single-core warmup on every core, then re-anchors
// the shared die at its steady operating point.
func (m *MultiSimulator) warmup() {
	if m.warmed {
		return
	}
	m.warmed = true
	if m.opts.WarmupCycles <= 0 {
		return
	}
	steady := make([][power.NumUnits]float64, len(m.cores))
	for c, cs := range m.cores {
		cs.core.Run(m.opts.WarmupCycles)
		cs.model.Prime(cs.core.Activity())
		cs.mon.Prime()
		steady[c] = cs.model.SteadyPowers(power.TypicalRates())
	}
	m.solver.InitSteadyCores(steady)
}

// Run simulates one OS quantum and returns whole-die measurements.
func (m *MultiSimulator) Run() (*MultiResult, error) {
	return m.RunCycles(m.cfg.Run.QuantumCycles)
}

// RunCycles simulates the given number of cycles on every core.
func (m *MultiSimulator) RunCycles(quantum int64) (*MultiResult, error) {
	if err := m.BeginRun(quantum); err != nil {
		return nil, err
	}
	if _, err := m.StepRun(quantum); err != nil {
		return nil, err
	}
	return m.FinishRun()
}

// BeginRun opens a whole-die measurement quantum.
func (m *MultiSimulator) BeginRun(quantum int64) error {
	if quantum <= 0 {
		return fmt.Errorf("sim: quantum %d must be positive", quantum)
	}
	if m.mqr != nil {
		return fmt.Errorf("sim: a quantum is already in progress (%d of %d cycles done)", m.mqr.done, m.mqr.quantum)
	}
	m.started = true
	m.warmup()
	m.events.Reset()

	k := len(m.cores)
	mqr := &multiQuantumRun{
		quantum:      quantum,
		res:          &MultiResult{PeakTemp: -1, Cores: make([]Result, k)},
		coreAbove:    make([]bool, k),
		eventsStart:  m.events.Len(),
		startCycle:   m.cores[0].core.Cycle(),
		startStalled: make([]uint64, k),
		startStats:   make([][]cpu.ThreadStats, k),
		startRF:      make([][]uint64, k),
	}
	for c, cs := range m.cores {
		mqr.startStalled[c] = cs.core.StalledCycles()
		mqr.startStats[c] = make([]cpu.ThreadStats, len(cs.threads))
		mqr.startRF[c] = make([]uint64, len(cs.threads))
		for tid := range cs.threads {
			mqr.startStats[c][tid] = cs.core.Stats(tid)
			mqr.startRF[c][tid] = cs.core.Activity().Thread(tid, power.UnitIntReg)
		}
		mqr.res.Cores[c].PeakTemp = -1
		if m.opts.TraceTemps {
			mqr.res.Cores[c].RFTrace = make([]float64, 0, quantum/int64(m.cfg.Thermal.SensorIntervalCycles)+1)
		}
	}
	m.mqr = mqr
	return nil
}

// StepRun advances the open quantum until at least upTo of its cycles
// are done, stopping at a sample-chunk boundary, and reports whether
// the quantum is complete. Cores advance in index order within each
// chunk; the shared solver steps once per sensor interval over every
// core's power, so core order never affects the physics.
func (m *MultiSimulator) StepRun(upTo int64) (bool, error) {
	mqr := m.mqr
	if mqr == nil {
		return false, fmt.Errorf("sim: StepRun without BeginRun")
	}
	if upTo > mqr.quantum {
		upTo = mqr.quantum
	}
	sample := int64(m.cfg.Sedation.SampleIntervalCycles)
	sensorEvery := int64(m.cfg.Thermal.SensorIntervalCycles) / sample
	secondsPerSensor := float64(m.cfg.Thermal.SensorIntervalCycles) / m.cfg.Power.FrequencyHz
	res := mqr.res
	for mqr.done < upTo {
		for _, cs := range m.cores {
			cs.core.Run(sample)
			cs.mon.Sample()
		}
		mqr.done += sample
		mqr.chunks++

		if mqr.chunks%sensorEvery != 0 {
			continue
		}
		for c, cs := range m.cores {
			if err := cs.model.Interval(cs.core.Activity(),
				int64(m.cfg.Thermal.SensorIntervalCycles), &m.powersScratch[c]); err != nil {
				return false, err
			}
		}
		m.solver.StepCores(m.powersScratch, secondsPerSensor)

		cycle := m.cores[0].core.Cycle()
		chipMax, chipMaxU, chipMaxCore := -1.0, power.Unit(0), 0
		for c := range m.cores {
			maxU, maxT := m.solver.CoreMaxUnit(c)
			m.coreMaxT[c] = maxT
			cr := &res.Cores[c]
			if maxT > cr.PeakTemp {
				cr.PeakTemp, cr.PeakUnit = maxT, maxU
			}
			if maxT >= m.cfg.Thermal.EmergencyK {
				if !mqr.coreAbove[c] {
					cr.Emergencies++
					mqr.coreAbove[c] = true
				}
			} else {
				mqr.coreAbove[c] = false
			}
			if maxT > chipMax {
				chipMax, chipMaxU, chipMaxCore = maxT, maxU, c
			}
		}
		if chipMax > res.PeakTemp {
			res.PeakTemp, res.PeakUnit, res.PeakCore = chipMax, chipMaxU, chipMaxCore
		}
		if chipMax >= m.cfg.Thermal.EmergencyK {
			if !mqr.aboveEmergency {
				res.Emergencies++
				mqr.aboveEmergency = true
				m.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindEmergency,
					Unit: chipMaxU.String(), Thread: -1, TempK: chipMax})
			}
		} else {
			mqr.aboveEmergency = false
		}

		if m.chip != nil {
			m.chip.TickChip(cycle, m.coreMaxT)
		} else {
			for c, cs := range m.cores {
				cs.policy.Tick(cycle, m.coreMaxT[c], cs.temp)
			}
		}
		if m.opts.TraceTemps {
			for c := range m.cores {
				res.Cores[c].RFTrace = append(res.Cores[c].RFTrace,
					m.solver.CoreUnitTemp(c, power.UnitIntReg))
			}
		}
	}
	return mqr.done >= mqr.quantum, nil
}

// FinishRun closes the open quantum and returns its measurements.
func (m *MultiSimulator) FinishRun() (*MultiResult, error) {
	mqr := m.mqr
	if mqr == nil {
		return nil, fmt.Errorf("sim: FinishRun without BeginRun")
	}
	m.mqr = nil
	res := mqr.res
	elapsed := m.cores[0].core.Cycle() - mqr.startCycle
	res.Cycles = elapsed

	for c, cs := range m.cores {
		cr := &res.Cores[c]
		cr.Cycles = elapsed
		cr.StopGoCycles = int64(cs.core.StalledCycles() - mqr.startStalled[c])
		for u := power.Unit(0); u < power.NumUnits; u++ {
			cr.FinalTemps[u] = m.solver.CoreUnitTemp(c, u)
		}
		if eng := cs.policy.Engine(); eng != nil {
			cr.Sedation = eng.Stats()
		}
		cr.Reports = append(cr.Reports, cs.reports...)
		cr.Threads = make([]ThreadResult, 0, len(cs.threads))
		for tid, t := range cs.threads {
			st := cs.core.Stats(tid).Sub(mqr.startStats[c][tid])
			sed := int64(st.SedatedCycles)
			cooling := cr.StopGoCycles
			normal := elapsed - cooling - sed
			if normal < 0 {
				normal = 0
			}
			cr.Threads = append(cr.Threads, ThreadResult{
				Name:       t.Name,
				Committed:  st.Committed,
				Fetched:    st.Fetched,
				IPC:        st.IPC(elapsed),
				IntRegRate: float64(cs.core.Activity().Thread(tid, power.UnitIntReg)-mqr.startRF[c][tid]) / float64(elapsed),
				Breakdown: stats.Breakdown{
					NormalCycles:   normal,
					CoolingCycles:  cooling,
					SedationCycles: sed,
				},
				Mispredicts: st.Mispredicts,
				L2Squashes:  st.L2Squashes,
			})
		}
	}
	if m.events != nil {
		res.Events = append(res.Events, m.events.Events[mqr.eventsStart:]...)
	}
	return res, nil
}
