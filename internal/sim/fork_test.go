package sim

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
)

// forkRef runs a fresh simulator straight through total cycles — the
// cold reference every forked run must reproduce exactly.
func forkRef(t *testing.T, policy dtm.Kind, ff bool, total int64) *Result {
	t.Helper()
	s := forkSim(t, policy, ff)
	r, err := s.RunCycles(total)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func forkSim(t *testing.T, policy dtm.Kind, ff bool) *Simulator {
	t.Helper()
	cfg := quickCfg()
	threads := []Thread{specThread(t, "crafty"), variantThread(t, 2)}
	o := stateOptions(policy)
	o.DisableFastForward = !ff
	s, err := New(cfg, threads, o)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// FuzzForkBoundary is the mid-run fork hook's acceptance fuzz: pause an
// open quantum at a fuzz-chosen sensor boundary, snapshot, fork a child
// from the in-memory state, and require the child's Result — and the
// unforked original's — to be deep-equal to a cold straight-through
// run. Fuzzed over the split point, the DTM policy, and the
// fast-forward switch.
func FuzzForkBoundary(f *testing.F) {
	f.Add(uint8(3), uint8(1), true)
	f.Add(uint8(0), uint8(4), false)
	f.Add(uint8(7), uint8(2), true)
	f.Add(uint8(5), uint8(0), false)
	f.Fuzz(func(t *testing.T, splitSel, policySel uint8, ff bool) {
		cfg := quickCfg()
		sensor := int64(cfg.Thermal.SensorIntervalCycles)
		// Fork after 1..8 sensor intervals of a 10-interval quantum.
		split := (1 + int64(splitSel)%8) * sensor
		total := 10 * sensor
		policy := dtm.Kinds()[int(policySel)%len(dtm.Kinds())]

		want := forkRef(t, policy, ff, total)

		orig := forkSim(t, policy, ff)
		if err := orig.BeginRun(total); err != nil {
			t.Fatal(err)
		}
		if done, err := orig.StepRun(split); err != nil || done {
			t.Fatalf("StepRun(%d) = done %v, err %v", split, done, err)
		}
		if done, q := orig.RunProgress(); done != split || q != total {
			t.Fatalf("RunProgress = %d/%d, want %d/%d", done, q, split, total)
		}
		ms, err := orig.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if ms.Quantum == nil {
			t.Fatal("mid-quantum snapshot has no Quantum state")
		}

		child := forkSim(t, policy, ff)
		if err := child.Restore(ms); err != nil {
			t.Fatal(err)
		}
		if done, q := child.RunProgress(); done != split || q != total {
			t.Fatalf("child RunProgress = %d/%d, want %d/%d", done, q, split, total)
		}
		finish := func(s *Simulator) *Result {
			if done, err := s.StepRun(total); err != nil || !done {
				t.Fatalf("StepRun to end = done %v, err %v", done, err)
			}
			r, err := s.FinishRun()
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		childRes := finish(child)
		origRes := finish(orig)
		if !reflect.DeepEqual(childRes, want) {
			t.Errorf("policy %s ff=%v split %d: forked child diverges from cold run", policy, ff, split)
		}
		if !reflect.DeepEqual(origRes, want) {
			t.Errorf("policy %s ff=%v split %d: unforked original diverges from cold run", policy, ff, split)
		}
	})
}

// TestForkChildMutationDoesNotAlias is the aliasing regression test:
// running (mutating) one forked child must leave the parent snapshot
// byte-identical and a sibling child's run unaffected.
func TestForkChildMutationDoesNotAlias(t *testing.T) {
	const policy = dtm.SelectiveSedation
	cfg := quickCfg()
	sensor := int64(cfg.Thermal.SensorIntervalCycles)
	split, total := 4*sensor, 10*sensor

	want := forkRef(t, policy, true, total)

	parent := forkSim(t, policy, true)
	if err := parent.BeginRun(total); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.StepRun(split); err != nil {
		t.Fatal(err)
	}
	ms, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	before := ms.Clone()

	// Child A restores and runs to completion — every mutation it makes
	// must land in its own copies, never in ms.
	childA := forkSim(t, policy, true)
	if err := childA.Restore(ms); err != nil {
		t.Fatal(err)
	}
	if _, err := childA.StepRun(total); err != nil {
		t.Fatal(err)
	}
	resA, err := childA.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ms, before) {
		t.Fatal("running a forked child mutated the parent snapshot")
	}

	// A sibling forked from the same (supposedly untouched) state must
	// reproduce the cold run too.
	childB := forkSim(t, policy, true)
	if err := childB.Restore(ms); err != nil {
		t.Fatal(err)
	}
	if _, err := childB.StepRun(total); err != nil {
		t.Fatal(err)
	}
	resB, err := childB.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"A": resA, "B": resB} {
		if !reflect.DeepEqual(r, want) {
			t.Errorf("child %s diverges from the cold run", name)
		}
	}

	// The parent itself must also be unaffected by its children.
	if _, err := parent.StepRun(total); err != nil {
		t.Fatal(err)
	}
	resP, err := parent.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resP, want) {
		t.Error("parent diverges from the cold run after children ran")
	}
}

// TestMachineStateCloneIsDeep pokes representative slice-backed fields
// of a clone and checks the original never moves — the in-memory
// no-gob clone path must be as isolating as a gob round-trip.
func TestMachineStateCloneIsDeep(t *testing.T) {
	parent := forkSim(t, dtm.SelectiveSedation, true)
	if err := parent.BeginRun(10 * int64(parent.cfg.Thermal.SensorIntervalCycles)); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.StepRun(3 * int64(parent.cfg.Thermal.SensorIntervalCycles)); err != nil {
		t.Fatal(err)
	}
	ms, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	c := ms.Clone()
	if !reflect.DeepEqual(c, ms) {
		t.Fatal("clone is not equal to its source")
	}
	before := ms.Clone()

	// Mutate nested state across every subsystem of the clone.
	c.Thermal.Temps[0] += 100
	c.Monitor.EWMA[0][0] += 7
	c.Core.Threads[0].PC += 4
	c.Core.Stats[0].Committed += 9
	c.Core.Act.PerThread[0][0] += 3
	c.Core.Hier.L1D.Tags[0] ^= 0xff
	if p := c.Core.Threads[0].Pred; p != nil && len(p.Bimodal) > 0 {
		p.Bimodal[0] ^= 1
	}
	if c.Engine != nil {
		c.Engine.AbsSedatedUntil[0] += 5
	}
	if c.Quantum == nil {
		t.Fatal("mid-quantum snapshot has no Quantum state")
	}
	c.Quantum.StartStats[0].Committed += 11
	c.Quantum.LastCommitted[0] += 2
	if len(c.Quantum.RFTrace) > 0 {
		c.Quantum.RFTrace[0] += 1.5
	}

	if !reflect.DeepEqual(ms, before) {
		t.Fatal("mutating a clone's nested state reached the original")
	}
}

// TestMidQuantumSnapshotGobRoundTrip: a mid-quantum snapshot survives
// the disk encoding — a decoded copy resumes to the same Result.
func TestMidQuantumSnapshotGobRoundTrip(t *testing.T) {
	const policy = dtm.DVS
	cfg := quickCfg()
	sensor := int64(cfg.Thermal.SensorIntervalCycles)
	split, total := 5*sensor, 10*sensor

	want := forkRef(t, policy, true, total)

	parent := forkSim(t, policy, true)
	if err := parent.BeginRun(total); err != nil {
		t.Fatal(err)
	}
	if _, err := parent.StepRun(split); err != nil {
		t.Fatal(err)
	}
	ms, err := parent.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteState(&buf, ms); err != nil {
		t.Fatal(err)
	}
	decoded, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}

	child := forkSim(t, policy, true)
	if err := child.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := child.StepRun(total); err != nil {
		t.Fatal(err)
	}
	got, err := child.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("gob-round-tripped mid-quantum snapshot diverges from the cold run")
	}
}

// TestBeginStepFinishMisuse locks in the quantum API's error paths.
func TestBeginStepFinishMisuse(t *testing.T) {
	s := forkSim(t, dtm.None, true)
	if _, err := s.StepRun(1000); err == nil {
		t.Error("StepRun before BeginRun should fail")
	}
	if _, err := s.FinishRun(); err == nil {
		t.Error("FinishRun before BeginRun should fail")
	}
	if err := s.BeginRun(0); err == nil {
		t.Error("BeginRun(0) should fail")
	}
	if err := s.BeginRun(int64(s.cfg.Thermal.SensorIntervalCycles)); err != nil {
		t.Fatal(err)
	}
	if err := s.BeginRun(1000); err == nil {
		t.Error("nested BeginRun should fail")
	}
	if done, q := s.RunProgress(); done != 0 || q != int64(s.cfg.Thermal.SensorIntervalCycles) {
		t.Errorf("RunProgress = %d/%d", done, q)
	}
	if done, err := s.StepRun(1 << 40); err != nil || !done {
		t.Fatalf("StepRun clamp = done %v, err %v", done, err)
	}
	if _, err := s.FinishRun(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FinishRun(); err == nil {
		t.Error("double FinishRun should fail")
	}
}
