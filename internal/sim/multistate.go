package sim

import (
	"fmt"
	"slices"

	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/cpu"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/thermal"
)

// MultiCoreState is one core's private state inside a whole-die
// snapshot: the same composition the single-core MachineState carries,
// minus the thermal substrate, which is shared and lives once in
// MultiState.Solver.
type MultiCoreState struct {
	Core    cpu.CoreState
	Model   power.ModelState
	Monitor score.MonitorState
	Engine  *score.EngineState
	DTM     *dtm.State
	Reports []score.Report
}

// Clone returns a deep copy.
func (cs MultiCoreState) Clone() MultiCoreState {
	out := cs
	out.Core = cs.Core.Clone()
	out.Monitor = cs.Monitor.Clone()
	if cs.Engine != nil {
		es := cs.Engine.Clone()
		out.Engine = &es
	}
	if cs.DTM != nil {
		ds := cs.DTM.Clone()
		out.DTM = &ds
	}
	out.Reports = slices.Clone(cs.Reports)
	return out
}

// MultiState is the whole-die extension of MachineState: every core's
// private state, the shared solver's temperatures, and the chip-scope
// policy state when one is active.
type MultiState struct {
	Scope  dtm.Scope
	Cores  []MultiCoreState
	Solver thermal.SolverState
	// Chip is non-nil only under the chip scope.
	Chip *dtm.ChipState
	// Quantum is non-nil when the snapshot was taken mid-quantum.
	Quantum *MultiQuantumState
}

// Clone returns a deep copy.
func (st *MultiState) Clone() *MultiState {
	out := *st
	out.Cores = make([]MultiCoreState, len(st.Cores))
	for i, cs := range st.Cores {
		out.Cores[i] = cs.Clone()
	}
	out.Solver = st.Solver.Clone()
	if st.Chip != nil {
		ch := st.Chip.Clone()
		out.Chip = &ch
	}
	if st.Quantum != nil {
		qs := st.Quantum.Clone()
		out.Quantum = &qs
	}
	return &out
}

// MultiQuantumState is the serializable state of a whole-die
// measurement quantum in progress: everything multiQuantumRun holds,
// so a mid-quantum fork's child finishes with a MultiResult deep-equal
// to the unforked original's.
type MultiQuantumState struct {
	Quantum int64
	Done    int64
	Chunks  int64

	AboveEmergency bool
	CoreAbove      []bool
	EventsStart    int

	StartCycle   int64
	StartStalled []uint64
	StartStats   [][]cpu.ThreadStats
	StartRF      [][]uint64

	// Partial chip-level Result accumulators.
	PeakTemp    float64
	PeakUnit    power.Unit
	PeakCore    int
	Emergencies int

	// Partial per-core accumulators, index-aligned with Cores.
	CorePeakTemp    []float64
	CorePeakUnit    []power.Unit
	CoreEmergencies []int
	CoreRFTrace     [][]float64
}

// Clone returns a deep copy.
func (q MultiQuantumState) Clone() MultiQuantumState {
	out := q
	out.CoreAbove = slices.Clone(q.CoreAbove)
	out.StartStalled = slices.Clone(q.StartStalled)
	out.StartStats = make([][]cpu.ThreadStats, len(q.StartStats))
	for i, s := range q.StartStats {
		out.StartStats[i] = slices.Clone(s)
	}
	out.StartRF = make([][]uint64, len(q.StartRF))
	for i, s := range q.StartRF {
		out.StartRF[i] = slices.Clone(s)
	}
	out.CorePeakTemp = slices.Clone(q.CorePeakTemp)
	out.CorePeakUnit = slices.Clone(q.CorePeakUnit)
	out.CoreEmergencies = slices.Clone(q.CoreEmergencies)
	out.CoreRFTrace = make([][]float64, len(q.CoreRFTrace))
	for i, s := range q.CoreRFTrace {
		out.CoreRFTrace[i] = slices.Clone(s)
	}
	return out
}

// MultiProgramsDigest hashes every core's thread identity, core order
// included, so a whole-die snapshot can prove it was built from the
// same per-core programs it is being restored into.
func MultiProgramsDigest(coreThreads [][]Thread) string {
	all := make([]Thread, 0, len(coreThreads)*2+len(coreThreads))
	for _, threads := range coreThreads {
		// A core-boundary marker thread keeps {[A B]} and {[A] [B]}
		// distinct.
		all = append(all, Thread{Name: "\x00core"})
		all = append(all, threads...)
	}
	return ProgramsDigest(all)
}

// policyLabel is the MachineState.Policy value a MultiSimulator
// snapshot carries: the per-core kind, or the chip policy's kind.
func (m *MultiSimulator) policyLabel() dtm.Kind {
	if m.opts.Scope == dtm.ScopeChip {
		return dtm.ChipRoundRobin
	}
	return m.opts.Policy
}

// Snapshot captures the whole die's mutable state. The returned state
// shares no memory with the simulator.
func (m *MultiSimulator) Snapshot() (*MachineState, error) {
	coreThreads := make([][]Thread, len(m.cores))
	for c, cs := range m.cores {
		coreThreads[c] = cs.threads
	}
	ms := &MachineState{
		Version:          StateVersion,
		ConfigDigest:     m.cfg.Digest(),
		WarmConfigDigest: m.cfg.WarmDigest(),
		ProgsDigest:      MultiProgramsDigest(coreThreads),
		Policy:           m.policyLabel(),
		Warmed:           m.warmed,
	}
	mst := &MultiState{
		Scope:  m.opts.Scope,
		Cores:  make([]MultiCoreState, len(m.cores)),
		Solver: m.solver.State().Clone(),
	}
	for c, cs := range m.cores {
		st := MultiCoreState{
			Core:    cs.core.Snapshot(),
			Model:   cs.model.Snapshot(),
			Monitor: cs.mon.Snapshot(),
		}
		ds, err := dtm.Snapshot(cs.policy)
		if err != nil {
			return nil, err
		}
		st.DTM = &ds
		if eng := cs.policy.Engine(); eng != nil {
			es := eng.Snapshot()
			st.Engine = &es
		}
		if len(cs.reports) > 0 {
			st.Reports = slices.Clone(cs.reports)
		}
		mst.Cores[c] = st
	}
	if m.chip != nil {
		ch, err := dtm.SnapshotChip(m.chip)
		if err != nil {
			return nil, err
		}
		mst.Chip = &ch
	}
	if m.events != nil && len(m.events.Events) > 0 {
		ms.Events = slices.Clone(m.events.Events)
	}
	if mqr := m.mqr; mqr != nil {
		qs := MultiQuantumState{
			Quantum:         mqr.quantum,
			Done:            mqr.done,
			Chunks:          mqr.chunks,
			AboveEmergency:  mqr.aboveEmergency,
			CoreAbove:       slices.Clone(mqr.coreAbove),
			EventsStart:     mqr.eventsStart,
			StartCycle:      mqr.startCycle,
			StartStalled:    slices.Clone(mqr.startStalled),
			PeakTemp:        mqr.res.PeakTemp,
			PeakUnit:        mqr.res.PeakUnit,
			PeakCore:        mqr.res.PeakCore,
			Emergencies:     mqr.res.Emergencies,
			StartStats:      make([][]cpu.ThreadStats, len(m.cores)),
			StartRF:         make([][]uint64, len(m.cores)),
			CorePeakTemp:    make([]float64, len(m.cores)),
			CorePeakUnit:    make([]power.Unit, len(m.cores)),
			CoreEmergencies: make([]int, len(m.cores)),
			CoreRFTrace:     make([][]float64, len(m.cores)),
		}
		for c := range m.cores {
			qs.StartStats[c] = slices.Clone(mqr.startStats[c])
			qs.StartRF[c] = slices.Clone(mqr.startRF[c])
			qs.CorePeakTemp[c] = mqr.res.Cores[c].PeakTemp
			qs.CorePeakUnit[c] = mqr.res.Cores[c].PeakUnit
			qs.CoreEmergencies[c] = mqr.res.Cores[c].Emergencies
			qs.CoreRFTrace[c] = slices.Clone(mqr.res.Cores[c].RFTrace)
		}
		mst.Quantum = &qs
	}
	ms.Multi = mst
	return ms, nil
}

// Restore loads a whole-die snapshot into m, which must have been
// built from the same configuration, per-core threads, scope, and
// policy. After Restore, continuing m is deep-equal-indistinguishable
// from continuing the simulator that produced ms.
func (m *MultiSimulator) Restore(ms *MachineState) error {
	if ms.Version != StateVersion {
		return fmt.Errorf("sim: snapshot format v%d, this build reads v%d", ms.Version, StateVersion)
	}
	mst := ms.Multi
	if mst == nil {
		return fmt.Errorf("sim: single-core snapshot cannot restore into a %d-core simulator", len(m.cores))
	}
	if d := m.cfg.Digest(); ms.ConfigDigest != d {
		return fmt.Errorf("sim: snapshot built from config %.12s.., simulator runs %.12s..", ms.ConfigDigest, d)
	}
	coreThreads := make([][]Thread, len(m.cores))
	for c, cs := range m.cores {
		coreThreads[c] = cs.threads
	}
	if d := MultiProgramsDigest(coreThreads); ms.ProgsDigest != d {
		return fmt.Errorf("sim: snapshot built from programs %.12s.., simulator runs %.12s..", ms.ProgsDigest, d)
	}
	if mst.Scope != m.opts.Scope {
		return fmt.Errorf("sim: snapshot carries %q scope state, simulator runs %q", mst.Scope, m.opts.Scope)
	}
	if ms.Policy != m.policyLabel() {
		return fmt.Errorf("sim: snapshot carries %q policy state, simulator runs %q", ms.Policy, m.policyLabel())
	}
	if len(mst.Cores) != len(m.cores) {
		return fmt.Errorf("sim: snapshot has %d cores, simulator %d", len(mst.Cores), len(m.cores))
	}
	for c, cs := range m.cores {
		st := mst.Cores[c]
		if err := cs.core.Restore(st.Core); err != nil {
			return fmt.Errorf("sim: core %d: %w", c, err)
		}
		if err := cs.model.Restore(st.Model); err != nil {
			return fmt.Errorf("sim: core %d: %w", c, err)
		}
		if err := cs.mon.Restore(st.Monitor); err != nil {
			return fmt.Errorf("sim: core %d: %w", c, err)
		}
		if st.DTM == nil {
			return fmt.Errorf("sim: core %d snapshot missing policy state", c)
		}
		if err := dtm.Restore(cs.policy, *st.DTM); err != nil {
			return fmt.Errorf("sim: core %d: %w", c, err)
		}
		if eng := cs.policy.Engine(); eng != nil {
			if st.Engine == nil {
				return fmt.Errorf("sim: core %d sedation snapshot missing engine state", c)
			}
			if err := eng.Restore(*st.Engine); err != nil {
				return fmt.Errorf("sim: core %d: %w", c, err)
			}
		}
		cs.reports = append(cs.reports[:0], st.Reports...)
	}
	if err := m.solver.SetState(mst.Solver.Clone()); err != nil {
		return err
	}
	if m.chip != nil {
		if mst.Chip == nil {
			return fmt.Errorf("sim: chip-scope snapshot missing chip policy state")
		}
		if err := dtm.RestoreChip(m.chip, *mst.Chip); err != nil {
			return err
		}
	}
	if m.events != nil {
		m.events.Events = append(m.events.Events[:0], ms.Events...)
	}
	m.warmed = ms.Warmed
	if q := mst.Quantum; q != nil {
		k := len(m.cores)
		if len(q.CoreAbove) != k || len(q.StartStalled) != k || len(q.StartStats) != k ||
			len(q.StartRF) != k || len(q.CorePeakTemp) != k || len(q.CorePeakUnit) != k ||
			len(q.CoreEmergencies) != k || len(q.CoreRFTrace) != k {
			return fmt.Errorf("sim: quantum state core counts disagree with %d cores", k)
		}
		if q.Quantum <= 0 || q.Done < 0 || q.Chunks < 0 {
			return fmt.Errorf("sim: quantum state position %d/%d (chunks %d) invalid", q.Done, q.Quantum, q.Chunks)
		}
		for c, cs := range m.cores {
			if len(q.StartStats[c]) != len(cs.threads) || len(q.StartRF[c]) != len(cs.threads) {
				return fmt.Errorf("sim: quantum state has %d/%d contexts for core %d, want %d",
					len(q.StartStats[c]), len(q.StartRF[c]), c, len(cs.threads))
			}
		}
		res := &MultiResult{
			PeakTemp:    q.PeakTemp,
			PeakUnit:    q.PeakUnit,
			PeakCore:    q.PeakCore,
			Emergencies: q.Emergencies,
			Cores:       make([]Result, k),
		}
		mqr := &multiQuantumRun{
			quantum:        q.Quantum,
			done:           q.Done,
			chunks:         q.Chunks,
			res:            res,
			aboveEmergency: q.AboveEmergency,
			coreAbove:      slices.Clone(q.CoreAbove),
			eventsStart:    q.EventsStart,
			startCycle:     q.StartCycle,
			startStalled:   slices.Clone(q.StartStalled),
			startStats:     make([][]cpu.ThreadStats, k),
			startRF:        make([][]uint64, k),
		}
		for c := range m.cores {
			mqr.startStats[c] = slices.Clone(q.StartStats[c])
			mqr.startRF[c] = slices.Clone(q.StartRF[c])
			res.Cores[c].PeakTemp = q.CorePeakTemp[c]
			res.Cores[c].PeakUnit = q.CorePeakUnit[c]
			res.Cores[c].Emergencies = q.CoreEmergencies[c]
			res.Cores[c].RFTrace = slices.Clone(q.CoreRFTrace[c])
		}
		m.mqr = mqr
		m.started = true
	} else {
		m.mqr = nil
	}
	return nil
}
