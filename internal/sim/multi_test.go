package sim

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// multiCfg is a 2-core grid machine with a short quantum.
func multiCfg(cores int) config.Config {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 200_000
	cfg.Topology = config.Topology{Cores: cores, Solver: config.SolverGrid, GridN: 16}
	return cfg
}

// attackVictimThreads puts the attack variant alone on core 0 and a
// benign benchmark alone on core 1 — the neighbor-heat shape.
func attackVictimThreads(t *testing.T) [][]Thread {
	t.Helper()
	return [][]Thread{
		{variantThread(t, 2)},
		{specThread(t, "gcc")},
	}
}

// multiScopes enumerates every policy/scope combination a MultiState
// can carry: the five per-core kinds plus the chip scope.
func multiScopes() []MultiOptions {
	var out []MultiOptions
	for _, k := range dtm.Kinds() {
		out = append(out, MultiOptions{Scope: dtm.ScopePerCore, Policy: k})
	}
	out = append(out, MultiOptions{Scope: dtm.ScopeChip})
	return out
}

func scopeLabel(o MultiOptions) string {
	if o.Scope == dtm.ScopeChip {
		return "chip/chip-rr"
	}
	return "per-core/" + string(o.Policy)
}

func TestMultiRunInvariants(t *testing.T) {
	for _, mo := range multiScopes() {
		mo.WarmupCycles = 50_000
		cfg := multiCfg(2)
		m, err := NewMulti(cfg, attackVictimThreads(t), mo)
		if err != nil {
			t.Fatalf("%s: %v", scopeLabel(mo), err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", scopeLabel(mo), err)
		}
		if res.Cycles != cfg.Run.QuantumCycles {
			t.Errorf("%s: cycles %d, want %d", scopeLabel(mo), res.Cycles, cfg.Run.QuantumCycles)
		}
		if len(res.Cores) != 2 {
			t.Fatalf("%s: %d core results", scopeLabel(mo), len(res.Cores))
		}
		for c, cr := range res.Cores {
			if len(cr.Threads) != 1 {
				t.Fatalf("%s core %d: %d thread results", scopeLabel(mo), c, len(cr.Threads))
			}
			if cr.Threads[0].Breakdown.Total() != res.Cycles {
				t.Errorf("%s core %d: breakdown total %d != %d", scopeLabel(mo), c,
					cr.Threads[0].Breakdown.Total(), res.Cycles)
			}
			if cr.PeakTemp < cfg.Thermal.AmbientK {
				t.Errorf("%s core %d: peak %f below ambient", scopeLabel(mo), c, cr.PeakTemp)
			}
		}
		if res.PeakTemp < res.Cores[0].PeakTemp && res.PeakTemp < res.Cores[1].PeakTemp {
			t.Errorf("%s: chip peak %f below both core peaks", scopeLabel(mo), res.PeakTemp)
		}
	}
}

// TestMultiNeighborHeating is the physics smoke test of the attack
// channel at the simulator level: with DTM off, an attack variant on
// core 0 makes the idle-ish victim core 1 measurably hotter than the
// victim of an all-benign die.
func TestMultiNeighborHeating(t *testing.T) {
	run := func(attacker Thread) float64 {
		cfg := multiCfg(2)
		// Accelerate the thermal RC so cross-core diffusion — milliseconds
		// of physical time — fits an affordable cycle count.
		cfg.Thermal.Scale = 64
		cfg.Run.QuantumCycles = 2_000_000
		m, err := NewMulti(cfg, [][]Thread{{attacker}, {specThread(t, "gcc")}},
			MultiOptions{Scope: dtm.ScopePerCore, Policy: dtm.None, WarmupCycles: 50_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cores[1].FinalTemps[power.UnitIntReg]
	}
	benign := run(specThread(t, "art"))
	attacked := run(variantThread(t, 2))
	t.Logf("victim final IntReg: %.3f K next to art, %.3f K next to variant2", benign, attacked)
	if attacked <= benign {
		t.Errorf("victim IntReg %.3f K next to the attacker <= %.3f K next to a benign neighbor",
			attacked, benign)
	}
}

// TestMultiRestoreEquivalence is the fork-correctness property for the
// whole die, under every policy/scope combination and both execution
// paths: snapshot mid-run, let the original finish, restore a fresh
// simulator from the snapshot, and the two final MultiResults must be
// deep-equal.
func TestMultiRestoreEquivalence(t *testing.T) {
	for _, ff := range []bool{false, true} {
		for _, mo := range multiScopes() {
			mo.WarmupCycles = 50_000
			mo.DisableFastForward = ff
			mo.CollectEvents = true
			label := scopeLabel(mo)
			cfg := multiCfg(2)
			orig, err := NewMulti(cfg, attackVictimThreads(t), mo)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			// Run a partial quantum, snapshot mid-quantum, finish.
			if err := orig.BeginRun(cfg.Run.QuantumCycles); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if _, err := orig.StepRun(cfg.Run.QuantumCycles / 2); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			ms, err := orig.Snapshot()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if ms.Multi == nil || ms.Version != StateVersion {
				t.Fatalf("%s: snapshot v%d Multi=%v", label, ms.Version, ms.Multi != nil)
			}
			if _, err := orig.StepRun(cfg.Run.QuantumCycles); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			want, err := orig.FinishRun()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}

			fork, err := NewMulti(cfg, attackVictimThreads(t), mo)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if err := fork.Restore(ms); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if _, err := fork.StepRun(cfg.Run.QuantumCycles); err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			got, err := fork.FinishRun()
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("%s (ff=%v): forked result differs from original", label, ff)
			}
		}
	}
}

// TestMultiDeterminism: two independently built simulators produce
// deep-equal results and snapshots.
func TestMultiDeterminism(t *testing.T) {
	mk := func() (*MultiSimulator, *MultiResult) {
		cfg := multiCfg(2)
		m, err := NewMulti(cfg, attackVictimThreads(t),
			MultiOptions{Scope: dtm.ScopeChip, WarmupCycles: 50_000, CollectEvents: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return m, res
	}
	m1, r1 := mk()
	m2, r2 := mk()
	if !reflect.DeepEqual(r1, r2) {
		t.Error("identical multi runs returned different results")
	}
	s1, err := m1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Error("identical multi runs produced different snapshots")
	}
}

// TestMultiSnapshotGobRoundTrip: a whole-die snapshot (including the
// die geometry's solver state and a mid-quantum position) survives gob
// and still restores into an equivalent continuation.
func TestMultiSnapshotGobRoundTrip(t *testing.T) {
	cfg := multiCfg(2)
	mo := MultiOptions{Scope: dtm.ScopePerCore, Policy: dtm.SelectiveSedation,
		WarmupCycles: 50_000, TraceTemps: true}
	orig, err := NewMulti(cfg, attackVictimThreads(t), mo)
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.BeginRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	if _, err := orig.StepRun(cfg.Run.QuantumCycles / 2); err != nil {
		t.Fatal(err)
	}
	ms, err := orig.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ms); err != nil {
		t.Fatal(err)
	}
	decoded := &MachineState{}
	if err := gob.NewDecoder(&buf).Decode(decoded); err != nil {
		t.Fatal(err)
	}
	// The die-level sections round-trip exactly (cpu.CoreState is only
	// continuation-equivalent through gob, as in the single-core test).
	if decoded.Multi == nil ||
		!reflect.DeepEqual(ms.Multi.Solver, decoded.Multi.Solver) ||
		!reflect.DeepEqual(ms.Multi.Chip, decoded.Multi.Chip) ||
		!reflect.DeepEqual(ms.Multi.Quantum, decoded.Multi.Quantum) ||
		ms.Multi.Scope != decoded.Multi.Scope {
		t.Error("die-level snapshot sections not deep-equal after gob round trip")
	}
	if _, err := orig.StepRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	want, err := orig.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	fork, err := NewMulti(cfg, attackVictimThreads(t), mo)
	if err != nil {
		t.Fatal(err)
	}
	if err := fork.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if _, err := fork.StepRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	got, err := fork.FinishRun()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("gob-round-tripped fork diverged from the original")
	}
}

// TestMultiCloneIsDeep: mutating a clone of a whole-die snapshot never
// leaks into the original.
func TestMultiCloneIsDeep(t *testing.T) {
	cfg := multiCfg(2)
	m, err := NewMulti(cfg, attackVictimThreads(t),
		MultiOptions{Scope: dtm.ScopeChip, WarmupCycles: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.BeginRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	if _, err := m.StepRun(cfg.Run.QuantumCycles / 4); err != nil {
		t.Fatal(err)
	}
	ms, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	clone := ms.Clone()
	if !reflect.DeepEqual(ms, clone) {
		t.Fatal("clone not deep-equal")
	}
	clone.Multi.Solver.Temps[0] += 5
	clone.Multi.Cores[0].Monitor = ms.Multi.Cores[0].Monitor.Clone()
	clone.Multi.Chip.StopGo.Engagements = 99
	clone.Multi.Quantum.StartRF[0][0] = 123456
	if reflect.DeepEqual(ms.Multi.Solver.Temps, clone.Multi.Solver.Temps) ||
		ms.Multi.Chip.StopGo.Engagements == 99 ||
		ms.Multi.Quantum.StartRF[0][0] == 123456 {
		t.Error("clone shares memory with the original")
	}
	if _, err := m.StepRun(cfg.Run.QuantumCycles); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FinishRun(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiRestoreRejectsMismatch: config, programs, scope, policy,
// core-count, and single-core/multi mismatches are all refused.
func TestMultiRestoreRejectsMismatch(t *testing.T) {
	cfg := multiCfg(2)
	mo := MultiOptions{Scope: dtm.ScopePerCore, Policy: dtm.StopAndGo, WarmupCycles: 20_000}
	m, err := NewMulti(cfg, attackVictimThreads(t), mo)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, build func() (*MultiSimulator, error)) {
		t.Helper()
		other, err := build()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := other.Restore(ms); err == nil {
			t.Errorf("%s: mismatched restore accepted", name)
		}
	}
	check("different config", func() (*MultiSimulator, error) {
		c2 := cfg
		c2.Thermal.EmergencyK += 1
		return NewMulti(c2, attackVictimThreads(t), mo)
	})
	check("different programs", func() (*MultiSimulator, error) {
		return NewMulti(cfg, [][]Thread{{specThread(t, "art")}, {specThread(t, "gcc")}}, mo)
	})
	check("different policy", func() (*MultiSimulator, error) {
		o2 := mo
		o2.Policy = dtm.DVS
		return NewMulti(cfg, attackVictimThreads(t), o2)
	})
	check("different scope", func() (*MultiSimulator, error) {
		o2 := mo
		o2.Scope, o2.Policy = dtm.ScopeChip, ""
		return NewMulti(cfg, attackVictimThreads(t), o2)
	})
	check("different core count", func() (*MultiSimulator, error) {
		c4 := multiCfg(4)
		return NewMulti(c4, [][]Thread{{variantThread(t, 2)}, {specThread(t, "gcc")},
			{specThread(t, "art")}, {specThread(t, "mcf")}}, mo)
	})

	// A multi snapshot must not restore into a single-core simulator,
	// nor a single-core snapshot into a multi one.
	solo, err := New(config.Default(), []Thread{specThread(t, "gcc")}, Options{Policy: dtm.StopAndGo})
	if err != nil {
		t.Fatal(err)
	}
	if err := solo.Restore(ms); err == nil {
		t.Error("multi snapshot restored into a single-core simulator")
	}
	soloState, err := solo.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(soloState); err == nil {
		t.Error("single-core snapshot restored into a multi simulator")
	}
}

// TestMultiThreadGroupingDigest: the per-core programs digest keeps
// the same threads grouped differently distinct.
func TestMultiThreadGroupingDigest(t *testing.T) {
	a, b := specThread(t, "gcc"), specThread(t, "art")
	d1 := MultiProgramsDigest([][]Thread{{a, b}})
	d2 := MultiProgramsDigest([][]Thread{{a}, {b}})
	if d1 == d2 {
		t.Error("thread grouping does not affect the digest")
	}
}

// TestMultiSedationLastThreadException: sedation on the victim core
// never sedates its solo thread (the last-thread exception), so
// cross-core heating shows up as emergencies, not as sedation.
func TestMultiSedationLastThreadException(t *testing.T) {
	cfg := multiCfg(2)
	m, err := NewMulti(cfg, attackVictimThreads(t),
		MultiOptions{Scope: dtm.ScopePerCore, Policy: dtm.SelectiveSedation, WarmupCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if sed := res.Cores[1].Threads[0].Breakdown.SedationCycles; sed != 0 {
		t.Errorf("victim's solo thread sedated for %d cycles", sed)
	}
}

func TestMultiRejectsBadShapes(t *testing.T) {
	cfg := multiCfg(2)
	if _, err := NewMulti(cfg, [][]Thread{{specThread(t, "gcc")}},
		MultiOptions{}); err == nil {
		t.Error("1 thread set for 2 cores accepted")
	}
	if _, err := NewMulti(cfg, [][]Thread{{specThread(t, "gcc")}, {}},
		MultiOptions{}); err == nil {
		t.Error("empty core accepted")
	}
	if _, err := NewMulti(cfg, attackVictimThreads(t),
		MultiOptions{Scope: dtm.ScopeChip, Policy: dtm.DVS}); err == nil {
		t.Error("chip scope with a per-core policy accepted")
	}
	if _, err := NewMulti(cfg, attackVictimThreads(t),
		MultiOptions{Scope: "die"}); err == nil {
		t.Error("unknown scope accepted")
	}
	bad := cfg
	bad.Topology.Solver = config.SolverLumped
	if _, err := NewMulti(bad, attackVictimThreads(t), MultiOptions{}); err == nil {
		t.Error("2-core lumped accepted")
	}
}

// TestMultiPowerDensityMatchesSingle: each core's power model is the
// single-core model, so a 1-core grid die run through MultiSimulator
// reproduces the single-core thermal envelope to within the documented
// grid/lumped agreement bound.
func TestMultiPowerDensityMatchesSingle(t *testing.T) {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 200_000
	threads := []Thread{specThread(t, "gcc")}
	solo, err := New(cfg, threads, Options{Policy: dtm.None, WarmupCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	soloRes, err := solo.Run()
	if err != nil {
		t.Fatal(err)
	}

	gcfg := cfg
	gcfg.Topology = config.Topology{Cores: 1, Solver: config.SolverGrid, GridN: 32}
	m, err := NewMulti(gcfg, [][]Thread{threads},
		MultiOptions{Scope: dtm.ScopePerCore, Policy: dtm.None, WarmupCycles: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	multiRes, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := multiRes.Cores[0].PeakTemp - soloRes.PeakTemp
	if d < -3 || d > 3 {
		t.Errorf("1-core grid peak %.3f K vs lumped %.3f K: outside the 3 K agreement bound",
			multiRes.Cores[0].PeakTemp, soloRes.PeakTemp)
	}
	if multiRes.Cores[0].Threads[0].Committed != soloRes.Threads[0].Committed {
		t.Errorf("grid substrate changed committed instructions: %d vs %d",
			multiRes.Cores[0].Threads[0].Committed, soloRes.Threads[0].Committed)
	}
}
