package sim

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

func quickCfg() config.Config {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 400_000
	return cfg
}

func specThread(t *testing.T, name string) Thread {
	t.Helper()
	prog, err := workload.Spec(name, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Thread{Name: name, Prog: prog}
}

func variantThread(t *testing.T, n int) Thread {
	t.Helper()
	prog, err := workload.Variant(n)
	if err != nil {
		t.Fatal(err)
	}
	return Thread{Name: "variant", Prog: prog}
}

func TestRunInvariantsEveryPolicy(t *testing.T) {
	for _, policy := range dtm.Kinds() {
		cfg := quickCfg()
		s, err := New(cfg, []Thread{specThread(t, "gcc"), variantThread(t, 2)},
			Options{Policy: policy, WarmupCycles: 100_000})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Cycles != cfg.Run.QuantumCycles {
			t.Errorf("%s: cycles %d, want %d", policy, res.Cycles, cfg.Run.QuantumCycles)
		}
		if len(res.Threads) != 2 {
			t.Fatalf("%s: %d thread results", policy, len(res.Threads))
		}
		for i, tr := range res.Threads {
			if tr.Breakdown.Total() != res.Cycles {
				t.Errorf("%s thread %d: breakdown total %d != %d", policy, i, tr.Breakdown.Total(), res.Cycles)
			}
			if tr.IPC < 0 || tr.IPC > 8 {
				t.Errorf("%s thread %d: IPC %f out of range", policy, i, tr.IPC)
			}
			if tr.Committed == 0 && policy != dtm.StopAndGo {
				t.Errorf("%s thread %d: no progress", policy, i)
			}
		}
		if res.PeakTemp < cfg.Thermal.AmbientK && policy != dtm.None {
			t.Errorf("%s: peak temp %f below ambient", policy, res.PeakTemp)
		}
		if res.TotalPowerW <= 0 {
			t.Errorf("%s: total power %f", policy, res.TotalPowerW)
		}
	}
}

func TestIdealSinkHoldsTemps(t *testing.T) {
	cfg := quickCfg()
	cfg.Thermal.IdealSink = true
	s, err := New(cfg, []Thread{variantThread(t, 1)}, Options{Policy: dtm.None})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Emergencies != 0 || res.StopGoCycles != 0 {
		t.Error("ideal sink should never trigger thermal events")
	}
}

func TestWarmupExcludedFromStats(t *testing.T) {
	mk := func(warmup int64) *Result {
		cfg := quickCfg()
		s, err := New(cfg, []Thread{specThread(t, "crafty")}, Options{Policy: dtm.StopAndGo, WarmupCycles: warmup})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := mk(0)
	warm := mk(400_000)
	// Warm caches: measured IPC must be at least as good, and the
	// cycle count identical (warmup cycles not counted).
	if warm.Cycles != cold.Cycles {
		t.Errorf("cycles differ: %d vs %d", warm.Cycles, cold.Cycles)
	}
	if warm.Threads[0].IPC < cold.Threads[0].IPC {
		t.Errorf("warm IPC %.3f < cold IPC %.3f", warm.Threads[0].IPC, cold.Threads[0].IPC)
	}
}

func TestTraceTemps(t *testing.T) {
	cfg := quickCfg()
	s, err := New(cfg, []Thread{specThread(t, "mcf")}, Options{Policy: dtm.StopAndGo, TraceTemps: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := int(cfg.Run.QuantumCycles) / cfg.Thermal.SensorIntervalCycles
	if len(res.RFTrace) != want {
		t.Errorf("trace length %d, want %d", len(res.RFTrace), want)
	}
	for _, temp := range res.RFTrace {
		if temp < cfg.Thermal.AmbientK || temp > 400 {
			t.Fatalf("traced temperature %f implausible", temp)
		}
	}
}

func TestSedationIdentifiesAttacker(t *testing.T) {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 6_000_000
	s, err := New(cfg, []Thread{specThread(t, "crafty"), variantThread(t, 2)},
		Options{Policy: dtm.SelectiveSedation, WarmupCycles: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) == 0 {
		t.Fatal("attack should produce sedation reports")
	}
	for _, r := range res.Reports {
		if r.Thread != 1 {
			t.Errorf("report named thread %d (%s); want the attacker", r.Thread, res.Threads[r.Thread].Name)
		}
		if r.Unit != power.UnitIntReg {
			t.Errorf("report for %s, want IntReg", r.Unit)
		}
	}
	if res.Threads[1].Breakdown.SedationCycles == 0 {
		t.Error("attacker should spend time sedated")
	}
	if res.Threads[0].Breakdown.SedationCycles != 0 {
		t.Error("victim must not be sedated")
	}
	if res.Sedation.Sedations == 0 {
		t.Error("sedation stats empty")
	}
}

func TestHeatStrokeDegradesAndSedationRestores(t *testing.T) {
	// The headline end-to-end behaviour at test scale.
	run := func(threads []Thread, policy dtm.Kind) *Result {
		cfg := config.Default()
		cfg.Run.QuantumCycles = 8_000_000
		s, err := New(cfg, threads, Options{Policy: policy, WarmupCycles: 300_000})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	solo := run([]Thread{specThread(t, "crafty")}, dtm.StopAndGo)
	attack := run([]Thread{specThread(t, "crafty"), variantThread(t, 2)}, dtm.StopAndGo)
	cured := run([]Thread{specThread(t, "crafty"), variantThread(t, 2)}, dtm.SelectiveSedation)

	soloIPC := solo.Threads[0].IPC
	attackIPC := attack.Threads[0].IPC
	curedIPC := cured.Threads[0].IPC
	if attackIPC > soloIPC*0.6 {
		t.Errorf("heat stroke too weak: solo %.2f attack %.2f", soloIPC, attackIPC)
	}
	if curedIPC < soloIPC*0.8 {
		t.Errorf("sedation too weak: solo %.2f cured %.2f", soloIPC, curedIPC)
	}
	if attack.Emergencies == 0 {
		t.Error("attack should cause emergencies")
	}
	if cured.Emergencies > attack.Emergencies/2 {
		t.Errorf("sedation should cut emergencies: %d vs %d", cured.Emergencies, attack.Emergencies)
	}
}

func TestNewValidation(t *testing.T) {
	cfg := quickCfg()
	if _, err := New(cfg, nil, Options{}); err == nil {
		t.Error("no threads should fail")
	}
	if _, err := New(cfg, []Thread{{Name: "x"}}, Options{}); err == nil {
		t.Error("nil program should fail")
	}
	if _, err := New(cfg, []Thread{specThread(t, "gcc")}, Options{Policy: "voodoo"}); err == nil {
		t.Error("unknown policy should fail")
	}
	bad := cfg
	bad.Thermal.SensorIntervalCycles = 1500 // not a multiple of 1000
	if _, err := New(bad, []Thread{specThread(t, "gcc")}, Options{}); err == nil {
		t.Error("misaligned intervals should fail")
	}
	s, err := New(cfg, []Thread{specThread(t, "gcc")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunCycles(0); err == nil {
		t.Error("zero quantum should fail")
	}
}

func TestAccessors(t *testing.T) {
	s, err := New(quickCfg(), []Thread{specThread(t, "gcc")}, Options{Policy: dtm.SelectiveSedation})
	if err != nil {
		t.Fatal(err)
	}
	if s.Core() == nil || s.Network() == nil || s.Monitor() == nil || s.Policy() == nil {
		t.Error("accessors returned nil")
	}
	if s.Policy().Name() != dtm.SelectiveSedation {
		t.Error("policy kind wrong")
	}
}

func TestRecorderIntegration(t *testing.T) {
	cfg := quickCfg()
	rec := &trace.Recorder{}
	s, err := New(cfg, []Thread{specThread(t, "gcc")}, Options{Policy: dtm.StopAndGo, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := int(cfg.Run.QuantumCycles) / cfg.Thermal.SensorIntervalCycles
	if rec.Len() != want {
		t.Fatalf("samples = %d, want %d", rec.Len(), want)
	}
	sum := rec.Summarize()
	if sum.PeakTempK < cfg.Thermal.AmbientK || sum.MeanPowerW <= 0 {
		t.Errorf("summary implausible: %+v", sum)
	}
	// Per-interval IPC values must be sane.
	for _, smp := range rec.Samples {
		for _, ipc := range smp.ThreadIPC {
			if ipc < 0 || ipc > 8 {
				t.Fatalf("interval IPC %f out of range", ipc)
			}
		}
	}
}

// TestEventStream locks the tentpole's simulator contract: with
// CollectEvents the attack pair produces a typed DTM timeline whose
// sedation begin/end events agree exactly with the per-thread sedated
// flags the trace recorder samples at the same sensor boundaries, and
// enabling collection changes nothing else about the Result.
func TestEventStream(t *testing.T) {
	run := func(collect bool, rec *trace.Recorder) *Result {
		cfg := config.Default()
		cfg.Run.QuantumCycles = 6_000_000
		s, err := New(cfg, []Thread{specThread(t, "crafty"), variantThread(t, 2)},
			Options{Policy: dtm.SelectiveSedation, WarmupCycles: 300_000,
				CollectEvents: collect, Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rec := &trace.Recorder{}
	res := run(true, rec)
	if len(res.Events) == 0 {
		t.Fatal("attack run produced no events")
	}

	// Emission order is chronological, every event sits on a sensor
	// boundary, and sedations name the attacker with a positive score.
	last := int64(0)
	kinds := map[telemetry.EventKind]int{}
	for _, ev := range res.Events {
		if ev.Cycle < last {
			t.Fatalf("events out of order: %d after %d", ev.Cycle, last)
		}
		last = ev.Cycle
		kinds[ev.Kind]++
		if ev.Kind == telemetry.KindSedate {
			if ev.Thread != 1 {
				t.Errorf("sedate named thread %d, want the attacker", ev.Thread)
			}
			if ev.Rate <= 0 || ev.TempK <= 0 {
				t.Errorf("sedate event missing score/temp: %+v", ev)
			}
		}
	}
	for _, k := range []telemetry.EventKind{telemetry.KindThresholdUpper, telemetry.KindSedate,
		telemetry.KindResume, telemetry.KindOSReport} {
		if kinds[k] == 0 {
			t.Errorf("no %s events (have %v)", k, kinds)
		}
	}
	if kinds[telemetry.KindSedate] != int(res.Sedation.Sedations) {
		t.Errorf("sedate events = %d, engine counted %d", kinds[telemetry.KindSedate], res.Sedation.Sedations)
	}

	// Replay the event stream into a per-thread sedated timeline and
	// check it against the recorder's sampled flags at every sensor
	// boundary (the acceptance cross-check: trace CSV vs event stream).
	sedated := make([]bool, 2)
	i := 0
	for _, smp := range rec.Samples {
		for ; i < len(res.Events) && res.Events[i].Cycle <= smp.Cycle; i++ {
			ev := res.Events[i]
			switch ev.Kind {
			case telemetry.KindSedate:
				sedated[ev.Thread] = true
			case telemetry.KindResume:
				sedated[ev.Thread] = false
			}
		}
		for tid, want := range smp.ThreadSedated {
			if sedated[tid] != want {
				t.Fatalf("cycle %d thread %d: events say sedated=%v, trace says %v",
					smp.Cycle, tid, sedated[tid], want)
			}
		}
	}

	// Collection must not perturb the measurements.
	plain := run(false, nil)
	if plain.Events != nil {
		t.Fatal("events collected without CollectEvents")
	}
	withEvents := run(true, nil)
	withEvents.Events = nil
	if !reflect.DeepEqual(plain, withEvents) {
		t.Error("CollectEvents changed the measured Result")
	}
}

// TestEventStreamStopGo: the base-case policy brackets its global
// stalls, and the stall flag in the trace agrees.
func TestEventStreamStopGo(t *testing.T) {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 6_000_000
	rec := &trace.Recorder{}
	s, err := New(cfg, []Thread{specThread(t, "crafty"), variantThread(t, 2)},
		Options{Policy: dtm.StopAndGo, WarmupCycles: 300_000, CollectEvents: true, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	engage, release := 0, 0
	open := false
	for _, ev := range res.Events {
		switch ev.Kind {
		case telemetry.KindStopGoEngage:
			if open {
				t.Fatal("double engage")
			}
			open = true
			engage++
			if ev.TempK < cfg.Thermal.EmergencyK {
				t.Errorf("engaged below the emergency temperature: %+v", ev)
			}
		case telemetry.KindStopGoRelease:
			if !open {
				t.Fatal("release without engage")
			}
			open = false
			release++
		}
	}
	if engage == 0 {
		t.Fatal("attack under stop-and-go never engaged")
	}
	if res.StopGoCycles == 0 {
		t.Error("no stalled cycles despite engagements")
	}
	if engage != res.Emergencies {
		t.Errorf("engagements %d != emergencies %d", engage, res.Emergencies)
	}
}
