package sim

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// TestRunDeterminism locks in bit-for-bit reproducibility: two
// simulators built from identical config, threads, and seed must
// produce identical Result structs — the property the sweep engine
// relies on for reproducible tables at any parallelism.
func TestRunDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := quickCfg()
		cfg.Run.Seed = 7
		spec, err := workload.Spec("crafty", 7)
		if err != nil {
			t.Fatal(err)
		}
		attacker, err := workload.VariantForScale(2, cfg.Thermal.Scale)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(cfg, []Thread{
			{Name: "crafty", Prog: spec},
			{Name: "variant2", Prog: attacker},
		}, Options{Policy: dtm.SelectiveSedation, WarmupCycles: 100_000, TraceTemps: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical runs diverged:\n a = %+v\n b = %+v", a, b)
	}
}
