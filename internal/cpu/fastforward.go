package cpu

import "math"

// Stalled-cycle fast-forward.
//
// Under the paper's attack scenarios the stop-and-go base case holds
// the pipeline globally stalled for ~91% of all cycles (duty cycle
// 0.09), and even un-stalled threads spend long stretches waiting on a
// known future cycle (an L2 miss return, a mispredict redirect, an
// icache fill). Ticking those cycles one Step at a time does nothing
// but increment the clock. Run therefore proves, from the pipeline
// state alone, the earliest future cycle at which any stage could do
// work, and advances the clock (plus the per-cycle sedation
// accounting) arithmetically up to that cycle.
//
// The invariant that makes this byte-identical to stepping (tested by
// TestFastForwardEquivalence): a cycle is skipped only if Step would
// have been a pure clock tick — every condition below is exactly the
// guard the corresponding stage evaluates, and quiescence is
// self-sustaining because no entry state, queue, or counter can change
// without one of the enumerated wake-up sources firing first.

// never is a sentinel cycle meaning "no work is scheduled".
const never = int64(math.MaxInt64)

// SetFastForward enables or disables the stalled-cycle fast-forward
// (enabled by default). Results are identical either way — the switch
// exists so tests can prove that, and so profiles can isolate the
// stage costs.
func (c *Core) SetFastForward(enabled bool) { c.ffDisabled = !enabled }

// nextActiveCycle returns the earliest cycle in (c.cycle, end] at
// which Step could perform pipeline work, or end+1 if the window is
// provably quiescent.
func (c *Core) nextActiveCycle(end int64) int64 {
	if c.globalStall {
		// Step returns before any stage (and before the sedation
		// accounting) while the chip is stalled.
		return end + 1
	}
	now := c.cycle
	earliest := never

	// Writeback: the earliest pending completion event. Events whose
	// deadline passed during a stalled or gated stretch fire on the
	// next live cycle.
	if len(c.events) > 0 {
		earliest = c.events[0].at
		if earliest <= now {
			earliest = now + 1
		}
	}

	// Issue: a live ready head issues next cycle. Stale (squashed)
	// heads are dropped here exactly as issue() drops them lazily.
	for f := 0; f < fuCount && earliest > now+1; f++ {
		if c.fuLimit[f] <= 0 {
			continue
		}
		q := &c.readyQ[f]
		for !q.empty() {
			top := q.peek()
			e := &c.entries[top.id]
			if e.gen != top.gen || e.state != esDispatched {
				q.pop()
				continue
			}
			earliest = now + 1
			break
		}
	}

	if earliest > now+1 {
		for _, t := range c.threads {
			if t.prog == nil {
				continue
			}
			// Commit: a completed head-of-list entry retires next cycle.
			if t.listHead >= 0 && c.entries[t.listHead].state == esDone {
				earliest = now + 1
				break
			}
			// Dispatch: a renameable fetch-queue head dispatches next
			// cycle (same RUU/LSQ gates as dispatch()).
			if t.ifqLen > 0 && c.ruuUsed < c.cfg.Pipeline.RUUSize {
				e := &c.entries[t.ifqFront()]
				if !((e.isLoad || e.isStore) && c.lsqUsed >= c.cfg.Pipeline.LSQSize) {
					earliest = now + 1
					break
				}
			}
			// Fetch: resumes at a known cycle unless blocked on an
			// in-flight entry, whose completion event is already
			// accounted for above.
			if t.fetchEnabled && t.ifqLen < ifqDepth &&
				!(t.blocker.valid() && c.lookup(t.blocker) != nil) {
				at := t.fetchResumeAt
				if t.icacheStallEnd > at {
					at = t.icacheStallEnd
				}
				if at <= now {
					at = now + 1
				}
				if at < earliest {
					earliest = at
				}
				if earliest <= now+1 {
					break
				}
			}
		}
	}

	if earliest > end {
		return end + 1
	}
	// Interleaved clock gating postpones work to the first ungated
	// cycle; the gated cycles in between are pure ticks.
	if c.throttleDen > 0 {
		earliest = c.firstUngated(earliest)
		if earliest > end {
			return end + 1
		}
	}
	return earliest
}

// skipTo advances the clock to target, crediting each skipped live
// (un-stalled, un-gated) cycle to the sedation counters exactly as the
// per-cycle loop in Step would have.
func (c *Core) skipTo(target int64) {
	if target <= c.cycle {
		return
	}
	if c.globalStall {
		c.stalledCycles += uint64(target - c.cycle)
		c.cycle = target
		return
	}
	live := target - c.cycle
	if c.throttleDen > 0 {
		live = c.ungatedIn(c.cycle+1, target)
	}
	if live > 0 {
		for _, t := range c.threads {
			if t.prog != nil && !t.fetchEnabled {
				c.stats[t.id].SedatedCycles += uint64(live)
			}
		}
		// dispatch() advances its round-robin cursor every live cycle,
		// whether or not anything dispatches; the cursor's phase decides
		// which thread renames first once work resumes.
		c.dispatchRR += int(live)
	}
	c.cycle = target
}

// firstUngated returns the first cycle >= x whose clock is not gated
// by the current throttle setting (never if the clock is fully gated).
func (c *Core) firstUngated(x int64) int64 {
	num, den := int64(c.throttleNum), int64(c.throttleDen)
	if num >= den {
		return never
	}
	if r := x % den; r < num {
		return x + (num - r)
	}
	return x
}

// ungatedIn counts the cycles in [a, b] that are not throttle-gated.
func (c *Core) ungatedIn(a, b int64) int64 {
	num, den := int64(c.throttleNum), int64(c.throttleDen)
	if num >= den {
		return 0
	}
	// count(n) is the number of ungated cycles in [0, n).
	count := func(n int64) int64 {
		if n <= 0 {
			return 0
		}
		full, rem := n/den, n%den
		cnt := full * (den - num)
		if rem > num {
			cnt += rem - num
		}
		return cnt
	}
	return count(b+1) - count(a)
}
