// Package cpu implements the cycle-level SMT out-of-order core the
// paper's experiments run on: ICOUNT fetch from up to two threads per
// cycle, renaming onto a shared register-update unit (RUU), a shared
// load/store queue with store-to-load forwarding, multi-wide out-of-
// order issue over a functional-unit pool, and in-order per-thread
// commit. It models the two mechanisms the paper depends on:
//
//   - mispredicted branches stall a thread's fetch until the branch
//     resolves (plus a redirect penalty), and
//   - a load that misses in the shared L2 squashes the thread past the
//     load and blocks its fetch until the miss returns, the common SMT
//     optimization Table 1 lists ("squashing a thread on an L2 miss to
//     avoid filling up the issue queue").
//
// The core is functional-first: instructions execute architecturally at
// fetch (the functional frontier runs in program order per thread), and
// the pipeline models timing only. Squashes roll the architectural
// state back with per-instruction undo records, so timing-driven
// squashes stay exact.
//
// Every structural access is counted into a power.Activity, chip-wide
// and per hardware context; those counters drive both the Wattch-like
// power model and the paper's per-thread sedation monitor.
package cpu

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/mem"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

const ifqDepth = 16

// ThreadStats counts per-context events.
type ThreadStats struct {
	Fetched       uint64
	Committed     uint64
	Branches      uint64
	Mispredicts   uint64
	L2Squashes    uint64
	Squashed      uint64
	SedatedCycles uint64
}

// Sub returns the counter deltas s - base; the simulator uses it to
// exclude warmup activity from measurements.
func (s ThreadStats) Sub(base ThreadStats) ThreadStats {
	return ThreadStats{
		Fetched:       s.Fetched - base.Fetched,
		Committed:     s.Committed - base.Committed,
		Branches:      s.Branches - base.Branches,
		Mispredicts:   s.Mispredicts - base.Mispredicts,
		L2Squashes:    s.L2Squashes - base.L2Squashes,
		Squashed:      s.Squashed - base.Squashed,
		SedatedCycles: s.SedatedCycles - base.SedatedCycles,
	}
}

// IPC returns committed instructions per cycle over the given cycles.
func (s ThreadStats) IPC(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(s.Committed) / float64(cycles)
}

// Core is one SMT processor core.
type Core struct {
	cfg     *config.Config
	hier    *mem.Hierarchy
	act     *power.Activity
	threads []*thread

	entries []entry
	free    []int32
	ruuUsed int
	lsqUsed int

	seq    uint64
	cycle  int64
	events []event
	// readyQ holds dispatched entries whose producers have all written
	// back, one age-ordered queue per functional-unit class so issue
	// never touches entries blocked on a busy unit.
	readyQ [fuCount]readyQueue

	globalStall bool
	throttleNum int
	throttleDen int

	// fetchCands is fetch's candidate scratch, reused every cycle so the
	// steady-state loop performs no heap allocations.
	fetchCands []fetchCand

	// ffDisabled turns off the stalled-cycle fast-forward in Run; the
	// equivalence tests use it to prove fast-forwarded runs are
	// byte-identical to stepped ones.
	ffDisabled bool

	// fuLimit and fuUsed gate issue per cycle.
	fuLimit [fuCount]int
	fuUsed  [fuCount]int

	// squashes counts thread squashes; issue uses it to notice that a
	// just-issued load invalidated entries (and so any cached ready-
	// queue head) mid-cycle.
	squashes uint64

	// stalledCycles counts cycles elapsed while globally stalled
	// (stop-and-go engaged), maintained in both the stepped and the
	// fast-forwarded paths.
	stalledCycles uint64

	dispatchRR int

	stats []ThreadStats

	// pend accumulates per-thread activity deltas between flushes; the
	// stage code increments these core-local vectors and Run/Step fold
	// them into the shared Activity at their exit, so every consumer
	// (power model, sedation monitor, snapshots — all of which read
	// between runs, never mid-run) still sees exact counters.
	pend [][power.NumUnits]uint64
}

const (
	fuIntALU = iota
	fuIntMulDiv
	fuMem
	fuFPAdd
	fuFPMulDiv
	fuCount
)

func fuIndex(c isa.FUClass) int {
	switch c {
	case isa.FUIntALU, isa.FUBranch, isa.FUNone:
		return fuIntALU
	case isa.FUIntMulDiv:
		return fuIntMulDiv
	case isa.FUMem:
		return fuMem
	case isa.FUFPAdd:
		return fuFPAdd
	case isa.FUFPMulDiv:
		return fuFPMulDiv
	}
	return fuIntALU
}

// New builds a core running one program per hardware context. Contexts
// beyond len(programs) stay idle.
func New(cfg *config.Config, programs []*isa.Program) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(programs) == 0 || len(programs) > cfg.Pipeline.Contexts {
		return nil, fmt.Errorf("cpu: %d programs for %d contexts", len(programs), cfg.Pipeline.Contexts)
	}
	hier, err := mem.NewHierarchy(cfg.Memory)
	if err != nil {
		return nil, err
	}
	nthreads := cfg.Pipeline.Contexts
	c := &Core{
		cfg:   cfg,
		hier:  hier,
		act:   power.NewActivity(nthreads),
		stats: make([]ThreadStats, nthreads),
		pend:  make([][power.NumUnits]uint64, nthreads),
	}
	c.fuLimit[fuIntALU] = cfg.Pipeline.IntALUs
	c.fuLimit[fuIntMulDiv] = cfg.Pipeline.IntMulDiv
	c.fuLimit[fuMem] = cfg.Pipeline.MemPorts
	c.fuLimit[fuFPAdd] = cfg.Pipeline.FPALUs
	c.fuLimit[fuFPMulDiv] = cfg.Pipeline.FPMulDiv

	poolSize := cfg.Pipeline.RUUSize + nthreads*ifqDepth
	c.entries = make([]entry, poolSize)
	c.free = make([]int32, 0, poolSize)
	for i := poolSize - 1; i >= 0; i-- {
		c.entries[i].id = int32(i)
		c.entries[i].prev, c.entries[i].next = -1, -1
		c.entries[i].consHead = -1
		c.free = append(c.free, int32(i))
	}
	// Pre-size the event heap, ready queues, and fetch scratch to their
	// worst cases so the warmed-up pipeline never grows a slice.
	c.events = make([]event, 0, poolSize)
	for f := range c.readyQ {
		c.readyQ[f].buf = make([]readyRef, 0, poolSize)
	}
	c.fetchCands = make([]fetchCand, 0, nthreads)

	c.threads = make([]*thread, nthreads)
	for i := 0; i < nthreads; i++ {
		var prog *isa.Program
		if i < len(programs) {
			prog = programs[i]
		}
		t, err := newThread(i, prog, cfg)
		if err != nil {
			return nil, err
		}
		c.threads[i] = t
	}
	return c, nil
}

// Activity exposes the cumulative access counters.
func (c *Core) Activity() *power.Activity { return c.act }

// Hierarchy exposes the memory system (for tests).
func (c *Core) Hierarchy() *mem.Hierarchy { return c.hier }

// Cycle returns the current cycle number.
func (c *Core) Cycle() int64 { return c.cycle }

// Threads returns the number of hardware contexts.
func (c *Core) Threads() int { return len(c.threads) }

// Stats returns thread tid's counters.
func (c *Core) Stats(tid int) ThreadStats { return c.stats[tid] }

// RUUUsed returns current RUU occupancy (for tests).
func (c *Core) RUUUsed() int { return c.ruuUsed }

// LSQUsed returns current LSQ occupancy (for tests).
func (c *Core) LSQUsed() int { return c.lsqUsed }

// SetFetchEnabled gates a thread's fetch stage; selective sedation
// sedates a thread by disabling its fetch. In-flight instructions
// drain normally.
func (c *Core) SetFetchEnabled(tid int, enabled bool) {
	c.threads[tid].fetchEnabled = enabled
}

// FetchEnabled reports whether thread tid may fetch.
func (c *Core) FetchEnabled(tid int) bool { return c.threads[tid].fetchEnabled }

// SetGlobalStall freezes or thaws the whole pipeline (stop-and-go /
// global clock gating). While stalled, cycles elapse but no pipeline
// activity occurs and no dynamic power is consumed.
func (c *Core) SetGlobalStall(stall bool) { c.globalStall = stall }

// GlobalStalled reports whether the pipeline is frozen.
func (c *Core) GlobalStalled() bool { return c.globalStall }

// Active reports whether thread tid has a program.
func (c *Core) Active(tid int) bool { return c.threads[tid].prog != nil }

// IntRegValue returns the current architectural value of thread tid's
// integer register r (the functional frontier's view).
func (c *Core) IntRegValue(tid int, r int) int64 { return c.threads[tid].iregs[r] }

// FPRegValue returns the architectural value of an FP register.
func (c *Core) FPRegValue(tid int, r int) float64 { return c.threads[tid].fregs[r] }

// MemWord returns the 8-byte word at addr in thread tid's memory image.
func (c *Core) MemWord(tid int, addr uint64) int64 { return c.threads[tid].mem.Read(addr) }

// InFlight returns thread tid's in-flight instruction count (ICOUNT's
// metric; for tests).
func (c *Core) InFlight(tid int) int { return c.threads[tid].inFlight }

// SetThrottle gates the clock on num of every den cycles (interleaved
// clock gating); the DVS baseline uses it to model a reduced effective
// frequency. SetThrottle(0, 0) disables throttling.
func (c *Core) SetThrottle(num, den int) {
	c.throttleNum, c.throttleDen = num, den
}

func (c *Core) gatedCycle() bool {
	return c.throttleDen > 0 && int(c.cycle%int64(c.throttleDen)) < c.throttleNum
}

// StalledCycles returns the cumulative cycles spent globally stalled.
func (c *Core) StalledCycles() uint64 { return c.stalledCycles }

// Step advances the core by one cycle and flushes the batched activity
// counters, so single-stepping callers always observe exact counts.
func (c *Core) Step() {
	c.stepCycle()
	c.flushActivity()
}

// stepCycle is one pipeline cycle without the activity flush — the
// body Run amortizes the flush over.
func (c *Core) stepCycle() {
	c.cycle++
	if c.globalStall {
		c.stalledCycles++
		return
	}
	if c.gatedCycle() {
		return
	}
	for _, t := range c.threads {
		if t.prog != nil && !t.fetchEnabled {
			c.stats[t.id].SedatedCycles++
		}
	}
	c.writeback()
	c.commit()
	c.issue()
	c.dispatch()
	c.fetch()
}

// addAct batches one activity increment into the core-local pending
// vector; flushActivity folds it into the shared counters.
func (c *Core) addAct(u power.Unit, tid int, n uint64) {
	c.pend[tid][u] += n
}

// flushActivity folds every thread's pending deltas into the shared
// Activity.
func (c *Core) flushActivity() {
	for tid := range c.pend {
		c.act.AddBatch(tid, &c.pend[tid])
	}
}

// Run advances the core n cycles. When the pipeline provably cannot do
// any work for a stretch of cycles — the whole chip is stalled, every
// clock is gated, or every thread is waiting on a known future cycle —
// Run advances the clock (and the per-cycle sedation accounting)
// arithmetically instead of ticking empty cycles; see fastforward.go.
func (c *Core) Run(n int64) {
	end := c.cycle + n
	if c.ffDisabled {
		for c.cycle < end {
			c.stepCycle()
		}
		c.flushActivity()
		return
	}
	for c.cycle < end {
		next := c.nextActiveCycle(end)
		if next > end {
			c.skipTo(end)
			break
		}
		c.skipTo(next - 1)
		c.stepCycle()
	}
	c.flushActivity()
}

// fetchCand is one fetch-arbitration candidate; fetch reuses a scratch
// slice of these on the Core.
type fetchCand struct {
	t        *thread
	inFlight int
}

// event is a scheduled writeback.
type event struct {
	at  int64
	id  int32
	gen uint32
}

// readyRef is an issue-ready entry; gen guards against squash.
type readyRef struct {
	id  int32
	gen uint32
	seq uint64
}

// readyQueue keeps ready entries age-ordered. Pushes arrive in nearly
// increasing age (dispatch and wakeup order), so an insertion-from-the-
// back queue is O(1) amortized; pops take the oldest from the front.
type readyQueue struct {
	buf  []readyRef
	head int
}

// push inserts r in age order. Dispatch-order pushes append in O(1);
// an out-of-order wakeup binary-searches the sorted region and moves
// the tail with one copy. The old swap-based backward scan was ~9% of
// simulation time flat, and under attack workloads a woken old
// instruction scanned past most of a full issue queue.
func (q *readyQueue) push(r readyRef) {
	q.buf = append(q.buf, r)
	hi := len(q.buf) - 1
	if hi == q.head || q.buf[hi-1].seq <= r.seq {
		return
	}
	lo := q.head
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.buf[mid].seq > r.seq {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	copy(q.buf[lo+1:], q.buf[lo:len(q.buf)-1])
	q.buf[lo] = r
}

func (q *readyQueue) empty() bool { return q.head >= len(q.buf) }

func (q *readyQueue) peek() readyRef { return q.buf[q.head] }

func (q *readyQueue) pop() readyRef {
	r := q.buf[q.head]
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 256 && q.head*2 > len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return r
}

func (c *Core) readyPush(e *entry) {
	c.readyQ[e.dec.fu].push(readyRef{id: e.id, gen: e.gen, seq: e.seq})
}

// schedule enqueues a writeback event on the min-heap.
func (c *Core) schedule(at int64, e *entry) {
	c.events = append(c.events, event{at: at, id: e.id, gen: e.gen})
	// Sift up.
	i := len(c.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if c.events[parent].at <= c.events[i].at {
			break
		}
		c.events[parent], c.events[i] = c.events[i], c.events[parent]
		i = parent
	}
}
