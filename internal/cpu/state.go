package cpu

import (
	"fmt"
	"slices"

	"github.com/heatstroke-sim/heatstroke/internal/bpred"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/mem"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Ref is the serializable form of an entry reference.
type Ref struct {
	ID  int32
	Gen uint32
}

// EventState is one pending writeback event. The event list is stored
// in its raw binary-heap layout so restore reproduces pop order (ties
// on the deadline break by heap structure) exactly.
type EventState struct {
	At  int64
	ID  int32
	Gen uint32
}

// ReadyRefState is one issue-ready entry in a ready queue.
type ReadyRefState struct {
	ID  int32
	Gen uint32
	Seq uint64
}

// EntryState is the serializable state of one pipeline entry. The
// entry's id is its index in CoreState.Entries; the inst/dec pointers
// are relinked from TID and PC on restore.
type EntryState struct {
	Gen   uint32
	State uint8

	TID int32
	Seq uint64
	PC  int32

	Prev, Next int32

	Prod      [3]Ref
	WaitCount int8
	ConsHead  int32
	NextCons  [3]int32

	Addr    uint64
	IsLoad  bool
	IsStore bool
	InLSQ   bool
	L2Miss  bool

	IsCond      bool
	BrTaken     bool
	BrPredTaken bool
	BrMispred   bool
	BrPCAddr    uint64

	DstClass isa.RegClass
	DstReg   uint8
	OldVal   int64
	MemOld   int64
	PrevProd Ref
}

// ThreadState is the serializable state of one hardware context. Pred
// and RAS are nil for idle contexts (no program loaded).
type ThreadState struct {
	IRegs [isa.NumIntRegs]int64
	FRegs [isa.NumFPRegs]float64
	Mem   mem.MemoryState

	PC int32

	FetchEnabled   bool
	FetchResumeAt  int64
	ICacheStallEnd int64
	CurLine        int64
	Blocker        Ref

	IFQ     [ifqDepth]int32
	IFQHead int
	IFQLen  int

	RenInt [isa.NumIntRegs]Ref
	RenFP  [isa.NumFPRegs]Ref

	Stores []Ref

	ListHead, ListTail int32
	InFlight           int

	Pred *bpred.PredictorState
	RAS  *bpred.RASState
}

// CoreState is the serializable state of the whole core: pipeline
// entries, per-thread contexts, the memory hierarchy, and the activity
// counters. Static configuration (FU limits, pool geometry, programs,
// the decode cache) and per-cycle scratch (fetch candidates, FU usage)
// stay with the live core; the fast-forward switch is a run-mode knob,
// not machine state.
type CoreState struct {
	Cycle int64
	Seq   uint64

	Entries []EntryState
	Free    []int32
	RUUUsed int
	LSQUsed int

	Events []EventState
	// ReadyQ has one logical queue per FU class, oldest first (the
	// live queue's consumed prefix is dropped).
	ReadyQ [][]ReadyRefState

	GlobalStall   bool
	ThrottleNum   int
	ThrottleDen   int
	Squashes      uint64
	DispatchRR    int
	StalledCycles uint64

	Stats []ThreadStats

	Hier mem.HierarchyState
	Act  power.ActivityState

	Threads []ThreadState
}

// Clone returns a deep copy of the thread state.
func (ts ThreadState) Clone() ThreadState {
	out := ts
	out.Mem = ts.Mem.Clone()
	out.Stores = slices.Clone(ts.Stores)
	if ts.Pred != nil {
		p := ts.Pred.Clone()
		out.Pred = &p
	}
	if ts.RAS != nil {
		r := ts.RAS.Clone()
		out.RAS = &r
	}
	return out
}

// Clone returns a deep copy of the core state without a gob
// round-trip: the fork path for handing one snapshot to consumers
// that each need a private, mutable copy.
func (st CoreState) Clone() CoreState {
	out := st
	out.Entries = slices.Clone(st.Entries)
	out.Free = slices.Clone(st.Free)
	out.Events = slices.Clone(st.Events)
	out.ReadyQ = make([][]ReadyRefState, len(st.ReadyQ))
	for i, q := range st.ReadyQ {
		out.ReadyQ[i] = slices.Clone(q)
	}
	out.Stats = slices.Clone(st.Stats)
	out.Hier = st.Hier.Clone()
	out.Act = st.Act.Clone()
	out.Threads = make([]ThreadState, len(st.Threads))
	for i, t := range st.Threads {
		out.Threads[i] = t.Clone()
	}
	return out
}

func toRef(r ref) Ref   { return Ref{ID: r.id, Gen: r.gen} }
func fromRef(r Ref) ref { return ref{id: r.ID, gen: r.Gen} }
func toRefs(rs []ref) []Ref {
	out := make([]Ref, len(rs))
	for i, r := range rs {
		out[i] = toRef(r)
	}
	return out
}

// Snapshot returns a deep copy of the core's state; the copy shares
// nothing with the live core, so one snapshot can seed many clones.
func (c *Core) Snapshot() CoreState {
	c.flushActivity() // fold pending deltas so Act captures exact counts
	st := CoreState{
		Cycle:         c.cycle,
		Seq:           c.seq,
		Entries:       make([]EntryState, len(c.entries)),
		Free:          append([]int32(nil), c.free...),
		RUUUsed:       c.ruuUsed,
		LSQUsed:       c.lsqUsed,
		Events:        make([]EventState, len(c.events)),
		ReadyQ:        make([][]ReadyRefState, fuCount),
		GlobalStall:   c.globalStall,
		ThrottleNum:   c.throttleNum,
		ThrottleDen:   c.throttleDen,
		Squashes:      c.squashes,
		DispatchRR:    c.dispatchRR,
		StalledCycles: c.stalledCycles,
		Stats:         append([]ThreadStats(nil), c.stats...),
		Hier:          c.hier.Snapshot(),
		Act:           c.act.Snapshot(),
		Threads:       make([]ThreadState, len(c.threads)),
	}
	for i := range c.entries {
		e := &c.entries[i]
		st.Entries[i] = EntryState{
			Gen:         e.gen,
			State:       uint8(e.state),
			TID:         e.tid,
			Seq:         e.seq,
			PC:          e.pc,
			Prev:        e.prev,
			Next:        e.next,
			Prod:        [3]Ref{toRef(e.prod[0]), toRef(e.prod[1]), toRef(e.prod[2])},
			WaitCount:   e.waitCount,
			ConsHead:    e.consHead,
			NextCons:    e.nextCons,
			Addr:        e.addr,
			IsLoad:      e.isLoad,
			IsStore:     e.isStore,
			InLSQ:       e.inLSQ,
			L2Miss:      e.l2miss,
			IsCond:      e.isCond,
			BrTaken:     e.brTaken,
			BrPredTaken: e.brPredTaken,
			BrMispred:   e.brMispred,
			BrPCAddr:    e.brPCAddr,
			DstClass:    e.dstClass,
			DstReg:      e.dstReg,
			OldVal:      e.oldVal,
			MemOld:      e.memOld,
			PrevProd:    toRef(e.prevProd),
		}
	}
	for i, ev := range c.events {
		st.Events[i] = EventState{At: ev.at, ID: ev.id, Gen: ev.gen}
	}
	for f := range c.readyQ {
		q := &c.readyQ[f]
		live := q.buf[q.head:]
		if len(live) > 0 {
			out := make([]ReadyRefState, len(live))
			for i, r := range live {
				out[i] = ReadyRefState{ID: r.id, Gen: r.gen, Seq: r.seq}
			}
			st.ReadyQ[f] = out
		}
	}
	for i, t := range c.threads {
		ts := ThreadState{
			IRegs:          t.iregs,
			FRegs:          t.fregs,
			Mem:            t.mem.Snapshot(),
			PC:             t.pc,
			FetchEnabled:   t.fetchEnabled,
			FetchResumeAt:  t.fetchResumeAt,
			ICacheStallEnd: t.icacheStallEnd,
			CurLine:        t.curLine,
			Blocker:        toRef(t.blocker),
			IFQ:            t.ifq,
			IFQHead:        t.ifqHead,
			IFQLen:         t.ifqLen,
			Stores:         toRefs(t.stores),
			ListHead:       t.listHead,
			ListTail:       t.listTail,
			InFlight:       t.inFlight,
		}
		for r := range t.renInt {
			ts.RenInt[r] = toRef(t.renInt[r])
		}
		for r := range t.renFP {
			ts.RenFP[r] = toRef(t.renFP[r])
		}
		if t.pred != nil {
			ps, err := bpred.Snapshot(t.pred)
			if err == nil {
				ts.Pred = &ps
			}
			rs := t.ras.Snapshot()
			ts.RAS = &rs
		}
		st.Threads[i] = ts
	}
	return st
}

// Restore loads st into c, which must have been built from the same
// configuration and programs (pool geometry and context count are
// checked; program identity is the caller's contract — the simulator
// enforces it with a digest). The state is copied, never aliased, so
// the same CoreState can restore many cores.
func (c *Core) Restore(st CoreState) error {
	if len(st.Entries) != len(c.entries) {
		return fmt.Errorf("cpu: state has %d pool entries, want %d", len(st.Entries), len(c.entries))
	}
	if len(st.Threads) != len(c.threads) {
		return fmt.Errorf("cpu: state has %d contexts, want %d", len(st.Threads), len(c.threads))
	}
	if len(st.ReadyQ) != fuCount {
		return fmt.Errorf("cpu: state has %d ready queues, want %d", len(st.ReadyQ), fuCount)
	}
	if len(st.Free) > len(c.entries) || len(st.Stats) != len(c.threads) {
		return fmt.Errorf("cpu: state free list / stats sized %d/%d for pool %d contexts %d",
			len(st.Free), len(st.Stats), len(c.entries), len(c.threads))
	}
	// Validate entries before mutating anything: every non-free entry
	// must name a runnable context and an in-range pc so the inst/dec
	// relink below is safe.
	for i := range st.Entries {
		es := &st.Entries[i]
		if es.State == uint8(esFree) {
			continue
		}
		if es.State > uint8(esDone) {
			return fmt.Errorf("cpu: entry %d has unknown state %d", i, es.State)
		}
		if es.TID < 0 || int(es.TID) >= len(c.threads) {
			return fmt.Errorf("cpu: entry %d names context %d of %d", i, es.TID, len(c.threads))
		}
		t := c.threads[es.TID]
		if t.prog == nil {
			return fmt.Errorf("cpu: entry %d belongs to idle context %d", i, es.TID)
		}
		if es.PC < 0 || int(es.PC) >= t.prog.Len() {
			return fmt.Errorf("cpu: entry %d pc %d out of range for context %d", i, es.PC, es.TID)
		}
	}
	for i, ts := range st.Threads {
		t := c.threads[i]
		if (t.prog == nil) != (ts.Pred == nil) {
			return fmt.Errorf("cpu: context %d program presence mismatch", i)
		}
		if ts.IFQLen < 0 || ts.IFQLen > ifqDepth || ts.IFQHead < 0 || ts.IFQHead >= ifqDepth {
			return fmt.Errorf("cpu: context %d fetch queue head %d len %d invalid", i, ts.IFQHead, ts.IFQLen)
		}
		if t.prog != nil {
			if err := bpred.Restore(t.pred, *ts.Pred); err != nil {
				return err
			}
			if err := t.ras.Restore(*ts.RAS); err != nil {
				return err
			}
		}
	}

	c.cycle = st.Cycle
	c.seq = st.Seq
	c.ruuUsed = st.RUUUsed
	c.lsqUsed = st.LSQUsed
	c.globalStall = st.GlobalStall
	c.throttleNum = st.ThrottleNum
	c.throttleDen = st.ThrottleDen
	c.squashes = st.Squashes
	c.dispatchRR = st.DispatchRR
	c.stalledCycles = st.StalledCycles
	copy(c.stats, st.Stats)

	c.free = append(c.free[:0], st.Free...)
	c.events = c.events[:0]
	for _, ev := range st.Events {
		c.events = append(c.events, event{at: ev.At, id: ev.ID, gen: ev.Gen})
	}
	for f := range c.readyQ {
		q := &c.readyQ[f]
		q.buf = q.buf[:0]
		q.head = 0
		for _, r := range st.ReadyQ[f] {
			q.buf = append(q.buf, readyRef{id: r.ID, gen: r.Gen, seq: r.Seq})
		}
	}

	for i := range st.Entries {
		es := &st.Entries[i]
		e := &c.entries[i]
		e.gen = es.Gen
		e.state = eState(es.State)
		e.tid = es.TID
		e.seq = es.Seq
		e.pc = es.PC
		e.prev, e.next = es.Prev, es.Next
		e.prod = [3]ref{fromRef(es.Prod[0]), fromRef(es.Prod[1]), fromRef(es.Prod[2])}
		e.waitCount = es.WaitCount
		e.consHead = es.ConsHead
		e.nextCons = es.NextCons
		e.addr = es.Addr
		e.isLoad, e.isStore, e.inLSQ, e.l2miss = es.IsLoad, es.IsStore, es.InLSQ, es.L2Miss
		e.isCond, e.brTaken = es.IsCond, es.BrTaken
		e.brPredTaken, e.brMispred = es.BrPredTaken, es.BrMispred
		e.brPCAddr = es.BrPCAddr
		e.dstClass = es.DstClass
		e.dstReg = es.DstReg
		e.oldVal = es.OldVal
		e.memOld = es.MemOld
		e.prevProd = fromRef(es.PrevProd)
		if e.state != esFree {
			t := c.threads[e.tid]
			e.inst = &t.prog.Insts[e.pc]
			e.dec = &t.dec[e.pc]
		} else {
			e.inst = nil
			e.dec = nil
		}
	}

	for i, ts := range st.Threads {
		t := c.threads[i]
		t.iregs = ts.IRegs
		t.fregs = ts.FRegs
		if err := t.mem.Restore(ts.Mem); err != nil {
			return err
		}
		t.pc = ts.PC
		t.fetchEnabled = ts.FetchEnabled
		t.fetchResumeAt = ts.FetchResumeAt
		t.icacheStallEnd = ts.ICacheStallEnd
		t.curLine = ts.CurLine
		t.blocker = fromRef(ts.Blocker)
		t.ifq = ts.IFQ
		t.ifqHead = ts.IFQHead
		t.ifqLen = ts.IFQLen
		for r := range t.renInt {
			t.renInt[r] = fromRef(ts.RenInt[r])
		}
		for r := range t.renFP {
			t.renFP[r] = fromRef(ts.RenFP[r])
		}
		t.stores = t.stores[:0]
		for _, r := range ts.Stores {
			t.stores = append(t.stores, fromRef(r))
		}
		t.listHead, t.listTail = ts.ListHead, ts.ListTail
		t.inFlight = ts.InFlight
	}

	if err := c.hier.Restore(st.Hier); err != nil {
		return err
	}
	// Snapshots carry exact counters (Snapshot flushes first), so any
	// deltas batched since then belong to discarded execution.
	for tid := range c.pend {
		c.pend[tid] = [power.NumUnits]uint64{}
	}
	return c.act.Restore(st.Act)
}
