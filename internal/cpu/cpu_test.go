package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

func testConfig() config.Config {
	cfg := config.Default()
	return cfg
}

func newCore(t *testing.T, cfg config.Config, progs ...*isa.Program) *Core {
	t.Helper()
	c, err := New(&cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loopOfAdds builds an unrolled loop of n independent adds.
func loopOfAdds(n int) *isa.Program {
	b := isa.NewBuilder("adds")
	b.MovI(2, 1).MovI(3, 2)
	b.Label("l")
	for i := 0; i < n; i++ {
		b.ALU(isa.OpAdd, 1, 2, 3)
	}
	return b.Br("l").MustBuild()
}

// serialChain builds a fully dependent add chain.
func serialChain(n int) *isa.Program {
	b := isa.NewBuilder("chain")
	b.MovI(1, 0)
	b.Label("l")
	for i := 0; i < n; i++ {
		b.ALUImm(isa.OpAdd, 1, 1, 1)
	}
	return b.Br("l").MustBuild()
}

func TestIndependentAddsSaturateALUs(t *testing.T) {
	cfg := testConfig()
	c := newCore(t, cfg, loopOfAdds(48))
	c.Run(100_000)
	ipc := c.Stats(0).IPC(c.Cycle())
	// Independent adds should run near the integer-ALU limit (6/cycle,
	// bounded by issue width 6 and loop overhead).
	if ipc < float64(cfg.Pipeline.IntALUs)*0.8 {
		t.Errorf("IPC %.2f, want near %d", ipc, cfg.Pipeline.IntALUs)
	}
}

func TestSerialChainIPCOne(t *testing.T) {
	c := newCore(t, testConfig(), serialChain(64))
	c.Run(100_000)
	ipc := c.Stats(0).IPC(c.Cycle())
	if ipc < 0.9 || ipc > 1.2 {
		t.Errorf("serial chain IPC %.2f, want ~1", ipc)
	}
}

// TestFunctionalCorrectness runs a small program with a known result
// and checks the architectural state: a counted loop summing 1..10 into
// $5 and storing it.
func TestFunctionalCorrectness(t *testing.T) {
	prog, err := isa.Assemble("sum", `
	movi $1, 10     # i
	movi $5, 0      # sum
	movi $6, 0x1000 # out pointer
loop:
	addl $5, $5, $1
	subl $1, $1, 1
	bnez $1, loop
	stq  $5, 0($6)
	movi $9, 1
halt:
	br halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(2000)
	if got := c.IntRegValue(0, 5); got != 55 {
		t.Errorf("$5 = %d, want 55", got)
	}
	if got := c.MemWord(0, 0x1000); got != 55 {
		t.Errorf("mem[0x1000] = %d, want 55", got)
	}
	if got := c.IntRegValue(0, 9); got != 1 {
		t.Errorf("$9 = %d, want 1 (post-loop code must run)", got)
	}
}

// TestStoreLoadForwarding checks memory dataflow through the pipeline:
// a value stored then immediately loaded must arrive intact.
func TestStoreLoadForwarding(t *testing.T) {
	prog, err := isa.Assemble("fwd", `
	movi $1, 0x2000
	movi $2, 1234
	stq  $2, 0($1)
	ldq  $3, 0($1)
	addl $4, $3, 1
halt:
	br halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(1000)
	if got := c.IntRegValue(0, 4); got != 1235 {
		t.Errorf("$4 = %d, want 1235", got)
	}
}

func TestMispredictsHurt(t *testing.T) {
	// A data-dependent 50/50 branch stream vs an always-taken one.
	flaky := func() *isa.Program {
		b := isa.NewBuilder("flaky")
		b.MovI(9, 12345)
		b.Label("l")
		for i := 0; i < 8; i++ {
			b.ALUImm(isa.OpShl, 10, 9, 13)
			b.ALU(isa.OpXor, 9, 9, 10)
			b.ALUImm(isa.OpShr, 10, 9, 7)
			b.ALU(isa.OpXor, 9, 9, 10)
			b.ALUImm(isa.OpShl, 10, 9, 17)
			b.ALU(isa.OpXor, 9, 9, 10)
			b.ALUImm(isa.OpAnd, 11, 9, 1)
			label := "s" + string(rune('a'+i))
			b.Bnez(11, label)
			b.ALUImm(isa.OpAdd, 12, 12, 1)
			b.Label(label)
		}
		return b.Br("l").MustBuild()
	}()
	c := newCore(t, testConfig(), flaky)
	c.Run(200_000)
	st := c.Stats(0)
	if st.Mispredicts == 0 {
		t.Fatal("xorshift branches should mispredict")
	}
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate < 0.2 {
		t.Errorf("mispredict rate %.2f suspiciously low for random branches", rate)
	}
}

func TestBiasedBranchesPredictWell(t *testing.T) {
	b := isa.NewBuilder("biased")
	b.MovI(1, 1)
	b.Label("l")
	for i := 0; i < 8; i++ {
		label := "s" + string(rune('a'+i))
		b.Bnez(1, label)
		b.Nop()
		b.Label(label)
		b.ALUImm(isa.OpAdd, 2, 2, 1)
	}
	prog := b.Br("l").MustBuild()
	c := newCore(t, testConfig(), prog)
	c.Run(100_000)
	st := c.Stats(0)
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.02 {
		t.Errorf("always-taken branches mispredict at %.3f", rate)
	}
}

// coldLoadLoop strides through a footprint far beyond the L2.
func coldLoadLoop() *isa.Program {
	b := isa.NewBuilder("cold")
	b.MovI(1, 0x4000_0000)
	b.Label("l")
	b.Load(2, 1, 0)
	b.ALUImm(isa.OpAdd, 1, 1, 4096)
	return b.Br("l").MustBuild()
}

func TestL2MissSquash(t *testing.T) {
	cfg := testConfig()
	c := newCore(t, cfg, coldLoadLoop())
	c.Run(100_000)
	if c.Stats(0).L2Squashes == 0 {
		t.Fatal("cold loads should trigger L2-miss squashes")
	}
	if c.Stats(0).Squashed == 0 {
		t.Fatal("squashes should roll back younger instructions")
	}

	// With the optimization off there are no squashes.
	cfg.Pipeline.SquashOnL2Miss = false
	c2 := newCore(t, cfg, coldLoadLoop())
	c2.Run(100_000)
	if c2.Stats(0).L2Squashes != 0 {
		t.Fatal("squash disabled but squashes occurred")
	}
}

// TestSquashPreservesArchState: functional results must be identical
// with and without the L2-miss squash (rollback must be exact).
func TestSquashPreservesArchState(t *testing.T) {
	mk := func() *isa.Program {
		b := isa.NewBuilder("mix")
		b.MovI(1, 0x4000_0000).MovI(5, 0).MovI(6, 0x100).MovI(7, 3)
		b.MovI(8, 0).MovI(9, 100) // halt marker, iteration count
		b.Label("l")
		b.Load(2, 1, 0)                  // cold: misses L2, triggers squash
		b.ALUImm(isa.OpAdd, 1, 1, 8192)  // next cold address
		b.ALU(isa.OpAdd, 5, 5, 7)        // running sum (squashed + replayed)
		b.Store(5, 6, 0)                 // store the sum
		b.ALUImm(isa.OpAdd, 6, 6, 8)     // advance out pointer
		b.ALUImm(isa.OpAnd, 6, 6, 0x1ff) // bounded
		b.ALUImm(isa.OpSub, 9, 9, 1)
		b.Bnez(9, "l")
		b.MovI(8, 1) // halted
		b.Label("halt")
		return b.Br("halt").MustBuild()
	}
	cfgA := testConfig()
	a := newCore(t, cfgA, mk())
	a.Run(120_000)
	if a.Stats(0).L2Squashes == 0 {
		t.Fatal("test needs L2 squashes to exercise rollback")
	}

	cfgB := testConfig()
	cfgB.Pipeline.SquashOnL2Miss = false
	b := newCore(t, cfgB, mk())
	b.Run(120_000)

	// Both run the same finite 100-iteration loop and then spin on a
	// halt branch with no architectural writes, so the final state is
	// comparable regardless of timing.
	for _, c := range []*Core{a, b} {
		if got := c.IntRegValue(0, 8); got != 1 {
			t.Fatalf("program did not reach halt (marker $8=%d)", got)
		}
	}
	if av, bv := a.IntRegValue(0, 5), b.IntRegValue(0, 5); av != bv || av != 300 {
		t.Errorf("$5: squash=%d nosquash=%d, want 300", av, bv)
	}
	if am, bm := a.MemWord(0, 0x100), b.MemWord(0, 0x100); am != bm {
		t.Errorf("memory diverged: %d vs %d", am, bm)
	}
}

func TestICOUNTSharesFairly(t *testing.T) {
	// Two identical medium-ILP threads should get similar throughput.
	cfg := testConfig()
	p1 := loopOfAdds(16)
	p2 := loopOfAdds(16)
	c := newCore(t, cfg, p1, p2)
	c.Run(100_000)
	ipc0 := c.Stats(0).IPC(c.Cycle())
	ipc1 := c.Stats(1).IPC(c.Cycle())
	if ipc0 < 0.5 || ipc1 < 0.5 {
		t.Fatalf("both threads should progress: %.2f %.2f", ipc0, ipc1)
	}
	ratio := ipc0 / ipc1
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("identical threads diverge under ICOUNT: %.2f vs %.2f", ipc0, ipc1)
	}
}

func TestSedationGateStopsFetch(t *testing.T) {
	c := newCore(t, testConfig(), loopOfAdds(16))
	c.Run(10_000)
	before := c.Stats(0).Fetched
	c.SetFetchEnabled(0, false)
	c.Run(10_000)
	// In-flight work drains but fetch must stop almost immediately.
	delta := c.Stats(0).Fetched - before
	if delta > 64 {
		t.Errorf("fetched %d instructions while sedated", delta)
	}
	if got := c.Stats(0).SedatedCycles; got < 9_000 {
		t.Errorf("sedated cycles %d, want ~10000", got)
	}
	c.SetFetchEnabled(0, true)
	resumePoint := c.Stats(0).Fetched
	c.Run(10_000)
	if c.Stats(0).Fetched == resumePoint {
		t.Error("fetch did not resume")
	}
}

func TestGlobalStallFreezesPipeline(t *testing.T) {
	c := newCore(t, testConfig(), loopOfAdds(16))
	c.Run(10_000)
	before := c.Stats(0)
	beforeAct := c.Activity().Total(power.UnitIntReg)
	c.SetGlobalStall(true)
	c.Run(10_000)
	if c.Stats(0).Committed != before.Committed || c.Stats(0).Fetched != before.Fetched {
		t.Error("work progressed during global stall")
	}
	if c.Activity().Total(power.UnitIntReg) != beforeAct {
		t.Error("activity accumulated during global stall")
	}
	if c.Cycle() != 20_000 {
		t.Errorf("cycles must still elapse: %d", c.Cycle())
	}
	c.SetGlobalStall(false)
	c.Run(1_000)
	if c.Stats(0).Committed == before.Committed {
		t.Error("pipeline did not resume")
	}
}

func TestThrottleHalvesThroughput(t *testing.T) {
	full := newCore(t, testConfig(), loopOfAdds(32))
	full.Run(100_000)
	half := newCore(t, testConfig(), loopOfAdds(32))
	half.SetThrottle(1, 2)
	half.Run(100_000)
	r := half.Stats(0).IPC(half.Cycle()) / full.Stats(0).IPC(full.Cycle())
	if r < 0.4 || r > 0.6 {
		t.Errorf("1/2 throttle throughput ratio %.2f, want ~0.5", r)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ThreadStats {
		c := newCore(t, testConfig(), loopOfAdds(16), coldLoadLoop())
		c.Run(50_000)
		return c.Stats(0)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestActivityCounting(t *testing.T) {
	c := newCore(t, testConfig(), loopOfAdds(16))
	c.Run(20_000)
	act := c.Activity()
	committed := c.Stats(0).Committed
	// Each add reads two int registers and writes one: at least 2.5
	// accesses per committed instruction (movi/br dilute slightly).
	rf := act.Thread(0, power.UnitIntReg)
	if rf < committed*2 {
		t.Errorf("IntReg accesses %d too low for %d committed adds", rf, committed)
	}
	if act.Total(power.UnitIntReg) != rf {
		t.Error("solo thread: total and per-thread counters must match")
	}
	if act.Thread(0, power.UnitICache) == 0 || act.Thread(0, power.UnitDecode) == 0 {
		t.Error("front-end units should have activity")
	}
	if act.Thread(0, power.UnitFPAdd) != 0 {
		t.Error("integer-only program should not touch the FP adder")
	}
}

func TestZeroRegisterStaysZero(t *testing.T) {
	prog, err := isa.Assemble("zero", `
	movi $1, 7
l:	addl $31, $1, $1
	addl $2, $31, 0
	br l
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(10_000)
	if got := c.IntRegValue(0, isa.ZeroReg); got != 0 {
		t.Errorf("$31 = %d, want 0", got)
	}
	if got := c.IntRegValue(0, 2); got != 0 {
		t.Errorf("$2 = %d, want 0 (reads of $31)", got)
	}
}

// TestStructuralInvariants drives random programs and checks occupancy
// bounds every cycle.
func TestStructuralInvariants(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(11))
	prog := randomTimingProgram(rng)
	prog2 := randomTimingProgram(rng)
	c := newCore(t, cfg, prog, prog2)
	for i := 0; i < 30_000; i++ {
		c.Step()
		if c.RUUUsed() < 0 || c.RUUUsed() > cfg.Pipeline.RUUSize {
			t.Fatalf("cycle %d: RUU occupancy %d out of [0,%d]", i, c.RUUUsed(), cfg.Pipeline.RUUSize)
		}
		if c.LSQUsed() < 0 || c.LSQUsed() > cfg.Pipeline.LSQSize {
			t.Fatalf("cycle %d: LSQ occupancy %d out of [0,%d]", i, c.LSQUsed(), cfg.Pipeline.LSQSize)
		}
		for tid := 0; tid < 2; tid++ {
			if f := c.InFlight(tid); f < 0 || f > cfg.Pipeline.RUUSize+64 {
				t.Fatalf("cycle %d: thread %d in-flight %d out of range", i, tid, f)
			}
		}
	}
	if c.Stats(0).Committed == 0 || c.Stats(1).Committed == 0 {
		t.Fatal("random programs should make progress")
	}
}

// randomTimingProgram emits a looping random mix exercising loads,
// stores, branches, FP, and long-latency ops.
func randomTimingProgram(rng *rand.Rand) *isa.Program {
	b := isa.NewBuilder("rand")
	b.MovI(1, 0x1000)
	b.MovI(2, 1)
	b.MovI(9, int64(rng.Uint32())|1)
	b.Label("top")
	n := 20 + rng.Intn(60)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0, 1, 2:
			b.ALUImm(isa.OpAdd, uint8(10+rng.Intn(6)), uint8(10+rng.Intn(6)), int64(rng.Intn(100)))
		case 3:
			b.Load(3, 1, int64(rng.Intn(64))*8)
		case 4:
			b.Store(2, 1, int64(rng.Intn(64))*8)
		case 5:
			b.FP(isa.OpFAdd, 0, 1, 2)
		case 6:
			b.ALU(isa.OpMul, 4, 2, 2)
		case 7:
			label := "s" + string(rune('a'+i%26)) + string(rune('a'+i/26))
			b.ALUImm(isa.OpShl, 10, 9, 13)
			b.ALU(isa.OpXor, 9, 9, 10)
			b.ALUImm(isa.OpAnd, 10, 9, 1)
			b.Bnez(10, label)
			b.Nop()
			b.Label(label)
		}
	}
	b.Br("top")
	return b.MustBuild()
}

// TestQuickFunctionalEquivalence property: the pipelined execution of a
// random (branch-free dataflow) program leaves the same architectural
// result as a simple sequential interpretation.
func TestQuickFunctionalEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := isa.NewBuilder("eq")
		regs := [8]int64{}
		for i := range regs {
			v := rng.Int63n(1 << 20)
			regs[i] = v
			b.MovI(uint8(16+i), v)
		}
		n := 20 + rng.Intn(40)
		type trace struct {
			op        isa.Op
			d, s1, s2 int
			imm       int64
			useImm    bool
		}
		var tr []trace
		for i := 0; i < n; i++ {
			o := []isa.Op{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMul}[rng.Intn(6)]
			d, s1, s2 := rng.Intn(8), rng.Intn(8), rng.Intn(8)
			useImm := rng.Intn(2) == 0
			imm := rng.Int63n(1 << 16)
			tr = append(tr, trace{o, d, s1, s2, imm, useImm})
			if useImm {
				b.ALUImm(o, uint8(16+d), uint8(16+s1), imm)
			} else {
				b.ALU(o, uint8(16+d), uint8(16+s1), uint8(16+s2))
			}
		}
		b.Label("halt")
		prog := b.Br("halt").MustBuild()

		// Reference interpretation.
		for _, x := range tr {
			a := regs[x.s1]
			bv := x.imm
			if !x.useImm {
				bv = regs[x.s2]
			}
			var v int64
			switch x.op {
			case isa.OpAdd:
				v = a + bv
			case isa.OpSub:
				v = a - bv
			case isa.OpAnd:
				v = a & bv
			case isa.OpOr:
				v = a | bv
			case isa.OpXor:
				v = a ^ bv
			case isa.OpMul:
				v = a * bv
			}
			regs[x.d] = v
		}

		cfg := testConfig()
		c := newCore(t, cfg, prog)
		c.Run(2000)
		for i, want := range regs {
			if got := c.IntRegValue(0, 16+i); got != want {
				t.Fatalf("seed %d: $%d = %d, want %d", seed, 16+i, got, want)
			}
		}
	}
}

func TestNewErrors(t *testing.T) {
	cfg := testConfig()
	if _, err := New(&cfg, nil); err == nil {
		t.Error("no programs should fail")
	}
	if _, err := New(&cfg, []*isa.Program{loopOfAdds(4), loopOfAdds(4), loopOfAdds(4)}); err == nil {
		t.Error("more programs than contexts should fail")
	}
	bad := cfg
	bad.Pipeline.IssueWidth = 0
	if _, err := New(&bad, []*isa.Program{loopOfAdds(4)}); err == nil {
		t.Error("invalid config should fail")
	}
}

// quickCheckUnused keeps testing/quick imported for this file's
// property-style tests that use explicit seed loops.
var _ = quick.Check

func TestRoundRobinFetchPolicy(t *testing.T) {
	cfg := testConfig()
	cfg.Pipeline.FetchPolicy = "rr"
	// A high-ILP thread paired with a serial thread: under ICOUNT the
	// high-ILP thread wins most slots; round-robin keeps slot shares
	// closer.
	mk := func(cfg config.Config) (float64, float64) {
		c := newCore(t, cfg, loopOfAdds(48), serialChain(48))
		c.Run(100_000)
		return float64(c.Stats(0).Fetched), float64(c.Stats(1).Fetched)
	}
	rrHigh, rrLow := mk(cfg)
	cfg.Pipeline.FetchPolicy = "icount"
	icHigh, icLow := mk(cfg)
	if rrLow <= 0 || icLow <= 0 {
		t.Fatal("both threads should fetch")
	}
	rrRatio := rrHigh / rrLow
	icRatio := icHigh / icLow
	if rrRatio >= icRatio {
		t.Errorf("round-robin should even out fetch shares: rr %.2f vs icount %.2f", rrRatio, icRatio)
	}
	bad := testConfig()
	bad.Pipeline.FetchPolicy = "lottery"
	if _, err := New(&bad, []*isa.Program{loopOfAdds(4)}); err == nil {
		t.Error("unknown fetch policy should fail")
	}
}

func TestKernelBehaviours(t *testing.T) {
	// The kernels' intended resource signatures show up in the pipeline.
	run := func(name string) (ThreadStats, *Core) {
		prog, err := workload.Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		c := newCore(t, testConfig(), prog)
		c.Run(150_000)
		return c.Stats(0), c
	}
	stream, sc := run("stream")
	chase, cc := run("pointerchase")
	if stream.Committed <= chase.Committed {
		t.Errorf("stream (%d) should outrun pointerchase (%d)", stream.Committed, chase.Committed)
	}
	if sc.Hierarchy().L2.Stats.Misses == 0 || cc.Hierarchy().L2.Stats.Misses == 0 {
		t.Error("both memory kernels should miss in the L2")
	}
	fp, fc := run("fpblast")
	if fc.Activity().Thread(0, power.UnitFPAdd) == 0 {
		t.Error("fpblast should exercise the FP adder")
	}
	if rate := float64(fc.Activity().Thread(0, power.UnitIntReg)) / 150_000; rate > 1 {
		t.Errorf("fpblast integer RF rate %.2f should be tiny", rate)
	}
	_ = fp
	storm, _ := run("branchstorm")
	if storm.Mispredicts == 0 {
		t.Error("branchstorm should mispredict")
	}
	stores, stc := run("stores")
	if stc.Hierarchy().L2.Stats.Writebacks == 0 {
		t.Error("store kernel should cause dirty L2 writebacks")
	}
	_ = stores
}

func TestFPFunctionalSemantics(t *testing.T) {
	prog, err := isa.Assemble("fp", `
	movi $1, 0x3000
	movi $2, 4
	stq  $2, 0($1)
	ldt  $f1, 0($1)   # f1 = bits(4) as float (tiny denormal)
	addt $f2, $f1, $f1
	mult $f3, $f2, $f2
	stt  $f3, 8($1)
halt:	br halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(2000)
	// f1 = float64frombits(4); f2 = 2*f1; f3 = f2*f2 = 0 (underflow).
	if got := c.FPRegValue(0, 2); got <= 0 {
		t.Errorf("f2 = %v, want positive denormal", got)
	}
	if got := c.MemWord(0, 0x3008); got != 0 {
		t.Errorf("stored f3 bits = %d, want 0 (underflow to zero)", got)
	}
}

func TestDivisionByZeroDefined(t *testing.T) {
	prog, err := isa.Assemble("div", `
	movi $1, 100
	movi $2, 0
	divl $3, $1, $2
	movi $4, 7
	divl $5, $1, $4
halt:	br halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(2000)
	if got := c.IntRegValue(0, 3); got != 0 {
		t.Errorf("div by zero = %d, want 0", got)
	}
	if got := c.IntRegValue(0, 5); got != 14 {
		t.Errorf("100/7 = %d, want 14", got)
	}
}

func TestShiftAmountMasked(t *testing.T) {
	prog, err := isa.Assemble("shift", `
	movi $1, 1
	movi $2, 65
	sll  $3, $1, $2   # shift of 65 masks to 1
	srl  $4, $3, 1
halt:	br halt
`)
	if err != nil {
		t.Fatal(err)
	}
	c := newCore(t, testConfig(), prog)
	c.Run(1000)
	if got := c.IntRegValue(0, 3); got != 2 {
		t.Errorf("1<<65 = %d, want 2 (masked)", got)
	}
	if got := c.IntRegValue(0, 4); got != 1 {
		t.Errorf("srl = %d", got)
	}
}

func TestFourContextSMT(t *testing.T) {
	cfg := testConfig()
	cfg.Pipeline.Contexts = 4
	progs := []*isa.Program{loopOfAdds(8), serialChain(8), loopOfAdds(8), serialChain(8)}
	c, err := New(&cfg, progs)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(50_000)
	for tid := 0; tid < 4; tid++ {
		if c.Stats(tid).Committed == 0 {
			t.Errorf("thread %d made no progress", tid)
		}
	}
	// Fewer programs than contexts is allowed; idle contexts stay idle.
	c2, err := New(&cfg, progs[:2])
	if err != nil {
		t.Fatal(err)
	}
	c2.Run(10_000)
	if c2.Stats(3).Fetched != 0 {
		t.Error("idle context fetched")
	}
}
