package cpu

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// TestReadyQueueAgeOrder drives readyQueue with adversarial push
// sequences — sorted runs, reversed runs, duplicates, and pushes
// interleaved with pops so insertions land in a partially-drained
// buffer — and checks every pop against a reference model: pops must
// come out in nondecreasing seq order, FIFO among equal seqs.
func TestReadyQueueAgeOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var q readyQueue
		var model []readyRef // kept sorted: the expected pop order
		serial := int32(0)

		push := func(seq uint64) {
			r := readyRef{id: serial, seq: seq}
			serial++
			q.push(r)
			// First slot whose seq exceeds r.seq: equal seqs stay FIFO.
			i := sort.Search(len(model), func(i int) bool { return model[i].seq > r.seq })
			model = append(model, readyRef{})
			copy(model[i+1:], model[i:])
			model[i] = r
		}
		popCheck := func() {
			want := model[0]
			model = model[1:]
			if q.empty() {
				t.Fatalf("trial %d: queue empty, model has %d", trial, len(model)+1)
			}
			if got := q.peek(); got != want {
				t.Fatalf("trial %d: peek = {id %d seq %d}, want {id %d seq %d}",
					trial, got.id, got.seq, want.id, want.seq)
			}
			if got := q.pop(); got != want {
				t.Fatalf("trial %d: pop = {id %d seq %d}, want {id %d seq %d}",
					trial, got.id, got.seq, want.id, want.seq)
			}
		}

		for op, nops := 0, 40+rng.Intn(400); op < nops; op++ {
			if len(model) > 0 && rng.Intn(3) == 0 {
				popCheck()
				continue
			}
			switch rng.Intn(4) {
			case 0: // near-monotone, the common dispatch pattern
				push(uint64(serial) + uint64(rng.Intn(3)))
			case 1: // old wakeup arriving behind younger entries
				push(uint64(rng.Intn(10)))
			case 2: // duplicate-heavy band to stress FIFO tie-breaks
				push(uint64(rng.Intn(4)) * 100)
			default:
				push(rng.Uint64() >> 1)
			}
		}
		for len(model) > 0 {
			popCheck()
		}
		if !q.empty() {
			t.Fatalf("trial %d: model drained but queue has entries", trial)
		}
	}
}

// TestSteadyStateZeroAllocs pins the tentpole claim that the warmed-up
// core allocates nothing per cycle: a two-thread core running the
// squash-heavy kernels (mispredicts, L2 misses, stores) must show zero
// allocations across whole samples once its scratch buffers have grown
// to their high-water marks.
func TestSteadyStateZeroAllocs(t *testing.T) {
	a, err := workload.Kernel("branchstorm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Kernel("pointerchase")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	c := newCore(t, cfg, a, b)
	c.Run(50_000) // warm caches, predictors, and scratch capacities

	if avg := testing.AllocsPerRun(10, func() { c.Run(1_000) }); avg != 0 {
		t.Errorf("warmed core allocates %.1f times per 1000 cycles, want 0", avg)
	}

	// The throttled (DVS-style) and globally-stalled paths must stay
	// allocation-free too: fast-forward may not build anything per skip.
	c.SetThrottle(9, 10)
	if avg := testing.AllocsPerRun(10, func() { c.Run(1_000) }); avg != 0 {
		t.Errorf("throttled core allocates %.1f times per 1000 cycles, want 0", avg)
	}
	c.SetThrottle(0, 0)
	c.SetGlobalStall(true)
	if avg := testing.AllocsPerRun(10, func() { c.Run(1_000) }); avg != 0 {
		t.Errorf("stalled core allocates %.1f times per 1000 cycles, want 0", avg)
	}
	c.SetGlobalStall(false)
}

// TestDecodeProgramMatchesInstructions cross-checks the static decode
// cache against the isa metadata it memoizes, for every kernel.
func TestDecodeProgramMatchesInstructions(t *testing.T) {
	for _, name := range workload.KernelNames() {
		prog, err := workload.Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		dec := decodeProgram(prog)
		if len(dec) != prog.Len() {
			t.Fatalf("%s: %d decode entries for %d instructions", name, len(dec), prog.Len())
		}
		for pc := range dec {
			in := &prog.Insts[pc]
			d := &dec[pc]
			if int(d.fu) != fuIndex(in.Op.FU()) {
				t.Errorf("%s[%d]: fu %d, want %d", name, pc, d.fu, fuIndex(in.Op.FU()))
			}
			if d.latency != int64(in.Op.Latency()) {
				t.Errorf("%s[%d]: latency %d, want %d", name, pc, d.latency, in.Op.Latency())
			}
			if int(d.intReads) != in.IntRegReads() {
				t.Errorf("%s[%d]: intReads %d, want %d", name, pc, d.intReads, in.IntRegReads())
			}
			if int(d.fpReads) != in.FPRegReads() {
				t.Errorf("%s[%d]: fpReads %d, want %d", name, pc, d.fpReads, in.FPRegReads())
			}
			if d.isBranch != in.Op.IsBranch() {
				t.Errorf("%s[%d]: isBranch %v, want %v", name, pc, d.isBranch, in.Op.IsBranch())
			}
		}
	}
}

// TestFastForwardMatchesStepping runs the same workloads on a stepping
// core and a fast-forwarding core through the regimes the skip logic
// reasons about — free-running, globally stalled, and clock-gated —
// and requires identical cycle counts, stats, and architectural state.
func TestFastForwardMatchesStepping(t *testing.T) {
	build := func() (*Core, *Core) {
		a, err := workload.Kernel("branchstorm")
		if err != nil {
			t.Fatal(err)
		}
		b, err := workload.Kernel("stream")
		if err != nil {
			t.Fatal(err)
		}
		cfg := testConfig()
		ref := newCore(t, cfg, a, b)
		ref.SetFastForward(false)
		a2, _ := workload.Kernel("branchstorm")
		b2, _ := workload.Kernel("stream")
		ff := newCore(t, cfg, a2, b2)
		return ref, ff
	}
	check := func(ref, ff *Core, phase string) {
		t.Helper()
		if ref.Cycle() != ff.Cycle() {
			t.Fatalf("%s: cycle %d vs %d", phase, ff.Cycle(), ref.Cycle())
		}
		for tid := 0; tid < ref.Threads(); tid++ {
			if ref.Stats(tid) != ff.Stats(tid) {
				t.Errorf("%s: thread %d stats %+v vs %+v", phase, tid, ff.Stats(tid), ref.Stats(tid))
			}
			for r := 1; r < isa.NumIntRegs; r++ {
				if ref.IntRegValue(tid, r) != ff.IntRegValue(tid, r) {
					t.Errorf("%s: thread %d $%d = %d vs %d", phase, tid, r,
						ff.IntRegValue(tid, r), ref.IntRegValue(tid, r))
				}
			}
		}
	}
	ref, ff := build()
	apply := func(f func(c *Core)) { f(ref); f(ff) }

	apply(func(c *Core) { c.Run(10_000) })
	check(ref, ff, "free-running")

	// Stop-and-go: stall with work in flight, thaw, repeat with odd
	// sample lengths so skip targets land on both kinds of boundary.
	for i := 0; i < 5; i++ {
		apply(func(c *Core) { c.SetGlobalStall(true); c.Run(911) })
		apply(func(c *Core) { c.SetGlobalStall(false); c.Run(89) })
	}
	check(ref, ff, "stop-and-go")

	// DVS-style interleaved gating, plus a sedated thread so skipped
	// cycles must credit SedatedCycles identically.
	apply(func(c *Core) { c.SetFetchEnabled(1, false); c.SetThrottle(7, 10); c.Run(10_000) })
	check(ref, ff, "throttled+sedated")

	apply(func(c *Core) { c.SetThrottle(0, 0); c.SetFetchEnabled(1, true); c.Run(10_000) })
	check(ref, ff, "recovered")
}
