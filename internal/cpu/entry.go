package cpu

import "github.com/heatstroke-sim/heatstroke/internal/isa"

// eState is an entry's pipeline state.
type eState uint8

const (
	esFree eState = iota
	// esFetched: in a thread's fetch queue, architecturally executed,
	// not yet renamed into the RUU.
	esFetched
	// esDispatched: in the RUU waiting for operands / a functional unit.
	esDispatched
	// esIssued: executing.
	esIssued
	// esDone: result written back, waiting for in-order commit.
	esDone
)

// ref identifies an entry at a point in time; gen guards against the
// entry having been freed and recycled.
type ref struct {
	id  int32
	gen uint32
}

var noRef = ref{id: -1}

func (r ref) valid() bool { return r.id >= 0 }

// entry is one dynamic instruction, from fetch to commit. It carries
// the undo record that makes thread squashes exact.
type entry struct {
	id    int32
	gen   uint32
	state eState

	tid int32
	seq uint64
	pc  int32
	// inst points at the static instruction (programs are immutable
	// once loaded) and dec at its decode-cache row, owned by the
	// fetching thread; the timing stages read port counts, latency, and
	// FU routing from dec instead of re-deriving them per dynamic
	// instruction.
	inst *isa.Instruction
	dec  *decInfo

	// prev/next link the owning thread's dispatch-order RUU list.
	prev, next int32

	// prod are the timing producers: src1, src2, and (for forwarded
	// loads) the store supplying the value.
	prod [3]ref
	// waitCount is how many producers have not yet written back; the
	// entry is issue-ready at zero.
	waitCount int8
	// consHead is the head of this entry's consumer list: a packed
	// value consumerID*4+slot, or -1. Each consumer chains onward via
	// nextCons[slot].
	consHead int32
	nextCons [3]int32

	// Memory behaviour.
	addr    uint64 // word-aligned effective address
	isLoad  bool
	isStore bool
	inLSQ   bool
	l2miss  bool

	// Branch behaviour.
	isCond      bool
	brTaken     bool // actual outcome
	brPredTaken bool
	brMispred   bool
	brPCAddr    uint64

	// Undo record: architectural effects applied at fetch.
	dstClass isa.RegClass
	dstReg   uint8
	oldVal   int64 // previous register value (FP stored as bits)
	memOld   int64 // previous memory word (stores)
	// prevProd is the rename-table mapping this entry displaced at
	// dispatch (restored on squash).
	prevProd ref
}

// alloc takes an entry from the free pool; it returns nil if exhausted.
//
// Only state that survives a previous incarnation is reset here (a
// whole-struct reset was 13% of simulation time). The other fields are
// written before they are read: tid/pc/inst/dec/state by fetch, the
// undo record and branch/memory metadata by exec (guarded by the flags
// cleared below), seq/prevProd by rename (prevProd read only under the
// dstClass exec sets), and nextCons[slot] by link before the entry can
// appear in a consumer chain. prev/next and consHead are invariantly
// -1 at release: listRemove clears the former for every listed entry,
// and an entry's consumers always unlink or drain before it frees
// (wake empties the chain; a squash walks newest-first, unlinking each
// consumer before reaching its producer).
func (c *Core) alloc() *entry {
	if len(c.free) == 0 {
		return nil
	}
	id := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	e := &c.entries[id]
	e.prod[0], e.prod[1], e.prod[2] = noRef, noRef, noRef
	e.waitCount = 0
	e.isLoad, e.isStore, e.inLSQ, e.l2miss = false, false, false, false
	e.isCond, e.brTaken, e.brPredTaken, e.brMispred = false, false, false, false
	return e
}

// release invalidates an entry and returns it to the pool.
func (c *Core) release(e *entry) {
	e.gen++
	e.state = esFree
	c.free = append(c.free, e.id)
}

// lookup resolves a ref, or nil if stale.
func (c *Core) lookup(r ref) *entry {
	if !r.valid() {
		return nil
	}
	e := &c.entries[r.id]
	if e.gen != r.gen || e.state == esFree {
		return nil
	}
	return e
}

// opReady reports whether a producer reference no longer blocks issue.
func (c *Core) opReady(r ref) bool {
	e := c.lookup(r)
	return e == nil || e.state == esDone
}

// link registers e as a consumer of producer p for operand slot, and
// counts the outstanding producer.
func (c *Core) link(p, e *entry, slot int) {
	e.waitCount++
	e.nextCons[slot] = p.consHead
	p.consHead = e.id*4 + int32(slot)
}

// unlink removes e (slot) from producer p's consumer list; used when e
// is squashed while p is still pending.
func (c *Core) unlink(p, e *entry, slot int) {
	want := e.id*4 + int32(slot)
	if p.consHead == want {
		p.consHead = e.nextCons[slot]
		return
	}
	for cur := p.consHead; cur >= 0; {
		holder := &c.entries[cur/4]
		hslot := int(cur % 4)
		next := holder.nextCons[hslot]
		if next == want {
			holder.nextCons[hslot] = e.nextCons[slot]
			return
		}
		cur = next
	}
}

// wake walks producer p's consumer list after writeback, decrementing
// wait counts and queueing newly-ready entries for issue.
func (c *Core) wake(p *entry) {
	for cur := p.consHead; cur >= 0; {
		e := &c.entries[cur/4]
		slot := int(cur % 4)
		next := e.nextCons[slot]
		// The consumer is guaranteed live: squashed consumers are
		// unlinked before release.
		if e.waitCount--; e.waitCount == 0 && e.state == esDispatched {
			c.readyPush(e)
		}
		cur = next
	}
	p.consHead = -1
}

// listAppend adds e at the tail of its thread's dispatch-order list.
func (c *Core) listAppend(t *thread, e *entry) {
	e.prev = t.listTail
	e.next = -1
	if t.listTail >= 0 {
		c.entries[t.listTail].next = e.id
	} else {
		t.listHead = e.id
	}
	t.listTail = e.id
}

// listRemove unlinks e from its thread's list.
func (c *Core) listRemove(t *thread, e *entry) {
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		t.listHead = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		t.listTail = e.prev
	}
	e.prev, e.next = -1, -1
}
