package cpu

import (
	"github.com/heatstroke-sim/heatstroke/internal/bpred"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// fetch implements ICOUNT.n.w: up to FetchThreads threads are selected
// each cycle, fewest-instructions-in-flight first, and share FetchWidth
// fetch slots. A thread's fetch breaks on a taken branch, an icache
// miss, a full fetch queue, or a fetch block (mispredict / L2 squash /
// sedation). Candidate selection runs on a reusable Core scratch slice
// with an in-place stable insertion sort (contexts are few), so the
// hot loop allocates nothing.
func (c *Core) fetch() {
	cands := c.fetchCands[:0]
	for _, t := range c.threads {
		if t.prog == nil || !t.fetchEnabled {
			continue
		}
		if t.blocker.valid() && c.lookup(t.blocker) != nil {
			continue
		}
		t.blocker = noRef
		if c.cycle < t.fetchResumeAt || c.cycle < t.icacheStallEnd {
			continue
		}
		if t.ifqLen >= ifqDepth {
			continue
		}
		cands = append(cands, fetchCand{t: t, inFlight: t.inFlight})
	}
	c.fetchCands = cands
	n := len(cands)
	if n == 0 {
		return
	}
	rot := 0
	if c.cfg.Pipeline.FetchPolicy == "rr" {
		// Round-robin ablation: rotate priority each cycle instead of
		// favouring the thread with the fewest instructions in flight.
		rot = int(c.cycle) % n
	} else {
		// Stable insertion sort: equal ICOUNTs keep hardware-context
		// order, exactly as sort.SliceStable did.
		for i := 1; i < n; i++ {
			for j := i; j > 0 && cands[j-1].inFlight > cands[j].inFlight; j-- {
				cands[j-1], cands[j] = cands[j], cands[j-1]
			}
		}
	}
	picks := n
	if picks > c.cfg.Pipeline.FetchThreads {
		picks = c.cfg.Pipeline.FetchThreads
	}
	budget := c.cfg.Pipeline.FetchWidth
	for k := 0; k < picks && budget > 0; k++ {
		budget = c.fetchThread(cands[(rot+k)%n].t, budget)
	}
}

// fetchThread fetches up to budget instructions from t; it returns the
// remaining budget.
func (c *Core) fetchThread(t *thread, budget int) int {
	for budget > 0 && t.ifqLen < ifqDepth {
		iaddr := t.instAddr(t.pc)
		line := int64(iaddr >> 6)
		if line != t.curLine {
			res := c.hier.InstAt(iaddr, c.cycle)
			c.addAct(power.UnitICache, int(t.id), 1)
			if res.L1Miss {
				c.addAct(power.UnitL2, int(t.id), 1)
			}
			t.curLine = line
			if res.L1Miss {
				t.icacheStallEnd = c.cycle + int64(res.Latency)
				return budget
			}
		}
		e := c.alloc()
		if e == nil {
			return budget
		}
		e.state = esFetched
		e.tid = t.id
		e.pc = t.pc
		e.inst = &t.prog.Insts[t.pc]
		e.dec = &t.dec[t.pc]
		nextPC := t.exec(e)

		t.ifqPush(e.id)
		t.inFlight++
		c.stats[t.id].Fetched++
		budget--

		if e.dec.isBranch {
			c.stats[t.id].Branches++
			if e.isCond {
				e.brPCAddr = iaddr
				c.addAct(power.UnitBpred, int(t.id), 1)
				e.brPredTaken = bool(t.pred.Predict(iaddr))
				if e.brPredTaken != e.brTaken {
					e.brMispred = true
					c.stats[t.id].Mispredicts++
					t.blocker = ref{id: e.id, gen: e.gen}
					t.pc = nextPC
					t.curLine = -1
					return budget
				}
			}
			if e.brTaken {
				// Correctly-predicted taken branch: redirect and end
				// this thread's fetch group.
				t.pc = nextPC
				t.curLine = -1
				return budget
			}
		}
		t.pc = nextPC
	}
	return budget
}

// dispatch renames instructions from the fetch queues into the RUU,
// DecodeWidth per cycle, round-robin across threads.
func (c *Core) dispatch() {
	budget := c.cfg.Pipeline.DecodeWidth
	n := len(c.threads)
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(c.dispatchRR+i)%n]
		if t.prog == nil {
			continue
		}
		for budget > 0 && t.ifqLen > 0 {
			if c.ruuUsed >= c.cfg.Pipeline.RUUSize {
				break
			}
			e := &c.entries[t.ifqFront()]
			if (e.isLoad || e.isStore) && c.lsqUsed >= c.cfg.Pipeline.LSQSize {
				break
			}
			t.ifqPop()
			c.rename(t, e)
			budget--
		}
	}
	c.dispatchRR++
}

// rename installs e into the RUU: source operands resolve to their
// producing entries, loads pick up store-forwarding dependences, and
// the destination register's rename-table slot is displaced (recorded
// for squash undo).
func (c *Core) rename(t *thread, e *entry) {
	in := e.inst
	d := e.dec
	if d.src1Class == isa.IntClass {
		e.prod[0] = t.renInt[in.Src1]
	} else if d.src1Class == isa.FPClass {
		e.prod[0] = t.renFP[in.Src1]
	}
	if d.src2Class == isa.IntClass {
		e.prod[1] = t.renInt[in.Src2]
	} else if d.src2Class == isa.FPClass {
		e.prod[1] = t.renFP[in.Src2]
	}

	tid := int(t.id)
	c.addAct(power.UnitDecode, tid, 1)
	c.addAct(power.UnitIntQ, tid, 1)

	if e.isLoad || e.isStore {
		c.lsqUsed++
		e.inLSQ = true
		c.addAct(power.UnitLSQ, tid, 1)
	}
	if e.isLoad {
		// Store-to-load forwarding: youngest older store to the same
		// word becomes a producer; the load then skips the cache.
		for i := len(t.stores) - 1; i >= 0; i-- {
			if s := c.lookup(t.stores[i]); s != nil && s.addr == e.addr {
				e.prod[2] = t.stores[i]
				break
			}
		}
	}
	if e.isStore {
		t.stores = append(t.stores, ref{id: e.id, gen: e.gen})
	}

	// Displace the rename table for the destination.
	if e.dstClass == isa.IntClass {
		e.prevProd = t.renInt[e.dstReg]
		t.renInt[e.dstReg] = ref{id: e.id, gen: e.gen}
	} else if e.dstClass == isa.FPClass {
		e.prevProd = t.renFP[e.dstReg]
		t.renFP[e.dstReg] = ref{id: e.id, gen: e.gen}
	}

	c.seq++
	e.seq = c.seq
	e.state = esDispatched
	c.listAppend(t, e)
	c.ruuUsed++

	// Register with pending producers (wakeup lists); an entry whose
	// producers are all complete is ready immediately.
	for slot := 0; slot < 3; slot++ {
		if p := c.lookup(e.prod[slot]); p != nil && p.state != esDone {
			c.link(p, e, slot)
		}
	}
	if e.waitCount == 0 {
		c.readyPush(e)
	}
}

// seqNone marks an empty (or unusable) ready-queue head; real sequence
// numbers start at 1.
const seqNone = ^uint64(0)

// liveHead returns the sequence number of queue f's oldest live entry,
// dropping squashed heads lazily (exactly as the old per-budget scan
// did), or seqNone if the queue has nothing issuable.
func (c *Core) liveHead(f int) uint64 {
	if c.fuLimit[f] <= 0 {
		return seqNone
	}
	q := &c.readyQ[f]
	for !q.empty() {
		top := q.peek()
		e := &c.entries[top.id]
		if e.gen != top.gen || e.state != esDispatched {
			q.pop()
			continue
		}
		return top.seq
	}
	return seqNone
}

// issue picks the globally oldest ready instruction among the
// functional-unit classes that still have a free unit, up to
// IssueWidth per cycle. Entries blocked on a busy unit class are never
// scanned. The live head of each queue is cached across the budget
// loop — only the popped class changes, unless an issued load squashed
// its thread, which invalidates every cached head.
func (c *Core) issue() {
	var heads [fuCount]uint64
	any := false
	for f := 0; f < fuCount; f++ {
		c.fuUsed[f] = 0
		heads[f] = c.liveHead(f)
		any = any || heads[f] != seqNone
	}
	if !any {
		return
	}
	for budget := c.cfg.Pipeline.IssueWidth; budget > 0; budget-- {
		best := -1
		bestSeq := seqNone
		for f := 0; f < fuCount; f++ {
			if c.fuUsed[f] >= c.fuLimit[f] {
				continue
			}
			if heads[f] < bestSeq {
				best, bestSeq = f, heads[f]
			}
		}
		if best < 0 {
			return
		}
		r := c.readyQ[best].pop()
		c.fuUsed[best]++
		before := c.squashes
		c.issueOne(&c.entries[r.id])
		if c.squashes != before {
			for f := 0; f < fuCount; f++ {
				heads[f] = c.liveHead(f)
			}
		} else {
			heads[best] = c.liveHead(best)
		}
	}
}

func (c *Core) issueOne(e *entry) {
	tid := int(e.tid)
	d := e.dec
	e.state = esIssued
	c.addAct(power.UnitIntQ, tid, 1) // issue-queue read-out

	// Register-file read ports.
	if d.intReads > 0 {
		c.addAct(power.UnitIntReg, tid, uint64(d.intReads))
	}
	if d.fpReads > 0 {
		c.addAct(power.UnitFPReg, tid, uint64(d.fpReads))
	}

	lat := d.latency
	switch d.fu {
	case fuIntALU, fuIntMulDiv:
		c.addAct(power.UnitIntExec, tid, 1)
	case fuFPAdd:
		c.addAct(power.UnitFPAdd, tid, 1)
	case fuFPMulDiv:
		c.addAct(power.UnitFPMul, tid, 1)
	case fuMem:
		c.addAct(power.UnitLSQ, tid, 1)
		if e.isLoad {
			if c.lookup(e.prod[2]) != nil {
				// Forwarded from an in-flight store: no cache access.
				lat = 2
			} else {
				res := c.hier.DataAt(c.threads[e.tid].dataAddr(e.addr), false, c.cycle)
				c.addAct(power.UnitDCache, tid, 1)
				if res.L1Miss {
					c.addAct(power.UnitL2, tid, 1)
				}
				lat = int64(res.Latency)
				if res.L2Miss {
					e.l2miss = true
					if c.cfg.Pipeline.SquashOnL2Miss {
						c.squashAfter(e)
					}
				}
			}
		} else {
			// Stores probe/write the cache at issue.
			res := c.hier.DataAt(c.threads[e.tid].dataAddr(e.addr), true, c.cycle)
			c.addAct(power.UnitDCache, tid, 1)
			if res.L1Miss {
				c.addAct(power.UnitL2, tid, 1)
			}
			lat = 1
		}
	}
	c.schedule(c.cycle+lat, e)
}

// writeback retires completed executions: wakes consumers (implicitly,
// via opReady), redirects fetch for resolved mispredicts and completed
// squash-blocking loads, and trains the branch predictor.
func (c *Core) writeback() {
	for len(c.events) > 0 && c.events[0].at <= c.cycle {
		ev := c.events[0]
		// Pop.
		n := len(c.events) - 1
		c.events[0] = c.events[n]
		c.events = c.events[:n]
		if n > 0 {
			c.siftDown(0)
		}
		e := c.lookup(ref{id: ev.id, gen: ev.gen})
		if e == nil || e.state != esIssued {
			continue
		}
		e.state = esDone
		c.wake(e)
		tid := int(e.tid)
		t := c.threads[e.tid]

		// Register-file write ports.
		if e.dec.intWrite {
			c.addAct(power.UnitIntReg, tid, 1)
		}
		if e.dec.fpWrite {
			c.addAct(power.UnitFPReg, tid, 1)
		}

		if e.isCond {
			c.addAct(power.UnitBpred, tid, 1)
			t.pred.Update(e.brPCAddr, bpred.Outcome(e.brTaken))
		}

		// Unblock fetch if this entry was the thread's blocker.
		if t.blocker.valid() && t.blocker.id == e.id && t.blocker.gen == e.gen {
			t.blocker = noRef
			resume := c.cycle + 1
			if e.brMispred {
				resume = c.cycle + int64(c.cfg.Bpred.MispredictPenalty)
			}
			if resume > t.fetchResumeAt {
				t.fetchResumeAt = resume
			}
		}
	}
}

// siftDown restores the event heap property from index i.
func (c *Core) siftDown(i int) {
	n := len(c.events)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.events[l].at < c.events[small].at {
			small = l
		}
		if r < n && c.events[r].at < c.events[small].at {
			small = r
		}
		if small == i {
			return
		}
		c.events[i], c.events[small] = c.events[small], c.events[i]
		i = small
	}
}

// commit retires done instructions in per-thread program order, up to
// CommitWidth per cycle across all threads (round-robin between
// threads for fairness).
func (c *Core) commit() {
	budget := c.cfg.Pipeline.CommitWidth
	n := len(c.threads)
	start := int(c.cycle) % n
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(start+i)%n]
		for budget > 0 && t.listHead >= 0 {
			e := &c.entries[t.listHead]
			if e.state != esDone {
				break
			}
			c.commitOne(t, e)
			budget--
		}
	}
}

func (c *Core) commitOne(t *thread, e *entry) {
	c.stats[e.tid].Committed++
	t.inFlight--
	c.ruuUsed--
	if e.inLSQ {
		c.lsqUsed--
	}
	if e.isStore {
		// Drop from the forwarding list (it is the oldest store).
		for i, r := range t.stores {
			if r.id == e.id && r.gen == e.gen {
				t.stores = append(t.stores[:i], t.stores[i+1:]...)
				break
			}
		}
	}
	// Clear the rename table if this entry is still the youngest writer.
	if e.dstClass == isa.IntClass {
		if r := t.renInt[e.dstReg]; r.id == e.id && r.gen == e.gen {
			t.renInt[e.dstReg] = noRef
		}
	} else if e.dstClass == isa.FPClass {
		if r := t.renFP[e.dstReg]; r.id == e.id && r.gen == e.gen {
			t.renFP[e.dstReg] = noRef
		}
	}
	c.listRemove(t, e)
	c.release(e)
}

// squashAfter implements the L2-miss thread squash: every instruction
// of e's thread younger than e is rolled back (fetch queue first, then
// RUU entries newest-first) and fetch blocks until e completes.
func (c *Core) squashAfter(e *entry) {
	t := c.threads[e.tid]
	c.stats[e.tid].L2Squashes++
	c.squashes++

	// Undo the fetch queue (all younger than anything dispatched).
	for i := t.ifqLen - 1; i >= 0; i-- {
		y := &c.entries[t.ifqAt(i)]
		t.undo(y)
		t.inFlight--
		c.stats[e.tid].Squashed++
		c.release(y)
	}
	t.ifqHead, t.ifqLen = 0, 0

	// Undo younger RUU entries of this thread, newest-first.
	for id := t.listTail; id >= 0; {
		y := &c.entries[id]
		id = y.prev
		if y.seq <= e.seq {
			break
		}
		// Remove y from the wakeup lists of still-pending producers so
		// recycling y cannot corrupt their chains.
		for slot := 0; slot < 3; slot++ {
			if p := c.lookup(y.prod[slot]); p != nil && p.state != esDone {
				c.unlink(p, y, slot)
			}
		}
		t.undo(y)
		// Restore the rename table mapping this entry displaced.
		if y.dstClass == isa.IntClass {
			if r := t.renInt[y.dstReg]; r.id == y.id && r.gen == y.gen {
				t.renInt[y.dstReg] = y.prevProd
			}
		} else if y.dstClass == isa.FPClass {
			if r := t.renFP[y.dstReg]; r.id == y.id && r.gen == y.gen {
				t.renFP[y.dstReg] = y.prevProd
			}
		}
		if y.isStore {
			for i := len(t.stores) - 1; i >= 0; i-- {
				if t.stores[i].id == y.id && t.stores[i].gen == y.gen {
					t.stores = append(t.stores[:i], t.stores[i+1:]...)
					break
				}
			}
		}
		t.inFlight--
		c.ruuUsed--
		if y.inLSQ {
			c.lsqUsed--
		}
		c.stats[e.tid].Squashed++
		c.listRemove(t, y)
		c.release(y)
	}

	// Resume fetching right after the load once it completes.
	t.pc = t.nextPC(e.pc)
	t.curLine = -1
	t.blocker = ref{id: e.id, gen: e.gen}
}
