package cpu

import (
	"fmt"
	"math"

	"github.com/heatstroke-sim/heatstroke/internal/bpred"
	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/mem"
)

// thread is one hardware context: architectural state (the functional
// frontier), fetch state, rename tables, and its private memory image.
type thread struct {
	id   int32
	prog *isa.Program
	// dec is the static decode cache, indexed by program counter in
	// lockstep with prog.Insts.
	dec []decInfo

	// Architectural register state, updated at fetch (functional-first).
	iregs [isa.NumIntRegs]int64
	fregs [isa.NumFPRegs]float64
	mem   *mem.Memory

	pc int32

	// Fetch state.
	fetchEnabled   bool
	fetchResumeAt  int64 // cycle fetch may resume after a redirect
	icacheStallEnd int64
	curLine        int64 // instruction cache line being fetched, -1 none
	// blocker is the entry fetch is waiting on: a mispredicted branch
	// awaiting resolution, or an L2-missing load after a thread squash.
	blocker ref

	// ifq is the fetch queue: fetched-but-not-dispatched entry ids in
	// program order, kept in a fixed ring so the steady-state pipeline
	// never reallocates it (popping a slice from the front would creep
	// through its backing array and force a fresh allocation every
	// ifqDepth dispatches).
	ifq     [ifqDepth]int32
	ifqHead int
	ifqLen  int

	// Rename tables: architectural register -> youngest producing entry.
	renInt [isa.NumIntRegs]ref
	renFP  [isa.NumFPRegs]ref

	// stores lists in-flight store entries in program order for
	// store-to-load forwarding.
	stores []ref

	// listHead/listTail bound this thread's dispatch-order RUU list.
	listHead, listTail int32

	inFlight int

	pred bpred.Predictor
	ras  *bpred.RAS
}

func newThread(id int, prog *isa.Program, cfg *config.Config) (*thread, error) {
	t := &thread{
		id:           int32(id),
		prog:         prog,
		mem:          mem.NewMemory(),
		fetchEnabled: true,
		curLine:      -1,
		listHead:     -1,
		listTail:     -1,
	}
	for i := range t.renInt {
		t.renInt[i] = noRef
	}
	for i := range t.renFP {
		t.renFP[i] = noRef
	}
	if prog != nil {
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("cpu: thread %d: %w", id, err)
		}
		t.pc = prog.Entry
		t.dec = decodeProgram(prog)
		t.stores = make([]ref, 0, cfg.Pipeline.LSQSize)
		p, err := bpred.New(cfg.Bpred.Kind, cfg.Bpred.TableBits)
		if err != nil {
			return nil, err
		}
		t.pred = p
		t.ras = bpred.NewRAS(cfg.Bpred.RASEntries)
	}
	return t, nil
}

// ifqPush appends an entry id at the tail of the fetch queue; the
// caller has already checked for space.
func (t *thread) ifqPush(id int32) {
	t.ifq[(t.ifqHead+t.ifqLen)%ifqDepth] = id
	t.ifqLen++
}

// ifqFront returns the oldest queued entry id.
func (t *thread) ifqFront() int32 { return t.ifq[t.ifqHead] }

// ifqPop removes the oldest queued entry id.
func (t *thread) ifqPop() {
	t.ifqHead = (t.ifqHead + 1) % ifqDepth
	t.ifqLen--
}

// ifqAt returns the i-th queued entry id counting from the oldest.
func (t *thread) ifqAt(i int) int32 { return t.ifq[(t.ifqHead+i)%ifqDepth] }

// Address-space layout: each context's cache-visible addresses carry
// the context id in high bits, so contexts share cache sets (and so
// conflict) but never alias each other's lines. Instruction addresses
// live in a window disjoint from data.
const (
	threadShift = 40
	instWindow  = uint64(1) << 36
)

func (t *thread) dataAddr(addr uint64) uint64 {
	return (uint64(t.id+1) << threadShift) | (addr &^ 7)
}

func (t *thread) instAddr(pc int32) uint64 {
	return (uint64(t.id+1) << threadShift) | instWindow | uint64(pc)*8
}

// nextPC returns the fall-through successor, wrapping a program that
// runs off the end back to its entry.
func (t *thread) nextPC(pc int32) int32 {
	n := pc + 1
	if int(n) >= t.prog.Len() {
		return t.prog.Entry
	}
	return n
}

// intSrc2 returns the second ALU operand (register or immediate).
func (t *thread) intSrc2(in *isa.Instruction) int64 {
	if in.UseImm {
		return in.Imm
	}
	return t.iregs[in.Src2]
}

// exec architecturally executes the instruction at t.pc into e, filling
// e's undo record, and returns the next PC. It must be called in
// program order (at fetch).
func (t *thread) exec(e *entry) int32 {
	in := e.inst
	e.dstClass = isa.NoClass
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]+t.intSrc2(in))
	case isa.OpSub:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]-t.intSrc2(in))
	case isa.OpAnd:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]&t.intSrc2(in))
	case isa.OpOr:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]|t.intSrc2(in))
	case isa.OpXor:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]^t.intSrc2(in))
	case isa.OpShl:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]<<(uint64(t.intSrc2(in))&63))
	case isa.OpShr:
		t.writeInt(e, in.Dst, int64(uint64(t.iregs[in.Src1])>>(uint64(t.intSrc2(in))&63)))
	case isa.OpCmpLT:
		t.writeInt(e, in.Dst, b2i(t.iregs[in.Src1] < t.intSrc2(in)))
	case isa.OpCmpEQ:
		t.writeInt(e, in.Dst, b2i(t.iregs[in.Src1] == t.intSrc2(in)))
	case isa.OpMovI:
		t.writeInt(e, in.Dst, in.Imm)
	case isa.OpMul:
		t.writeInt(e, in.Dst, t.iregs[in.Src1]*t.intSrc2(in))
	case isa.OpDiv:
		d := t.intSrc2(in)
		if d == 0 {
			t.writeInt(e, in.Dst, 0)
		} else {
			t.writeInt(e, in.Dst, t.iregs[in.Src1]/d)
		}
	case isa.OpLoad:
		e.addr = uint64(t.iregs[in.Src1]+in.Imm) &^ 7
		e.isLoad = true
		t.writeInt(e, in.Dst, t.mem.Read(e.addr))
	case isa.OpLoadF:
		e.addr = uint64(t.iregs[in.Src1]+in.Imm) &^ 7
		e.isLoad = true
		t.writeFP(e, in.Dst, math.Float64frombits(uint64(t.mem.Read(e.addr))))
	case isa.OpStore:
		e.addr = uint64(t.iregs[in.Src1]+in.Imm) &^ 7
		e.isStore = true
		e.memOld = t.mem.Write(e.addr, t.iregs[in.Src2])
	case isa.OpStoreF:
		e.addr = uint64(t.iregs[in.Src1]+in.Imm) &^ 7
		e.isStore = true
		e.memOld = t.mem.Write(e.addr, int64(math.Float64bits(t.fregs[in.Src2])))
	case isa.OpFAdd:
		t.writeFP(e, in.Dst, t.fregs[in.Src1]+t.fregs[in.Src2])
	case isa.OpFMul:
		t.writeFP(e, in.Dst, t.fregs[in.Src1]*t.fregs[in.Src2])
	case isa.OpFDiv:
		d := t.fregs[in.Src2]
		if d == 0 {
			t.writeFP(e, in.Dst, 0)
		} else {
			t.writeFP(e, in.Dst, t.fregs[in.Src1]/d)
		}
	case isa.OpBr, isa.OpCall:
		e.brTaken = true
		return in.Target
	case isa.OpRet:
		// No link-register semantics in this ISA: fall through.
		e.brTaken = false
	case isa.OpBeqz:
		e.isCond = true
		if t.iregs[in.Src1] == 0 {
			e.brTaken = true
			return in.Target
		}
	case isa.OpBnez:
		e.isCond = true
		if t.iregs[in.Src1] != 0 {
			e.brTaken = true
			return in.Target
		}
	}
	return t.nextPC(e.pc)
}

func (t *thread) writeInt(e *entry, dst uint8, v int64) {
	if dst == isa.ZeroReg {
		return
	}
	e.dstClass = isa.IntClass
	e.dstReg = dst
	e.oldVal = t.iregs[dst]
	t.iregs[dst] = v
}

func (t *thread) writeFP(e *entry, dst uint8, v float64) {
	e.dstClass = isa.FPClass
	e.dstReg = dst
	e.oldVal = int64(math.Float64bits(t.fregs[dst]))
	t.fregs[dst] = v
}

// undo reverses e's architectural effects. Entries must be undone
// newest-first.
func (t *thread) undo(e *entry) {
	if e.isStore {
		t.mem.Write(e.addr, e.memOld)
	}
	switch e.dstClass {
	case isa.IntClass:
		t.iregs[e.dstReg] = e.oldVal
	case isa.FPClass:
		t.fregs[e.dstReg] = math.Float64frombits(uint64(e.oldVal))
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
