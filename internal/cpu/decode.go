package cpu

import "github.com/heatstroke-sim/heatstroke/internal/isa"

// decInfo is the static decode cache: everything the timing pipeline
// needs to know about a static instruction, precomputed once at program
// load so the per-cycle stages index a flat table instead of re-deriving
// operand classes, port counts, and functional-unit routing for every
// dynamic instruction. The table is immutable after decodeProgram and is
// indexed by program counter, in lockstep with isa.Program.Insts.
//
// Determinism note (DESIGN.md "Performance"): every field is a pure
// function of the static isa.Instruction; caching it cannot change any
// simulation result, only the cost of looking it up.
type decInfo struct {
	fu       uint8 // fuIndex(Op.FU()): issue queue + FU-pool routing
	latency  int64 // Op.Latency()
	intReads uint8 // integer register-file read ports at issue
	fpReads  uint8 // FP register-file read ports at issue
	intWrite bool  // writes an integer register-file port at writeback
	fpWrite  bool  // writes an FP register-file port at writeback
	isBranch bool
	isMem    bool
	// src1Class/src2Class are the rename-relevant operand classes, with
	// an immediate second operand already folded to NoClass.
	src1Class isa.RegClass
	src2Class isa.RegClass
}

// decodeProgram builds the decode cache for one program.
func decodeProgram(p *isa.Program) []decInfo {
	dec := make([]decInfo, len(p.Insts))
	for i := range p.Insts {
		in := &p.Insts[i]
		d := &dec[i]
		d.fu = uint8(fuIndex(in.Op.FU()))
		d.latency = int64(in.Op.Latency())
		d.intReads = uint8(in.IntRegReads())
		d.fpReads = uint8(in.FPRegReads())
		d.intWrite = in.IntRegWrites() > 0
		d.fpWrite = in.FPRegWrites() > 0
		d.isBranch = in.Op.IsBranch()
		d.isMem = in.Op.IsMem()
		d.src1Class = in.Op.Src1Class()
		d.src2Class = in.Op.Src2Class()
		if in.UseImm {
			d.src2Class = isa.NoClass
		}
	}
	return dec
}
