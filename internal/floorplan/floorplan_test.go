package floorplan

import (
	"math"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func TestDefaultFloorplanValid(t *testing.T) {
	fp := Default()
	var area float64
	for _, b := range fp.Blocks {
		area += b.Area()
	}
	if math.Abs(area-fp.DieW*fp.DieH) > 1e-12 {
		t.Errorf("blocks cover %.3g of %.3g", area, fp.DieW*fp.DieH)
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if fp.BlockFor(u) < 0 {
			t.Errorf("no block for %s", u)
		}
	}
}

func TestDefaultAdjacency(t *testing.T) {
	fp := Default()
	adj := fp.Adjacencies()
	if len(adj) < 12 {
		t.Fatalf("only %d adjacencies for 13 blocks", len(adj))
	}
	for _, a := range adj {
		if a.SharedLen <= 0 || a.Dist <= 0 {
			t.Errorf("degenerate adjacency %+v", a)
		}
		if a.A == a.B {
			t.Errorf("self adjacency %+v", a)
		}
	}
	// The register file must touch the issue queue and integer units
	// (its heat spreads into them).
	rf := fp.BlockFor(power.UnitIntReg)
	neighbours := map[int]bool{}
	for _, a := range adj {
		if a.A == rf {
			neighbours[a.B] = true
		}
		if a.B == rf {
			neighbours[a.A] = true
		}
	}
	if !neighbours[fp.BlockFor(power.UnitIntQ)] || !neighbours[fp.BlockFor(power.UnitIntExec)] {
		t.Error("IntReg should neighbour IntQ and IntExec")
	}
}

func TestUnitAreas(t *testing.T) {
	fp := Default()
	areas := fp.UnitAreas()
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if areas[u] <= 0 {
			t.Errorf("%s area %g", u, areas[u])
		}
	}
	// The attack target is one of the smallest core blocks (high power
	// density).
	if areas[power.UnitIntReg] > areas[power.UnitL2]/4 {
		t.Error("IntReg should be much smaller than the L2")
	}
}

func TestNewRejectsBadPlans(t *testing.T) {
	good := Default()
	// Overlap.
	blocks := append([]Block(nil), good.Blocks...)
	blocks[1].X = blocks[0].X
	blocks[1].Y = blocks[0].Y
	if _, err := New(blocks, good.DieW, good.DieH); err == nil {
		t.Error("overlapping blocks should fail")
	}
	// Outside die.
	blocks = append([]Block(nil), good.Blocks...)
	blocks[2].X = good.DieW
	if _, err := New(blocks, good.DieW, good.DieH); err == nil {
		t.Error("out-of-die block should fail")
	}
	// Missing unit.
	blocks = append([]Block(nil), good.Blocks...)
	blocks[0].HasUnit = false
	if _, err := New(blocks, good.DieW, good.DieH); err == nil {
		t.Error("missing unit should fail")
	}
	// Duplicate unit.
	blocks = append([]Block(nil), good.Blocks...)
	blocks[12].HasUnit = true
	blocks[12].Unit = blocks[0].Unit
	if _, err := New(blocks, good.DieW, good.DieH); err == nil {
		t.Error("duplicate unit should fail")
	}
	// Incomplete tiling.
	if _, err := New(good.Blocks[:12], good.DieW, good.DieH); err == nil {
		t.Error("gap in tiling should fail")
	}
	if _, err := New(nil, 1, 1); err == nil {
		t.Error("empty plan should fail")
	}
}
