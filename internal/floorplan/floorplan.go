// Package floorplan describes the die geometry the thermal model is
// built from: one rectangular block per power unit (plus a spare
// block), with adjacency derived from shared edges. The layout is an
// Alpha-21264-like core with the shared L2 along the bottom of the die,
// in the spirit of the floorplan the paper takes from the HotSpot
// distribution.
package floorplan

import (
	"fmt"
	"math"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Block is one rectangle on the die. Coordinates are in meters with the
// origin at the die's lower-left corner.
type Block struct {
	Name string
	// Unit is the power unit dissipating in this block; Spare for none.
	Unit power.Unit
	// HasUnit is false for fill blocks that only leak.
	HasUnit    bool
	X, Y, W, H float64
}

// Area returns the block area in square meters.
func (b Block) Area() float64 { return b.W * b.H }

// Adjacency records a shared edge between two blocks.
type Adjacency struct {
	A, B int
	// SharedLen is the length of the common edge in meters.
	SharedLen float64
	// Dist is the center-to-center distance along the axis normal to
	// the shared edge (used for lateral thermal resistance).
	Dist float64
}

// Floorplan is a validated set of blocks tiling a rectangular die.
type Floorplan struct {
	Blocks []Block
	DieW   float64
	DieH   float64
	adj    []Adjacency
}

const mm = 1e-3

// Default returns the built-in 6 mm x 6 mm die:
//
//	y 6.0 ┌────────┬──────────┬───────┬─────────┐
//	      │ Decode │  LSQ     │ FPMul │ (spare) │
//	  4.8 ├────────┤      5.0 ├───────┤     4.0 │
//	      │ Bpred  ├──────────┤  4.5  ├─────────┤
//	  4.0 ├────────┤ IntExec  │ FPAdd │         │
//	      │        │      3.6 ├───────┤ DCache  │
//	      │ ICache ├──────────┤  3.0  │         │
//	      │        │ IntReg   ├───────┤         │
//	      │        │      2.8 │ FPReg │         │
//	      │        ├──────────┤       │         │
//	      │        │ IntQ     │       │         │
//	  2.0 ├────────┴──────────┴───────┴─────────┤
//	      │                L2                   │
//	  0.0 └─────────────────────────────────────┘
//	      0       1.5        3.5     4.5       6.0
//
// The integer register file — the attack's target — is a small
// (1.6 mm^2) block in the middle of the core, flanked by the issue
// queue and the integer execution units, so its power density is the
// highest on the die during a register burst.
func Default() *Floorplan {
	blocks := []Block{
		{Name: "L2", Unit: power.UnitL2, HasUnit: true, X: 0, Y: 0, W: 6 * mm, H: 2 * mm},
		{Name: "ICache", Unit: power.UnitICache, HasUnit: true, X: 0, Y: 2 * mm, W: 1.5 * mm, H: 2 * mm},
		{Name: "Bpred", Unit: power.UnitBpred, HasUnit: true, X: 0, Y: 4 * mm, W: 1.5 * mm, H: 0.8 * mm},
		{Name: "Decode", Unit: power.UnitDecode, HasUnit: true, X: 0, Y: 4.8 * mm, W: 1.5 * mm, H: 1.2 * mm},
		{Name: "IntQ", Unit: power.UnitIntQ, HasUnit: true, X: 1.5 * mm, Y: 2 * mm, W: 2 * mm, H: 0.8 * mm},
		{Name: "IntReg", Unit: power.UnitIntReg, HasUnit: true, X: 1.5 * mm, Y: 2.8 * mm, W: 2 * mm, H: 0.8 * mm},
		{Name: "IntExec", Unit: power.UnitIntExec, HasUnit: true, X: 1.5 * mm, Y: 3.6 * mm, W: 2 * mm, H: 1.4 * mm},
		{Name: "LSQ", Unit: power.UnitLSQ, HasUnit: true, X: 1.5 * mm, Y: 5 * mm, W: 2 * mm, H: 1 * mm},
		{Name: "FPReg", Unit: power.UnitFPReg, HasUnit: true, X: 3.5 * mm, Y: 2 * mm, W: 1 * mm, H: 1 * mm},
		{Name: "FPAdd", Unit: power.UnitFPAdd, HasUnit: true, X: 3.5 * mm, Y: 3 * mm, W: 1 * mm, H: 1.5 * mm},
		{Name: "FPMul", Unit: power.UnitFPMul, HasUnit: true, X: 3.5 * mm, Y: 4.5 * mm, W: 1 * mm, H: 1.5 * mm},
		{Name: "DCache", Unit: power.UnitDCache, HasUnit: true, X: 4.5 * mm, Y: 2 * mm, W: 1.5 * mm, H: 2 * mm},
		{Name: "Spare", HasUnit: false, X: 4.5 * mm, Y: 4 * mm, W: 1.5 * mm, H: 2 * mm},
	}
	fp, err := New(blocks, 6*mm, 6*mm)
	if err != nil {
		panic("floorplan: default floorplan invalid: " + err.Error())
	}
	return fp
}

// New validates the blocks (non-overlapping, inside the die, exactly
// tiling it, one block per power unit) and computes adjacency.
func New(blocks []Block, dieW, dieH float64) (*Floorplan, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks")
	}
	var area float64
	seen := make(map[power.Unit]bool)
	for i, b := range blocks {
		if b.W <= 0 || b.H <= 0 {
			return nil, fmt.Errorf("floorplan: block %s has non-positive size", b.Name)
		}
		if b.X < -eps || b.Y < -eps || b.X+b.W > dieW+eps || b.Y+b.H > dieH+eps {
			return nil, fmt.Errorf("floorplan: block %s extends outside the die", b.Name)
		}
		if b.HasUnit {
			if b.Unit >= power.NumUnits {
				return nil, fmt.Errorf("floorplan: block %s has invalid unit", b.Name)
			}
			if seen[b.Unit] {
				return nil, fmt.Errorf("floorplan: unit %s appears in two blocks", b.Unit)
			}
			seen[b.Unit] = true
		}
		for j := 0; j < i; j++ {
			if overlap1D(b.X, b.X+b.W, blocks[j].X, blocks[j].X+blocks[j].W) > eps &&
				overlap1D(b.Y, b.Y+b.H, blocks[j].Y, blocks[j].Y+blocks[j].H) > eps {
				return nil, fmt.Errorf("floorplan: blocks %s and %s overlap", b.Name, blocks[j].Name)
			}
		}
		area += b.Area()
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if !seen[u] {
			return nil, fmt.Errorf("floorplan: no block for unit %s", u)
		}
	}
	if math.Abs(area-dieW*dieH) > dieW*dieH*1e-6 {
		return nil, fmt.Errorf("floorplan: blocks cover %.3f mm^2 of a %.3f mm^2 die",
			area*1e6, dieW*dieH*1e6)
	}
	fp := &Floorplan{Blocks: blocks, DieW: dieW, DieH: dieH}
	fp.computeAdjacency()
	return fp, nil
}

const eps = 1e-9

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

func (f *Floorplan) computeAdjacency() {
	for i := range f.Blocks {
		for j := i + 1; j < len(f.Blocks); j++ {
			a, b := f.Blocks[i], f.Blocks[j]
			// Vertical shared edge: a's right against b's left or vice
			// versa, with overlapping y ranges.
			if shared := overlap1D(a.Y, a.Y+a.H, b.Y, b.Y+b.H); shared > eps {
				if math.Abs((a.X+a.W)-b.X) < eps || math.Abs((b.X+b.W)-a.X) < eps {
					f.adj = append(f.adj, Adjacency{A: i, B: j, SharedLen: shared, Dist: (a.W + b.W) / 2})
					continue
				}
			}
			// Horizontal shared edge.
			if shared := overlap1D(a.X, a.X+a.W, b.X, b.X+b.W); shared > eps {
				if math.Abs((a.Y+a.H)-b.Y) < eps || math.Abs((b.Y+b.H)-a.Y) < eps {
					f.adj = append(f.adj, Adjacency{A: i, B: j, SharedLen: shared, Dist: (a.H + b.H) / 2})
				}
			}
		}
	}
}

// Adjacencies returns the shared-edge list.
func (f *Floorplan) Adjacencies() []Adjacency { return f.adj }

// BlockFor returns the index of the block hosting unit u.
func (f *Floorplan) BlockFor(u power.Unit) int {
	for i, b := range f.Blocks {
		if b.HasUnit && b.Unit == u {
			return i
		}
	}
	return -1
}

// UnitAreas returns each power unit's block area in square meters,
// indexed by unit.
func (f *Floorplan) UnitAreas() [power.NumUnits]float64 {
	var areas [power.NumUnits]float64
	for _, b := range f.Blocks {
		if b.HasUnit {
			areas[b.Unit] = b.Area()
		}
	}
	return areas
}
