// Package floorplan describes the die geometry the thermal model is
// built from: one rectangular block per power unit (plus a spare
// block), with adjacency derived from shared edges. The layout is an
// Alpha-21264-like core with the shared L2 along the bottom of the die,
// in the spirit of the floorplan the paper takes from the HotSpot
// distribution.
package floorplan

import (
	"fmt"
	"math"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Block is one rectangle on the die. Coordinates are in meters with the
// origin at the die's lower-left corner.
type Block struct {
	Name string
	// Unit is the power unit dissipating in this block; Spare for none.
	Unit power.Unit
	// HasUnit is false for fill blocks that only leak.
	HasUnit    bool
	X, Y, W, H float64
}

// Area returns the block area in square meters.
func (b Block) Area() float64 { return b.W * b.H }

// Adjacency records a shared edge between two blocks.
type Adjacency struct {
	A, B int
	// SharedLen is the length of the common edge in meters.
	SharedLen float64
	// Dist is the center-to-center distance along the axis normal to
	// the shared edge (used for lateral thermal resistance).
	Dist float64
}

// Floorplan is a validated set of blocks tiling a rectangular die.
type Floorplan struct {
	Blocks []Block
	DieW   float64
	DieH   float64
	adj    []Adjacency
}

const mm = 1e-3

// Default returns the built-in 6 mm x 6 mm die:
//
//	y 6.0 ┌────────┬──────────┬───────┬─────────┐
//	      │ Decode │  LSQ     │ FPMul │ (spare) │
//	  4.8 ├────────┤      5.0 ├───────┤     4.0 │
//	      │ Bpred  ├──────────┤  4.5  ├─────────┤
//	  4.0 ├────────┤ IntExec  │ FPAdd │         │
//	      │        │      3.6 ├───────┤ DCache  │
//	      │ ICache ├──────────┤  3.0  │         │
//	      │        │ IntReg   ├───────┤         │
//	      │        │      2.8 │ FPReg │         │
//	      │        ├──────────┤       │         │
//	      │        │ IntQ     │       │         │
//	  2.0 ├────────┴──────────┴───────┴─────────┤
//	      │                L2                   │
//	  0.0 └─────────────────────────────────────┘
//	      0       1.5        3.5     4.5       6.0
//
// The integer register file — the attack's target — is a small
// (1.6 mm^2) block in the middle of the core, flanked by the issue
// queue and the integer execution units, so its power density is the
// highest on the die during a register burst.
func Default() *Floorplan {
	blocks := []Block{
		{Name: "L2", Unit: power.UnitL2, HasUnit: true, X: 0, Y: 0, W: 6 * mm, H: 2 * mm},
		{Name: "ICache", Unit: power.UnitICache, HasUnit: true, X: 0, Y: 2 * mm, W: 1.5 * mm, H: 2 * mm},
		{Name: "Bpred", Unit: power.UnitBpred, HasUnit: true, X: 0, Y: 4 * mm, W: 1.5 * mm, H: 0.8 * mm},
		{Name: "Decode", Unit: power.UnitDecode, HasUnit: true, X: 0, Y: 4.8 * mm, W: 1.5 * mm, H: 1.2 * mm},
		{Name: "IntQ", Unit: power.UnitIntQ, HasUnit: true, X: 1.5 * mm, Y: 2 * mm, W: 2 * mm, H: 0.8 * mm},
		{Name: "IntReg", Unit: power.UnitIntReg, HasUnit: true, X: 1.5 * mm, Y: 2.8 * mm, W: 2 * mm, H: 0.8 * mm},
		{Name: "IntExec", Unit: power.UnitIntExec, HasUnit: true, X: 1.5 * mm, Y: 3.6 * mm, W: 2 * mm, H: 1.4 * mm},
		{Name: "LSQ", Unit: power.UnitLSQ, HasUnit: true, X: 1.5 * mm, Y: 5 * mm, W: 2 * mm, H: 1 * mm},
		{Name: "FPReg", Unit: power.UnitFPReg, HasUnit: true, X: 3.5 * mm, Y: 2 * mm, W: 1 * mm, H: 1 * mm},
		{Name: "FPAdd", Unit: power.UnitFPAdd, HasUnit: true, X: 3.5 * mm, Y: 3 * mm, W: 1 * mm, H: 1.5 * mm},
		{Name: "FPMul", Unit: power.UnitFPMul, HasUnit: true, X: 3.5 * mm, Y: 4.5 * mm, W: 1 * mm, H: 1.5 * mm},
		{Name: "DCache", Unit: power.UnitDCache, HasUnit: true, X: 4.5 * mm, Y: 2 * mm, W: 1.5 * mm, H: 2 * mm},
		{Name: "Spare", HasUnit: false, X: 4.5 * mm, Y: 4 * mm, W: 1.5 * mm, H: 2 * mm},
	}
	fp, err := New(blocks, 6*mm, 6*mm)
	if err != nil {
		panic("floorplan: default floorplan invalid: " + err.Error())
	}
	return fp
}

// New validates the blocks (non-overlapping, inside the die, exactly
// tiling it with no gaps, one block per power unit) and computes
// adjacency.
func New(blocks []Block, dieW, dieH float64) (*Floorplan, error) {
	fp := &Floorplan{Blocks: blocks, DieW: dieW, DieH: dieH}
	fp.adj = computeAdjacencyRects(fp.rects())
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	return fp, nil
}

// Validate re-checks every invariant the thermal network depends on:
// blocks tile the die exactly (no gaps, no overlaps, nothing outside),
// each power unit appears in exactly one block, and the adjacency list
// is symmetric, duplicate-free, and consistent with the geometry. New
// runs it on every construction; a Floorplan assembled or mutated by
// hand should be re-validated before use, since a gapped or stale
// layout would otherwise build a silently-wrong network.
func (f *Floorplan) Validate() error {
	rs := f.rects()
	if err := validateTiling(rs, f.DieW, f.DieH); err != nil {
		return err
	}
	seen := make(map[power.Unit]bool)
	for _, b := range f.Blocks {
		if !b.HasUnit {
			continue
		}
		if b.Unit >= power.NumUnits {
			return fmt.Errorf("floorplan: block %s has invalid unit", b.Name)
		}
		if seen[b.Unit] {
			return fmt.Errorf("floorplan: unit %s appears in two blocks", b.Unit)
		}
		seen[b.Unit] = true
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if !seen[u] {
			return fmt.Errorf("floorplan: no block for unit %s", u)
		}
	}
	return validateAdjacency(f.adj, rs)
}

func (f *Floorplan) rects() []rect {
	rs := make([]rect, len(f.Blocks))
	for i, b := range f.Blocks {
		rs[i] = rect{name: b.Name, x: b.X, y: b.Y, w: b.W, h: b.H}
	}
	return rs
}

const eps = 1e-9

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// Adjacencies returns the shared-edge list.
func (f *Floorplan) Adjacencies() []Adjacency { return f.adj }

// BlockFor returns the index of the block hosting unit u.
func (f *Floorplan) BlockFor(u power.Unit) int {
	for i, b := range f.Blocks {
		if b.HasUnit && b.Unit == u {
			return i
		}
	}
	return -1
}

// UnitAreas returns each power unit's block area in square meters,
// indexed by unit.
func (f *Floorplan) UnitAreas() [power.NumUnits]float64 {
	var areas [power.NumUnits]float64
	for _, b := range f.Blocks {
		if b.HasUnit {
			areas[b.Unit] = b.Area()
		}
	}
	return areas
}
