package floorplan

import (
	"fmt"
	"math"
	"sort"
)

// rect is the geometry-only view of a block shared by Floorplan and
// Die validation.
type rect struct {
	name       string
	x, y, w, h float64
}

// validateTiling checks that the rects exactly tile the dieW x dieH
// die: every rect has positive size and lies inside the die, no pair
// overlaps, and no elementary cell of the coordinate-compressed grid
// is uncovered. The cell check is exact for rectilinear layouts (every
// gap, however thin, contains at least one cell center), so a layout
// that passes builds a thermal network with no silent holes.
func validateTiling(rs []rect, dieW, dieH float64) error {
	if len(rs) == 0 {
		return fmt.Errorf("floorplan: no blocks")
	}
	if dieW <= 0 || dieH <= 0 {
		return fmt.Errorf("floorplan: die %g x %g m must be positive", dieW, dieH)
	}
	var area float64
	for i, r := range rs {
		if r.w <= 0 || r.h <= 0 {
			return fmt.Errorf("floorplan: block %s has non-positive size", r.name)
		}
		if r.x < -eps || r.y < -eps || r.x+r.w > dieW+eps || r.y+r.h > dieH+eps {
			return fmt.Errorf("floorplan: block %s extends outside the die", r.name)
		}
		for j := 0; j < i; j++ {
			if overlap1D(r.x, r.x+r.w, rs[j].x, rs[j].x+rs[j].w) > eps &&
				overlap1D(r.y, r.y+r.h, rs[j].y, rs[j].y+rs[j].h) > eps {
				return fmt.Errorf("floorplan: blocks %s and %s overlap", r.name, rs[j].name)
			}
		}
		area += r.w * r.h
	}
	if math.Abs(area-dieW*dieH) > dieW*dieH*1e-6 {
		return fmt.Errorf("floorplan: blocks cover %.3f mm^2 of a %.3f mm^2 die",
			area*1e6, dieW*dieH*1e6)
	}
	// Coordinate compression: every block edge (and the die boundary)
	// cuts the die into elementary cells; each cell center must be
	// inside exactly one block. Together with the pairwise overlap
	// check above, "at least one" suffices.
	xs := cuts(rs, dieW, func(r rect) (float64, float64) { return r.x, r.x + r.w })
	ys := cuts(rs, dieH, func(r rect) (float64, float64) { return r.y, r.y + r.h })
	for i := 0; i+1 < len(xs); i++ {
		cx := (xs[i] + xs[i+1]) / 2
		for j := 0; j+1 < len(ys); j++ {
			cy := (ys[j] + ys[j+1]) / 2
			covered := false
			for _, r := range rs {
				if cx > r.x-eps && cx < r.x+r.w+eps && cy > r.y-eps && cy < r.y+r.h+eps {
					covered = true
					break
				}
			}
			if !covered {
				return fmt.Errorf("floorplan: gap in tiling near (%.4g, %.4g) mm",
					cx*1e3, cy*1e3)
			}
		}
	}
	return nil
}

// cuts returns the sorted, eps-deduplicated cut coordinates along one
// axis: 0, the die extent, and every block edge.
func cuts(rs []rect, extent float64, span func(rect) (float64, float64)) []float64 {
	cs := make([]float64, 0, 2*len(rs)+2)
	cs = append(cs, 0, extent)
	for _, r := range rs {
		lo, hi := span(r)
		cs = append(cs, lo, hi)
	}
	sort.Float64s(cs)
	out := cs[:1]
	for _, c := range cs[1:] {
		if c-out[len(out)-1] > eps {
			out = append(out, c)
		}
	}
	return out
}

// computeAdjacencyRects derives the shared-edge list: one entry per
// unordered pair of rects that share an edge segment longer than eps,
// with A < B. Dist is the center-to-center distance normal to the edge.
func computeAdjacencyRects(rs []rect) []Adjacency {
	var adj []Adjacency
	for i := range rs {
		for j := i + 1; j < len(rs); j++ {
			a, b := rs[i], rs[j]
			// Vertical shared edge: a's right against b's left or vice
			// versa, with overlapping y ranges.
			if shared := overlap1D(a.y, a.y+a.h, b.y, b.y+b.h); shared > eps {
				if math.Abs((a.x+a.w)-b.x) < eps || math.Abs((b.x+b.w)-a.x) < eps {
					adj = append(adj, Adjacency{A: i, B: j, SharedLen: shared, Dist: (a.w + b.w) / 2})
					continue
				}
			}
			// Horizontal shared edge.
			if shared := overlap1D(a.x, a.x+a.w, b.x, b.x+b.w); shared > eps {
				if math.Abs((a.y+a.h)-b.y) < eps || math.Abs((b.y+b.h)-a.y) < eps {
					adj = append(adj, Adjacency{A: i, B: j, SharedLen: shared, Dist: (a.h + b.h) / 2})
				}
			}
		}
	}
	return adj
}

// validateAdjacency checks a stored adjacency list against the
// geometry: every entry must name two distinct in-range blocks in
// canonical A < B order, no unordered pair may appear twice (symmetry
// would double-count the lateral conductance), and the list must match
// what the geometry implies — same pairs, same shared length, same
// distance. A Floorplan assembled by hand with a stale or empty list
// is caught here instead of building a silently-wrong network.
func validateAdjacency(adj []Adjacency, rs []rect) error {
	want := computeAdjacencyRects(rs)
	seen := make(map[[2]int]Adjacency, len(adj))
	for _, a := range adj {
		if a.A < 0 || a.B < 0 || a.A >= len(rs) || a.B >= len(rs) {
			return fmt.Errorf("floorplan: adjacency %d-%d out of range", a.A, a.B)
		}
		if a.A == a.B {
			return fmt.Errorf("floorplan: block %s adjacent to itself", rs[a.A].name)
		}
		if a.A > a.B {
			return fmt.Errorf("floorplan: adjacency %s-%s not in canonical order", rs[a.A].name, rs[a.B].name)
		}
		key := [2]int{a.A, a.B}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("floorplan: duplicate adjacency %s-%s", rs[a.A].name, rs[a.B].name)
		}
		seen[key] = a
	}
	if len(adj) != len(want) {
		return fmt.Errorf("floorplan: %d adjacencies stored, geometry implies %d", len(adj), len(want))
	}
	for _, w := range want {
		got, ok := seen[[2]int{w.A, w.B}]
		if !ok {
			return fmt.Errorf("floorplan: missing adjacency %s-%s", rs[w.A].name, rs[w.B].name)
		}
		if math.Abs(got.SharedLen-w.SharedLen) > eps || math.Abs(got.Dist-w.Dist) > eps {
			return fmt.Errorf("floorplan: adjacency %s-%s disagrees with geometry", rs[w.A].name, rs[w.B].name)
		}
	}
	return nil
}
