package floorplan

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// guillotine generates a random rectilinear tiling of the die by
// repeatedly splitting the largest leaf, deterministic in rng. Every
// layout it returns tiles the die exactly by construction.
func guillotine(rng *rand.Rand, dieW, dieH float64, leaves int) []Block {
	type r struct{ x, y, w, h float64 }
	rs := []r{{0, 0, dieW, dieH}}
	for len(rs) < leaves {
		// Split the largest leaf so aspect ratios stay sane.
		best := 0
		for i, c := range rs {
			if c.w*c.h > rs[best].w*rs[best].h {
				best = i
			}
		}
		c := rs[best]
		frac := 0.3 + 0.4*rng.Float64()
		if c.w >= c.h {
			cut := c.w * frac
			rs[best] = r{c.x, c.y, cut, c.h}
			rs = append(rs, r{c.x + cut, c.y, c.w - cut, c.h})
		} else {
			cut := c.h * frac
			rs[best] = r{c.x, c.y, c.w, cut}
			rs = append(rs, r{c.x, c.y + cut, c.w, c.h - cut})
		}
	}
	blocks := make([]Block, len(rs))
	for i, c := range rs {
		blocks[i] = Block{Name: fmt.Sprintf("B%d", i), X: c.x, Y: c.y, W: c.w, H: c.h}
		if i < int(power.NumUnits) {
			blocks[i].Unit = power.Unit(i)
			blocks[i].HasUnit = true
		}
	}
	return blocks
}

// FuzzFloorplanValidate drives Validate over random rectilinear
// layouts: every guillotine tiling must be accepted, and a layout
// broken afterwards — a gap punched into it, a block nudged off grid,
// a stale adjacency list — must be rejected. This is the regression
// net for the "silently-wrong network" class of bug: before Validate
// existed, all of these built and simulated without complaint.
func FuzzFloorplanValidate(f *testing.F) {
	f.Add(int64(1), uint8(13))
	f.Add(int64(42), uint8(20))
	f.Add(int64(7), uint8(30))
	f.Fuzz(func(t *testing.T, seed int64, extra uint8) {
		rng := rand.New(rand.NewSource(seed))
		leaves := int(power.NumUnits) + 1 + int(extra%20)
		dieW, dieH := 6*mm, 6*mm
		blocks := guillotine(rng, dieW, dieH, leaves)
		fp, err := New(blocks, dieW, dieH)
		if err != nil {
			t.Fatalf("valid guillotine layout rejected: %v", err)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("freshly-built floorplan fails Validate: %v", err)
		}

		pick := rng.Intn(len(blocks))
		mutate := func(fn func([]Block)) []Block {
			bs := append([]Block(nil), blocks...)
			fn(bs)
			return bs
		}
		// A gap: one block shrunk leaves part of the die unmodeled.
		if bs := mutate(func(bs []Block) { bs[pick].W *= 0.75 }); true {
			if _, err := New(bs, dieW, dieH); err == nil {
				t.Error("gapped layout accepted")
			}
		}
		// An overlap that keeps total area plausible: grow one block
		// into its neighbours.
		if bs := mutate(func(bs []Block) { bs[pick].W += bs[pick].W / 2; bs[pick].X -= bs[pick].W / 6 }); true {
			if _, err := New(bs, dieW, dieH); err == nil {
				t.Error("overlapping layout accepted")
			}
		}
		// Stale derived state: mutating geometry behind the adjacency
		// list must fail Validate even when the new geometry would be
		// fine on its own.
		fp.Blocks[pick].X += fp.Blocks[pick].W / 4
		if err := fp.Validate(); err == nil {
			t.Error("mutated floorplan with stale adjacency accepted")
		}
	})
}
