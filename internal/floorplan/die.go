// Die tiling: K instances of the single-core floorplan share one die
// with a common L2 spine. The geometry is the substrate the grid
// thermal solver meshes, and the only place cross-core heat coupling
// can come from — there is no behavioural coupling above the L2.
package floorplan

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// SharedCore marks a DieBlock that belongs to no core (the L2 spine).
const SharedCore = -1

// DieBlock is one rectangle on a multi-core die. Coordinates are in
// meters with the origin at the die's lower-left corner.
type DieBlock struct {
	Name string
	// Core is the index of the core this block belongs to, or
	// SharedCore for die-shared blocks.
	Core int
	// Unit is the power unit dissipating here; HasUnit false for fill
	// blocks that only leak. Per-core blocks carry per-core units; a
	// shared block may only carry UnitL2.
	Unit       power.Unit
	HasUnit    bool
	X, Y, W, H float64
}

// Area returns the block area in square meters.
func (b DieBlock) Area() float64 { return b.W * b.H }

// Die is a validated multi-core floorplan: NCores copies of the core
// layout plus shared blocks, tiling one rectangle.
type Die struct {
	Blocks []DieBlock
	W, H   float64
	NCores int

	adj       []Adjacency
	unitBlock [][power.NumUnits]int // per core: unit -> block index
}

// NewDie tiles cores instances of the Default() core region onto one
// die above a full-width shared L2 spine.
//
// The Default() floorplan splits at y = 2 mm: the L2 below, the
// 6 mm x 4 mm core region above. NewDie lays K core regions side by
// side and stretches the L2 into a 6K mm x 2 mm spine under all of
// them. Even-indexed cores are mirrored in x, so each adjacent pair of
// cores faces integer-cluster to integer-cluster: the IntReg blocks of
// cores 2k and 2k+1 end up ~3 mm apart edge-to-edge instead of ~5 mm.
// That is deliberately the thermal worst case — the layout an attacker
// would wish for and a floorplanner should avoid — because the
// neighbor-heat experiment measures exactly this coupling.
func NewDie(cores int) (*Die, error) {
	if cores < 1 {
		return nil, fmt.Errorf("floorplan: die needs at least 1 core, got %d", cores)
	}
	core := Default()
	var l2 Block
	var region []Block
	for _, b := range core.Blocks {
		if b.HasUnit && b.Unit == power.UnitL2 {
			l2 = b
			continue
		}
		region = append(region, b)
	}
	// The core region spans the full die width above the L2 spine.
	tileW, spineH := core.DieW, l2.H
	dieW, dieH := float64(cores)*tileW, core.DieH
	blocks := []DieBlock{{
		Name: "L2", Core: SharedCore, Unit: power.UnitL2, HasUnit: true,
		X: 0, Y: l2.Y, W: dieW, H: spineH,
	}}
	for c := 0; c < cores; c++ {
		off := float64(c) * tileW
		for _, b := range region {
			x := b.X
			if c%2 == 0 {
				x = tileW - b.X - b.W // mirror even cores in x
			}
			blocks = append(blocks, DieBlock{
				Name: fmt.Sprintf("C%d.%s", c, b.Name),
				Core: c, Unit: b.Unit, HasUnit: b.HasUnit,
				X: off + x, Y: b.Y, W: b.W, H: b.H,
			})
		}
	}
	return NewDieFrom(blocks, dieW, dieH, cores)
}

// NewDieFrom validates an explicit block list (exact tiling, per-core
// unit coverage, shared-L2 rules) and computes adjacency — including
// the cross-core adjacencies that arise from shared tile edges.
func NewDieFrom(blocks []DieBlock, dieW, dieH float64, cores int) (*Die, error) {
	d := &Die{Blocks: blocks, W: dieW, H: dieH, NCores: cores}
	d.adj = computeAdjacencyRects(d.rects())
	if err := d.Validate(); err != nil {
		return nil, err
	}
	d.indexUnits()
	return d, nil
}

// Validate checks the die-level invariants: exact tiling, symmetric
// geometry-consistent adjacency, every core carrying exactly one block
// per non-L2 power unit, and exactly one shared L2 block.
func (d *Die) Validate() error {
	if d.NCores < 1 {
		return fmt.Errorf("floorplan: die needs at least 1 core, got %d", d.NCores)
	}
	rs := d.rects()
	if err := validateTiling(rs, d.W, d.H); err != nil {
		return err
	}
	seen := make(map[int]map[power.Unit]bool)
	l2Blocks := 0
	for _, b := range d.Blocks {
		if b.Core != SharedCore && (b.Core < 0 || b.Core >= d.NCores) {
			return fmt.Errorf("floorplan: block %s names core %d of %d", b.Name, b.Core, d.NCores)
		}
		if !b.HasUnit {
			continue
		}
		if b.Unit >= power.NumUnits {
			return fmt.Errorf("floorplan: block %s has invalid unit", b.Name)
		}
		if b.Core == SharedCore {
			if b.Unit != power.UnitL2 {
				return fmt.Errorf("floorplan: shared block %s carries per-core unit %s", b.Name, b.Unit)
			}
			l2Blocks++
			continue
		}
		if b.Unit == power.UnitL2 {
			return fmt.Errorf("floorplan: block %s puts the shared L2 inside core %d", b.Name, b.Core)
		}
		if seen[b.Core] == nil {
			seen[b.Core] = make(map[power.Unit]bool)
		}
		if seen[b.Core][b.Unit] {
			return fmt.Errorf("floorplan: unit %s appears twice in core %d", b.Unit, b.Core)
		}
		seen[b.Core][b.Unit] = true
	}
	if l2Blocks != 1 {
		return fmt.Errorf("floorplan: die has %d shared L2 blocks, want 1", l2Blocks)
	}
	for c := 0; c < d.NCores; c++ {
		for u := power.Unit(0); u < power.NumUnits; u++ {
			if u == power.UnitL2 {
				continue
			}
			if !seen[c][u] {
				return fmt.Errorf("floorplan: core %d has no block for unit %s", c, u)
			}
		}
	}
	return validateAdjacency(d.adj, rs)
}

// Adjacencies returns the shared-edge list (cross-core edges included).
func (d *Die) Adjacencies() []Adjacency { return d.adj }

// BlockFor returns the index of the block hosting unit u of core c.
// Every core's UnitL2 resolves to the shared L2 spine.
func (d *Die) BlockFor(core int, u power.Unit) int {
	if core < 0 || core >= d.NCores || u >= power.NumUnits {
		return -1
	}
	return d.unitBlock[core][u]
}

// UnitAreas returns each power unit's block area in square meters for
// one core (identical across cores; UnitL2 is the full shared spine).
func (d *Die) UnitAreas() [power.NumUnits]float64 {
	var areas [power.NumUnits]float64
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if i := d.BlockFor(0, u); i >= 0 {
			areas[u] = d.Blocks[i].Area()
		}
	}
	return areas
}

func (d *Die) rects() []rect {
	rs := make([]rect, len(d.Blocks))
	for i, b := range d.Blocks {
		rs[i] = rect{name: b.Name, x: b.X, y: b.Y, w: b.W, h: b.H}
	}
	return rs
}

func (d *Die) indexUnits() {
	d.unitBlock = make([][power.NumUnits]int, d.NCores)
	for c := range d.unitBlock {
		for u := range d.unitBlock[c] {
			d.unitBlock[c][u] = -1
		}
	}
	for i, b := range d.Blocks {
		if !b.HasUnit {
			continue
		}
		if b.Core == SharedCore {
			for c := 0; c < d.NCores; c++ {
				d.unitBlock[c][b.Unit] = i
			}
			continue
		}
		d.unitBlock[b.Core][b.Unit] = i
	}
}

// dieWire is the gob encoding of a Die: the defining fields only. The
// adjacency list and unit index are derived, so decode reconstructs
// them through NewDieFrom and inherits its validation — a corrupted
// stream cannot produce a Die whose derived state disagrees with its
// geometry.
type dieWire struct {
	Blocks []DieBlock
	W, H   float64
	NCores int
}

// GobEncode implements gob.GobEncoder.
func (d *Die) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(dieWire{Blocks: d.Blocks, W: d.W, H: d.H, NCores: d.NCores})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (d *Die) GobDecode(p []byte) error {
	var w dieWire
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&w); err != nil {
		return err
	}
	nd, err := NewDieFrom(w.Blocks, w.W, w.H, w.NCores)
	if err != nil {
		return err
	}
	*d = *nd
	return nil
}
