package floorplan

import (
	"bytes"
	"encoding/gob"
	"math"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func TestNewDieTiling(t *testing.T) {
	core := Default()
	for _, cores := range []int{1, 2, 3, 4, 8} {
		d, err := NewDie(cores)
		if err != nil {
			t.Fatalf("NewDie(%d): %v", cores, err)
		}
		if d.W != float64(cores)*core.DieW || d.H != core.DieH {
			t.Errorf("%d cores: die %g x %g m", cores, d.W, d.H)
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%d cores: %v", cores, err)
		}
		// One shared L2 spanning the full width plus 12 blocks per core.
		if want := 1 + cores*12; len(d.Blocks) != want {
			t.Errorf("%d cores: %d blocks, want %d", cores, len(d.Blocks), want)
		}
	}
}

func TestDieBlockFor(t *testing.T) {
	d, err := NewDie(3)
	if err != nil {
		t.Fatal(err)
	}
	l2 := -1
	for c := 0; c < d.NCores; c++ {
		for u := power.Unit(0); u < power.NumUnits; u++ {
			i := d.BlockFor(c, u)
			if i < 0 {
				t.Fatalf("core %d unit %s unresolved", c, u)
			}
			b := d.Blocks[i]
			if u == power.UnitL2 {
				if b.Core != SharedCore {
					t.Errorf("core %d L2 resolved to per-core block %s", c, b.Name)
				}
				if l2 >= 0 && i != l2 {
					t.Errorf("cores disagree on the shared L2 block")
				}
				l2 = i
			} else if b.Core != c {
				t.Errorf("core %d unit %s resolved to core %d's block", c, u, b.Core)
			}
		}
	}
	if d.BlockFor(-1, power.UnitIntReg) != -1 || d.BlockFor(3, power.UnitIntReg) != -1 {
		t.Error("out-of-range core should resolve to -1")
	}
	areas := d.UnitAreas()
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if areas[u] <= 0 {
			t.Errorf("%s area %g", u, areas[u])
		}
	}
}

// TestDieMirroredPairs checks the deliberate worst-case layout: the
// even core of each adjacent pair is mirrored, so the two IntReg
// blocks face each other ~3 mm apart instead of a full tile away.
func TestDieMirroredPairs(t *testing.T) {
	d, err := NewDie(2)
	if err != nil {
		t.Fatal(err)
	}
	r0 := d.Blocks[d.BlockFor(0, power.UnitIntReg)]
	r1 := d.Blocks[d.BlockFor(1, power.UnitIntReg)]
	gap := r1.X - (r0.X + r0.W)
	if gap < 0 {
		gap = r0.X - (r1.X + r1.W)
	}
	if math.Abs(gap-3*mm) > 1e-9 {
		t.Errorf("IntReg edge gap %g mm, want 3 mm (mirrored pair)", gap/mm)
	}
}

// TestDieCrossCoreAdjacency checks that tiles actually couple: blocks
// of different cores share edges at tile boundaries, and every core
// borders the shared L2 spine.
func TestDieCrossCoreAdjacency(t *testing.T) {
	d, err := NewDie(2)
	if err != nil {
		t.Fatal(err)
	}
	cross, l2Cores := 0, map[int]bool{}
	for _, a := range d.Adjacencies() {
		ca, cb := d.Blocks[a.A].Core, d.Blocks[a.B].Core
		if ca != SharedCore && cb != SharedCore && ca != cb {
			cross++
		}
		if ca == SharedCore && cb != SharedCore {
			l2Cores[cb] = true
		}
		if cb == SharedCore && ca != SharedCore {
			l2Cores[ca] = true
		}
	}
	if cross == 0 {
		t.Error("no cross-core adjacency on a 2-core die")
	}
	if len(l2Cores) != 2 {
		t.Errorf("L2 spine borders cores %v, want both", l2Cores)
	}
}

func TestNewDieFromRejectsBadDies(t *testing.T) {
	good, err := NewDie(2)
	if err != nil {
		t.Fatal(err)
	}
	clone := func() []DieBlock { return append([]DieBlock(nil), good.Blocks...) }
	cases := map[string]func() ([]DieBlock, float64, float64, int){
		"zero cores": func() ([]DieBlock, float64, float64, int) { return clone(), good.W, good.H, 0 },
		"core oob":   func() ([]DieBlock, float64, float64, int) { b := clone(); b[1].Core = 7; return b, good.W, good.H, 2 },
		"l2 in core": func() ([]DieBlock, float64, float64, int) { b := clone(); b[0].Core = 0; return b, good.W, good.H, 2 },
		"per-core in l2": func() ([]DieBlock, float64, float64, int) {
			b := clone()
			b[1].Core = SharedCore
			return b, good.W, good.H, 2
		},
		"missing unit": func() ([]DieBlock, float64, float64, int) {
			b := clone()
			b[1].HasUnit = false
			return b, good.W, good.H, 2
		},
		"gap": func() ([]DieBlock, float64, float64, int) { return clone()[1:], good.W, good.H, 2 },
		"overlap": func() ([]DieBlock, float64, float64, int) {
			b := clone()
			b[2].X, b[2].Y = b[1].X, b[1].Y
			return b, good.W, good.H, 2
		},
	}
	for name, mk := range cases {
		blocks, w, h, cores := mk()
		if _, err := NewDieFrom(blocks, w, h, cores); err == nil {
			t.Errorf("%s: invalid die accepted", name)
		}
	}
}

// TestDieGobRoundTrip checks that a Die survives gob: the decoded die
// must be deep-equal including its derived adjacency and unit index,
// which decode reconstructs (and re-validates) from the geometry.
func TestDieGobRoundTrip(t *testing.T) {
	d, err := NewDie(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		t.Fatal(err)
	}
	var got Die
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d, &got) {
		t.Error("die not deep-equal after gob round trip")
	}
	if !reflect.DeepEqual(d.Adjacencies(), got.Adjacencies()) {
		t.Error("adjacency lost in gob round trip")
	}
	// A corrupted geometry must be rejected at decode, not limp along.
	bad := *d
	bad.NCores = 3
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(&bad); err != nil {
		t.Fatal(err)
	}
	var rejected Die
	if err := gob.NewDecoder(&buf).Decode(&rejected); err == nil {
		t.Error("decode accepted a die whose geometry contradicts its core count")
	}
}
