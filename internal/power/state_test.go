package power

import (
	"reflect"
	"testing"
)

func TestActivitySnapshotRestore(t *testing.T) {
	a := NewActivity(2)
	a.Add(UnitIntReg, 0, 5)
	a.Add(UnitIntExec, 1, 7)
	a.AddGlobal(UnitL2, 3)
	st := a.Snapshot()

	b := NewActivity(2)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	if b.Total(UnitIntReg) != 5 || b.Total(UnitIntExec) != 7 || b.Total(UnitL2) != 3 {
		t.Errorf("totals wrong after restore")
	}
	if b.Thread(0, UnitIntReg) != 5 || b.Thread(1, UnitIntExec) != 7 {
		t.Errorf("per-thread counts wrong after restore")
	}

	// Deep copy: counting on the restored side must not touch the
	// snapshot.
	b.Add(UnitIntReg, 0, 100)
	if st.Total[UnitIntReg] != 5 || st.PerThread[0][UnitIntReg] != 5 {
		t.Error("restored activity aliases the snapshot")
	}
	if !reflect.DeepEqual(a.Snapshot(), st) {
		t.Error("source activity changed by restore elsewhere")
	}

	if err := NewActivity(3).Restore(st); err == nil {
		t.Error("mismatched context count should fail")
	}
}

func TestModelSnapshotRestore(t *testing.T) {
	a := testModel(t, 0.5)
	act := NewActivity(1)
	act.Add(UnitIntReg, 0, 4000)
	a.Prime(act)
	a.SetVdd(0.9)
	st := a.Snapshot()

	b := testModel(t, 0.5)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	if b.Vdd() != 0.9 {
		t.Errorf("vdd %g after restore", b.Vdd())
	}
	// The interval baseline must carry over: both models see the same
	// delta from the same counters.
	act.Add(UnitIntReg, 0, 2000)
	var pa, pb [NumUnits]float64
	if err := a.Interval(act, 10_000, &pa); err != nil {
		t.Fatal(err)
	}
	if err := b.Interval(act, 10_000, &pb); err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Errorf("interval powers diverge: %v vs %v", pa, pb)
	}

	bad := st
	bad.Vdd = 0
	if err := b.Restore(bad); err == nil {
		t.Error("non-positive vdd should fail")
	}
}
