package power

import (
	"math"
	"testing"
)

func TestUnitNamesRoundTrip(t *testing.T) {
	for _, u := range Units() {
		got, err := ParseUnit(u.String())
		if err != nil || got != u {
			t.Errorf("ParseUnit(%q) = %v, %v", u.String(), got, err)
		}
	}
	if _, err := ParseUnit("Nonsense"); err == nil {
		t.Error("unknown unit should fail")
	}
	if Unit(200).String() == "" {
		t.Error("out-of-range unit should stringify")
	}
}

func TestActivityCounters(t *testing.T) {
	a := NewActivity(2)
	a.Add(UnitIntReg, 0, 3)
	a.Add(UnitIntReg, 1, 5)
	a.AddGlobal(UnitL2, 2)
	if a.Total(UnitIntReg) != 8 {
		t.Errorf("total = %d", a.Total(UnitIntReg))
	}
	if a.Thread(0, UnitIntReg) != 3 || a.Thread(1, UnitIntReg) != 5 {
		t.Error("per-thread counts wrong")
	}
	if a.Total(UnitL2) != 2 || a.Thread(0, UnitL2) != 0 {
		t.Error("global adds must not attribute to threads")
	}
	if a.Threads() != 2 {
		t.Error("thread count wrong")
	}
	var snap [NumUnits]uint64
	a.Totals(&snap)
	if snap[UnitIntReg] != 8 {
		t.Error("snapshot wrong")
	}
}

func testModel(t *testing.T, leak float64) *Model {
	t.Helper()
	var areas [NumUnits]float64
	for u := range areas {
		areas[u] = 1e-6 // 1 mm^2 each
	}
	m, err := NewModel(DefaultEnergies(), 4e9, 1.1, 1.0, leak, areas)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelIntervalMath(t *testing.T) {
	m := testModel(t, 0)
	a := NewActivity(1)
	// 4000 accesses over 20000 cycles at 4 GHz: rate = 0.2/cycle.
	a.Add(UnitIntReg, 0, 4000)
	var out [NumUnits]float64
	if err := m.Interval(a, 20000, &out); err != nil {
		t.Fatal(err)
	}
	// P = count * E / time = 4000 * E * 1e-12 / (20000/4e9).
	e := DefaultEnergies().PJ[UnitIntReg]
	want := 4000 * e * 1e-12 / (20000 / 4e9)
	if math.Abs(out[UnitIntReg]-want) > want*1e-9 {
		t.Errorf("IntReg power %g, want %g", out[UnitIntReg], want)
	}
	if out[UnitL2] != 0 {
		t.Errorf("idle unit power %g, want 0 without leakage", out[UnitL2])
	}
	// Second interval with no new activity: zero dynamic power.
	if err := m.Interval(a, 20000, &out); err != nil {
		t.Fatal(err)
	}
	if out[UnitIntReg] != 0 {
		t.Errorf("delta accounting broken: %g", out[UnitIntReg])
	}
	if err := m.Interval(a, 0, &out); err == nil {
		t.Error("zero elapsed should fail")
	}
}

func TestModelLeakage(t *testing.T) {
	m := testModel(t, 0.5) // 0.5 W per mm^2, 1 mm^2 blocks
	a := NewActivity(1)
	var out [NumUnits]float64
	if err := m.Interval(a, 1000, &out); err != nil {
		t.Fatal(err)
	}
	for u := Unit(0); u < NumUnits; u++ {
		if math.Abs(out[u]-0.5) > 1e-12 {
			t.Errorf("%s idle power %g, want 0.5 (leakage)", u, out[u])
		}
		if math.Abs(m.Leakage(u)-0.5) > 1e-12 {
			t.Errorf("%s leakage %g", u, m.Leakage(u))
		}
	}
}

func TestModelVddScaling(t *testing.T) {
	m := testModel(t, 0)
	a := NewActivity(1)
	a.Add(UnitIntExec, 0, 1000)
	var nominal [NumUnits]float64
	if err := m.Interval(a, 1000, &nominal); err != nil {
		t.Fatal(err)
	}
	m.SetVdd(1.1 * 0.5) // half Vdd -> quarter dynamic power
	if m.Vdd() != 0.55 {
		t.Fatal("SetVdd failed")
	}
	a.Add(UnitIntExec, 0, 1000)
	var scaled [NumUnits]float64
	if err := m.Interval(a, 1000, &scaled); err != nil {
		t.Fatal(err)
	}
	if r := scaled[UnitIntExec] / nominal[UnitIntExec]; math.Abs(r-0.25) > 1e-9 {
		t.Errorf("Vdd^2 scaling ratio %g, want 0.25", r)
	}
}

func TestModelPrime(t *testing.T) {
	m := testModel(t, 0)
	a := NewActivity(1)
	a.Add(UnitIntReg, 0, 9999)
	m.Prime(a)
	var out [NumUnits]float64
	if err := m.Interval(a, 1000, &out); err != nil {
		t.Fatal(err)
	}
	if out[UnitIntReg] != 0 {
		t.Error("primed activity should not be charged")
	}
}

func TestSteadyPowersAndTypicalRates(t *testing.T) {
	m := testModel(t, 0.5)
	rates := TypicalRates()
	if rates[UnitIntReg] < rates[UnitFPReg] {
		t.Error("a typical mix is integer-heavy")
	}
	p := m.SteadyPowers(rates)
	total := 0.0
	for u := Unit(0); u < NumUnits; u++ {
		if p[u] < m.Leakage(u) {
			t.Errorf("%s steady power below leakage", u)
		}
		total += p[u]
	}
	if total < 10 || total > 80 {
		t.Errorf("typical total power %.1f W outside plausible band", total)
	}
}

func TestNewModelErrors(t *testing.T) {
	var areas [NumUnits]float64
	if _, err := NewModel(DefaultEnergies(), 0, 1.1, 1, 0.5, areas); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := NewModel(DefaultEnergies(), 4e9, 1.1, 0, 0.5, areas); err == nil {
		t.Error("zero energy scale should fail")
	}
}
