package power

import (
	"fmt"
	"slices"
)

// ActivityState is the serializable state of the activity counters.
type ActivityState struct {
	Total     [NumUnits]uint64
	PerThread [][NumUnits]uint64
}

// ModelState is the serializable state of the power model: the current
// supply voltage (DVS) and the per-unit interval baseline set by Prime.
// Energies, frequency, scale and leakage are static configuration and
// stay with the live model.
type ModelState struct {
	Vdd  float64
	Last [NumUnits]uint64
}

// Clone returns a deep copy of the activity state.
func (st ActivityState) Clone() ActivityState {
	out := st
	out.PerThread = slices.Clone(st.PerThread)
	return out
}

// Snapshot returns a deep copy of the counters.
func (a *Activity) Snapshot() ActivityState {
	return ActivityState{
		Total:     a.total,
		PerThread: append([][NumUnits]uint64(nil), a.perThread...),
	}
}

// Restore loads st into a. The context count must match.
func (a *Activity) Restore(st ActivityState) error {
	if len(st.PerThread) != len(a.perThread) {
		return fmt.Errorf("power: state has %d thread contexts, want %d",
			len(st.PerThread), len(a.perThread))
	}
	a.total = st.Total
	copy(a.perThread, st.PerThread)
	return nil
}

// Snapshot returns a copy of the model's mutable state.
func (m *Model) Snapshot() ModelState {
	return ModelState{Vdd: m.vdd, Last: m.last}
}

// Restore loads st into m.
func (m *Model) Restore(st ModelState) error {
	if st.Vdd <= 0 {
		return fmt.Errorf("power: restored vdd %g must be positive", st.Vdd)
	}
	m.vdd = st.Vdd
	m.last = st.Last
	return nil
}
