// Package power implements the Wattch-like activity-based power model:
// the pipeline counts per-unit, per-thread accesses, and the model
// converts interval activity into per-block watts (dynamic switching
// energy x access rate, plus per-area leakage).
//
// Per-access energies are calibrated, not extracted from a netlist; the
// calibration targets are the paper's operating points (documented on
// Energies): a typical SPEC thread puts the integer register file near
// its 354 K normal operating temperature, and a register-file burst of
// ~10+ accesses/cycle pushes it past the 358.5 K emergency within a few
// million cycles.
package power

import "fmt"

// Unit identifies one activity-counted pipeline resource. Units map 1:1
// onto floorplan blocks (package floorplan).
type Unit uint8

// Pipeline units.
const (
	UnitBpred Unit = iota
	UnitICache
	UnitDecode // decode + rename
	UnitIntQ   // RUU / issue queue
	UnitLSQ
	UnitIntReg // the attack target: integer register file
	UnitFPReg
	UnitIntExec
	UnitFPAdd
	UnitFPMul
	UnitDCache
	UnitL2
	NumUnits
)

var unitNames = [NumUnits]string{
	"Bpred", "ICache", "Decode", "IntQ", "LSQ", "IntReg",
	"FPReg", "IntExec", "FPAdd", "FPMul", "DCache", "L2",
}

// String returns the unit's floorplan name.
func (u Unit) String() string {
	if u < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", uint8(u))
}

// ParseUnit resolves a unit name (case-sensitive floorplan name).
func ParseUnit(name string) (Unit, error) {
	for u := Unit(0); u < NumUnits; u++ {
		if unitNames[u] == name {
			return u, nil
		}
	}
	return 0, fmt.Errorf("power: unknown unit %q", name)
}

// Units returns all units in index order.
func Units() []Unit {
	us := make([]Unit, NumUnits)
	for i := range us {
		us[i] = Unit(i)
	}
	return us
}

// Activity accumulates cumulative access counts, both chip-wide and per
// hardware context. Counters only ever increase; consumers (the power
// model every sensor interval, the sedation monitor every 1000 cycles)
// sample deltas at their own granularity.
type Activity struct {
	total     [NumUnits]uint64
	perThread [][NumUnits]uint64
}

// NewActivity returns counters for nthreads hardware contexts.
func NewActivity(nthreads int) *Activity {
	return &Activity{perThread: make([][NumUnits]uint64, nthreads)}
}

// Add records n accesses to unit u by thread tid.
func (a *Activity) Add(u Unit, tid int, n uint64) {
	a.total[u] += n
	a.perThread[tid][u] += n
}

// AddGlobal records n accesses not attributable to a thread.
func (a *Activity) AddGlobal(u Unit, n uint64) { a.total[u] += n }

// AddBatch folds thread tid's accumulated delta vector into the
// counters and zeroes it. The pipeline batches its per-event
// increments into a core-local vector and flushes at run boundaries,
// so the shared counters are touched once per batch instead of once
// per event; integer addition makes the batching exact.
func (a *Activity) AddBatch(tid int, d *[NumUnits]uint64) {
	pt := &a.perThread[tid]
	for u, n := range d {
		if n != 0 {
			a.total[u] += n
			pt[u] += n
			d[u] = 0
		}
	}
}

// Total returns the cumulative chip-wide count for u.
func (a *Activity) Total(u Unit) uint64 { return a.total[u] }

// Thread returns the cumulative count for u by thread tid.
func (a *Activity) Thread(tid int, u Unit) uint64 { return a.perThread[tid][u] }

// Threads returns the number of contexts tracked.
func (a *Activity) Threads() int { return len(a.perThread) }

// Totals copies the chip-wide counters into dst.
func (a *Activity) Totals(dst *[NumUnits]uint64) { *dst = a.total }

// Energies holds per-access switching energy in picojoules per unit, at
// the nominal supply voltage. Dynamic energy scales with (Vdd/VddNom)^2
// under DVS.
type Energies struct {
	PJ     [NumUnits]float64
	VddNom float64
}

// DefaultEnergies returns the calibrated per-access energies.
//
// Calibration targets (with the default floorplan and package):
//   - IntReg at ~6 accesses/cycle (a register-hungry SPEC thread, the
//     Figure 3 ceiling) settles around the 354 K normal temperature;
//   - IntReg at ~10-12 accesses/cycle (Variant1/Variant2 bursts,
//     attacker plus victim combined) exceeds the 358.5 K emergency;
//   - total chip power for a two-thread SPEC mix lands near 40 W so the
//     0.8 K/W package puts the die baseline in the paper's operating
//     range (ambient 308 K).
func DefaultEnergies() Energies {
	var e Energies
	e.VddNom = 1.1
	e.PJ = [NumUnits]float64{
		UnitBpred:   90,
		UnitICache:  250,
		UnitDecode:  120,
		UnitIntQ:    60,
		UnitLSQ:     100,
		UnitIntReg:  80,
		UnitFPReg:   80,
		UnitIntExec: 180,
		UnitFPAdd:   300,
		UnitFPMul:   400,
		UnitDCache:  550,
		UnitL2:      1200,
	}
	return e
}

// Model converts activity deltas into per-block power.
type Model struct {
	energies Energies
	freqHz   float64
	vdd      float64
	scale    float64 // config EnergyScale
	leakageW [NumUnits]float64

	last [NumUnits]uint64
}

// NewModel builds a power model. areasM2 gives each unit's die area in
// square meters (from the floorplan) for the leakage term;
// leakPerMM2 is in watts per square millimeter.
func NewModel(e Energies, freqHz, vdd, energyScale, leakPerMM2 float64, areasM2 [NumUnits]float64) (*Model, error) {
	if freqHz <= 0 || vdd <= 0 || energyScale <= 0 {
		return nil, fmt.Errorf("power: frequency, vdd and energy scale must be positive")
	}
	m := &Model{energies: e, freqHz: freqHz, vdd: vdd, scale: energyScale}
	for u := Unit(0); u < NumUnits; u++ {
		m.leakageW[u] = leakPerMM2 * areasM2[u] * 1e6
	}
	return m, nil
}

// SetVdd changes the supply voltage (DVS); dynamic energy scales
// quadratically.
func (m *Model) SetVdd(v float64) { m.vdd = v }

// Vdd returns the current supply voltage.
func (m *Model) Vdd() float64 { return m.vdd }

// Leakage returns unit u's static power in watts.
func (m *Model) Leakage(u Unit) float64 { return m.leakageW[u] }

// Prime resets the model's interval baseline to the activity's current
// counters; call it after a warmup phase so warmup activity is not
// charged to the first measured interval.
func (m *Model) Prime(a *Activity) { m.last = a.total }

// Interval converts the activity accumulated since the previous call
// into average per-unit power over the elapsed cycles, writing watts
// into out. elapsedCycles must be positive.
func (m *Model) Interval(a *Activity, elapsedCycles int64, out *[NumUnits]float64) error {
	if elapsedCycles <= 0 {
		return fmt.Errorf("power: elapsed cycles %d must be positive", elapsedCycles)
	}
	seconds := float64(elapsedCycles) / m.freqHz
	vddScale := (m.vdd / m.energies.VddNom) * (m.vdd / m.energies.VddNom)
	for u := Unit(0); u < NumUnits; u++ {
		cur := a.total[u]
		delta := cur - m.last[u]
		m.last[u] = cur
		joules := float64(delta) * m.energies.PJ[u] * 1e-12 * m.scale * vddScale
		out[u] = joules/seconds + m.leakageW[u]
	}
	return nil
}

// SteadyPowers returns the per-unit power vector for a nominal activity
// rate (accesses per cycle per unit); used to initialize the thermal
// network at its steady operating point.
func (m *Model) SteadyPowers(ratesPerCycle [NumUnits]float64) [NumUnits]float64 {
	var out [NumUnits]float64
	vddScale := (m.vdd / m.energies.VddNom) * (m.vdd / m.energies.VddNom)
	for u := Unit(0); u < NumUnits; u++ {
		out[u] = ratesPerCycle[u]*m.energies.PJ[u]*1e-12*m.scale*vddScale*m.freqHz + m.leakageW[u]
	}
	return out
}

// TypicalRates returns per-unit accesses/cycle for an "average"
// two-thread SPEC mix; the thermal network is initialized at the steady
// state this implies, anchoring the paper's ~354 K normal operating
// temperature for the integer register file.
func TypicalRates() [NumUnits]float64 {
	return [NumUnits]float64{
		UnitBpred:   0.5,
		UnitICache:  1.2,
		UnitDecode:  2.6,
		UnitIntQ:    5.0,
		UnitLSQ:     1.6,
		UnitIntReg:  5.2,
		UnitFPReg:   1.2,
		UnitIntExec: 1.8,
		UnitFPAdd:   0.4,
		UnitFPMul:   0.2,
		UnitDCache:  0.9,
		UnitL2:      0.05,
	}
}
