// Package core implements the paper's contribution: selective sedation
// (Section 3.2). A Monitor tracks every thread's access rate at every
// potential-hot-spot resource with a shift-based exponentially weighted
// moving average, and an Engine uses temperature thresholds to identify
// and sedate the culprit thread when a resource approaches its
// emergency temperature — slowing down only the offending thread
// instead of the whole pipeline.
package core

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Monitor maintains the per-thread, per-resource weighted averages of
// Section 3.2.1. Hardware cost per resource per thread is one access
// counter, one weighted-average register, and shift/add logic: the
// weighting factor x = 1/2^shift turns both multiplications of
//
//	WtAvg = (1-x)*WtAvg + x*rate
//
// into shifts:
//
//	WtAvg += (sample >> shift) - (WtAvg >> shift)
//
// Sampling is deliberately coarse (every 1000 cycles): hot spots take
// millions of cycles to form, so the monitoring logic can be slow,
// power- and space-efficient.
type Monitor struct {
	cfg      config.Sedation
	act      *power.Activity
	nthreads int

	last     [][power.NumUnits]uint64
	ewma     [][power.NumUnits]int64
	flatBase [][power.NumUnits]uint64
	frozen   []bool
}

// NewMonitor builds a monitor over the core's activity counters.
func NewMonitor(cfg config.Sedation, act *power.Activity) (*Monitor, error) {
	if cfg.SampleIntervalCycles <= 0 {
		return nil, fmt.Errorf("core: sample interval %d must be positive", cfg.SampleIntervalCycles)
	}
	if cfg.EWMAShift == 0 || cfg.EWMAShift > 16 {
		return nil, fmt.Errorf("core: EWMA shift %d out of range [1,16]", cfg.EWMAShift)
	}
	n := act.Threads()
	return &Monitor{
		cfg:      cfg,
		act:      act,
		nthreads: n,
		last:     make([][power.NumUnits]uint64, n),
		ewma:     make([][power.NumUnits]int64, n),
		flatBase: make([][power.NumUnits]uint64, n),
		frozen:   make([]bool, n),
	}, nil
}

// SetFrozen marks a thread sedated: its counters are neither sampled
// nor decayed, so the period of inactivity cannot artificially lower
// its weighted average (Section 3.2.2).
func (m *Monitor) SetFrozen(tid int, frozen bool) {
	if frozen && !m.frozen[tid] {
		// Swallow the activity accumulated so far so the thread's next
		// sample after resuming starts from its resume point.
		for u := power.Unit(0); u < power.NumUnits; u++ {
			m.last[tid][u] = m.act.Thread(tid, u)
		}
	}
	m.frozen[tid] = frozen
}

// Frozen reports whether tid's average is frozen.
func (m *Monitor) Frozen(tid int) bool { return m.frozen[tid] }

// Prime resets every thread's sample baseline to the current counters
// and clears the weighted averages; call it after a warmup phase.
func (m *Monitor) Prime() {
	for tid := 0; tid < m.nthreads; tid++ {
		for u := power.Unit(0); u < power.NumUnits; u++ {
			m.last[tid][u] = m.act.Thread(tid, u)
			m.flatBase[tid][u] = m.last[tid][u]
			m.ewma[tid][u] = 0
		}
	}
}

// Sample ingests one sampling interval's activity; the caller invokes
// it every SampleIntervalCycles cycles.
func (m *Monitor) Sample() {
	shift := m.cfg.EWMAShift
	for tid := 0; tid < m.nthreads; tid++ {
		if m.frozen[tid] {
			continue
		}
		for u := power.Unit(0); u < power.NumUnits; u++ {
			cur := m.act.Thread(tid, u)
			sample := int64(cur - m.last[tid][u])
			m.last[tid][u] = cur
			m.ewma[tid][u] += (sample >> shift) - (m.ewma[tid][u] >> shift)
		}
	}
}

// Raw returns the weighted-average register value (accesses per
// sampling interval) for thread tid at unit u.
func (m *Monitor) Raw(tid int, u power.Unit) int64 { return m.ewma[tid][u] }

// Rate returns the weighted average as accesses per cycle.
func (m *Monitor) Rate(tid int, u power.Unit) float64 {
	return float64(m.ewma[tid][u]) / float64(m.cfg.SampleIntervalCycles)
}

// FlatCount returns the total accesses by tid at u since the last
// Prime; the flat-average ablation identifies culprits with it.
func (m *Monitor) FlatCount(tid int, u power.Unit) uint64 {
	return m.act.Thread(tid, u) - m.flatBase[tid][u]
}

// FlatCulprit returns the eligible thread with the highest total access
// count at u (Section 3.2.1's strawman metric: a short aggressive burst
// hides below a long steady stream).
func (m *Monitor) FlatCulprit(u power.Unit, eligible func(tid int) bool) (tid int, ok bool) {
	var best uint64
	tid = -1
	for t := 0; t < m.nthreads; t++ {
		if !eligible(t) {
			continue
		}
		if v := m.FlatCount(t, u); tid < 0 || v > best {
			best = v
			tid = t
		}
	}
	return tid, tid >= 0
}

// Culprit returns the eligible thread with the highest weighted average
// at unit u. eligible filters candidates (the engine passes "active and
// not sedated"); ok is false if no thread is eligible.
func (m *Monitor) Culprit(u power.Unit, eligible func(tid int) bool) (tid int, ok bool) {
	best := int64(-1)
	tid = -1
	for t := 0; t < m.nthreads; t++ {
		if !eligible(t) {
			continue
		}
		if v := m.ewma[t][u]; v > best {
			best = v
			tid = t
		}
	}
	return tid, tid >= 0
}

// Threads returns the number of monitored contexts.
func (m *Monitor) Threads() int { return m.nthreads }
