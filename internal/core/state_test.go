package core

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func TestMonitorSnapshotRestore(t *testing.T) {
	a, actA := newMon(t, 2)
	for i := 0; i < 300; i++ {
		actA.Add(power.UnitIntReg, 0, 2000)
		actA.Add(power.UnitIntReg, 1, 9000)
		a.Sample()
	}
	a.SetFrozen(0, true)
	st := a.Snapshot()

	b, actB := newMon(t, 2)
	if err := actB.Restore(actA.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	if !b.Frozen(0) || b.Frozen(1) {
		t.Fatal("freeze flags wrong after restore")
	}
	// Same further samples must move both monitors identically,
	// including the frozen thread's held average.
	for i := 0; i < 100; i++ {
		for _, act := range []*power.Activity{actA, actB} {
			act.Add(power.UnitIntReg, 0, 500)
			act.Add(power.UnitIntReg, 1, 9000)
		}
		a.Sample()
		b.Sample()
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("monitors diverge after restore")
	}
	if a.Raw(0, power.UnitIntReg) != b.Raw(0, power.UnitIntReg) {
		t.Fatal("frozen averages diverge")
	}

	if err := b.Restore(MonitorState{}); err == nil {
		t.Error("mismatched context count should fail")
	}
}

func TestEngineSnapshotRestore(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 2, cfg)
	h.feed(200, 2000, 9000)
	h.temps[power.UnitIntReg] = cfg.UpperK + 0.2
	h.tick() // sedates the aggressor
	if !h.eng.Sedated(1) {
		t.Fatal("setup: aggressor not sedated")
	}
	st := h.eng.Snapshot()

	// Rebuild the whole stack and restore each component's own state —
	// the engine restores only its fields; the fetch gates and frozen
	// averages come with the control and monitor states.
	h2 := newHarness(t, 2, cfg)
	if err := h2.eng.Restore(st); err != nil {
		t.Fatal(err)
	}
	if err := h2.mon.Restore(h.mon.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := h2.act.Restore(h.act.Snapshot()); err != nil {
		t.Fatal(err)
	}
	copy(h2.ctl.enabled, h.ctl.enabled)
	h2.temps = h.temps
	h2.cycle = h.cycle

	if !h2.eng.Sedated(1) || h2.eng.Sedated(0) {
		t.Fatal("sedation flags wrong after restore")
	}
	if h2.eng.Stats() != h.eng.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", h2.eng.Stats(), h.eng.Stats())
	}

	// Cooling below the lower threshold must resume the same thread at
	// the same tick in both engines.
	h.temps[power.UnitIntReg] = cfg.LowerK - 0.5
	h2.temps[power.UnitIntReg] = cfg.LowerK - 0.5
	h.tick()
	h2.tick()
	if h.eng.Sedated(1) != h2.eng.Sedated(1) {
		t.Fatal("resume behavior diverges after restore")
	}
	if !reflect.DeepEqual(h.eng.Snapshot(), h2.eng.Snapshot()) {
		t.Fatal("engine states diverge after one tick")
	}

	// The snapshot still shows the sedated state (deep copy).
	if len(st.SedatedFor[power.UnitIntReg]) != 1 || st.Sedations[1] == 0 {
		t.Fatal("snapshot mutated by subsequent ticks")
	}

	if err := h2.eng.Restore(EngineState{}); err == nil {
		t.Error("mismatched context count should fail")
	}
}
