package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func sedCfg() config.Sedation { return config.Default().Sedation }

func newMon(t *testing.T, nthreads int) (*Monitor, *power.Activity) {
	t.Helper()
	act := power.NewActivity(nthreads)
	m, err := NewMonitor(sedCfg(), act)
	if err != nil {
		t.Fatal(err)
	}
	return m, act
}

func TestEWMAConvergesToRate(t *testing.T) {
	m, act := newMon(t, 1)
	// Constant 3000 accesses per 1000-cycle interval.
	for i := 0; i < 2000; i++ {
		act.Add(power.UnitIntReg, 0, 3000)
		m.Sample()
	}
	if rate := m.Rate(0, power.UnitIntReg); math.Abs(rate-3.0) > 0.1 {
		t.Errorf("EWMA rate %.3f, want ~3.0", rate)
	}
}

// TestQuickEWMAMatchesFloatReference property: the shift-based integer
// EWMA tracks the floating-point definition
// avg = (1-x)avg + x*sample within integer-truncation error.
func TestQuickEWMAMatchesFloatReference(t *testing.T) {
	cfg := sedCfg()
	x := 1.0 / float64(int64(1)<<cfg.EWMAShift)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		act := power.NewActivity(1)
		m, err := NewMonitor(cfg, act)
		if err != nil {
			return false
		}
		ref := 0.0
		for i := 0; i < 500; i++ {
			sample := int64(rng.Intn(12000))
			act.Add(power.UnitIntReg, 0, uint64(sample))
			m.Sample()
			ref = (1-x)*ref + x*float64(sample)
			// Truncation bias is bounded by the number of shifts: allow
			// 2 units per shift step accumulated, i.e. loose absolute
			// bound of 2^shift.
			if math.Abs(float64(m.Raw(0, power.UnitIntReg))-ref) > float64(int64(2)<<cfg.EWMAShift) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEWMAForgetsOldBursts(t *testing.T) {
	m, act := newMon(t, 1)
	for i := 0; i < 500; i++ {
		act.Add(power.UnitIntReg, 0, 10000)
		m.Sample()
	}
	burst := m.Rate(0, power.UnitIntReg)
	// Now go quiet for several windows.
	for i := 0; i < 1000; i++ {
		m.Sample()
	}
	quiet := m.Rate(0, power.UnitIntReg)
	if quiet > burst/100 {
		t.Errorf("EWMA did not decay: burst %.2f quiet %.2f", burst, quiet)
	}
}

func TestFrozenThreadKeepsAverage(t *testing.T) {
	m, act := newMon(t, 2)
	for i := 0; i < 300; i++ {
		act.Add(power.UnitIntReg, 0, 8000)
		act.Add(power.UnitIntReg, 1, 2000)
		m.Sample()
	}
	before := m.Raw(0, power.UnitIntReg)
	m.SetFrozen(0, true)
	if !m.Frozen(0) {
		t.Fatal("frozen flag")
	}
	// Thread 0 is sedated: no accesses, but its average must not decay
	// ("the period of inactivity will not artificially lower the
	// weighted average").
	for i := 0; i < 500; i++ {
		act.Add(power.UnitIntReg, 1, 2000)
		m.Sample()
	}
	if m.Raw(0, power.UnitIntReg) != before {
		t.Error("frozen average changed")
	}
	// After resuming, the sedation gap must not be charged as a burst.
	m.SetFrozen(0, false)
	act.Add(power.UnitIntReg, 0, 100)
	m.Sample()
	if m.Raw(0, power.UnitIntReg) > before {
		t.Error("resume charged the idle gap")
	}
}

func TestCulpritSelection(t *testing.T) {
	m, act := newMon(t, 3)
	rates := []uint64{2000, 9000, 5000}
	for i := 0; i < 400; i++ {
		for tid, r := range rates {
			act.Add(power.UnitIntReg, tid, r)
		}
		m.Sample()
	}
	all := func(int) bool { return true }
	tid, ok := m.Culprit(power.UnitIntReg, all)
	if !ok || tid != 1 {
		t.Errorf("culprit = %d,%v want 1", tid, ok)
	}
	// Excluding the top thread picks the next.
	tid, ok = m.Culprit(power.UnitIntReg, func(t int) bool { return t != 1 })
	if !ok || tid != 2 {
		t.Errorf("second culprit = %d,%v want 2", tid, ok)
	}
	if _, ok := m.Culprit(power.UnitIntReg, func(int) bool { return false }); ok {
		t.Error("no eligible threads should return !ok")
	}
}

func TestFlatCulpritHidesBurstyAttacker(t *testing.T) {
	// The Section 3.2.1 failure mode: thread 0 is steady at 5/cycle;
	// thread 1 bursts at 12/cycle for a short window then idles. The
	// EWMA right after the burst identifies thread 1; the flat count
	// over the long period identifies thread 0.
	m, act := newMon(t, 2)
	m.Prime()
	for i := 0; i < 5000; i++ {
		act.Add(power.UnitIntReg, 0, 5000)
		if i >= 4800 { // recent short burst
			act.Add(power.UnitIntReg, 1, 12000)
		}
		m.Sample()
	}
	all := func(int) bool { return true }
	ewmaTid, _ := m.Culprit(power.UnitIntReg, all)
	flatTid, _ := m.FlatCulprit(power.UnitIntReg, all)
	if ewmaTid != 1 {
		t.Errorf("EWMA culprit = %d, want the bursting thread", ewmaTid)
	}
	if flatTid != 0 {
		t.Errorf("flat culprit = %d, want the steady thread (the metric's flaw)", flatTid)
	}
}

func TestMonitorValidation(t *testing.T) {
	act := power.NewActivity(1)
	bad := sedCfg()
	bad.SampleIntervalCycles = 0
	if _, err := NewMonitor(bad, act); err == nil {
		t.Error("zero interval should fail")
	}
	bad = sedCfg()
	bad.EWMAShift = 0
	if _, err := NewMonitor(bad, act); err == nil {
		t.Error("zero shift should fail")
	}
}

// fakeCtl is a CoreControl for engine tests.
type fakeCtl struct {
	n       int
	enabled []bool
	active  []bool
}

func newFakeCtl(n int) *fakeCtl {
	f := &fakeCtl{n: n, enabled: make([]bool, n), active: make([]bool, n)}
	for i := range f.enabled {
		f.enabled[i] = true
		f.active[i] = true
	}
	return f
}

func (f *fakeCtl) SetFetchEnabled(tid int, e bool) { f.enabled[tid] = e }
func (f *fakeCtl) Threads() int                    { return f.n }
func (f *fakeCtl) Active(tid int) bool             { return f.active[tid] }

// engineHarness bundles an engine with driveable inputs.
type engineHarness struct {
	t      *testing.T
	mon    *Monitor
	act    *power.Activity
	ctl    *fakeCtl
	eng    *Engine
	temps  [power.NumUnits]float64
	cycle  int64
	report []Report
}

func newHarness(t *testing.T, n int, cfg config.Sedation) *engineHarness {
	t.Helper()
	h := &engineHarness{t: t, ctl: newFakeCtl(n)}
	h.act = power.NewActivity(n)
	var err error
	h.mon, err = NewMonitor(cfg, h.act)
	if err != nil {
		t.Fatal(err)
	}
	h.eng, err = NewEngine(cfg, h.mon, h.ctl, 1000, func(r Report) { h.report = append(h.report, r) })
	if err != nil {
		t.Fatal(err)
	}
	for u := range h.temps {
		h.temps[u] = 350
	}
	return h
}

// feed gives each thread the given per-sample access count at IntReg
// for n samples.
func (h *engineHarness) feed(n int, counts ...uint64) {
	for i := 0; i < n; i++ {
		for tid, c := range counts {
			if !h.ctl.enabled[tid] {
				continue
			}
			h.act.Add(power.UnitIntReg, tid, c)
		}
		h.mon.Sample()
	}
}

func (h *engineHarness) tick() {
	h.cycle += 20000
	h.eng.Tick(h.cycle, func(u power.Unit) float64 { return h.temps[u] })
}

func TestEngineSedatesCulpritAndResumes(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 2, cfg)
	h.feed(200, 2000, 9000) // thread 1 is the aggressor
	h.temps[power.UnitIntReg] = cfg.UpperK + 0.2
	h.tick()
	if h.ctl.enabled[1] || !h.ctl.enabled[0] {
		t.Fatalf("culprit selection wrong: enabled=%v", h.ctl.enabled)
	}
	if !h.eng.Sedated(1) {
		t.Fatal("Sedated(1) should be true")
	}
	if len(h.report) != 1 || h.report[0].Thread != 1 || h.report[0].Unit != power.UnitIntReg {
		t.Fatalf("report = %+v", h.report)
	}
	if h.report[0].Rate < 8 {
		t.Errorf("reported rate %.1f, want ~9", h.report[0].Rate)
	}
	// Still above lower threshold: stays sedated.
	h.temps[power.UnitIntReg] = cfg.LowerK + 0.3
	h.tick()
	if h.ctl.enabled[1] {
		t.Fatal("resumed above the lower threshold")
	}
	// Cooled: resumes.
	h.temps[power.UnitIntReg] = cfg.LowerK - 0.1
	h.tick()
	if !h.ctl.enabled[1] {
		t.Fatal("did not resume at the lower threshold")
	}
	st := h.eng.Stats()
	if st.Sedations != 1 || st.Resumes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineReexaminationSedatesSecondCulprit(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 3, cfg)
	h.feed(200, 2000, 9000, 8000)
	h.temps[power.UnitIntReg] = cfg.UpperK + 0.5
	h.tick() // sedates thread 1
	if h.ctl.enabled[1] {
		t.Fatal("first culprit not sedated")
	}
	// Resource stays hot past 2x cooling time (2000 cycles; ticks are
	// 20000 cycles so the very next tick is past the deadline).
	h.tick()
	if h.ctl.enabled[2] {
		t.Fatal("second culprit not sedated at re-examination")
	}
	if h.ctl.enabled[1] {
		t.Fatal("first culprit must stay sedated")
	}
	if !h.ctl.enabled[0] {
		t.Fatal("last un-sedated thread must keep running")
	}
	// Even though still hot, the last thread is never sedated.
	h.tick()
	if !h.ctl.enabled[0] {
		t.Fatal("last-thread exception violated")
	}
	st := h.eng.Stats()
	if st.Reexaminations == 0 || st.LastThreadExceptions == 0 {
		t.Errorf("stats = %+v", st)
	}
	// Cooling resumes everyone sedated for the unit.
	h.temps[power.UnitIntReg] = cfg.LowerK - 0.5
	h.tick()
	if !h.ctl.enabled[1] || !h.ctl.enabled[2] {
		t.Fatal("resume-all failed")
	}
}

func TestEngineLastThreadExceptionSolo(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 1, cfg)
	h.feed(100, 9000)
	h.temps[power.UnitIntReg] = cfg.UpperK + 1
	h.tick()
	if !h.ctl.enabled[0] {
		t.Fatal("a solo thread must never be sedated")
	}
	if h.eng.Stats().LastThreadExceptions == 0 {
		t.Error("exception not counted")
	}
}

func TestEngineReleaseAll(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 2, cfg)
	h.feed(100, 2000, 9000)
	h.temps[power.UnitIntReg] = cfg.UpperK + 1
	h.tick()
	if h.ctl.enabled[1] {
		t.Fatal("setup: thread 1 should be sedated")
	}
	h.eng.ReleaseAll(h.cycle)
	if !h.ctl.enabled[1] {
		t.Fatal("ReleaseAll did not restore the thread")
	}
	if h.eng.Sedated(1) {
		t.Fatal("Sedated should be false after release")
	}
}

func TestEngineInactiveThreadsIneligible(t *testing.T) {
	cfg := sedCfg()
	h := newHarness(t, 2, cfg)
	h.ctl.active[1] = false
	h.feed(100, 9000, 0)
	h.temps[power.UnitIntReg] = cfg.UpperK + 1
	h.tick()
	// Only one active thread: last-thread exception.
	if !h.ctl.enabled[0] {
		t.Fatal("solo active thread sedated")
	}
}

func TestEngineAbsoluteThresholdMode(t *testing.T) {
	cfg := sedCfg()
	cfg.AbsoluteEWMAThreshold = 6
	h := newHarness(t, 2, cfg)
	h.feed(300, 8000, 2000)         // thread 0 above the absolute threshold
	h.temps[power.UnitIntReg] = 340 // temperature is ignored
	h.tick()
	if h.ctl.enabled[0] {
		t.Fatal("absolute mode should sedate above-threshold thread regardless of temperature")
	}
	if h.ctl.enabled[1] == false {
		t.Fatal("below-threshold thread sedated")
	}
	// Timed resume after the cooling period.
	h.cycle += 2000
	h.tick()
	if !h.ctl.enabled[0] {
		t.Fatal("absolute mode did not resume after the cooling period")
	}
}

func TestEngineValidation(t *testing.T) {
	m, _ := newMon(t, 2)
	ctl := newFakeCtl(2)
	if _, err := NewEngine(sedCfg(), m, ctl, 0, nil); err == nil {
		t.Error("zero cooling time should fail")
	}
	bad := sedCfg()
	bad.UpperK, bad.LowerK = 350, 355
	if _, err := NewEngine(bad, m, ctl, 1000, nil); err == nil {
		t.Error("inverted thresholds should fail")
	}
	if _, err := NewEngine(sedCfg(), m, newFakeCtl(3), 1000, nil); err == nil {
		t.Error("thread-count mismatch should fail")
	}
	// ExpectedCoolingCycles override wins.
	cfg := sedCfg()
	cfg.ExpectedCoolingCycles = 777
	e, err := NewEngine(cfg, m, ctl, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.reexamineDelay() != int64(cfg.ReexamineFactor*777) {
		t.Errorf("re-examination delay %d", e.reexamineDelay())
	}
}
