package core

import (
	"fmt"
	"slices"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// MonitorState is the serializable state of the sedation monitor: the
// per-thread sample baselines, weighted-average registers, flat-average
// baselines, and freeze flags.
type MonitorState struct {
	Last     [][power.NumUnits]uint64
	EWMA     [][power.NumUnits]int64
	FlatBase [][power.NumUnits]uint64
	Frozen   []bool
}

// EngineState is the serializable state of the sedation engine: which
// threads are sedated for which resource, the hot flags and
// re-examination deadlines, the absolute-ablation timers, and the event
// counters. The wiring (monitor, core control, report sink) stays with
// the live engine.
type EngineState struct {
	SedatedFor      [power.NumUnits][]int
	Sedations       []int
	Hot             [power.NumUnits]bool
	ReexamineAt     [power.NumUnits]int64
	AbsSedatedUntil []int64
	Stats           Stats
}

// Clone returns a deep copy of the monitor state.
func (st MonitorState) Clone() MonitorState {
	return MonitorState{
		Last:     slices.Clone(st.Last),
		EWMA:     slices.Clone(st.EWMA),
		FlatBase: slices.Clone(st.FlatBase),
		Frozen:   slices.Clone(st.Frozen),
	}
}

// Clone returns a deep copy of the engine state.
func (st EngineState) Clone() EngineState {
	out := st
	out.Sedations = slices.Clone(st.Sedations)
	out.AbsSedatedUntil = slices.Clone(st.AbsSedatedUntil)
	for u := range out.SedatedFor {
		out.SedatedFor[u] = slices.Clone(st.SedatedFor[u])
	}
	return out
}

// Snapshot returns a deep copy of the monitor's state.
func (m *Monitor) Snapshot() MonitorState {
	return MonitorState{
		Last:     append([][power.NumUnits]uint64(nil), m.last...),
		EWMA:     append([][power.NumUnits]int64(nil), m.ewma...),
		FlatBase: append([][power.NumUnits]uint64(nil), m.flatBase...),
		Frozen:   append([]bool(nil), m.frozen...),
	}
}

// Restore loads st into m. The context count must match.
func (m *Monitor) Restore(st MonitorState) error {
	n := m.nthreads
	if len(st.Last) != n || len(st.EWMA) != n || len(st.FlatBase) != n || len(st.Frozen) != n {
		return fmt.Errorf("core: monitor state has %d/%d/%d/%d contexts, want %d",
			len(st.Last), len(st.EWMA), len(st.FlatBase), len(st.Frozen), n)
	}
	copy(m.last, st.Last)
	copy(m.ewma, st.EWMA)
	copy(m.flatBase, st.FlatBase)
	copy(m.frozen, st.Frozen)
	return nil
}

// Snapshot returns a deep copy of the engine's state.
func (e *Engine) Snapshot() EngineState {
	st := EngineState{
		Sedations:       append([]int(nil), e.sedations...),
		Hot:             e.hot,
		ReexamineAt:     e.reexamineAt,
		AbsSedatedUntil: append([]int64(nil), e.absSedatedUntil...),
		Stats:           e.stats,
	}
	for u := range st.SedatedFor {
		if len(e.sedatedFor[u]) > 0 {
			st.SedatedFor[u] = append([]int(nil), e.sedatedFor[u]...)
		}
	}
	return st
}

// Restore loads st into e. The context count must match. It restores
// only the engine's own fields: the side effects of past sedations
// (fetch gating in the core, frozen monitor averages) live in those
// components' own states and are restored with them.
func (e *Engine) Restore(st EngineState) error {
	n := len(e.sedations)
	if len(st.Sedations) != n || len(st.AbsSedatedUntil) != n {
		return fmt.Errorf("core: engine state has %d/%d contexts, want %d",
			len(st.Sedations), len(st.AbsSedatedUntil), n)
	}
	for u := range e.sedatedFor {
		e.sedatedFor[u] = append(e.sedatedFor[u][:0], st.SedatedFor[u]...)
	}
	copy(e.sedations, st.Sedations)
	e.hot = st.Hot
	e.reexamineAt = st.ReexamineAt
	copy(e.absSedatedUntil, st.AbsSedatedUntil)
	e.stats = st.Stats
	return nil
}
