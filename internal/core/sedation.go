package core

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// CoreControl is the slice of the pipeline the sedation engine drives.
type CoreControl interface {
	// SetFetchEnabled gates one thread's fetch stage.
	SetFetchEnabled(tid int, enabled bool)
	// Threads returns the number of hardware contexts.
	Threads() int
	// Active reports whether a context is running a program.
	Active(tid int) bool
}

// Report is the notification sent to the operating system when a thread
// is sedated (Section 3.2.2: "we also report the offending threads to
// the operating system").
type Report struct {
	Cycle int64
	Unit  power.Unit
	// Thread is the hardware context identified as the culprit.
	Thread int
	// Rate is the thread's weighted-average access rate (per cycle) at
	// the triggering resource.
	Rate float64
}

// Stats counts engine events.
type Stats struct {
	// Sedations is the number of sedation actions taken.
	Sedations uint64
	// Resumes is the number of lower-threshold resume events.
	Resumes uint64
	// Reexaminations counts the 2x-cooling-time re-checks that found
	// the resource still hot and sedated an additional thread.
	Reexaminations uint64
	// LastThreadExceptions counts triggers ignored because only one
	// un-sedated thread remained (it cannot degrade anyone else).
	LastThreadExceptions uint64
}

// Engine is the selective-sedation state machine of Section 3.2.2. Each
// resource has an upper temperature threshold (just below the emergency
// temperature) and a lower threshold (just above normal operating
// temperature):
//
//   - upper crossed -> sedate the un-sedated thread with the highest
//     weighted average at that resource;
//   - after ReexamineFactor x the expected cooling time, if the
//     resource is still above the lower threshold and un-sedated
//     threads remain, sedate the next culprit;
//   - lower reached -> resume every thread sedated for that resource;
//   - the last un-sedated thread is never sedated (it cannot degrade
//     any other thread; the stop-and-go safety net catches it).
type Engine struct {
	cfg           config.Sedation
	mon           *Monitor
	ctl           CoreControl
	coolingCycles int64

	// sedatedFor[u] lists threads sedated because of unit u.
	sedatedFor [power.NumUnits][]int
	// sedations[tid] counts how many resources currently hold tid
	// sedated; fetch re-enables only at zero.
	sedations []int
	// hot[u] is true between an upper trigger and the lower resume.
	hot         [power.NumUnits]bool
	reexamineAt [power.NumUnits]int64
	// absSedatedUntil implements the absolute-threshold ablation: a
	// timed per-thread sedation independent of temperature.
	absSedatedUntil []int64

	report func(Report)
	stats  Stats
	// events, when set, receives the typed DTM timeline (threshold
	// crossings, sedation start/end, OS reports). Nil drops them.
	events *telemetry.EventLog
}

// NewEngine builds the engine. coolingCycles is the expected cooling
// time of a resource in cycles (used for the re-examination delay); if
// cfg.ExpectedCoolingCycles is set it wins. report may be nil.
func NewEngine(cfg config.Sedation, mon *Monitor, ctl CoreControl, coolingCycles int64, report func(Report)) (*Engine, error) {
	if cfg.ExpectedCoolingCycles > 0 {
		coolingCycles = cfg.ExpectedCoolingCycles
	}
	if coolingCycles <= 0 {
		return nil, fmt.Errorf("core: expected cooling time must be positive, got %d", coolingCycles)
	}
	if cfg.UpperK <= cfg.LowerK {
		return nil, fmt.Errorf("core: upper threshold %g K must exceed lower %g K", cfg.UpperK, cfg.LowerK)
	}
	if mon.Threads() != ctl.Threads() {
		return nil, fmt.Errorf("core: monitor tracks %d threads, core has %d", mon.Threads(), ctl.Threads())
	}
	return &Engine{
		cfg:             cfg,
		mon:             mon,
		ctl:             ctl,
		coolingCycles:   coolingCycles,
		sedations:       make([]int, ctl.Threads()),
		absSedatedUntil: make([]int64, ctl.Threads()),
		report:          report,
	}, nil
}

// Stats returns the engine's event counters.
func (e *Engine) Stats() Stats { return e.stats }

// SetEvents wires the engine's typed event stream (nil to disable).
func (e *Engine) SetEvents(log *telemetry.EventLog) { e.events = log }

// Sedated reports whether thread tid is currently sedated.
func (e *Engine) Sedated(tid int) bool { return e.sedations[tid] > 0 }

// Tick runs the per-sensor-interval policy. temp returns the current
// die temperature of a unit's block.
func (e *Engine) Tick(cycle int64, temp func(power.Unit) float64) {
	if e.cfg.AbsoluteEWMAThreshold > 0 {
		e.tickAbsolute(cycle)
		return
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		t := temp(u)
		if !e.hot[u] {
			if t >= e.cfg.UpperK {
				e.hot[u] = true
				e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindThresholdUpper,
					Unit: u.String(), Thread: -1, TempK: t})
				e.sedateCulprit(cycle, u, t, false)
				e.reexamineAt[u] = cycle + e.reexamineDelay()
			}
			continue
		}
		if t <= e.cfg.LowerK {
			e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindThresholdLower,
				Unit: u.String(), Thread: -1, TempK: t})
			e.resumeAll(cycle, u)
			continue
		}
		if cycle >= e.reexamineAt[u] {
			// Still hot after 2x the expected cooling time: another
			// thread must also have a power-density problem.
			e.sedateCulprit(cycle, u, t, true)
			e.reexamineAt[u] = cycle + e.reexamineDelay()
		}
	}
}

// tickAbsolute implements the Section 3.2.1 strawman: any thread whose
// weighted average at any resource exceeds a fixed rate is sedated for
// one cooling period, regardless of temperature.
func (e *Engine) tickAbsolute(cycle int64) {
	for tid := 0; tid < e.ctl.Threads(); tid++ {
		if !e.ctl.Active(tid) {
			continue
		}
		if e.sedations[tid] > 0 {
			if cycle >= e.absSedatedUntil[tid] {
				e.sedations[tid] = 0
				e.ctl.SetFetchEnabled(tid, true)
				e.mon.SetFrozen(tid, false)
				e.stats.Resumes++
				e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindResume, Thread: tid})
			}
			continue
		}
		if e.unsedatedActive() <= 1 {
			continue
		}
		for u := power.Unit(0); u < power.NumUnits; u++ {
			if e.mon.Rate(tid, u) >= e.cfg.AbsoluteEWMAThreshold {
				e.stats.Sedations++
				e.sedations[tid] = 1
				e.absSedatedUntil[tid] = cycle + e.coolingCycles
				e.ctl.SetFetchEnabled(tid, false)
				e.mon.SetFrozen(tid, true)
				e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindSedate,
					Unit: u.String(), Thread: tid, Rate: e.mon.Rate(tid, u)})
				if e.report != nil {
					e.report(Report{Cycle: cycle, Unit: u, Thread: tid, Rate: e.mon.Rate(tid, u)})
				}
				break
			}
		}
	}
}

func (e *Engine) reexamineDelay() int64 {
	return int64(e.cfg.ReexamineFactor * float64(e.coolingCycles))
}

// unsedatedActive counts running threads not currently sedated.
func (e *Engine) unsedatedActive() int {
	n := 0
	for tid := 0; tid < e.ctl.Threads(); tid++ {
		if e.ctl.Active(tid) && e.sedations[tid] == 0 {
			n++
		}
	}
	return n
}

func (e *Engine) sedateCulprit(cycle int64, u power.Unit, tempK float64, reexamine bool) {
	// Last-thread exception: with a single un-sedated thread left, no
	// other thread can be degraded; let it run and rely on the
	// stop-and-go safety net.
	if e.unsedatedActive() <= 1 {
		e.stats.LastThreadExceptions++
		return
	}
	eligible := func(t int) bool { return e.ctl.Active(t) && e.sedations[t] == 0 }
	var tid int
	var ok bool
	if e.cfg.UseFlatAverage {
		tid, ok = e.mon.FlatCulprit(u, eligible)
	} else {
		tid, ok = e.mon.Culprit(u, eligible)
	}
	if !ok {
		return
	}
	if reexamine {
		e.stats.Reexaminations++
	}
	e.stats.Sedations++
	rate := e.mon.Rate(tid, u)
	e.sedatedFor[u] = append(e.sedatedFor[u], tid)
	e.sedations[tid]++
	if e.sedations[tid] == 1 {
		e.ctl.SetFetchEnabled(tid, false)
		e.mon.SetFrozen(tid, true)
	}
	e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindSedate,
		Unit: u.String(), Thread: tid, TempK: tempK, Rate: rate})
	if e.report != nil {
		e.report(Report{Cycle: cycle, Unit: u, Thread: tid, Rate: rate})
	}
}

// resumeAll restores every thread sedated for unit u.
func (e *Engine) resumeAll(cycle int64, u power.Unit) {
	e.hot[u] = false
	if len(e.sedatedFor[u]) == 0 {
		return
	}
	e.stats.Resumes++
	for _, tid := range e.sedatedFor[u] {
		e.sedations[tid]--
		if e.sedations[tid] == 0 {
			e.ctl.SetFetchEnabled(tid, true)
			e.mon.SetFrozen(tid, false)
			e.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindResume,
				Unit: u.String(), Thread: tid})
		}
	}
	e.sedatedFor[u] = e.sedatedFor[u][:0]
}

// ReleaseAll restores every sedated thread on every resource; the
// stop-and-go safety net calls it when the pipeline halts globally
// ("restoring all sedated threads to normal execution"). cycle stamps
// the resulting resume events.
func (e *Engine) ReleaseAll(cycle int64) {
	for u := power.Unit(0); u < power.NumUnits; u++ {
		e.resumeAll(cycle, u)
	}
}
