package config

import "testing"

func TestDefaultValidates(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	p := Paper()
	if err := p.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	if p.Thermal.Scale != 1 || p.Run.QuantumCycles != 500_000_000 {
		t.Error("paper config should use the full time base")
	}
	if cfg.Thermal.Scale == 1 {
		t.Error("default config should use a reproduction scale")
	}
}

func TestTable1Values(t *testing.T) {
	p := Paper()
	checks := []struct {
		name string
		got  interface{}
		want interface{}
	}{
		{"issue width", p.Pipeline.IssueWidth, 6},
		{"RUU", p.Pipeline.RUUSize, 128},
		{"LSQ", p.Pipeline.LSQSize, 32},
		{"contexts", p.Pipeline.Contexts, 2},
		{"mem ports", p.Pipeline.MemPorts, 2},
		{"L1 size", p.Memory.L1I.SizeBytes, 64 << 10},
		{"L1 assoc", p.Memory.L1D.Assoc, 4},
		{"L1 latency", p.Memory.L1D.LatencyCycles, 2},
		{"L2 size", p.Memory.L2.SizeBytes, 2 << 20},
		{"L2 assoc", p.Memory.L2.Assoc, 8},
		{"L2 latency", p.Memory.L2.LatencyCycles, 12},
		{"memory latency", p.Memory.MemLatency, 300},
		{"Vdd", p.Power.Vdd, 1.1},
		{"frequency", p.Power.FrequencyHz, 4e9},
		{"convection", p.Thermal.ConvectionRes, 0.8},
		{"sink thickness", p.Thermal.HeatSinkThicknessM, 6.9e-3},
		{"cooling time", p.Thermal.CoolingTimeMs, 10.0},
		{"sensor interval", p.Thermal.SensorIntervalCycles, 20_000},
		{"sample interval", p.Sedation.SampleIntervalCycles, 1000},
		{"upper", p.Sedation.UpperK, 356.0},
		{"lower", p.Sedation.LowerK, 355.0},
		{"reexamine", p.Sedation.ReexamineFactor, 2.0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if p.Thermal.EmergencyK < 358 || p.Thermal.EmergencyK > 359 {
		t.Errorf("emergency %v, want 358-358.5", p.Thermal.EmergencyK)
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Pipeline.FetchWidth = 0 },
		func(c *Config) { c.Pipeline.FetchThreads = 0 },
		func(c *Config) { c.Pipeline.FetchThreads = c.Pipeline.Contexts + 1 },
		func(c *Config) { c.Pipeline.IssueWidth = -1 },
		func(c *Config) { c.Pipeline.CommitWidth = 0 },
		func(c *Config) { c.Pipeline.RUUSize = 0 },
		func(c *Config) { c.Pipeline.LSQSize = 0 },
		func(c *Config) { c.Pipeline.Contexts = 0 },
		func(c *Config) { c.Pipeline.MemPorts = 0 },
		func(c *Config) { c.Pipeline.IntALUs = 0 },
		func(c *Config) { c.Memory.L1I.LineBytes = 60 },
		func(c *Config) { c.Memory.L1D.SizeBytes = 0 },
		func(c *Config) { c.Memory.L2.SizeBytes = 3 << 20 },
		func(c *Config) { c.Memory.MemLatency = 0 },
		func(c *Config) { c.Bpred.Kind = "psychic" },
		func(c *Config) { c.Bpred.TableBits = 0 },
		func(c *Config) { c.Power.Vdd = 0 },
		func(c *Config) { c.Thermal.ConvectionRes = 0 },
		func(c *Config) { c.Thermal.SensorIntervalCycles = 0 },
		func(c *Config) { c.Thermal.Scale = 0 },
		func(c *Config) { c.Thermal.EmergencyK = c.Thermal.AmbientK - 1 },
		func(c *Config) { c.Thermal.StopGoResumeK = c.Thermal.EmergencyK + 1 },
		func(c *Config) { c.Sedation.SampleIntervalCycles = 0 },
		func(c *Config) { c.Sedation.EWMAShift = 0 },
		func(c *Config) { c.Sedation.EWMAShift = 40 },
		func(c *Config) { c.Sedation.UpperK = c.Sedation.LowerK - 1 },
		func(c *Config) { c.Sedation.UpperK = c.Thermal.EmergencyK + 1 },
		func(c *Config) { c.Sedation.ReexamineFactor = 0.5 },
		func(c *Config) { c.Run.QuantumCycles = 0 },
		func(c *Config) { c.Topology.Cores = 0 },
		func(c *Config) { c.Topology.Cores = MaxCores + 1; c.Topology.Solver = SolverGrid },
		func(c *Config) { c.Topology.Cores = 2 }, // lumped solver is single-core only
		func(c *Config) { c.Topology.Solver = "spice" },
		func(c *Config) { c.Topology.Solver = SolverGrid; c.Topology.GridN = 4 },
		func(c *Config) { c.Topology.Solver = SolverGrid; c.Topology.GridN = 512 },
	}
	for i, mutate := range mutations {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
}

func TestCacheGeometry(t *testing.T) {
	g := CacheGeom{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2}
	if g.Sets() != 256 {
		t.Errorf("sets = %d", g.Sets())
	}
}

func TestEWMAWindow(t *testing.T) {
	s := Default().Sedation
	// x = 1/64 with 1000-cycle samples: ~64k-cycle memory.
	if got := s.EWMAWindowCycles(); got != int64(s.SampleIntervalCycles)<<s.EWMAShift {
		t.Errorf("window = %d", got)
	}
}
