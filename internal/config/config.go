// Package config defines the simulated machine: every architectural,
// power, and thermal parameter from Table 1 of the paper, plus the
// knobs for the selective-sedation mechanism (Section 3.2) and the
// reproduction-only scaling controls documented in DESIGN.md.
package config

import (
	"fmt"
	"math/bits"
)

// Pipeline holds the architectural parameters of the SMT core
// (Table 1, "Architectural Parameters").
type Pipeline struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int
	// FetchThreads is the maximum number of threads fetched from in a
	// single cycle (the paper's simulator fetches from two threads every
	// cycle under ICOUNT).
	FetchThreads int
	// FetchPolicy selects fetch arbitration: "icount" (default, fewest
	// instructions in flight first, [Tullsen et al.]) or "rr" (strict
	// round-robin; an ablation that removes ICOUNT's throughput bias).
	FetchPolicy string
	// DecodeWidth is the maximum instructions renamed/dispatched per cycle.
	DecodeWidth int
	// IssueWidth is the maximum instructions issued to functional units
	// per cycle (Table 1: "Instruction issue 6, out-of-order").
	IssueWidth int
	// CommitWidth is the maximum instructions retired per cycle.
	CommitWidth int
	// RUUSize is the number of register-update-unit entries (shared
	// reorder buffer + issue queue, SimpleScalar style). Table 1: 128.
	RUUSize int
	// LSQSize is the number of load/store queue entries. Table 1: 32.
	LSQSize int
	// Contexts is the number of SMT hardware contexts. Table 1: 2.
	Contexts int
	// MemPorts is the number of cache ports for loads/stores. Table 1: 2.
	MemPorts int
	// IntALUs, IntMulDiv, FPALUs, FPMulDiv size the functional-unit pool.
	IntALUs   int
	IntMulDiv int
	FPALUs    int
	FPMulDiv  int
	// SquashOnL2Miss enables the common SMT optimization the paper's
	// simulator implements: a thread whose load misses in the L2 is
	// squashed past the miss so it cannot fill the issue queue.
	SquashOnL2Miss bool
}

// CacheGeom describes one cache level.
type CacheGeom struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// LineBytes is the block size in bytes.
	LineBytes int
	// Assoc is the set associativity.
	Assoc int
	// LatencyCycles is the hit latency in cycles.
	LatencyCycles int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheGeom) Sets() int { return c.SizeBytes / (c.LineBytes * c.Assoc) }

// Memory describes the cache hierarchy and off-chip memory
// (Table 1: 64KB 4-way I & D 2-cycle; 2MB 8-way shared L2 12-cycle;
// 300-cycle off-chip latency).
type Memory struct {
	L1I            CacheGeom
	L1D            CacheGeom
	L2             CacheGeom
	MemLatency     int
	MemInterleave  int // independent memory banks (1 = fully serialized)
	WritebackDirty bool
}

// Bpred describes the branch predictor.
type Bpred struct {
	// Kind selects the predictor: "bimodal", "gshare", or "tournament".
	Kind string
	// TableBits is log2 of the pattern-history table size.
	TableBits int
	// BTBEntries and BTBAssoc size the branch target buffer.
	BTBEntries int
	BTBAssoc   int
	// RASEntries sizes the return-address stack.
	RASEntries int
	// MispredictPenalty is the extra front-end redirect latency in cycles.
	MispredictPenalty int
}

// Power holds the circuit parameters of Table 1 ("Power Density
// Parameters") plus the activity-energy calibration used by the
// Wattch-like model.
type Power struct {
	// Vdd is the supply voltage in volts (Table 1: 1.1 V).
	Vdd float64
	// FrequencyHz is the clock frequency (Table 1: 4 GHz).
	FrequencyHz float64
	// EnergyScale multiplies every per-access energy; used only for
	// calibration experiments.
	EnergyScale float64
	// LeakageWPerMM2 is static power density applied to every block.
	LeakageWPerMM2 float64
}

// Thermal holds the package parameters of Table 1 and the sensor setup.
type Thermal struct {
	// AmbientK is the ambient air temperature in kelvin.
	AmbientK float64
	// ConvectionRes is the heat-sink convection resistance in K/W
	// (Table 1: 0.8 K/W, air-cooled high-performance system).
	ConvectionRes float64
	// HeatSinkThicknessM is the sink base thickness in meters
	// (Table 1: 6.9 mm).
	HeatSinkThicknessM float64
	// DieThicknessM is the silicon die thickness in meters.
	DieThicknessM float64
	// DieCapFactor scales every die-block heat capacitance; >1 lumps
	// TIM and local spreader mass into the block node (fitted).
	DieCapFactor float64
	// SpreaderCapFactor scales the per-block spreader-section
	// capacitance (the spreader is wider than the die block above it).
	SpreaderCapFactor float64
	// SpreadToSinkK sets each spreader section's resistance to the sink
	// as SpreadToSinkK/sqrt(blockArea) (spreading-resistance form).
	SpreadToSinkK float64
	// SinkCapJPerK is the heat sink's lumped capacitance.
	SinkCapJPerK float64
	// SensorIntervalCycles is how often temperature sensors are read
	// (paper: every 20,000 cycles, well under any thermal RC constant).
	SensorIntervalCycles int
	// EmergencyK is the highest allowable operating temperature
	// (paper: 358 K / 358.5 K); reaching it engages the stop-and-go
	// safety net.
	EmergencyK float64
	// StopGoResumeK is the temperature the pipeline is expected to be
	// back near after a cooling period (normal operating temperature,
	// paper: ~354 K). The DVS baseline releases its throttle at it.
	StopGoResumeK float64
	// CoolingTimeMs is the thermal-RC cooling time of Table 1 (10 ms):
	// stop-and-go stalls the pipeline for this fixed duration after an
	// emergency ("once this cooling time has elapsed, activity at the
	// component can be resumed", Section 2.1), and selective sedation
	// derives its re-examination delay from it. Scaled by Scale.
	CoolingTimeMs float64
	// IdealSink, when true, models a package with an infinite heat
	// removal rate: temperatures never rise above the initial operating
	// point. Used for the "ideal heat-sink" bars of Figure 5.
	IdealSink bool
	// Scale divides every thermal capacitance, speeding heating and
	// cooling uniformly so experiments finish quickly. Scale 1 is the
	// paper's physical time base. Duty cycles (and hence all relative
	// results) are invariant; see DESIGN.md §6.
	Scale float64
	// InitialK is the die temperature at the start of a quantum. The
	// zero value means "start at the steady idle temperature".
	InitialK float64
}

// Sedation holds the parameters of the paper's contribution,
// selective sedation (Section 3.2).
type Sedation struct {
	// SampleIntervalCycles is the access-rate sampling period
	// (paper: 1000 cycles).
	SampleIntervalCycles int
	// EWMAShift encodes the weighting factor x = 1/2^EWMAShift. The
	// paper uses x = 1/64 .. 1/128 (shift 6..7) so the multiply reduces
	// to a shift.
	EWMAShift uint
	// UpperK is the upper temperature threshold: crossing it triggers
	// culprit identification and sedation (paper: 356 K).
	UpperK float64
	// LowerK is the lower threshold: cooling to it restores sedated
	// threads (paper: 355 K).
	LowerK float64
	// ReexamineFactor multiplies the expected cooling time to produce
	// the re-examination delay for additional culprits (paper: 2x).
	ReexamineFactor float64
	// ExpectedCoolingCycles is the expected cooling time of a resource
	// used to size the re-examination delay. The zero value derives it
	// from the thermal RC constants.
	ExpectedCoolingCycles int64
	// UseFlatAverage is an ablation switch (Section 3.2.1 argues
	// against it): identify culprits by total access count since the
	// quantum began instead of by weighted average. A bursty attacker
	// hides below a steady normal thread under this metric.
	UseFlatAverage bool
	// AbsoluteEWMAThreshold is an ablation switch (Section 3.2.1
	// argues against it): when positive, sedate any thread whose
	// weighted average at any resource exceeds this rate (accesses per
	// cycle), ignoring temperature. Normal programs' bursts then cause
	// false positives.
	AbsoluteEWMAThreshold float64
}

// Topology describes the die: how many SMT cores share it and which
// thermal solver models it. The paper studies one core on a lumped
// per-block RC network; multi-core dies (cross-core heat coupling,
// the neighbor-heat attack) require the grid solver. See DESIGN.md §15.
type Topology struct {
	// Cores is the number of SMT cores tiled onto the die. 1 is the
	// paper's machine; K>1 tiles K copies of the core floorplan above a
	// shared L2 spine (floorplan.NewDie).
	Cores int
	// Solver selects the thermal model: "lumped" (the paper's per-block
	// RC network, single-core only, byte-identical fast path) or "grid"
	// (HotSpot-style 2D stencil, any core count).
	Solver string
	// GridN is the grid solver's cell count along the die's height —
	// one core tile's edge, so per-core resolution is independent of
	// the core count (the width scales by aspect ratio). 0 means the
	// default of 32; the thermal time step shrinks with cell area, so
	// larger grids cost proportionally more substeps per sensor read.
	GridN int
}

// Run holds per-run controls.
type Run struct {
	// QuantumCycles is the length of one OS quantum in cycles
	// (paper: 500 M cycles at 4 GHz ~ one scheduler quantum).
	QuantumCycles int64
	// Seed seeds every stochastic component (workload generation).
	Seed int64
}

// Config is the complete machine + run description.
type Config struct {
	Pipeline Pipeline
	Memory   Memory
	Bpred    Bpred
	Power    Power
	Thermal  Thermal
	Sedation Sedation
	Topology Topology
	Run      Run
}

// Default returns the paper's Table 1 configuration with the
// reproduction defaults documented in DESIGN.md (thermal scale 16,
// 4 M-cycle quantum; use Paper() for the full-scale run).
func Default() Config {
	cfg := Paper()
	cfg.Thermal.Scale = 16
	cfg.Run.QuantumCycles = 4_000_000
	return cfg
}

// Paper returns the configuration exactly as in Table 1 of the paper:
// unscaled thermal constants and a 500 M-cycle quantum.
func Paper() Config {
	return Config{
		Pipeline: Pipeline{
			FetchWidth:     8,
			FetchThreads:   2,
			FetchPolicy:    "icount",
			DecodeWidth:    8,
			IssueWidth:     6,
			CommitWidth:    6,
			RUUSize:        128,
			LSQSize:        32,
			Contexts:       2,
			MemPorts:       2,
			IntALUs:        6,
			IntMulDiv:      1,
			FPALUs:         2,
			FPMulDiv:       1,
			SquashOnL2Miss: true,
		},
		Memory: Memory{
			L1I:            CacheGeom{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2},
			L1D:            CacheGeom{SizeBytes: 64 << 10, LineBytes: 64, Assoc: 4, LatencyCycles: 2},
			L2:             CacheGeom{SizeBytes: 2 << 20, LineBytes: 128, Assoc: 8, LatencyCycles: 12},
			MemLatency:     300,
			MemInterleave:  4,
			WritebackDirty: true,
		},
		Bpred: Bpred{
			Kind:              "tournament",
			TableBits:         12,
			BTBEntries:        2048,
			BTBAssoc:          4,
			RASEntries:        16,
			MispredictPenalty: 3,
		},
		Power: Power{
			Vdd:            1.1,
			FrequencyHz:    4e9,
			EnergyScale:    1.0,
			LeakageWPerMM2: 0.5,
		},
		Thermal: Thermal{
			AmbientK:             315,
			ConvectionRes:        0.8,
			HeatSinkThicknessM:   6.9e-3,
			DieThicknessM:        0.5e-3,
			DieCapFactor:         0.5,
			SpreaderCapFactor:    1,
			SpreadToSinkK:        5e-3,
			SinkCapJPerK:         300,
			CoolingTimeMs:        10,
			SensorIntervalCycles: 20_000,
			EmergencyK:           358.5,
			StopGoResumeK:        354,
			Scale:                1,
		},
		Sedation: Sedation{
			SampleIntervalCycles: 1000,
			EWMAShift:            6, // x = 1/64: ~0.5 M-cycle memory at 1000-cycle samples
			UpperK:               356,
			LowerK:               355,
			ReexamineFactor:      2,
		},
		Topology: Topology{
			Cores:  1,
			Solver: SolverLumped,
			GridN:  DefaultGridN,
		},
		Run: Run{
			QuantumCycles: 500_000_000,
			Seed:          1,
		},
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c *Config) Validate() error {
	p := c.Pipeline
	switch {
	case p.FetchWidth <= 0:
		return fmt.Errorf("config: fetch width %d must be positive", p.FetchWidth)
	case p.FetchThreads <= 0 || p.FetchThreads > p.Contexts:
		return fmt.Errorf("config: fetch threads %d must be in [1,%d]", p.FetchThreads, p.Contexts)
	case p.IssueWidth <= 0:
		return fmt.Errorf("config: issue width %d must be positive", p.IssueWidth)
	case p.CommitWidth <= 0:
		return fmt.Errorf("config: commit width %d must be positive", p.CommitWidth)
	case p.RUUSize <= 0:
		return fmt.Errorf("config: RUU size %d must be positive", p.RUUSize)
	case p.LSQSize <= 0:
		return fmt.Errorf("config: LSQ size %d must be positive", p.LSQSize)
	case p.Contexts <= 0:
		return fmt.Errorf("config: contexts %d must be positive", p.Contexts)
	case p.MemPorts <= 0:
		return fmt.Errorf("config: memory ports %d must be positive", p.MemPorts)
	case p.IntALUs <= 0 || p.FPALUs <= 0 || p.IntMulDiv <= 0 || p.FPMulDiv <= 0:
		return fmt.Errorf("config: every functional-unit count must be positive")
	}
	switch p.FetchPolicy {
	case "", "icount", "rr":
	default:
		return fmt.Errorf("config: unknown fetch policy %q", p.FetchPolicy)
	}
	for _, g := range []struct {
		name string
		g    CacheGeom
	}{{"L1I", c.Memory.L1I}, {"L1D", c.Memory.L1D}, {"L2", c.Memory.L2}} {
		if err := validateCache(g.name, g.g); err != nil {
			return err
		}
	}
	if c.Memory.MemLatency <= 0 {
		return fmt.Errorf("config: memory latency %d must be positive", c.Memory.MemLatency)
	}
	if n := c.Memory.MemInterleave; n > 1 && n&(n-1) != 0 {
		return fmt.Errorf("config: memory interleave %d must be a power of two", n)
	}
	switch c.Bpred.Kind {
	case "bimodal", "gshare", "tournament":
	default:
		return fmt.Errorf("config: unknown branch predictor %q", c.Bpred.Kind)
	}
	if c.Bpred.TableBits <= 0 || c.Bpred.TableBits > 24 {
		return fmt.Errorf("config: predictor table bits %d out of range", c.Bpred.TableBits)
	}
	if c.Power.Vdd <= 0 || c.Power.FrequencyHz <= 0 {
		return fmt.Errorf("config: Vdd and frequency must be positive")
	}
	t := c.Thermal
	switch {
	case t.ConvectionRes <= 0:
		return fmt.Errorf("config: convection resistance %g must be positive", t.ConvectionRes)
	case t.SensorIntervalCycles <= 0:
		return fmt.Errorf("config: sensor interval %d must be positive", t.SensorIntervalCycles)
	case t.Scale <= 0:
		return fmt.Errorf("config: thermal scale %g must be positive", t.Scale)
	case t.EmergencyK <= t.AmbientK:
		return fmt.Errorf("config: emergency temperature %g K must exceed ambient %g K", t.EmergencyK, t.AmbientK)
	case t.StopGoResumeK >= t.EmergencyK:
		return fmt.Errorf("config: stop-and-go resume temperature %g K must be below emergency %g K", t.StopGoResumeK, t.EmergencyK)
	}
	s := c.Sedation
	switch {
	case s.SampleIntervalCycles <= 0:
		return fmt.Errorf("config: sedation sample interval %d must be positive", s.SampleIntervalCycles)
	case s.EWMAShift == 0 || s.EWMAShift > 16:
		return fmt.Errorf("config: EWMA shift %d out of range [1,16]", s.EWMAShift)
	case s.UpperK <= s.LowerK:
		return fmt.Errorf("config: upper threshold %g K must exceed lower threshold %g K", s.UpperK, s.LowerK)
	case s.UpperK >= t.EmergencyK:
		return fmt.Errorf("config: upper threshold %g K must be below emergency %g K", s.UpperK, t.EmergencyK)
	case s.ReexamineFactor < 1:
		return fmt.Errorf("config: re-examination factor %g must be at least 1", s.ReexamineFactor)
	}
	top := c.Topology
	switch {
	case top.Cores < 1:
		return fmt.Errorf("config: core count %d must be at least 1", top.Cores)
	case top.Cores > MaxCores:
		return fmt.Errorf("config: core count %d exceeds maximum %d", top.Cores, MaxCores)
	}
	switch top.Solver {
	case SolverLumped:
		if top.Cores != 1 {
			return fmt.Errorf("config: the lumped solver models a single core; use solver %q for %d cores", SolverGrid, top.Cores)
		}
	case SolverGrid:
	default:
		return fmt.Errorf("config: unknown thermal solver %q (want %q or %q)", top.Solver, SolverLumped, SolverGrid)
	}
	if n := top.GridN; n != 0 && (n < 8 || n > 256) {
		return fmt.Errorf("config: grid resolution %d out of range [8,256]", n)
	}
	if c.Run.QuantumCycles <= 0 {
		return fmt.Errorf("config: quantum %d cycles must be positive", c.Run.QuantumCycles)
	}
	return nil
}

// Thermal solver names accepted by Topology.Solver.
const (
	SolverLumped = "lumped"
	SolverGrid   = "grid"
)

// DefaultGridN is the grid solver's default resolution along the die's
// height (one core tile's edge); MaxCores bounds the die tiling.
const (
	DefaultGridN = 32
	MaxCores     = 8
)

// EffectiveGridN resolves the zero value of GridN to the default.
func (t Topology) EffectiveGridN() int {
	if t.GridN == 0 {
		return DefaultGridN
	}
	return t.GridN
}

func validateCache(name string, g CacheGeom) error {
	switch {
	case g.SizeBytes <= 0 || g.LineBytes <= 0 || g.Assoc <= 0:
		return fmt.Errorf("config: %s geometry must be positive", name)
	case bits.OnesCount(uint(g.LineBytes)) != 1:
		return fmt.Errorf("config: %s line size %d must be a power of two", name, g.LineBytes)
	case g.SizeBytes%(g.LineBytes*g.Assoc) != 0:
		return fmt.Errorf("config: %s size %d not divisible by line*assoc", name, g.SizeBytes)
	case bits.OnesCount(uint(g.Sets())) != 1:
		return fmt.Errorf("config: %s set count %d must be a power of two", name, g.Sets())
	case g.LatencyCycles <= 0:
		return fmt.Errorf("config: %s latency must be positive", name)
	}
	return nil
}

// EWMAWindowCycles returns the effective memory of the weighted average
// in cycles: with weight x per sample the average remembers roughly 1/x
// samples (paper §3.2.1: x = 1/64 with 1000-cycle samples captures a
// ~0.5 M-cycle window... the paper quotes both 1/64 and 1/128; either
// shift is accepted).
func (s Sedation) EWMAWindowCycles() int64 {
	return int64(s.SampleIntervalCycles) << s.EWMAShift
}
