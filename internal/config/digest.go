package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Digest returns a canonical SHA-256 digest of the full configuration,
// hex-encoded. Two Configs digest equal iff every architectural,
// power, thermal, sedation, and run parameter is equal, so the digest
// is a sound cache key component for deterministic simulations: same
// digest + same seed + same code version ⇒ byte-identical results.
//
// Canonicality relies on two properties of the encoding: Config is a
// tree of plain structs (no maps, pointers, or interface values), and
// encoding/json emits struct fields in declaration order. Renaming or
// reordering fields therefore changes the digest — which is the
// desired behaviour, since a field change means the simulated machine
// may differ.
func (c *Config) Digest() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config contains only numeric, boolean, and string fields;
		// Marshal cannot fail on it.
		panic("config: digest encoding failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// WarmDigest returns the digest of the configuration with every
// warmup-invariant field normalized away. Warmup runs the pipeline
// under no DTM policy and never reads a temperature threshold: the
// post-warmup machine state (core, caches, predictors, activity
// counters, sedation-monitor averages, thermal network) depends only
// on the architectural, power, thermal, and sampling parameters. The
// sedation *decision* knobs — thresholds, the re-examination window,
// the ablation switches — and the measurement quantum length are
// consumed strictly after warmup, so two Configs with equal WarmDigest
// produce deep-equal warmup snapshots and may share one. The monitor's
// own parameters (SampleIntervalCycles, EWMAShift) DO shape warm state
// (the primed averages) and stay in the digest.
//
// This is the key a fork-tree sweep shares warm prefixes under: a
// threshold grid re-simulates its warmup once instead of once per grid
// point. Soundness is enforced by TestWarmDigestInvariance, which
// checks snapshot deep-equality across every excluded field.
func (c *Config) WarmDigest() string {
	n := *c
	n.Sedation.UpperK = 0
	n.Sedation.LowerK = 0
	n.Sedation.ReexamineFactor = 0
	n.Sedation.ExpectedCoolingCycles = 0
	n.Sedation.UseFlatAverage = false
	n.Sedation.AbsoluteEWMAThreshold = 0
	n.Run.QuantumCycles = 0
	return n.Digest()
}
