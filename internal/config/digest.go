package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Digest returns a canonical SHA-256 digest of the full configuration,
// hex-encoded. Two Configs digest equal iff every architectural,
// power, thermal, sedation, and run parameter is equal, so the digest
// is a sound cache key component for deterministic simulations: same
// digest + same seed + same code version ⇒ byte-identical results.
//
// Canonicality relies on two properties of the encoding: Config is a
// tree of plain structs (no maps, pointers, or interface values), and
// encoding/json emits struct fields in declaration order. Renaming or
// reordering fields therefore changes the digest — which is the
// desired behaviour, since a field change means the simulated machine
// may differ.
func (c *Config) Digest() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config contains only numeric, boolean, and string fields;
		// Marshal cannot fail on it.
		panic("config: digest encoding failed: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
