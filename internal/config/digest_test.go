package config

import (
	"encoding/hex"
	"testing"
)

func TestDigestStable(t *testing.T) {
	a, b := Default(), Default()
	da, db := a.Digest(), b.Digest()
	if da != db {
		t.Fatalf("identical configs digest differently: %s vs %s", da, db)
	}
	if raw, err := hex.DecodeString(da); err != nil || len(raw) != 32 {
		t.Fatalf("digest %q is not 32 hex bytes (err=%v)", da, err)
	}
	// Repeated calls on the same value are stable.
	if a.Digest() != da {
		t.Error("digest not idempotent")
	}
}

func TestDigestSensitivity(t *testing.T) {
	baseCfg := Default()
	base := baseCfg.Digest()
	mutations := map[string]func(*Config){
		"seed":         func(c *Config) { c.Run.Seed++ },
		"quantum":      func(c *Config) { c.Run.QuantumCycles++ },
		"scale":        func(c *Config) { c.Thermal.Scale *= 2 },
		"fetch policy": func(c *Config) { c.Pipeline.FetchPolicy = "rr" },
		"emergency":    func(c *Config) { c.Thermal.EmergencyK += 0.5 },
		"ewma shift":   func(c *Config) { c.Sedation.EWMAShift++ },
		"ideal sink":   func(c *Config) { c.Thermal.IdealSink = true },
		"l2 size":      func(c *Config) { c.Memory.L2.SizeBytes *= 2 },
		"cores":        func(c *Config) { c.Topology.Cores = 2; c.Topology.Solver = SolverGrid },
		"solver":       func(c *Config) { c.Topology.Solver = SolverGrid },
		"grid n":       func(c *Config) { c.Topology.Solver = SolverGrid; c.Topology.GridN = 64 },
	}
	seen := map[string]string{"base": base}
	for name, mutate := range mutations {
		c := Default()
		mutate(&c)
		d := c.Digest()
		if d == base {
			t.Errorf("%s mutation did not change the digest", name)
		}
		for prev, pd := range seen {
			if pd == d {
				t.Errorf("mutations %s and %s collide", name, prev)
			}
		}
		seen[name] = d
	}
}

func TestWarmDigestIgnoresEngineFields(t *testing.T) {
	base := Default()
	bd := base.WarmDigest()
	// Fields consumed only after warmup: varying them must not change
	// the warm key, so a threshold grid shares one warmup.
	invariant := map[string]func(*Config){
		"upper":        func(c *Config) { c.Sedation.UpperK = 357.0 },
		"lower":        func(c *Config) { c.Sedation.LowerK = 354.5 },
		"reexamine":    func(c *Config) { c.Sedation.ReexamineFactor = 3 },
		"cooling":      func(c *Config) { c.Sedation.ExpectedCoolingCycles = 250_000 },
		"flat average": func(c *Config) { c.Sedation.UseFlatAverage = true },
		"abs ewma":     func(c *Config) { c.Sedation.AbsoluteEWMAThreshold = 8 },
		"quantum":      func(c *Config) { c.Run.QuantumCycles = 123_456 },
	}
	for name, mutate := range invariant {
		c := Default()
		mutate(&c)
		if c.WarmDigest() != bd {
			t.Errorf("%s mutation changed the warm digest but is warmup-invariant", name)
		}
		if c.Digest() == base.Digest() {
			t.Errorf("%s mutation did not change the full digest", name)
		}
	}
	// Everything that does shape warm state must still be keyed.
	sensitive := map[string]func(*Config){
		"seed":            func(c *Config) { c.Run.Seed++ },
		"scale":           func(c *Config) { c.Thermal.Scale *= 2 },
		"sample interval": func(c *Config) { c.Sedation.SampleIntervalCycles *= 2 },
		"ewma shift":      func(c *Config) { c.Sedation.EWMAShift++ },
		"convection":      func(c *Config) { c.Thermal.ConvectionRes = 0.5 },
		"ideal sink":      func(c *Config) { c.Thermal.IdealSink = true },
		"l2 size":         func(c *Config) { c.Memory.L2.SizeBytes *= 2 },
		"cores":           func(c *Config) { c.Topology.Cores = 2; c.Topology.Solver = SolverGrid },
		"solver":          func(c *Config) { c.Topology.Solver = SolverGrid },
	}
	for name, mutate := range sensitive {
		c := Default()
		mutate(&c)
		if c.WarmDigest() == bd {
			t.Errorf("%s mutation did not change the warm digest", name)
		}
	}
}

func TestDigestPaperVsDefault(t *testing.T) {
	d, p := Default(), Paper()
	if d.Digest() == p.Digest() {
		t.Error("Default and Paper configs must digest differently (scale and quantum differ)")
	}
}
