package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAssemblePaperFigureOneStyle(t *testing.T) {
	// The paper's Figure 1 listing, verbatim style (labels with '$').
	prog, err := Assemble("fig1", `
L$1:	addl $1, $2, $3
	addl $1, $2, $3
	br L$1
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 3 {
		t.Fatalf("got %d instructions, want 3", prog.Len())
	}
	if prog.Insts[0].Op != OpAdd || prog.Insts[2].Op != OpBr {
		t.Fatalf("wrong ops: %v", prog.Insts)
	}
	if prog.Insts[2].Target != 0 {
		t.Fatalf("br target = %d, want 0", prog.Insts[2].Target)
	}
}

func TestAssembleFullSyntax(t *testing.T) {
	prog, err := Assemble("full", `
	# prologue
	movi $1, 0x100      ; hex immediate
	movi $2, 8
start:
	addl $3, $1, $2
	subl $3, $3, 1      # immediate form
	ldq  $4, 16($1)
	stq  $4, 24($1)
	ldt  $f0, 0($1)
	addt $f1, $f0, $f0
	stt  $f1, 8($1)
	mull $5, $3, $2
	cmplt $6, $5, $3
	beqz $6, start
	bnez $6, done
	nop
done:
	br start
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check a few encodings.
	ld := prog.Insts[4]
	if ld.Op != OpLoad || ld.Dst != 4 || ld.Src1 != 1 || ld.Imm != 16 {
		t.Errorf("ldq encoded wrong: %+v", ld)
	}
	sub := prog.Insts[3]
	if !sub.UseImm || sub.Imm != 1 {
		t.Errorf("subl immediate form wrong: %+v", sub)
	}
	if prog.Labels["start"] != 2 || prog.Labels["done"] != int32(prog.Len()-1) {
		t.Errorf("labels wrong: %v", prog.Labels)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"unknown mnemonic", "frobnicate $1, $2, $3"},
		{"undefined label", "br nowhere"},
		{"duplicate label", "a:\na:\nnop"},
		{"bad register", "addl $99, $1, $2"},
		{"fp where int", "addl $f1, $1, $2"},
		{"int where fp", "addt $1, $f1, $f2"},
		{"missing operand", "addl $1, $2"},
		{"bad immediate", "movi $1, zebra"},
		{"bad memory operand", "ldq $1, 8($1"},
		{"nop with args", "nop $1"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.name, c.text); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	prog, err := Assemble("rt", `
top:	movi $1, 42
	addl $2, $1, $1
	ldq $3, 8($2)
	beqz $3, top
	stq $2, 0($3)
	addt $f0, $f1, $f2
	br top
`)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(prog)
	prog2, err := Assemble("rt2", text)
	if err != nil {
		t.Fatalf("disassembly did not re-assemble: %v\n%s", err, text)
	}
	if prog2.Len() != prog.Len() {
		t.Fatalf("round trip changed length: %d vs %d", prog2.Len(), prog.Len())
	}
	for i := range prog.Insts {
		if prog.Insts[i] != prog2.Insts[i] {
			t.Errorf("inst %d: %v != %v", i, prog.Insts[i], prog2.Insts[i])
		}
	}
}

// randomProgram builds a structurally valid random program.
func randomProgram(rng *rand.Rand) *Program {
	b := NewBuilder("random")
	n := 5 + rng.Intn(40)
	b.Label("top")
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			b.ALU(OpAdd, uint8(rng.Intn(31)), uint8(rng.Intn(32)), uint8(rng.Intn(32)))
		case 1:
			b.ALUImm(OpXor, uint8(rng.Intn(31)), uint8(rng.Intn(32)), rng.Int63n(1000))
		case 2:
			b.Load(uint8(rng.Intn(31)), uint8(rng.Intn(32)), rng.Int63n(4096))
		case 3:
			b.Store(uint8(rng.Intn(32)), uint8(rng.Intn(32)), rng.Int63n(4096))
		case 4:
			b.FP(OpFMul, uint8(rng.Intn(31)), uint8(rng.Intn(32)), uint8(rng.Intn(32)))
		case 5:
			b.MovI(uint8(rng.Intn(31)), rng.Int63())
		}
	}
	b.Bnez(uint8(rng.Intn(32)), "top")
	b.Br("top")
	return b.MustBuild()
}

// TestQuickDisassembleRoundTrip property: for any builder-generated
// program, Disassemble then Assemble reproduces the instruction stream
// exactly.
func TestQuickDisassembleRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		p2, err := Assemble("rt", Disassemble(p))
		if err != nil || p2.Len() != p.Len() {
			return false
		}
		for i := range p.Insts {
			if p.Insts[i] != p2.Insts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitArgs(t *testing.T) {
	got := splitArgs("$1, 8($2), $3")
	want := []string{"$1", "8($2)", "$3"}
	if len(got) != len(want) {
		t.Fatalf("splitArgs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("arg %d = %q, want %q", i, got[i], want[i])
		}
	}
	if splitArgs("  ") != nil {
		t.Error("blank args should be nil")
	}
}

func TestDisassembleLabelsBranchTargets(t *testing.T) {
	p := NewBuilder("x").Label("a").Nop().Beqz(3, "a").MustBuild()
	text := Disassemble(p)
	if !strings.Contains(text, "L0:") || !strings.Contains(text, "beqz $3, L0") {
		t.Errorf("disassembly missing synthesized label:\n%s", text)
	}
}
