// Package isa defines the small RISC instruction set executed by the
// SMT pipeline simulator, plus a two-pass text assembler able to parse
// the malicious listings of the paper's Figures 1 and 2.
//
// The ISA is Alpha-flavoured (the paper's SimpleScalar simulator runs
// Alpha binaries): 32 integer and 32 floating-point architectural
// registers, three-operand register ALU ops, displacement-mode loads and
// stores, and compare-and-branch conditional branches. Register $31 and
// $f31 read as zero and discard writes.
package isa

import "fmt"

// NumIntRegs and NumFPRegs are the architectural register-file sizes.
const (
	NumIntRegs = 32
	NumFPRegs  = 32
	// ZeroReg reads as zero and discards writes (Alpha $31 convention).
	ZeroReg = 31
)

// RegClass distinguishes the two architectural register files.
type RegClass uint8

const (
	// IntClass registers live in the integer register file.
	IntClass RegClass = iota
	// FPClass registers live in the floating-point register file.
	FPClass
	// NoClass marks an absent operand.
	NoClass
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcodes. The groups matter to the pipeline model: each group maps to a
// functional-unit class and an execution latency.
const (
	// OpNop does nothing (still occupies pipeline slots).
	OpNop Op = iota

	// Integer ALU (1-cycle): dst <- src1 op src2/imm.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpCmpLT // dst = 1 if src1 < src2 else 0
	OpCmpEQ // dst = 1 if src1 == src2 else 0
	OpMovI  // dst <- imm (load immediate)

	// Integer multiply/divide (long latency).
	OpMul
	OpDiv

	// Memory: address = int src1 + imm.
	OpLoad   // int dst <- mem
	OpStore  // mem <- int src2
	OpLoadF  // fp dst <- mem
	OpStoreF // mem <- fp src2

	// Floating point.
	OpFAdd
	OpFMul
	OpFDiv

	// Control. Branches compare an integer register against zero;
	// Target is an instruction index resolved by the assembler.
	OpBr   // unconditional
	OpBeqz // branch if src1 == 0
	OpBnez // branch if src1 != 0
	OpCall // unconditional, pushes return address
	OpRet  // returns to the address popped from the RAS

	opCount
)

// FUClass identifies the functional-unit pool an op executes on.
type FUClass uint8

// Functional-unit classes.
const (
	FUNone FUClass = iota // no FU needed (nop)
	FUIntALU
	FUIntMulDiv
	FUMem
	FUFPAdd
	FUFPMulDiv
	FUBranch // executes on the integer ALU pool
)

type opInfo struct {
	name    string
	fu      FUClass
	latency int
	// dstClass/srcClass describe the register classes of the operands.
	dstClass  RegClass
	src1Class RegClass
	src2Class RegClass
	isLoad    bool
	isStore   bool
	isBranch  bool
	isCond    bool
}

var opTable = [opCount]opInfo{
	OpNop:    {name: "nop", fu: FUNone, latency: 1, dstClass: NoClass, src1Class: NoClass, src2Class: NoClass},
	OpAdd:    {name: "addl", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpSub:    {name: "subl", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpAnd:    {name: "and", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpOr:     {name: "or", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpXor:    {name: "xor", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpShl:    {name: "sll", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpShr:    {name: "srl", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpCmpLT:  {name: "cmplt", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpCmpEQ:  {name: "cmpeq", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpMovI:   {name: "movi", fu: FUIntALU, latency: 1, dstClass: IntClass, src1Class: NoClass, src2Class: NoClass},
	OpMul:    {name: "mull", fu: FUIntMulDiv, latency: 3, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpDiv:    {name: "divl", fu: FUIntMulDiv, latency: 12, dstClass: IntClass, src1Class: IntClass, src2Class: IntClass},
	OpLoad:   {name: "ldq", fu: FUMem, latency: 1, dstClass: IntClass, src1Class: IntClass, src2Class: NoClass, isLoad: true},
	OpStore:  {name: "stq", fu: FUMem, latency: 1, dstClass: NoClass, src1Class: IntClass, src2Class: IntClass, isStore: true},
	OpLoadF:  {name: "ldt", fu: FUMem, latency: 1, dstClass: FPClass, src1Class: IntClass, src2Class: NoClass, isLoad: true},
	OpStoreF: {name: "stt", fu: FUMem, latency: 1, dstClass: NoClass, src1Class: IntClass, src2Class: FPClass, isStore: true},
	OpFAdd:   {name: "addt", fu: FUFPAdd, latency: 2, dstClass: FPClass, src1Class: FPClass, src2Class: FPClass},
	OpFMul:   {name: "mult", fu: FUFPMulDiv, latency: 4, dstClass: FPClass, src1Class: FPClass, src2Class: FPClass},
	OpFDiv:   {name: "divt", fu: FUFPMulDiv, latency: 12, dstClass: FPClass, src1Class: FPClass, src2Class: FPClass},
	OpBr:     {name: "br", fu: FUBranch, latency: 1, dstClass: NoClass, src1Class: NoClass, src2Class: NoClass, isBranch: true},
	OpBeqz:   {name: "beqz", fu: FUBranch, latency: 1, dstClass: NoClass, src1Class: IntClass, src2Class: NoClass, isBranch: true, isCond: true},
	OpBnez:   {name: "bnez", fu: FUBranch, latency: 1, dstClass: NoClass, src1Class: IntClass, src2Class: NoClass, isBranch: true, isCond: true},
	OpCall:   {name: "bsr", fu: FUBranch, latency: 1, dstClass: NoClass, src1Class: NoClass, src2Class: NoClass, isBranch: true},
	OpRet:    {name: "ret", fu: FUBranch, latency: 1, dstClass: NoClass, src1Class: NoClass, src2Class: NoClass, isBranch: true},
}

// Name returns the assembler mnemonic.
func (o Op) Name() string { return opTable[o].name }

// FU returns the functional-unit class the op executes on.
func (o Op) FU() FUClass { return opTable[o].fu }

// Latency returns the execution latency in cycles (memory ops report
// their FU occupancy; cache latency is added by the memory system).
func (o Op) Latency() int { return opTable[o].latency }

// IsLoad reports whether the op reads memory.
func (o Op) IsLoad() bool { return opTable[o].isLoad }

// IsStore reports whether the op writes memory.
func (o Op) IsStore() bool { return opTable[o].isStore }

// IsMem reports whether the op accesses memory.
func (o Op) IsMem() bool { return opTable[o].isLoad || opTable[o].isStore }

// IsBranch reports whether the op redirects control flow.
func (o Op) IsBranch() bool { return opTable[o].isBranch }

// IsCondBranch reports whether the op is a conditional branch.
func (o Op) IsCondBranch() bool { return opTable[o].isCond }

// DstClass returns the register class of the destination operand.
func (o Op) DstClass() RegClass { return opTable[o].dstClass }

// Src1Class returns the register class of the first source operand.
func (o Op) Src1Class() RegClass { return opTable[o].src1Class }

// Src2Class returns the register class of the second source operand.
func (o Op) Src2Class() RegClass { return opTable[o].src2Class }

// Valid reports whether the opcode is defined.
func (o Op) Valid() bool { return o < opCount }

// Instruction is one static instruction. PC-relative control flow is
// pre-resolved: Target is the absolute instruction index of the branch
// destination.
type Instruction struct {
	Op     Op
	Dst    uint8 // destination register number within its class
	Src1   uint8
	Src2   uint8
	Imm    int64 // immediate / displacement; also ALU second operand if UseImm
	Target int32 // branch target (instruction index)
	UseImm bool  // ALU ops: second operand is Imm instead of Src2
}

// String formats the instruction in assembler syntax.
func (in Instruction) String() string {
	info := opTable[in.Op]
	switch {
	case in.Op == OpNop:
		return "nop"
	case in.Op == OpMovI:
		return fmt.Sprintf("movi $%d, %d", in.Dst, in.Imm)
	case info.isLoad:
		return fmt.Sprintf("%s %s%d, %d($%d)", info.name, classPrefix(info.dstClass), in.Dst, in.Imm, in.Src1)
	case info.isStore:
		return fmt.Sprintf("%s %s%d, %d($%d)", info.name, classPrefix(info.src2Class), in.Src2, in.Imm, in.Src1)
	case in.Op == OpBr || in.Op == OpCall:
		return fmt.Sprintf("%s @%d", info.name, in.Target)
	case in.Op == OpRet:
		return "ret"
	case info.isCond:
		return fmt.Sprintf("%s $%d, @%d", info.name, in.Src1, in.Target)
	case in.UseImm:
		return fmt.Sprintf("%s %s%d, %s%d, %d", info.name, classPrefix(info.dstClass), in.Dst, classPrefix(info.src1Class), in.Src1, in.Imm)
	default:
		return fmt.Sprintf("%s %s%d, %s%d, %s%d", info.name, classPrefix(info.dstClass), in.Dst, classPrefix(info.src1Class), in.Src1, classPrefix(info.src2Class), in.Src2)
	}
}

func classPrefix(c RegClass) string {
	if c == FPClass {
		return "$f"
	}
	return "$"
}

// IntRegReads returns how many integer register-file read ports the
// instruction uses when it issues. This is the access count that feeds
// the power model for the IntReg block — the resource the paper's
// malicious threads heat up.
func (in Instruction) IntRegReads() int {
	n := 0
	info := opTable[in.Op]
	if info.src1Class == IntClass {
		n++
	}
	if info.src2Class == IntClass && !in.UseImm {
		n++
	}
	return n
}

// IntRegWrites returns how many integer register-file write ports the
// instruction uses at writeback.
func (in Instruction) IntRegWrites() int {
	if opTable[in.Op].dstClass == IntClass && in.Dst != ZeroReg {
		return 1
	}
	return 0
}

// FPRegReads returns floating-point register-file reads at issue.
func (in Instruction) FPRegReads() int {
	n := 0
	info := opTable[in.Op]
	if info.src1Class == FPClass {
		n++
	}
	if info.src2Class == FPClass && !in.UseImm {
		n++
	}
	return n
}

// FPRegWrites returns floating-point register-file writes at writeback.
func (in Instruction) FPRegWrites() int {
	if opTable[in.Op].dstClass == FPClass && in.Dst != ZeroReg {
		return 1
	}
	return 0
}

// Program is a static instruction sequence. Instruction index i is the
// program counter; execution wraps control flow entirely through
// branches (programs are infinite loops, matching the paper's workloads,
// and a program that runs off the end restarts at Entry).
type Program struct {
	Name  string
	Insts []Instruction
	// Entry is the initial program counter.
	Entry int32
	// Labels maps label names to instruction indices (kept for
	// diagnostics and round-tripping; execution uses Target fields).
	Labels map[string]int32
}

// Len returns the static instruction count.
func (p *Program) Len() int { return len(p.Insts) }

// Validate checks that every branch target and register number is in
// range.
func (p *Program) Validate() error {
	if len(p.Insts) == 0 {
		return fmt.Errorf("isa: program %q has no instructions", p.Name)
	}
	if p.Entry < 0 || int(p.Entry) >= len(p.Insts) {
		return fmt.Errorf("isa: program %q entry %d out of range", p.Name, p.Entry)
	}
	for i, in := range p.Insts {
		if !in.Op.Valid() {
			return fmt.Errorf("isa: program %q inst %d: invalid opcode %d", p.Name, i, in.Op)
		}
		info := opTable[in.Op]
		if info.isBranch && in.Op != OpRet {
			if in.Target < 0 || int(in.Target) >= len(p.Insts) {
				return fmt.Errorf("isa: program %q inst %d (%s): target %d out of range", p.Name, i, in, in.Target)
			}
		}
		if err := checkReg("dst", info.dstClass, in.Dst); err != nil {
			return fmt.Errorf("isa: program %q inst %d (%s): %v", p.Name, i, in, err)
		}
		if err := checkReg("src1", info.src1Class, in.Src1); err != nil {
			return fmt.Errorf("isa: program %q inst %d (%s): %v", p.Name, i, in, err)
		}
		if info.src2Class != NoClass && !in.UseImm {
			if err := checkReg("src2", info.src2Class, in.Src2); err != nil {
				return fmt.Errorf("isa: program %q inst %d (%s): %v", p.Name, i, in, err)
			}
		}
	}
	return nil
}

func checkReg(role string, c RegClass, r uint8) error {
	switch c {
	case IntClass:
		if int(r) >= NumIntRegs {
			return fmt.Errorf("%s register $%d out of range", role, r)
		}
	case FPClass:
		if int(r) >= NumFPRegs {
			return fmt.Errorf("%s register $f%d out of range", role, r)
		}
	}
	return nil
}
