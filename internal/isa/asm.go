package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses assembler text into a Program using two passes: the
// first collects labels, the second encodes instructions. The syntax is
// the paper's listing style:
//
//	L$1:  addl $1, $2, $3
//	      addl $4, $5, 7       # immediate second operand
//	      movi $9, 100
//	      ldq  $4, 8($2)
//	      stq  $4, 16($2)
//	      ldt  $f0, 0($3)
//	      addt $f1, $f0, $f2
//	      beqz $4, L$1
//	      br   L$1
//
// Comments run from '#' or ';' to end of line. Labels end with ':' and
// may share a line with an instruction.
func Assemble(name, text string) (*Program, error) {
	type pending struct {
		inst  Instruction
		label string // branch target label, empty if none
		line  int
	}
	labels := make(map[string]int32)
	var insts []pending

	lines := strings.Split(text, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if label == "" || strings.ContainsAny(label, " \t,(") {
				return nil, fmt.Errorf("asm %s:%d: malformed label %q", name, lineNo+1, label)
			}
			if _, dup := labels[label]; dup {
				return nil, fmt.Errorf("asm %s:%d: duplicate label %q", name, lineNo+1, label)
			}
			labels[label] = int32(len(insts))
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		inst, targetLabel, err := parseInst(line)
		if err != nil {
			return nil, fmt.Errorf("asm %s:%d: %v", name, lineNo+1, err)
		}
		insts = append(insts, pending{inst: inst, label: targetLabel, line: lineNo + 1})
	}

	prog := &Program{Name: name, Labels: labels, Insts: make([]Instruction, len(insts))}
	for i, p := range insts {
		if p.label != "" {
			target, ok := labels[p.label]
			if !ok {
				return nil, fmt.Errorf("asm %s:%d: undefined label %q", name, p.line, p.label)
			}
			p.inst.Target = target
		}
		prog.Insts[i] = p.inst
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, int(opCount))
	for op := Op(0); op < opCount; op++ {
		m[op.Name()] = op
	}
	// Accept a few common aliases.
	m["addq"] = OpAdd
	m["subq"] = OpSub
	m["ldl"] = OpLoad
	m["stl"] = OpStore
	return m
}()

func parseInst(line string) (Instruction, string, error) {
	var mnem, rest string
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnem, rest = line[:i], strings.TrimSpace(line[i+1:])
	} else {
		mnem = line
	}
	op, ok := mnemonics[strings.ToLower(mnem)]
	if !ok {
		return Instruction{}, "", fmt.Errorf("unknown mnemonic %q", mnem)
	}
	args := splitArgs(rest)
	in := Instruction{Op: op}

	switch {
	case op == OpNop || op == OpRet:
		if len(args) != 0 {
			return in, "", fmt.Errorf("%s takes no operands", mnem)
		}
		return in, "", nil

	case op == OpBr || op == OpCall:
		if len(args) != 1 {
			return in, "", fmt.Errorf("%s needs one target label", mnem)
		}
		return in, args[0], nil

	case op.IsCondBranch():
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs register and target", mnem)
		}
		r, err := parseReg(args[0], IntClass)
		if err != nil {
			return in, "", err
		}
		in.Src1 = r
		return in, args[1], nil

	case op == OpMovI:
		if len(args) != 2 {
			return in, "", fmt.Errorf("movi needs register and immediate")
		}
		r, err := parseReg(args[0], IntClass)
		if err != nil {
			return in, "", err
		}
		imm, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return in, "", fmt.Errorf("bad immediate %q", args[1])
		}
		in.Dst, in.Imm = r, imm
		return in, "", nil

	case op.IsLoad():
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs dst and disp(base)", mnem)
		}
		d, err := parseReg(args[0], op.DstClass())
		if err != nil {
			return in, "", err
		}
		disp, base, err := parseMem(args[1])
		if err != nil {
			return in, "", err
		}
		in.Dst, in.Imm, in.Src1 = d, disp, base
		return in, "", nil

	case op.IsStore():
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs src and disp(base)", mnem)
		}
		s, err := parseReg(args[0], op.Src2Class())
		if err != nil {
			return in, "", err
		}
		disp, base, err := parseMem(args[1])
		if err != nil {
			return in, "", err
		}
		in.Src2, in.Imm, in.Src1 = s, disp, base
		return in, "", nil

	default: // three-operand ALU / FP
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s needs three operands", mnem)
		}
		d, err := parseReg(args[0], op.DstClass())
		if err != nil {
			return in, "", err
		}
		s1, err := parseReg(args[1], op.Src1Class())
		if err != nil {
			return in, "", err
		}
		in.Dst, in.Src1 = d, s1
		if strings.HasPrefix(args[2], "$") {
			s2, err := parseReg(args[2], op.Src2Class())
			if err != nil {
				return in, "", err
			}
			in.Src2 = s2
		} else {
			imm, err := strconv.ParseInt(args[2], 0, 64)
			if err != nil {
				return in, "", fmt.Errorf("bad operand %q", args[2])
			}
			in.Imm, in.UseImm = imm, true
		}
		return in, "", nil
	}
}

// splitArgs splits on commas that are not inside parentheses.
func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var args []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}

func parseReg(s string, class RegClass) (uint8, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	body := s[1:]
	isFP := strings.HasPrefix(body, "f") || strings.HasPrefix(body, "F")
	if isFP {
		body = body[1:]
	}
	if class == FPClass && !isFP {
		return 0, fmt.Errorf("expected FP register, got %q", s)
	}
	if class == IntClass && isFP {
		return 0, fmt.Errorf("expected integer register, got %q", s)
	}
	n, err := strconv.Atoi(body)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	limit := NumIntRegs
	if class == FPClass {
		limit = NumFPRegs
	}
	if n >= limit {
		return 0, fmt.Errorf("register %q out of range", s)
	}
	return uint8(n), nil
}

// parseMem parses "disp($base)" or "($base)" or a bare "disp".
func parseMem(s string) (disp int64, base uint8, err error) {
	open := strings.Index(s, "(")
	if open < 0 {
		d, err := strconv.ParseInt(s, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad memory operand %q", s)
		}
		return d, ZeroReg, nil
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr != "" {
		disp, err = strconv.ParseInt(dispStr, 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad displacement in %q", s)
		}
	}
	base, err = parseReg(strings.TrimSpace(s[open+1:len(s)-1]), IntClass)
	if err != nil {
		return 0, 0, err
	}
	return disp, base, nil
}

// Builder constructs programs programmatically; the workload generator
// uses it. Branch targets may reference labels defined later; Build
// resolves them.
type Builder struct {
	name    string
	insts   []Instruction
	labels  map[string]int32
	patches []patch
	err     error
}

type patch struct {
	inst  int
	label string
}

// NewBuilder returns an empty builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int32)}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup && b.err == nil {
		b.err = fmt.Errorf("asm builder %s: duplicate label %q", b.name, name)
	}
	b.labels[name] = int32(len(b.insts))
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instruction) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// ALU appends a three-register ALU instruction.
func (b *Builder) ALU(op Op, dst, src1, src2 uint8) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// ALUImm appends an ALU instruction with an immediate second operand.
func (b *Builder) ALUImm(op Op, dst, src1 uint8, imm int64) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, Src1: src1, Imm: imm, UseImm: true})
}

// MovI appends a load-immediate.
func (b *Builder) MovI(dst uint8, imm int64) *Builder {
	return b.Emit(Instruction{Op: OpMovI, Dst: dst, Imm: imm})
}

// Load appends an integer load dst <- [base+disp].
func (b *Builder) Load(dst, base uint8, disp int64) *Builder {
	return b.Emit(Instruction{Op: OpLoad, Dst: dst, Src1: base, Imm: disp})
}

// Store appends an integer store [base+disp] <- src.
func (b *Builder) Store(src, base uint8, disp int64) *Builder {
	return b.Emit(Instruction{Op: OpStore, Src2: src, Src1: base, Imm: disp})
}

// LoadF appends a floating-point load.
func (b *Builder) LoadF(dst, base uint8, disp int64) *Builder {
	return b.Emit(Instruction{Op: OpLoadF, Dst: dst, Src1: base, Imm: disp})
}

// StoreF appends a floating-point store.
func (b *Builder) StoreF(src, base uint8, disp int64) *Builder {
	return b.Emit(Instruction{Op: OpStoreF, Src2: src, Src1: base, Imm: disp})
}

// FP appends a three-register floating-point instruction.
func (b *Builder) FP(op Op, dst, src1, src2 uint8) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, Src1: src1, Src2: src2})
}

// Br appends an unconditional branch to a label.
func (b *Builder) Br(label string) *Builder {
	b.patches = append(b.patches, patch{inst: len(b.insts), label: label})
	return b.Emit(Instruction{Op: OpBr})
}

// Beqz appends a branch-if-zero to a label.
func (b *Builder) Beqz(src uint8, label string) *Builder {
	b.patches = append(b.patches, patch{inst: len(b.insts), label: label})
	return b.Emit(Instruction{Op: OpBeqz, Src1: src})
}

// Bnez appends a branch-if-nonzero to a label.
func (b *Builder) Bnez(src uint8, label string) *Builder {
	b.patches = append(b.patches, patch{inst: len(b.insts), label: label})
	return b.Emit(Instruction{Op: OpBnez, Src1: src})
}

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.Emit(Instruction{Op: OpNop}) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, p := range b.patches {
		target, ok := b.labels[p.label]
		if !ok {
			return nil, fmt.Errorf("asm builder %s: undefined label %q", b.name, p.label)
		}
		b.insts[p.inst].Target = target
	}
	prog := &Program{Name: b.name, Insts: b.insts, Labels: b.labels}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustBuild is Build that panics on error; for statically known programs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Disassemble renders the program as assembler text with synthesized
// labels at branch targets. Assemble(Disassemble(p)) produces a program
// with identical instructions.
func Disassemble(p *Program) string {
	targets := make(map[int32]string)
	for _, in := range p.Insts {
		if in.Op.IsBranch() && in.Op != OpRet {
			if _, ok := targets[in.Target]; !ok {
				targets[in.Target] = fmt.Sprintf("L%d", in.Target)
			}
		}
	}
	var sb strings.Builder
	for i, in := range p.Insts {
		if label, ok := targets[int32(i)]; ok {
			fmt.Fprintf(&sb, "%s:\n", label)
		}
		text := in.String()
		if in.Op.IsBranch() && in.Op != OpRet {
			// Replace the numeric @target with the synthesized label.
			at := strings.LastIndex(text, "@")
			text = text[:at] + targets[in.Target]
		}
		fmt.Fprintf(&sb, "\t%s\n", text)
	}
	return sb.String()
}
