// Fuzz tests live in an external test package so the seed corpus can
// draw on internal/workload's paper listings and generated programs
// without an import cycle.
package isa_test

import (
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// FuzzAssemble asserts the assembler never panics on arbitrary source:
// every input either assembles into a valid program or returns an
// error. Successful parses must disassemble and reassemble cleanly
// (the round-trip Disassemble documents).
func FuzzAssemble(f *testing.F) {
	// Seed corpus: the paper's listings, the attack example's unrolled
	// loop, disassemblies of generated workloads, and malformed edge
	// cases around labels, operands, and immediates.
	f.Add(workload.FigureOneListing)
	f.Add(workload.FigureTwoListing)
	var unrolled strings.Builder
	unrolled.WriteString("L$1:\n")
	for i := 0; i < 48; i++ {
		unrolled.WriteString("\taddl $1, $2, $3\n")
	}
	unrolled.WriteString("\tbr L$1\n")
	f.Add(unrolled.String())
	for _, name := range []string{"crafty", "mcf"} {
		prog, err := workload.Spec(name, 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(isa.Disassemble(prog))
	}
	for _, name := range workload.KernelNames() {
		prog, err := workload.Kernel(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(isa.Disassemble(prog))
	}
	for _, v := range []int{1, 2, 3} {
		prog, err := workload.Variant(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(isa.Disassemble(prog))
	}
	f.Add("L$1:\taddl $1, $2, $3\n\tldq $4, 8($2)\n\tstq $4, 16($2)\n\tbeqz $4, L$1\n\tbr L$1\n")
	f.Add("a: b: c:\n")
	f.Add(":")
	f.Add("x::")
	f.Add("addl $1, $2")
	f.Add("addl $99, $2, $3")
	f.Add("movi $1, 99999999999999999999999")
	f.Add("ldq $4, 8(")
	f.Add("ldq $4, ($2)")
	f.Add("ldt $f0, 0($f1)")
	f.Add("br")
	f.Add("br nowhere")
	f.Add("beqz $4, L$1 extra")
	f.Add("addl $1 $2 $3")
	f.Add("nop nop")
	f.Add("# comment only\n; another\n")
	f.Add("\x00\xff\tmovi $1, -1\n")

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := isa.Assemble("fuzz", src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("nil program with nil error")
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("assembled program fails validation: %v", err)
		}
		// The documented round-trip: disassembly must reassemble.
		if _, err := isa.Assemble("roundtrip", isa.Disassemble(prog)); err != nil {
			t.Fatalf("disassembly does not reassemble: %v\nsource:\n%s", err, src)
		}
	})
}
