package isa

import (
	"strings"
	"testing"
)

func TestOpMetadata(t *testing.T) {
	cases := []struct {
		op       Op
		name     string
		fu       FUClass
		load     bool
		store    bool
		branch   bool
		cond     bool
		dstClass RegClass
	}{
		{OpNop, "nop", FUNone, false, false, false, false, NoClass},
		{OpAdd, "addl", FUIntALU, false, false, false, false, IntClass},
		{OpMul, "mull", FUIntMulDiv, false, false, false, false, IntClass},
		{OpLoad, "ldq", FUMem, true, false, false, false, IntClass},
		{OpStore, "stq", FUMem, false, true, false, false, NoClass},
		{OpLoadF, "ldt", FUMem, true, false, false, false, FPClass},
		{OpStoreF, "stt", FUMem, false, true, false, false, NoClass},
		{OpFAdd, "addt", FUFPAdd, false, false, false, false, FPClass},
		{OpFDiv, "divt", FUFPMulDiv, false, false, false, false, FPClass},
		{OpBr, "br", FUBranch, false, false, true, false, NoClass},
		{OpBeqz, "beqz", FUBranch, false, false, true, true, NoClass},
		{OpBnez, "bnez", FUBranch, false, false, true, true, NoClass},
	}
	for _, c := range cases {
		if got := c.op.Name(); got != c.name {
			t.Errorf("%v.Name() = %q, want %q", c.op, got, c.name)
		}
		if got := c.op.FU(); got != c.fu {
			t.Errorf("%s.FU() = %v, want %v", c.name, got, c.fu)
		}
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store {
			t.Errorf("%s load/store flags wrong", c.name)
		}
		if c.op.IsBranch() != c.branch || c.op.IsCondBranch() != c.cond {
			t.Errorf("%s branch flags wrong", c.name)
		}
		if c.op.DstClass() != c.dstClass {
			t.Errorf("%s dst class = %v, want %v", c.name, c.op.DstClass(), c.dstClass)
		}
		if c.op.Latency() < 1 {
			t.Errorf("%s latency %d < 1", c.name, c.op.Latency())
		}
	}
}

func TestOpValid(t *testing.T) {
	for op := Op(0); op < opCount; op++ {
		if !op.Valid() {
			t.Errorf("op %d should be valid", op)
		}
	}
	if Op(opCount).Valid() {
		t.Error("opCount should be invalid")
	}
}

func TestRegisterAccessCounts(t *testing.T) {
	cases := []struct {
		in                   Instruction
		intR, intW, fpR, fpW int
	}{
		{Instruction{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, 2, 1, 0, 0},
		{Instruction{Op: OpAdd, Dst: 1, Src1: 2, Imm: 5, UseImm: true}, 1, 1, 0, 0},
		{Instruction{Op: OpAdd, Dst: ZeroReg, Src1: 2, Src2: 3}, 2, 0, 0, 0},
		{Instruction{Op: OpMovI, Dst: 4, Imm: 9}, 0, 1, 0, 0},
		{Instruction{Op: OpLoad, Dst: 4, Src1: 2}, 1, 1, 0, 0},
		{Instruction{Op: OpStore, Src1: 2, Src2: 3}, 2, 0, 0, 0},
		{Instruction{Op: OpLoadF, Dst: 4, Src1: 2}, 1, 0, 0, 1},
		{Instruction{Op: OpStoreF, Src1: 2, Src2: 3}, 1, 0, 1, 0},
		{Instruction{Op: OpFAdd, Dst: 1, Src1: 2, Src2: 3}, 0, 0, 2, 1},
		{Instruction{Op: OpBeqz, Src1: 7}, 1, 0, 0, 0},
		{Instruction{Op: OpBr}, 0, 0, 0, 0},
		{Instruction{Op: OpNop}, 0, 0, 0, 0},
	}
	for _, c := range cases {
		if got := c.in.IntRegReads(); got != c.intR {
			t.Errorf("%s IntRegReads = %d, want %d", c.in, got, c.intR)
		}
		if got := c.in.IntRegWrites(); got != c.intW {
			t.Errorf("%s IntRegWrites = %d, want %d", c.in, got, c.intW)
		}
		if got := c.in.FPRegReads(); got != c.fpR {
			t.Errorf("%s FPRegReads = %d, want %d", c.in, got, c.fpR)
		}
		if got := c.in.FPRegWrites(); got != c.fpW {
			t.Errorf("%s FPRegWrites = %d, want %d", c.in, got, c.fpW)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := NewBuilder("good").MovI(1, 5).Label("l").ALU(OpAdd, 1, 1, 2).Br("l").MustBuild()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}

	bad := []*Program{
		{Name: "empty"},
		{Name: "entry", Insts: []Instruction{{Op: OpNop}}, Entry: 5},
		{Name: "target", Insts: []Instruction{{Op: OpBr, Target: 9}}},
		{Name: "badop", Insts: []Instruction{{Op: opCount}}},
		{Name: "badreg", Insts: []Instruction{{Op: OpAdd, Dst: 40}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %q should fail validation", p.Name)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, "addl $1, $2, $3"},
		{Instruction{Op: OpAdd, Dst: 1, Src1: 2, Imm: 7, UseImm: true}, "addl $1, $2, 7"},
		{Instruction{Op: OpLoad, Dst: 4, Src1: 2, Imm: 16}, "ldq $4, 16($2)"},
		{Instruction{Op: OpStoreF, Src2: 3, Src1: 2, Imm: 8}, "stt $f3, 8($2)"},
		{Instruction{Op: OpBr, Target: 3}, "br @3"},
		{Instruction{Op: OpBnez, Src1: 5, Target: 0}, "bnez $5, @0"},
		{Instruction{Op: OpNop}, "nop"},
		{Instruction{Op: OpMovI, Dst: 2, Imm: -4}, "movi $2, -4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder("x").Br("missing").Build(); err == nil {
		t.Error("undefined label should fail")
	}
	b := NewBuilder("y")
	b.Label("a").Nop().Label("a")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate label should fail, got %v", err)
	}
}
