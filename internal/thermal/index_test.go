package thermal

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// randomFloorplan tiles a die with a random grid and scatters the power
// units over its cells, producing floorplans with edge counts, areas,
// and adjacency structures the default plan never exercises.
func randomFloorplan(t *testing.T, rng *rand.Rand) *floorplan.Floorplan {
	t.Helper()
	const die = 6e-3
	cuts := func(n int) []float64 {
		xs := []float64{0}
		for i := 1; i < n; i++ {
			// Uneven but well-separated cuts keep every cell non-degenerate.
			xs = append(xs, die*(float64(i)+0.6*(rng.Float64()-0.5))/float64(n))
		}
		return append(xs, die)
	}
	cols := 4 + rng.Intn(2)
	rows := 4 + rng.Intn(2)
	xs, ys := cuts(cols), cuts(rows)

	cells := make([]floorplan.Block, 0, cols*rows)
	for j := 0; j < rows; j++ {
		for i := 0; i < cols; i++ {
			cells = append(cells, floorplan.Block{
				Name: fmt.Sprintf("cell_%d_%d", i, j),
				X:    xs[i], Y: ys[j], W: xs[i+1] - xs[i], H: ys[j+1] - ys[j],
			})
		}
	}
	rng.Shuffle(len(cells), func(a, b int) { cells[a], cells[b] = cells[b], cells[a] })
	for u := power.Unit(0); u < power.NumUnits; u++ {
		cells[u].Unit = u
		cells[u].HasUnit = true
	}
	fp, err := floorplan.New(cells, die, die)
	if err != nil {
		t.Fatalf("random floorplan invalid: %v", err)
	}
	return fp
}

func randomPower(rng *rand.Rand) [power.NumUnits]float64 {
	var p [power.NumUnits]float64
	for u := range p {
		p[u] = rng.Float64() * 8
	}
	return p
}

// TestStepMatchesNaiveReference drives the CSR kernel and the retained
// naive edge-walk in lockstep over random floorplans, scales, power
// histories, and step spans, requiring bit-identical temperatures at
// every step. This is the proof obligation for the indexed kernel: it
// may change how a substep is computed, never what it computes.
func TestStepMatchesNaiveReference(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			th := config.Default().Thermal
			if seed%2 == 1 {
				th.Scale = 4
			}
			var fp *floorplan.Floorplan
			if seed == 0 {
				fp = floorplan.Default()
			} else {
				fp = randomFloorplan(t, rng)
			}
			indexed, err := New(fp, th)
			if err != nil {
				t.Fatal(err)
			}
			naive, err := New(fp, th)
			if err != nil {
				t.Fatal(err)
			}
			init := randomPower(rng)
			indexed.InitSteady(init)
			naive.InitSteady(init)

			spans := []float64{5e-6, 20e-6, 50e-6, 1e-3}
			for step := 0; step < 60; step++ {
				p := randomPower(rng)
				sec := spans[rng.Intn(len(spans))]
				indexed.Step(p, sec)
				naive.stepNaive(p, sec)
				for i := range indexed.temps {
					a, b := indexed.temps[i], naive.temps[i]
					if math.Float64bits(a) != math.Float64bits(b) {
						t.Fatalf("step %d (span %g): node %d diverged: %x vs %x (%.17g vs %.17g)",
							step, sec, i, math.Float64bits(a), math.Float64bits(b), a, b)
					}
				}
			}
		})
	}
}

// TestStepZeroAllocs pins the steady-state Euler step at zero
// allocations.
func TestStepZeroAllocs(t *testing.T) {
	th := config.Default().Thermal
	nw, err := New(floorplan.Default(), th)
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rand.New(rand.NewSource(1)))
	nw.InitSteady(p)
	sec := float64(th.SensorIntervalCycles) / 3e9
	nw.Step(p, sec)
	if allocs := testing.AllocsPerRun(100, func() { nw.Step(p, sec) }); allocs > 0 {
		t.Fatalf("thermal step allocates %.1f times per run, want 0", allocs)
	}
}

// BenchmarkThermalStep measures one sensor interval's worth of Euler
// substeps on the default floorplan — the per-interval thermal cost of
// every simulation.
func BenchmarkThermalStep(b *testing.B) {
	th := config.Default().Thermal
	nw, err := New(floorplan.Default(), th)
	if err != nil {
		b.Fatal(err)
	}
	p := randomPower(rand.New(rand.NewSource(1)))
	nw.InitSteady(p)
	sec := float64(th.SensorIntervalCycles) / 3e9
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nw.Step(p, sec)
	}
}
