package thermal

import (
	"math"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// testModel builds the power model over the default floorplan's areas.
func testModel(t testing.TB, cfg config.Config) *power.Model {
	t.Helper()
	m, err := power.NewModel(power.DefaultEnergies(), cfg.Power.FrequencyHz, cfg.Power.Vdd,
		cfg.Power.EnergyScale, cfg.Power.LeakageWPerMM2, floorplan.Default().UnitAreas())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestGrid(t testing.TB, cores, gridN int, th config.Thermal) *Grid {
	t.Helper()
	die, err := floorplan.NewDie(cores)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(die, th, gridN)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// burstPowers returns a power vector with an integer-cluster burst on
// top of the typical mix — the attack's shape, deliberately stronger
// than any DTM policy would permit (used to probe coupling).
func burstPowers(m *power.Model) [power.NumUnits]float64 {
	p := m.SteadyPowers(power.TypicalRates())
	p[power.UnitIntReg] *= 8
	p[power.UnitIntExec] *= 3
	p[power.UnitIntQ] *= 3
	return p
}

// opBurstPowers returns an integer burst at the operational envelope:
// it drives the lumped IntReg just past the 358.5 K emergency
// threshold, the hottest any DTM-governed run gets.
func opBurstPowers(m *power.Model) [power.NumUnits]float64 {
	p := m.SteadyPowers(power.TypicalRates())
	p[power.UnitIntReg] *= 2
	p[power.UnitIntExec] *= 1.5
	p[power.UnitIntQ] *= 1.5
	return p
}

// TestGridLumpedAgreement is the cross-check the refactor hinges on:
// on the matched single-core configuration, the 1-core grid and the
// paper's lumped network must agree on every block sensor — at the
// steady operating point within 1.2 K, and within 3 K through an
// integer-burst transient at the operational envelope (block
// excursions capped near the 358.5 K emergency threshold, the hottest
// any DTM-governed run gets). The bounds are documented in DESIGN.md
// §15 and enforced by CI's grid-smoke job. Exact equality is not
// expected: the grid resolves intra-block lateral spreading that the
// lumped center-to-center resistances overestimate, so beyond the
// envelope the grid runs cooler by ~0.65 K per watt of block power.
func TestGridLumpedAgreement(t *testing.T) {
	cfg := config.Default()
	m := testModel(t, cfg)
	nw, err := New(floorplan.Default(), cfg.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	g := newTestGrid(t, 1, config.DefaultGridN, cfg.Thermal)

	steady := m.SteadyPowers(power.TypicalRates())
	nw.InitSteady(steady)
	g.InitSteadyCores([][power.NumUnits]float64{steady})
	for u := power.Unit(0); u < power.NumUnits; u++ {
		l, gr := nw.UnitTemp(u), g.CoreUnitTemp(0, u)
		if d := math.Abs(l - gr); d > 1.2 {
			t.Errorf("steady %s: lumped %.3f K vs grid %.3f K (|d|=%.3f)", u, l, gr, d)
		}
	}

	// Transient: one sensor interval at a time, an envelope-level
	// integer burst with a cooldown tail, the duty-cycled shape the
	// attack produces under DTM.
	interval := float64(cfg.Thermal.SensorIntervalCycles) / cfg.Power.FrequencyHz
	burst := opBurstPowers(m)
	worst, peak := 0.0, 0.0
	for i := 0; i < 600; i++ {
		p := burst
		if i%100 >= 60 {
			p = steady
		}
		nw.Step(p, interval)
		g.StepCores([][power.NumUnits]float64{p}, interval)
		for u := power.Unit(0); u < power.NumUnits; u++ {
			if d := math.Abs(nw.UnitTemp(u) - g.CoreUnitTemp(0, u)); d > worst {
				worst = d
			}
		}
		if l := nw.UnitTemp(power.UnitIntReg); l > peak {
			peak = l
		}
	}
	t.Logf("lumped peak %.2f K; worst transient block disagreement %.3f K", peak, worst)
	if peak < cfg.Thermal.EmergencyK {
		t.Errorf("burst too weak to probe the envelope: lumped peak %.2f K below emergency %.2f K",
			peak, cfg.Thermal.EmergencyK)
	}
	if worst > 3 {
		t.Errorf("transient disagreement %.3f K exceeds the documented 3 K bound", worst)
	}
}

// TestGridCrossCoreCoupling checks the attack channel exists and has
// the right shape: an integer burst on core 0 of a 2-core die heats
// core 1's IntReg — by a measurable amount, but less than it heats its
// own — and the far core of a 4-core die heats less than the near one.
func TestGridCrossCoreCoupling(t *testing.T) {
	cfg := config.Default()
	m := testModel(t, cfg)
	g := newTestGrid(t, 2, config.DefaultGridN, cfg.Thermal)
	steady := m.SteadyPowers(power.TypicalRates())
	idle := m.SteadyPowers([power.NumUnits]float64{})
	g.InitSteadyCores([][power.NumUnits]float64{steady, idle})
	v0 := g.CoreUnitTemp(1, power.UnitIntReg)

	burst := burstPowers(m)
	interval := float64(cfg.Thermal.SensorIntervalCycles) / cfg.Power.FrequencyHz
	for i := 0; i < 2000; i++ {
		g.StepCores([][power.NumUnits]float64{burst, idle}, interval)
	}
	self := g.CoreUnitTemp(0, power.UnitIntReg)
	victim := g.CoreUnitTemp(1, power.UnitIntReg)
	t.Logf("after burst: core0 IntReg %.2f K, core1 IntReg %.2f K (was %.2f K)", self, victim, v0)
	if victim-v0 < 0.5 {
		t.Errorf("core 1 IntReg rose only %.3f K under a core-0 burst; no cross-core coupling", victim-v0)
	}
	if victim >= self {
		t.Errorf("victim (%.2f K) at least as hot as the attacker (%.2f K)", victim, self)
	}
}

// TestGridSnapshotRestore: a restored grid must continue bit-
// identically to the original.
func TestGridSnapshotRestore(t *testing.T) {
	cfg := config.Default()
	m := testModel(t, cfg)
	g := newTestGrid(t, 2, 16, cfg.Thermal)
	steady := m.SteadyPowers(power.TypicalRates())
	pp := [][power.NumUnits]float64{burstPowers(m), steady}
	g.InitSteadyCores(pp)
	g.StepCores(pp, 1e-4)

	st := g.State()
	if st.Kind != config.SolverGrid {
		t.Fatalf("state kind %q", st.Kind)
	}
	// Diverge, then restore and replay.
	g.StepCores(pp, 3e-4)
	after := g.State()
	if err := g.SetState(st); err != nil {
		t.Fatal(err)
	}
	g.StepCores(pp, 3e-4)
	if !reflect.DeepEqual(g.State().Temps, after.Temps) {
		t.Error("restored grid did not replay bit-identically")
	}

	// Cross-kind and wrong-size states are rejected.
	if err := g.SetState(SolverState{Kind: config.SolverLumped, Temps: st.Temps}); err == nil {
		t.Error("lumped state restored into a grid")
	}
	if err := g.SetState(SolverState{Kind: config.SolverGrid, Temps: st.Temps[:5]}); err == nil {
		t.Error("truncated state restored into a grid")
	}
	nw, err := New(floorplan.Default(), cfg.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	if err := (Lumped{nw}).SetState(st); err == nil {
		t.Error("grid state restored into the lumped network")
	}
}

// TestGridDeterminism: two grids driven through the same history agree
// bit-for-bit (the property -parallel and fork-tree runs rely on).
func TestGridDeterminism(t *testing.T) {
	cfg := config.Default()
	m := testModel(t, cfg)
	mk := func() *Grid {
		g := newTestGrid(t, 2, config.DefaultGridN, cfg.Thermal)
		g.InitSteadyCores([][power.NumUnits]float64{m.SteadyPowers(power.TypicalRates()), m.SteadyPowers(power.TypicalRates())})
		return g
	}
	a, b := mk(), mk()
	burst := burstPowers(m)
	steady := m.SteadyPowers(power.TypicalRates())
	for i := 0; i < 200; i++ {
		p := [][power.NumUnits]float64{burst, steady}
		if i%3 == 0 {
			p[0], p[1] = p[1], p[0]
		}
		a.StepCores(p, 5e-6)
		b.StepCores(p, 5e-6)
	}
	if !reflect.DeepEqual(a.State(), b.State()) {
		t.Error("identical histories diverged")
	}
}

// TestGridIdealSink: with an ideal package the grid, like the lumped
// network, never moves off its initial operating point.
func TestGridIdealSink(t *testing.T) {
	cfg := config.Default()
	cfg.Thermal.IdealSink = true
	m := testModel(t, cfg)
	g := newTestGrid(t, 1, 16, cfg.Thermal)
	steady := m.SteadyPowers(power.TypicalRates())
	g.InitSteadyCores([][power.NumUnits]float64{steady})
	before := g.State()
	g.StepCores([][power.NumUnits]float64{burstPowers(m)}, 1e-3)
	if !reflect.DeepEqual(before.Temps, g.State().Temps) {
		t.Error("ideal-sink grid moved")
	}
}

// TestNewSolver covers the constructor dispatch and its error paths.
func TestNewSolver(t *testing.T) {
	cfg := config.Default()
	s, err := NewSolver(cfg.Topology, cfg.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(Lumped); !ok || s.Cores() != 1 {
		t.Errorf("default topology built %T with %d cores", s, s.Cores())
	}
	top := config.Topology{Cores: 2, Solver: config.SolverGrid}
	s, err = NewSolver(top, cfg.Thermal)
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := s.(*Grid); !ok || g.Cores() != 2 {
		t.Errorf("grid topology built %T with %d cores", s, s.Cores())
	}
	nx, ny := s.(*Grid).Dims()
	if ny != config.DefaultGridN || nx != 2*config.DefaultGridN {
		t.Errorf("2-core default mesh %dx%d", nx, ny)
	}
	if _, err := NewSolver(config.Topology{Cores: 2, Solver: config.SolverLumped}, cfg.Thermal); err == nil {
		t.Error("multi-core lumped accepted")
	}
	if _, err := NewSolver(config.Topology{Cores: 1, Solver: "spice"}, cfg.Thermal); err == nil {
		t.Error("unknown solver accepted")
	}
}

// BenchmarkGridThermalStep compares one sensor interval of thermal
// integration: the paper's 27-node lumped network against the 64x64
// two-layer grid (8193 nodes) on the same single-core die.
func BenchmarkGridThermalStep(b *testing.B) {
	cfg := config.Default()
	m := testModel(b, cfg)
	steady := m.SteadyPowers(power.TypicalRates())
	burst := burstPowers(m)
	interval := float64(cfg.Thermal.SensorIntervalCycles) / cfg.Power.FrequencyHz

	b.Run("lumped-27", func(b *testing.B) {
		nw, err := New(floorplan.Default(), cfg.Thermal)
		if err != nil {
			b.Fatal(err)
		}
		nw.InitSteady(steady)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Step(burst, interval)
		}
	})
	b.Run("grid-64", func(b *testing.B) {
		g := newTestGrid(b, 1, 64, cfg.Thermal)
		g.InitSteadyCores([][power.NumUnits]float64{steady})
		p := [][power.NumUnits]float64{burst}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g.StepCores(p, interval)
		}
	})
}
