package thermal

import (
	"fmt"
	"slices"
)

// NetworkState is the serializable state of the thermal network: the
// node temperatures (die blocks, spreader sections, sink). Everything
// else — capacitances, conductances, the stability bound — is derived
// from the floorplan and package parameters at construction.
type NetworkState struct {
	Temps []float64
}

// Clone returns a deep copy of the network state.
func (st NetworkState) Clone() NetworkState {
	return NetworkState{Temps: slices.Clone(st.Temps)}
}

// Snapshot returns a deep copy of the node temperatures.
func (nw *Network) Snapshot() NetworkState {
	return NetworkState{Temps: append([]float64(nil), nw.temps...)}
}

// Restore loads st into nw. The node count (2*blocks+1) must match.
func (nw *Network) Restore(st NetworkState) error {
	if len(st.Temps) != len(nw.temps) {
		return fmt.Errorf("thermal: state has %d nodes, want %d", len(st.Temps), len(nw.temps))
	}
	copy(nw.temps, st.Temps)
	return nil
}
