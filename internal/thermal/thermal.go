// Package thermal implements the HotSpot-like lumped RC thermal model:
// an equivalent heat circuit with one node per die block, one node per
// spreader section under each block, and one heat-sink node coupled to
// ambient through the package's convection resistance (Table 1:
// 0.8 K/W). Temperatures evolve by forward-Euler integration of
//
//	C_i dT_i/dt = P_i + sum_j (T_j - T_i) / R_ij
//
// The two vertical layers give the asymmetry the paper's attack relies
// on: die blocks heat with a millisecond-scale constant while the
// spreader sections under them cool with a ~10 ms constant, so hot
// spots form quickly and dissipate slowly (Section 2.1).
package thermal

import (
	"fmt"
	"math"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Material and geometry constants (silicon die over a copper spreader).
// These are physical handbook values; only SpreaderCapFactor and
// SpreadToSinkK are fitted, to the paper's ~1 ms heating / ~10 ms
// cooling time constants.
const (
	// KSi is silicon thermal conductivity, W/(m K).
	KSi = 100.0
	// CSi is silicon volumetric heat capacity, J/(m^3 K).
	CSi = 1.75e6
	// TIMThicknessM and KTIM describe the thermal interface material
	// between die and spreader.
	TIMThicknessM = 20e-6
	KTIM          = 10.0
	// KCu and CCu are copper conductivity and volumetric capacity.
	KCu = 400.0
	CCu = 3.4e6
	// SpreaderThicknessM is the heat-spreader thickness.
	SpreaderThicknessM = 1e-3
)

type edge struct {
	a, b int
	g    float64 // conductance, W/K
}

// incidence is one edge endpoint in a node's CSR row. The row node's
// flux contribution is (temps[j]-temps[k])*g: for the edge's a side,
// j/k/g are b/a/+g — exactly the naive walk's f — and for the b side
// the stored conductance is negated. IEEE 754 multiplication commutes
// with sign flips exactly, so the b-side product is bit-for-bit the
// `-f` the naive walk subtracts.
type incidence struct {
	j, k int32
	g    float64
}

// Network is the RC thermal network for one floorplan.
type Network struct {
	fp    *floorplan.Floorplan
	n     int // number of die blocks
	sink  int // sink node index == 2n
	temps []float64
	caps  []float64
	edges []edge
	gAmb  float64
	amb   float64
	ideal bool

	// flux is scratch for the Euler step.
	flux []float64
	// blockPower is scratch: per-die-block watts.
	blockPower []float64

	dtMax   float64
	blockOf [power.NumUnits]int

	// inc/rowPtr are the CSR layout of edges: node i's incidences, in
	// edge-list order, occupy inc[rowPtr[i]:rowPtr[i+1]]. Built once in
	// New; Step gathers rows instead of scattering over the edge list,
	// so each node's flux accumulates locally with the same addends in
	// the same order as the naive walk.
	inc    []incidence
	rowPtr []int32
	// tempsNext is the double buffer for the fused gather+update pass:
	// each substep reads temps and writes tempsNext, then the two swap.
	tempsNext []float64

	// planSeconds/planSteps/planDt cache the substep plan for the last
	// Step span: the simulator steps the same sensor interval for a
	// whole run, so the Ceil and division happen once.
	planSeconds float64
	planSteps   int
	planDt      float64
}

// New builds the network from a floorplan and the package parameters.
func New(fp *floorplan.Floorplan, t config.Thermal) (*Network, error) {
	if t.ConvectionRes <= 0 || t.Scale <= 0 || t.DieThicknessM <= 0 {
		return nil, fmt.Errorf("thermal: convection resistance, scale and die thickness must be positive")
	}
	n := len(fp.Blocks)
	nw := &Network{
		fp:         fp,
		n:          n,
		sink:       2 * n,
		temps:      make([]float64, 2*n+1),
		caps:       make([]float64, 2*n+1),
		flux:       make([]float64, 2*n+1),
		blockPower: make([]float64, n),
		gAmb:       1 / t.ConvectionRes,
		amb:        t.AmbientK,
		ideal:      t.IdealSink,
	}
	for u := range nw.blockOf {
		nw.blockOf[u] = fp.BlockFor(power.Unit(u))
	}

	dieCapF := t.DieCapFactor
	if dieCapF <= 0 {
		dieCapF = 1
	}
	spCapF := t.SpreaderCapFactor
	if spCapF <= 0 {
		spCapF = 1
	}
	spSinkK := t.SpreadToSinkK
	if spSinkK <= 0 {
		spSinkK = 3.1e-3
	}
	sinkCap := t.SinkCapJPerK
	if sinkCap <= 0 {
		sinkCap = 300
	}
	for i, b := range fp.Blocks {
		area := b.Area()
		// Die node capacitance and vertical path to its spreader node.
		nw.caps[i] = CSi * area * t.DieThicknessM * dieCapF / t.Scale
		rVert := t.DieThicknessM/(KSi*area) + TIMThicknessM/(KTIM*area)
		nw.edges = append(nw.edges, edge{a: i, b: n + i, g: 1 / rVert})
		// Spreader node capacitance and path to the sink.
		nw.caps[n+i] = CCu * area * SpreaderThicknessM * spCapF / t.Scale
		rSink := spSinkK / math.Sqrt(area)
		nw.edges = append(nw.edges, edge{a: n + i, b: nw.sink, g: 1 / rSink})
	}
	nw.caps[nw.sink] = sinkCap / t.Scale

	// Lateral conduction in the die and (stronger) in the spreader.
	for _, adj := range fp.Adjacencies() {
		rDie := adj.Dist / (KSi * adj.SharedLen * t.DieThicknessM)
		nw.edges = append(nw.edges, edge{a: adj.A, b: adj.B, g: 1 / rDie})
		rSp := adj.Dist / (KCu * adj.SharedLen * SpreaderThicknessM)
		nw.edges = append(nw.edges, edge{a: n + adj.A, b: n + adj.B, g: 1 / rSp})
	}

	// Stability bound: the stiffest node limits the Euler step.
	gSum := make([]float64, 2*n+1)
	for _, e := range nw.edges {
		gSum[e.a] += e.g
		gSum[e.b] += e.g
	}
	gSum[nw.sink] += nw.gAmb
	nw.dtMax = math.Inf(1)
	for i := range nw.caps {
		tau := nw.caps[i] / gSum[i]
		if tau/4 < nw.dtMax {
			nw.dtMax = tau / 4
		}
	}

	for i := range nw.temps {
		nw.temps[i] = t.AmbientK
	}
	if t.InitialK > 0 {
		for i := range nw.temps {
			nw.temps[i] = t.InitialK
		}
	}
	nw.buildIndex()
	return nw, nil
}

// buildIndex lays the edge list out as CSR rows. Each edge appears in
// two rows (its a and b nodes); within a row, incidences keep the
// edge-list order, which is what preserves the naive walk's per-node
// floating-point accumulation order exactly.
func (nw *Network) buildIndex() {
	m := len(nw.temps)
	nw.rowPtr = make([]int32, m+1)
	for _, e := range nw.edges {
		nw.rowPtr[e.a+1]++
		nw.rowPtr[e.b+1]++
	}
	for i := 0; i < m; i++ {
		nw.rowPtr[i+1] += nw.rowPtr[i]
	}
	nw.inc = make([]incidence, nw.rowPtr[m])
	nw.tempsNext = make([]float64, m)
	next := make([]int32, m)
	copy(next, nw.rowPtr[:m])
	for _, e := range nw.edges {
		a, b := int32(e.a), int32(e.b)
		nw.inc[next[e.a]] = incidence{j: b, k: a, g: e.g}
		next[e.a]++
		nw.inc[next[e.b]] = incidence{j: b, k: a, g: -e.g}
		next[e.b]++
	}
}

// unitPowersToBlocks spreads the per-unit power vector onto die blocks.
func (nw *Network) unitPowersToBlocks(p *[power.NumUnits]float64) {
	for i := range nw.blockPower {
		nw.blockPower[i] = 0
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if i := nw.blockOf[u]; i >= 0 {
			nw.blockPower[i] = p[u]
		}
	}
}

// InitSteady sets every node to the steady-state solution for the given
// per-unit power vector. The simulator calls it once per run so the die
// starts at its normal operating point (and for an ideal sink, stays
// there).
func (nw *Network) InitSteady(p [power.NumUnits]float64) {
	nw.unitPowersToBlocks(&p)
	m := 2*nw.n + 1
	// Dense G matrix with ambient folded into the RHS.
	a := make([][]float64, m)
	rhs := make([]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
	}
	for _, e := range nw.edges {
		a[e.a][e.a] += e.g
		a[e.b][e.b] += e.g
		a[e.a][e.b] -= e.g
		a[e.b][e.a] -= e.g
	}
	a[nw.sink][nw.sink] += nw.gAmb
	rhs[nw.sink] += nw.gAmb * nw.amb
	for i := 0; i < nw.n; i++ {
		rhs[i] += nw.blockPower[i]
	}
	sol := solveLinear(a, rhs)
	copy(nw.temps, sol)
}

// solveLinear performs Gaussian elimination with partial pivoting.
func solveLinear(a [][]float64, b []float64) []float64 {
	m := len(b)
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		d := a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / d
			if f == 0 {
				continue
			}
			for c := col; c < m; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < m; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	return x
}

// Step advances the network by the given wall-clock seconds under the
// per-unit power vector, using as many Euler substeps as stability
// requires. With an ideal sink, temperatures do not move.
//
// Each substep makes one fused pass over the nodes: gather the node's
// flux through its CSR row (replacing the naive zero/inject/scatter
// loops and the flux array) and integrate it into the double buffer,
// which then swaps with temps. Every node's flux sums the same
// IEEE 754 addends in the same order as stepNaive — per-row incidences
// keep edge-list order — so the temperatures are bit-identical
// (enforced by the cross-check tests).
func (nw *Network) Step(p [power.NumUnits]float64, seconds float64) {
	if nw.ideal || seconds <= 0 {
		return
	}
	nw.unitPowersToBlocks(&p)
	steps, dt := nw.plan(seconds)
	temps, out, caps := nw.temps, nw.tempsNext, nw.caps
	inc, rowPtr := nw.inc, nw.rowPtr
	for s := 0; s < steps; s++ {
		for i := range temps {
			var acc float64
			if i < nw.n {
				acc = nw.blockPower[i]
			}
			for t := rowPtr[i]; t < rowPtr[i+1]; t++ {
				in := &inc[t]
				acc += (temps[in.j] - temps[in.k]) * in.g
			}
			if i == nw.sink {
				// The ambient term stays after the sink's edge
				// contributions, exactly where the naive walk adds it.
				acc += (nw.amb - temps[i]) * nw.gAmb
			}
			out[i] = temps[i] + dt*acc/caps[i]
		}
		temps, out = out, temps
	}
	nw.temps, nw.tempsNext = temps, out
}

// plan returns the substep count and size for one Step span, caching
// the last answer.
func (nw *Network) plan(seconds float64) (int, float64) {
	if seconds != nw.planSeconds || nw.planSteps == 0 {
		steps := int(math.Ceil(seconds / nw.dtMax))
		if steps < 1 {
			steps = 1
		}
		nw.planSeconds, nw.planSteps, nw.planDt = seconds, steps, seconds/float64(steps)
	}
	return nw.planSteps, nw.planDt
}

// stepNaive is the original unindexed Euler step, retained as the
// executable specification of Step: the cross-check tests drive both
// over random floorplans and power histories and require bit-identical
// temperatures. Any change to Step's arithmetic must keep the two in
// lockstep.
func (nw *Network) stepNaive(p [power.NumUnits]float64, seconds float64) {
	if nw.ideal || seconds <= 0 {
		return
	}
	nw.unitPowersToBlocks(&p)
	steps := int(math.Ceil(seconds / nw.dtMax))
	if steps < 1 {
		steps = 1
	}
	dt := seconds / float64(steps)
	for s := 0; s < steps; s++ {
		for i := range nw.flux {
			nw.flux[i] = 0
		}
		for i := 0; i < nw.n; i++ {
			nw.flux[i] = nw.blockPower[i]
		}
		for _, e := range nw.edges {
			f := (nw.temps[e.b] - nw.temps[e.a]) * e.g
			nw.flux[e.a] += f
			nw.flux[e.b] -= f
		}
		nw.flux[nw.sink] += (nw.amb - nw.temps[nw.sink]) * nw.gAmb
		for i := range nw.temps {
			nw.temps[i] += dt * nw.flux[i] / nw.caps[i]
		}
	}
}

// UnitTemp returns the die temperature of the block hosting unit u.
func (nw *Network) UnitTemp(u power.Unit) float64 {
	return nw.temps[nw.blockOf[u]]
}

// BlockTemp returns die block i's temperature.
func (nw *Network) BlockTemp(i int) float64 { return nw.temps[i] }

// SinkTemp returns the heat-sink node temperature.
func (nw *Network) SinkTemp() float64 { return nw.temps[nw.sink] }

// SpreaderTemp returns the spreader-section temperature under block i.
func (nw *Network) SpreaderTemp(i int) float64 { return nw.temps[nw.n+i] }

// MaxUnit returns the hottest unit and its temperature.
func (nw *Network) MaxUnit() (power.Unit, float64) {
	best := power.Unit(0)
	bestT := math.Inf(-1)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if t := nw.UnitTemp(u); t > bestT {
			best, bestT = u, t
		}
	}
	return best, bestT
}

// Blocks returns the number of die blocks.
func (nw *Network) Blocks() int { return nw.n }

// Floorplan returns the floorplan the network was built from.
func (nw *Network) Floorplan() *floorplan.Floorplan { return nw.fp }

// Ideal reports whether the network models an ideal (infinite) sink.
func (nw *Network) Ideal() bool { return nw.ideal }

// TotalPower returns the sum of a per-unit power vector; a convenience
// for stats and tests.
func TotalPower(p [power.NumUnits]float64) float64 {
	var sum float64
	for _, w := range p {
		sum += w
	}
	return sum
}
