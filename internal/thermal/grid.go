// Grid is the multi-core thermal substrate: a HotSpot-style 2D finite
// difference mesh (SNIPPETS.md #1 lineage) with one cell layer for the
// silicon die, one for the copper spreader, and a lumped sink node.
// Unlike the per-block Network, the mesh resolves gradients *within*
// and *across* blocks, so heat injected on one core conducts through
// the shared silicon and spreader into its neighbour — the physical
// channel the neighbor-heat attack exploits.
//
// Power maps die blocks -> cells by area fraction (a block's watts
// spread uniformly over the cells it covers), and sensors map back
// cells -> blocks the same way (a block reads the area-weighted mean
// of its cells). The vertical and sink conductances are chosen so
// their per-block totals equal the lumped network's exactly; with one
// core, the two models share an operating point and differ only by
// intra-block lateral resolution (bounded by TestGridLumpedAgreement).
package thermal

import (
	"fmt"
	"math"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// cellFrac is one cell's share of a block: frac of the block's area
// (and therefore of its power) that falls into cell.
type cellFrac struct {
	cell int32
	frac float64
}

// Grid meshes a floorplan.Die. Node layout: die cells [0, nc),
// spreader cells [nc, 2nc), sink node 2nc.
type Grid struct {
	die    *floorplan.Die
	nx, ny int
	nc     int
	sink   int
	cw, ch float64

	temps     []float64
	tempsNext []float64

	// Uniform per-cell caps and stencil conductances (cells are all
	// the same size; only the sink path varies per cell).
	capDie, capSp, capSink float64
	gxDie, gyDie, gVert    float64
	gxSp, gySp             float64
	gSinkCell              []float64
	gAmb, amb              float64
	ideal                  bool
	dtMax                  float64

	// blockCells maps each die block onto its cells; blockPower and
	// cellPower are scatter scratch.
	blockCells [][]cellFrac
	blockPower []float64
	cellPower  []float64

	planSeconds float64
	planSteps   int
	planDt      float64
}

// NewGrid meshes the die with gridN cells along its height (one core
// tile edge, so per-core resolution is independent of the core count)
// and proportionally many along its width.
//
// The sink is provisioned per core: a K-core die gets K times the
// single-core sink capacitance and K times its ambient conductance
// (ConvectionRes/K). A fixed 0.8 K/W package would drift ~18 K hotter
// per added core's power and swamp every threshold in the config;
// per-core provisioning keeps each core at the paper's single-core
// operating point, so what the multi-core experiments measure is the
// lateral cross-core coupling and nothing else. See DESIGN.md §15.
func NewGrid(die *floorplan.Die, t config.Thermal, gridN int) (*Grid, error) {
	if t.ConvectionRes <= 0 || t.Scale <= 0 || t.DieThicknessM <= 0 {
		return nil, fmt.Errorf("thermal: convection resistance, scale and die thickness must be positive")
	}
	if gridN < 4 {
		return nil, fmt.Errorf("thermal: grid resolution %d too coarse", gridN)
	}
	ny := gridN
	nx := int(math.Round(die.W * float64(ny) / die.H))
	if nx < 4 {
		nx = 4
	}
	nc := nx * ny
	g := &Grid{
		die:  die,
		nx:   nx,
		ny:   ny,
		nc:   nc,
		sink: 2 * nc,
		cw:   die.W / float64(nx),
		ch:   die.H / float64(ny),

		temps:     make([]float64, 2*nc+1),
		tempsNext: make([]float64, 2*nc+1),

		gSinkCell:  make([]float64, nc),
		gAmb:       float64(die.NCores) / t.ConvectionRes,
		amb:        t.AmbientK,
		ideal:      t.IdealSink,
		blockCells: make([][]cellFrac, len(die.Blocks)),
		blockPower: make([]float64, len(die.Blocks)),
		cellPower:  make([]float64, nc),
	}

	dieCapF := t.DieCapFactor
	if dieCapF <= 0 {
		dieCapF = 1
	}
	spCapF := t.SpreaderCapFactor
	if spCapF <= 0 {
		spCapF = 1
	}
	spSinkK := t.SpreadToSinkK
	if spSinkK <= 0 {
		spSinkK = 3.1e-3
	}
	sinkCap := t.SinkCapJPerK
	if sinkCap <= 0 {
		sinkCap = 300
	}

	cellArea := g.cw * g.ch
	g.capDie = CSi * cellArea * t.DieThicknessM * dieCapF / t.Scale
	g.capSp = CCu * cellArea * SpreaderThicknessM * spCapF / t.Scale
	g.capSink = sinkCap * float64(die.NCores) / t.Scale

	// Lateral stencil conductances between cell centers (SNIPPETS.md
	// #1 form: g = K * thickness * edge / pitch).
	g.gxDie = KSi * t.DieThicknessM * g.ch / g.cw
	g.gyDie = KSi * t.DieThicknessM * g.cw / g.ch
	g.gxSp = KCu * SpreaderThicknessM * g.ch / g.cw
	g.gySp = KCu * SpreaderThicknessM * g.cw / g.ch
	// Vertical die->spreader conductance per cell: silicon plus TIM in
	// series over the cell area. Cells covering a block sum to exactly
	// the lumped network's per-block vertical conductance.
	g.gVert = 1 / (t.DieThicknessM/(KSi*cellArea) + TIMThicknessM/(KTIM*cellArea))

	// Block <-> cell area fractions, and each block's lumped sink
	// conductance sqrt(A)/spSinkK distributed over its cells by the
	// same fractions — keeping the grid's total sink path equal to the
	// lumped network's, so the two models share a steady state.
	for bi, b := range die.Blocks {
		bArea := b.Area()
		gSinkBlock := math.Sqrt(bArea) / spSinkK
		i0 := int(b.X / g.cw)
		i1 := int(math.Ceil((b.X + b.W) / g.cw))
		j0 := int(b.Y / g.ch)
		j1 := int(math.Ceil((b.Y + b.H) / g.ch))
		for j := max(0, j0); j < min(ny, j1); j++ {
			y0, y1 := float64(j)*g.ch, float64(j+1)*g.ch
			oy := math.Min(y1, b.Y+b.H) - math.Max(y0, b.Y)
			if oy <= 0 {
				continue
			}
			for i := max(0, i0); i < min(nx, i1); i++ {
				x0, x1 := float64(i)*g.cw, float64(i+1)*g.cw
				ox := math.Min(x1, b.X+b.W) - math.Max(x0, b.X)
				if ox <= 0 {
					continue
				}
				frac := ox * oy / bArea
				cell := int32(j*nx + i)
				g.blockCells[bi] = append(g.blockCells[bi], cellFrac{cell: cell, frac: frac})
				g.gSinkCell[cell] += gSinkBlock * frac
			}
		}
	}

	// Stability bound: the stiffest node limits the Euler substep,
	// with the same tau/4 margin the lumped network uses.
	g.dtMax = math.Inf(1)
	consider := func(cap, gSum float64) {
		if tau := cap / gSum; tau/4 < g.dtMax {
			g.dtMax = tau / 4
		}
	}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := j*nx + i
			lat := func(gx, gy float64) float64 {
				var s float64
				if i > 0 {
					s += gx
				}
				if i < nx-1 {
					s += gx
				}
				if j > 0 {
					s += gy
				}
				if j < ny-1 {
					s += gy
				}
				return s
			}
			consider(g.capDie, lat(g.gxDie, g.gyDie)+g.gVert)
			consider(g.capSp, lat(g.gxSp, g.gySp)+g.gVert+g.gSinkCell[c])
		}
	}
	var gSinkSum float64
	for _, gs := range g.gSinkCell {
		gSinkSum += gs
	}
	consider(g.capSink, gSinkSum+g.gAmb)

	init := t.AmbientK
	if t.InitialK > 0 {
		init = t.InitialK
	}
	for i := range g.temps {
		g.temps[i] = init
	}
	return g, nil
}

// Cores returns the die's core count.
func (g *Grid) Cores() int { return g.die.NCores }

// Ideal reports whether the grid models an infinite sink.
func (g *Grid) Ideal() bool { return g.ideal }

// Dims returns the mesh dimensions (cells along x, cells along y).
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// Die returns the floorplan the grid meshes.
func (g *Grid) Die() *floorplan.Die { return g.die }

// DtMax returns the Euler substep bound in seconds.
func (g *Grid) DtMax() float64 { return g.dtMax }

// powersToCells folds per-core unit powers onto die blocks (the
// shared L2 accumulates every core's contribution) and scatters block
// watts onto cells by area fraction.
func (g *Grid) powersToCells(p [][power.NumUnits]float64) {
	for i := range g.blockPower {
		g.blockPower[i] = 0
	}
	for core := range p {
		for u := power.Unit(0); u < power.NumUnits; u++ {
			if bi := g.die.BlockFor(core, u); bi >= 0 {
				g.blockPower[bi] += p[core][u]
			}
		}
	}
	for i := range g.cellPower {
		g.cellPower[i] = 0
	}
	for bi, cells := range g.blockCells {
		w := g.blockPower[bi]
		if w == 0 {
			continue
		}
		for _, cf := range cells {
			g.cellPower[cf.cell] += w * cf.frac
		}
	}
}

// StepCores advances the mesh by seconds under per-core power, using
// as many forward-Euler substeps as stability requires. With an ideal
// sink, temperatures do not move (matching the lumped network).
func (g *Grid) StepCores(p [][power.NumUnits]float64, seconds float64) {
	if g.ideal || seconds <= 0 {
		return
	}
	g.powersToCells(p)
	steps, dt := g.plan(seconds)
	for s := 0; s < steps; s++ {
		g.substep(dt)
	}
}

func (g *Grid) substep(dt float64) {
	T, out := g.temps, g.tempsNext
	nx, ny, nc := g.nx, g.ny, g.nc
	// Die layer: power in, lateral silicon conduction, vertical path
	// down to the spreader. Boundaries are adiabatic.
	for j := 0; j < ny; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			c := row + i
			t := T[c]
			acc := g.cellPower[c] + g.gVert*(T[nc+c]-t)
			if i > 0 {
				acc += g.gxDie * (T[c-1] - t)
			}
			if i < nx-1 {
				acc += g.gxDie * (T[c+1] - t)
			}
			if j > 0 {
				acc += g.gyDie * (T[c-nx] - t)
			}
			if j < ny-1 {
				acc += g.gyDie * (T[c+nx] - t)
			}
			out[c] = t + dt*acc/g.capDie
		}
	}
	// Spreader layer and sink.
	sinkT := T[g.sink]
	var sinkAcc float64
	for j := 0; j < ny; j++ {
		row := j * nx
		for i := 0; i < nx; i++ {
			c := row + i
			n := nc + c
			t := T[n]
			acc := g.gVert * (T[c] - t)
			if i > 0 {
				acc += g.gxSp * (T[n-1] - t)
			}
			if i < nx-1 {
				acc += g.gxSp * (T[n+1] - t)
			}
			if j > 0 {
				acc += g.gySp * (T[n-nx] - t)
			}
			if j < ny-1 {
				acc += g.gySp * (T[n+nx] - t)
			}
			acc += g.gSinkCell[c] * (sinkT - t)
			sinkAcc += g.gSinkCell[c] * (t - sinkT)
			out[n] = t + dt*acc/g.capSp
		}
	}
	out[g.sink] = sinkT + dt*(sinkAcc+g.gAmb*(g.amb-sinkT))/g.capSink
	g.temps, g.tempsNext = out, T
}

// plan returns the substep count and size for one span, cached like
// the lumped network's.
func (g *Grid) plan(seconds float64) (int, float64) {
	if seconds != g.planSeconds || g.planSteps == 0 {
		steps := int(math.Ceil(seconds / g.dtMax))
		if steps < 1 {
			steps = 1
		}
		g.planSeconds, g.planSteps, g.planDt = seconds, steps, seconds/float64(steps)
	}
	return g.planSteps, g.planDt
}

// InitSteadyCores relaxes the mesh to the steady state for the given
// per-core power vectors by SOR iteration (a dense direct solve at
// thousands of nodes would dominate run setup). The sweep order and
// relaxation factor are fixed, so the result is deterministic.
func (g *Grid) InitSteadyCores(p [][power.NumUnits]float64) {
	g.powersToCells(p)
	const (
		omega   = 1.8
		tol     = 1e-8 // kelvin, max per-sweep displacement
		maxIter = 200_000
	)
	T := g.temps
	nx, ny, nc := g.nx, g.ny, g.nc
	for iter := 0; iter < maxIter; iter++ {
		var maxDelta float64
		relax := func(c int, num, den float64) {
			nt := (1-omega)*T[c] + omega*num/den
			if d := math.Abs(nt - T[c]); d > maxDelta {
				maxDelta = d
			}
			T[c] = nt
		}
		for j := 0; j < ny; j++ {
			row := j * nx
			for i := 0; i < nx; i++ {
				c := row + i
				num := g.cellPower[c] + g.gVert*T[nc+c]
				den := g.gVert
				if i > 0 {
					num += g.gxDie * T[c-1]
					den += g.gxDie
				}
				if i < nx-1 {
					num += g.gxDie * T[c+1]
					den += g.gxDie
				}
				if j > 0 {
					num += g.gyDie * T[c-nx]
					den += g.gyDie
				}
				if j < ny-1 {
					num += g.gyDie * T[c+nx]
					den += g.gyDie
				}
				relax(c, num, den)
			}
		}
		for j := 0; j < ny; j++ {
			row := j * nx
			for i := 0; i < nx; i++ {
				c := row + i
				n := nc + c
				num := g.gVert*T[c] + g.gSinkCell[c]*T[g.sink]
				den := g.gVert + g.gSinkCell[c]
				if i > 0 {
					num += g.gxSp * T[n-1]
					den += g.gxSp
				}
				if i < nx-1 {
					num += g.gxSp * T[n+1]
					den += g.gxSp
				}
				if j > 0 {
					num += g.gySp * T[n-nx]
					den += g.gySp
				}
				if j < ny-1 {
					num += g.gySp * T[n+nx]
					den += g.gySp
				}
				relax(n, num, den)
			}
		}
		num := g.gAmb * g.amb
		den := g.gAmb
		for c := 0; c < nc; c++ {
			num += g.gSinkCell[c] * T[nc+c]
			den += g.gSinkCell[c]
		}
		relax(g.sink, num, den)
		if maxDelta < tol {
			return
		}
	}
}

// CoreUnitTemp reads the sensor of unit u on the given core: the
// area-weighted mean die temperature over the hosting block's cells.
func (g *Grid) CoreUnitTemp(core int, u power.Unit) float64 {
	bi := g.die.BlockFor(core, u)
	if bi < 0 {
		return g.amb
	}
	return g.BlockTemp(bi)
}

// BlockTemp returns die block bi's area-weighted mean temperature.
func (g *Grid) BlockTemp(bi int) float64 {
	var t float64
	for _, cf := range g.blockCells[bi] {
		t += g.temps[cf.cell] * cf.frac
	}
	return t
}

// CellTemp returns the die-layer temperature of cell (i, j).
func (g *Grid) CellTemp(i, j int) float64 { return g.temps[j*g.nx+i] }

// SinkTemp returns the sink node temperature.
func (g *Grid) SinkTemp() float64 { return g.temps[g.sink] }

// CoreMaxUnit returns the hottest unit of one core.
func (g *Grid) CoreMaxUnit(core int) (power.Unit, float64) {
	best := power.Unit(0)
	bestT := math.Inf(-1)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		if t := g.CoreUnitTemp(core, u); t > bestT {
			best, bestT = u, t
		}
	}
	return best, bestT
}

// State snapshots the mesh temperatures.
func (g *Grid) State() SolverState {
	return SolverState{Kind: config.SolverGrid, Temps: append([]float64(nil), g.temps...)}
}

// SetState restores a grid snapshot. Kind and node count must match.
func (g *Grid) SetState(st SolverState) error {
	if st.Kind != config.SolverGrid {
		return fmt.Errorf("thermal: %q state cannot restore into the grid solver", st.Kind)
	}
	if len(st.Temps) != len(g.temps) {
		return fmt.Errorf("thermal: grid state has %d nodes, want %d", len(st.Temps), len(g.temps))
	}
	copy(g.temps, st.Temps)
	return nil
}
