package thermal

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func TestNetworkSnapshotRestore(t *testing.T) {
	th := defaultThermal()
	a := netWith(t, th)
	a.InitSteady(uniformPower(2))
	hot := uniformPower(1)
	hot[power.UnitIntReg] = 30
	for i := 0; i < 50; i++ {
		a.Step(hot, 5e-6)
	}
	st := a.Snapshot()

	b := netWith(t, th)
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	// Identical further integration must track exactly.
	for i := 0; i < 50; i++ {
		a.Step(hot, 5e-6)
		b.Step(hot, 5e-6)
	}
	if !reflect.DeepEqual(a.Snapshot(), b.Snapshot()) {
		t.Fatal("trajectories diverge after restore")
	}
	ua, ta := a.MaxUnit()
	ub, tb := b.MaxUnit()
	if ua != ub || ta != tb {
		t.Fatalf("max unit diverges: %s %.4f vs %s %.4f", ua, ta, ub, tb)
	}

	// The snapshot is a copy of the node vector, not a view.
	if st.Temps[0] == a.BlockTemp(0) && reflect.DeepEqual(st, a.Snapshot()) {
		t.Fatal("continued network still equals the snapshot — test is vacuous")
	}

	bad := NetworkState{Temps: make([]float64, len(st.Temps)+1)}
	if err := b.Restore(bad); err == nil {
		t.Error("mismatched node count should fail")
	}
}
