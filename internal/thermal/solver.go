package thermal

import (
	"fmt"
	"slices"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Solver is the thermal substrate a simulation drives: per-core power
// vectors go in, per-core block temperatures come out. Two
// implementations exist. Lumped wraps the paper's per-block RC Network
// (single core only — the byte-identical fast path every single-core
// experiment still runs on), and Grid meshes a multi-core die with a
// HotSpot-style 2D stencil so heat conducts across core boundaries.
type Solver interface {
	// Cores returns the number of cores the substrate models.
	Cores() int
	// StepCores advances the substrate by seconds of wall-clock time
	// under per-core per-unit power (p[core][unit], watts). len(p)
	// must equal Cores().
	StepCores(p [][power.NumUnits]float64, seconds float64)
	// InitSteadyCores sets the substrate to the steady state for the
	// given per-core power vectors (the pre-run operating point).
	InitSteadyCores(p [][power.NumUnits]float64)
	// CoreUnitTemp reads the sensor of unit u on the given core: the
	// area-weighted temperature of the block hosting it.
	CoreUnitTemp(core int, u power.Unit) float64
	// CoreMaxUnit returns the hottest unit of one core.
	CoreMaxUnit(core int) (power.Unit, float64)
	// Ideal reports whether the substrate models an infinite heat sink.
	Ideal() bool
	// State and SetState snapshot/restore the mutable state (node
	// temperatures); geometry and conductances are rebuilt from config.
	State() SolverState
	SetState(SolverState) error
}

// SolverState is the serializable state of any Solver: its node
// temperatures tagged with the solver kind, so a snapshot taken under
// one solver cannot silently restore into another.
type SolverState struct {
	Kind  string
	Temps []float64
}

// Clone returns a deep copy.
func (st SolverState) Clone() SolverState {
	return SolverState{Kind: st.Kind, Temps: slices.Clone(st.Temps)}
}

// NewSolver builds the solver named by the topology: the lumped
// network over the default single-core floorplan, or the grid over a
// NewDie(Cores) die.
func NewSolver(top config.Topology, t config.Thermal) (Solver, error) {
	switch top.Solver {
	case "", config.SolverLumped:
		if top.Cores > 1 {
			return nil, fmt.Errorf("thermal: the lumped solver models a single core, not %d", top.Cores)
		}
		nw, err := New(floorplan.Default(), t)
		if err != nil {
			return nil, err
		}
		return Lumped{nw}, nil
	case config.SolverGrid:
		die, err := floorplan.NewDie(max(1, top.Cores))
		if err != nil {
			return nil, err
		}
		return NewGrid(die, t, top.EffectiveGridN())
	default:
		return nil, fmt.Errorf("thermal: unknown solver %q", top.Solver)
	}
}

// Lumped adapts the single-core Network to the Solver interface. It
// adds no arithmetic of its own: StepCores forwards p[0] to
// Network.Step, so a simulation driven through the adapter heats
// bit-identically to one driven against the Network directly.
type Lumped struct {
	*Network
}

// Cores returns 1: the lumped network models the paper's single core.
func (l Lumped) Cores() int { return 1 }

// StepCores forwards the single core's power vector to Network.Step.
func (l Lumped) StepCores(p [][power.NumUnits]float64, seconds float64) {
	l.Network.Step(p[0], seconds)
}

// InitSteadyCores forwards to Network.InitSteady.
func (l Lumped) InitSteadyCores(p [][power.NumUnits]float64) {
	l.Network.InitSteady(p[0])
}

// CoreUnitTemp reads unit u's block temperature (core must be 0).
func (l Lumped) CoreUnitTemp(core int, u power.Unit) float64 {
	return l.Network.UnitTemp(u)
}

// CoreMaxUnit returns the hottest unit.
func (l Lumped) CoreMaxUnit(core int) (power.Unit, float64) {
	return l.Network.MaxUnit()
}

// State snapshots the network temperatures.
func (l Lumped) State() SolverState {
	return SolverState{Kind: config.SolverLumped, Temps: l.Network.Snapshot().Temps}
}

// SetState restores a lumped snapshot.
func (l Lumped) SetState(st SolverState) error {
	if st.Kind != config.SolverLumped {
		return fmt.Errorf("thermal: %q state cannot restore into the lumped solver", st.Kind)
	}
	return l.Network.Restore(NetworkState{Temps: st.Temps})
}
