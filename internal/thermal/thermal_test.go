package thermal

import (
	"math"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/floorplan"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func netWith(t *testing.T, th config.Thermal) *Network {
	t.Helper()
	n, err := New(floorplan.Default(), th)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func defaultThermal() config.Thermal { return config.Default().Thermal }

// uniformPower returns P watts on every unit.
func uniformPower(p float64) [power.NumUnits]float64 {
	var out [power.NumUnits]float64
	for u := range out {
		out[u] = p
	}
	return out
}

func TestSteadyStateSinkBalance(t *testing.T) {
	th := defaultThermal()
	nw := netWith(t, th)
	p := uniformPower(2) // 24 W total
	nw.InitSteady(p)
	// In steady state all heat leaves through the convection resistance:
	// T_sink - T_amb = P_total * R_conv.
	want := th.AmbientK + TotalPower(p)*th.ConvectionRes
	if got := nw.SinkTemp(); math.Abs(got-want) > 1e-6 {
		t.Errorf("sink temp %.4f, want %.4f", got, want)
	}
	// Die blocks sit above their spreader sections, which sit above the
	// sink.
	for u := power.Unit(0); u < power.NumUnits; u++ {
		i := nw.Floorplan().BlockFor(u)
		if nw.BlockTemp(i) <= nw.SpreaderTemp(i) || nw.SpreaderTemp(i) <= nw.SinkTemp() {
			t.Errorf("%s: temperature inversion die=%.2f spreader=%.2f sink=%.2f",
				u, nw.BlockTemp(i), nw.SpreaderTemp(i), nw.SinkTemp())
		}
	}
}

func TestSteadyStateIsStepFixedPoint(t *testing.T) {
	th := defaultThermal()
	nw := netWith(t, th)
	p := uniformPower(1.5)
	nw.InitSteady(p)
	before := nw.UnitTemp(power.UnitIntReg)
	for i := 0; i < 100; i++ {
		nw.Step(p, 5e-6)
	}
	if after := nw.UnitTemp(power.UnitIntReg); math.Abs(after-before) > 0.01 {
		t.Errorf("steady state drifted: %.4f -> %.4f", before, after)
	}
}

func TestHeatingMonotonic(t *testing.T) {
	th := defaultThermal()
	nw := netWith(t, th)
	base := uniformPower(1)
	nw.InitSteady(base)
	hot := base
	hot[power.UnitIntReg] += 5
	prev := nw.UnitTemp(power.UnitIntReg)
	for i := 0; i < 50; i++ {
		nw.Step(hot, 20e-6)
		cur := nw.UnitTemp(power.UnitIntReg)
		if cur < prev-1e-9 {
			t.Fatalf("step %d: temperature fell while heating (%.4f -> %.4f)", i, prev, cur)
		}
		prev = cur
	}
	if rise := prev - 0; prev < nw.SpreaderTemp(nw.Floorplan().BlockFor(power.UnitIntReg)) {
		t.Errorf("hot die block must exceed its spreader (rise %.2f)", rise)
	}
	// Hottest unit is the one being heated.
	if u, _ := nw.MaxUnit(); u != power.UnitIntReg {
		t.Errorf("hottest unit %s, want IntReg", u)
	}
}

func TestCoolingDecaysTowardIdle(t *testing.T) {
	th := defaultThermal()
	nw := netWith(t, th)
	base := uniformPower(1)
	hot := base
	hot[power.UnitIntReg] += 8
	nw.InitSteady(hot)
	peak := nw.UnitTemp(power.UnitIntReg)
	// Drop the attack power; temperature must decay monotonically
	// toward the new steady state without undershooting.
	nw2 := netWith(t, th)
	nw2.InitSteady(base)
	floor := nw2.UnitTemp(power.UnitIntReg)
	prev := peak
	for i := 0; i < 400; i++ {
		nw.Step(base, 50e-6)
		cur := nw.UnitTemp(power.UnitIntReg)
		if cur > prev+1e-9 {
			t.Fatalf("temperature rose while cooling at step %d", i)
		}
		prev = cur
	}
	if prev < floor-0.5 {
		t.Errorf("cooled below the idle steady state: %.3f < %.3f", prev, floor)
	}
	if peak-prev < (peak-floor)*0.5 {
		t.Errorf("barely cooled: peak %.2f now %.2f floor %.2f", peak, prev, floor)
	}
}

// TestHeatFasterThanCool verifies the asymmetry heat stroke relies on:
// from the operating point, a power spike crosses a +3K band much
// faster than the same band is re-crossed downward after the spike
// ends (Section 2.1: heating is local and fast, cooling waits on the
// package).
func TestHeatFasterThanCool(t *testing.T) {
	th := defaultThermal()
	nw := netWith(t, th)
	base := uniformPower(1.5)
	nw.InitSteady(base)
	start := nw.UnitTemp(power.UnitIntReg)
	target := start + 3

	hot := base
	hot[power.UnitIntReg] += 10
	dt := 10e-6
	heatSteps := 0
	for nw.UnitTemp(power.UnitIntReg) < target {
		nw.Step(hot, dt)
		heatSteps++
		if heatSteps > 1_000_000 {
			t.Fatal("never reached target while heating")
		}
	}
	// Let the hot spot develop fully, then cool.
	for i := 0; i < 2000; i++ {
		nw.Step(hot, dt)
	}
	coolSteps := 0
	for nw.UnitTemp(power.UnitIntReg) > target {
		nw.Step(base, dt)
		coolSteps++
		if coolSteps > 10_000_000 {
			t.Fatal("never cooled back to target")
		}
	}
	if float64(coolSteps) < 2*float64(heatSteps) {
		t.Errorf("cooling (%d steps) should be much slower than heating (%d steps)", coolSteps, heatSteps)
	}
}

func TestIdealSinkNeverMoves(t *testing.T) {
	th := defaultThermal()
	th.IdealSink = true
	nw := netWith(t, th)
	nw.InitSteady(uniformPower(1))
	before := nw.UnitTemp(power.UnitIntReg)
	nw.Step(uniformPower(50), 1e-3)
	if nw.UnitTemp(power.UnitIntReg) != before {
		t.Error("ideal sink must hold temperatures")
	}
	if !nw.Ideal() {
		t.Error("Ideal() should report true")
	}
}

func TestScaleSpeedsDynamics(t *testing.T) {
	measure := func(scale float64) int {
		th := defaultThermal()
		th.Scale = scale
		nw := netWith(t, th)
		base := uniformPower(1)
		nw.InitSteady(base)
		target := nw.UnitTemp(power.UnitIntReg) + 2
		hot := base
		hot[power.UnitIntReg] += 8
		steps := 0
		for nw.UnitTemp(power.UnitIntReg) < target {
			nw.Step(hot, 5e-6)
			steps++
			if steps > 10_000_000 {
				break
			}
		}
		return steps
	}
	s1 := measure(1)
	s4 := measure(4)
	ratio := float64(s1) / float64(s4)
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("scale 4 should heat ~4x faster: ratio %.2f (steps %d vs %d)", ratio, s1, s4)
	}
}

func TestStepStabilityUnderLongInterval(t *testing.T) {
	// A single long Step must substep and stay finite/positive.
	th := defaultThermal()
	th.Scale = 64
	nw := netWith(t, th)
	nw.InitSteady(uniformPower(1))
	nw.Step(uniformPower(4), 0.01)
	for u := power.Unit(0); u < power.NumUnits; u++ {
		temp := nw.UnitTemp(u)
		if math.IsNaN(temp) || temp < th.AmbientK || temp > 1000 {
			t.Fatalf("%s temperature %f diverged", u, temp)
		}
	}
}

func TestNewErrors(t *testing.T) {
	th := defaultThermal()
	th.ConvectionRes = 0
	if _, err := New(floorplan.Default(), th); err == nil {
		t.Error("zero convection resistance should fail")
	}
	th = defaultThermal()
	th.Scale = 0
	if _, err := New(floorplan.Default(), th); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x := solveLinear(a, b)
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solve = %v", x)
	}
}

func TestTotalPower(t *testing.T) {
	var p [power.NumUnits]float64
	p[0], p[3] = 1.5, 2.5
	if TotalPower(p) != 4 {
		t.Error("TotalPower wrong")
	}
}

func TestLateralHeatFlow(t *testing.T) {
	// Heating only the register file raises its neighbours (IntQ,
	// IntExec) more than a far-away block (FPMul).
	th := defaultThermal()
	nw := netWith(t, th)
	base := uniformPower(1)
	nw.InitSteady(base)
	before := map[power.Unit]float64{}
	for _, u := range []power.Unit{power.UnitIntQ, power.UnitIntExec, power.UnitFPMul} {
		before[u] = nw.UnitTemp(u)
	}
	hot := base
	hot[power.UnitIntReg] += 10
	for i := 0; i < 3000; i++ {
		nw.Step(hot, 10e-6)
	}
	dIntQ := nw.UnitTemp(power.UnitIntQ) - before[power.UnitIntQ]
	dExec := nw.UnitTemp(power.UnitIntExec) - before[power.UnitIntExec]
	dFPMul := nw.UnitTemp(power.UnitFPMul) - before[power.UnitFPMul]
	if dIntQ <= dFPMul || dExec <= dFPMul {
		t.Errorf("lateral flow wrong: neighbours +%.2f/+%.2f, far block +%.2f", dIntQ, dExec, dFPMul)
	}
	if dIntQ <= 0 {
		t.Error("neighbour should warm up")
	}
}
