// Package workload synthesizes the programs the paper evaluates: looping
// RISC programs whose instruction mix, ILP, memory behaviour, and branch
// behaviour are matched to published characteristics of the SPEC2K
// benchmarks, plus literal implementations of the paper's malicious
// Variants 1-3 (Figures 1 and 2).
//
// SPEC2K binaries cannot be redistributed or executed here, so each
// benchmark is represented by a Profile and generated synthetically; the
// paper's experiments depend only on per-resource access rates, IPC, and
// cache-miss behaviour, which the profiles control directly (see
// DESIGN.md §2).
package workload

import (
	"fmt"
	"sort"
)

// Profile describes the dynamic behaviour of a synthetic benchmark. The
// fractions describe the intended instruction mix of the loop body;
// addressing and loop overhead perturb the realized mix slightly (the
// generator reports the realized mix via Stats).
type Profile struct {
	Name string

	// Instruction-mix fractions; they should sum to roughly 1.
	IntFrac    float64 // simple integer ALU
	MulFrac    float64 // integer multiply
	FPFrac     float64 // floating-point arithmetic
	LoadFrac   float64 // memory loads
	StoreFrac  float64 // memory stores
	BranchFrac float64 // conditional branches (besides the loop-back)

	// Accumulators is the number of independent dependency chains the
	// integer/FP work is spread over; it is the primary ILP knob.
	Accumulators int

	// FlakyFrac is the fraction of conditional branches whose direction
	// is data-dependent pseudo-random (hard to predict); the rest are
	// strongly biased and predict well.
	FlakyFrac float64

	// WarmFrac and ColdFrac split memory operations: warm references
	// stride through a footprint that misses L1 but hits L2; cold
	// references miss in the L2 and go to memory. The remainder hit L1.
	WarmFrac float64
	ColdFrac float64

	// DependentLoads chains cold loads through the address computation
	// (pointer-chasing flavour): each cold load's address depends on the
	// previous cold load's value, serializing misses.
	DependentLoads bool

	// BodyUnits sizes the loop body in generator pattern units
	// (roughly 1-6 instructions each).
	BodyUnits int
}

// Validate reports the first problem with the profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile must have a name")
	}
	sum := p.IntFrac + p.MulFrac + p.FPFrac + p.LoadFrac + p.StoreFrac + p.BranchFrac
	if sum < 0.5 || sum > 1.5 {
		return fmt.Errorf("workload: profile %s mix fractions sum to %.2f, want ~1", p.Name, sum)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"IntFrac", p.IntFrac}, {"MulFrac", p.MulFrac}, {"FPFrac", p.FPFrac},
		{"LoadFrac", p.LoadFrac}, {"StoreFrac", p.StoreFrac}, {"BranchFrac", p.BranchFrac},
		{"FlakyFrac", p.FlakyFrac}, {"WarmFrac", p.WarmFrac}, {"ColdFrac", p.ColdFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("workload: profile %s: %s=%.2f out of [0,1]", p.Name, f.name, f.v)
		}
	}
	if p.WarmFrac+p.ColdFrac > 1 {
		return fmt.Errorf("workload: profile %s: warm+cold fraction %.2f exceeds 1", p.Name, p.WarmFrac+p.ColdFrac)
	}
	if p.Accumulators < 1 || p.Accumulators > 8 {
		return fmt.Errorf("workload: profile %s: accumulators %d out of [1,8]", p.Name, p.Accumulators)
	}
	if p.BodyUnits < 8 {
		return fmt.Errorf("workload: profile %s: body units %d too small", p.Name, p.BodyUnits)
	}
	return nil
}

// specProfiles models the SPEC2K programs named in the paper's figures.
// The numbers are synthetic but chosen so the suite spans the behaviours
// the paper relies on: IPC from ~0.3 (mcf) to ~2.5 (crafty/eon/lucas),
// integer register-file access rates from ~1.5 to ~6 per cycle
// (Figure 3: all SPEC programs stay below 6), and a spread of L1/L2 miss
// behaviour. crafty/eon/gzip are the high-IPC, register-hungry programs
// the paper says "already have power-density problems".
var specProfiles = map[string]Profile{
	"applu": {
		Name: "applu", IntFrac: 0.22, FPFrac: 0.38, LoadFrac: 0.24, StoreFrac: 0.08, BranchFrac: 0.06, MulFrac: 0.02,
		Accumulators: 6, FlakyFrac: 0.05, WarmFrac: 0.20, ColdFrac: 0.003, BodyUnits: 1200,
	},
	"apsi": {
		Name: "apsi", IntFrac: 0.26, FPFrac: 0.34, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.08, MulFrac: 0.02,
		Accumulators: 5, FlakyFrac: 0.10, WarmFrac: 0.15, ColdFrac: 0.007, BodyUnits: 800,
	},
	"art": {
		Name: "art", IntFrac: 0.24, FPFrac: 0.30, LoadFrac: 0.30, StoreFrac: 0.04, BranchFrac: 0.10, MulFrac: 0.02,
		Accumulators: 3, FlakyFrac: 0.08, WarmFrac: 0.25, ColdFrac: 0.030, BodyUnits: 800,
	},
	"bzip2": {
		Name: "bzip2", IntFrac: 0.44, FPFrac: 0.00, LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.16, MulFrac: 0.02,
		Accumulators: 4, FlakyFrac: 0.20, WarmFrac: 0.12, ColdFrac: 0.006, BodyUnits: 800,
	},
	"crafty": {
		Name: "crafty", IntFrac: 0.52, FPFrac: 0.00, LoadFrac: 0.28, StoreFrac: 0.06, BranchFrac: 0.12, MulFrac: 0.02,
		Accumulators: 7, FlakyFrac: 0.18, WarmFrac: 0.05, ColdFrac: 0.003, BodyUnits: 1200,
	},
	"eon": {
		Name: "eon", IntFrac: 0.38, FPFrac: 0.16, LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.08, MulFrac: 0.02,
		Accumulators: 7, FlakyFrac: 0.05, WarmFrac: 0.04, ColdFrac: 0.003, BodyUnits: 1200,
	},
	"equake": {
		Name: "equake", IntFrac: 0.24, FPFrac: 0.30, LoadFrac: 0.30, StoreFrac: 0.06, BranchFrac: 0.08, MulFrac: 0.02,
		Accumulators: 3, FlakyFrac: 0.06, WarmFrac: 0.30, ColdFrac: 0.018, BodyUnits: 800,
	},
	"gap": {
		Name: "gap", IntFrac: 0.44, FPFrac: 0.02, LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.14, MulFrac: 0.04,
		Accumulators: 5, FlakyFrac: 0.12, WarmFrac: 0.10, ColdFrac: 0.007, BodyUnits: 800,
	},
	"gcc": {
		Name: "gcc", IntFrac: 0.42, FPFrac: 0.00, LoadFrac: 0.26, StoreFrac: 0.12, BranchFrac: 0.18, MulFrac: 0.02,
		Accumulators: 4, FlakyFrac: 0.25, WarmFrac: 0.18, ColdFrac: 0.010, BodyUnits: 800,
	},
	"gzip": {
		Name: "gzip", IntFrac: 0.48, FPFrac: 0.00, LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.16, MulFrac: 0.02,
		Accumulators: 6, FlakyFrac: 0.12, WarmFrac: 0.06, ColdFrac: 0.005, BodyUnits: 800,
	},
	"lucas": {
		Name: "lucas", IntFrac: 0.20, FPFrac: 0.44, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.04, MulFrac: 0.02,
		Accumulators: 7, FlakyFrac: 0.02, WarmFrac: 0.10, ColdFrac: 0.005, BodyUnits: 1200,
	},
	"mcf": {
		Name: "mcf", IntFrac: 0.30, FPFrac: 0.00, LoadFrac: 0.36, StoreFrac: 0.08, BranchFrac: 0.24, MulFrac: 0.02,
		Accumulators: 2, FlakyFrac: 0.30, WarmFrac: 0.20, ColdFrac: 0.060, DependentLoads: true, BodyUnits: 800,
	},
	"mesa": {
		Name: "mesa", IntFrac: 0.30, FPFrac: 0.28, LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.06, MulFrac: 0.02,
		Accumulators: 6, FlakyFrac: 0.05, WarmFrac: 0.05, ColdFrac: 0.005, BodyUnits: 1200,
	},
	"parser": {
		Name: "parser", IntFrac: 0.40, FPFrac: 0.00, LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.20, MulFrac: 0.02,
		Accumulators: 3, FlakyFrac: 0.22, WarmFrac: 0.15, ColdFrac: 0.013, BodyUnits: 800,
	},
	"twolf": {
		Name: "twolf", IntFrac: 0.40, FPFrac: 0.04, LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.18, MulFrac: 0.02,
		Accumulators: 3, FlakyFrac: 0.18, WarmFrac: 0.28, ColdFrac: 0.018, BodyUnits: 800,
	},
	"vpr": {
		Name: "vpr", IntFrac: 0.38, FPFrac: 0.08, LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.16, MulFrac: 0.02,
		Accumulators: 4, FlakyFrac: 0.15, WarmFrac: 0.20, ColdFrac: 0.022, BodyUnits: 800,
	},
	"vortex": {
		Name: "vortex", IntFrac: 0.42, FPFrac: 0.00, LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.14, MulFrac: 0.02,
		Accumulators: 5, FlakyFrac: 0.08, WarmFrac: 0.14, ColdFrac: 0.004, BodyUnits: 800,
	},
}

// SpecNames returns the benchmark names in stable (sorted) order.
func SpecNames() []string {
	names := make([]string, 0, len(specProfiles))
	for n := range specProfiles {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SpecProfile returns the profile for a named SPEC2K-like benchmark.
func SpecProfile(name string) (Profile, error) {
	p, ok := specProfiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, SpecNames())
	}
	return p, nil
}
