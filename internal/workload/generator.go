package workload

import (
	"fmt"
	"math/rand"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
)

// Memory-stream layout. Each stream strides through a power-of-two
// footprint chosen against the Table 1 cache geometry:
//
//	hot:  8 KB   — always hits the 64 KB L1
//	warm: 128 KB — exceeds the 64 KB L1 (mostly misses), hits the 2 MB
//	              L2 after one warmup pass
//	cold: 16 MB  — misses the 2 MB L2, goes to memory
//
// Addresses are thread-private (the pipeline offsets them per context).
const (
	hotBase  = 0x0010_0000
	warmBase = 0x0100_0000
	coldBase = 0x1000_0000

	hotMask  = 8<<10 - 1
	warmMask = 128<<10 - 1
	coldMask = 16<<20 - 1

	hotStride  = 8
	warmStride = 64  // one L1 line per access
	coldStride = 128 // one L2 line per access
)

// Register conventions used by generated programs.
const (
	regHotOff    = 1
	regWarmOff   = 2
	regColdOff   = 3
	regHotBase   = 4
	regWarmBase  = 5
	regColdBase  = 6
	regAddr      = 7
	regSink      = 8 // load destination
	regRand      = 9 // xorshift state
	regScratch   = 10
	regStoreV    = 11
	regDep       = 12 // zero, but data-dependent on the last cold load
	regOne       = 13
	regAccBase   = 16 // r16.. integer accumulators
	regConstBase = 24 // r24..r27: read-only ALU operands
	numConsts    = 4
	fpConstBase  = 12 // f12..f15: read-only FP operands (never written)
)

// Stats describes the realized composition of a generated program.
type Stats struct {
	BodyInsts int
	Mix       map[string]int // realized static counts by category
}

// Generate synthesizes a looping program from a profile. The same
// profile and seed always produce the same program.
func Generate(p Profile, seed int64) (*isa.Program, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed ^ int64(len(p.Name))<<32))
	b := isa.NewBuilder(p.Name)
	emitPrologue(b, rng)

	// Build the unit schedule for the loop body with deterministic
	// per-category counts (including the warm/cold/flaky splits), then
	// shuffle it so the categories interleave.
	var units []string
	add := func(kind string, n int) {
		for i := 0; i < n; i++ {
			units = append(units, kind)
		}
	}
	count := func(frac float64, of int) int { return int(frac*float64(of) + 0.5) }
	addMem := func(kind string, n int) {
		cold := count(p.ColdFrac, n)
		warm := count(p.WarmFrac, n)
		if cold+warm > n {
			warm = n - cold
		}
		add(kind+":c", cold)
		add(kind+":w", warm)
		add(kind+":h", n-cold-warm)
	}
	add("int", count(p.IntFrac, p.BodyUnits))
	add("mul", count(p.MulFrac, p.BodyUnits))
	add("fp", count(p.FPFrac, p.BodyUnits))
	addMem("load", count(p.LoadFrac, p.BodyUnits))
	addMem("store", count(p.StoreFrac, p.BodyUnits))
	nBranch := count(p.BranchFrac, p.BodyUnits)
	nFlaky := count(p.FlakyFrac, nBranch)
	add("branch:f", nFlaky)
	add("branch:b", nBranch-nFlaky)
	if len(units) == 0 {
		return nil, Stats{}, fmt.Errorf("workload: profile %s produced an empty body", p.Name)
	}
	rng.Shuffle(len(units), func(i, j int) { units[i], units[j] = units[j], units[i] })

	st := Stats{Mix: make(map[string]int)}
	g := &bodyGen{b: b, p: p, rng: rng, stats: &st}
	b.Label("body")
	prevLen := b.Len()
	for _, kind := range units {
		switch kind {
		case "int":
			g.intOp()
		case "mul":
			g.mulOp()
		case "fp":
			g.fpOp()
		case "load:h", "load:w", "load:c":
			g.memOp(false, kind[5])
		case "store:h", "store:w", "store:c":
			g.memOp(true, kind[6])
		case "branch:f":
			g.branch(true)
		case "branch:b":
			g.branch(false)
		}
		st.Mix[kind]++
	}
	b.Br("body")
	st.BodyInsts = b.Len() - prevLen + 1
	prog, err := b.Build()
	if err != nil {
		return nil, Stats{}, err
	}
	return prog, st, nil
}

// MustGenerate is Generate that panics on error; for table-driven use
// with the built-in profiles, which are validated by tests.
func MustGenerate(p Profile, seed int64) *isa.Program {
	prog, _, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return prog
}

// Spec generates the named SPEC2K-like benchmark.
func Spec(name string, seed int64) (*isa.Program, error) {
	p, err := SpecProfile(name)
	if err != nil {
		return nil, err
	}
	prog, _, err := Generate(p, seed)
	return prog, err
}

func emitPrologue(b *isa.Builder, rng *rand.Rand) {
	b.MovI(regHotBase, hotBase)
	b.MovI(regWarmBase, warmBase)
	b.MovI(regColdBase, coldBase)
	b.MovI(regHotOff, 0)
	b.MovI(regWarmOff, int64(rng.Intn(warmMask+1))&^7)
	b.MovI(regColdOff, int64(rng.Intn(coldMask+1))&^127)
	b.MovI(regRand, int64(rng.Uint32())|1)
	b.MovI(regStoreV, 7)
	b.MovI(regDep, 0)
	b.MovI(regOne, 1)
	for i := 0; i < 8; i++ {
		b.MovI(uint8(regAccBase+i), int64(i+1))
	}
	for i := 0; i < numConsts; i++ {
		b.MovI(uint8(regConstBase+i), int64(2*i+3))
	}
}

type bodyGen struct {
	b        *isa.Builder
	p        Profile
	rng      *rand.Rand
	stats    *Stats
	accNext  int
	labelSeq int
}

func (g *bodyGen) acc() uint8 {
	r := uint8(regAccBase + g.accNext%g.p.Accumulators)
	g.accNext++
	return r
}

var intOps = []isa.Op{isa.OpAdd, isa.OpSub, isa.OpXor, isa.OpAnd, isa.OpOr}

// konst returns a read-only integer operand register; keeping second
// operands read-only keeps the accumulator chains independent, so the
// profile's Accumulators field directly controls ILP.
func (g *bodyGen) konst() uint8 {
	return uint8(regConstBase + g.rng.Intn(numConsts))
}

func (g *bodyGen) intOp() {
	a := g.acc()
	op := intOps[g.rng.Intn(len(intOps))]
	if g.rng.Intn(2) == 0 {
		g.b.ALUImm(op, a, a, int64(g.rng.Intn(255)+1))
	} else {
		g.b.ALU(op, a, a, g.konst())
	}
}

func (g *bodyGen) mulOp() {
	a := g.acc()
	g.b.ALU(isa.OpMul, a, a, g.konst())
}

func (g *bodyGen) fpOp() {
	// FP accumulators rotate over f0..f(Accumulators-1); the second
	// operand is a read-only FP register so chains stay independent.
	i := uint8(g.accNext % g.p.Accumulators)
	g.accNext++
	j := uint8(fpConstBase + g.rng.Intn(numConsts))
	op := isa.OpFAdd
	if g.rng.Intn(3) == 0 {
		op = isa.OpFMul
	}
	g.b.FP(op, i, i, j)
}

// memOp emits one load or store to the hot ('h'), warm ('w'), or cold
// ('c') stream:
//
//	addl off, off, stride
//	and  off, off, mask
//	addl r7, base, off
//	ldq/stq ...
//
// Cold references with DependentLoads also thread regDep through the
// address so consecutive cold misses serialize (pointer-chasing).
func (g *bodyGen) memOp(store bool, stream byte) {
	var off, base uint8
	var stride, mask int64
	cold := false
	switch stream {
	case 'c':
		off, base, stride, mask = regColdOff, regColdBase, coldStride, coldMask
		cold = true
	case 'w':
		off, base, stride, mask = regWarmOff, regWarmBase, warmStride, warmMask
	default:
		off, base, stride, mask = regHotOff, regHotBase, hotStride, hotMask
	}
	g.b.ALUImm(isa.OpAdd, off, off, stride)
	g.b.ALUImm(isa.OpAnd, off, off, mask)
	if cold && g.p.DependentLoads {
		g.b.ALU(isa.OpAdd, off, off, regDep)
	}
	g.b.ALU(isa.OpAdd, regAddr, base, off)
	if store {
		g.b.Store(regStoreV, regAddr, 0)
		return
	}
	g.b.Load(regSink, regAddr, 0)
	if cold && g.p.DependentLoads {
		// regDep = regSink & 0: value is always zero but depends on the
		// load, so the next cold address waits for this miss.
		g.b.ALUImm(isa.OpAnd, regDep, regSink, 0)
	}
}

// branch emits either a hard-to-predict data-dependent branch (xorshift
// low bit) or a strongly biased always-taken branch.
func (g *bodyGen) branch(flaky bool) {
	g.labelSeq++
	label := fmt.Sprintf("sk%d", g.labelSeq)
	if flaky {
		// xorshift64 (13,7,17) keeps the branch stream effectively
		// random to the predictor.
		g.b.ALUImm(isa.OpShl, regScratch, regRand, 13)
		g.b.ALU(isa.OpXor, regRand, regRand, regScratch)
		g.b.ALUImm(isa.OpShr, regScratch, regRand, 7)
		g.b.ALU(isa.OpXor, regRand, regRand, regScratch)
		g.b.ALUImm(isa.OpShl, regScratch, regRand, 17)
		g.b.ALU(isa.OpXor, regRand, regRand, regScratch)
		g.b.ALUImm(isa.OpAnd, regScratch, regRand, 1)
		g.b.Bnez(regScratch, label)
	} else {
		g.b.Bnez(regOne, label)
	}
	filler := g.acc()
	g.b.ALUImm(isa.OpAdd, filler, filler, 1) // not-taken filler
	g.b.Label(label)
}
