package workload

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
)

// The malicious programs of the paper's Figures 1 and 2. All three
// variants attack the integer register file, the shared SMT resource
// with the highest power density.

// Variant1Params tunes the aggressive attacker of Figure 1.
type Variant1Params struct {
	// Adds is the number of independent addl instructions per loop
	// iteration. A large count keeps the loop-back branch overhead
	// negligible so the thread issues register-file accesses at the
	// functional-unit limit.
	Adds int
}

// DefaultVariant1 returns the paper's Figure 1 parameters.
func DefaultVariant1() Variant1Params { return Variant1Params{Adds: 48} }

// Variant1 builds the Figure 1 attacker: an unrolled loop of independent
// integer adds. It both heats the register file (~10+ accesses/cycle)
// and monopolizes ICOUNT fetch with its high IPC.
func Variant1(p Variant1Params) (*isa.Program, error) {
	if p.Adds < 1 {
		return nil, fmt.Errorf("workload: variant1 needs at least one add, got %d", p.Adds)
	}
	b := isa.NewBuilder("variant1")
	b.MovI(2, 1)
	b.MovI(3, 2)
	b.Label("L1")
	for i := 0; i < p.Adds; i++ {
		// addl $1, $2, $3 — exactly the paper's listing; register
		// renaming makes the instances independent.
		b.ALU(isa.OpAdd, 1, 2, 3)
	}
	b.Br("L1")
	return b.Build()
}

// Variant2Params tunes the moderately malicious attacker of Figure 2:
// a register-file burst phase followed by a phase of L2-conflict-missing
// loads. Adjusting the phase durations tunes the thread's IPC (and flat
// average access rate) down into the range of normal programs while the
// burst phases still create the hot spot.
type Variant2Params struct {
	// Adds is the unrolled add count per burst iteration.
	Adds int
	// BurstIters is the number of burst-loop iterations per phase.
	BurstIters int64
	// MissIters is the number of miss-loop iterations per phase; each
	// iteration performs MissLoads loads that conflict in one L2 set.
	MissIters int64
	// MissLoads is the number of conflicting load addresses (paper: 9
	// addresses mapping to the same set of the 8-way L2).
	MissLoads int
	// L2SetStride is the address distance that maps back to the same L2
	// set (L2 sets x line size). The default matches Table 1's 2 MB
	// 8-way, 128 B-line L2: 256 KB.
	L2SetStride int64
}

// DefaultVariant2 returns burst/miss durations calibrated so each burst
// phase (~1.5 M cycles at ~12 register-file accesses/cycle) outlasts
// the register file's thermal time constant — the hot spot forms and
// trips the sensor mid-burst — while the interleaved miss phases pull
// the thread's overall IPC and flat average access rate down into the
// SPEC range (no ICOUNT monopolization, Section 3.1).
func DefaultVariant2() Variant2Params {
	return Variant2Params{
		Adds:        48,
		BurstIters:  120_000,
		MissIters:   700,
		MissLoads:   9,
		L2SetStride: 256 << 10,
	}
}

// Variant2 builds the Figure 2 attacker.
func Variant2(p Variant2Params) (*isa.Program, error) {
	return phasedAttacker("variant2", p, 1)
}

// Variant3Params is Variant2Params; variant3 is the evasive attacker
// that moderates its access rate to try to slip under detection.
type Variant3Params = Variant2Params

// DefaultVariant3 returns the evasive attacker: its bursts run at a
// moderated register-file rate (three dependent chains instead of fully
// independent adds) and its miss phases are much longer, dropping the
// flat average access rate toward the bottom of the SPEC range. The
// moderation limits the heating rate — the paper measures roughly half
// the damage of Variant2 — without reliably slipping under the
// weighted-average culprit identification.
func DefaultVariant3() Variant3Params {
	return Variant3Params{
		Adds:        48,
		BurstIters:  160_000,
		MissIters:   2600,
		MissLoads:   9,
		L2SetStride: 256 << 10,
	}
}

// Variant3 builds the evasive attacker: same phase structure as
// Variant2 but with the adds arranged in three dependency chains,
// moderating the burst-phase register-file access rate.
func Variant3(p Variant3Params) (*isa.Program, error) {
	return phasedAttacker("variant3", p, 3)
}

// phasedAttacker emits:
//
//	outer:
//	  rc = BurstIters
//	burst:
//	  addl ... (Adds times; 'chains' dependency chains)
//	  rc--; bnez rc, burst
//	  rm = MissIters
//	miss:
//	  ldq from MissLoads addresses conflicting in one L2 set
//	  rm--; bnez rm, miss
//	  br outer
func phasedAttacker(name string, p Variant2Params, chains int) (*isa.Program, error) {
	switch {
	case p.Adds < 1:
		return nil, fmt.Errorf("workload: %s needs at least one add", name)
	case p.BurstIters < 1 || p.MissIters < 0:
		return nil, fmt.Errorf("workload: %s phase lengths must be positive", name)
	case p.MissLoads < 1 || p.MissLoads > 12:
		return nil, fmt.Errorf("workload: %s miss loads %d out of [1,12]", name, p.MissLoads)
	case p.L2SetStride <= 0:
		return nil, fmt.Errorf("workload: %s L2 set stride must be positive", name)
	case chains < 1 || chains > 4:
		return nil, fmt.Errorf("workload: %s chains %d out of [1,4]", name, chains)
	}
	const (
		regBurstCnt = 14
		regMissCnt  = 15
		regAddrBase = 16 // r16.. hold the conflicting addresses
	)
	b := isa.NewBuilder(name)
	b.MovI(2, 1)
	b.MovI(3, 2)
	for i := 0; i < p.MissLoads; i++ {
		b.MovI(uint8(regAddrBase+i), coldBase+int64(i+1)*p.L2SetStride)
	}
	b.Label("outer")
	b.MovI(regBurstCnt, p.BurstIters)
	b.Label("burst")
	for i := 0; i < p.Adds; i++ {
		if chains == 1 {
			b.ALU(isa.OpAdd, 1, 2, 3) // independent: Figure 2 phase 1
		} else {
			// Dependent chains: $c += $2 serializes within each chain,
			// lowering IPC and access rate (variant3's evasion).
			c := uint8(4 + i%chains)
			b.ALU(isa.OpAdd, c, c, 2)
		}
	}
	b.ALUImm(isa.OpSub, regBurstCnt, regBurstCnt, 1)
	b.Bnez(regBurstCnt, "burst")
	if p.MissIters > 0 {
		b.MovI(regMissCnt, p.MissIters)
		b.Label("miss")
		for i := 0; i < p.MissLoads; i++ {
			// ldq $4, addr_i — the addresses share one L2 set; with
			// MissLoads > associativity every access misses.
			b.Load(4, uint8(regAddrBase+i), 0)
		}
		b.ALUImm(isa.OpSub, regMissCnt, regMissCnt, 1)
		b.Bnez(regMissCnt, "miss")
	}
	b.Br("outer")
	return b.Build()
}

// VariantForScale builds variant n with phase durations rescaled for a
// thermal scale other than the default configuration's 16: the attack's
// burst must outlast the (scale-dependent) thermal time constant of the
// register file, so phase iteration counts grow as the scale shrinks.
func VariantForScale(n int, scale float64) (*isa.Program, error) {
	if scale <= 0 {
		return nil, fmt.Errorf("workload: scale %g must be positive", scale)
	}
	f := 16 / scale
	switch n {
	case 1:
		return Variant1(DefaultVariant1())
	case 2:
		p := DefaultVariant2()
		p.BurstIters = int64(float64(p.BurstIters) * f)
		p.MissIters = int64(float64(p.MissIters) * f)
		return Variant2(p)
	case 3:
		p := DefaultVariant3()
		p.BurstIters = int64(float64(p.BurstIters) * f)
		p.MissIters = int64(float64(p.MissIters) * f)
		return Variant3(p)
	default:
		return nil, fmt.Errorf("workload: unknown malicious variant %d", n)
	}
}

// Variant builds malicious variant n (1..3) with default parameters.
func Variant(n int) (*isa.Program, error) {
	switch n {
	case 1:
		return Variant1(DefaultVariant1())
	case 2:
		return Variant2(DefaultVariant2())
	case 3:
		return Variant3(DefaultVariant3())
	default:
		return nil, fmt.Errorf("workload: unknown malicious variant %d", n)
	}
}

// FigureOneListing is the paper's Figure 1 code in our assembler syntax;
// tests assemble it to confirm the assembler accepts the paper's style.
const FigureOneListing = `
L$1:	addl $1, $2, $3
	addl $1, $2, $3
	addl $1, $2, $3
	br L$1
`

// FigureTwoListing is the paper's Figure 2 code (abridged address list).
const FigureTwoListing = `
	movi $16, 0x10040000
	movi $17, 0x10080000
	movi $18, 0x100c0000
L$1:	addl $1, $2, $3
	addl $1, $2, $3
	br L$2
L$2:	ldq $4, 0($16)
	ldq $4, 0($17)
	ldq $4, 0($18)
	br L$1
`
