package workload

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
)

// Classic microbenchmark kernels. Unlike the SPEC-like profiles these
// are hand-built loops with precisely known behaviour; tests use them
// to pin the simulator's corners, and they make useful co-runners when
// experimenting with the attack (e.g. a pure-FP victim leaves the
// integer register file cold).

// KernelNames lists the built-in kernels.
func KernelNames() []string {
	return []string{"stream", "pointerchase", "fpblast", "branchstorm", "stores"}
}

// Kernel builds the named microbenchmark.
func Kernel(name string) (*isa.Program, error) {
	switch name {
	case "stream":
		return streamKernel(), nil
	case "pointerchase":
		return pointerChaseKernel(), nil
	case "fpblast":
		return fpBlastKernel(), nil
	case "branchstorm":
		return branchStormKernel(), nil
	case "stores":
		return storeKernel(), nil
	default:
		return nil, fmt.Errorf("workload: unknown kernel %q (have %v)", name, KernelNames())
	}
}

// streamKernel reads sequentially through a 4 MB footprint, touching
// one L2 line per iteration (four words of it): a bandwidth-style
// streaming access pattern. On this machine the L2-miss thread squash
// serializes misses, so throughput is one line per memory round trip —
// still roughly twice the pointer chaser, which pays a full round trip
// for every seven instructions.
func streamKernel() *isa.Program {
	b := isa.NewBuilder("stream")
	const mask = 4<<20 - 1
	b.MovI(1, 0x2000_0000) // base
	b.MovI(2, 0)           // offset
	b.Label("l")
	b.ALU(isa.OpAdd, 3, 1, 2)
	for i := 0; i < 4; i++ {
		b.Load(4, 3, int64(i*8))
	}
	b.ALUImm(isa.OpAdd, 2, 2, 128)
	b.ALUImm(isa.OpAnd, 2, 2, mask)
	return b.Br("l").MustBuild()
}

// pointerChaseKernel serializes every cold miss through the address
// computation: the worst-case memory-latency-bound thread (mcf's inner
// loop in miniature).
func pointerChaseKernel() *isa.Program {
	b := isa.NewBuilder("pointerchase")
	const mask = 8<<20 - 1
	b.MovI(1, 0x3000_0000)
	b.MovI(2, 0)
	b.MovI(5, 0)
	b.Label("l")
	b.ALU(isa.OpAdd, 3, 1, 2)
	b.Load(4, 3, 0)
	// Next offset depends on the loaded value (always zero, so the
	// stride stays deterministic, but the dependence is real).
	b.ALUImm(isa.OpAnd, 5, 4, 0)
	b.ALU(isa.OpAdd, 2, 2, 5)
	b.ALUImm(isa.OpAdd, 2, 2, 4096)
	b.ALUImm(isa.OpAnd, 2, 2, mask)
	return b.Br("l").MustBuild()
}

// fpBlastKernel saturates the floating-point units while leaving the
// integer register file almost idle — a victim whose own heat is
// elsewhere on the die.
func fpBlastKernel() *isa.Program {
	b := isa.NewBuilder("fpblast")
	b.Label("l")
	for i := 0; i < 24; i++ {
		d := uint8(i % 8)
		b.FP(isa.OpFAdd, d, d, uint8(8+i%4))
		if i%3 == 0 {
			b.FP(isa.OpFMul, uint8(16+i%4), uint8(16+i%4), uint8(8+i%4))
		}
	}
	return b.Br("l").MustBuild()
}

// branchStormKernel is almost nothing but data-dependent branches: a
// branch-predictor and front-end stress test.
func branchStormKernel() *isa.Program {
	b := isa.NewBuilder("branchstorm")
	b.MovI(9, 0x9E3779B9)
	b.Label("l")
	for i := 0; i < 12; i++ {
		b.ALUImm(isa.OpShl, 10, 9, 13)
		b.ALU(isa.OpXor, 9, 9, 10)
		b.ALUImm(isa.OpShr, 10, 9, 7)
		b.ALU(isa.OpXor, 9, 9, 10)
		b.ALUImm(isa.OpAnd, 10, 9, 1)
		label := fmt.Sprintf("s%d", i)
		b.Bnez(10, label)
		b.Nop()
		b.Label(label)
	}
	return b.Br("l").MustBuild()
}

// storeKernel is write-dominated: it marches stores through a footprint
// larger than the L2, generating dirty evictions and write-back
// traffic.
func storeKernel() *isa.Program {
	b := isa.NewBuilder("stores")
	const mask = 8<<20 - 1
	b.MovI(1, 0x5000_0000)
	b.MovI(2, 0)
	b.MovI(5, 77)
	b.Label("l")
	b.ALU(isa.OpAdd, 3, 1, 2)
	for i := 0; i < 4; i++ {
		b.Store(5, 3, int64(i*8))
	}
	b.ALUImm(isa.OpAdd, 2, 2, 128)
	b.ALUImm(isa.OpAnd, 2, 2, mask)
	return b.Br("l").MustBuild()
}
