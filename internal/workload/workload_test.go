package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
)

func TestSpecProfilesValidate(t *testing.T) {
	names := SpecNames()
	if len(names) < 16 {
		t.Fatalf("only %d benchmarks, want >= 16", len(names))
	}
	for _, n := range names {
		p, err := SpecProfile(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile %s has Name %q", n, p.Name)
		}
	}
	if _, err := SpecProfile("quake3"); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestSpecNamesSorted(t *testing.T) {
	names := SpecNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _, err := Generate(specProfiles["gcc"], 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Generate(specProfiles["gcc"], 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Insts {
		if a.Insts[i] != b.Insts[i] {
			t.Fatalf("inst %d differs", i)
		}
	}
	c, _, err := Generate(specProfiles["gcc"], 8)
	if err != nil {
		t.Fatal(err)
	}
	same := c.Len() == a.Len()
	if same {
		for i := range a.Insts {
			if a.Insts[i] != c.Insts[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestGenerateMixCounts(t *testing.T) {
	p := specProfiles["crafty"]
	_, st, err := Generate(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range st.Mix {
		total += n
	}
	// Each category's unit count should be within rounding of the
	// requested fraction.
	checks := []struct {
		kinds []string
		frac  float64
	}{
		{[]string{"int"}, p.IntFrac},
		{[]string{"mul"}, p.MulFrac},
		{[]string{"load:h", "load:w", "load:c"}, p.LoadFrac},
		{[]string{"store:h", "store:w", "store:c"}, p.StoreFrac},
		{[]string{"branch:f", "branch:b"}, p.BranchFrac},
	}
	for _, c := range checks {
		n := 0
		for _, k := range c.kinds {
			n += st.Mix[k]
		}
		want := int(c.frac*float64(p.BodyUnits) + 0.5)
		if n != want {
			t.Errorf("%v count = %d, want %d", c.kinds, n, want)
		}
	}
	// Flaky split is deterministic.
	nBranch := st.Mix["branch:f"] + st.Mix["branch:b"]
	wantFlaky := int(p.FlakyFrac*float64(nBranch) + 0.5)
	if st.Mix["branch:f"] != wantFlaky {
		t.Errorf("flaky branches = %d, want %d", st.Mix["branch:f"], wantFlaky)
	}
}

func TestGenerateAllBenchmarksValidate(t *testing.T) {
	for _, n := range SpecNames() {
		prog, err := Spec(n, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
		if prog.Len() < 100 {
			t.Errorf("%s: suspiciously small program (%d insts)", n, prog.Len())
		}
	}
}

// TestQuickGeneratedProgramsValid property: any profile with legal
// fractions yields a program that passes ISA validation.
func TestQuickGeneratedProgramsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr := func() float64 { return rng.Float64() * 0.3 }
		p := Profile{
			Name:         "q",
			IntFrac:      0.2 + fr(),
			MulFrac:      rng.Float64() * 0.05,
			FPFrac:       fr(),
			LoadFrac:     0.1 + fr()/2,
			StoreFrac:    rng.Float64() * 0.1,
			BranchFrac:   rng.Float64() * 0.2,
			Accumulators: 1 + rng.Intn(8),
			FlakyFrac:    rng.Float64(),
			WarmFrac:     rng.Float64() * 0.5,
			ColdFrac:     rng.Float64() * 0.3,
			BodyUnits:    16 + rng.Intn(600),
		}
		if p.WarmFrac+p.ColdFrac > 1 {
			p.WarmFrac = 1 - p.ColdFrac
		}
		prog, _, err := Generate(p, seed)
		if err != nil {
			return false
		}
		return prog.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRejectsBadProfiles(t *testing.T) {
	bad := []Profile{
		{},
		{Name: "x", IntFrac: 5, Accumulators: 2, BodyUnits: 100},
		{Name: "x", IntFrac: 0.9, Accumulators: 0, BodyUnits: 100},
		{Name: "x", IntFrac: 0.9, Accumulators: 2, BodyUnits: 2},
		{Name: "x", IntFrac: 0.5, LoadFrac: 0.5, WarmFrac: 0.8, ColdFrac: 0.6, Accumulators: 2, BodyUnits: 100},
	}
	for i, p := range bad {
		if _, _, err := Generate(p, 1); err == nil {
			t.Errorf("profile %d should be rejected", i)
		}
	}
}

func TestVariant1Structure(t *testing.T) {
	prog, err := Variant1(DefaultVariant1())
	if err != nil {
		t.Fatal(err)
	}
	adds := 0
	for _, in := range prog.Insts {
		switch in.Op {
		case isa.OpAdd:
			// Exactly the paper's addl $1, $2, $3.
			if in.Dst != 1 || in.Src1 != 2 || in.Src2 != 3 {
				t.Fatalf("unexpected add form %v", in)
			}
			adds++
		case isa.OpMovI, isa.OpBr:
		default:
			t.Fatalf("unexpected op in variant1: %v", in)
		}
	}
	if adds != DefaultVariant1().Adds {
		t.Fatalf("adds = %d, want %d", adds, DefaultVariant1().Adds)
	}
	if _, err := Variant1(Variant1Params{Adds: 0}); err == nil {
		t.Error("zero adds should fail")
	}
}

func TestVariant2ConflictingAddresses(t *testing.T) {
	p := DefaultVariant2()
	prog, err := Variant2(p)
	if err != nil {
		t.Fatal(err)
	}
	// Collect the load addresses from the movi prologue; they must all
	// map to the same L2 set with a 2MB/8-way/128B geometry.
	const l2Sets = (2 << 20) / (8 * 128)
	var setIdx = int64(-1)
	loads := 0
	for _, in := range prog.Insts {
		if in.Op == isa.OpMovI && in.Imm >= coldBase {
			line := in.Imm / 128
			s := line % l2Sets
			if setIdx < 0 {
				setIdx = s
			} else if s != setIdx {
				t.Fatalf("conflict addresses map to different sets: %d vs %d", s, setIdx)
			}
		}
		if in.Op == isa.OpLoad {
			loads++
		}
	}
	if loads != p.MissLoads {
		t.Fatalf("loads = %d, want %d", loads, p.MissLoads)
	}
	if p.MissLoads <= 8 {
		t.Fatalf("miss loads %d must exceed L2 associativity 8 to conflict", p.MissLoads)
	}
}

func TestVariantParamErrors(t *testing.T) {
	bad := []Variant2Params{
		{Adds: 0, BurstIters: 1, MissIters: 1, MissLoads: 9, L2SetStride: 1},
		{Adds: 1, BurstIters: 0, MissIters: 1, MissLoads: 9, L2SetStride: 1},
		{Adds: 1, BurstIters: 1, MissIters: 1, MissLoads: 0, L2SetStride: 1},
		{Adds: 1, BurstIters: 1, MissIters: 1, MissLoads: 9, L2SetStride: 0},
	}
	for i, p := range bad {
		if _, err := Variant2(p); err == nil {
			t.Errorf("params %d should fail", i)
		}
	}
	if _, err := Variant(4); err == nil {
		t.Error("variant 4 should not exist")
	}
}

func TestVariantForScale(t *testing.T) {
	base, err := VariantForScale(2, 16)
	if err != nil {
		t.Fatal(err)
	}
	slower, err := VariantForScale(2, 4) // 4x slower thermals -> 4x longer phases
	if err != nil {
		t.Fatal(err)
	}
	baseBurst := findMovI(t, base, 14)
	slowBurst := findMovI(t, slower, 14)
	if slowBurst != baseBurst*4 {
		t.Fatalf("burst iters %d, want %d", slowBurst, baseBurst*4)
	}
	if _, err := VariantForScale(2, 0); err == nil {
		t.Error("zero scale should fail")
	}
	if _, err := VariantForScale(1, 8); err != nil {
		t.Errorf("variant1 is scale-free: %v", err)
	}
}

// findMovI returns the first immediate loaded into register r.
func findMovI(t *testing.T, p *isa.Program, r uint8) int64 {
	t.Helper()
	for _, in := range p.Insts {
		if in.Op == isa.OpMovI && in.Dst == r {
			return in.Imm
		}
	}
	t.Fatalf("no movi to $%d in %s", r, p.Name)
	return 0
}

func TestPaperListingsAssemble(t *testing.T) {
	for name, text := range map[string]string{"fig1": FigureOneListing, "fig2": FigureTwoListing} {
		if _, err := isa.Assemble(name, text); err != nil {
			t.Errorf("%s listing does not assemble: %v", name, err)
		}
	}
}
