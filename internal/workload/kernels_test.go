package workload

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/isa"
)

func TestKernelsValidate(t *testing.T) {
	for _, name := range KernelNames() {
		prog, err := Kernel(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if prog.Name != name {
			t.Errorf("kernel %s has name %q", name, prog.Name)
		}
	}
	if _, err := Kernel("dhrystone"); err == nil {
		t.Error("unknown kernel should fail")
	}
}

func TestKernelComposition(t *testing.T) {
	count := func(p *isa.Program, pred func(isa.Instruction) bool) int {
		n := 0
		for _, in := range p.Insts {
			if pred(in) {
				n++
			}
		}
		return n
	}
	isFP := func(in isa.Instruction) bool {
		return in.Op == isa.OpFAdd || in.Op == isa.OpFMul || in.Op == isa.OpFDiv
	}
	isLoad := func(in isa.Instruction) bool { return in.Op.IsLoad() }
	isStore := func(in isa.Instruction) bool { return in.Op.IsStore() }
	isCond := func(in isa.Instruction) bool { return in.Op.IsCondBranch() }

	fp, _ := Kernel("fpblast")
	if count(fp, isFP) < 20 || count(fp, isLoad) != 0 {
		t.Error("fpblast composition wrong")
	}
	st, _ := Kernel("stores")
	if count(st, isStore) != 4 || count(st, isLoad) != 0 {
		t.Error("stores composition wrong")
	}
	bs, _ := Kernel("branchstorm")
	if count(bs, isCond) != 12 {
		t.Error("branchstorm composition wrong")
	}
	pc, _ := Kernel("pointerchase")
	if count(pc, isLoad) != 1 {
		t.Error("pointerchase composition wrong")
	}
	sm, _ := Kernel("stream")
	if count(sm, isLoad) != 4 {
		t.Error("stream composition wrong")
	}
}
