// Package osched is a small operating-system scheduler substrate: it
// time-slices software tasks onto the SMT hardware contexts quantum by
// quantum, and consumes the culprit reports selective sedation raises
// (Section 3.2.2 / 3.3: the hardware "reports the offending threads to
// the operating system", which "may mark such threads ineligible for
// execution").
package osched

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/isa"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// Task is one schedulable software thread.
type Task struct {
	Name string
	Prog *isa.Program

	// Accumulated over the task's lifetime:
	Committed uint64
	Quanta    int
	Reports   int
	// Suspended marks the task ineligible after repeated sedation
	// reports.
	Suspended bool
}

// IPC returns the task's lifetime IPC over the quanta it actually ran.
func (t *Task) IPC(quantumCycles int64) float64 {
	if t.Quanta == 0 || quantumCycles <= 0 {
		return 0
	}
	return float64(t.Committed) / float64(int64(t.Quanta)*quantumCycles)
}

// Options tunes the scheduler.
type Options struct {
	// Policy is the hardware DTM policy (default selective sedation —
	// the reporting path needs it).
	Policy dtm.Kind
	// SuspendAfterReports marks a task ineligible once it draws this
	// many sedation reports within a single quantum (0 disables
	// suspension). A per-quantum threshold separates a sustained
	// attacker (sedated back-to-back all quantum) from a merely hot
	// normal program that trips the upper threshold occasionally.
	SuspendAfterReports int
	// WarmupCycles per quantum (context switches cool the caches).
	WarmupCycles int64
}

// Scheduler time-slices tasks onto the SMT contexts round-robin.
type Scheduler struct {
	cfg   config.Config
	opts  Options
	tasks []*Task
	next  int

	// QuantaRun counts completed quanta.
	QuantaRun int
}

// New builds a scheduler over the given tasks.
func New(cfg config.Config, tasks []*Task, opts Options) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, fmt.Errorf("osched: no tasks")
	}
	for i, t := range tasks {
		if t == nil || t.Prog == nil {
			return nil, fmt.Errorf("osched: task %d has no program", i)
		}
	}
	if opts.Policy == "" {
		opts.Policy = dtm.SelectiveSedation
	}
	return &Scheduler{cfg: cfg, opts: opts, tasks: tasks}, nil
}

// Tasks returns the task list.
func (s *Scheduler) Tasks() []*Task { return s.tasks }

// Runnable returns the tasks currently eligible to run.
func (s *Scheduler) Runnable() []*Task {
	var out []*Task
	for _, t := range s.tasks {
		if !t.Suspended {
			out = append(out, t)
		}
	}
	return out
}

// pick selects up to n runnable tasks round-robin.
func (s *Scheduler) pick(n int) []*Task {
	runnable := s.Runnable()
	if len(runnable) == 0 {
		return nil
	}
	if n > len(runnable) {
		n = len(runnable)
	}
	out := make([]*Task, 0, n)
	start := s.next % len(runnable)
	for i := 0; i < n; i++ {
		out = append(out, runnable[(start+i)%len(runnable)])
	}
	s.next++
	return out
}

// RunQuantum schedules the next group of tasks for one OS quantum and
// returns the hardware-level result. Sedation reports are charged to
// the owning tasks; tasks crossing the report threshold are suspended.
func (s *Scheduler) RunQuantum() (*sim.Result, error) {
	group := s.pick(s.cfg.Pipeline.Contexts)
	if len(group) == 0 {
		return nil, fmt.Errorf("osched: no runnable tasks")
	}
	threads := make([]sim.Thread, len(group))
	for i, task := range group {
		threads[i] = sim.Thread{Name: task.Name, Prog: task.Prog}
	}
	sm, err := sim.New(s.cfg, threads, sim.Options{
		Policy:       s.opts.Policy,
		WarmupCycles: s.opts.WarmupCycles,
	})
	if err != nil {
		return nil, err
	}
	res, err := sm.Run()
	if err != nil {
		return nil, err
	}
	s.QuantaRun++
	for i, task := range group {
		task.Committed += res.Threads[i].Committed
		task.Quanta++
	}
	// Charge reports and apply the per-quantum suspension policy.
	thisQuantum := make(map[int]int)
	for _, r := range res.Reports {
		if r.Thread >= len(group) {
			continue
		}
		group[r.Thread].Reports++
		thisQuantum[r.Thread]++
	}
	if s.opts.SuspendAfterReports > 0 {
		for tid, n := range thisQuantum {
			if n >= s.opts.SuspendAfterReports && len(s.Runnable()) > 1 {
				group[tid].Suspended = true
			}
		}
	}
	return res, nil
}

// Run executes n quanta.
func (s *Scheduler) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, err := s.RunQuantum(); err != nil {
			return err
		}
	}
	return nil
}
