package osched

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

func schedCfg() config.Config {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 1_500_000
	return cfg
}

func mkTasks(t *testing.T, names ...string) []*Task {
	t.Helper()
	var tasks []*Task
	for i, n := range names {
		if n == "variant2" {
			prog, err := workload.Variant(2)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, &Task{Name: n, Prog: prog})
			continue
		}
		prog, err := workload.Spec(n, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, &Task{Name: n, Prog: prog})
	}
	return tasks
}

func TestRoundRobinScheduling(t *testing.T) {
	tasks := mkTasks(t, "gcc", "crafty", "mcf")
	s, err := New(schedCfg(), tasks, Options{Policy: dtm.StopAndGo})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	// Over 3 quanta of a 2-context machine, every task runs twice.
	for _, task := range tasks {
		if task.Quanta != 2 {
			t.Errorf("%s ran %d quanta, want 2", task.Name, task.Quanta)
		}
		if task.Committed == 0 {
			t.Errorf("%s made no progress", task.Name)
		}
		if task.IPC(schedCfg().Run.QuantumCycles) <= 0 {
			t.Errorf("%s IPC not positive", task.Name)
		}
	}
	if s.QuantaRun != 3 {
		t.Errorf("quanta run = %d", s.QuantaRun)
	}
}

func TestReportingSuspendsAttacker(t *testing.T) {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 5_000_000
	tasks := mkTasks(t, "crafty", "variant2")
	s, err := New(cfg, tasks, Options{
		Policy:              dtm.SelectiveSedation,
		SuspendAfterReports: 1,
		WarmupCycles:        200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	attacker := tasks[1]
	if attacker.Reports == 0 {
		t.Fatal("attacker was never reported")
	}
	if !attacker.Suspended {
		t.Fatal("attacker should be suspended after reports")
	}
	if tasks[0].Suspended {
		t.Fatal("victim must not be suspended")
	}
	// Subsequent quanta run without the attacker.
	res, err := s.RunQuantum()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Threads) != 1 || res.Threads[0].Name != "crafty" {
		t.Errorf("post-suspension group = %v", res.Threads)
	}
}

func TestLastRunnableNeverSuspended(t *testing.T) {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 2_000_000
	tasks := mkTasks(t, "variant2")
	s, err := New(cfg, tasks, Options{Policy: dtm.SelectiveSedation, SuspendAfterReports: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	if tasks[0].Suspended {
		t.Error("the only runnable task must never be suspended")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(schedCfg(), nil, Options{}); err == nil {
		t.Error("no tasks should fail")
	}
	if _, err := New(schedCfg(), []*Task{{Name: "x"}}, Options{}); err == nil {
		t.Error("program-less task should fail")
	}
	bad := schedCfg()
	bad.Pipeline.IssueWidth = 0
	if _, err := New(bad, mkTasks(t, "gcc"), Options{}); err == nil {
		t.Error("bad config should fail")
	}
}
