// Package trace records full-system time series — per-unit
// temperatures, chip power, stall state, per-thread progress — sampled
// once per sensor interval, and exports them as CSV for plotting. The
// attack example's ASCII strip chart and the timing experiment use the
// same data through sim.Result; this package is the external,
// everything-included view.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// Sample is one sensor-interval observation.
type Sample struct {
	// Cycle is the core cycle at the end of the interval.
	Cycle int64
	// Stalled reports a global stop-and-go stall in effect.
	Stalled bool
	// TotalPowerW is the chip power averaged over the interval.
	TotalPowerW float64
	// UnitTempK holds each unit's die temperature.
	UnitTempK [power.NumUnits]float64
	// ThreadIPC is each thread's IPC over the interval.
	ThreadIPC []float64
	// ThreadSedated reports each thread's fetch gate.
	ThreadSedated []bool
}

// MaxTemp returns the hottest unit in the sample.
func (s *Sample) MaxTemp() (power.Unit, float64) {
	best := power.Unit(0)
	bestT := s.UnitTempK[0]
	for u := power.Unit(1); u < power.NumUnits; u++ {
		if s.UnitTempK[u] > bestT {
			best, bestT = u, s.UnitTempK[u]
		}
	}
	return best, bestT
}

// Recorder accumulates samples. The zero value records every sample;
// set Stride to keep only every n-th.
type Recorder struct {
	// Stride keeps every n-th sample (0 or 1 keeps all).
	Stride int
	// Samples are the recorded observations.
	Samples []Sample

	seen int
}

// Record appends a sample, honouring the stride. The sample's slices
// are retained as passed (aliased, not copied); callers that reuse a
// scratch sample must use RecordCopy instead.
func (r *Recorder) Record(s Sample) {
	r.seen++
	if r.keep() {
		r.Samples = append(r.Samples, s)
	}
}

// RecordCopy appends a deep copy of s, honouring the stride. The
// recorder owns the retained storage, so the caller may reuse s and
// its slices immediately. After a Reset, RecordCopy refills the slots
// (and their per-thread slices) retained from the previous recording,
// so a steady-state record loop does not allocate.
func (r *Recorder) RecordCopy(s *Sample) {
	r.seen++
	if !r.keep() {
		return
	}
	if n := len(r.Samples); n < cap(r.Samples) {
		r.Samples = r.Samples[:n+1]
	} else {
		r.Samples = append(r.Samples, Sample{})
	}
	dst := &r.Samples[len(r.Samples)-1]
	ipc, sed := dst.ThreadIPC, dst.ThreadSedated
	*dst = *s
	dst.ThreadIPC = append(ipc[:0], s.ThreadIPC...)
	dst.ThreadSedated = append(sed[:0], s.ThreadSedated...)
}

// keep advances nothing; it reports whether the current (already
// counted) observation lands on the stride.
func (r *Recorder) keep() bool {
	stride := r.Stride
	if stride < 1 {
		stride = 1
	}
	return (r.seen-1)%stride == 0
}

// Reset empties the recorder, retaining the backing storage of the
// sample slice and of each retained sample's per-thread slices for
// reuse by subsequent RecordCopy calls. Samples handed out before the
// Reset become invalid — copy them out first. Callers that drain a
// recorder every quantum should Reset it rather than allocate a fresh
// one, keeping the record path allocation-free across quanta.
func (r *Recorder) Reset() {
	r.Samples = r.Samples[:0]
	r.seen = 0
}

// Len returns the number of retained samples.
func (r *Recorder) Len() int { return len(r.Samples) }

// WriteCSV emits the samples with one row per retained interval. units
// selects the temperature columns (nil = all units).
func (r *Recorder) WriteCSV(w io.Writer, units []power.Unit) error {
	if units == nil {
		units = power.Units()
	}
	cols := []string{"cycle", "stalled", "power_w"}
	for _, u := range units {
		cols = append(cols, "temp_"+u.String()+"_k")
	}
	// Size the thread columns to the widest sample, not the first: a
	// recording that spans a thread joining mid-run would otherwise
	// emit rows wider than the header. Narrow samples zero-fill below.
	nthreads := 0
	for i := range r.Samples {
		if n := len(r.Samples[i].ThreadIPC); n > nthreads {
			nthreads = n
		}
	}
	for t := 0; t < nthreads; t++ {
		cols = append(cols, fmt.Sprintf("ipc_t%d", t), fmt.Sprintf("sedated_t%d", t))
	}
	if _, err := io.WriteString(w, strings.Join(cols, ",")+"\n"); err != nil {
		return err
	}
	row := make([]string, 0, len(cols))
	for i := range r.Samples {
		s := &r.Samples[i]
		row = row[:0]
		row = append(row,
			strconv.FormatInt(s.Cycle, 10),
			boolBit(s.Stalled),
			strconv.FormatFloat(s.TotalPowerW, 'f', 3, 64),
		)
		for _, u := range units {
			row = append(row, strconv.FormatFloat(s.UnitTempK[u], 'f', 3, 64))
		}
		for t := 0; t < nthreads; t++ {
			ipc, sed := 0.0, false
			if t < len(s.ThreadIPC) {
				ipc = s.ThreadIPC[t]
				sed = s.ThreadSedated[t]
			}
			row = append(row, strconv.FormatFloat(ipc, 'f', 4, 64), boolBit(sed))
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func boolBit(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// Summary aggregates a recorded run for quick inspection.
type Summary struct {
	Samples    int
	PeakTempK  float64
	PeakUnit   power.Unit
	StallFrac  float64
	MeanPowerW float64
}

// Summarize computes the aggregate view.
func (r *Recorder) Summarize() Summary {
	var s Summary
	s.Samples = len(r.Samples)
	if s.Samples == 0 {
		return s
	}
	stalled := 0
	for i := range r.Samples {
		u, t := r.Samples[i].MaxTemp()
		if t > s.PeakTempK {
			s.PeakTempK, s.PeakUnit = t, u
		}
		if r.Samples[i].Stalled {
			stalled++
		}
		s.MeanPowerW += r.Samples[i].TotalPowerW
	}
	s.StallFrac = float64(stalled) / float64(s.Samples)
	s.MeanPowerW /= float64(s.Samples)
	return s
}
