package trace

import (
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func sample(cycle int64, rfTemp float64, stalled bool) Sample {
	s := Sample{
		Cycle:         cycle,
		Stalled:       stalled,
		TotalPowerW:   20,
		ThreadIPC:     []float64{1.5, 0.5},
		ThreadSedated: []bool{false, true},
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		s.UnitTempK[u] = 350
	}
	s.UnitTempK[power.UnitIntReg] = rfTemp
	return s
}

func TestRecorderStride(t *testing.T) {
	r := &Recorder{Stride: 3}
	for i := int64(0); i < 10; i++ {
		r.Record(sample(i, 351, false))
	}
	if r.Len() != 4 { // samples 0,3,6,9
		t.Fatalf("retained %d samples, want 4", r.Len())
	}
	if r.Samples[1].Cycle != 3 {
		t.Errorf("stride picked cycle %d", r.Samples[1].Cycle)
	}
	// Zero stride keeps everything.
	r2 := &Recorder{}
	for i := int64(0); i < 5; i++ {
		r2.Record(sample(i, 351, false))
	}
	if r2.Len() != 5 {
		t.Errorf("zero stride retained %d", r2.Len())
	}
}

func TestSampleMaxTemp(t *testing.T) {
	s := sample(0, 359, false)
	u, temp := s.MaxTemp()
	if u != power.UnitIntReg || temp != 359 {
		t.Errorf("max = %s %.1f", u, temp)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Recorder{}
	r.Record(sample(20000, 355.5, false))
	r.Record(sample(40000, 358.75, true))
	var sb strings.Builder
	if err := r.WriteCSV(&sb, []power.Unit{power.UnitIntReg}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	header := lines[0]
	for _, col := range []string{"cycle", "stalled", "power_w", "temp_IntReg_k", "ipc_t0", "sedated_t1"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	if !strings.HasPrefix(lines[1], "20000,0,20.000,355.500,1.5000,0,0.5000,1") {
		t.Errorf("row 1 = %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "40000,1,") {
		t.Errorf("row 2 = %s", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	r := &Recorder{}
	if s := r.Summarize(); s.Samples != 0 {
		t.Error("empty summary")
	}
	r.Record(sample(1, 355, false))
	r.Record(sample(2, 359, true))
	r.Record(sample(3, 353, true))
	s := r.Summarize()
	if s.Samples != 3 || s.PeakTempK != 359 || s.PeakUnit != power.UnitIntReg {
		t.Errorf("summary = %+v", s)
	}
	if s.StallFrac < 0.66 || s.StallFrac > 0.67 {
		t.Errorf("stall frac = %v", s.StallFrac)
	}
	if s.MeanPowerW != 20 {
		t.Errorf("mean power = %v", s.MeanPowerW)
	}
}
