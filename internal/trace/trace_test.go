package trace

import (
	"slices"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func sample(cycle int64, rfTemp float64, stalled bool) Sample {
	s := Sample{
		Cycle:         cycle,
		Stalled:       stalled,
		TotalPowerW:   20,
		ThreadIPC:     []float64{1.5, 0.5},
		ThreadSedated: []bool{false, true},
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		s.UnitTempK[u] = 350
	}
	s.UnitTempK[power.UnitIntReg] = rfTemp
	return s
}

func TestRecorderStride(t *testing.T) {
	r := &Recorder{Stride: 3}
	for i := int64(0); i < 10; i++ {
		r.Record(sample(i, 351, false))
	}
	if r.Len() != 4 { // samples 0,3,6,9
		t.Fatalf("retained %d samples, want 4", r.Len())
	}
	if r.Samples[1].Cycle != 3 {
		t.Errorf("stride picked cycle %d", r.Samples[1].Cycle)
	}
	// Zero stride keeps everything.
	r2 := &Recorder{}
	for i := int64(0); i < 5; i++ {
		r2.Record(sample(i, 351, false))
	}
	if r2.Len() != 5 {
		t.Errorf("zero stride retained %d", r2.Len())
	}
}

func TestSampleMaxTemp(t *testing.T) {
	s := sample(0, 359, false)
	u, temp := s.MaxTemp()
	if u != power.UnitIntReg || temp != 359 {
		t.Errorf("max = %s %.1f", u, temp)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Recorder{}
	r.Record(sample(20000, 355.5, false))
	r.Record(sample(40000, 358.75, true))
	var sb strings.Builder
	if err := r.WriteCSV(&sb, []power.Unit{power.UnitIntReg}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	header := lines[0]
	for _, col := range []string{"cycle", "stalled", "power_w", "temp_IntReg_k", "ipc_t0", "sedated_t1"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	if !strings.HasPrefix(lines[1], "20000,0,20.000,355.500,1.5000,0,0.5000,1") {
		t.Errorf("row 1 = %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "40000,1,") {
		t.Errorf("row 2 = %s", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	r := &Recorder{}
	if s := r.Summarize(); s.Samples != 0 {
		t.Error("empty summary")
	}
	r.Record(sample(1, 355, false))
	r.Record(sample(2, 359, true))
	r.Record(sample(3, 353, true))
	s := r.Summarize()
	if s.Samples != 3 || s.PeakTempK != 359 || s.PeakUnit != power.UnitIntReg {
		t.Errorf("summary = %+v", s)
	}
	if s.StallFrac < 0.66 || s.StallFrac > 0.67 {
		t.Errorf("stall frac = %v", s.StallFrac)
	}
	if s.MeanPowerW != 20 {
		t.Errorf("mean power = %v", s.MeanPowerW)
	}
}

// TestWriteCSVRaggedThreads: the header must size its thread columns
// to the widest sample, with narrower samples zero-filled — a first
// sample with fewer threads used to shear every wider row off the
// header.
func TestWriteCSVRaggedThreads(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Cycle: 1000, ThreadIPC: []float64{1.5}, ThreadSedated: []bool{false}})
	r.Record(Sample{Cycle: 2000, ThreadIPC: []float64{1.2, 0.8}, ThreadSedated: []bool{false, true}})
	var sb strings.Builder
	if err := r.WriteCSV(&sb, []power.Unit{power.UnitIntReg}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Errorf("line %d has %d fields, header has %d:\n%s", i, got, len(header), sb.String())
		}
	}
	for _, col := range []string{"ipc_t0", "sedated_t0", "ipc_t1", "sedated_t1"} {
		if !slices.Contains(header, col) {
			t.Errorf("header missing %q: %v", col, header)
		}
	}
	// The narrow first sample zero-fills its missing thread.
	row0 := strings.Split(lines[1], ",")
	if row0[len(row0)-2] != "0.0000" || row0[len(row0)-1] != "0" {
		t.Errorf("first row not zero-filled: %v", row0)
	}
	// The wide second sample keeps its real values.
	row1 := strings.Split(lines[2], ",")
	if row1[len(row1)-2] != "0.8000" || row1[len(row1)-1] != "1" {
		t.Errorf("second row lost thread 1: %v", row1)
	}
}

func TestRecordCopyOwnsStorage(t *testing.T) {
	r := &Recorder{Stride: 2}
	scratch := sample(0, 351, false)
	for i := int64(0); i < 6; i++ {
		scratch.Cycle = i
		scratch.ThreadIPC[0] = float64(i)
		scratch.ThreadSedated[1] = i%2 == 0
		r.RecordCopy(&scratch)
	}
	if r.Len() != 3 { // samples 0,2,4
		t.Fatalf("retained %d samples, want 3", r.Len())
	}
	// Retained samples must not alias the scratch: trashing the scratch
	// after recording must not reach back into them.
	scratch.ThreadIPC[0] = -1
	scratch.ThreadSedated[1] = false
	for i, want := range []float64{0, 2, 4} {
		s := &r.Samples[i]
		if s.Cycle != int64(want) || s.ThreadIPC[0] != want {
			t.Errorf("sample %d: cycle %d ipc %.0f, want %.0f", i, s.Cycle, s.ThreadIPC[0], want)
		}
		if !s.ThreadSedated[1] {
			t.Errorf("sample %d: sedated flag lost", i)
		}
	}
}

func TestRecorderResetReusesStorage(t *testing.T) {
	r := &Recorder{}
	scratch := sample(0, 351, false)
	for i := int64(0); i < 8; i++ {
		scratch.Cycle = i
		r.RecordCopy(&scratch)
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("reset left %d samples", r.Len())
	}
	// Refilling up to the previous high-water mark must not allocate:
	// the recorder reuses the retained slots and their thread slices.
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset()
		for i := int64(0); i < 8; i++ {
			scratch.Cycle = i
			r.RecordCopy(&scratch)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state record loop allocates %.1f times per run, want 0", allocs)
	}
	if r.Len() != 8 || r.Samples[7].Cycle != 7 {
		t.Fatalf("refill retained %d samples (last cycle %d)", r.Len(), r.Samples[r.Len()-1].Cycle)
	}
	// The stride counter restarts too.
	r.Reset()
	r.Stride = 3
	for i := int64(0); i < 4; i++ {
		scratch.Cycle = i
		r.RecordCopy(&scratch)
	}
	if r.Len() != 2 || r.Samples[1].Cycle != 3 {
		t.Errorf("post-reset stride retained %d samples", r.Len())
	}
}
