package trace

import (
	"slices"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/power"
)

func sample(cycle int64, rfTemp float64, stalled bool) Sample {
	s := Sample{
		Cycle:         cycle,
		Stalled:       stalled,
		TotalPowerW:   20,
		ThreadIPC:     []float64{1.5, 0.5},
		ThreadSedated: []bool{false, true},
	}
	for u := power.Unit(0); u < power.NumUnits; u++ {
		s.UnitTempK[u] = 350
	}
	s.UnitTempK[power.UnitIntReg] = rfTemp
	return s
}

func TestRecorderStride(t *testing.T) {
	r := &Recorder{Stride: 3}
	for i := int64(0); i < 10; i++ {
		r.Record(sample(i, 351, false))
	}
	if r.Len() != 4 { // samples 0,3,6,9
		t.Fatalf("retained %d samples, want 4", r.Len())
	}
	if r.Samples[1].Cycle != 3 {
		t.Errorf("stride picked cycle %d", r.Samples[1].Cycle)
	}
	// Zero stride keeps everything.
	r2 := &Recorder{}
	for i := int64(0); i < 5; i++ {
		r2.Record(sample(i, 351, false))
	}
	if r2.Len() != 5 {
		t.Errorf("zero stride retained %d", r2.Len())
	}
}

func TestSampleMaxTemp(t *testing.T) {
	s := sample(0, 359, false)
	u, temp := s.MaxTemp()
	if u != power.UnitIntReg || temp != 359 {
		t.Errorf("max = %s %.1f", u, temp)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Recorder{}
	r.Record(sample(20000, 355.5, false))
	r.Record(sample(40000, 358.75, true))
	var sb strings.Builder
	if err := r.WriteCSV(&sb, []power.Unit{power.UnitIntReg}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	header := lines[0]
	for _, col := range []string{"cycle", "stalled", "power_w", "temp_IntReg_k", "ipc_t0", "sedated_t1"} {
		if !strings.Contains(header, col) {
			t.Errorf("header missing %q: %s", col, header)
		}
	}
	if !strings.HasPrefix(lines[1], "20000,0,20.000,355.500,1.5000,0,0.5000,1") {
		t.Errorf("row 1 = %s", lines[1])
	}
	if !strings.HasPrefix(lines[2], "40000,1,") {
		t.Errorf("row 2 = %s", lines[2])
	}
}

func TestSummarize(t *testing.T) {
	r := &Recorder{}
	if s := r.Summarize(); s.Samples != 0 {
		t.Error("empty summary")
	}
	r.Record(sample(1, 355, false))
	r.Record(sample(2, 359, true))
	r.Record(sample(3, 353, true))
	s := r.Summarize()
	if s.Samples != 3 || s.PeakTempK != 359 || s.PeakUnit != power.UnitIntReg {
		t.Errorf("summary = %+v", s)
	}
	if s.StallFrac < 0.66 || s.StallFrac > 0.67 {
		t.Errorf("stall frac = %v", s.StallFrac)
	}
	if s.MeanPowerW != 20 {
		t.Errorf("mean power = %v", s.MeanPowerW)
	}
}

// TestWriteCSVRaggedThreads: the header must size its thread columns
// to the widest sample, with narrower samples zero-filled — a first
// sample with fewer threads used to shear every wider row off the
// header.
func TestWriteCSVRaggedThreads(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Cycle: 1000, ThreadIPC: []float64{1.5}, ThreadSedated: []bool{false}})
	r.Record(Sample{Cycle: 2000, ThreadIPC: []float64{1.2, 0.8}, ThreadSedated: []bool{false, true}})
	var sb strings.Builder
	if err := r.WriteCSV(&sb, []power.Unit{power.UnitIntReg}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	for i, line := range lines {
		if got := len(strings.Split(line, ",")); got != len(header) {
			t.Errorf("line %d has %d fields, header has %d:\n%s", i, got, len(header), sb.String())
		}
	}
	for _, col := range []string{"ipc_t0", "sedated_t0", "ipc_t1", "sedated_t1"} {
		if !slices.Contains(header, col) {
			t.Errorf("header missing %q: %v", col, header)
		}
	}
	// The narrow first sample zero-fills its missing thread.
	row0 := strings.Split(lines[1], ",")
	if row0[len(row0)-2] != "0.0000" || row0[len(row0)-1] != "0" {
		t.Errorf("first row not zero-filled: %v", row0)
	}
	// The wide second sample keeps its real values.
	row1 := strings.Split(lines[2], ",")
	if row1[len(row1)-2] != "0.8000" || row1[len(row1)-1] != "1" {
		t.Errorf("second row lost thread 1: %v", row1)
	}
}
