package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// jobEntry is the server-side state of one content-addressed job. It
// doubles as the cache entry once the job completes.
type jobEntry struct {
	id  string
	req api.JobRequest // resolved: every default filled in

	// ctx governs this job's run (derived from the server's base
	// context); cancel aborts it. DELETE /v1/jobs/{id} — the hedging
	// coordinator's "cancel the loser" path — calls cancel with a
	// client-cancellation cause. Both are set before execute starts.
	ctx    context.Context
	cancel context.CancelCauseFunc

	// span is the job's root-on-this-node span, opened at submit and
	// ended by finish; traceID is its trace in hex ("" when tracing is
	// off); created stamps the submit time for the queue-wait span.
	// All three are written before execute starts and read-only after.
	span    *tracing.ActiveSpan
	traceID string
	created time.Time

	mu      sync.Mutex
	status  api.Status
	prog    api.Progress
	okJobs  int
	failed  int
	aggs    map[string]sweep.Agg
	table   *sweep.Table
	err     error
	partial *sweep.Summary
	subs    map[chan api.Event]struct{}
	done    chan struct{}

	// met receives per-simulation latency/outcome observations from
	// onProgress (may be nil in tests).
	met *serverMetrics
}

func newJobEntry(id string, req api.JobRequest, met *serverMetrics) *jobEntry {
	return &jobEntry{
		id:     id,
		req:    req,
		status: api.StatusQueued,
		aggs:   make(map[string]sweep.Agg),
		subs:   make(map[chan api.Event]struct{}),
		done:   make(chan struct{}),
		met:    met,
	}
}

// snapshot renders the entry as a wire JobStatus.
func (e *jobEntry) snapshot() api.JobStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.snapshotLocked()
}

func (e *jobEntry) snapshotLocked() api.JobStatus {
	st := api.JobStatus{
		ID:         e.id,
		Experiment: e.req.Experiment,
		Request:    e.req,
		Status:     e.status,
		Progress:   e.prog,
		TraceID:    e.traceID,
	}
	if e.table != nil && e.table.Summary != nil {
		st.Summary = e.table.Summary
	} else if e.partial != nil {
		st.Summary = e.partial
	}
	if e.err != nil {
		st.Error = e.err.Error()
	}
	return st
}

// result returns the terminal status and table (nil until done).
func (e *jobEntry) result() (api.Status, *sweep.Table) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.status, e.table
}

func (e *jobEntry) setStatus(st api.Status) {
	e.mu.Lock()
	e.status = st
	e.mu.Unlock()
}

// onProgress is the sweep engine's progress hook: it folds each
// finished simulation into the live Progress snapshot and the running
// metric aggregates (the source of partial summaries), then fans the
// snapshot out to SSE subscribers. The sweep serializes calls, so
// Completed is monotonic.
func (e *jobEntry) onProgress(p sweep.Progress) {
	if e.met != nil {
		e.met.observeSim(p.Elapsed.Seconds(), p.Err != nil)
	}
	e.mu.Lock()
	e.prog.Completed = p.Completed
	e.prog.Total = p.Total
	if p.Err == nil {
		e.okJobs++
	} else {
		e.failed++
	}
	for name, v := range p.Metrics {
		agg := e.aggs[name]
		agg.Add(v)
		e.aggs[name] = agg
	}
	if v := e.aggs[sweep.MetricPeakTempK]; v.Count > 0 {
		e.prog.PeakTempK = v.Max
	}
	if v, ok := p.Metrics[sweep.MetricCyclesPerSec]; ok {
		e.prog.CyclesPerSec = v
	}
	e.prog.SimCycles = e.aggs[sweep.MetricSimCycles].Sum
	snap := e.prog
	e.broadcastLocked(api.Event{Type: "progress", Progress: &snap})
	e.mu.Unlock()
}

// logAttrs returns the job's trace correlation attrs for log lines
// (empty when tracing is off), so job-scoped logs and spans join up.
func (e *jobEntry) logAttrs() []any {
	sc := e.span.Context()
	if !sc.Valid() {
		return nil
	}
	return []any{"trace_id", sc.TraceID.String(), "span_id", sc.SpanID.String()}
}

// finish records the terminal state, builds a partial summary when the
// sweep did not complete, notifies SSE subscribers, and releases them.
func (e *jobEntry) finish(st api.Status, table *sweep.Table, err error) {
	if e.span != nil {
		e.span.SetAttr("status", string(st))
		e.span.EndErr(err)
	}
	e.mu.Lock()
	e.status = st
	e.table = table
	e.err = err
	if table == nil && (e.okJobs > 0 || e.failed > 0 || e.prog.Total > 0) {
		// The sweep was cut short: rebuild what the Summary would have
		// aggregated from the progress events received so far.
		e.partial = &sweep.Summary{
			Jobs:      e.prog.Total,
			Succeeded: e.okJobs,
			Failed:    e.failed,
			Skipped:   e.prog.Total - e.okJobs - e.failed,
			Metrics:   e.aggs,
		}
	}
	job := e.snapshotLocked()
	e.broadcastLocked(api.Event{Type: "done", Job: &job})
	for ch := range e.subs {
		close(ch)
	}
	e.subs = nil
	e.mu.Unlock()
	close(e.done)
}

// subscribe registers an SSE subscriber. The returned channel first
// yields a snapshot of the current progress, then every subsequent
// event, and is closed when the job reaches a terminal state. For an
// already-terminal job the channel arrives closed after one terminal
// event.
func (e *jobEntry) subscribe() chan api.Event {
	ch := make(chan api.Event, 32)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.status.Terminal() {
		job := e.snapshotLocked()
		ch <- api.Event{Type: "done", Job: &job}
		close(ch)
		return ch
	}
	snap := e.prog
	ch <- api.Event{Type: "progress", Progress: &snap}
	e.subs[ch] = struct{}{}
	return ch
}

func (e *jobEntry) unsubscribe(ch chan api.Event) {
	e.mu.Lock()
	if _, ok := e.subs[ch]; ok {
		delete(e.subs, ch)
		close(ch)
	}
	e.mu.Unlock()
}

// broadcastLocked fans an event out without blocking: a subscriber
// whose buffer is full misses that event, which is safe because later
// progress snapshots supersede earlier ones (Completed is monotonic
// within each subscriber's stream either way).
func (e *jobEntry) broadcastLocked(ev api.Event) {
	for ch := range e.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// handleEvents streams a job's progress as server-sent events: one
// "progress" frame per finished simulation (plus an immediate snapshot
// on subscribe) and a final "done" frame carrying the terminal
// JobStatus. Heartbeat comments keep idle connections alive while the
// job waits in the queue.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := e.subscribe()
	defer e.unsubscribe(ch)
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				// The channel closed without this subscriber seeing a
				// terminal frame — its buffer was full when "done" was
				// broadcast. Synthesize it from the terminal snapshot so
				// every stream still ends with a "done" event.
				job := e.snapshot()
				_ = writeEvent(w, api.Event{Type: "done", Job: &job})
				flusher.Flush()
				return
			}
			if err := writeEvent(w, ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Type == "done" {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeEvent encodes one SSE frame: "event: <type>" plus a JSON data
// line (api.Event encoded whole, so clients can dispatch on .type).
func writeEvent(w http.ResponseWriter, ev api.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}
