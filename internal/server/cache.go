package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// record is the on-disk form of a job: one JSON file per content
// address under CacheDir. Completed records are reloaded as cache
// entries at startup; partial records (canceled/failed) are written
// for inspection but never served as results — their content address
// is recomputed and re-run on the next identical request.
type record struct {
	ID       string         `json:"id"`
	Version  string         `json:"version"`
	Request  api.JobRequest `json:"request"`
	Status   api.Status     `json:"status"`
	Progress api.Progress   `json:"progress"`
	Table    *sweep.Table   `json:"table,omitempty"`
	Summary  *sweep.Summary `json:"summary,omitempty"`
	Error    string         `json:"error,omitempty"`
}

// persist writes a job's terminal state to the cache directory
// (write-to-temp + rename, so readers never see a torn file). Without
// a cache directory it is a no-op.
func (s *Server) persist(e *jobEntry) {
	if s.opts.CacheDir == "" {
		return
	}
	e.mu.Lock()
	rec := record{
		ID:       e.id,
		Version:  s.opts.Version,
		Request:  e.req,
		Status:   e.status,
		Progress: e.prog,
		Table:    e.table,
		Error:    "",
	}
	if e.err != nil {
		rec.Error = e.err.Error()
	}
	if e.table == nil {
		rec.Summary = e.partial
	}
	e.mu.Unlock()

	if err := os.MkdirAll(s.opts.CacheDir, 0o755); err != nil {
		s.log.Info("cache error", "err", err)
		return
	}
	path := filepath.Join(s.opts.CacheDir, rec.ID+".json")
	tmp := path + ".tmp"
	b, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		s.log.Info("cache encode failed", "job", shortID(rec.ID), "err", err)
		return
	}
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		s.log.Info("cache write failed", "err", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		s.log.Info("cache rename failed", "err", err)
	}
}

// loadCache repopulates the in-memory cache from the cache directory:
// every completed record becomes a served entry, so a restarted daemon
// answers repeat requests without re-simulating. Records written by a
// different code version are skipped (their content address embeds the
// old version, so they could never be requested again anyway).
func (s *Server) loadCache() error {
	if s.opts.CacheDir == "" {
		return nil
	}
	entries, err := os.ReadDir(s.opts.CacheDir)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("server: cache dir: %w", err)
	}
	loaded := 0
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		path := filepath.Join(s.opts.CacheDir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			s.log.Info("cache read failed", "file", de.Name(), "err", err)
			continue
		}
		var rec record
		if err := json.Unmarshal(b, &rec); err != nil {
			s.log.Info("cache decode failed", "file", de.Name(), "err", err)
			continue
		}
		if rec.Status != api.StatusDone || rec.Table == nil || rec.ID == "" {
			continue
		}
		if rec.Version != s.opts.Version {
			continue
		}
		e := newJobEntry(rec.ID, rec.Request, s.met)
		e.status = api.StatusDone
		e.prog = rec.Progress
		e.table = rec.Table
		e.subs = nil
		close(e.done)
		s.jobs[rec.ID] = e
		loaded++
	}
	if loaded > 0 {
		s.log.Info("cache loaded", "results", loaded, "dir", s.opts.CacheDir)
	}
	return nil
}
