package server

import (
	"bytes"
	"io"
	"net/http"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

func doReq(t *testing.T, method, url string, body []byte, header http.Header) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, vs := range header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestCancelRunningJob: DELETE /v1/jobs/{id} on an in-flight job
// drives it to canceled, and a later identical submit re-runs it
// (canceled entries are evicted, not served).
func TestCancelRunningJob(t *testing.T) {
	gate := make(chan struct{})
	var once bool
	_, ts := newTestServer(t, func(o *Options) {
		o.BeforeRun = func(id string) {
			if !once {
				once = true
				<-gate
			}
		}
	})
	code, st := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, st.ID, api.StatusRunning)

	resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	// Release the held job: its run context is already canceled, so
	// the sweep stops before simulating.
	close(gate)
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := getJob(t, ts, st.ID)
		if got.Status == api.StatusCanceled {
			break
		}
		if got.Status.Terminal() {
			t.Fatalf("job ended %s, want canceled", got.Status)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never canceled")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Cancel of a terminal job is an idempotent no-op.
	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-cancel: %d", resp.StatusCode)
	}
	// The canceled entry is stale: the identical request runs afresh.
	code, st2 := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted || st2.Cached || st2.Coalesced {
		t.Fatalf("resubmit after cancel: code=%d cached=%v coalesced=%v", code, st2.Cached, st2.Coalesced)
	}
	waitStatus(t, ts, st2.ID, api.StatusDone)

	resp, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: %d", resp.StatusCode)
	}
}

// TestCancelQueuedJob: a job canceled while still waiting for a run
// slot terminates without ever simulating.
func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.BeforeRun = func(id string) { <-gate }
	})
	defer close(gate)

	_, blocker := submit(t, ts, tinyRequest())
	waitStatus(t, ts, blocker.ID, api.StatusRunning)
	req2 := tinyRequest()
	req2.Benchmarks = []string{"mcf"}
	_, queued := submit(t, ts, req2)

	resp, _ := doReq(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for getJob(t, ts, queued.ID).Status != api.StatusCanceled {
		if time.Now().After(deadline) {
			t.Fatal("queued job never canceled")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := s.Stats(); st.Runs != 1 {
		t.Fatalf("runs = %d, want 1 (canceled queued job must not simulate)", st.Runs)
	}
}

// TestStatsAdvertiseAndWarmKeys: /v1/stats reports the advertised
// address and, once a warmed job has run, the resident warm keys — the
// discovery half of fleet snapshot shipping.
func TestStatsAdvertiseAndWarmKeys(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(o *Options) {
		o.Advertise = "node7.fleet:8080"
		o.WarmupCacheDir = dir
	})
	st := s.Stats()
	if st.Advertise != "node7.fleet:8080" {
		t.Fatalf("advertise = %q", st.Advertise)
	}
	if len(st.WarmKeys) != 0 {
		t.Fatalf("warm keys before any job: %v", st.WarmKeys)
	}
	code, job := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts, job.ID, api.StatusDone)
	st = s.Stats()
	if len(st.WarmKeys) == 0 {
		t.Fatal("no warm keys advertised after a warmed job")
	}
	for _, k := range st.WarmKeys {
		if !validWarmKey(k) {
			t.Fatalf("advertised warm key %q is not a sha256 hex digest", k)
		}
	}
}

// TestWarmTransferRoundTrip ships a warmup snapshot between two
// daemons over the wire and proves the receiver serves warm reuse from
// it: GET from the source, PUT to the target, then a job on the target
// hits the warmup cache instead of re-warming.
func TestWarmTransferRoundTrip(t *testing.T) {
	src, srcTS := newTestServer(t, func(o *Options) { o.WarmupCacheDir = t.TempDir() })
	code, job := submit(t, srcTS, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, srcTS, job.ID, api.StatusDone)
	keys := src.Stats().WarmKeys
	if len(keys) == 0 {
		t.Fatal("source advertises no warm keys")
	}

	tgt, tgtTS := newTestServer(t, func(o *Options) { o.WarmupCacheDir = t.TempDir() })
	for _, key := range keys {
		resp, snap := doReq(t, http.MethodGet, srcTS.URL+"/v1/warm/"+key, nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET warm %s: %d", key, resp.StatusCode)
		}
		resp, body := doReq(t, http.MethodPut, tgtTS.URL+"/v1/warm/"+key, snap, nil)
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT warm %s: %d %s", key, resp.StatusCode, body)
		}
	}
	got := tgt.Stats().WarmKeys
	if len(got) != len(keys) {
		t.Fatalf("target warm keys = %v, want %v", got, keys)
	}

	before := tgt.met.warmHits.Value()
	code, job = submit(t, tgtTS, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("target submit: %d", code)
	}
	waitStatus(t, tgtTS, job.ID, api.StatusDone)
	if after := tgt.met.warmHits.Value(); after <= before {
		t.Fatalf("target ran without hitting the shipped warm snapshots (hits %d -> %d)", before, after)
	}

	// The transfer endpoints reject garbage rather than caching it.
	resp, _ := doReq(t, http.MethodPut, tgtTS.URL+"/v1/warm/"+keys[0], []byte("not a snapshot"), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn PUT: %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, srcTS.URL+"/v1/warm/"+"ab12", nil, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short key: %d, want 400", resp.StatusCode)
	}
	miss := "0000000000000000000000000000000000000000000000000000000000000000"
	resp, _ = doReq(t, http.MethodGet, srcTS.URL+"/v1/warm/"+miss, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing key: %d, want 404", resp.StatusCode)
	}
}

// TestWarmTransferAuth: with a fleet token configured, the transfer
// endpoints demand it; the rest of the API stays open.
func TestWarmTransferAuth(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.WarmupCacheDir = t.TempDir()
		o.FleetToken = "sekrit"
	})
	key := "1111111111111111111111111111111111111111111111111111111111111111"
	resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/warm/"+key, nil, nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d, want 401", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/warm/"+key, nil,
		http.Header{"Authorization": {"Bearer wrong"}})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: %d, want 401", resp.StatusCode)
	}
	resp, _ = doReq(t, http.MethodGet, ts.URL+"/v1/warm/"+key, nil,
		http.Header{"Authorization": {"Bearer sekrit"}})
	if resp.StatusCode != http.StatusNotFound { // authorized; key just absent
		t.Fatalf("right token: %d, want 404", resp.StatusCode)
	}
	// A daemon without a warmup cache has nothing to transfer.
	_, bare := newTestServer(t, nil)
	resp, _ = doReq(t, http.MethodGet, bare.URL+"/v1/warm/"+key, nil, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no warm store: %d, want 404", resp.StatusCode)
	}
}
