package server

import (
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// warmStore is the daemon's warmup-snapshot cache: an
// experiment.SnapshotStore backed by one .snap file per warm key under
// WarmupCacheDir, with an in-memory layer in front so only the first
// job after a restart pays the disk read. Warm keys are hex digests,
// so they are safe filenames; files are written via sim.WriteStateFile
// (temp + rename), so readers never see a torn snapshot. Memory use is
// bounded by the number of distinct warm keys the process touches —
// one machine state per distinct (config, programs, warmup, version).
type warmStore struct {
	dir string
	log *slog.Logger
	met *serverMetrics

	mu  sync.Mutex
	mem map[string]*sim.MachineState
}

func newWarmStore(dir string, log *slog.Logger, met *serverMetrics) *warmStore {
	return &warmStore{dir: dir, log: log, met: met, mem: make(map[string]*sim.MachineState)}
}

func (ws *warmStore) path(key string) string {
	return filepath.Join(ws.dir, key+".snap")
}

// Get implements experiment.SnapshotStore. A hit from memory or disk
// counts once; snapshots that fail to decode (torn, stale format) are
// misses — the caller re-runs the warmup and overwrites them.
func (ws *warmStore) Get(key string) (*sim.MachineState, bool) {
	ws.mu.Lock()
	ms, ok := ws.mem[key]
	ws.mu.Unlock()
	if ok {
		ws.met.warmHits.Inc()
		return ms, true
	}
	ms, err := sim.ReadStateFile(ws.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			ws.log.Info("warmup cache read failed", "key", shortID(key), "err", err)
		}
		ws.met.warmMisses.Inc()
		return nil, false
	}
	ws.mu.Lock()
	ws.mem[key] = ms
	ws.mu.Unlock()
	ws.met.warmHits.Inc()
	return ms, true
}

// Keys lists every warm key the store can serve, memory and disk
// union, sorted. This is what /v1/stats advertises to the fleet
// coordinator, so it is the discovery side of snapshot shipping.
func (ws *warmStore) Keys() []string {
	seen := make(map[string]bool)
	ws.mu.Lock()
	for k := range ws.mem {
		seen[k] = true
	}
	ws.mu.Unlock()
	if entries, err := os.ReadDir(ws.dir); err == nil {
		for _, de := range entries {
			name := de.Name()
			if de.IsDir() || !strings.HasSuffix(name, ".snap") {
				continue
			}
			seen[strings.TrimSuffix(name, ".snap")] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Put implements experiment.SnapshotStore. Disk failures only log —
// the in-memory layer still serves the snapshot for this process's
// lifetime.
func (ws *warmStore) Put(key string, ms *sim.MachineState) {
	ws.mu.Lock()
	ws.mem[key] = ms
	ws.mu.Unlock()
	if err := os.MkdirAll(ws.dir, 0o755); err != nil {
		ws.log.Info("warmup cache dir failed", "err", err)
		return
	}
	if err := sim.WriteStateFile(ws.path(key), ms); err != nil {
		ws.log.Info("warmup cache write failed", "key", shortID(key), "err", err)
	}
}
