package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// spanNames collects the span-name histogram of a trace.
func spanNames(spans []tracing.Span) map[string]int {
	out := make(map[string]int)
	for _, s := range spans {
		out[s.Name]++
	}
	return out
}

// TestTraceEndpointEndToEnd runs one job and requires its trace —
// addressed by job id and by trace id alike — to contain the full
// request-path taxonomy: the job root, the retroactive cache.lookup
// and queue.wait children, the experiment.run wrapper, one sweep.job
// per simulation, and sim.quantum leaves from inside the simulator.
func TestTraceEndpointEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, nil)

	code, st := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	if st.TraceID == "" {
		t.Fatal("JobStatus.TraceID empty: tracing should be on by default")
	}
	if len(st.TraceID) != 32 {
		t.Fatalf("TraceID %q is not 32 hex chars", st.TraceID)
	}
	final := waitStatus(t, ts, st.ID, api.StatusDone)
	if final.TraceID != st.TraceID {
		t.Fatalf("terminal TraceID %q != submit TraceID %q", final.TraceID, st.TraceID)
	}

	resp, err := http.Get(ts.URL + "/v1/traces/" + st.ID) // 64-hex job id
	if err != nil {
		t.Fatal(err)
	}
	var tr api.Trace
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("trace by job id: %d: %s", resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tr.TraceID != st.TraceID {
		t.Fatalf("trace id %q, want %q", tr.TraceID, st.TraceID)
	}

	names := spanNames(tr.Spans)
	for _, want := range []string{"job", "cache.lookup", "queue.wait", "experiment.run", "sweep.job", "sim.quantum"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q spans; have %v", want, names)
		}
	}
	// fig3 over one benchmark runs 4 simulations; each is a sweep.job
	// with at least one sim.quantum under it.
	if names["sweep.job"] < 4 {
		t.Errorf("sweep.job spans = %d, want >= 4", names["sweep.job"])
	}
	if names["sim.quantum"] < names["sweep.job"] {
		t.Errorf("sim.quantum spans = %d, want >= %d (one per sweep job)", names["sim.quantum"], names["sweep.job"])
	}

	// Every span shares the trace, the root is the job span, and all
	// others reach the root through their parent ids.
	byID := make(map[string]tracing.Span, len(tr.Spans))
	var root tracing.Span
	for _, sp := range tr.Spans {
		if sp.TraceID != st.TraceID {
			t.Fatalf("span %s has trace %s, want %s", sp.Name, sp.TraceID, st.TraceID)
		}
		if sp.End < sp.Start {
			t.Fatalf("span %s ends before it starts", sp.Name)
		}
		byID[sp.SpanID] = sp
		if sp.Name == "job" {
			root = sp
		}
	}
	if root.ParentID != "" {
		t.Fatalf("job root has parent %q, want none", root.ParentID)
	}
	for _, sp := range tr.Spans {
		cur, hops := sp, 0
		for cur.ParentID != "" {
			next, ok := byID[cur.ParentID]
			if !ok {
				t.Fatalf("span %s has dangling parent %s", sp.Name, cur.ParentID)
			}
			cur = next
			if hops++; hops > len(tr.Spans) {
				t.Fatalf("parent cycle reaching from %s", sp.Name)
			}
		}
		if cur.SpanID != root.SpanID {
			t.Fatalf("span %s does not root at the job span", sp.Name)
		}
	}

	// The same trace resolves by its 32-hex trace id.
	resp2, err := http.Get(ts.URL + "/v1/traces/" + st.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("trace by trace id: %d", resp2.StatusCode)
	}

	// The recorder counters are live on /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(mbody), "heatstroked_trace_spans_total") {
		t.Error("/metrics missing heatstroked_trace_spans_total")
	}
	if strings.Contains(string(mbody), "heatstroked_trace_spans_total 0\n") {
		t.Error("heatstroked_trace_spans_total still 0 after a traced job")
	}
	if !strings.Contains(string(mbody), "heatstroked_trace_spans_dropped_total") {
		t.Error("/metrics missing heatstroked_trace_spans_dropped_total")
	}
}

// TestTraceJoinsClientTraceparent: a submit carrying a W3C traceparent
// header lands the job span in the caller's trace, under the caller's
// span.
func TestTraceJoinsClientTraceparent(t *testing.T) {
	_, ts := newTestServer(t, nil)

	parent := tracing.SpanContext{
		TraceID: tracing.NewTraceID(),
		SpanID:  tracing.NewSpanID(),
		Flags:   tracing.FlagSampled,
	}
	body, _ := json.Marshal(tinyRequest())
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", parent.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.TraceID != parent.TraceID.String() {
		t.Fatalf("job trace %q, want the caller's %q", st.TraceID, parent.TraceID.String())
	}
	waitStatus(t, ts, st.ID, api.StatusDone)

	tresp, err := http.Get(ts.URL + "/v1/traces/" + st.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var tr api.Trace
	if err := json.NewDecoder(tresp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sp := range tr.Spans {
		if sp.Name == "job" {
			found = true
			if sp.ParentID != parent.SpanID.String() {
				t.Fatalf("job span parent %q, want the caller's span %q", sp.ParentID, parent.SpanID.String())
			}
		}
	}
	if !found {
		t.Fatal("no job span in the joined trace")
	}
}

// TestTracingDisabled: with DisableTracing the wire surface degrades
// cleanly — no TraceID on statuses, 404 from the trace endpoint — and
// jobs still run.
func TestTracingDisabled(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.DisableTracing = true })

	_, st := submit(t, ts, tinyRequest())
	if st.TraceID != "" {
		t.Fatalf("TraceID %q with tracing disabled, want empty", st.TraceID)
	}
	waitStatus(t, ts, st.ID, api.StatusDone)
	resp, err := http.Get(ts.URL + "/v1/traces/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace endpoint returned %d with tracing disabled, want 404", resp.StatusCode)
	}
}

// TestLogfHandlerLevel pins the Logf bridge's level gate: the default
// stays Info (Debug suppressed), a configured level is honoured both
// ways, and WithAttrs preserves the level alongside the accumulated
// attributes.
func TestLogfHandlerLevel(t *testing.T) {
	var lines []string
	logf := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	def := slog.New(&logfHandler{logf: logf})
	def.Debug("hidden")
	def.Info("shown")
	if len(lines) != 1 || lines[0] != "shown" {
		t.Fatalf("default level: got %v, want [shown] (Debug suppressed, Info emitted)", lines)
	}

	lines = nil
	dbg := slog.New(&logfHandler{logf: logf, level: slog.LevelDebug})
	dbg.Debug("now visible")
	if len(lines) != 1 {
		t.Fatalf("LevelDebug handler dropped a debug line: %v", lines)
	}

	lines = nil
	warn := slog.New(&logfHandler{logf: logf, level: slog.LevelWarn}).With("trace_id", "abc")
	warn.Info("dropped")
	warn.Warn("kept")
	if len(lines) != 1 || !strings.Contains(lines[0], "trace_id=abc") {
		t.Fatalf("WithAttrs must keep the configured level and attrs: %v", lines)
	}
}

// TestServerOptionLogLevel exercises the Options plumbing end to end:
// a Debug LogLevel makes per-request access lines (logged at Debug)
// reach the Logf sink.
func TestServerOptionLogLevel(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	_, ts := newTestServer(t, func(o *Options) {
		o.Logf = func(format string, args ...any) {
			mu.Lock()
			fmt.Fprintf(&buf, format+"\n", args...)
			mu.Unlock()
		}
		o.LogLevel = slog.LevelDebug
	})
	if _, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	// The request line is logged after the response is written, so poll
	// briefly instead of racing the handler goroutine.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		text := buf.String()
		mu.Unlock()
		if strings.Contains(text, "request") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no Debug request line reached Logf with LogLevel=Debug:\n%s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
