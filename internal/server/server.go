// Package server implements heatstroked, the experiment-serving
// daemon: an HTTP front end over the internal/experiment registry and
// the internal/sweep engine.
//
// The core idea is that sweeps are deterministic — the same experiment,
// configuration, seed, and code version produce a byte-identical table
// — so results are content-addressed: a job's ID is a digest of its
// resolved parameters, identical requests from any number of clients
// cost one simulation, concurrent identical requests coalesce onto the
// single in-flight run (singleflight), and completed results are served
// from cache (optionally persisted to disk across restarts).
//
// Execution is a bounded in-process run queue: at most MaxConcurrent
// sweeps run at once, at most MaxQueue jobs wait, and submissions
// beyond that are rejected with 429 so load sheds at the edge instead
// of accumulating. Each running job streams progress (jobs
// completed/total, peak temperature, cycles/sec) over SSE, fed by the
// sweep engine's OnProgress hook. Shutdown cancels in-flight sweeps
// via context, waits for them to drain, and persists their partial
// summaries.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// Options configure the daemon.
type Options struct {
	// MaxConcurrent bounds simultaneously running sweeps (default 2).
	MaxConcurrent int
	// MaxQueue bounds jobs waiting to run; submissions beyond it get
	// 429 (default 16).
	MaxQueue int
	// JobTimeout is the per-job deadline (0 = none). A timed-out job
	// is canceled and keeps its partial summary.
	JobTimeout time.Duration
	// Parallelism bounds each sweep's workers (0 = GOMAXPROCS).
	Parallelism int
	// ForkTree runs every job's sweep in fork-tree mode: shared warmup
	// prefixes are simulated once and variants fork from the in-memory
	// snapshot (see experiment.Options.ForkTree). Results are byte
	// identical to flat sweeps, so the mode is deliberately excluded
	// from cache keys — cached artifacts from either mode alias.
	ForkTree bool
	// CacheDir, when set, persists completed results as JSON files so
	// restarts don't re-simulate.
	CacheDir string
	// WarmupCacheDir, when set, persists warmup snapshots (one .snap
	// file per warm key) so jobs sharing a machine configuration skip
	// the warmup phase across jobs and daemon restarts. Within one
	// sweep warmups are shared regardless; this extends the sharing
	// across sweeps. Snapshots from a different build are never served
	// (the warm key embeds Version and the snapshot format version).
	WarmupCacheDir string
	// BaseConfig supplies the machine configuration requests override
	// (default config.Default).
	BaseConfig func() config.Config
	// Version is the code version folded into cache keys, so results
	// from a different build never alias (default: the VCS revision
	// from build info, else "dev").
	Version string
	// Logger, when set, receives structured request and job logs. Job
	// lifecycle events log at Info with a "job" attribute; per-request
	// access lines log at Debug.
	Logger *slog.Logger
	// Logf, when set and Logger is not, receives the same logs rendered
	// as printf lines (legacy bridge; prefer Logger).
	Logf func(format string, args ...any)
	// LogLevel is the minimum level the Logf bridge emits (default
	// Info, so -log-level debug actually reaches the sink). Ignored
	// when Logger is set — a Logger carries its own level.
	LogLevel slog.Leveler
	// Tracer collects request-scoped spans (job lifecycle, queue wait,
	// warmup restore, each sweep job, simulated quanta) into a bounded
	// flight-recorder buffer served at GET /v1/traces/{id}. When nil,
	// New creates one sized TraceCapacity; set DisableTracing to run
	// without span collection entirely.
	Tracer *tracing.Tracer
	// TraceCapacity sizes the default tracer's span ring (<= 0 means
	// tracing.DefaultCapacity). Ignored when Tracer is set.
	TraceCapacity int
	// DisableTracing turns span collection off: no tracer is created,
	// traceparent headers are ignored, and the per-quantum cost is a
	// single nil check.
	DisableTracing bool
	// Advertise is the address this daemon wants fleet peers to reach
	// it at (reported in /v1/stats). A coordinator uses it to label the
	// worker and to locate snapshot sources; the daemon itself only
	// echoes it.
	Advertise string
	// FleetToken, when set, gates the warmup-snapshot transfer
	// endpoints (GET/PUT /v1/warm/{key}) behind a shared bearer token.
	// Empty leaves them open (fine on a trusted network; set it when
	// workers are reachable beyond the fleet).
	FleetToken string

	// BeforeRun, when set, is called immediately before each sweep
	// starts (test and fault-injection hook: lets callers hold jobs
	// in-flight or kill a worker mid-job deterministically).
	BeforeRun func(id string)
}

// errShutdown is the cancellation cause during Shutdown. It wraps
// context.Canceled so a sweep cut short by shutdown is classified as
// canceled (partial summary kept), not failed.
var errShutdown = fmt.Errorf("server shutting down: %w", context.Canceled)

// Server is the daemon state. Create with New, expose with Handler,
// stop with Shutdown.
type Server struct {
	opts    Options
	baseCtx context.Context
	cancel  context.CancelCauseFunc
	sem     chan struct{}
	mux     *http.ServeMux
	log     *slog.Logger
	met     *serverMetrics
	warm    *warmStore
	tracer  *tracing.Tracer

	mu      sync.Mutex
	jobs    map[string]*jobEntry
	queued  int
	running int
	stats   api.Stats
	closed  bool
	wg      sync.WaitGroup
}

// New builds a Server and loads the persistent cache, if configured.
func New(opts Options) (*Server, error) {
	if opts.MaxConcurrent <= 0 {
		opts.MaxConcurrent = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 16
	}
	if opts.BaseConfig == nil {
		opts.BaseConfig = config.Default
	}
	if opts.Version == "" {
		opts.Version = BuildVersion()
	}
	log := opts.Logger
	if log == nil {
		if opts.Logf != nil {
			log = slog.New(&logfHandler{logf: opts.Logf, level: opts.LogLevel})
		} else {
			log = slog.New(discardHandler{})
		}
	}
	tracer := opts.Tracer
	if tracer == nil && !opts.DisableTracing {
		service := "heatstroked"
		if opts.Advertise != "" {
			service = "heatstroked@" + opts.Advertise
		}
		tracer = tracing.NewTracer(service, opts.TraceCapacity)
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		opts:    opts,
		baseCtx: ctx,
		cancel:  cancel,
		sem:     make(chan struct{}, opts.MaxConcurrent),
		jobs:    make(map[string]*jobEntry),
		log:     log,
		tracer:  tracer,
	}
	s.met = newServerMetrics(s, opts.Version)
	if opts.WarmupCacheDir != "" {
		s.warm = newWarmStore(opts.WarmupCacheDir, log, s.met)
	}
	if err := s.loadCache(); err != nil {
		cancel(nil)
		return nil, err
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/warm/{key}", s.handleWarmGet)
	s.mux.HandleFunc("PUT /v1/warm/{key}", s.handleWarmPut)
	s.mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.Handle("GET /metrics", s.met.reg.Handler())
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.logRequests(s.mux) }

// Metrics returns the daemon's telemetry registry (exposed at
// GET /metrics), so embedders can add their own series.
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// Tracer returns the daemon's span collector (nil when tracing is
// disabled), so embedders — the fleet coordinator above all — can
// stitch its spans into cross-node traces.
func (s *Server) Tracer() *tracing.Tracer { return s.tracer }

// Shutdown drains the daemon: no new jobs are accepted, in-flight
// sweeps are cancelled via context and allowed to finish their running
// simulations, and every affected job persists its partial summary.
// It returns once all workers have drained or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cancel(errShutdown)
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown: %w", ctx.Err())
	}
}

// Stats returns a snapshot of the serving counters, plus the
// fleet-discovery fields: the advertised address and the warmup
// snapshots this daemon can serve over /v1/warm/{key}.
func (s *Server) Stats() api.Stats {
	s.mu.Lock()
	st := s.stats
	st.Queued = s.queued
	st.Running = s.running
	st.Jobs = len(s.jobs)
	s.mu.Unlock()
	st.Advertise = s.opts.Advertise
	if s.warm != nil {
		st.WarmKeys = s.warm.Keys()
	}
	return st
}

// resolve normalizes a request and derives its content address. The
// returned request has every default filled in (so it round-trips:
// resubmitting a resolved request yields the same ID).
func (s *Server) resolve(req api.JobRequest) (api.JobRequest, string, error) {
	return Resolve(s.opts.Version, s.opts.BaseConfig, req)
}

// Resolve normalizes a job request against a base configuration and
// derives its content address: the digest identical requests share.
// It is the one key-derivation path — the daemon uses it for its
// result cache, and the fleet coordinator (internal/fleet) uses the
// same function so shard placement hashes the very key the worker
// will cache under (same build and base config on both sides; with a
// mixed-version fleet the placements still land deterministically,
// the keys just stop aliasing across versions, as they must).
func Resolve(version string, base func() config.Config, req api.JobRequest) (api.JobRequest, string, error) {
	if base == nil {
		base = config.Default
	}
	req.Experiment = strings.TrimSpace(req.Experiment)
	in, ok := experiment.Describe(req.Experiment)
	if !ok {
		return req, "", fmt.Errorf("unknown experiment %q (have %v)", req.Experiment, experiment.Names())
	}
	if in.Cores > 1 {
		// Multi-core experiments run a bigger die than the base config's
		// single core: fill their registry defaults in so the resolved
		// request (and the digest below) names the die that actually runs.
		if req.Cores == 0 {
			req.Cores = in.Cores
		}
		if req.Solver == "" {
			req.Solver = in.Solver
		}
	}
	known := make(map[string]bool)
	for _, n := range workload.SpecNames() {
		known[n] = true
	}
	if len(req.Benchmarks) == 0 {
		req.Benchmarks = workload.SpecNames()
	} else {
		for i, b := range req.Benchmarks {
			b = strings.TrimSpace(b)
			if !known[b] {
				return req, "", fmt.Errorf("unknown benchmark %q (have %v)", b, workload.SpecNames())
			}
			req.Benchmarks[i] = b
		}
	}
	if req.Scale < 0 {
		return req, "", fmt.Errorf("scale must be non-negative")
	}
	cfg := base()
	if req.Scale > 0 {
		cfg.Thermal.Scale = req.Scale
	}
	req.Scale = cfg.Thermal.Scale
	if req.Cores < 0 || req.Cores > config.MaxCores {
		return req, "", fmt.Errorf("cores must be in [0, %d]", config.MaxCores)
	}
	// Topology overrides land in the config before Digest() below, so
	// the content address — and with it the fleet's shard placement —
	// separates runs of the same experiment on different dies.
	if req.Cores > 0 {
		cfg.Topology.Cores = req.Cores
		if req.Cores > 1 && req.Solver == "" {
			// A multi-core die cannot run on the lumped network; an
			// explicit solver still wins (and validates below).
			cfg.Topology.Solver = config.SolverGrid
		}
	}
	if req.Solver != "" {
		cfg.Topology.Solver = req.Solver
	}
	req.Cores = cfg.Topology.Cores
	req.Solver = cfg.Topology.Solver
	if err := cfg.Validate(); err != nil {
		return req, "", err
	}
	if req.Quantum < 0 || req.Warmup < 0 {
		return req, "", fmt.Errorf("quantum and warmup must be non-negative")
	}
	if req.Quantum == 0 {
		req.Quantum = cfg.Run.QuantumCycles
	}
	if req.Warmup == 0 {
		req.Warmup = 500_000
	}
	if req.Seed == nil {
		seed := cfg.Run.Seed
		req.Seed = &seed
	}
	// The content address: a canonical digest of the resolved
	// parameters plus the code version. The config digest covers every
	// machine parameter (including the scale override applied above),
	// so any configuration drift changes the address.
	key := struct {
		Version    string   `json:"version"`
		Experiment string   `json:"experiment"`
		Config     string   `json:"config"`
		Quantum    int64    `json:"quantum"`
		Warmup     int64    `json:"warmup"`
		Seed       int64    `json:"seed"`
		Benchmarks []string `json:"benchmarks"`
	}{version, req.Experiment, cfg.Digest(), req.Quantum, req.Warmup, *req.Seed, req.Benchmarks}
	b, err := json.Marshal(key)
	if err != nil {
		return req, "", err
	}
	sum := sha256.Sum256(b)
	return req, hex.EncodeToString(sum[:]), nil
}

// expOptions builds the experiment options for one job. The resolved
// request's seed is passed with SeedSet so literal seed 0 round-trips.
func (s *Server) expOptions(e *jobEntry) experiment.Options {
	cfg := s.opts.BaseConfig()
	cfg.Thermal.Scale = e.req.Scale
	if e.req.Cores > 0 {
		cfg.Topology.Cores = e.req.Cores
	}
	if e.req.Solver != "" {
		cfg.Topology.Solver = e.req.Solver
	}
	o := experiment.Options{
		Config:      &cfg,
		Benchmarks:  e.req.Benchmarks,
		Quantum:     e.req.Quantum,
		Warmup:      e.req.Warmup,
		Parallelism: s.opts.Parallelism,
		Seed:        *e.req.Seed,
		SeedSet:     true,
		Progress:    e.onProgress,
		ForkTree:    s.opts.ForkTree,
		CodeVersion: s.opts.Version,
		OnRestore:   s.met.observeRestore,
	}
	if s.warm != nil {
		// Assigned conditionally: a typed nil *warmStore in the
		// interface would pass the != nil checks downstream.
		o.WarmupCache = s.warm
	}
	return o
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	resolved, id, err := s.resolve(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The job context carries the tracer and — when the client sent a
	// valid traceparent — the remote parent, so the job span joins the
	// caller's trace (a coordinator dispatch, a CLI root span) instead
	// of starting a fresh one.
	lookupStart := time.Now()
	tctx := tracing.ContextWithTracer(s.baseCtx, s.tracer)
	if tp := r.Header.Get("traceparent"); tp != "" {
		if parent, perr := tracing.ParseTraceparent(tp); perr == nil {
			tctx = tracing.ContextWithRemote(tctx, parent)
		}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	s.stats.Submitted++
	s.met.submitted.Inc()
	if e, ok := s.jobs[id]; ok {
		st := e.snapshot()
		if st.Status == api.StatusDone {
			// Content-addressed cache hit: the result already exists.
			s.stats.CacheHits++
			s.met.cacheHits.Inc()
			st.Cached = true
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
		if !st.Status.Terminal() {
			// Singleflight: join the identical in-flight job instead
			// of queueing a duplicate simulation.
			s.stats.Coalesced++
			s.met.coalesced.Inc()
			st.Coalesced = true
			s.mu.Unlock()
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		// Failed or canceled earlier: drop the stale entry and re-run.
		delete(s.jobs, id)
	}
	if s.queued >= s.opts.MaxQueue {
		s.stats.Rejected++
		s.met.rejected.Inc()
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "queue full (%d queued)", s.opts.MaxQueue)
		return
	}
	s.met.cacheMisses.Inc()
	e := newJobEntry(id, resolved, s.met)
	e.created = lookupStart
	jctx, span := tracing.StartSpan(tctx, "job")
	span.SetAttr("job", shortID(id))
	span.SetAttr("experiment", resolved.Experiment)
	e.span = span
	if sc := span.Context(); sc.Valid() {
		e.traceID = sc.TraceID.String()
		s.tracer.Emit(sc, "cache.lookup", lookupStart.UnixNano(), time.Now().UnixNano(),
			map[string]string{"hit": "false"})
	}
	e.ctx, e.cancel = context.WithCancelCause(jctx)
	s.jobs[id] = e
	s.queued++
	s.wg.Add(1)
	go s.execute(e)
	st := e.snapshot()
	s.mu.Unlock()

	s.log.Info("job queued",
		append([]any{
			"job", shortID(id),
			"experiment", resolved.Experiment,
			"benchmarks", len(resolved.Benchmarks),
			"quantum", resolved.Quantum,
			"seed", *resolved.Seed,
		}, e.logAttrs()...)...)
	writeJSON(w, http.StatusAccepted, st)
}

// execute runs one job through the bounded queue: acquire a run slot
// (or observe shutdown), run the experiment sweep, record the outcome,
// and persist it.
func (s *Server) execute(e *jobEntry) {
	defer s.wg.Done()
	defer e.cancel(nil)
	select {
	case s.sem <- struct{}{}:
	case <-e.ctx.Done():
		// Canceled while still queued (shutdown or a client DELETE):
		// never simulated.
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		e.finish(api.StatusCanceled, nil, context.Cause(e.ctx))
		s.persist(e)
		return
	}
	s.mu.Lock()
	s.queued--
	s.running++
	s.stats.Runs++
	s.mu.Unlock()
	e.setStatus(api.StatusRunning)
	// The slot wait is over; record it retroactively as a child of the
	// job span (no-op when tracing is off or the span never opened).
	s.tracer.Emit(e.span.Context(), "queue.wait", e.created.UnixNano(), time.Now().UnixNano(), nil)

	runCtx := e.ctx
	var cancel context.CancelFunc
	if s.opts.JobTimeout > 0 {
		runCtx, cancel = context.WithTimeout(runCtx, s.opts.JobTimeout)
	}
	if s.opts.BeforeRun != nil {
		s.opts.BeforeRun(e.id)
	}
	start := time.Now()
	runCtx, rsp := tracing.StartSpan(runCtx, "experiment.run")
	table, err := experiment.RunContext(runCtx, e.req.Experiment, s.expOptions(e))
	rsp.EndErr(err)
	if cancel != nil {
		cancel()
	}
	<-s.sem
	s.mu.Lock()
	s.running--
	s.mu.Unlock()

	elapsed := time.Since(start)
	switch {
	case err == nil:
		e.finish(api.StatusDone, table, nil)
		s.met.finishJob(api.StatusDone, elapsed.Seconds())
		s.log.Info("job done",
			append([]any{"job", shortID(e.id), "dur", elapsed.Round(time.Millisecond).String()}, e.logAttrs()...)...)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		e.finish(api.StatusCanceled, nil, err)
		s.met.finishJob(api.StatusCanceled, elapsed.Seconds())
		s.log.Info("job canceled",
			append([]any{"job", shortID(e.id), "dur", elapsed.Round(time.Millisecond).String(), "err", err}, e.logAttrs()...)...)
	default:
		e.finish(api.StatusFailed, nil, err)
		s.met.finishJob(api.StatusFailed, elapsed.Seconds())
		s.log.Info("job failed",
			append([]any{"job", shortID(e.id), "err", err}, e.logAttrs()...)...)
	}
	s.persist(e)
}

// handleTrace serves every buffered span of one trace, addressed
// either by its 32-hex trace id or by a job id (64 hex — the two are
// disjoint by construction, so the endpoint accepts both).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled")
		return
	}
	id := r.PathValue("id")
	tid := id
	if len(id) == 64 {
		e := s.lookup(id)
		if e == nil {
			writeError(w, http.StatusNotFound, "unknown job")
			return
		}
		if e.traceID == "" {
			writeError(w, http.StatusNotFound, "job has no trace")
			return
		}
		tid = e.traceID
	}
	spans := s.tracer.Spans(tid)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace")
		return
	}
	tracing.SortSpans(spans)
	writeJSON(w, http.StatusOK, api.Trace{TraceID: tid, Spans: spans})
}

func (s *Server) lookup(id string) *jobEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, e.snapshot())
}

// errClientCanceled is the cancellation cause for DELETE /v1/jobs/{id}
// (a coordinator cancelling the losing side of a hedged dispatch, or
// any client abandoning a run). It wraps context.Canceled so the job
// classifies as canceled, keeping its partial summary.
var errClientCanceled = fmt.Errorf("canceled by client request: %w", context.Canceled)

// handleCancel aborts a queued or running job. Cancellation is
// asynchronous: the response carries the job's snapshot at signal
// time, and the job reaches StatusCanceled once its running
// simulations wind down (poll or stream events for the terminal
// state). Cancelling an already-terminal job is a no-op; note a
// canceled entry is evicted and re-run on the next identical submit,
// so cancellation also cancels for any clients coalesced onto the job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if e.cancel != nil {
		e.cancel(errClientCanceled)
	}
	s.log.Info("job cancel requested", "job", shortID(e.id))
	writeJSON(w, http.StatusOK, e.snapshot())
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	e := s.lookup(r.PathValue("id"))
	if e == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	fname := r.URL.Query().Get("format")
	if fname == "" {
		fname = string(sweep.FormatTable)
	}
	f, err := sweep.ParseFormat(fname)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st, table := e.result()
	if st != api.StatusDone || table == nil {
		writeError(w, http.StatusConflict, "job is %s; artifact requires done", st)
		return
	}
	switch f {
	case sweep.FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	case sweep.FormatCSV:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := table.Write(w, f); err != nil {
		s.log.Info("artifact write failed", "job", shortID(e.id), "err", err)
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	infos := experiment.Infos()
	out := make([]api.ExperimentInfo, len(infos))
	for i, in := range infos {
		out[i] = api.ExperimentInfo{Name: in.Name, Title: in.Title, Description: in.Description,
			Cores: in.Cores, Solver: in.Solver}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

// BuildVersion derives the code version from the binary's VCS stamp
// (else "dev"). It is the default Options.Version — exported so the
// fleet coordinator (internal/fleet), built from the same source,
// defaults to the same version and its shard keys and warm keys alias
// the workers' caches.
func BuildVersion() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, kv := range info.Settings {
			switch kv.Key {
			case "vcs.revision":
				rev = kv.Value
			case "vcs.modified":
				if kv.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	return "dev"
}
