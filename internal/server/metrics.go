package server

import (
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// serverMetrics is the daemon's telemetry surface, served at
// GET /metrics in Prometheus text format. Counters are incremented at
// the same sites as the api.Stats counters (which remain the wire
// truth for /v1/stats); queue gauges read the live server state so the
// two views can never drift.
type serverMetrics struct {
	reg *telemetry.Registry

	submitted   *telemetry.Counter
	rejected    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	coalesced   *telemetry.Counter

	// jobs[outcome] counts terminal jobs by outcome label.
	jobs map[api.Status]*telemetry.Counter
	// sims[false]/sims[true] count individual simulations by failure.
	sims map[bool]*telemetry.Counter

	warmHits      *telemetry.Counter
	warmMisses    *telemetry.Counter
	warmServed    *telemetry.Counter
	warmInstalled *telemetry.Counter

	jobDur     *telemetry.Histogram
	simDur     *telemetry.Histogram
	restoreDur *telemetry.Histogram
}

// newServerMetrics registers every series up front so a scrape sees
// the full schema (zero-valued) before the first job arrives.
func newServerMetrics(s *Server, version string) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		submitted: reg.Counter("heatstroked_jobs_submitted_total",
			"Job submissions received (including cache hits and coalesced duplicates)."),
		rejected: reg.Counter("heatstroked_jobs_rejected_total",
			"Submissions rejected because the queue was full."),
		cacheHits: reg.Counter("heatstroked_cache_hits_total",
			"Submissions answered from the content-addressed result cache."),
		cacheMisses: reg.Counter("heatstroked_cache_misses_total",
			"Submissions that created a new job (no cached or in-flight result)."),
		coalesced: reg.Counter("heatstroked_singleflight_coalesced_total",
			"Submissions coalesced onto an identical in-flight job."),
		jobs: map[api.Status]*telemetry.Counter{},
		sims: map[bool]*telemetry.Counter{},
		warmHits: reg.Counter("heatstroked_warmup_cache_hits_total",
			"Warmup snapshots served from the persistent warmup cache."),
		warmMisses: reg.Counter("heatstroked_warmup_cache_misses_total",
			"Warmup-cache lookups that ran a fresh warmup instead."),
		warmServed: reg.Counter("heatstroked_warm_snapshots_served_total",
			"Warmup snapshots sent to fleet peers over GET /v1/warm/{key}."),
		warmInstalled: reg.Counter("heatstroked_warm_snapshots_installed_total",
			"Warmup snapshots installed from fleet peers over PUT /v1/warm/{key}."),
		jobDur: reg.Histogram("heatstroked_job_duration_seconds",
			"Wall time of executed jobs (queued-to-terminal, excluding cache hits).",
			telemetry.DefLatencyBuckets),
		simDur: reg.Histogram("heatstroked_sim_duration_seconds",
			"Wall time of individual simulations inside sweeps.",
			telemetry.DefLatencyBuckets),
		restoreDur: reg.Histogram("heatstroked_warmup_restore_seconds",
			"Time to restore a simulation from a shared warmup snapshot.",
			telemetry.DefLatencyBuckets),
	}
	for _, st := range []api.Status{api.StatusDone, api.StatusFailed, api.StatusCanceled} {
		m.jobs[st] = reg.Counter("heatstroked_jobs_total",
			"Jobs reaching a terminal state, by outcome.",
			telemetry.L("outcome", string(st)))
	}
	m.sims[false] = reg.Counter("heatstroked_sims_total",
		"Individual simulations finished inside sweeps, by outcome.",
		telemetry.L("outcome", "ok"))
	m.sims[true] = reg.Counter("heatstroked_sims_total",
		"Individual simulations finished inside sweeps, by outcome.",
		telemetry.L("outcome", "error"))
	reg.Gauge("heatstroked_build_info",
		"Build metadata; the value is always 1.",
		telemetry.L("version", version)).Set(1)
	reg.GaugeFunc("heatstroked_queue_depth",
		"Jobs waiting for a run slot.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queued)
		})
	reg.GaugeFunc("heatstroked_jobs_in_flight",
		"Sweeps currently running.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.running)
		})
	reg.GaugeFunc("heatstroked_jobs_tracked",
		"Job entries held in memory (cache plus queue plus running).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	// Tracer counters read the tracer's atomics at exposition time
	// (nil-safe: both report 0 with tracing disabled).
	reg.CounterFunc("heatstroked_trace_spans_total",
		"Spans recorded into the trace flight-recorder buffer.",
		func() uint64 { return s.tracer.Recorded() })
	reg.CounterFunc("heatstroked_trace_spans_dropped_total",
		"Oldest spans evicted from the bounded trace buffer on overflow.",
		func() uint64 { return s.tracer.Dropped() })
	return m
}

// finishJob records a terminal outcome and its duration.
func (m *serverMetrics) finishJob(st api.Status, seconds float64) {
	if c, ok := m.jobs[st]; ok {
		c.Inc()
	}
	m.jobDur.Observe(seconds)
}

// observeSim records one simulation finishing inside a sweep.
func (m *serverMetrics) observeSim(seconds float64, failed bool) {
	m.sims[failed].Inc()
	m.simDur.Observe(seconds)
}

// observeRestore records one warm-snapshot restore (fed to experiment
// runs as Options.OnRestore).
func (m *serverMetrics) observeRestore(seconds float64) {
	m.restoreDur.Observe(seconds)
}
