package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// expositionLine matches one valid Prometheus text-format line (the
// same shape the CI smoke check enforces).
var expositionLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN))$`)

// TestMetricsEndpoint runs a job (plus a cache-hit repeat), scrapes
// GET /metrics, and checks the exposition is well-formed and carries
// the daemon's serving counters with the right values.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, st := submit(t, ts, tinyRequest())
	waitStatus(t, ts, st.ID, api.StatusDone)
	if code, st2 := submit(t, ts, tinyRequest()); code != http.StatusOK || !st2.Cached {
		t.Fatalf("repeat submit: code=%d cached=%v", code, st2.Cached)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	series := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
		if !strings.HasPrefix(line, "#") {
			series[strings.Fields(line)[0]] = true
		}
	}
	if len(series) < 10 {
		t.Errorf("only %d series exposed: %v", len(series), series)
	}

	// The tiny fig3 job runs 4 simulations; the repeat was a pure hit.
	for line, want := range map[string]bool{
		"heatstroked_jobs_submitted_total 2":         true,
		"heatstroked_cache_hits_total 1":             true,
		"heatstroked_cache_misses_total 1":           true,
		"heatstroked_jobs_rejected_total 0":          true,
		"heatstroked_singleflight_coalesced_total 0": true,
		`heatstroked_jobs_total{outcome="done"} 1`:   true,
		`heatstroked_jobs_total{outcome="failed"} 0`: true,
		`heatstroked_sims_total{outcome="ok"} 4`:     true,
		"heatstroked_job_duration_seconds_count 1":   true,
		"heatstroked_sim_duration_seconds_count 4":   true,
		`heatstroked_build_info{version="test"} 1`:   true,
		"heatstroked_queue_depth 0":                  true,
		"heatstroked_jobs_in_flight 0":               true,
		"heatstroked_jobs_tracked 1":                 true,
	} {
		if want && !strings.Contains(text, line+"\n") {
			t.Errorf("missing series %q in exposition:\n%s", line, text)
		}
	}
}

// blockedWriter is a ResponseWriter whose first Write blocks until the
// gate opens, simulating a subscriber that cannot keep up.
type blockedWriter struct {
	gate <-chan struct{}

	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *blockedWriter) Header() http.Header { return http.Header{} }
func (w *blockedWriter) WriteHeader(int)     {}
func (w *blockedWriter) Flush()              {}
func (w *blockedWriter) Write(b []byte) (int, error) {
	<-w.gate
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(b)
}
func (w *blockedWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestSSESlowSubscriber overflows a subscriber's 32-event buffer while
// its writer is stalled: intermediate progress frames may drop (by
// design), but the stream must still terminate with a "done" frame —
// synthesized from the terminal snapshot when the broadcast one was
// among the casualties.
func TestSSESlowSubscriber(t *testing.T) {
	s, _ := newTestServer(t, nil)
	e := newJobEntry("slow", tinyRequest(), nil)
	e.setStatus(api.StatusRunning)
	s.mu.Lock()
	s.jobs[e.id] = e
	s.mu.Unlock()

	gate := make(chan struct{})
	w := &blockedWriter{gate: gate}
	req := httptest.NewRequest("GET", "/v1/jobs/slow/events", nil)
	req.SetPathValue("id", "slow")
	served := make(chan struct{})
	go func() {
		s.handleEvents(w, req)
		close(served)
	}()

	// Wait for the handler to subscribe, then flood it: far more
	// progress events than the channel buffer holds, then the terminal
	// broadcast — all while its writer is stuck.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.mu.Lock()
		n := len(e.subs)
		e.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 100; i++ {
		e.onProgress(sweep.Progress{Completed: i, Total: 100})
	}
	e.finish(api.StatusDone, &sweep.Table{}, nil)
	close(gate)
	select {
	case <-served:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not finish")
	}

	var events []api.Event
	for _, line := range strings.Split(w.String(), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev api.Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			events = append(events, ev)
		}
	}
	if len(events) == 0 || len(events) > 34 {
		// 1 subscribe snapshot + at most 32 buffered + 1 terminal.
		t.Fatalf("%d frames delivered", len(events))
	}
	if len(events) >= 100 {
		t.Fatal("no events were dropped; the test did not overflow the buffer")
	}
	final := events[len(events)-1]
	if final.Type != "done" || final.Job == nil || final.Job.Status != api.StatusDone {
		t.Fatalf("stream did not end with a terminal frame: %+v", final)
	}
}

// TestStatsShape pins the /v1/stats wire contract.
func TestStatsShape(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, st := submit(t, ts, tinyRequest())
	waitStatus(t, ts, st.ID, api.StatusDone)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"submitted", "runs", "cache_hits", "coalesced", "rejected", "queued", "running", "jobs"} {
		v, ok := raw[key]
		if !ok {
			t.Errorf("stats missing %q: %v", key, raw)
			continue
		}
		if _, ok := v.(float64); !ok {
			t.Errorf("stats[%q] = %T, want number", key, v)
		}
	}
	if raw["submitted"].(float64) != 1 || raw["runs"].(float64) != 1 || raw["jobs"].(float64) != 1 {
		t.Errorf("stats after one job: %v", raw)
	}
}

// TestReadyzShape pins /readyz: plain "ready" while serving, a JSON
// error envelope with 503 once shutdown begins.
func TestReadyzShape(t *testing.T) {
	s, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ready\n" {
		t.Fatalf("readyz: %d %q", resp.StatusCode, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after shutdown: %d", resp.StatusCode)
	}
	var apiErr api.Error
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != http.StatusServiceUnavailable || apiErr.Message == "" {
		t.Errorf("error envelope %+v", apiErr)
	}
}
