package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// logfHandler adapts a printf-style sink to slog, so callers still on
// Options.Logf keep their log lines (rendered "msg key=val ...").
type logfHandler struct {
	logf  func(format string, args ...any)
	level slog.Leveler // minimum level; nil means Info
	attrs []slog.Attr
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	min := slog.LevelInfo
	if h.level != nil {
		min = h.level.Level()
	}
	return level >= min
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", sb.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{logf: h.logf, level: h.level, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// discardHandler drops everything (the default when no sink is set).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// statusRecorder captures the response code for request logging while
// passing Flush through so SSE streaming keeps working.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// logRequests wraps the mux with structured per-request logging at
// Debug level (job lifecycle lines are logged at Info separately, so
// the default level keeps operational noise down).
func (s *Server) logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.log.Debug("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur", time.Since(start).Round(time.Microsecond).String(),
			"remote", r.RemoteAddr)
	})
}
