package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWarmupCachePersistence: a daemon with -warmup-cache-dir writes
// one snapshot per warm key; a restarted daemon (same dir, no result
// cache) serves its warmups from disk and reports identical results.
func TestWarmupCachePersistence(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newTestServer(t, func(o *Options) { o.WarmupCacheDir = dir })

	// The schema is visible before any job runs.
	m := metricsText(t, ts1)
	for _, want := range []string{
		"heatstroked_warmup_cache_hits_total",
		"heatstroked_warmup_cache_misses_total",
		"heatstroked_warmup_restore_seconds",
	} {
		if !strings.Contains(m, want) {
			t.Fatalf("metrics missing %s:\n%s", want, m)
		}
	}

	code, st := submit(t, ts1, tinyRequest())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d", code)
	}
	waitStatus(t, ts1, st.ID, api.StatusDone)

	snaps, err := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	// fig3 over one benchmark runs 4 sims with 4 distinct thread sets.
	if len(snaps) != 4 {
		t.Fatalf("wrote %d snapshots, want 4", len(snaps))
	}
	m = metricsText(t, ts1)
	if !strings.Contains(m, "heatstroked_warmup_cache_misses_total 4") {
		t.Errorf("first run should record 4 warmup-cache misses:\n%s",
			grepLine(m, "warmup_cache"))
	}
	if strings.Contains(m, "heatstroked_warmup_restore_seconds_count 0") {
		t.Error("restore histogram never observed")
	}

	// Fresh daemon, shared warmup dir, no result cache: same request
	// re-simulates but every warmup is a disk hit.
	_, ts2 := newTestServer(t, func(o *Options) { o.WarmupCacheDir = dir })
	code, st2 := submit(t, ts2, tinyRequest())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit 2: %d", code)
	}
	waitStatus(t, ts2, st2.ID, api.StatusDone)
	m = metricsText(t, ts2)
	if !strings.Contains(m, "heatstroked_warmup_cache_hits_total 4") {
		t.Errorf("second daemon should record 4 warmup-cache hits:\n%s",
			grepLine(m, "warmup_cache"))
	}
	if a, b := artifactCSV(t, ts1, st.ID), artifactCSV(t, ts2, st2.ID); a != b {
		t.Errorf("cached-warmup results differ:\n%s\nvs\n%s", a, b)
	}

	// A torn snapshot is a miss, not an error: the daemon re-warms and
	// overwrites it.
	if err := os.WriteFile(snaps[0], []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, func(o *Options) { o.WarmupCacheDir = dir })
	code, st3 := submit(t, ts3, tinyRequest())
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit 3: %d", code)
	}
	waitStatus(t, ts3, st3.ID, api.StatusDone)
	if a, b := artifactCSV(t, ts1, st.ID), artifactCSV(t, ts3, st3.ID); a != b {
		t.Errorf("results differ after torn snapshot:\n%s\nvs\n%s", a, b)
	}
}

func artifactCSV(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/artifact?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s: %d: %s", id, resp.StatusCode, b)
	}
	return string(b)
}

func grepLine(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
