package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// tinyConfig keeps server tests fast: short quanta at the default
// reproduction scale.
func tinyConfig() config.Config {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 60_000
	return cfg
}

// tinyRequest is the canonical fast job: fig3 over one benchmark runs
// 4 simulations (1 SPEC + 3 variants).
func tinyRequest() api.JobRequest {
	seed := int64(7)
	return api.JobRequest{
		Experiment: "fig3",
		Benchmarks: []string{"crafty"},
		Quantum:    60_000,
		Warmup:     1_000,
		Seed:       &seed,
	}
}

func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{
		MaxConcurrent: 2,
		MaxQueue:      8,
		Parallelism:   2,
		BaseConfig:    tinyConfig,
		Version:       "test",
		Logf:          t.Logf,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req api.JobRequest) (int, api.JobStatus) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode, st
}

func getJob(t *testing.T, ts *httptest.Server, id string) api.JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return st
}

func waitStatus(t *testing.T, ts *httptest.Server, id string, want api.Status) api.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, ts, id)
		if st.Status == want {
			return st
		}
		if st.Status.Terminal() {
			t.Fatalf("job reached %s (err=%q), want %s", st.Status, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", want)
	return api.JobStatus{}
}

// TestCoalescingAndCache is the acceptance core: two concurrent
// identical submissions trigger exactly one sweep, and a repeat after
// completion is a pure cache hit.
func TestCoalescingAndCache(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(o *Options) {
		o.BeforeRun = func(id string) {
			entered <- id
			<-release
		}
	})

	code, st1 := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	if st1.Cached || st1.Coalesced {
		t.Fatalf("first submit flagged cached/coalesced: %+v", st1)
	}
	<-entered // the job is now in-flight, held at the gate

	code, st2 := submit(t, ts, tinyRequest())
	if code != http.StatusAccepted {
		t.Fatalf("concurrent submit: %d", code)
	}
	if !st2.Coalesced || st2.ID != st1.ID {
		t.Fatalf("concurrent identical submit not coalesced: %+v", st2)
	}

	close(release)
	done := waitStatus(t, ts, st1.ID, api.StatusDone)
	if done.Summary == nil || done.Summary.Succeeded != 4 {
		t.Fatalf("summary = %+v", done.Summary)
	}
	if done.Progress.Completed != 4 || done.Progress.Total != 4 {
		t.Fatalf("progress = %+v", done.Progress)
	}

	code, st3 := submit(t, ts, tinyRequest())
	if code != http.StatusOK || !st3.Cached {
		t.Fatalf("repeat submit: code=%d status=%+v", code, st3)
	}

	stats := s.Stats()
	if stats.Runs != 1 {
		t.Errorf("runs = %d, want exactly 1 (coalesced + cached)", stats.Runs)
	}
	if stats.Coalesced != 1 || stats.CacheHits != 1 || stats.Submitted != 3 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestContentAddressing: the ID is a function of resolved parameters —
// defaults and explicit-equal values alias, any differing parameter
// does not.
func TestContentAddressing(t *testing.T) {
	s, _ := newTestServer(t, nil)

	base := tinyRequest()
	_, id1, err := s.resolve(base)
	if err != nil {
		t.Fatal(err)
	}

	// Omitted seed resolves to the config default...
	noSeed := tinyRequest()
	noSeed.Seed = nil
	resolved, idDefault, err := s.resolve(noSeed)
	if err != nil {
		t.Fatal(err)
	}
	if *resolved.Seed != tinyConfig().Run.Seed {
		t.Errorf("default seed = %d", *resolved.Seed)
	}
	// ...and explicitly requesting that default aliases it.
	explicit := tinyRequest()
	*explicit.Seed = tinyConfig().Run.Seed
	_, idExplicit, err := s.resolve(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if idDefault != idExplicit {
		t.Error("seed-omitted and seed-explicit-default must share an address")
	}

	// Literal seed 0 is requestable and distinct from the default.
	zero := tinyRequest()
	*zero.Seed = 0
	_, idZero, err := s.resolve(zero)
	if err != nil {
		t.Fatal(err)
	}
	if idZero == idDefault {
		t.Error("seed 0 must not alias the config default seed")
	}

	distinct := map[string]func(*api.JobRequest){
		"quantum":   func(r *api.JobRequest) { r.Quantum = 70_000 },
		"warmup":    func(r *api.JobRequest) { r.Warmup = 2_000 },
		"scale":     func(r *api.JobRequest) { r.Scale = 32 },
		"benchmark": func(r *api.JobRequest) { r.Benchmarks = []string{"mcf"} },
		"exp":       func(r *api.JobRequest) { r.Experiment = "table1" },
		"cores":     func(r *api.JobRequest) { r.Cores = 2; r.Solver = "grid" },
		"solver":    func(r *api.JobRequest) { r.Solver = "grid" },
	}
	for name, mutate := range distinct {
		req := tinyRequest()
		mutate(&req)
		_, id, err := s.resolve(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if id == id1 {
			t.Errorf("%s change did not change the address", name)
		}
	}

	// A different code version must never alias.
	s2, _ := newTestServer(t, func(o *Options) { o.Version = "test-v2" })
	_, id2, err := s2.resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Error("different code versions alias")
	}
}

func TestResolveRejects(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for name, req := range map[string]api.JobRequest{
		"unknown experiment": {Experiment: "nope"},
		"unknown benchmark":  {Experiment: "fig3", Benchmarks: []string{"nope"}},
		"negative quantum":   {Experiment: "fig3", Quantum: -1},
		"bad scale":          {Experiment: "fig3", Scale: -3},
		"negative cores":     {Experiment: "fig3", Cores: -1},
		"too many cores":     {Experiment: "fig3", Cores: config.MaxCores + 1},
		"unknown solver":     {Experiment: "fig3", Solver: "magic"},
		"multi-core lumped":  {Experiment: "fig3", Cores: 2, Solver: config.SolverLumped},
	} {
		if _, _, err := s.resolve(req); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	body := []byte(`{"experiment": 42}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %d", resp.StatusCode)
	}
}

// TestResolveTopology covers the multi-core request surface: registry
// defaults fill into the resolved request, topology overrides change
// the content address, and resolved requests round-trip to the same
// ID.
func TestResolveTopology(t *testing.T) {
	s, ts := newTestServer(t, nil)

	// A multi-core experiment with no overrides resolves to its
	// registry die (2 cores on the grid), and the resolved request
	// re-resolves to the same address.
	resolved, id, err := s.resolve(api.JobRequest{Experiment: "neighbor-heat"})
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Cores != 2 || resolved.Solver != config.SolverGrid {
		t.Fatalf("resolved topology %d/%q, want 2/grid", resolved.Cores, resolved.Solver)
	}
	again, id2, err := s.resolve(resolved)
	if err != nil {
		t.Fatal(err)
	}
	if id2 != id || again.Cores != 2 {
		t.Error("resolved request did not round-trip to the same address")
	}
	// Explicitly asking for the default die aliases the omitted form.
	_, idExplicit, err := s.resolve(api.JobRequest{Experiment: "neighbor-heat", Cores: 2, Solver: config.SolverGrid})
	if err != nil {
		t.Fatal(err)
	}
	if idExplicit != id {
		t.Error("explicit default topology must alias the omitted form")
	}
	// A bigger die is a different job.
	_, id4, err := s.resolve(api.JobRequest{Experiment: "neighbor-heat", Cores: 4})
	if err != nil {
		t.Fatal(err)
	}
	if id4 == id {
		t.Error("core count change did not change the address")
	}

	// Single-core experiments keep the base topology untouched.
	single, _, err := s.resolve(tinyRequest())
	if err != nil {
		t.Fatal(err)
	}
	if single.Cores != 1 || single.Solver != config.SolverLumped {
		t.Errorf("single-core resolved topology %d/%q", single.Cores, single.Solver)
	}

	// The experiment listing carries each entry's die so clients can
	// see which experiments are multi-core without running them.
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var infos []api.ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]api.ExperimentInfo)
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName["neighbor-heat"]; in.Cores != 2 || in.Solver != config.SolverGrid {
		t.Errorf("listing neighbor-heat = %d/%q, want 2/grid", in.Cores, in.Solver)
	}
	if in := byName["dtm-scope"]; in.Cores != 2 || in.Solver != config.SolverGrid {
		t.Errorf("listing dtm-scope = %d/%q, want 2/grid", in.Cores, in.Solver)
	}
	if in := byName["fig3"]; in.Cores != 1 || in.Solver != config.SolverLumped {
		t.Errorf("listing fig3 = %d/%q, want 1/lumped", in.Cores, in.Solver)
	}
}

// TestSSEMonotonicProgress consumes the events stream of a held job
// and checks the progress frames are monotonic and terminate with a
// done frame carrying the final status.
func TestSSEMonotonicProgress(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	_, ts := newTestServer(t, func(o *Options) {
		o.BeforeRun = func(id string) {
			entered <- id
			<-release
		}
	})
	_, st := submit(t, ts, tinyRequest())
	<-entered

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	close(release)

	var events []api.Event
	scanner := bufio.NewScanner(resp.Body)
	var evType string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var ev api.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				t.Fatalf("bad frame %q: %v", line, err)
			}
			if ev.Type != evType {
				t.Errorf("frame type %q does not match event line %q", ev.Type, evType)
			}
			events = append(events, ev)
		}
		if evType == "done" && len(events) > 0 && events[len(events)-1].Type == "done" {
			break
		}
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	last := -1
	for i, ev := range events[:len(events)-1] {
		if ev.Type != "progress" || ev.Progress == nil {
			t.Fatalf("event %d: %+v", i, ev)
		}
		if ev.Progress.Completed < last {
			t.Errorf("progress regressed: %d -> %d", last, ev.Progress.Completed)
		}
		last = ev.Progress.Completed
	}
	final := events[len(events)-1]
	if final.Type != "done" || final.Job == nil || final.Job.Status != api.StatusDone {
		t.Fatalf("final event %+v", final)
	}
	if final.Job.Progress.Completed != 4 || final.Job.Progress.PeakTempK == 0 {
		t.Errorf("final progress %+v", final.Job.Progress)
	}
	// The stream must have seen intermediate progress, not just 0 -> done.
	if last < 1 {
		t.Errorf("no intermediate progress observed (last=%d)", last)
	}
}

// TestBackpressure: with one run slot and a one-deep queue, a third
// distinct job is rejected with 429.
func TestBackpressure(t *testing.T) {
	entered := make(chan string, 1)
	release := make(chan struct{})
	s, ts := newTestServer(t, func(o *Options) {
		o.MaxConcurrent = 1
		o.MaxQueue = 1
		o.BeforeRun = func(id string) {
			entered <- id
			<-release
		}
	})
	req1 := tinyRequest()
	code, _ := submit(t, ts, req1)
	if code != http.StatusAccepted {
		t.Fatalf("job1: %d", code)
	}
	<-entered // job1 running (out of the queue)

	req2 := tinyRequest()
	req2.Quantum = 61_000
	if code, _ := submit(t, ts, req2); code != http.StatusAccepted {
		t.Fatalf("job2: %d", code)
	}
	req3 := tinyRequest()
	req3.Quantum = 62_000
	code, _ = submit(t, ts, req3)
	if code != http.StatusTooManyRequests {
		t.Fatalf("job3: %d, want 429", code)
	}
	if s.Stats().Rejected != 1 {
		t.Errorf("stats = %+v", s.Stats())
	}
	// A duplicate of a queued job still coalesces rather than 429ing.
	if code, st := submit(t, ts, req2); code != http.StatusAccepted || !st.Coalesced {
		t.Fatalf("duplicate of queued job: %d %+v", code, st)
	}
	// Release the gate; job2's beforeRun reads the closed channel and
	// its entered signal lands in the buffered channel unobserved.
	close(release)
}

// TestArtifactFormats: the artifact endpoint serves all three
// encodings of a completed table and 409s before completion.
func TestArtifactFormats(t *testing.T) {
	_, ts := newTestServer(t, nil)
	_, st := submit(t, ts, tinyRequest())
	waitStatus(t, ts, st.ID, api.StatusDone)

	for format, wantCT := range map[string]string{
		"table": "text/plain; charset=utf-8",
		"json":  "application/json",
		"csv":   "text/csv; charset=utf-8",
	} {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/artifact?format=" + format)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != wantCT {
			t.Errorf("%s: code=%d ct=%q", format, resp.StatusCode, resp.Header.Get("Content-Type"))
		}
		if !strings.Contains(body.String(), "crafty") {
			t.Errorf("%s artifact missing data:\n%s", format, body.String())
		}
		if format == "json" {
			var tb sweep.Table
			if err := json.Unmarshal(body.Bytes(), &tb); err != nil || tb.Summary == nil {
				t.Errorf("json artifact: err=%v summary=%v", err, tb.Summary)
			}
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/artifact?format=yaml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("yaml: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/nope/artifact")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d", resp.StatusCode)
	}
}

// TestDiskCachePersistence: a completed result written to -cache-dir is
// served by a fresh server instance without re-simulating.
func TestDiskCachePersistence(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, func(o *Options) { o.CacheDir = dir })
	_, st := submit(t, ts1, tinyRequest())
	done := waitStatus(t, ts1, st.ID, api.StatusDone)
	if s1.Stats().Runs != 1 {
		t.Fatalf("stats = %+v", s1.Stats())
	}
	if _, err := os.Stat(filepath.Join(dir, st.ID+".json")); err != nil {
		t.Fatalf("record not persisted: %v", err)
	}

	// Restart: same cache dir, same version.
	s2, ts2 := newTestServer(t, func(o *Options) { o.CacheDir = dir })
	code, st2 := submit(t, ts2, tinyRequest())
	if code != http.StatusOK || !st2.Cached {
		t.Fatalf("restart repeat: code=%d %+v", code, st2)
	}
	if s2.Stats().Runs != 0 {
		t.Errorf("restarted server re-simulated: %+v", s2.Stats())
	}
	if st2.Summary == nil || st2.Summary.Succeeded != done.Summary.Succeeded {
		t.Errorf("summary lost across restart: %+v", st2.Summary)
	}
	resp, err := http.Get(ts2.URL + "/v1/jobs/" + st.ID + "/artifact?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	_, _ = body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), "crafty") {
		t.Errorf("artifact after restart: %d\n%s", resp.StatusCode, body.String())
	}

	// A different code version ignores the old records.
	s3, _ := newTestServer(t, func(o *Options) { o.CacheDir = dir; o.Version = "test-v2" })
	if s3.Stats().Jobs != 0 {
		t.Errorf("stale-version records loaded: %+v", s3.Stats())
	}
}

// TestShutdownDrainsInFlight: shutting down mid-sweep cancels the
// sweep, records a canceled status with a partial summary built from
// the progress events, and persists it.
func TestShutdownDrainsInFlight(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, func(o *Options) {
		o.CacheDir = dir
		o.Parallelism = 1
	})
	req := tinyRequest()
	req.Benchmarks = nil  // all SPEC benchmarks + 3 variants
	req.Quantum = 150_000 // wide enough that shutdown lands mid-sweep
	code, st := submit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	// Wait for at least one simulation to finish, then pull the plug.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cur := getJob(t, ts, st.ID); cur.Progress.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no progress before deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	final := getJob(t, ts, st.ID)
	if final.Status != api.StatusCanceled {
		t.Fatalf("status = %s", final.Status)
	}
	total := final.Progress.Total
	if final.Summary == nil || final.Summary.Succeeded < 1 || total < 4 || final.Summary.Jobs != total {
		t.Fatalf("partial summary = %+v (total %d)", final.Summary, total)
	}
	if final.Summary.Succeeded+final.Summary.Skipped+final.Summary.Failed != total {
		t.Errorf("partial summary does not account for all jobs: %+v", final.Summary)
	}
	if final.Summary.Skipped == 0 {
		t.Errorf("shutdown did not skip any pending simulations: %+v", final.Summary)
	}

	// The partial record is on disk for inspection...
	b, err := os.ReadFile(filepath.Join(dir, st.ID+".json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal(b, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Status != api.StatusCanceled || rec.Summary == nil || rec.Summary.Succeeded < 1 {
		t.Errorf("record = status %s summary %+v", rec.Status, rec.Summary)
	}
	// ...but is not served as a cached result by a fresh server.
	s2, _ := newTestServer(t, func(o *Options) { o.CacheDir = dir })
	if s2.Stats().Jobs != 0 {
		t.Errorf("canceled record loaded as cache: %+v", s2.Stats())
	}

	// Submissions after shutdown are refused.
	if code, _ := submit(t, ts, tinyRequest()); code != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown submit: %d", code)
	}
}

// TestJobTimeout: a per-job deadline cancels a runaway job, and a
// repeat submission re-runs it instead of serving the failure.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) { o.JobTimeout = time.Millisecond })
	req := tinyRequest()
	req.Quantum = 2_000_000 // long enough that 1ms always expires first
	_, st := submit(t, ts, req)
	deadline := time.Now().Add(60 * time.Second)
	var final api.JobStatus
	for {
		final = getJob(t, ts, st.ID)
		if final.Status.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never terminated")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if final.Status != api.StatusCanceled {
		t.Fatalf("status = %s (err=%q)", final.Status, final.Error)
	}
	// The terminal non-done entry is replaced on resubmission.
	code, st2 := submit(t, ts, req)
	if code != http.StatusAccepted || st2.Cached || st2.Coalesced {
		t.Errorf("resubmit after timeout: %d %+v", code, st2)
	}
}

func TestListingAndHealth(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	var infos []api.ExperimentInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) != 17 {
		t.Errorf("%d experiments", len(infos))
	}
	for _, in := range infos {
		if in.Name == "" || in.Title == "" || in.Description == "" {
			t.Errorf("incomplete info: %+v", in)
		}
	}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
	}
}

// TestDeterministicResults: the cached artifact equals a fresh
// server's artifact for the same request — the property that makes
// content addressing sound.
func TestDeterministicResults(t *testing.T) {
	artifact := func() string {
		_, ts := newTestServer(t, nil)
		_, st := submit(t, ts, tinyRequest())
		waitStatus(t, ts, st.ID, api.StatusDone)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/artifact?format=csv")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := artifact(), artifact()
	if a != b {
		t.Errorf("same request, different artifacts:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, "crafty") {
		t.Errorf("artifact: %s", a)
	}
}
