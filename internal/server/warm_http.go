package server

import (
	"crypto/subtle"
	"net/http"

	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// Warmup-snapshot transfer: the fleet coordinator keeps warm-reuse hit
// rates alive across resharding by copying .snap gobs between workers
// — GET /v1/warm/{key} reads one out of this daemon's warmup cache,
// PUT /v1/warm/{key} installs one into it. The payload is exactly the
// sim.WriteState on-disk form (magic header + versioned gob), so a
// snapshot file, a GET body, and a PUT body are interchangeable; PUT
// decodes before installing, so a torn or stale-format upload is
// rejected instead of poisoning the cache. Both endpoints require the
// warmup cache (-warmup-cache-dir) and, when Options.FleetToken is
// set, a matching bearer token.

// fleetAuthorized checks the shared-token gate on the transfer
// endpoints. An empty configured token leaves them open.
func (s *Server) fleetAuthorized(r *http.Request) bool {
	if s.opts.FleetToken == "" {
		return true
	}
	got := r.Header.Get("Authorization")
	want := "Bearer " + s.opts.FleetToken
	return subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1
}

// validWarmKey gates the path parameter: warm keys are lowercase
// sha256 hex digests, and since they double as cache filenames nothing
// else may reach the store.
func validWarmKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Server) warmTransferOK(w http.ResponseWriter, r *http.Request) (string, bool) {
	if !s.fleetAuthorized(r) {
		writeError(w, http.StatusUnauthorized, "missing or wrong fleet token")
		return "", false
	}
	if s.warm == nil {
		writeError(w, http.StatusNotFound, "warmup cache disabled (run with -warmup-cache-dir)")
		return "", false
	}
	key := r.PathValue("key")
	if !validWarmKey(key) {
		writeError(w, http.StatusBadRequest, "warm key must be a sha256 hex digest")
		return "", false
	}
	return key, true
}

func (s *Server) handleWarmGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.warmTransferOK(w, r)
	if !ok {
		return
	}
	ms, ok := s.warm.Get(key)
	if !ok {
		writeError(w, http.StatusNotFound, "no warmup snapshot for key")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := sim.WriteState(w, ms); err != nil {
		// Headers are gone; all we can do is log and drop the
		// connection mid-body so the peer sees a truncated gob (which
		// its decode rejects).
		s.log.Info("warm snapshot send failed", "key", shortID(key), "err", err)
	}
	s.met.warmServed.Inc()
}

func (s *Server) handleWarmPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.warmTransferOK(w, r)
	if !ok {
		return
	}
	// Decode (and thereby validate) before installing: ReadState
	// checks the magic header and the snapshot format version, so a
	// corrupt or incompatible upload is a 400, never a cache entry.
	ms, err := sim.ReadState(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad snapshot payload: %v", err)
		return
	}
	s.warm.Put(key, ms)
	s.met.warmInstalled.Inc()
	s.log.Info("warm snapshot installed", "key", shortID(key))
	w.WriteHeader(http.StatusNoContent)
}
