package fleet

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// handleTrace serves GET /v1/traces/{id}: the coordinator's own spans
// for the trace stitched together with every reachable worker's, so
// one fetch reconstructs the whole distributed tree — client edge,
// fleet.job, each dispatch attempt, and the worker-side job spans down
// to individual sim quanta. The id may be a 32-hex W3C trace id or a
// 64-hex job content address.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	if c.tracer == nil {
		writeError(w, http.StatusNotFound, "tracing is disabled on this coordinator")
		return
	}
	tid := r.PathValue("id")
	if len(tid) == 64 { // job id: map to its trace
		fj := c.lookup(tid)
		if fj == nil || fj.traceID == "" {
			writeError(w, http.StatusNotFound, "unknown job or job has no trace")
			return
		}
		tid = fj.traceID
	}
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	spans := c.stitchTrace(ctx, tid)
	if len(spans) == 0 {
		writeError(w, http.StatusNotFound, "unknown trace")
		return
	}
	writeJSON(w, http.StatusOK, api.Trace{TraceID: tid, Spans: spans})
}

// stitchTrace merges the coordinator's spans for one trace with every
// registered worker's (best effort: an unreachable worker's spans are
// simply absent, exactly as a flight recorder should behave when a
// node died — the surviving spans still tell the story).
func (c *Coordinator) stitchTrace(ctx context.Context, traceID string) []tracing.Span {
	groups := [][]tracing.Span{c.tracer.Spans(traceID)}
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, wk := range ws {
		tr, err := wk.cl.Trace(ctx, traceID)
		if err != nil {
			continue // dead or trace-unaware worker: skip
		}
		groups = append(groups, tr.Spans)
	}
	return tracing.Stitch(groups...)
}

// flightRecord persists a terminal job's stitched trace to
// {TraceDir}/{traceID}.ndjson — one JSON span per line, the input
// format of heatstroke-trace -stitch. Runs after the job's last
// dispatch settles, so the workers' spans are already closed.
func (c *Coordinator) flightRecord(fj *fleetJob) {
	if c.opts.TraceDir == "" || c.tracer == nil || fj.traceID == "" {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	spans := c.stitchTrace(ctx, fj.traceID)
	if len(spans) == 0 {
		return
	}
	path := filepath.Join(c.opts.TraceDir, fj.traceID+".ndjson")
	f, err := os.Create(path)
	if err != nil {
		c.log.Info("flight-recorder write failed", "path", path, "err", err)
		return
	}
	werr := tracing.WriteNDJSON(f, spans)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		c.log.Info("flight-recorder write failed", "path", path, "err", werr)
		return
	}
	c.log.Info("trace recorded", "trace", fj.traceID, "spans", len(spans), "path", path)
}
