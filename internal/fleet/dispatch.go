package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/url"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// attemptKind labels why a dispatch was launched, for metrics and
// hedge-win accounting.
type attemptKind string

const (
	attemptPrimary attemptKind = "primary"
	attemptRetry   attemptKind = "retry"
	attemptHedge   attemptKind = "hedge"
)

type attemptOutcome struct {
	w    *worker
	kind attemptKind
	st   *api.JobStatus
	err  error
}

// runJob drives one fleet job to a terminal state. The shape:
//
//   - Dispatch to the key's primary replica (ring order).
//   - If the dispatch fails at the transport level, or the worker
//     reports the job canceled (a draining daemon), re-dispatch to the
//     next replica in ring order — the retry path. A worker that
//     failed at transport is immediately marked unhealthy so other
//     placements avoid it before the next poll confirms.
//   - If the primary is still running after HedgeAfter, dispatch a
//     speculative duplicate to the next replica — the hedge path. The
//     first terminal done wins; every other attempt is cancelled on
//     its worker (DELETE /v1/jobs/{id}).
//   - A worker-reported *failed* job is NOT retried: sweeps are
//     deterministic, so a genuine failure reproduces on every replica
//     and retrying would only triple the cost of learning it.
//
// Determinism is what makes all of this safe: any two workers given
// the same job ID produce byte-identical results, so races between
// retry, hedge, and primary cannot change the answer — only who
// delivers it first.
func (c *Coordinator) runJob(fj *fleetJob) {
	defer c.wg.Done()
	defer c.flightRecord(fj) // after terminal: persist the stitched trace
	base := fj.ctx
	if base == nil {
		base = c.baseCtx
	}
	ctx, cancel := context.WithCancel(base)
	defer cancel()

	cands := c.placement(fj.id)
	if len(cands) == 0 {
		fj.fail(api.StatusFailed, "no healthy workers")
		return
	}

	resCh := make(chan attemptOutcome, len(cands))
	inflight := 0
	next := 0
	// prev is the previous attempt's span context: a retry links to the
	// attempt it replaces, a hedge to the straggler it duplicates.
	// launch only runs on the select-loop goroutine, so prev is
	// race-free.
	var prev tracing.SpanContext
	launch := func(kind attemptKind) {
		w := cands[next]
		next++
		inflight++
		c.log.Info("dispatch", "job", shortID(fj.id), "worker", w.label(), "kind", string(kind))
		actx, sp := tracing.StartSpan(ctx, "fleet.dispatch")
		sp.SetAttr("worker", w.label())
		sp.SetAttr("kind", string(kind))
		switch kind {
		case attemptRetry:
			sp.Link(prev, tracing.LinkRetry)
		case attemptHedge:
			sp.Link(prev, tracing.LinkHedge)
		}
		prev = sp.Context()
		go func() {
			start := time.Now()
			st, err := c.dispatchOnce(actx, w, fj)
			c.met.dispatchDur.Observe(time.Since(start).Seconds())
			sp.EndErr(err)
			resCh <- attemptOutcome{w: w, kind: kind, st: st, err: err}
		}()
	}
	launch(attemptPrimary)

	var hedgeC <-chan time.Time
	if c.opts.HedgeAfter > 0 && next < len(cands) {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for inflight > 0 {
		select {
		case o := <-resCh:
			inflight--
			switch {
			case o.err == nil && o.st != nil && o.st.Status == api.StatusDone:
				fj.finishFrom(o.st, o.w)
				if o.kind == attemptHedge {
					c.met.hedgeWins.Inc()
				}
				cancel() // unblocks the losing attempts' waits
				c.cancelLosers(fj, o.w)
				for inflight > 0 { // drain so the goroutines can exit
					<-resCh
					inflight--
				}
				return
			case o.err == nil && o.st != nil && o.st.Status == api.StatusFailed:
				// Deterministic failure: every replica would agree.
				fj.finishFrom(o.st, o.w)
				cancel()
				c.cancelLosers(fj, o.w)
				for inflight > 0 {
					<-resCh
					inflight--
				}
				return
			case ctx.Err() != nil:
				// Shutdown (or a drain after a winner, handled above).
				fj.fail(api.StatusCanceled, "coordinator shutting down")
				for inflight > 0 {
					<-resCh
					inflight--
				}
				return
			default:
				// Transport failure, or the worker cancelled the job
				// under us (drain): retry on the next replica.
				if o.err != nil {
					lastErr = fmt.Errorf("worker %s: %w", o.w.label(), o.err)
					if isTransportErr(o.err) {
						c.markUnhealthy(o.w)
					}
				} else {
					lastErr = fmt.Errorf("worker %s: job %s: %s", o.w.label(), o.st.Status, o.st.Error)
				}
				c.log.Info("dispatch attempt failed", "job", shortID(fj.id), "worker", o.w.label(), "err", lastErr)
				if next < len(cands) {
					c.met.retries.Inc()
					launch(attemptRetry)
				} else if inflight == 0 {
					fj.fail(api.StatusFailed, fmt.Sprintf("all %d replicas failed, last: %v", len(cands), lastErr))
					return
				}
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(cands) && inflight > 0 {
				c.met.hedges.Inc()
				launch(attemptHedge)
			}
		case <-c.baseCtx.Done():
			fj.fail(api.StatusCanceled, "coordinator shutting down")
			for inflight > 0 {
				<-resCh
				inflight--
			}
			return
		}
	}
}

// dispatchOnce runs one attempt on one worker: ship missing warmup
// snapshots, submit, and wait for the terminal state while feeding
// progress frames into the fleet job's SSE fan-out.
func (c *Coordinator) dispatchOnce(ctx context.Context, w *worker, fj *fleetJob) (*api.JobStatus, error) {
	c.shipWarm(ctx, w, fj.req)
	st, err := w.cl.Submit(ctx, fj.req)
	if err != nil {
		return nil, err
	}
	fj.recordWorkerID(w, st.ID)
	if st.Status.Terminal() {
		return st, nil
	}
	return w.cl.Wait(ctx, st.ID, fj.applyProgress)
}

// isTransportErr distinguishes "the worker is unreachable" (eject it
// from the ring now) from an application-level refusal like a 429
// (the worker is alive, just busy — leave its placement alone).
func isTransportErr(err error) bool {
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// cancelLosers aborts the job on every worker it was dispatched to
// except the winner — the hedged duplicate (or a superseded retry
// still draining) stops burning simulation cycles. Best effort and
// asynchronous: the winner's result is already recorded.
func (c *Coordinator) cancelLosers(fj *fleetJob, winner *worker) {
	for w, id := range fj.attemptedWorkers() {
		if w == winner {
			continue
		}
		go func(w *worker, id string) {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := w.cl.Cancel(ctx, id); err != nil {
				c.log.Info("loser cancel failed", "job", shortID(id), "worker", w.label(), "err", err)
			}
		}(w, id)
	}
}
