package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/server"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// TestFleetTraceStitchedAcrossRetry kills the first worker to run the
// job (mid-run, like the fault-injection acceptance test) and requires
// the coordinator's stitched trace to show the whole story: the
// fleet.job root, two fleet.dispatch attempts on distinct workers, a
// retry link from the second attempt back to the first, and the
// surviving worker's own job/sweep spans merged in under the dispatch
// that reached it.
func TestFleetTraceStitchedAcrossRetry(t *testing.T) {
	var killed int32
	var workers [2]*testWorker
	for i := range workers {
		i := i
		workers[i] = startWorker(t, func(o *server.Options) {
			o.Advertise = "worker-" + string(rune('a'+i))
			o.BeforeRun = func(string) {
				if atomic.CompareAndSwapInt32(&killed, 0, int32(i)+1) {
					workers[i].kill()
				}
			}
		})
	}
	c, fcl := startFleet(t, workers[:], nil)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := fcl.Submit(ctx, tinyRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.TraceID == "" {
		t.Fatal("fleet JobStatus.TraceID empty: coordinator tracing should be on by default")
	}
	st, err = fcl.Wait(ctx, st.ID, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if st.Status != api.StatusDone {
		t.Fatalf("job finished %s: %s", st.Status, st.Error)
	}
	if r := c.met.retries.Value(); r < 1 {
		t.Fatalf("retries = %d, want >= 1", r)
	}

	tr, err := fcl.Trace(ctx, st.ID) // by job id; coordinator maps to the trace
	if err != nil {
		t.Fatalf("trace fetch: %v", err)
	}
	if tr.TraceID != st.TraceID {
		t.Fatalf("trace id %q, want %q", tr.TraceID, st.TraceID)
	}

	var dispatches []tracing.Span
	services := map[string]bool{}
	names := map[string]int{}
	for _, sp := range tr.Spans {
		services[sp.Service] = true
		names[sp.Name]++
		if sp.Name == "fleet.dispatch" {
			dispatches = append(dispatches, sp)
		}
	}
	if names["fleet.job"] != 1 {
		t.Fatalf("fleet.job spans = %d, want 1; names %v", names["fleet.job"], names)
	}
	if len(dispatches) < 2 {
		t.Fatalf("fleet.dispatch spans = %d, want >= 2 (primary + retry)", len(dispatches))
	}
	// Distinct workers across attempts, and the retry links back to the
	// attempt it replaced.
	attemptWorkers := map[string]bool{}
	var retried *tracing.Span
	byID := map[string]tracing.Span{}
	for i := range dispatches {
		attemptWorkers[dispatches[i].Attrs["worker"]] = true
		byID[dispatches[i].SpanID] = dispatches[i]
		if dispatches[i].Attrs["kind"] == "retry" {
			retried = &dispatches[i]
		}
	}
	if len(attemptWorkers) < 2 {
		t.Fatalf("dispatch attempts hit %d distinct workers, want >= 2: %v", len(attemptWorkers), attemptWorkers)
	}
	if retried == nil {
		t.Fatal("no dispatch span with kind=retry")
	}
	foundLink := false
	for _, l := range retried.Links {
		if l.Kind == tracing.LinkRetry {
			foundLink = true
			if _, ok := byID[l.SpanID]; !ok {
				t.Fatalf("retry link points at %s, not a dispatch span in this trace", l.SpanID)
			}
		}
	}
	if !foundLink {
		t.Fatal("retry dispatch has no retry link to the failed attempt")
	}
	// The surviving worker's spans are stitched in: at least two
	// services (fleet + the worker) and the worker-side job span.
	if len(services) < 2 {
		t.Fatalf("stitched trace has services %v, want the coordinator's and a worker's", services)
	}
	if names["job"] < 1 || names["sweep.job"] < 1 {
		t.Fatalf("stitched trace missing worker-side spans; names %v", names)
	}
}

// TestFleetTraceAcceptance is the ISSUE's acceptance check: a fleet
// job submitted through pkg/client yields one stitched trace whose
// root span covers >= 95% of the client's observed wall time, with
// worker-side queue.wait and sweep.job children, and the whole thing
// exports as valid Perfetto JSON.
func TestFleetTraceAcceptance(t *testing.T) {
	workers := []*testWorker{startWorker(t, nil), startWorker(t, nil)}
	_, fcl := startFleet(t, workers, nil)
	fcl.Tracer = tracing.NewTracer("loadgen", 0)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// The client opens one root span around the full interaction; every
	// client/coordinator/worker span lands in the same trace via the
	// propagated traceparent.
	rctx, root := tracing.StartSpan(tracing.ContextWithTracer(ctx, fcl.Tracer), "client.request")
	start := time.Now()
	st, err := fcl.Submit(rctx, tinyRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !st.Status.Terminal() {
		if st, err = fcl.Wait(rctx, st.ID, nil); err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	if st.Status != api.StatusDone {
		t.Fatalf("job finished %s: %s", st.Status, st.Error)
	}
	root.End()
	wall := time.Since(start)

	traceID := root.Context().TraceID.String()
	if st.TraceID != traceID {
		t.Fatalf("fleet job trace %q did not join the client's %q", st.TraceID, traceID)
	}
	remote, err := fcl.Trace(ctx, traceID)
	if err != nil {
		t.Fatalf("trace fetch: %v", err)
	}
	// One stitched trace: client-side spans + everything the
	// coordinator assembled from itself and the workers.
	spans := tracing.Stitch(fcl.Tracer.Spans(traceID), remote.Spans)

	names := map[string]int{}
	var rootSpan *tracing.Span
	for i := range spans {
		names[spans[i].Name]++
		if spans[i].Name == "client.request" {
			rootSpan = &spans[i]
		}
	}
	for _, want := range []string{"client.submit", "client.wait", "fleet.job", "fleet.dispatch", "job", "queue.wait", "sweep.job", "sim.quantum"} {
		if names[want] == 0 {
			t.Errorf("stitched trace missing %q; have %v", want, names)
		}
	}
	if rootSpan == nil {
		t.Fatal("client root span missing from stitched trace")
	}
	cover := time.Duration(rootSpan.End - rootSpan.Start)
	if cover < wall*95/100 {
		t.Fatalf("root span covers %s of %s client wall time (< 95%%)", cover, wall)
	}

	// The stitched set renders as valid Perfetto trace-event JSON.
	var buf bytes.Buffer
	if err := tracing.WritePerfetto(&buf, spans); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Perfetto output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(spans) {
		t.Fatalf("Perfetto has %d events for %d spans", len(doc.TraceEvents), len(spans))
	}
}

// TestFleetTraceDirFlightRecorder: with TraceDir set, a terminal job
// leaves {trace-id}.ndjson behind, readable and stitchable offline.
func TestFleetTraceDirFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	workers := []*testWorker{startWorker(t, nil)}
	_, fcl := startFleet(t, workers, func(o *Options) { o.TraceDir = dir })

	got := runToArtifact(t, fcl, tinyRequest())
	if len(got) == 0 {
		t.Fatal("empty artifact")
	}
	st, err := fcl.Job(context.Background(), jobID(t))
	if err != nil {
		t.Fatalf("job: %v", err)
	}
	if st.TraceID == "" {
		t.Fatal("no trace id on the fleet job")
	}
	path := filepath.Join(dir, st.TraceID+".ndjson")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flight-recorder file %s never appeared", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := tracing.ReadNDJSON(f)
	if err != nil {
		t.Fatalf("ReadNDJSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("flight-recorder file holds no spans")
	}
	names := map[string]bool{}
	for _, sp := range spans {
		names[sp.Name] = true
	}
	if !names["fleet.job"] || !names["sweep.job"] {
		t.Fatalf("flight-recorder trace missing expected spans: %v", names)
	}
}

// jobID resolves the canonical tiny request's content address, shared
// by tests that look a job up after runToArtifact.
func jobID(t *testing.T) string {
	t.Helper()
	_, id, err := server.Resolve(testVersion, tinyBase, tinyRequest())
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return id
}
