package fleet

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// LoadOptions configure one load-generation run against a daemon or a
// fleet coordinator (the job surface is identical, so the generator
// does not care which).
type LoadOptions struct {
	// URL is the target's base URL (ignored when Client is set).
	URL string
	// Client overrides the generated client (tests inject one wired to
	// an in-process handler).
	Client *client.Client
	// Jobs is the total number of submissions (default 20).
	Jobs int
	// Rate paces submissions per second; <= 0 runs closed-loop: a new
	// submission the moment a concurrency slot frees.
	Rate float64
	// Concurrency bounds in-flight jobs (default 8).
	Concurrency int
	// Keys is the distinct-request population size (default 10): the
	// generator draws request indices from [0, Keys) and index k maps
	// to seed SeedBase+k, so equal draws are identical jobs — which is
	// what exercises the content-addressed cache tier.
	Keys int
	// ZipfS > 1 draws indices Zipf(s, v)-distributed — a few hot
	// requests and a long cold tail, the shape real result caches see
	// (0 means the 1.2 default). Negative disables the skew entirely:
	// draw i is index i mod Keys, a cache-cold scan when Keys >= Jobs.
	ZipfS float64
	// ZipfV is the Zipf v parameter (>= 1; default 1).
	ZipfV float64
	// Seed seeds the draw sequence (deterministic workloads).
	Seed int64
	// SeedBase offsets the per-request seeds; advancing it between runs
	// makes every request a fresh cache key (benchmarks re-running the
	// same workload must not hit the previous run's cache).
	SeedBase int64
	// Experiment, Benchmarks, Quantum, Warmup, Scale shape each
	// submitted request (defaults: fig3, ["crafty"], target defaults).
	Experiment string
	Benchmarks []string
	Quantum    int64
	Warmup     int64
	Scale      float64
}

// LoadReport is what one load run measured.
type LoadReport struct {
	Submitted int `json:"submitted"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	// Cached / Coalesced count submit responses answered from the
	// target's completed cache or joined to an in-flight duplicate.
	Cached    int `json:"cached"`
	Coalesced int `json:"coalesced"`

	Elapsed    time.Duration `json:"elapsed_ns"`
	JobsPerSec float64       `json:"jobs_per_sec"`
	// P50/P90/P99 are submit-to-terminal latencies.
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`

	// CacheHitRate is (Cached+Coalesced)/Submitted. WarmHits/WarmMisses
	// are the target-side warmup-cache counter deltas over the run,
	// summed fleet-wide from the /metrics exposition (per-worker series
	// included); WarmHitRate is hits/(hits+misses). Zero-valued when
	// the target exposes no metrics.
	CacheHitRate float64 `json:"cache_hit_rate"`
	WarmHits     float64 `json:"warm_hits"`
	WarmMisses   float64 `json:"warm_misses"`
	WarmHitRate  float64 `json:"warm_hit_rate"`
}

// String renders the report as the one-screen summary the loadgen CLI
// prints.
func (r *LoadReport) String() string {
	return fmt.Sprintf(
		"submitted %d  completed %d  failed %d\n"+
			"throughput %.2f jobs/sec over %v\n"+
			"latency p50 %v  p90 %v  p99 %v\n"+
			"cache hits %d + coalesced %d (rate %.1f%%)  warm hits %.0f / misses %.0f (rate %.1f%%)",
		r.Submitted, r.Completed, r.Failed,
		r.JobsPerSec, r.Elapsed.Round(time.Millisecond),
		r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond), r.P99.Round(time.Millisecond),
		r.Cached, r.Coalesced, 100*r.CacheHitRate,
		r.WarmHits, r.WarmMisses, 100*r.WarmHitRate)
}

// warmCounters reads the target's fleet-wide warmup-cache counters.
func warmCounters(ctx context.Context, cl *client.Client) (hits, misses float64) {
	body, err := cl.Metrics(ctx)
	if err != nil {
		return 0, 0
	}
	return promSum(body, "heatstroked_warmup_cache_hits_total"),
		promSum(body, "heatstroked_warmup_cache_misses_total")
}

// RunLoad replays a synthetic request stream against the target and
// measures what the serving tier actually delivered: sustained
// jobs/sec, latency percentiles, and cache/warm hit rates. The stream
// is deterministic in (Seed, SeedBase): a Zipf-skewed draw over a
// fixed request population, submissions paced at Rate (or closed-loop)
// under a concurrency cap.
func RunLoad(ctx context.Context, o LoadOptions) (*LoadReport, error) {
	if o.Jobs <= 0 {
		o.Jobs = 20
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Keys <= 0 {
		o.Keys = 10
	}
	if o.ZipfS == 0 {
		o.ZipfS = 1.2
	}
	if o.ZipfV < 1 {
		o.ZipfV = 1
	}
	if o.Experiment == "" {
		o.Experiment = "fig3"
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = []string{"crafty"}
	}
	cl := o.Client
	if cl == nil {
		if o.URL == "" {
			return nil, fmt.Errorf("loadgen: no target: URL and Client both empty")
		}
		cl = client.New(o.URL)
		cl.PollInterval = 100 * time.Millisecond
	}

	warmHits0, warmMiss0 := warmCounters(ctx, cl)

	rng := rand.New(rand.NewSource(o.Seed))
	var zipf *rand.Zipf
	if o.ZipfS > 1 {
		zipf = rand.NewZipf(rng, o.ZipfS, o.ZipfV, uint64(o.Keys-1))
	}
	var tickC <-chan time.Time
	if o.Rate > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / o.Rate))
		defer t.Stop()
		tickC = t.C
	}

	var (
		mu     sync.Mutex
		rep    LoadReport
		durs   []time.Duration
		wg     sync.WaitGroup
		sem    = make(chan struct{}, o.Concurrency)
		cancel = false
	)
	start := time.Now()
	for i := 0; i < o.Jobs && !cancel; i++ {
		var idx uint64
		if zipf != nil {
			idx = zipf.Uint64()
		} else {
			idx = uint64(i % o.Keys)
		}
		if tickC != nil {
			select {
			case <-tickC:
			case <-ctx.Done():
				cancel = true
				continue
			}
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cancel = true
			continue
		}
		wg.Add(1)
		go func(idx uint64) {
			defer wg.Done()
			defer func() { <-sem }()
			seed := o.SeedBase + int64(idx)
			req := api.JobRequest{
				Experiment: o.Experiment,
				Benchmarks: append([]string(nil), o.Benchmarks...),
				Quantum:    o.Quantum,
				Warmup:     o.Warmup,
				Scale:      o.Scale,
				Seed:       &seed,
			}
			t0 := time.Now()
			st, err := cl.Submit(ctx, req)
			if err == nil && !st.Status.Terminal() {
				st, err = cl.Wait(ctx, st.ID, nil)
			}
			d := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			rep.Submitted++
			switch {
			case err != nil, st.Status != api.StatusDone:
				rep.Failed++
			default:
				rep.Completed++
				durs = append(durs, d)
			}
			if err == nil {
				if st.Cached {
					rep.Cached++
				}
				if st.Coalesced {
					rep.Coalesced++
				}
			}
		}(idx)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)

	if rep.Elapsed > 0 {
		rep.JobsPerSec = float64(rep.Completed) / rep.Elapsed.Seconds()
	}
	if len(durs) > 0 {
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		// Nearest-rank percentiles: round the rank up so small samples
		// report their tail (p99 of 6 samples is the max, not the
		// second-largest a truncating index would pick).
		pct := func(p float64) time.Duration {
			i := int(math.Ceil(p*float64(len(durs)))) - 1
			if i < 0 {
				i = 0
			}
			return durs[i]
		}
		rep.P50, rep.P90, rep.P99 = pct(0.50), pct(0.90), pct(0.99)
	}
	if rep.Submitted > 0 {
		rep.CacheHitRate = float64(rep.Cached+rep.Coalesced) / float64(rep.Submitted)
	}
	warmHits1, warmMiss1 := warmCounters(ctx, cl)
	rep.WarmHits = warmHits1 - warmHits0
	rep.WarmMisses = warmMiss1 - warmMiss0
	if tot := rep.WarmHits + rep.WarmMisses; tot > 0 {
		rep.WarmHitRate = rep.WarmHits / tot
	}
	if cancel {
		return &rep, ctx.Err()
	}
	return &rep, nil
}
