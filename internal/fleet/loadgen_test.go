package fleet

import (
	"context"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/server"
)

// TestLoadgenAgainstFleet drives a small Zipf-skewed load through a
// coordinator and checks the report's accounting: every submission
// reaches done, repeats hit the cache tier, and the rates add up.
func TestLoadgenAgainstFleet(t *testing.T) {
	w := startWorker(t, func(o *server.Options) { o.WarmupCacheDir = t.TempDir() })
	_, fcl := startFleet(t, []*testWorker{w}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Client:      fcl,
		Jobs:        8,
		Keys:        3,
		ZipfS:       1.5,
		Concurrency: 4,
		Quantum:     60_000,
		Warmup:      1_000,
		Benchmarks:  []string{"crafty"},
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Submitted != 8 || rep.Completed != 8 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 8 submitted and completed", rep)
	}
	// 8 draws over 3 keys must repeat; repeats are cache hits or
	// coalesced joins at the coordinator.
	if rep.Cached+rep.Coalesced == 0 {
		t.Fatalf("no cache activity across repeated requests: %+v", rep)
	}
	if rep.JobsPerSec <= 0 || rep.Elapsed <= 0 {
		t.Fatalf("throughput not measured: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.CacheHitRate <= 0 || rep.CacheHitRate > 1 {
		t.Fatalf("cache hit rate out of range: %v", rep.CacheHitRate)
	}
	// The worker has a warmup cache: the first job misses, later
	// distinct jobs sharing the warm key hit. Either way the counters
	// must have moved.
	if rep.WarmHits+rep.WarmMisses == 0 {
		t.Fatalf("warm counters did not move: %+v", rep)
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty report rendering")
	}
}

// TestLoadgenSequentialScan: negative ZipfS degrades to a
// distinct-key scan — with Keys >= Jobs every submission is
// cache-cold.
func TestLoadgenSequentialScan(t *testing.T) {
	w := startWorker(t, nil)
	_, fcl := startFleet(t, []*testWorker{w}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadOptions{
		Client:      fcl,
		Jobs:        3,
		Keys:        3,
		ZipfS:       -1,
		Concurrency: 2,
		Quantum:     60_000,
		Warmup:      1_000,
		SeedBase:    1000,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.Completed != 3 || rep.Cached != 0 {
		t.Fatalf("cold scan report = %+v, want 3 completed with 0 cached", rep)
	}
}
