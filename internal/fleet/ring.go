// Package fleet turns a set of independent heatstroked daemons into
// one sharded service. The coordinator consistent-hashes each job's
// content address onto a worker, proxies the full job surface
// (submit, status, SSE progress, artifacts), ships warmup snapshots to
// whichever worker a key lands on, retries dispatches across replicas
// when a worker dies, and hedges stragglers onto a second replica —
// all safe because sweeps are deterministic: any worker produces the
// byte-identical result for a given job ID, so retried, hedged, and
// resharded work can never disagree.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// DefaultVnodes is the virtual-node count per ring member. Load
// imbalance shrinks with the square root of the point count; 512
// points per member keeps every member's share within 15% of uniform
// for the fleet sizes this package targets (single digits to tens of
// workers) — the ring property test pins that bound. The cost is a
// ~4K-entry sorted slice per 8-worker ring: negligible.
const DefaultVnodes = 512

// Ring is a consistent-hash ring: members (worker identities) own
// contiguous arcs of a 64-bit hash circle, and a key belongs to the
// first member point at or clockwise of the key's hash. Adding or
// removing one member moves only the keys on the arcs it gains or
// loses — about 1/N of the keyspace — which is the property that
// makes worker churn cheap: the rest of the fleet keeps its warm
// caches and content-addressed results.
//
// Ring is not safe for concurrent use; the coordinator guards it with
// its own mutex.
type Ring struct {
	vnodes  int
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// ringHash maps a string to a point on the circle. sha256 rather than
// a cheaper hash so point placement is uniform and — critically —
// identical across processes and builds: every coordinator computes
// the same placement for the same membership.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts a member (idempotent).
func (r *Ring) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for i := 0; i < r.vnodes; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		r.points = append(r.points, ringPoint{
			hash:   ringHash(member + "#" + string(buf[:])),
			member: member,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member (idempotent).
func (r *Ring) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Members returns the members in sorted order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Owner returns the member owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct members in ring order starting at
// the key's owner. The sequence is the key's replica preference list:
// element 0 is the primary, element 1 the hedge/failover target, and
// so on — and it is stable in the sense that removing one member
// shifts only that member out of the list.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}
