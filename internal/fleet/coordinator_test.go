package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/server"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// testVersion pins the code version on workers, coordinator, and the
// single-node reference so job IDs and warm keys alias everywhere.
const testVersion = "fleet-test"

// tinyBase is a machine configuration small enough for unit tests.
func tinyBase() config.Config {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 60_000
	return cfg
}

// tinyRequest is the canonical test job: fig3 on one benchmark, a few
// hundred ms of simulation.
func tinyRequest() api.JobRequest {
	seed := int64(7)
	return api.JobRequest{
		Experiment: "fig3",
		Benchmarks: []string{"crafty"},
		Quantum:    60_000,
		Warmup:     1_000,
		Seed:       &seed,
	}
}

type testWorker struct {
	srv *server.Server
	ts  *httptest.Server
	cl  *client.Client
}

// kill simulates a SIGKILL'd worker process from the network's point
// of view: the listener stops accepting and every established
// connection is severed. The in-process server.Server is deliberately
// left running — like a real partitioned host, it keeps simulating
// into the void.
func (tw *testWorker) kill() {
	tw.ts.Listener.Close()
	tw.ts.CloseClientConnections()
}

func startWorker(t testing.TB, mutate func(*server.Options)) *testWorker {
	t.Helper()
	o := server.Options{
		MaxConcurrent: 2,
		Parallelism:   1,
		Version:       testVersion,
		BaseConfig:    tinyBase,
	}
	if mutate != nil {
		mutate(&o)
	}
	srv, err := server.New(o)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	})
	cl := client.New(ts.URL)
	cl.PollInterval = 50 * time.Millisecond
	return &testWorker{srv: srv, ts: ts, cl: cl}
}

func startFleet(t testing.TB, workers []*testWorker, mutate func(*Options)) (*Coordinator, *client.Client) {
	t.Helper()
	urls := make([]string, len(workers))
	for i, w := range workers {
		urls[i] = w.ts.URL
	}
	o := Options{
		Workers:      urls,
		HedgeAfter:   -1, // tests opt in explicitly
		PollInterval: 100 * time.Millisecond,
		Version:      testVersion,
		BaseConfig:   tinyBase,
	}
	if mutate != nil {
		mutate(&o)
	}
	c, err := New(o)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = c.Shutdown(ctx)
	})
	cl := client.New(ts.URL)
	cl.PollInterval = 50 * time.Millisecond
	return c, cl
}

// runToArtifact submits a request, waits for done, and returns the
// CSV artifact bytes.
func runToArtifact(t testing.TB, cl *client.Client, req api.JobRequest) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if !st.Status.Terminal() {
		st, err = cl.Wait(ctx, st.ID, nil)
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
	}
	if st.Status != api.StatusDone {
		t.Fatalf("job %s finished %s: %s", st.ID, st.Status, st.Error)
	}
	body, err := cl.Artifact(ctx, st.ID, "csv")
	if err != nil {
		t.Fatalf("artifact: %v", err)
	}
	return body
}

// TestFleetFaultInjectionByteIdentical is the ISSUE's acceptance test:
// kill a worker mid-job (after the job started running there), let the
// coordinator retry on the surviving replica, and require the final
// artifact to be byte-identical to a single-node run of the same
// request — determinism makes worker death invisible in the result.
func TestFleetFaultInjectionByteIdentical(t *testing.T) {
	want := runToArtifact(t, startWorker(t, nil).cl, tinyRequest())

	// Two fleet workers; whichever one starts running the job first is
	// killed from inside its BeforeRun hook — precisely "mid-job".
	var killed int32
	var workers [2]*testWorker
	for i := range workers {
		i := i
		workers[i] = startWorker(t, func(o *server.Options) {
			o.BeforeRun = func(string) {
				if atomic.CompareAndSwapInt32(&killed, 0, int32(i)+1) {
					workers[i].kill()
				}
			}
		})
	}
	c, fcl := startFleet(t, workers[:], nil)

	got := runToArtifact(t, fcl, tinyRequest())
	if !bytes.Equal(got, want) {
		t.Fatalf("retried fleet artifact differs from single-node run:\nfleet:\n%s\nsingle:\n%s", got, want)
	}
	if atomic.LoadInt32(&killed) == 0 {
		t.Fatal("fault was never injected: no worker ran the job")
	}
	if r := c.met.retries.Value(); r < 1 {
		t.Fatalf("retries = %d, want >= 1 (the kill must have forced a re-dispatch)", r)
	}
	st := c.Stats()
	if st.Retries < 1 {
		t.Fatalf("FleetStats.Retries = %d, want >= 1", st.Retries)
	}
}

// TestFleetHedgeStraggler: the first worker to pick the job up stalls
// indefinitely; after HedgeAfter the coordinator duplicates the job
// onto the second replica, the duplicate wins, and the straggling
// loser is cancelled on its worker.
func TestFleetHedgeStraggler(t *testing.T) {
	want := runToArtifact(t, startWorker(t, nil).cl, tinyRequest())

	gate := make(chan struct{})
	var gated int32 // 1-based index of the stalled worker
	var workers [2]*testWorker
	for i := range workers {
		i := i
		workers[i] = startWorker(t, func(o *server.Options) {
			o.BeforeRun = func(string) {
				if atomic.CompareAndSwapInt32(&gated, 0, int32(i)+1) {
					<-gate
				}
			}
		})
	}
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	c, fcl := startFleet(t, workers[:], func(o *Options) {
		o.HedgeAfter = 200 * time.Millisecond
	})

	got := runToArtifact(t, fcl, tinyRequest())
	if !bytes.Equal(got, want) {
		t.Fatalf("hedged artifact differs from single-node run")
	}
	if h := c.met.hedges.Value(); h != 1 {
		t.Fatalf("hedges = %d, want 1", h)
	}
	if hw := c.met.hedgeWins.Value(); hw != 1 {
		t.Fatalf("hedgeWins = %d, want 1 (the stalled primary cannot have won)", hw)
	}

	// The loser must have been cancelled server-side. Release the gate
	// so its sweep observes the already-cancelled context, then watch
	// it reach canceled on its own worker.
	close(gate)
	loser := workers[atomic.LoadInt32(&gated)-1]
	_, id, err := server.Resolve(testVersion, tinyBase, tinyRequest())
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := loser.cl.Job(context.Background(), id)
		if err == nil && st.Status.Terminal() {
			if st.Status != api.StatusCanceled {
				t.Fatalf("loser finished %s, want canceled", st.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("loser never reached a terminal state")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestFleetWarmShipping: a warm key created on worker A is shipped to
// worker B when a job needing it lands there — B's warmup cache hits
// without B ever having run the warmup.
func TestFleetWarmShipping(t *testing.T) {
	wA := startWorker(t, func(o *server.Options) { o.WarmupCacheDir = t.TempDir() })
	wB := startWorker(t, func(o *server.Options) { o.WarmupCacheDir = t.TempDir() })
	c, fcl := startFleet(t, []*testWorker{wA, wB}, nil)

	// Warm keys are quantum-agnostic, job IDs are not: jobs at
	// different quanta share a warm key but are distinct cache entries.
	// Find two quanta whose jobs place on A then B, so the second
	// dispatch must ship A's snapshot to B.
	ring := NewRing(0)
	ring.Add(wA.ts.URL)
	ring.Add(wB.ts.URL)
	pick := func(wantURL string, startQuantum int64) api.JobRequest {
		for q := startQuantum; ; q += 1_000 {
			req := tinyRequest()
			req.Quantum = q
			_, id, err := server.Resolve(testVersion, tinyBase, req)
			if err != nil {
				t.Fatalf("resolve: %v", err)
			}
			if owner, _ := ring.Owner(id); owner == wantURL {
				return req
			}
		}
	}

	runToArtifact(t, fcl, pick(wA.ts.URL, 60_000))
	// Refresh A's advertised warm keys so the coordinator knows it can
	// source the snapshot from A.
	c.mu.Lock()
	a := c.workers[wA.ts.URL]
	c.mu.Unlock()
	c.pollWorker(a)

	hitsBefore := workerWarmHits(t, wB.cl)
	runToArtifact(t, fcl, pick(wB.ts.URL, 90_000))
	if s := c.met.warmShipped.Value(); s < 1 {
		t.Fatalf("warmShipped = %d, want >= 1", s)
	}
	if hits := workerWarmHits(t, wB.cl); hits <= hitsBefore {
		t.Fatalf("worker B warm hits %v -> %v: shipped snapshot was not used", hitsBefore, hits)
	}
}

func workerWarmHits(t testing.TB, cl *client.Client) float64 {
	t.Helper()
	body, err := cl.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	return promSum(body, "heatstroked_warmup_cache_hits_total")
}

// TestFleetMembershipAndCache: workers join and leave over the HTTP
// membership API, and the coordinator's own content-addressed cache
// answers repeat submissions without touching the workers.
func TestFleetMembershipAndCache(t *testing.T) {
	w1 := startWorker(t, nil)
	w2 := startWorker(t, nil)
	c, fcl := startFleet(t, []*testWorker{w1}, nil)
	base := strings.TrimRight(fcl.BaseURL, "/")

	// Join w2 over the API.
	regBody, _ := json.Marshal(api.WorkerRegistration{URL: w2.ts.URL})
	resp, err := http.Post(base+"/v1/workers", "application/json", bytes.NewReader(regBody))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %v %v", err, resp.Status)
	}
	resp.Body.Close()
	var infos []api.WorkerInfo
	listResp, err := http.Get(base + "/v1/workers")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if err := json.NewDecoder(listResp.Body).Decode(&infos); err != nil {
		t.Fatalf("decode workers: %v", err)
	}
	listResp.Body.Close()
	if len(infos) != 2 || !infos[0].Healthy || !infos[1].Healthy {
		t.Fatalf("workers = %+v, want 2 healthy", infos)
	}

	// Run a job, then resubmit it: the coordinator itself is the cache.
	runToArtifact(t, fcl, tinyRequest())
	st, err := fcl.Submit(context.Background(), tinyRequest())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !st.Cached || st.Status != api.StatusDone {
		t.Fatalf("resubmit = %+v, want cached done", st)
	}
	if c.met.cacheHits.Value() != 1 {
		t.Fatalf("cacheHits = %d, want 1", c.met.cacheHits.Value())
	}

	// Leave.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/workers?url="+w2.ts.URL, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil || delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("leave: %v %v", err, delResp.Status)
	}
	delResp.Body.Close()
	if got := c.Stats(); len(got.Workers) != 1 {
		t.Fatalf("after leave: %d workers, want 1", len(got.Workers))
	}
}

// TestFleetMetricsAggregation: the coordinator /metrics carries its
// own series plus every worker's, with worker labels injected and each
// family header emitted once.
func TestFleetMetricsAggregation(t *testing.T) {
	w1 := startWorker(t, func(o *server.Options) { o.Advertise = "worker-one" })
	w2 := startWorker(t, func(o *server.Options) { o.Advertise = "worker-two" })
	_, fcl := startFleet(t, []*testWorker{w1, w2}, nil)
	runToArtifact(t, fcl, tinyRequest())

	body, err := fcl.Metrics(context.Background())
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	text := string(body)
	for _, want := range []string{
		"fleet_jobs_submitted_total 1",
		"fleet_workers 2",
		`heatstroked_jobs_submitted_total{worker="worker-one"}`,
		`heatstroked_jobs_submitted_total{worker="worker-two"}`,
		`heatstroked_jobs_total{worker="worker-one",outcome="done"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged exposition missing %q", want)
		}
	}
	if n := strings.Count(text, "# HELP heatstroked_jobs_submitted_total"); n != 1 {
		t.Errorf("HELP emitted %d times, want once", n)
	}
	// The exposition format demands contiguous families: no family
	// name may appear in two separate HELP blocks.
	if n := strings.Count(text, "# TYPE heatstroked_sims_total"); n != 1 {
		t.Errorf("TYPE heatstroked_sims_total emitted %d times, want once", n)
	}
}

// TestFleetSSEProxy: the coordinator's event stream delivers progress
// and a terminal done frame for a proxied job.
func TestFleetSSEProxy(t *testing.T) {
	w := startWorker(t, nil)
	_, fcl := startFleet(t, []*testWorker{w}, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := fcl.Submit(ctx, tinyRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var progress, done int
	err = fcl.Events(ctx, st.ID, func(ev api.Event) error {
		switch ev.Type {
		case "progress":
			progress++
		case "done":
			done++
			if ev.Job == nil || ev.Job.Status != api.StatusDone {
				return fmt.Errorf("bad terminal frame: %+v", ev)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if progress == 0 || done != 1 {
		t.Fatalf("progress=%d done=%d, want progress>0 done=1", progress, done)
	}
}

// TestFleetNoWorkers: a coordinator with zero reachable workers fails
// jobs cleanly and reports not-ready.
func TestFleetNoWorkers(t *testing.T) {
	c, fcl := startFleet(t, nil, nil)
	st, err := fcl.Submit(context.Background(), tinyRequest())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := fcl.Wait(context.Background(), st.ID, nil)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.Status != api.StatusFailed || !strings.Contains(final.Error, "no healthy workers") {
		t.Fatalf("job = %+v, want failed with no-healthy-workers", final)
	}
	_ = c
	resp, err := http.Get(strings.TrimRight(fcl.BaseURL, "/") + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503 with no workers", resp.StatusCode)
	}
}
