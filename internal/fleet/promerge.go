package fleet

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// promFamily is one metric family of a text exposition: its comment
// header and its samples, in input order.
type promFamily struct {
	name    string
	help    string // full "# HELP ..." line
	typ     string // full "# TYPE ..." line
	samples []string
}

// parseProm splits a Prometheus text exposition into families,
// injecting `worker="<label>"` into every sample when label is
// non-empty. It relies on the exposition shape our telemetry registry
// (and any conformant writer) produces: each family's HELP/TYPE
// comments precede its samples, and a family's lines are contiguous —
// so samples attach to the most recent HELP/TYPE family, which also
// keeps histogram _bucket/_sum/_count lines with their family.
func parseProm(body []byte, label string) []*promFamily {
	var fams []*promFamily
	byName := make(map[string]*promFamily)
	var cur *promFamily
	family := func(name string) *promFamily {
		if f, ok := byName[name]; ok {
			return f
		}
		f := &promFamily{name: name}
		byName[name] = f
		fams = append(fams, f)
		return f
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			cur = family(name)
			if cur.help == "" {
				cur.help = line
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			cur = family(name)
			if cur.typ == "" {
				cur.typ = line
			}
		case strings.HasPrefix(line, "#"):
			continue
		default:
			if cur == nil {
				// Sample with no preceding comments: its own family.
				name := line
				if i := strings.IndexAny(line, "{ "); i >= 0 {
					name = line[:i]
				}
				cur = family(name)
			}
			cur.samples = append(cur.samples, injectLabel(line, label))
		}
	}
	return fams
}

// injectLabel rewrites one sample line to carry worker="<label>" as
// its first label. Histogram bucket lines and pre-labelled samples
// keep their existing labels after it.
func injectLabel(line, label string) string {
	if label == "" {
		return line
	}
	lv := `worker="` + escapeLabelValue(label) + `"`
	if i := strings.Index(line, "{"); i >= 0 {
		return line[:i+1] + lv + "," + line[i+1:]
	}
	if i := strings.IndexByte(line, ' '); i >= 0 {
		return line[:i] + "{" + lv + "}" + line[i:]
	}
	return line
}

func escapeLabelValue(v string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
}

// mergeProm writes one exposition combining the coordinator's own
// registry output with each worker's scrape, every worker sample
// labelled worker="<name>". Families are grouped across sources (the
// text format requires a family's lines to be contiguous) and each
// family's HELP/TYPE header is emitted exactly once, from whichever
// source stated it first.
func mergeProm(w io.Writer, own []byte, workers []workerScrape) error {
	merged := parseProm(own, "")
	byName := make(map[string]*promFamily, len(merged))
	for _, f := range merged {
		byName[f.name] = f
	}
	for _, ws := range workers {
		for _, f := range parseProm(ws.body, ws.name) {
			if have, ok := byName[f.name]; ok {
				have.samples = append(have.samples, f.samples...)
				if have.help == "" {
					have.help = f.help
				}
				if have.typ == "" {
					have.typ = f.typ
				}
			} else {
				byName[f.name] = f
				merged = append(merged, f)
			}
		}
	}
	bw := bufio.NewWriter(w)
	for _, f := range merged {
		if f.help != "" {
			fmt.Fprintln(bw, f.help)
		}
		if f.typ != "" {
			fmt.Fprintln(bw, f.typ)
		}
		for _, s := range f.samples {
			fmt.Fprintln(bw, s)
		}
	}
	return bw.Flush()
}

type workerScrape struct {
	name string
	body []byte
}

// handleMetrics serves the fleet-wide exposition: the coordinator's
// own series followed by every healthy worker's /metrics with
// worker="<name>" injected. Scrapes fan out concurrently and a worker
// that fails to answer is simply absent from that scrape (its health
// gauge already says why).
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, wk := range c.workers {
		ws = append(ws, wk)
	}
	c.mu.Unlock()

	type scrapeResult struct {
		i    int
		body []byte
		err  error
	}
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	results := make(chan scrapeResult, len(ws))
	for i, wk := range ws {
		go func(i int, wk *worker) {
			body, err := wk.cl.Metrics(ctx)
			results <- scrapeResult{i: i, body: body, err: err}
		}(i, wk)
	}
	scrapes := make([]workerScrape, 0, len(ws))
	for range ws {
		res := <-results
		if res.err != nil {
			continue
		}
		scrapes = append(scrapes, workerScrape{name: ws[res.i].label(), body: res.body})
	}
	// Deterministic output order regardless of scrape completion order.
	for i := 1; i < len(scrapes); i++ {
		for j := i; j > 0 && scrapes[j].name < scrapes[j-1].name; j-- {
			scrapes[j], scrapes[j-1] = scrapes[j-1], scrapes[j]
		}
	}

	var own bytes.Buffer
	_ = c.met.reg.WriteProm(&own)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = mergeProm(w, own.Bytes(), scrapes)
}

// promSum sums every sample of one metric family (across all label
// sets) in a text exposition — how the load generator reads fleet-wide
// warm-cache hit counts out of the merged scrape.
func promSum(body []byte, metric string) float64 {
	var sum float64
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != metric {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil {
			sum += v
		}
	}
	return sum
}
