package fleet

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/server"
)

// benchSeedBase hands every benchmark run a fresh seed range so no
// run can hit the cache a previous run populated: the workload stays
// cache-cold, which is what the scaling claim is about.
var benchSeedBase atomic.Int64

func init() { benchSeedBase.Store(1 << 20) }

// BenchmarkFleetThroughput measures sustained jobs/sec of the load
// generator against 1 vs 4 in-process workers behind a coordinator.
// Each worker runs sweeps strictly serially (MaxConcurrent=1,
// Parallelism=1), so the fleet's advantage is pure horizontal
// scaling: on a machine with >= 4 idle cores the 4-worker arm
// sustains >= 2.5x the single-worker arm on this cache-cold Zipf
// workload. On fewer cores the workers time-share and the ratio
// compresses toward 1x — the per-arm jobs/s metric still shows the
// coordinator overhead either way.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, nWorkers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", nWorkers), func(b *testing.B) {
			workers := make([]*testWorker, nWorkers)
			for i := range workers {
				workers[i] = startWorker(b, func(o *server.Options) {
					o.MaxConcurrent = 1
					o.Parallelism = 1
					o.WarmupCacheDir = b.TempDir()
				})
			}
			_, fcl := startFleet(b, workers, nil)

			jobs := 4 * b.N // enough per-iteration work to spread over 4 workers
			keys := 8 * jobs
			base := benchSeedBase.Add(int64(keys))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()

			b.ResetTimer()
			rep, err := RunLoad(ctx, LoadOptions{
				Client:      fcl,
				Jobs:        jobs,
				Keys:        keys,
				ZipfS:       1.2,
				Concurrency: 2 * nWorkers,
				Quantum:     60_000,
				Warmup:      1_000,
				Benchmarks:  []string{"crafty"},
				SeedBase:    base,
			})
			b.StopTimer()
			if err != nil {
				b.Fatalf("RunLoad: %v", err)
			}
			if rep.Failed > 0 {
				b.Fatalf("%d jobs failed", rep.Failed)
			}
			b.ReportMetric(rep.JobsPerSec, "jobs/s")
			b.ReportMetric(rep.P99.Seconds()*1000, "p99-ms")
		})
	}
}
