package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("job-%04d", i)
	}
	return keys
}

func workerNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return names
}

// TestRingBalance is the ISSUE's balance property: across 1k keys,
// every member's share stays within 15% of the ideal 1/N.
func TestRingBalance(t *testing.T) {
	keys := ringKeys(1000)
	for _, n := range []int{2, 3, 4, 8} {
		r := NewRing(0)
		for _, w := range workerNames(n) {
			r.Add(w)
		}
		counts := make(map[string]int)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatal("no owner on a populated ring")
			}
			counts[owner]++
		}
		ideal := float64(len(keys)) / float64(n)
		for w, c := range counts {
			dev := (float64(c) - ideal) / ideal
			if dev < -0.15 || dev > 0.15 {
				t.Errorf("n=%d: %s owns %d keys (ideal %.0f, deviation %+.1f%%)",
					n, w, c, ideal, dev*100)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members received keys", n, len(counts))
		}
	}
}

// TestRingMinimalMovement is the ISSUE's churn property: a single join
// or leave moves at most ~1/N of the keys (with slack for vnode
// placement variance), and every key that moves on a join moves TO the
// joiner — the surviving members never trade keys among themselves.
func TestRingMinimalMovement(t *testing.T) {
	keys := ringKeys(1000)
	owner := func(r *Ring, k string) string {
		o, _ := r.Owner(k)
		return o
	}
	for _, n := range []int{3, 4, 8} {
		workers := workerNames(n + 1)
		r := NewRing(0)
		for _, w := range workers[:n] {
			r.Add(w)
		}
		before := make(map[string]string, len(keys))
		for _, k := range keys {
			before[k] = owner(r, k)
		}

		// Join: keys may move only to the new member.
		joiner := workers[n]
		r.Add(joiner)
		moved := 0
		for _, k := range keys {
			if now := owner(r, k); now != before[k] {
				moved++
				if now != joiner {
					t.Fatalf("n=%d join: key %s moved %s -> %s, not to the joiner",
						n, k, before[k], now)
				}
			}
		}
		// Expected movement is 1/(N+1); allow 1.5x for vnode variance.
		if limit := int(1.5 * float64(len(keys)) / float64(n+1)); moved > limit {
			t.Errorf("n=%d join moved %d keys, want <= %d", n, moved, limit)
		}

		// Leave (remove the joiner): exactly the joiner's keys move back,
		// everyone else keeps theirs — ownership returns to 'before'.
		r.Remove(joiner)
		for _, k := range keys {
			if now := owner(r, k); now != before[k] {
				t.Fatalf("n=%d leave: key %s settled on %s, want original %s",
					n, k, now, before[k])
			}
		}
	}
}

// TestRingOwnersReplicaList: Owners yields distinct members, the
// primary first, and degrades gracefully when n exceeds membership.
func TestRingOwnersReplicaList(t *testing.T) {
	r := NewRing(0)
	for _, w := range workerNames(3) {
		r.Add(w)
	}
	owners := r.Owners("some-key", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners(5) on 3 members = %v", owners)
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate member in replica list: %v", owners)
		}
		seen[o] = true
	}
	if primary, _ := r.Owner("some-key"); primary != owners[0] {
		t.Fatalf("Owner %s != Owners[0] %s", primary, owners[0])
	}
	if got := NewRing(0).Owners("k", 2); got != nil {
		t.Fatalf("empty ring Owners = %v, want nil", got)
	}
}

// TestRingDeterministic: placement is a pure function of membership —
// insertion order does not matter.
func TestRingDeterministic(t *testing.T) {
	a, b := NewRing(0), NewRing(0)
	ws := workerNames(4)
	for _, w := range ws {
		a.Add(w)
	}
	for i := len(ws) - 1; i >= 0; i-- {
		b.Add(ws[i])
	}
	for _, k := range ringKeys(100) {
		ao, _ := a.Owner(k)
		bo, _ := b.Owner(k)
		if ao != bo {
			t.Fatalf("key %s: order-dependent placement %s vs %s", k, ao, bo)
		}
	}
}
