package fleet

import (
	"bytes"
	"strings"
	"testing"
)

const expoA = `# HELP jobs_total Jobs by outcome.
# TYPE jobs_total counter
jobs_total{outcome="done"} 3
jobs_total{outcome="failed"} 1
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 2
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 0.7
lat_seconds_count 5
`

const expoB = `# HELP jobs_total Jobs by outcome.
# TYPE jobs_total counter
jobs_total{outcome="done"} 9
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 0
`

func TestMergePromLabelsAndGrouping(t *testing.T) {
	own := []byte("# HELP fleet_up Coordinator liveness.\n# TYPE fleet_up gauge\nfleet_up 1\n")
	var out bytes.Buffer
	err := mergeProm(&out, own, []workerScrape{
		{name: "w-a", body: []byte(expoA)},
		{name: "w-b", body: []byte(expoB)},
	})
	if err != nil {
		t.Fatalf("mergeProm: %v", err)
	}
	text := out.String()

	for _, want := range []string{
		"fleet_up 1", // coordinator series pass through unlabelled
		`jobs_total{worker="w-a",outcome="done"} 3`,
		`jobs_total{worker="w-a",outcome="failed"} 1`,
		`jobs_total{worker="w-b",outcome="done"} 9`,
		`queue_depth{worker="w-a"} 2`, // label added to bare samples
		`queue_depth{worker="w-b"} 0`,
		`lat_seconds_bucket{worker="w-a",le="+Inf"} 5`, // histogram lines stay in family
		`lat_seconds_sum{worker="w-a"} 0.7`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q\n%s", want, text)
		}
	}
	// Each family header once, samples contiguous per family.
	if n := strings.Count(text, "# HELP jobs_total"); n != 1 {
		t.Errorf("HELP jobs_total appears %d times, want 1", n)
	}
	doneA := strings.Index(text, `jobs_total{worker="w-a",outcome="done"}`)
	doneB := strings.Index(text, `jobs_total{worker="w-b",outcome="done"}`)
	depthA := strings.Index(text, `queue_depth{worker="w-a"}`)
	if !(doneA < doneB && doneB < depthA) {
		t.Errorf("family samples not contiguous: jobs_total A@%d B@%d, queue_depth A@%d", doneA, doneB, depthA)
	}
}

// TestMergePromHelpCollisionFirstWins pins the header-collision rule:
// when two workers report the same family with different HELP (or
// TYPE) text — a mixed-version fleet mid-upgrade — the first source to
// state the header wins and the merged exposition still emits each
// header exactly once, keeping the output parseable.
func TestMergePromHelpCollisionFirstWins(t *testing.T) {
	oldWorker := []byte("# HELP jobs_total Jobs by outcome.\n# TYPE jobs_total counter\njobs_total 3\n")
	newWorker := []byte("# HELP jobs_total Jobs reaching a terminal state, by outcome.\n# TYPE jobs_total counter\njobs_total 9\n")
	var out bytes.Buffer
	if err := mergeProm(&out, nil, []workerScrape{
		{name: "w-old", body: oldWorker},
		{name: "w-new", body: newWorker},
	}); err != nil {
		t.Fatalf("mergeProm: %v", err)
	}
	text := out.String()
	if n := strings.Count(text, "# HELP jobs_total"); n != 1 {
		t.Fatalf("HELP jobs_total appears %d times, want exactly 1:\n%s", n, text)
	}
	if !strings.Contains(text, "# HELP jobs_total Jobs by outcome.") {
		t.Errorf("first source's HELP text must win:\n%s", text)
	}
	if strings.Contains(text, "terminal state") {
		t.Errorf("second source's HELP text leaked into the merge:\n%s", text)
	}
	// Both workers' samples survive the header collision.
	for _, want := range []string{
		`jobs_total{worker="w-old"} 3`,
		`jobs_total{worker="w-new"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("merged output missing %q\n%s", want, text)
		}
	}
	// Coordinator-first ordering: when the coordinator's own registry
	// also states the family, its header beats every worker's.
	own := []byte("# HELP jobs_total Coordinator view.\n# TYPE jobs_total counter\njobs_total 1\n")
	out.Reset()
	if err := mergeProm(&out, own, []workerScrape{{name: "w-old", body: oldWorker}}); err != nil {
		t.Fatalf("mergeProm: %v", err)
	}
	if !strings.Contains(out.String(), "# HELP jobs_total Coordinator view.") {
		t.Errorf("coordinator HELP must win over workers':\n%s", out.String())
	}
}

func TestInjectLabelEscaping(t *testing.T) {
	got := injectLabel(`m 1`, `a"b\c`)
	want := `m{worker="a\"b\\c"} 1`
	if got != want {
		t.Errorf("injectLabel = %s, want %s", got, want)
	}
	if got := injectLabel("m 1", ""); got != "m 1" {
		t.Errorf("empty label must be a no-op, got %s", got)
	}
}

func TestPromSum(t *testing.T) {
	if got := promSum([]byte(expoA), "jobs_total"); got != 4 {
		t.Errorf("promSum(jobs_total) = %v, want 4 (3+1 across label sets)", got)
	}
	var out bytes.Buffer
	_ = mergeProm(&out, nil, []workerScrape{
		{name: "w-a", body: []byte(expoA)},
		{name: "w-b", body: []byte(expoB)},
	})
	if got := promSum(out.Bytes(), "jobs_total"); got != 13 {
		t.Errorf("promSum over merged = %v, want 13 (fleet-wide)", got)
	}
	if got := promSum([]byte(expoA), "no_such_metric"); got != 0 {
		t.Errorf("promSum(absent) = %v, want 0", got)
	}
}
