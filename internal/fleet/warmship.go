package fleet

import (
	"context"
	"os"
	"path/filepath"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// warmKeysFor enumerates the warmup-snapshot keys the resolved request
// will look up when it runs, without simulating anything (see
// experiment.WarmKeys). The coordinator resolves requests with the
// same version and base config as the workers, so these keys alias the
// workers' warm caches exactly; with a mixed-version fleet they miss
// and shipping degrades to a no-op — slower warmups, never wrong
// results.
func (c *Coordinator) warmKeysFor(ctx context.Context, req api.JobRequest) []string {
	cfg := c.opts.BaseConfig()
	if req.Scale > 0 {
		cfg.Thermal.Scale = req.Scale
	}
	o := experiment.Options{
		Config:      &cfg,
		Benchmarks:  req.Benchmarks,
		Quantum:     req.Quantum,
		Warmup:      req.Warmup,
		Seed:        *req.Seed,
		SeedSet:     true,
		CodeVersion: c.opts.Version,
	}
	keys, err := experiment.WarmKeys(ctx, req.Experiment, o)
	if err != nil {
		c.log.Info("warm key enumeration failed", "experiment", req.Experiment, "err", err)
		return nil
	}
	return keys
}

// shipWarm makes sure the target worker holds every warmup snapshot
// the job will want, before the job is submitted there. Sources, in
// order: any other worker advertising the key in its stats, then the
// coordinator's local SnapshotDir. Everything here is best-effort —
// a missing or unshippable snapshot just means the target re-runs the
// warmup itself (the snapshot store is a cache, not a dependency).
//
// This is what keeps warm hit rates intact across resharding: when a
// key's owner changes (worker join/leave), the first dispatch to the
// new owner carries the old owner's snapshot with it.
func (c *Coordinator) shipWarm(ctx context.Context, target *worker, req api.JobRequest) {
	if c.opts.DisableWarmShipping {
		return
	}
	keys := c.warmKeysFor(ctx, req)
	for _, key := range keys {
		if target.hasWarm(key) {
			continue
		}
		data := c.findSnapshot(ctx, key, target)
		if data == nil {
			continue
		}
		putCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		err := target.cl.PutWarm(putCtx, key, data)
		cancel()
		if err != nil {
			c.log.Info("warm ship failed", "key", shortID(key), "worker", target.label(), "err", err)
			continue
		}
		target.setWarm(key)
		c.met.warmShipped.Inc()
		c.log.Info("warm snapshot shipped", "key", shortID(key), "worker", target.label(), "bytes", len(data))
	}
}

// findSnapshot locates a warm snapshot in its wire form: first from a
// worker that advertises the key (GET /v1/warm/{key}), then from the
// coordinator's local snapshot directory. The on-disk .snap format is
// the wire format (sim.WriteStateFile writes sim.WriteState bytes),
// so local files ship verbatim.
func (c *Coordinator) findSnapshot(ctx context.Context, key string, exclude *worker) []byte {
	c.mu.Lock()
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, w := range ws {
		if w == exclude || !w.isHealthy() || !w.hasWarm(key) {
			continue
		}
		getCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
		data, err := w.cl.FetchWarm(getCtx, key)
		cancel()
		if err == nil {
			return data
		}
		c.log.Info("warm fetch failed", "key", shortID(key), "worker", w.label(), "err", err)
	}
	if c.opts.SnapshotDir != "" {
		if data, err := os.ReadFile(filepath.Join(c.opts.SnapshotDir, key+".snap")); err == nil {
			return data
		}
	}
	return nil
}
