package fleet

import (
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// fleetMetrics is the coordinator's own telemetry, served at the head
// of GET /metrics before the label-injected per-worker expositions
// (see promerge.go). The counters are also the source of truth for
// the FleetStats wire type — one set of numbers, two renderings.
type fleetMetrics struct {
	reg *telemetry.Registry

	submitted   *telemetry.Counter
	cacheHits   *telemetry.Counter
	coalesced   *telemetry.Counter
	retries     *telemetry.Counter
	hedges      *telemetry.Counter
	hedgeWins   *telemetry.Counter
	warmShipped *telemetry.Counter

	dispatchDur *telemetry.Histogram
}

func newFleetMetrics(c *Coordinator) *fleetMetrics {
	reg := telemetry.NewRegistry()
	m := &fleetMetrics{
		reg: reg,
		submitted: reg.Counter("fleet_jobs_submitted_total",
			"Job submissions received at the coordinator edge."),
		cacheHits: reg.Counter("fleet_cache_hits_total",
			"Submissions answered from the coordinator's completed-job cache."),
		coalesced: reg.Counter("fleet_singleflight_coalesced_total",
			"Submissions coalesced onto an identical in-flight fleet job."),
		retries: reg.Counter("fleet_dispatch_retries_total",
			"Dispatch attempts re-issued to another worker after a failure."),
		hedges: reg.Counter("fleet_hedges_total",
			"Straggler jobs speculatively duplicated onto a second replica."),
		hedgeWins: reg.Counter("fleet_hedge_wins_total",
			"Hedged duplicates that finished before the primary."),
		warmShipped: reg.Counter("fleet_warm_snapshots_shipped_total",
			"Warmup snapshots copied to a worker ahead of a dispatch."),
		dispatchDur: reg.Histogram("fleet_dispatch_duration_seconds",
			"Wall time from dispatch to a worker until its terminal result.",
			telemetry.DefLatencyBuckets),
	}
	reg.GaugeFunc("fleet_workers",
		"Workers currently registered with the coordinator.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.workers))
		})
	reg.GaugeFunc("fleet_workers_healthy",
		"Registered workers whose last poll succeeded.",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			n := 0
			for _, w := range c.workers {
				if w.isHealthy() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("fleet_jobs_tracked",
		"Fleet job entries held in memory (cache plus in flight).",
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.jobs))
		})
	// Tracer counters read the tracer's atomics at exposition time
	// (nil-safe: both report 0 with tracing disabled).
	reg.CounterFunc("fleet_trace_spans_total",
		"Spans recorded into the coordinator's trace flight-recorder buffer.",
		func() uint64 { return c.tracer.Recorded() })
	reg.CounterFunc("fleet_trace_spans_dropped_total",
		"Oldest spans evicted from the bounded trace buffer on overflow.",
		func() uint64 { return c.tracer.Dropped() })
	return m
}
