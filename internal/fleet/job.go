package fleet

import (
	"context"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
)

// fleetJob is the coordinator-side state of one content-addressed job.
// It mirrors the daemon's jobEntry — same ID scheme, same SSE fan-out
// contract — so clients cannot tell the coordinator from a single
// daemon, and worker death mid-job stays invisible: the fleetJob
// survives the attempt that died and carries the retry's progress on
// the same stream.
type fleetJob struct {
	id  string
	req api.JobRequest // resolved: every default filled in

	// ctx carries the job's fleet.job span (and the coordinator's
	// tracer) into runJob so dispatch attempts parent under it; span is
	// that root span, ended at terminal; traceID is its trace in hex
	// ("" with tracing off). All three are written in handleSubmit
	// before runJob starts and read-only after.
	ctx     context.Context
	span    *tracing.ActiveSpan
	traceID string

	mu      sync.Mutex
	status  api.Status
	prog    api.Progress
	summary *sweep.Summary
	errMsg  string
	// winner is the worker whose result completed the job (artifact
	// reads proxy to it); workerIDs records the job's ID on every
	// worker it was dispatched to, for loser cancellation. The IDs
	// equal fj.id when coordinator and worker run the same build —
	// with a mixed-version fleet they differ, which is why they are
	// tracked per worker instead of assumed.
	winner    *worker
	winnerJob string
	workerIDs map[*worker]string

	subs map[chan api.Event]struct{}
	done chan struct{}
}

func newFleetJob(id string, req api.JobRequest) *fleetJob {
	return &fleetJob{
		id:        id,
		req:       req,
		status:    api.StatusQueued,
		workerIDs: make(map[*worker]string),
		subs:      make(map[chan api.Event]struct{}),
		done:      make(chan struct{}),
	}
}

func (fj *fleetJob) snapshot() api.JobStatus {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.snapshotLocked()
}

func (fj *fleetJob) snapshotLocked() api.JobStatus {
	return api.JobStatus{
		ID:         fj.id,
		Experiment: fj.req.Experiment,
		Request:    fj.req,
		Status:     fj.status,
		Progress:   fj.prog,
		Summary:    fj.summary,
		Error:      fj.errMsg,
		TraceID:    fj.traceID,
	}
}

// recordWorkerID remembers the job's ID on a worker it was submitted
// to; it also flips the fleet job to running (a worker has it).
func (fj *fleetJob) recordWorkerID(w *worker, id string) {
	fj.mu.Lock()
	fj.workerIDs[w] = id
	if fj.status == api.StatusQueued {
		fj.status = api.StatusRunning
	}
	fj.mu.Unlock()
}

// attemptedWorkers lists every (worker, worker-side job ID) pair this
// job was submitted to.
func (fj *fleetJob) attemptedWorkers() map[*worker]string {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	out := make(map[*worker]string, len(fj.workerIDs))
	for w, id := range fj.workerIDs {
		out[w] = id
	}
	return out
}

// applyProgress folds a worker's progress frame into the fleet job
// and fans it out. Hedged dispatches can report concurrently from two
// workers at different points in the sweep; progress never regresses
// because frames behind the high-water mark are dropped (both workers
// run the identical deterministic sweep, so the frames agree wherever
// they overlap).
func (fj *fleetJob) applyProgress(p api.Progress) {
	fj.mu.Lock()
	if fj.status.Terminal() || p.Completed < fj.prog.Completed {
		fj.mu.Unlock()
		return
	}
	fj.prog = p
	snap := fj.prog
	fj.broadcastLocked(api.Event{Type: "progress", Progress: &snap})
	fj.mu.Unlock()
}

// finishFrom adopts a worker's terminal status as the fleet job's
// outcome and releases subscribers. The winning worker is recorded so
// artifact requests proxy to the replica that actually holds the
// rendered result.
func (fj *fleetJob) finishFrom(st *api.JobStatus, w *worker) {
	fj.mu.Lock()
	if fj.status.Terminal() {
		fj.mu.Unlock()
		return
	}
	fj.status = st.Status
	if st.Progress.Completed >= fj.prog.Completed {
		fj.prog = st.Progress
	}
	fj.summary = st.Summary
	fj.errMsg = st.Error
	fj.winner = w
	fj.winnerJob = st.ID
	fj.finishLocked()
}

// fail marks the job failed (or canceled) with a coordinator-side
// error: no worker produced a result.
func (fj *fleetJob) fail(st api.Status, msg string) {
	fj.mu.Lock()
	if fj.status.Terminal() {
		fj.mu.Unlock()
		return
	}
	fj.status = st
	fj.errMsg = msg
	fj.finishLocked()
}

// finishLocked broadcasts the terminal frame, closes subscribers, and
// unlocks (callers hold fj.mu).
func (fj *fleetJob) finishLocked() {
	if fj.span != nil {
		fj.span.SetAttr("status", string(fj.status))
		if fj.errMsg != "" {
			fj.span.SetAttr("error", fj.errMsg)
		}
		fj.span.End()
	}
	job := fj.snapshotLocked()
	fj.broadcastLocked(api.Event{Type: "done", Job: &job})
	for ch := range fj.subs {
		close(ch)
	}
	fj.subs = nil
	fj.mu.Unlock()
	close(fj.done)
}

// result returns the terminal winner for artifact proxying.
func (fj *fleetJob) result() (api.Status, *worker, string) {
	fj.mu.Lock()
	defer fj.mu.Unlock()
	return fj.status, fj.winner, fj.winnerJob
}

// subscribe/unsubscribe/broadcastLocked implement the same SSE
// contract as the daemon's jobEntry: an immediate snapshot, every
// subsequent event, channel closed at terminal, and a full buffer
// drops frames (later snapshots supersede earlier ones).
func (fj *fleetJob) subscribe() chan api.Event {
	ch := make(chan api.Event, 32)
	fj.mu.Lock()
	defer fj.mu.Unlock()
	if fj.status.Terminal() {
		job := fj.snapshotLocked()
		ch <- api.Event{Type: "done", Job: &job}
		close(ch)
		return ch
	}
	snap := fj.prog
	ch <- api.Event{Type: "progress", Progress: &snap}
	fj.subs[ch] = struct{}{}
	return ch
}

func (fj *fleetJob) unsubscribe(ch chan api.Event) {
	fj.mu.Lock()
	if _, ok := fj.subs[ch]; ok {
		delete(fj.subs, ch)
		close(ch)
	}
	fj.mu.Unlock()
}

func (fj *fleetJob) broadcastLocked(ev api.Event) {
	for ch := range fj.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}
