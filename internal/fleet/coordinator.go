package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/experiment"
	"github.com/heatstroke-sim/heatstroke/internal/server"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
	"github.com/heatstroke-sim/heatstroke/pkg/api"
	"github.com/heatstroke-sim/heatstroke/pkg/client"
)

// Options configure the fleet coordinator.
type Options struct {
	// Workers are the initial worker base URLs. More can join (and
	// leave) at runtime via POST/DELETE /v1/workers.
	Workers []string
	// HedgeAfter is how long a dispatched job may run before the
	// coordinator speculatively duplicates it onto the next replica
	// (first terminal result wins, the loser is cancelled). 0 means
	// the 30s default; negative disables hedging entirely. Hedging is
	// safe because results are
	// deterministic and content-addressed: both replicas compute the
	// byte-identical answer, so "first wins" can never change it.
	HedgeAfter time.Duration
	// PollInterval paces worker health/stats polling (default 2s).
	PollInterval time.Duration
	// FleetToken authenticates warm-snapshot transfers to workers and
	// must match the workers' -fleet-token (empty disables auth).
	FleetToken string
	// Version is the code version used to resolve job content
	// addresses and warm keys, and must match the workers' for shard
	// keys to alias their caches (default: this binary's VCS stamp —
	// correct when coordinator and workers are the same build).
	Version string
	// BaseConfig supplies the machine configuration requests override
	// (default config.Default); it must match the workers'.
	BaseConfig func() config.Config
	// SnapshotDir, when set, is a local directory of {key}.snap warmup
	// snapshots (a daemon's WarmupCacheDir) the coordinator can ship
	// from when no worker holds a needed key.
	SnapshotDir string
	// DisableWarmShipping turns off pre-dispatch snapshot shipping
	// (workers then warm up from scratch on misses — slower, never
	// wrong).
	DisableWarmShipping bool
	// Logger receives structured logs (default: discard).
	Logger *slog.Logger
	// Tracer records coordinator-side spans (fleet.job roots, one
	// fleet.dispatch per attempt). Nil gets a default bounded tracer
	// of TraceCapacity spans (0 = tracing.DefaultCapacity) unless
	// DisableTracing is set.
	Tracer         *tracing.Tracer
	TraceCapacity  int
	DisableTracing bool
	// TraceDir, when set, is flight-recorder mode: every terminal
	// fleet job's stitched trace is written to {TraceDir}/{trace
	// id}.ndjson, one span per line, mergeable offline with
	// heatstroke-trace -stitch.
	TraceDir string
}

// worker is one registered daemon.
type worker struct {
	url string
	cl  *client.Client

	mu      sync.Mutex
	name    string // advertised address when reported, else url
	healthy bool
	stats   *api.Stats
	warm    map[string]bool // warm keys from the last stats poll
}

func (w *worker) isHealthy() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.healthy
}

func (w *worker) label() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.name != "" {
		return w.name
	}
	return w.url
}

func (w *worker) hasWarm(key string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.warm[key]
}

func (w *worker) setWarm(key string) {
	w.mu.Lock()
	if w.warm == nil {
		w.warm = make(map[string]bool)
	}
	w.warm[key] = true
	w.mu.Unlock()
}

func (w *worker) info() api.WorkerInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	name := w.name
	if name == "" {
		name = w.url
	}
	return api.WorkerInfo{URL: w.url, Name: name, Healthy: w.healthy, Stats: w.stats}
}

// Coordinator fronts a worker fleet with the daemon's own job API.
// Create with New, expose with Handler, stop with Shutdown.
type Coordinator struct {
	opts    Options
	baseCtx context.Context
	cancel  context.CancelFunc
	mux     *http.ServeMux
	log     *slog.Logger
	met     *fleetMetrics
	tracer  *tracing.Tracer

	mu      sync.Mutex
	workers map[string]*worker // by normalized URL
	ring    *Ring
	jobs    map[string]*fleetJob
	closed  bool
	wg      sync.WaitGroup
}

// New builds a Coordinator, registers the initial workers, and polls
// each once so the ring reflects who is actually reachable before the
// first job arrives.
func New(opts Options) (*Coordinator, error) {
	if opts.HedgeAfter == 0 {
		opts.HedgeAfter = 30 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Second
	}
	if opts.BaseConfig == nil {
		opts.BaseConfig = config.Default
	}
	if opts.Version == "" {
		opts.Version = server.BuildVersion()
	}
	log := opts.Logger
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:    opts,
		baseCtx: ctx,
		cancel:  cancel,
		log:     log,
		workers: make(map[string]*worker),
		ring:    NewRing(0),
		jobs:    make(map[string]*fleetJob),
		tracer:  opts.Tracer,
	}
	if c.tracer == nil && !opts.DisableTracing {
		c.tracer = tracing.NewTracer("fleet", opts.TraceCapacity)
	}
	c.met = newFleetMetrics(c)
	for _, u := range opts.Workers {
		if _, err := c.addWorker(u); err != nil {
			cancel()
			return nil, err
		}
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	c.mux.HandleFunc("GET /v1/jobs/{id}/artifact", c.handleArtifact)
	c.mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleEvents)
	c.mux.HandleFunc("GET /v1/experiments", c.handleExperiments)
	c.mux.HandleFunc("GET /v1/traces/{id}", c.handleTrace)
	c.mux.HandleFunc("GET /v1/stats", c.handleStats)
	c.mux.HandleFunc("GET /v1/workers", c.handleWorkersList)
	c.mux.HandleFunc("POST /v1/workers", c.handleWorkerJoin)
	c.mux.HandleFunc("DELETE /v1/workers", c.handleWorkerLeave)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	c.mux.HandleFunc("GET /readyz", c.handleReady)
	c.wg.Add(1)
	go c.pollLoop()
	return c, nil
}

// Handler returns the coordinator's HTTP handler. The job surface is
// wire-compatible with a single daemon's, so pkg/client works against
// either unchanged.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Shutdown stops polling, cancels in-flight dispatches, and waits for
// the job monitors to drain.
func (c *Coordinator) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.cancel()
	drained := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: shutdown: %w", ctx.Err())
	}
}

// newWorkerClient builds the per-worker client: fast failover (small
// retry budget) because the coordinator's own retry path — the next
// replica — is better than waiting out a sick worker.
func (c *Coordinator) newWorkerClient(url string) *client.Client {
	cl := client.New(url)
	cl.Token = c.opts.FleetToken
	cl.Retry = &client.RetryPolicy{MaxAttempts: 2, BaseDelay: 50 * time.Millisecond, MaxDelay: time.Second}
	cl.PollInterval = 100 * time.Millisecond
	cl.Tracer = c.tracer // worker hops record into the coordinator's buffer
	return cl
}

// addWorker registers a worker (idempotent) and polls it once so its
// health and warm keys are known immediately.
func (c *Coordinator) addWorker(rawURL string) (*worker, error) {
	u := strings.TrimRight(strings.TrimSpace(rawURL), "/")
	if u == "" || (!strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://")) {
		return nil, fmt.Errorf("fleet: worker URL %q must be absolute http(s)", rawURL)
	}
	c.mu.Lock()
	if w, ok := c.workers[u]; ok {
		c.mu.Unlock()
		return w, nil
	}
	w := &worker{url: u, cl: c.newWorkerClient(u)}
	c.workers[u] = w
	c.mu.Unlock()
	c.pollWorker(w)
	c.log.Info("worker registered", "url", u, "healthy", w.isHealthy())
	return w, nil
}

// removeWorker deregisters a worker. In-flight dispatches to it are
// left to finish or fail on their own; new placements skip it.
func (c *Coordinator) removeWorker(rawURL string) bool {
	u := strings.TrimRight(strings.TrimSpace(rawURL), "/")
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.workers[u]; !ok {
		return false
	}
	delete(c.workers, u)
	c.ring.Remove(u)
	c.log.Info("worker deregistered", "url", u)
	return true
}

// pollWorker refreshes one worker's health, stats, and warm-key set,
// and keeps the ring in sync with health transitions: an unreachable
// worker leaves the ring (its keys fail over to the next replica,
// which is minimal movement by the ring property) and rejoins where
// it was once it answers again.
func (c *Coordinator) pollWorker(w *worker) {
	ctx, cancel := context.WithTimeout(c.baseCtx, c.opts.PollInterval)
	st, err := w.cl.Stats(ctx)
	cancel()

	w.mu.Lock()
	was := w.healthy
	w.healthy = err == nil
	if err == nil {
		w.stats = st
		if st.Advertise != "" {
			w.name = st.Advertise
		}
		w.warm = make(map[string]bool, len(st.WarmKeys))
		for _, k := range st.WarmKeys {
			w.warm[k] = true
		}
	}
	now := w.healthy
	w.mu.Unlock()

	c.mu.Lock()
	if _, still := c.workers[w.url]; still {
		if now {
			c.ring.Add(w.url)
		} else {
			c.ring.Remove(w.url)
		}
	}
	c.mu.Unlock()
	if was != now {
		c.log.Info("worker health changed", "url", w.url, "healthy", now, "err", err)
	}
}

// markUnhealthy records a dispatch-observed transport failure without
// waiting for the next poll, so subsequent placements avoid the dead
// worker immediately.
func (c *Coordinator) markUnhealthy(w *worker) {
	w.mu.Lock()
	was := w.healthy
	w.healthy = false
	w.mu.Unlock()
	c.mu.Lock()
	c.ring.Remove(w.url)
	c.mu.Unlock()
	if was {
		c.log.Info("worker marked unhealthy by failed dispatch", "url", w.url)
	}
}

func (c *Coordinator) pollLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.opts.PollInterval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			c.mu.Lock()
			ws := make([]*worker, 0, len(c.workers))
			for _, w := range c.workers {
				ws = append(ws, w)
			}
			c.mu.Unlock()
			for _, w := range ws {
				c.pollWorker(w)
			}
		case <-c.baseCtx.Done():
			return
		}
	}
}

// placement returns the job's replica preference list: healthy
// workers in ring order starting at the key's owner.
func (c *Coordinator) placement(key string) []*worker {
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := c.ring.Owners(key, len(c.workers))
	out := make([]*worker, 0, len(urls))
	for _, u := range urls {
		if w, ok := c.workers[u]; ok && w.isHealthy() {
			out = append(out, w)
		}
	}
	return out
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return
	}
	// The same resolution the workers use, so the coordinator shards
	// on the exact key each worker caches under.
	resolved, id, err := server.Resolve(c.opts.Version, c.opts.BaseConfig, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "coordinator is shutting down")
		return
	}
	c.met.submitted.Inc()
	if fj, ok := c.jobs[id]; ok {
		st := fj.snapshot()
		if st.Status == api.StatusDone {
			c.met.cacheHits.Inc()
			st.Cached = true
			c.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
		if !st.Status.Terminal() {
			c.met.coalesced.Inc()
			st.Coalesced = true
			c.mu.Unlock()
			writeJSON(w, http.StatusAccepted, st)
			return
		}
		// Failed or canceled earlier: re-dispatch fresh.
		delete(c.jobs, id)
	}
	fj := newFleetJob(id, resolved)
	// The fleet.job span roots this job's trace at the coordinator
	// edge, joining the client's trace when the submit carried a W3C
	// traceparent header. Dispatch attempts parent under it via fj.ctx.
	tctx := tracing.ContextWithTracer(c.baseCtx, c.tracer)
	if sc, err := tracing.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		tctx = tracing.ContextWithRemote(tctx, sc)
	}
	jctx, span := tracing.StartSpan(tctx, "fleet.job")
	span.SetAttr("job", shortID(id))
	span.SetAttr("experiment", resolved.Experiment)
	fj.ctx = jctx
	fj.span = span
	if sc := span.Context(); sc.Valid() {
		fj.traceID = sc.TraceID.String()
	}
	c.jobs[id] = fj
	c.wg.Add(1)
	go c.runJob(fj)
	st := fj.snapshot()
	c.mu.Unlock()

	c.log.Info("job accepted", "job", shortID(id), "experiment", resolved.Experiment)
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) lookup(id string) *fleetJob {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobs[id]
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	fj := c.lookup(r.PathValue("id"))
	if fj == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, fj.snapshot())
}

// handleArtifact proxies the rendered table from the worker whose
// result won the job.
func (c *Coordinator) handleArtifact(w http.ResponseWriter, r *http.Request) {
	fj := c.lookup(r.PathValue("id"))
	if fj == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	st, winner, winnerJob := fj.result()
	if st != api.StatusDone || winner == nil {
		writeError(w, http.StatusConflict, "job is %s; artifact requires done", st)
		return
	}
	fname := r.URL.Query().Get("format")
	if fname == "" {
		fname = string(sweep.FormatTable)
	}
	f, err := sweep.ParseFormat(fname)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := winner.cl.Artifact(r.Context(), winnerJob, fname)
	if err != nil {
		writeError(w, http.StatusBadGateway, "artifact fetch from %s: %v", winner.label(), err)
		return
	}
	switch f {
	case sweep.FormatJSON:
		w.Header().Set("Content-Type", "application/json")
	case sweep.FormatCSV:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	_, _ = w.Write(body)
}

// handleEvents streams fleet-job progress as SSE with the same frame
// contract as a single daemon (see internal/server's handleEvents).
func (c *Coordinator) handleEvents(w http.ResponseWriter, r *http.Request) {
	fj := c.lookup(r.PathValue("id"))
	if fj == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ch := fj.subscribe()
	defer fj.unsubscribe(ch)
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-ch:
			if !open {
				job := fj.snapshot()
				_ = writeEvent(w, api.Event{Type: "done", Job: &job})
				flusher.Flush()
				return
			}
			if err := writeEvent(w, ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Type == "done" {
				return
			}
		case <-heartbeat.C:
			if _, err := fmt.Fprintf(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

func (c *Coordinator) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	// The registry is compiled into the coordinator too — no proxy.
	infos := experiment.Infos()
	out := make([]api.ExperimentInfo, len(infos))
	for i, in := range infos {
		out[i] = api.ExperimentInfo{Name: in.Name, Title: in.Title, Description: in.Description}
	}
	writeJSON(w, http.StatusOK, out)
}

// Stats snapshots the coordinator counters plus every worker's latest
// polled stats.
func (c *Coordinator) Stats() api.FleetStats {
	st := api.FleetStats{
		Submitted:   int64(c.met.submitted.Value()),
		CacheHits:   int64(c.met.cacheHits.Value()),
		Coalesced:   int64(c.met.coalesced.Value()),
		Retries:     int64(c.met.retries.Value()),
		Hedges:      int64(c.met.hedges.Value()),
		HedgeWins:   int64(c.met.hedgeWins.Value()),
		WarmShipped: int64(c.met.warmShipped.Value()),
	}
	c.mu.Lock()
	st.Jobs = len(c.jobs)
	ws := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		ws = append(ws, w)
	}
	c.mu.Unlock()
	for _, w := range ws {
		st.Workers = append(st.Workers, w.info())
	}
	sortWorkers(st.Workers)
	return st
}

func sortWorkers(ws []api.WorkerInfo) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].URL < ws[j-1].URL; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

func (c *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleWorkersList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, c.Stats().Workers)
}

func (c *Coordinator) handleWorkerJoin(w http.ResponseWriter, r *http.Request) {
	var reg api.WorkerRegistration
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&reg); err != nil {
		writeError(w, http.StatusBadRequest, "invalid registration: %v", err)
		return
	}
	wk, err := c.addWorker(reg.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, wk.info())
}

func (c *Coordinator) handleWorkerLeave(w http.ResponseWriter, r *http.Request) {
	u := r.URL.Query().Get("url")
	if u == "" {
		writeError(w, http.StatusBadRequest, "missing url query parameter")
		return
	}
	if !c.removeWorker(u) {
		writeError(w, http.StatusNotFound, "unknown worker %q", u)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (c *Coordinator) handleReady(w http.ResponseWriter, _ *http.Request) {
	c.mu.Lock()
	closed := c.closed
	healthy := c.ring.Len()
	c.mu.Unlock()
	if closed {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	if healthy == 0 {
		writeError(w, http.StatusServiceUnavailable, "no healthy workers")
		return
	}
	fmt.Fprintln(w, "ready")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.Error{Code: code, Message: fmt.Sprintf(format, args...)})
}

func writeEvent(w http.ResponseWriter, ev api.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}

func shortID(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}
