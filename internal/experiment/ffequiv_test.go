package experiment

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// TestFastForwardEquivalence locks in the tentpole invariant end to
// end: the stalled-cycle fast-forward must be invisible in every
// measured quantity. A Figure-5-style attack pair (SPEC program vs
// malicious variant 2) runs under each DTM policy twice — once
// stepping every cycle, once fast-forwarding — and the full sim.Result
// structs, thermal trace included, must be deeply equal.
func TestFastForwardEquivalence(t *testing.T) {
	for _, policy := range []dtm.Kind{dtm.StopAndGo, dtm.SelectiveSedation, dtm.DVS} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			run := func(fastForward bool) *sim.Result {
				o := tinyOptions().normalized()
				spec, err := specThread("crafty", o.Seed)
				if err != nil {
					t.Fatal(err)
				}
				vt, err := variantThread(2, o.Config.Thermal.Scale)
				if err != nil {
					t.Fatal(err)
				}
				j := pairJob(o, "p", spec, vt, policy, false)
				j.opts.TraceTemps = true
				s, err := sim.New(j.cfg, j.threads, j.opts)
				if err != nil {
					t.Fatal(err)
				}
				s.Core().SetFastForward(fastForward)
				r, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return r
			}
			stepped := run(false)
			skipped := run(true)
			if !reflect.DeepEqual(stepped, skipped) {
				t.Errorf("results diverge:\n--- stepped\n%s\n--- fast-forwarded\n%s",
					resultSummary(stepped), resultSummary(skipped))
			}
		})
	}
}

// resultSummary flattens the fields most likely to diverge for a
// readable failure message.
func resultSummary(r *sim.Result) string {
	s := fmt.Sprintf("cycles=%d emergencies=%d stopgo=%d peak=%.4f power=%.4f sedation=%+v",
		r.Cycles, r.Emergencies, r.StopGoCycles, r.PeakTemp, r.TotalPowerW, r.Sedation)
	for i, tr := range r.Threads {
		s += fmt.Sprintf("\n  thread %d: %+v", i, tr)
	}
	return s
}
