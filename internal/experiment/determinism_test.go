package experiment

import (
	"bytes"
	"context"
	"testing"
)

// TestSweepDeterminismAcrossParallelism locks in criterion (d) of the
// sweep design: an experiment run with the same seed renders a
// byte-identical table whether its jobs run serially or eight wide.
func TestSweepDeterminismAcrossParallelism(t *testing.T) {
	for _, name := range []string{NameFigure3, NameFigure4} {
		name := name
		t.Run(name, func(t *testing.T) {
			render := func(parallelism int) string {
				o := tinyOptions()
				o.Seed = 11
				o.Parallelism = parallelism
				tb, err := RunContext(context.Background(), name, o)
				if err != nil {
					t.Fatal(err)
				}
				return tb.String()
			}
			serial := render(1)
			wide := render(8)
			if serial != wide {
				t.Errorf("table differs between parallelism 1 and 8:\n--- p=1\n%s\n--- p=8\n%s", serial, wide)
			}
			if serial == "" {
				t.Error("empty table")
			}
		})
	}
}

// TestExportMatchesRender checks the acceptance criterion that the
// structured artifacts carry exactly the rows the ASCII table shows:
// every CSV record and JSON row is present in the rendered output's
// data, and the row count matches.
func TestExportMatchesRender(t *testing.T) {
	o := tinyOptions()
	tb, err := Figure4(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Summary == nil || tb.Summary.Jobs != 6 {
		t.Errorf("summary = %+v", tb.Summary)
	}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	ascii := tb.String()
	for _, row := range tb.Rows {
		for _, cell := range row {
			if !bytes.Contains([]byte(ascii), []byte(cell)) {
				t.Errorf("cell %q missing from ASCII render", cell)
			}
			if !bytes.Contains(buf.Bytes(), []byte("\""+cell+"\"")) {
				t.Errorf("cell %q missing from JSON artifact", cell)
			}
		}
	}
}
