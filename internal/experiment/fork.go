package experiment

import (
	"context"
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

// runForkSweep executes an experiment's jobs as a fork-tree sweep:
// jobs sharing a warm key become leaves under one prefix node whose
// Prefix simulates the shared warmup once and hands the in-memory
// snapshot to every leaf (copy-on-fork: sim.Restore copies, never
// aliases, so concurrent leaves and the parent state never interfere).
// Jobs with no warmup become leaf roots. Grouping follows first
// appearance in input order, so the tree's DFS leaf order — and with
// it result indexing — is the input order of the flat sweep.
//
// The rendered tables are byte-identical to runSweep's flat and cold
// paths (enforced by the differential equivalence suite); only the
// Summary's fork counters and timing fields differ.
func runForkSweep(ctx context.Context, jobs []job, o Options) (map[string]*sim.Result, *sweep.Summary, error) {
	var roots []*sweep.ForkNode[*sim.Result]
	groups := make(map[string]*sweep.ForkNode[*sim.Result])
	for _, j := range jobs {
		j := j
		leaf := sweep.LeafNode(j.key, func(ctx context.Context, parent any) (*sim.Result, error) {
			if parent == nil {
				return runCold(ctx, j)
			}
			return runFromWarm(ctx, o, j, parent)
		})
		if j.opts.WarmupCycles <= 0 {
			roots = append(roots, leaf)
			continue
		}
		key := warmKey(o, j)
		p, ok := groups[key]
		if !ok {
			p = sweep.PrefixNode[*sim.Result](
				fmt.Sprintf("warm:%s:%s", j.key, key[:12]),
				func(ctx context.Context, _ any) (any, error) {
					return buildWarm(ctx, o, j, key)
				},
			)
			groups[key] = p
			roots = append(roots, p)
		}
		p.Children = append(p.Children, leaf)
	}
	res, err := sweep.RunTree(ctx, roots, sweepOptions(o))
	if err != nil {
		if res == nil {
			return nil, nil, fmt.Errorf("experiment: %w", err)
		}
		return nil, &res.Summary, fmt.Errorf("experiment: %w", err)
	}
	return res.ByKey(), &res.Summary, nil
}
