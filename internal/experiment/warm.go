package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// SnapshotStore persists warmup snapshots across experiment runs (the
// in-sweep sharing needs no store — the sweep engine deduplicates warm
// keys by itself). Implementations must be safe for concurrent use;
// Get must return a state the caller may restore from while other
// callers hold the same pointer (sim.Restore copies, never aliases).
type SnapshotStore interface {
	Get(key string) (*sim.MachineState, bool)
	Put(key string, ms *sim.MachineState)
}

// warmKey names the warm state a job can share: everything the
// post-warmup machine state depends on, and nothing it doesn't. The
// DTM policy and observation options are deliberately excluded —
// warmup never ticks the policy, so one warm state serves all of them
// — and the config is hashed through WarmDigest, which additionally
// zeroes the engine-only sedation thresholds and the measurement
// quantum, so threshold-sweep variants share one prefix too. The
// snapshot format version and the caller's code version guard
// persistent stores against stale entries.
func warmKey(o Options, j job) string {
	h := sha256.New()
	io.WriteString(h, "heatstroke-warm\x00")
	io.WriteString(h, j.cfg.WarmDigest())
	h.Write([]byte{0})
	io.WriteString(h, sim.ProgramsDigest(j.threads))
	fmt.Fprintf(h, "\x00%d\x00%d\x00%s\x00%t", j.opts.WarmupCycles, sim.StateVersion, o.CodeVersion, j.opts.DisableFastForward)
	return hex.EncodeToString(h.Sum(nil))
}

// traceSimOpts copies the context's tracer and current span into the
// job's sim options so the simulator records its quantum-boundary span
// under the per-job span. A no-op (and no allocation) when the context
// carries no tracer.
func traceSimOpts(ctx context.Context, opts *sim.Options) {
	if tr := tracing.TracerFrom(ctx); tr != nil {
		opts.Tracer = tr
		if sc, ok := tracing.SpanContextFrom(ctx); ok {
			opts.TraceParent = sc
		}
	}
}

// runCold runs a job from scratch: construct, warm up, measure.
func runCold(ctx context.Context, j job) (*sim.Result, error) {
	traceSimOpts(ctx, &j.opts)
	s, err := sim.New(j.cfg, j.threads, j.opts)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// buildWarm produces (or fetches from the persistent store) the
// policy-agnostic warmup snapshot for key. The warming simulator runs
// no policy: warmup never ticks it, and leaving it out keeps the
// snapshot restorable under all of them.
func buildWarm(ctx context.Context, o Options, j job, key string) (*sim.MachineState, error) {
	if o.WarmupCache != nil {
		if ms, ok := o.WarmupCache.Get(key); ok {
			tracing.Active(ctx).SetAttr("warm_cached", "true")
			return ms, nil
		}
	}
	s, err := sim.New(j.cfg, j.threads, sim.Options{
		Policy:             dtm.None,
		WarmupCycles:       j.opts.WarmupCycles,
		DisableFastForward: j.opts.DisableFastForward,
	})
	if err != nil {
		return nil, err
	}
	ms, err := s.WarmupSnapshot()
	if err != nil {
		return nil, err
	}
	if o.WarmupCache != nil {
		o.WarmupCache.Put(key, ms)
	}
	return ms, nil
}

// runFromWarm restores the shared warm state into a fully-optioned
// simulator and runs the measurement quantum. warm is read-only: many
// jobs restore from the same pointer, possibly concurrently, and
// sim.Restore copies rather than aliases. The simulator itself comes
// from the run's reuse pool when one is configured — the restore
// overwrites all of a recycled simulator's state, so results are
// byte-identical to fresh construction — and goes back to the pool
// after a clean run.
func runFromWarm(ctx context.Context, o Options, j job, warm any) (*sim.Result, error) {
	ms, ok := warm.(*sim.MachineState)
	if !ok {
		return nil, fmt.Errorf("experiment: warm state is %T, want *sim.MachineState", warm)
	}
	traceSimOpts(ctx, &j.opts)
	s, err := o.simPool.Get(j.cfg, j.threads, j.opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	_, rsp := tracing.StartSpan(ctx, "warm.restore")
	if err := s.Restore(ms); err != nil {
		rsp.EndErr(err)
		return nil, err
	}
	rsp.End()
	if o.OnRestore != nil {
		o.OnRestore(time.Since(start).Seconds())
	}
	res, err := s.Run()
	if err == nil {
		o.simPool.Put(s)
	}
	return res, err
}

// warmJob fills in the sweep job's warmup-sharing hooks for the flat
// path: Warm builds the shared snapshot, RunWarm measures from it.
func warmJob(o Options, j job, sj *sweep.Job[*sim.Result]) {
	key := warmKey(o, j)
	sj.WarmKey = key
	sj.Warm = func(ctx context.Context) (any, error) {
		return buildWarm(ctx, o, j, key)
	}
	sj.RunWarm = func(ctx context.Context, warm any) (*sim.Result, error) {
		return runFromWarm(ctx, o, j, warm)
	}
}
