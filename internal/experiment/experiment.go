// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1's configuration, Figures 3-6, the
// heat-sink and threshold sensitivity studies (Sections 5.5-5.6), the
// SPEC-pair false-positive study (Section 5.7), and the design-choice
// ablations DESIGN.md calls out. Each experiment runs a set of
// independent simulations (in parallel) and renders an ASCII table
// whose rows mirror what the paper plots.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Config is the base machine; zero value means config.Default().
	Config *config.Config
	// Benchmarks selects the SPEC2K-like workloads; nil means all.
	Benchmarks []string
	// Quantum overrides the per-run cycle count (0 = Config's).
	Quantum int64
	// Warmup is the unmeasured warmup prefix (default 500k cycles).
	Warmup int64
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	Parallelism int
	// Seed seeds workload generation (default Config's).
	Seed int64
}

func (o Options) normalized() Options {
	if o.Config == nil {
		c := config.Default()
		o.Config = &c
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.SpecNames()
	}
	if o.Quantum <= 0 {
		o.Quantum = o.Config.Run.QuantumCycles
	}
	if o.Warmup <= 0 {
		o.Warmup = 500_000
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = o.Config.Run.Seed
	}
	return o
}

// specThread builds one benchmark thread.
func specThread(name string, seed int64) (sim.Thread, error) {
	prog, err := workload.Spec(name, seed)
	if err != nil {
		return sim.Thread{}, err
	}
	return sim.Thread{Name: name, Prog: prog}, nil
}

// variantThread builds malicious variant n with phase durations matched
// to the thermal scale.
func variantThread(n int, scale float64) (sim.Thread, error) {
	prog, err := workload.VariantForScale(n, scale)
	if err != nil {
		return sim.Thread{}, err
	}
	return sim.Thread{Name: fmt.Sprintf("variant%d", n), Prog: prog}, nil
}

// job is one independent simulation.
type job struct {
	key     string
	cfg     config.Config
	threads []sim.Thread
	opts    sim.Options
}

// runJobs executes jobs with bounded parallelism and returns results by
// key. The first error aborts the remainder.
func runJobs(jobs []job, parallelism int) (map[string]*sim.Result, error) {
	if parallelism < 1 {
		parallelism = 1
	}
	results := make(map[string]*sim.Result, len(jobs))
	var mu sync.Mutex
	var firstErr error
	sem := make(chan struct{}, parallelism)
	var wg sync.WaitGroup
	for _, j := range jobs {
		mu.Lock()
		aborted := firstErr != nil
		mu.Unlock()
		if aborted {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			s, err := sim.New(j.cfg, j.threads, j.opts)
			if err == nil {
				var res *sim.Result
				res, err = s.Run()
				if err == nil {
					mu.Lock()
					results[j.key] = res
					mu.Unlock()
					return
				}
			}
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment: job %s: %w", j.key, err)
			}
			mu.Unlock()
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// Table is a rendered experiment artifact.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Experiment names, usable from the CLI and bench harness.
const (
	NameTable1     = "table1"
	NameFigure3    = "fig3"
	NameFigure4    = "fig4"
	NameFigure5    = "fig5"
	NameFigure6    = "fig6"
	NameHeatSink   = "heatsink"
	NameThresholds = "thresholds"
	NameSpecPairs  = "specpairs"
	NameTiming     = "timing"
	NamePolicies   = "policies"
	NameFlatAvg    = "ablation-flatavg"
	NameAbsThresh  = "ablation-absthresh"
	NameMulti      = "ablation-multiculprit"
	NameFetch      = "ablation-fetchpolicy"
)

// Names lists every experiment in presentation order.
func Names() []string {
	return []string{
		NameTable1, NameFigure3, NameFigure4, NameFigure5, NameFigure6,
		NameHeatSink, NameThresholds, NameSpecPairs, NameTiming, NamePolicies,
		NameFlatAvg, NameAbsThresh, NameMulti, NameFetch,
	}
}

// Run executes the named experiment.
func Run(name string, o Options) (*Table, error) {
	switch name {
	case NameTable1:
		return Table1(o)
	case NameFigure3:
		return Figure3(o)
	case NameFigure4:
		return Figure4(o)
	case NameFigure5:
		return Figure5(o)
	case NameFigure6:
		return Figure6(o)
	case NameHeatSink:
		return HeatSink(o)
	case NameThresholds:
		return Thresholds(o)
	case NameSpecPairs:
		return SpecPairs(o)
	case NameTiming:
		return Timing(o)
	case NamePolicies:
		return Policies(o)
	case NameFetch:
		return AblationFetchPolicy(o)
	case NameFlatAvg:
		return AblationFlatAverage(o)
	case NameAbsThresh:
		return AblationAbsoluteThreshold(o)
	case NameMulti:
		return AblationMultiCulprit(o)
	default:
		return nil, fmt.Errorf("experiment: unknown experiment %q (have %v)", name, Names())
	}
}

func sortedKeys(m map[string]*sim.Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
