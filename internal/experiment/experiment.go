// Package experiment regenerates every table and figure of the paper's
// evaluation (Section 5): Table 1's configuration, Figures 3-6, the
// heat-sink and threshold sensitivity studies (Sections 5.5-5.6), the
// SPEC-pair false-positive study (Section 5.7), and the design-choice
// ablations DESIGN.md calls out. Each experiment runs a set of
// independent simulations through the internal/sweep engine (bounded
// parallelism, cancellation, per-job metrics) and renders a
// sweep.Table whose rows mirror what the paper plots; the sweep's
// execution Summary rides along on the table for artifact export.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

// Options configures an experiment run.
type Options struct {
	// Config is the base machine; zero value means config.Default().
	Config *config.Config
	// Benchmarks selects the SPEC2K-like workloads; nil means all.
	Benchmarks []string
	// Quantum overrides the per-run cycle count (0 = Config's).
	Quantum int64
	// Warmup is the unmeasured warmup prefix (default
	// DefaultWarmupCycles). Every simulation of every experiment gets
	// it: all jobs are built by the soloJob/pairJob helpers, which are
	// the only place sim.Options.WarmupCycles is set.
	Warmup int64
	// Parallelism bounds concurrent simulations (default GOMAXPROCS).
	// Results are bit-for-bit identical at any parallelism: jobs are
	// seeded from Seed alone, never from scheduling order.
	Parallelism int
	// Seed seeds workload generation. Unless SeedSet is true, zero is
	// a sentinel meaning "use the Config's Run.Seed".
	Seed int64
	// SeedSet marks Seed as explicitly chosen, making literal seed 0
	// requestable: with SeedSet, Seed is used verbatim even when zero.
	// Existing callers that leave it false keep the historical
	// zero-means-config-default behaviour. The serving layer needs
	// this for exact seed round-tripping in cache keys.
	SeedSet bool
	// Progress, when set, receives a snapshot after each simulation of
	// the experiment's sweep finishes (serially, monotonic Completed;
	// see sweep.Progress). The snapshot carries the finished job's
	// metrics — simulated cycles, cycles/sec, peak temperature — so
	// live consumers see the numbers the final Summary aggregates.
	Progress func(p sweep.Progress)
	// DisableWarmupReuse turns off warmup-snapshot sharing and runs
	// every job's warmup from cold, as before PR 5. Results are
	// identical either way (enforced by sim's restore-equivalence
	// tests); the switch exists for benchmarking and debugging.
	DisableWarmupReuse bool
	// ForkTree routes the experiment through the fork-tree scheduler
	// (sweep.RunTree): jobs whose simulations share a warmup prefix —
	// same machine, programs, and warmup length, regardless of DTM
	// policy, sedation thresholds, or measurement quantum — become
	// leaves under one prefix node that simulates the shared prefix
	// once; each leaf forks from the in-memory snapshot. Tables are
	// byte-identical to the flat (and cold) paths; only the Summary's
	// fork counters and timing differ. Ignored when DisableWarmupReuse
	// is set (there is nothing to share).
	ForkTree bool
	// DisableFastForward turns off the simulator's stall fast-forward
	// in every job, including warmup prefixes (results are byte
	// identical either way; see sim.Options.DisableFastForward). The
	// differential suites use it to prove fork-tree equivalence holds
	// on both code paths.
	DisableFastForward bool
	// WarmupCache, when set, persists warmup snapshots across
	// experiment runs under their warm keys. Within one run the sweep
	// engine already shares warmups; the cache extends that across
	// runs (e.g. the daemon's on-disk store).
	WarmupCache SnapshotStore
	// CodeVersion tags warm keys so a persistent WarmupCache never
	// serves snapshots produced by a different simulator build.
	CodeVersion string
	// OnRestore, when set, is called with each warm-state restore's
	// duration in seconds (for telemetry histograms).
	OnRestore func(seconds float64)
	// DisableSimReuse turns off simulator recycling on the warm-restore
	// path: every job constructs a fresh simulator, as before. Results
	// are byte-identical either way (a warm restore overwrites all
	// mutable state and rebuilds the policy; enforced by the dirty-reuse
	// equivalence tests); the switch exists for benchmarking and
	// debugging.
	DisableSimReuse bool

	// simPool recycles simulators across this run's warm-restore jobs
	// (see sim.Pool); created by normalized() unless DisableSimReuse.
	simPool *sim.Pool

	// enumerate, when set, intercepts runSweep before any simulation:
	// it receives the experiment's fully built job list (and the
	// normalized options that would run it) and runSweep returns
	// errEnumerated instead of executing. This is how WarmKeys lists
	// an experiment's warm keys without simulating — job construction
	// is cheap (program generation and digests), the sweep is not.
	enumerate func(o Options, jobs []job)
}

// ResolvedSeed returns the seed an experiment run will actually use:
// Seed verbatim when SeedSet or nonzero, else the Config's Run.Seed
// (config.Default()'s when Config is nil). Cache keys must be built
// from this, never from the raw Seed field, so that "seed omitted" and
// "seed explicitly = config default" address the same result.
func (o Options) ResolvedSeed() int64 {
	if o.SeedSet || o.Seed != 0 {
		return o.Seed
	}
	if o.Config != nil {
		return o.Config.Run.Seed
	}
	return config.Default().Run.Seed
}

func (o Options) normalized() Options {
	if o.Config == nil {
		c := config.Default()
		o.Config = &c
	}
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = workload.SpecNames()
	}
	if o.Quantum <= 0 {
		o.Quantum = o.Config.Run.QuantumCycles
	}
	if o.Warmup <= 0 {
		o.Warmup = DefaultWarmupCycles
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 && !o.SeedSet {
		o.Seed = o.Config.Run.Seed
	}
	if o.simPool == nil && !o.DisableSimReuse {
		o.simPool = sim.NewPool()
	}
	return o
}

// specThread builds one benchmark thread.
func specThread(name string, seed int64) (sim.Thread, error) {
	prog, err := workload.Spec(name, seed)
	if err != nil {
		return sim.Thread{}, err
	}
	return sim.Thread{Name: name, Prog: prog}, nil
}

// variantThread builds malicious variant n with phase durations matched
// to the thermal scale.
func variantThread(n int, scale float64) (sim.Thread, error) {
	prog, err := workload.VariantForScale(n, scale)
	if err != nil {
		return sim.Thread{}, err
	}
	return sim.Thread{Name: fmt.Sprintf("variant%d", n), Prog: prog}, nil
}

// job is one independent simulation.
type job struct {
	key     string
	cfg     config.Config
	threads []sim.Thread
	opts    sim.Options
}

// runSweep executes jobs through the sweep engine with fail-fast
// semantics and returns results by key plus the sweep Summary. Unlike
// the old runJobs helper, cancellation stops unstarted jobs from
// burning worker slots, completed results are never discarded (the
// Summary accounts for every job), and each job's wall time, simulated
// cycles/sec, and peak temperature are aggregated.
func runSweep(ctx context.Context, jobs []job, o Options) (map[string]*sim.Result, *sweep.Summary, error) {
	if o.enumerate != nil {
		o.enumerate(o, jobs)
		return nil, nil, errEnumerated
	}
	if o.ForkTree && !o.DisableWarmupReuse {
		return runForkSweep(ctx, jobs, o)
	}
	sjobs := make([]sweep.Job[*sim.Result], len(jobs))
	for i, j := range jobs {
		j := j
		sjobs[i] = sweep.Job[*sim.Result]{
			Key: j.key,
			Run: func(ctx context.Context) (*sim.Result, error) {
				return runCold(ctx, j)
			},
		}
		if j.opts.WarmupCycles > 0 && !o.DisableWarmupReuse {
			warmJob(o, j, &sjobs[i])
		}
	}
	res, err := sweep.Run(ctx, sjobs, sweepOptions(o))
	if err != nil {
		return nil, &res.Summary, fmt.Errorf("experiment: %w", err)
	}
	return res.ByKey(), &res.Summary, nil
}

// sweepOptions builds the engine options every experiment sweep uses,
// flat or fork-tree.
func sweepOptions(o Options) sweep.Options[*sim.Result] {
	return sweep.Options[*sim.Result]{
		Parallelism: o.Parallelism,
		Policy:      sweep.FailFast,
		Metrics:     simMetrics,
		OnProgress:  o.Progress,
	}
}

// simMetrics extracts the per-job measurements the sweep Summary
// aggregates.
func simMetrics(r sweep.JobResult[*sim.Result]) map[string]float64 {
	if r.Value == nil {
		return nil
	}
	m := map[string]float64{
		sweep.MetricSimCycles:   float64(r.Value.Cycles),
		sweep.MetricPeakTempK:   r.Value.PeakTemp,
		sweep.MetricEmergencies: float64(r.Value.Emergencies),
	}
	if secs := r.Elapsed.Seconds(); secs > 0 {
		m[sweep.MetricCyclesPerSec] = float64(r.Value.Cycles) / secs
	}
	return m
}

// DefaultWarmupCycles is the unmeasured warmup prefix every
// simulation runs when Options.Warmup is unset: long enough to fill
// the caches and branch predictors and settle the thermal network's
// transient from the ambient start.
const DefaultWarmupCycles = 500_000

// Table is a rendered experiment artifact (see sweep.Table for the
// ASCII/JSON/CSV encoders).
type Table = sweep.Table

// Experiment names, usable from the CLI and bench harness.
const (
	NameTable1     = "table1"
	NameFigure3    = "fig3"
	NameFigure4    = "fig4"
	NameFigure5    = "fig5"
	NameFigure6    = "fig6"
	NameHeatSink   = "heatsink"
	NameThresholds = "thresholds"
	// NameThresholdsDense is the dense threshold-sensitivity grid made
	// affordable by warmup-prefix sharing (see ThresholdsDense).
	NameThresholdsDense = "thresholds-dense"
	NameSpecPairs       = "specpairs"
	NameTiming          = "timing"
	NamePolicies        = "policies"
	NameFlatAvg         = "ablation-flatavg"
	NameAbsThresh       = "ablation-absthresh"
	NameMulti           = "ablation-multiculprit"
	NameFetch           = "ablation-fetchpolicy"
	// NameNeighborHeat and NameDTMScope are the multi-core experiments:
	// they run whole-die simulations on the grid thermal solver (see
	// multicore.go) instead of single-core jobs on the lumped network.
	NameNeighborHeat = "neighbor-heat"
	NameDTMScope     = "dtm-scope"
)

// Names lists every experiment in presentation order.
func Names() []string {
	names := make([]string, len(registry))
	for i, in := range registry {
		names[i] = in.Name
	}
	return names
}

// Info describes one experiment for listings and the serving layer.
type Info struct {
	Name        string `json:"name"`
	Title       string `json:"title"`
	Description string `json:"description"`
	// WarmupCycles is the unmeasured warmup prefix each of the
	// experiment's simulations runs by default (Options.Warmup
	// overrides it uniformly). Zero only for experiments that run no
	// simulations.
	WarmupCycles int64 `json:"warmup_cycles"`
	// Cores is the number of cores the experiment's die simulates by
	// default (JobRequest.Cores overrides it); 1 for every single-core
	// experiment.
	Cores int `json:"cores"`
	// Solver names the thermal solver the experiment runs on:
	// config.SolverLumped for single-core experiments (the fast path),
	// config.SolverGrid for the multi-core ones.
	Solver string `json:"solver"`
}

// registry holds the experiment metadata in presentation order.
var registry = []Info{
	{Name: NameTable1, Title: "Table 1: system parameters",
		Description: "Renders the simulated machine's architectural, power, and thermal configuration; runs no simulations."},
	{Name: NameFigure3, Title: "Figure 3: register-file access rates",
		Description: "Solo runs of every SPEC program and attack variant measuring flat-average integer-register-file accesses/cycle."},
	{Name: NameFigure4, Title: "Figure 4: temperature emergencies",
		Description: "Emergencies per OS quantum: each benchmark solo, under Variant2 attack (stop-and-go), and under selective sedation."},
	{Name: NameFigure5, Title: "Figure 5: IPC under attack and defense",
		Description: "The headline study: benchmark IPC across eleven configurations pairing each attack variant with ideal/realistic sinks and stop-and-go vs sedation."},
	{Name: NameFigure6, Title: "Figure 6: execution-time breakdown",
		Description: "Where victim cycles go under attack: busy, stalled by stop-and-go, and ICOUNT-starved fractions."},
	{Name: NameHeatSink, Title: "Heat-sink sensitivity (§5.5)",
		Description: "Victim slowdown as the convection resistance (heat-sink quality) varies, under attack and defense."},
	{Name: NameThresholds, Title: "Sedation-threshold sensitivity (§5.6)",
		Description: "Sweeps the sedation upper/lower temperature thresholds and reports emergencies and victim IPC."},
	{Name: NameThresholdsDense, Title: "Sedation-threshold dense scan (§5.6)",
		Description: "Dense 355.0-358.0 K threshold grid (14 pairs per benchmark) sharing one warmup prefix per benchmark via the fork tree."},
	{Name: NameSpecPairs, Title: "SPEC-pair false positives (§5.7)",
		Description: "Benign SPEC+SPEC pairs under selective sedation: checks normal co-schedules are not sedated."},
	{Name: NameTiming, Title: "Heat/cool timing (§3.1)",
		Description: "Measures heat-up and forced-cooling durations under Variant2 and the resulting duty cycle."},
	{Name: NamePolicies, Title: "DTM policy comparison",
		Description: "Victim IPC under each thermal-management baseline (none, stop-and-go, DVS, TTDFS, sedation) while attacked."},
	{Name: NameFlatAvg, Title: "Ablation: flat-average culprit metric (§3.2.1)",
		Description: "Replaces the EWMA with a flat average so a bursty attacker hides below steady normal threads."},
	{Name: NameAbsThresh, Title: "Ablation: absolute EWMA threshold (§3.2.1)",
		Description: "Sedates on an absolute access-rate threshold ignoring temperature, causing false positives on benign bursts."},
	{Name: NameMulti, Title: "Ablation: multi-culprit identification (§3.2.2)",
		Description: "Two simultaneous attackers: checks repeated culprit identification sedates both."},
	{Name: NameFetch, Title: "Ablation: fetch policy",
		Description: "Round-robin fetch instead of ICOUNT, isolating how much victim loss is fetch-policy bias."},
	{Name: NameNeighborHeat, Title: "Neighbor heat: cross-core attack",
		Description: "Two-core die on the grid solver: a trojan on core 0 heats a solo victim on core 1 through the silicon, past sedation's reach."},
	{Name: NameDTMScope, Title: "DTM scope: per-core vs chip-wide",
		Description: "Victim throughput under per-core stop-and-go/sedation vs the chip-wide round-robin throttle while core 0 runs the trojan."},
}

func init() {
	// Every experiment that simulates warms up, and by the same default:
	// all jobs flow through soloJob/pairJob. Table 1 renders static
	// configuration and runs nothing.
	for i := range registry {
		if registry[i].Name != NameTable1 {
			registry[i].WarmupCycles = DefaultWarmupCycles
		}
		switch registry[i].Name {
		case NameNeighborHeat, NameDTMScope:
			registry[i].Cores, registry[i].Solver = 2, config.SolverGrid
		case NameTable1:
			// Renders configuration, simulates nothing.
		default:
			registry[i].Cores, registry[i].Solver = 1, config.SolverLumped
		}
	}
}

// Infos lists every experiment's metadata in presentation order.
func Infos() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Describe returns the metadata for one experiment.
func Describe(name string) (Info, bool) {
	for _, in := range registry {
		if in.Name == name {
			return in, true
		}
	}
	return Info{}, false
}

// Run executes the named experiment without cancellation.
func Run(name string, o Options) (*Table, error) {
	return RunContext(context.Background(), name, o)
}

// RunContext executes the named experiment; cancelling the context
// stops the underlying sweep (running simulations finish, pending ones
// are skipped, and an error is returned).
func RunContext(ctx context.Context, name string, o Options) (*Table, error) {
	switch name {
	case NameTable1:
		return Table1(ctx, o)
	case NameFigure3:
		return Figure3(ctx, o)
	case NameFigure4:
		return Figure4(ctx, o)
	case NameFigure5:
		return Figure5(ctx, o)
	case NameFigure6:
		return Figure6(ctx, o)
	case NameHeatSink:
		return HeatSink(ctx, o)
	case NameThresholds:
		return Thresholds(ctx, o)
	case NameThresholdsDense:
		return ThresholdsDense(ctx, o)
	case NameSpecPairs:
		return SpecPairs(ctx, o)
	case NameTiming:
		return Timing(ctx, o)
	case NamePolicies:
		return Policies(ctx, o)
	case NameFetch:
		return AblationFetchPolicy(ctx, o)
	case NameFlatAvg:
		return AblationFlatAverage(ctx, o)
	case NameAbsThresh:
		return AblationAbsoluteThreshold(ctx, o)
	case NameMulti:
		return AblationMultiCulprit(ctx, o)
	case NameNeighborHeat:
		return NeighborHeat(ctx, o)
	case NameDTMScope:
		return DTMScope(ctx, o)
	default:
		return nil, fmt.Errorf("experiment: unknown experiment %q (have %v)", name, Names())
	}
}

func sortedKeys(m map[string]*sim.Result) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
