package experiment

import (
	"context"
	"strconv"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

func TestHeatCoolDurations(t *testing.T) {
	// Synthetic trace: 3 samples heating, 2 above emergency, 3 heating,
	// 1 above.
	r := &sim.Result{
		RFTrace:      []float64{350, 353, 356, 359, 359, 352, 354, 357, 359, 350},
		Emergencies:  2,
		StopGoCycles: 4_000_000,
	}
	heat, cool := heatCoolDurations(r, 358.5, 20_000)
	if len(heat) != 2 {
		t.Fatalf("heat runs = %v", heat)
	}
	// First run: crossings at index 3 from start 0 -> 3 intervals;
	// second: crossing at index 8 from restart index 5 -> 3 intervals.
	if heat[0] != 3*20_000 || heat[1] != 3*20_000 {
		t.Errorf("heat = %v", heat)
	}
	if len(cool) != 2 || cool[0] != 2_000_000 {
		t.Errorf("cool = %v", cool)
	}
	// Empty trace.
	h, c := heatCoolDurations(&sim.Result{}, 358.5, 20_000)
	if h != nil || c != nil {
		t.Error("empty trace should yield nothing")
	}
}

func TestTimingSmoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	tb, err := Timing(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Columns) != 7 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
	// Duty cycle is a number in (0,1].
	duty, err := strconv.ParseFloat(tb.Rows[0][6], 64)
	if err != nil || duty <= 0 || duty > 1 {
		t.Errorf("duty = %q (%v)", tb.Rows[0][6], err)
	}
}

func TestPoliciesSmoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"mcf"}
	tb, err := Policies(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Columns) != 6 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
}

func TestAblationFetchPolicySmoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"mcf"}
	tb, err := AblationFetchPolicy(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Columns) != 6 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
}
