package experiment

import (
	"context"

	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// Figure3 reproduces the average integer-register-file access rates:
// each SPEC program and each malicious variant runs alone for one
// quantum with an ideal heat sink (so the intrinsic access behaviour is
// measured, not the thermal stalls), and the flat average
// accesses/cycle is reported. The paper's claims to reproduce: every
// SPEC program stays below ~6/cycle; Variant1 is far above the SPEC
// range; Variants 2 and 3 fall inside it (indistinguishable by flat
// average).
func Figure3(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	var jobs []job
	for _, b := range o.Benchmarks {
		t, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, soloJob(o, b, t, dtm.None, true))
	}
	for v := 1; v <= 3; v++ {
		t, err := variantThread(v, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, soloJob(o, t.Name, t, dtm.None, true))
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Figure 3: Average integer register-file access rate (accesses/cycle, solo runs)",
		Columns: []string{"program", "accesses/cycle", "IPC"},
	}
	var specMax float64
	for _, key := range sortedKeys(results) {
		r := results[key]
		tr := r.Threads[0]
		table.Rows = append(table.Rows, []string{key, f2(tr.IntRegRate), f2(tr.IPC)})
		if key[0] != 'v' && tr.IntRegRate > specMax {
			specMax = tr.IntRegRate
		}
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("SPEC ceiling %.2f/cycle; paper reports all SPEC below ~6 with variant1 ~10, variant2 ~4, variant3 ~1.5", specMax))
	table.Summary = sum
	return table, nil
}

// Figure4 reproduces the number of temperature emergencies in one OS
// quantum: each benchmark runs (1) alone, (2) with Variant2 under
// stop-and-go, (3) with Variant2 under selective sedation. The paper's
// claims: few or no emergencies solo, a large increase under attack,
// and restoration to roughly the solo count under sedation.
func Figure4(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	var jobs []job
	for _, b := range o.Benchmarks {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs,
			soloJob(o, b+"/solo", spec, dtm.StopAndGo, false),
			pairJob(o, b+"/attack", spec, v2, dtm.StopAndGo, false),
			pairJob(o, b+"/sedation", spec, v2, dtm.SelectiveSedation, false),
		)
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Figure 4: Temperature emergencies per OS quantum",
		Columns: []string{"benchmark", "solo", "+variant2 (stop-and-go)", "+variant2 (sedation)"},
	}
	for _, b := range o.Benchmarks {
		table.Rows = append(table.Rows, []string{
			b,
			fmt.Sprintf("%d", results[b+"/solo"].Emergencies),
			fmt.Sprintf("%d", results[b+"/attack"].Emergencies),
			fmt.Sprintf("%d", results[b+"/sedation"].Emergencies),
		})
	}
	table.Summary = sum
	return table, nil
}

// Figure5 reproduces the headline IPC study: for every benchmark, the
// SPEC program's IPC under eleven configurations — solo with ideal and
// realistic heat sinks, then for each malicious variant the ideal-sink
// pair (isolating ICOUNT effects), the realistic-sink pair under
// stop-and-go (the heat-stroke damage), and the realistic-sink pair
// under selective sedation (the recovery).
func Figure5(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	var jobs []job
	for _, b := range o.Benchmarks {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs,
			soloJob(o, b+"/solo-ideal", spec, dtm.None, true),
			soloJob(o, b+"/solo-real", spec, dtm.StopAndGo, false),
		)
		for v := 1; v <= 3; v++ {
			vt, err := variantThread(v, o.Config.Thermal.Scale)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs,
				pairJob(o, fmt.Sprintf("%s/v%d-ideal", b, v), spec, vt, dtm.None, true),
				pairJob(o, fmt.Sprintf("%s/v%d-stopgo", b, v), spec, vt, dtm.StopAndGo, false),
				pairJob(o, fmt.Sprintf("%s/v%d-sedation", b, v), spec, vt, dtm.SelectiveSedation, false),
			)
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Figure 5: SPEC program IPC under heat stroke and selective sedation",
		Columns: []string{
			"benchmark", "solo ideal", "solo real",
			"v1 ideal", "v1 stopgo", "v1 sedate",
			"v2 ideal", "v2 stopgo", "v2 sedate",
			"v3 ideal", "v3 stopgo", "v3 sedate",
		},
	}
	var soloSum, attackSum, sedateSum float64
	for _, b := range o.Benchmarks {
		row := []string{b,
			f2(results[b+"/solo-ideal"].Threads[0].IPC),
			f2(results[b+"/solo-real"].Threads[0].IPC),
		}
		for v := 1; v <= 3; v++ {
			row = append(row,
				f2(results[fmt.Sprintf("%s/v%d-ideal", b, v)].Threads[0].IPC),
				f2(results[fmt.Sprintf("%s/v%d-stopgo", b, v)].Threads[0].IPC),
				f2(results[fmt.Sprintf("%s/v%d-sedation", b, v)].Threads[0].IPC),
			)
		}
		table.Rows = append(table.Rows, row)
		soloSum += results[b+"/solo-real"].Threads[0].IPC
		attackSum += results[b+"/v2-stopgo"].Threads[0].IPC
		sedateSum += results[b+"/v2-sedation"].Threads[0].IPC
	}
	n := float64(len(o.Benchmarks))
	table.Notes = append(table.Notes,
		fmt.Sprintf("variant2 mean IPC: solo-real %.2f, under attack %.2f (%.1f%% degradation), with sedation %.2f (paper: 1.28 solo, 88.2%% degradation, 1.29 restored)",
			soloSum/n, attackSum/n, 100*(1-attackSum/soloSum), sedateSum/n))
	table.Summary = sum
	return table, nil
}

// Figure6 reproduces the execution-time breakdown: the fraction of the
// quantum each benchmark spends in normal execution vs cooling stalls
// vs sedation, under (1) solo execution, (2) attack by Variant2 under
// stop-and-go, (3) attack under selective sedation — plus Variant2's
// own breakdown under sedation (it should spend most of its time
// sedated).
func Figure6(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	var jobs []job
	for _, b := range o.Benchmarks {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs,
			soloJob(o, b+"/solo", spec, dtm.StopAndGo, false),
			pairJob(o, b+"/attack", spec, v2, dtm.StopAndGo, false),
			pairJob(o, b+"/sedation", spec, v2, dtm.SelectiveSedation, false),
		)
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Figure 6: Execution-time breakdown (normal / cooling-stall / sedated)",
		Columns: []string{
			"benchmark",
			"solo normal", "solo cool",
			"attack normal", "attack cool",
			"sedation normal", "sedation cool",
			"variant2 sedated",
		},
	}
	for _, b := range o.Benchmarks {
		solo := results[b+"/solo"].Threads[0].Breakdown
		atk := results[b+"/attack"].Threads[0].Breakdown
		sed := results[b+"/sedation"].Threads[0].Breakdown
		v2 := results[b+"/sedation"].Threads[1].Breakdown
		sn, sc, _ := solo.Fractions()
		an, ac, _ := atk.Fractions()
		dn, dc, _ := sed.Fractions()
		_, _, vs := v2.Fractions()
		table.Rows = append(table.Rows, []string{
			b, pct(sn), pct(sc), pct(an), pct(ac), pct(dn), pct(dc), pct(vs),
		})
	}
	table.Summary = sum
	return table, nil
}

// soloJob builds a one-thread run.
func soloJob(o Options, key string, t sim.Thread, policy dtm.Kind, ideal bool) job {
	cfg := *o.Config
	cfg.Run.QuantumCycles = o.Quantum
	cfg.Run.Seed = o.Seed
	cfg.Thermal.IdealSink = ideal
	return job{
		key:     key,
		cfg:     cfg,
		threads: []sim.Thread{t},
		opts:    sim.Options{Policy: policy, WarmupCycles: o.Warmup, DisableFastForward: o.DisableFastForward},
	}
}

// pairJob builds a two-thread run (benchmark first, attacker second).
func pairJob(o Options, key string, a, b sim.Thread, policy dtm.Kind, ideal bool) job {
	j := soloJob(o, key, a, policy, ideal)
	j.threads = append(j.threads, b)
	return j
}
