package experiment

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden table files")

// goldenCompare diffs a rendered table against its checked-in golden
// file; `go test ./internal/experiment -run Golden -update` rewrites
// the files after an intentional format or model change.
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden file %s:\n--- got\n%s\n--- want\n%s",
			name, path, got, want)
	}
}

// TestGoldenTable1 locks the exact Table 1 rendering — configuration
// reporting drift corrupts every exported artifact downstream.
func TestGoldenTable1(t *testing.T) {
	tb, err := Table1(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table1", tb.String())
}

// TestGoldenTiming locks the timing experiment's rendered table at a
// small explicit quantum and fixed seed. Byte-identical output also
// re-verifies the simulation's determinism end to end.
func TestGoldenTiming(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	o.Quantum = 2_000_000
	o.Seed = 5
	tb, err := Timing(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "timing", tb.String())
}
