package experiment

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

func benchRun(b *testing.B, pair bool) {
	o := Options{}.normalized()
	spec, _ := specThread("crafty", 1)
	v2, _ := variantThread(2, 16)
	for i := 0; i < b.N; i++ {
		var j job
		if pair {
			j = pairJob(o, "p", spec, v2, dtm.StopAndGo, false)
		} else {
			j = soloJob(o, "s", spec, dtm.StopAndGo, false)
		}
		j.cfg.Run.QuantumCycles = 2_000_000
		s, err := sim.New(j.cfg, j.threads, j.opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfileSolo(b *testing.B) { benchRun(b, false) }
func BenchmarkProfilePair(b *testing.B) { benchRun(b, true) }
