package experiment

import (
	"context"

	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
)

// defaultSubset picks a small representative benchmark set for the
// sensitivity studies when the caller didn't narrow one (the paper uses
// the full suite; the subset keeps run time proportionate while
// covering high-IPC integer, branchy integer, FP, and memory-bound
// behaviour).
func (o Options) subset() []string {
	if len(o.Benchmarks) <= 6 {
		return o.Benchmarks
	}
	want := []string{"crafty", "gcc", "applu", "mcf"}
	have := make(map[string]bool, len(o.Benchmarks))
	for _, b := range o.Benchmarks {
		have[b] = true
	}
	var out []string
	for _, w := range want {
		if have[w] {
			out = append(out, w)
		}
	}
	if len(out) == 0 {
		out = o.Benchmarks[:4]
	}
	return out
}

// HeatSink reproduces Section 5.5: both the damage from heat stroke and
// the effectiveness of selective sedation are qualitatively unchanged
// as the package improves (smaller convection resistance). The sweep
// runs each benchmark with Variant2 under stop-and-go and under
// sedation for a range of convection resistances.
func HeatSink(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	resistances := []float64{0.8, 0.65, 0.5, 0.35}
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		for _, r := range resistances {
			for _, pol := range []dtm.Kind{dtm.StopAndGo, dtm.SelectiveSedation} {
				j := pairJob(o, fmt.Sprintf("%s/%.2f/%s", b, r, pol), spec, v2, pol, false)
				j.cfg.Thermal.ConvectionRes = r
				jobs = append(jobs, j)
			}
			j := soloJob(o, fmt.Sprintf("%s/%.2f/solo", b, r), spec, dtm.StopAndGo, false)
			j.cfg.Thermal.ConvectionRes = r
			jobs = append(jobs, j)
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Section 5.5: Heat-sink sensitivity (SPEC IPC with Variant2, by convection resistance)",
		Columns: []string{"benchmark", "R (K/W)", "solo IPC", "attack IPC", "sedation IPC", "attack emergencies"},
	}
	for _, b := range benches {
		for _, r := range resistances {
			solo := results[fmt.Sprintf("%s/%.2f/solo", b, r)]
			atk := results[fmt.Sprintf("%s/%.2f/%s", b, r, dtm.StopAndGo)]
			sed := results[fmt.Sprintf("%s/%.2f/%s", b, r, dtm.SelectiveSedation)]
			table.Rows = append(table.Rows, []string{
				b, f2(r),
				f2(solo.Threads[0].IPC),
				f2(atk.Threads[0].IPC),
				f2(sed.Threads[0].IPC),
				fmt.Sprintf("%d", atk.Emergencies),
			})
		}
	}
	table.Notes = append(table.Notes,
		"paper claim: better packaging does not remove the attack; sedation stays effective at every resistance")
	table.Summary = sum
	return table, nil
}

// Thresholds reproduces Section 5.6: selective sedation's effectiveness
// is not critically sensitive to the exact upper/lower thresholds. The
// sweep varies the threshold pair and reports the victim's IPC and the
// emergency count under a Variant2 attack.
func Thresholds(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	pairs := []struct{ upper, lower float64 }{
		{355.5, 354.5},
		{356.0, 355.0}, // the paper's default
		{356.5, 355.5},
		{357.0, 355.5},
	}
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, soloJob(o, b+"/solo", spec, dtm.StopAndGo, false))
		for _, p := range pairs {
			j := pairJob(o, fmt.Sprintf("%s/%.1f-%.1f", b, p.upper, p.lower), spec, v2, dtm.SelectiveSedation, false)
			j.cfg.Sedation.UpperK = p.upper
			j.cfg.Sedation.LowerK = p.lower
			jobs = append(jobs, j)
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Section 5.6: Threshold robustness (victim IPC under Variant2 with selective sedation)",
		Columns: []string{"benchmark", "solo IPC", "355.5/354.5", "356.0/355.0", "356.5/355.5", "357.0/355.5", "emergencies (default)"},
	}
	for _, b := range benches {
		row := []string{b, f2(results[b+"/solo"].Threads[0].IPC)}
		for _, p := range pairs {
			row = append(row, f2(results[fmt.Sprintf("%s/%.1f-%.1f", b, p.upper, p.lower)].Threads[0].IPC))
		}
		row = append(row, fmt.Sprintf("%d", results[fmt.Sprintf("%s/356.0-355.0", b)].Emergencies))
		table.Rows = append(table.Rows, row)
	}
	table.Notes = append(table.Notes,
		"paper claim: effectiveness is not critically sensitive to the thresholds chosen")
	table.Summary = sum
	return table, nil
}

// ThresholdsDense extends Section 5.6 with a dense sensitivity scan
// over the sedation thresholds: upper thresholds from 355.0 K to
// 358.0 K in 0.5 K steps (the ceiling stays below the 358.5 K
// emergency threshold config validation enforces), each with the lower
// threshold 0.5 K and 1.0 K below — 14 pairs per benchmark plus a solo
// baseline. At 15 simulations per benchmark the scan is only
// affordable because every threshold variant of a benchmark shares one
// warmup prefix: the thresholds are engine-only inputs, excluded from
// config.WarmDigest, so the fork tree (or the flat warm cache) runs
// the prefix once per benchmark instead of once per grid point.
func ThresholdsDense(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	type pair struct{ upper, lower float64 }
	var pairs []pair
	for i := 0; i <= 6; i++ {
		u := 355.0 + 0.5*float64(i)
		pairs = append(pairs, pair{u, u - 0.5}, pair{u, u - 1.0})
	}
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, soloJob(o, b+"/solo", spec, dtm.StopAndGo, false))
		for _, p := range pairs {
			j := pairJob(o, fmt.Sprintf("%s/%.1f-%.1f", b, p.upper, p.lower), spec, v2, dtm.SelectiveSedation, false)
			j.cfg.Sedation.UpperK = p.upper
			j.cfg.Sedation.LowerK = p.lower
			jobs = append(jobs, j)
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Section 5.6 (dense): Threshold sensitivity scan (victim under Variant2 with selective sedation)",
		Columns: []string{"benchmark", "upper K", "lower K", "solo IPC", "victim IPC", "emergencies", "sedations"},
	}
	for _, b := range benches {
		solo := results[b+"/solo"]
		for _, p := range pairs {
			r := results[fmt.Sprintf("%s/%.1f-%.1f", b, p.upper, p.lower)]
			table.Rows = append(table.Rows, []string{
				b, f1(p.upper), f1(p.lower),
				f2(solo.Threads[0].IPC),
				f2(r.Threads[0].IPC),
				fmt.Sprintf("%d", r.Emergencies),
				fmt.Sprintf("%d", r.Sedation.Sedations),
			})
		}
	}
	table.Notes = append(table.Notes,
		"dense grid over upper 355.0-358.0 K (step 0.5) x lower offsets {0.5, 1.0} K; paper claim: effectiveness is not critically sensitive to the thresholds chosen")
	table.Summary = sum
	return table, nil
}

// SpecPairs reproduces Section 5.7: with no malicious thread present,
// selective sedation does not hurt pairs of normal programs. Every
// adjacent pair of benchmarks runs under stop-and-go and under
// sedation; per-thread IPCs should match closely.
func SpecPairs(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.Benchmarks
	if len(benches) < 2 {
		return nil, fmt.Errorf("experiment: specpairs needs at least two benchmarks")
	}
	var jobs []job
	for i := 0; i < len(benches); i++ {
		a, b := benches[i], benches[(i+1)%len(benches)]
		ta, err := specThread(a, o.Seed)
		if err != nil {
			return nil, err
		}
		tb, err := specThread(b, o.Seed+1)
		if err != nil {
			return nil, err
		}
		key := a + "+" + b
		jobs = append(jobs,
			pairJob(o, key+"/stopgo", ta, tb, dtm.StopAndGo, false),
			pairJob(o, key+"/sedation", ta, tb, dtm.SelectiveSedation, false),
		)
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Section 5.7: SPEC pairs without malicious threads (sedation vs stop-and-go)",
		Columns: []string{"pair", "A stopgo", "A sedation", "B stopgo", "B sedation", "sedations", "emergencies stopgo"},
	}
	var worst float64
	for i := 0; i < len(benches); i++ {
		a, b := benches[i], benches[(i+1)%len(benches)]
		key := a + "+" + b
		sg := results[key+"/stopgo"]
		sd := results[key+"/sedation"]
		table.Rows = append(table.Rows, []string{
			key,
			f2(sg.Threads[0].IPC), f2(sd.Threads[0].IPC),
			f2(sg.Threads[1].IPC), f2(sd.Threads[1].IPC),
			fmt.Sprintf("%d", sd.Sedation.Sedations),
			fmt.Sprintf("%d", sg.Emergencies),
		})
		for t := 0; t < 2; t++ {
			if d := 1 - (sd.Threads[t].IPC+sg.Threads[t].IPC*0)/maxf(sg.Threads[t].IPC, 1e-9); d > worst {
				worst = d
			}
		}
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("worst per-thread slowdown of sedation vs stop-and-go: %.1f%% (paper: sedation does not adversely affect normal pairs)", 100*worst))
	table.Summary = sum
	return table, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
