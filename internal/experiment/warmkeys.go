package experiment

import (
	"context"
	"errors"
)

// errEnumerated is runSweep's return when Options.enumerate intercepts
// the job list: the experiment aborts before simulating, and WarmKeys
// recognizes the sentinel as success.
var errEnumerated = errors.New("experiment: job list enumerated, sweep skipped")

// WarmKeys lists the warmup-snapshot keys the named experiment would
// share warm state under, without running any simulation. The keys are
// exactly those the run itself derives (same warmKey function on the
// same built job list), deduplicated in first-appearance order — so a
// fleet coordinator can decide, before dispatching a job to a worker,
// which snapshots to ship there (see internal/fleet). Options follow
// the same normalization as a real run; CodeVersion must match the
// executing side for the keys to alias its cache.
//
// Cost: job construction only — workload/program generation and config
// digests, no cycles simulated. Experiments that run no simulations
// (table1) return no keys.
func WarmKeys(ctx context.Context, name string, o Options) ([]string, error) {
	var keys []string
	seen := make(map[string]bool)
	o.enumerate = func(eo Options, jobs []job) {
		for _, j := range jobs {
			if j.opts.WarmupCycles <= 0 {
				continue
			}
			k := warmKey(eo, j)
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if _, err := RunContext(ctx, name, o); err != nil && !errors.Is(err, errEnumerated) {
		return nil, err
	}
	return keys, nil
}
