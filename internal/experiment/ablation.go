package experiment

import (
	"context"

	"fmt"

	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
)

// AblationFlatAverage evaluates the Section 3.2.1 argument that a flat
// access count cannot identify culprits: it runs each benchmark with
// Variant2 under selective sedation twice — once with the paper's
// weighted average, once with a total-count metric — and reports which
// thread got sedated and the victim's IPC. Under the flat metric the
// steady SPEC thread can out-count the bursty attacker and be sedated
// in its place.
func AblationFlatAverage(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, pairJob(o, b+"/ewma", spec, v2, dtm.SelectiveSedation, false))
		flat := pairJob(o, b+"/flat", spec, v2, dtm.SelectiveSedation, false)
		flat.cfg.Sedation.UseFlatAverage = true
		jobs = append(jobs, flat)
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "Ablation: weighted average vs flat count for culprit identification (victim + Variant2)",
		Columns: []string{"benchmark", "victim IPC (ewma)", "victim IPC (flat)", "victim sedations (ewma)", "victim sedations (flat)"},
	}
	for _, b := range benches {
		ew := results[b+"/ewma"]
		fl := results[b+"/flat"]
		table.Rows = append(table.Rows, []string{
			b,
			f2(ew.Threads[0].IPC), f2(fl.Threads[0].IPC),
			fmt.Sprintf("%d", victimSedations(ew.Reports, 0)),
			fmt.Sprintf("%d", victimSedations(fl.Reports, 0)),
		})
	}
	table.Notes = append(table.Notes,
		"paper claim (3.2.1): simply counting total accesses misidentifies steady normal threads as culprits")
	table.Summary = sum
	return table, nil
}

// AblationAbsoluteThreshold evaluates the Section 3.2.1 argument
// against policing threads with an absolute weighted-average threshold
// instead of a temperature trigger: a low threshold falsely sedates
// normal programs' bursts; a high threshold lets the attacker through.
func AblationAbsoluteThreshold(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	thresholds := []float64{4, 8, 20}
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs,
			pairJob(o, b+"/temp", spec, v2, dtm.SelectiveSedation, false),
			soloJob(o, b+"/solo", spec, dtm.StopAndGo, false),
		)
		for _, th := range thresholds {
			j := pairJob(o, fmt.Sprintf("%s/abs%.0f", b, th), spec, v2, dtm.SelectiveSedation, false)
			j.cfg.Sedation.AbsoluteEWMAThreshold = th
			jobs = append(jobs, j)
			js := soloJob(o, fmt.Sprintf("%s/soloabs%.0f", b, th), spec, dtm.SelectiveSedation, false)
			js.cfg.Sedation.AbsoluteEWMAThreshold = th
			jobs = append(jobs, js)
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Ablation: temperature trigger vs absolute weighted-average threshold",
		Columns: []string{
			"benchmark", "solo IPC", "victim IPC (temp)",
			"victim IPC (abs=4)", "victim IPC (abs=8)", "victim IPC (abs=20)",
			"attack emergencies (abs=20)",
		},
	}
	for _, b := range benches {
		row := []string{b,
			f2(results[b+"/solo"].Threads[0].IPC),
			f2(results[b+"/temp"].Threads[0].IPC),
		}
		for _, th := range thresholds {
			row = append(row, f2(results[fmt.Sprintf("%s/abs%.0f", b, th)].Threads[0].IPC))
		}
		row = append(row, fmt.Sprintf("%d", results[b+"/abs20"].Emergencies))
		table.Rows = append(table.Rows, row)
	}
	table.Notes = append(table.Notes,
		"paper claim (3.2.1): low absolute thresholds cause false positives; raising them lets heat stroke through undetected")
	table.Summary = sum
	return table, nil
}

// AblationMultiCulprit exercises the 2x-cooling-time re-examination of
// Section 3.2.2 on a 4-context SMT running two victims and two copies
// of Variant2: sedating the first culprit is not enough, so the engine
// must re-examine and sedate the second.
func AblationMultiCulprit(ctx context.Context, o Options) (*Table, error) {
	explicitQuantum := o.Quantum > 0
	o = o.normalized()
	benches := o.subset()
	if len(benches) < 2 {
		return nil, fmt.Errorf("experiment: multiculprit needs two benchmarks")
	}
	a, b := benches[0], benches[1]
	ta, err := specThread(a, o.Seed)
	if err != nil {
		return nil, err
	}
	tb, err := specThread(b, o.Seed+1)
	if err != nil {
		return nil, err
	}
	// Two moderate attackers: combined they overheat the register file,
	// but each alone only holds it between the thresholds — the regime
	// where sedating the first culprit is not enough and the
	// 2x-cooling-time re-examination must catch the second (§3.2.2).
	v2a, err := variantThread(3, o.Config.Thermal.Scale)
	if err != nil {
		return nil, err
	}
	v2b, err := variantThread(3, o.Config.Thermal.Scale)
	if err != nil {
		return nil, err
	}
	v2b.Name = "variant3b"

	mk := func(key string, policy dtm.Kind) job {
		j := soloJob(o, key, ta, policy, false)
		j.cfg.Pipeline.Contexts = 4
		j.cfg.Pipeline.FetchThreads = 2
		// The re-examination delay is 2x the cooling time (5 M scaled
		// cycles); the quantum must span several such periods for the
		// second culprit to be caught. An explicitly requested quantum
		// is honoured as-is.
		if !explicitQuantum && j.cfg.Run.QuantumCycles < 20_000_000 {
			j.cfg.Run.QuantumCycles = 20_000_000
		}
		// Tighten the re-examination window for the ablation: with the
		// paper's 2x-cooling delay the lower threshold is usually
		// re-crossed first at this thermal scale, so the second-culprit
		// path would be exercised only by the unit tests.
		j.cfg.Sedation.ExpectedCoolingCycles = 250_000
		j.threads = append(j.threads, tb, v2a, v2b)
		return j
	}
	results, sum, err := runSweep(ctx, []job{
		mk("stopgo", dtm.StopAndGo),
		mk("sedation", dtm.SelectiveSedation),
	}, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   fmt.Sprintf("Ablation: two simultaneous attackers on a 4-context SMT (%s, %s, 2x variant3)", a, b),
		Columns: []string{"thread", "IPC stop-and-go", "IPC sedation", "sedated fraction"},
	}
	sg, sd := results["stopgo"], results["sedation"]
	for i := range sd.Threads {
		_, _, sedFrac := sd.Threads[i].Breakdown.Fractions()
		table.Rows = append(table.Rows, []string{
			sd.Threads[i].Name,
			f2(sg.Threads[i].IPC),
			f2(sd.Threads[i].IPC),
			pct(sedFrac),
		})
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("sedation events %d, re-examinations %d, emergencies stopgo=%d sedation=%d",
			sd.Sedation.Sedations, sd.Sedation.Reexaminations, sg.Emergencies, sd.Emergencies))
	table.Summary = sum
	return table, nil
}

// victimSedations counts OS reports naming the given thread.
func victimSedations(reports []score.Report, tid int) int {
	n := 0
	for _, r := range reports {
		if r.Thread == tid {
			n++
		}
	}
	return n
}
