package experiment

import (
	"context"
	"sort"
	"sync"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// recordingStore is a SnapshotStore that misses on every Get and
// records every Put, capturing the warm keys a real run derives.
type recordingStore struct {
	mu   sync.Mutex
	puts map[string]bool
}

func (r *recordingStore) Get(string) (*sim.MachineState, bool) { return nil, false }
func (r *recordingStore) Put(key string, _ *sim.MachineState) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.puts == nil {
		r.puts = make(map[string]bool)
	}
	r.puts[key] = true
}

func (r *recordingStore) keys() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.puts))
	for k := range r.puts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func warmKeysOpts() Options {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 40_000
	return Options{
		Config:      &cfg,
		Benchmarks:  []string{"crafty", "mcf"},
		Quantum:     40_000,
		Warmup:      1_000,
		Parallelism: 2,
		CodeVersion: "warmkeys-test",
	}
}

// TestWarmKeysMatchExecution is the contract the fleet coordinator
// depends on: the keys WarmKeys enumerates without simulating are
// exactly the keys a real run of the same experiment and options
// stores its warmup snapshots under.
func TestWarmKeysMatchExecution(t *testing.T) {
	for _, name := range []string{NameFigure3, NameFigure4, NameThresholds} {
		t.Run(name, func(t *testing.T) {
			enumerated, err := WarmKeys(context.Background(), name, warmKeysOpts())
			if err != nil {
				t.Fatalf("WarmKeys: %v", err)
			}
			if len(enumerated) == 0 {
				t.Fatal("no warm keys enumerated")
			}
			rec := &recordingStore{}
			o := warmKeysOpts()
			o.WarmupCache = rec
			if _, err := RunContext(context.Background(), name, o); err != nil {
				t.Fatalf("run: %v", err)
			}
			want := rec.keys()
			got := append([]string(nil), enumerated...)
			sort.Strings(got)
			if len(got) != len(want) {
				t.Fatalf("enumerated %d keys, execution stored %d\n enum %v\n exec %v", len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("key mismatch at %d:\n enum %s\n exec %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestWarmKeysCheap: enumeration must not simulate, so even an
// otherwise-expensive experiment's key list comes back immediately and
// with no cycles run. The policies experiment at full default quantum
// would take minutes to simulate; enumeration is bounded by program
// generation only.
func TestWarmKeysCheap(t *testing.T) {
	o := warmKeysOpts()
	o.Quantum = 0 // config default: far too expensive to actually run in a unit test
	keys, err := WarmKeys(context.Background(), NamePolicies, o)
	if err != nil {
		t.Fatalf("WarmKeys: %v", err)
	}
	// policies: per benchmark, one attack pair shared across 5 DTM
	// kinds -> warm keys collapse to one per benchmark (policy and
	// thresholds are excluded from warm keys by design).
	if len(keys) != 2 {
		t.Fatalf("policies warm keys = %d (%v), want 1 per benchmark", len(keys), keys)
	}
}

// TestWarmKeysEdgeCases: no-simulation experiments enumerate empty,
// unknown names error.
func TestWarmKeysEdgeCases(t *testing.T) {
	keys, err := WarmKeys(context.Background(), NameTable1, warmKeysOpts())
	if err != nil {
		t.Fatalf("table1: %v", err)
	}
	if len(keys) != 0 {
		t.Fatalf("table1 warm keys = %v, want none", keys)
	}
	if _, err := WarmKeys(context.Background(), "no-such-experiment", warmKeysOpts()); err == nil {
		t.Fatal("unknown experiment: want error")
	}
}
