package experiment

import (
	"context"
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

// Table1 renders the system parameters (the paper's Table 1) from the
// active configuration. It runs no simulations, but the config
// validation and row construction still execute as a (single-job)
// sweep so every experiment shares the same substrate: cancellation,
// error accounting, and an execution Summary on the artifact.
func Table1(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	jobs := []sweep.Job[[][]string]{{
		Key: NameTable1,
		Run: func(context.Context) ([][]string, error) { return table1Rows(o) },
	}}
	res, err := sweep.Run(ctx, jobs, sweep.Options[[][]string]{
		Parallelism: o.Parallelism,
		Policy:      sweep.FailFast,
		OnProgress:  o.Progress,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	return &Table{
		Title:   "Table 1: System parameters",
		Columns: []string{"Parameter", "Value"},
		Rows:    res.Jobs[0].Value,
		Summary: &res.Summary,
	}, nil
}

func table1Rows(o Options) ([][]string, error) {
	c := o.Config
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rows := [][]string{
		{"Instruction issue", fmt.Sprintf("%d, out-of-order", c.Pipeline.IssueWidth)},
		{"Fetch", fmt.Sprintf("%d-wide, %d threads/cycle (ICOUNT)", c.Pipeline.FetchWidth, c.Pipeline.FetchThreads)},
		{"L1", fmt.Sprintf("%dKB %d-way i & d, %d-cycle", c.Memory.L1I.SizeBytes>>10, c.Memory.L1I.Assoc, c.Memory.L1I.LatencyCycles)},
		{"L2", fmt.Sprintf("%dM %d-way shared, %d-cycle", c.Memory.L2.SizeBytes>>20, c.Memory.L2.Assoc, c.Memory.L2.LatencyCycles)},
		{"RUU/LSQ", fmt.Sprintf("%d/%d entries", c.Pipeline.RUUSize, c.Pipeline.LSQSize)},
		{"Memory ports", fmt.Sprintf("%d", c.Pipeline.MemPorts)},
		{"Off-chip memory latency", fmt.Sprintf("%d cycles", c.Memory.MemLatency)},
		{"SMT", fmt.Sprintf("%d contexts", c.Pipeline.Contexts)},
		{"Branch predictor", fmt.Sprintf("%s, %d-entry tables", c.Bpred.Kind, 1<<c.Bpred.TableBits)},
		{"Vdd", fmt.Sprintf("%.1f V", c.Power.Vdd)},
		{"Base frequency", fmt.Sprintf("%.0f GHz", c.Power.FrequencyHz/1e9)},
		{"Convection resistance", fmt.Sprintf("%.1f K/W", c.Thermal.ConvectionRes)},
		{"Heat-sink thickness", fmt.Sprintf("%.1f mm", c.Thermal.HeatSinkThicknessM*1e3)},
		{"Thermal RC cooling time", fmt.Sprintf("%.0f ms", c.Thermal.CoolingTimeMs)},
		{"Emergency temperature", fmt.Sprintf("%.1f K", c.Thermal.EmergencyK)},
		{"Sedation thresholds", fmt.Sprintf("upper %.1f K / lower %.1f K", c.Sedation.UpperK, c.Sedation.LowerK)},
		{"Access-rate sampling", fmt.Sprintf("every %d cycles, x = 1/%d", c.Sedation.SampleIntervalCycles, 1<<c.Sedation.EWMAShift)},
		{"Thermal scale (repro)", fmt.Sprintf("%.0fx", c.Thermal.Scale)},
		{"OS quantum", fmt.Sprintf("%d cycles", o.Quantum)},
	}
	return rows, nil
}
