// Multi-core experiments: the neighbor-heat attack (one core's power
// density heating a victim core across the die) and the DTM-scope
// comparison (per-core policies vs the chip-wide round-robin). Both
// run on the grid thermal solver over a NewDie(K) floorplan; they are
// the only experiments that do, so every single-core experiment stays
// on the lumped fast path byte-identically.
package experiment

import (
	"context"
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

// multiTopology resolves the die topology a multi-core experiment
// runs: the Config's topology when it names more than one core, else
// the two-core grid default. The solver is always the grid — the
// lumped network cannot model a second core.
func (o Options) multiTopology() config.Topology {
	top := o.Config.Topology
	if top.Cores <= 1 {
		top.Cores = 2
	}
	if top.Solver == "" || top.Solver == config.SolverLumped {
		top.Solver = config.SolverGrid
	}
	return top
}

// multiJob is one independent whole-die simulation.
type multiJob struct {
	key         string
	cfg         config.Config
	coreThreads [][]sim.Thread
	opts        sim.MultiOptions
}

// multiCoreJob builds a whole-die run: thread set per core, one DTM
// scope/policy. Multi-core jobs always run cold — no warmup snapshot
// sharing or fork-tree prefixes — so their results are trivially
// byte-identical across -parallel and -fork settings.
func multiCoreJob(o Options, key string, coreThreads [][]sim.Thread, scope dtm.Scope, policy dtm.Kind) multiJob {
	cfg := *o.Config
	cfg.Run.QuantumCycles = o.Quantum
	cfg.Run.Seed = o.Seed
	cfg.Topology = o.multiTopology()
	return multiJob{
		key:         key,
		cfg:         cfg,
		coreThreads: coreThreads,
		opts: sim.MultiOptions{
			Scope:              scope,
			Policy:             policy,
			WarmupCycles:       o.Warmup,
			DisableFastForward: o.DisableFastForward,
		},
	}
}

// runMultiSweep executes whole-die jobs through the sweep engine,
// mirroring runSweep's fail-fast semantics and Summary metrics.
func runMultiSweep(ctx context.Context, jobs []multiJob, o Options) (map[string]*sim.MultiResult, *sweep.Summary, error) {
	if o.enumerate != nil {
		// Multi-core jobs always run cold, so WarmKeys sees an empty
		// job list: there are no warm snapshots to ship anywhere.
		o.enumerate(o, nil)
		return nil, nil, errEnumerated
	}
	sjobs := make([]sweep.Job[*sim.MultiResult], len(jobs))
	for i, j := range jobs {
		j := j
		sjobs[i] = sweep.Job[*sim.MultiResult]{
			Key: j.key,
			Run: func(ctx context.Context) (*sim.MultiResult, error) {
				m, err := sim.NewMulti(j.cfg, j.coreThreads, j.opts)
				if err != nil {
					return nil, err
				}
				return m.Run()
			},
		}
	}
	res, err := sweep.Run(ctx, sjobs, sweep.Options[*sim.MultiResult]{
		Parallelism: o.Parallelism,
		Policy:      sweep.FailFast,
		Metrics:     multiMetrics,
		OnProgress:  o.Progress,
	})
	if err != nil {
		return nil, &res.Summary, fmt.Errorf("experiment: %w", err)
	}
	return res.ByKey(), &res.Summary, nil
}

func multiMetrics(r sweep.JobResult[*sim.MultiResult]) map[string]float64 {
	if r.Value == nil {
		return nil
	}
	m := map[string]float64{
		sweep.MetricSimCycles:   float64(r.Value.Cycles),
		sweep.MetricPeakTempK:   r.Value.PeakTemp,
		sweep.MetricEmergencies: float64(r.Value.Emergencies),
	}
	if secs := r.Elapsed.Seconds(); secs > 0 {
		m[sweep.MetricCyclesPerSec] = float64(r.Value.Cycles) / secs
	}
	return m
}

// neighborBenign is the benign co-resident the baseline rows run on
// core 0: a low-power SPEC program, so the victim's baseline die is a
// normally loaded one, not an idle one.
const neighborBenign = "art"

// NeighborHeat reproduces the cross-core form of the attack: the
// victim benchmark runs ALONE on core 1 — selective sedation cannot
// touch a solo thread (the last-thread exception) and no thread on the
// victim core misbehaves — while core 0 runs either a benign neighbor
// or the Variant2 trojan. Every effect on the victim arrives through
// the silicon: the trojan's power density conducts across the die and
// drives the victim core's sensors toward the emergency threshold, so
// the victim's own stop-and-go safety net does the attacker's work.
func NeighborHeat(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	top := o.multiTopology()
	v2, err := variantThread(2, o.Config.Thermal.Scale)
	if err != nil {
		return nil, err
	}
	benign, err := specThread(neighborBenign, o.Seed)
	if err != nil {
		return nil, err
	}
	var jobs []multiJob
	for _, b := range o.Benchmarks {
		victim, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		// Core 0 hosts the neighbor, core 1 the victim; extra cores (when
		// -cores > 2) run the benign neighbor so the only variable between
		// the two rows is core 0's program.
		mk := func(neighbor sim.Thread) [][]sim.Thread {
			ct := make([][]sim.Thread, top.Cores)
			ct[0] = []sim.Thread{neighbor}
			ct[1] = []sim.Thread{victim}
			for c := 2; c < top.Cores; c++ {
				ct[c] = []sim.Thread{benign}
			}
			return ct
		}
		jobs = append(jobs,
			multiCoreJob(o, b+"/benign", mk(benign), dtm.ScopePerCore, dtm.SelectiveSedation),
			multiCoreJob(o, b+"/trojan", mk(v2), dtm.ScopePerCore, dtm.SelectiveSedation),
		)
	}
	results, sum, err := runMultiSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Neighbor heat: victim core under a trojan neighbor (per-core sedation)",
		Columns: []string{"benchmark", "victim IPC benign", "victim IPC trojan", "slowdown",
			"victim emergencies", "victim stall%",
			"victim IntReg benign K", "victim IntReg trojan K", "trojan core peak K"},
	}
	for _, b := range o.Benchmarks {
		bn, ok1 := results[b+"/benign"]
		tr, ok2 := results[b+"/trojan"]
		if !ok1 || !ok2 {
			continue
		}
		vb, vt := bn.Cores[1], tr.Cores[1]
		ipcB, ipcT := vb.Threads[0].IPC, vt.Threads[0].IPC
		slow := 0.0
		if ipcB > 0 {
			slow = 1 - ipcT/ipcB
		}
		stall := float64(vt.StopGoCycles) / float64(tr.Cycles)
		table.Rows = append(table.Rows, []string{
			b, f2(ipcB), f2(ipcT), pct(slow),
			fmt.Sprintf("%d", vt.Emergencies), pct(stall),
			f2(vb.FinalTemps[power.UnitIntReg]), f2(vt.FinalTemps[power.UnitIntReg]),
			f2(tr.Cores[0].PeakTemp),
		})
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("%d-core %s die, grid %d; victim solo on core 1 (sedation's last-thread exception), neighbor on core 0",
			top.Cores, top.Solver, top.EffectiveGridN()),
		"victim stalls are its own safety net reacting to heat conducted from the neighbor core")
	table.Summary = sum
	return table, nil
}

// DTMScope compares where the throttle burden lands when DTM observes
// one core vs the whole die: per-core stop-and-go and sedation pin the
// penalty on whichever core crosses the threshold (under neighbor
// heat, the victim), while the chip-wide round-robin rotates a
// temperature-banded throttle over every core, attacker included.
func DTMScope(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	top := o.multiTopology()
	v2, err := variantThread(2, o.Config.Thermal.Scale)
	if err != nil {
		return nil, err
	}
	benign, err := specThread(neighborBenign, o.Seed)
	if err != nil {
		return nil, err
	}
	scopes := []struct {
		key    string
		scope  dtm.Scope
		policy dtm.Kind
	}{
		{"stopgo", dtm.ScopePerCore, dtm.StopAndGo},
		{"sedation", dtm.ScopePerCore, dtm.SelectiveSedation},
		{"chip-rr", dtm.ScopeChip, dtm.ChipRoundRobin},
	}
	var jobs []multiJob
	for _, b := range o.Benchmarks {
		victim, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		ct := make([][]sim.Thread, top.Cores)
		ct[0] = []sim.Thread{v2}
		ct[1] = []sim.Thread{victim}
		for c := 2; c < top.Cores; c++ {
			ct[c] = []sim.Thread{benign}
		}
		for _, sc := range scopes {
			jobs = append(jobs, multiCoreJob(o, b+"/"+sc.key, ct, sc.scope, sc.policy))
		}
	}
	results, sum, err := runMultiSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "DTM scope: victim throughput under per-core vs chip-wide management (trojan on core 0)",
		Columns: []string{"benchmark", "IPC stopgo", "IPC sedation", "IPC chip-rr",
			"stall% stopgo", "stall% sedation", "stall% chip-rr"},
	}
	for _, b := range o.Benchmarks {
		row := []string{b}
		vals := make([]string, 0, 6)
		ok := true
		var ipc, stall []string
		for _, sc := range scopes {
			r, found := results[b+"/"+sc.key]
			if !found {
				ok = false
				break
			}
			v := r.Cores[1]
			ipc = append(ipc, f2(v.Threads[0].IPC))
			stall = append(stall, pct(float64(v.StopGoCycles)/float64(r.Cycles)))
		}
		if !ok {
			continue
		}
		vals = append(vals, ipc...)
		vals = append(vals, stall...)
		table.Rows = append(table.Rows, append(row, vals...))
	}
	table.Notes = append(table.Notes,
		fmt.Sprintf("%d-core %s die, grid %d; chip-rr rotates a temperature-banded throttle over all cores (CoMeT-style)",
			top.Cores, top.Solver, top.EffectiveGridN()))
	table.Summary = sum
	return table, nil
}
