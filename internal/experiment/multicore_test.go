package experiment

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

// multiOptions builds options for the multi-core experiments: one
// benchmark, a 16-cell grid, and 64x thermal acceleration so
// cross-core conduction (milliseconds of thermal time) is visible
// inside an affordable quantum.
func multiOptions() Options {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 1_500_000
	cfg.Thermal.Scale = 64
	cfg.Topology = config.Topology{Cores: 2, Solver: config.SolverGrid, GridN: 16}
	return Options{
		Config:     &cfg,
		Benchmarks: []string{"gcc"},
		Warmup:     50_000,
	}
}

func cell(t *testing.T, tb *Table, row int, col string) string {
	t.Helper()
	for i, c := range tb.Columns {
		if c == col {
			return tb.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, tb.Columns)
	return ""
}

func cellF(t *testing.T, tb *Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tb, row, col), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("column %q = %q: %v", col, s, err)
	}
	return v
}

func TestNeighborHeatSmoke(t *testing.T) {
	tb, err := NeighborHeat(context.Background(), multiOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	victim := cellF(t, tb, 0, "victim IntReg trojan K")
	trojanCore := cellF(t, tb, 0, "trojan core peak K")
	if victim < 300 || victim > 400 {
		t.Errorf("victim temperature %v K implausible", victim)
	}
	// The trojan core runs Variant2: it must end up hotter than the
	// victim core running a SPEC program.
	if trojanCore <= victim {
		t.Errorf("trojan core peak %v K not above victim %v K", trojanCore, victim)
	}
	if ipc := cellF(t, tb, 0, "victim IPC benign"); ipc <= 0 {
		t.Errorf("victim IPC %v", ipc)
	}
}

// TestNeighborHeatShowsCoupling runs long enough for conduction to
// arrive and checks the victim core is measurably hotter next to the
// trojan than next to a benign neighbor.
func TestNeighborHeatShowsCoupling(t *testing.T) {
	o := multiOptions()
	o.Config.Run.QuantumCycles = 2_500_000
	tb, err := NeighborHeat(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	benign := cellF(t, tb, 0, "victim IntReg benign K")
	trojan := cellF(t, tb, 0, "victim IntReg trojan K")
	if trojan <= benign {
		t.Errorf("victim IntReg %v K next to trojan not above %v K next to benign neighbor",
			trojan, benign)
	}
	slow := cellF(t, tb, 0, "slowdown")
	if slow < -100 || slow > 100 {
		t.Errorf("slowdown %v%% implausible", slow)
	}
}

func TestDTMScopeSmoke(t *testing.T) {
	o := multiOptions()
	o.Config.Run.QuantumCycles = 800_000
	tb, err := DTMScope(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(tb.Rows))
	}
	for _, col := range []string{"IPC stopgo", "IPC sedation", "IPC chip-rr"} {
		if v := cellF(t, tb, 0, col); v <= 0 || v > 8 {
			t.Errorf("%s = %v implausible", col, v)
		}
	}
	for _, col := range []string{"stall% stopgo", "stall% sedation", "stall% chip-rr"} {
		if v := cellF(t, tb, 0, col); v < 0 || v > 100 {
			t.Errorf("%s = %v implausible", col, v)
		}
	}
}

// TestMultiExperimentDeterminism checks both multi-core experiments
// render byte-identically across parallelism and the fork-tree flag:
// whole-die jobs always run cold, so neither knob may change a byte.
func TestMultiExperimentDeterminism(t *testing.T) {
	for _, name := range []string{NameNeighborHeat, NameDTMScope} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			base := multiOptions()
			base.Config.Run.QuantumCycles = 600_000
			var want string
			for i, variant := range []struct {
				par  int
				fork bool
			}{{1, false}, {4, false}, {4, true}} {
				o := base
				o.Parallelism = variant.par
				o.ForkTree = variant.fork
				tb, err := RunContext(context.Background(), name, o)
				if err != nil {
					t.Fatal(err)
				}
				got := tb.String()
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("parallel=%d fork=%v render differs:\n%s\n--- want ---\n%s",
						variant.par, variant.fork, got, want)
				}
			}
		})
	}
}

func TestMultiExperimentRegistry(t *testing.T) {
	for _, name := range []string{NameNeighborHeat, NameDTMScope} {
		in, ok := Describe(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if in.Cores != 2 || in.Solver != config.SolverGrid {
			t.Errorf("%s: cores=%d solver=%q, want 2/grid", name, in.Cores, in.Solver)
		}
		if in.WarmupCycles != DefaultWarmupCycles {
			t.Errorf("%s: warmup %d", name, in.WarmupCycles)
		}
	}
	for _, in := range Infos() {
		switch in.Name {
		case NameNeighborHeat, NameDTMScope, NameTable1:
		default:
			if in.Cores != 1 || in.Solver != config.SolverLumped {
				t.Errorf("%s: cores=%d solver=%q, want 1/lumped", in.Name, in.Cores, in.Solver)
			}
		}
	}
}

// TestMultiExperimentWarmKeys: multi-core jobs run cold, so WarmKeys
// must report nothing to ship — and must not simulate (the options
// here carry the full default 500M-cycle quantum; enumeration returning
// quickly is itself the proof).
func TestMultiExperimentWarmKeys(t *testing.T) {
	cfg := config.Default()
	o := Options{Config: &cfg, Benchmarks: []string{"gcc", "mcf"}}
	for _, name := range []string{NameNeighborHeat, NameDTMScope} {
		keys, err := WarmKeys(context.Background(), name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(keys) != 0 {
			t.Errorf("%s: warm keys %v, want none", name, keys)
		}
	}
}
