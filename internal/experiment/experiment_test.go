package experiment

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sweep"
)

// tinyOptions keeps experiment smoke tests fast: two benchmarks, short
// quanta.
func tinyOptions() Options {
	cfg := config.Default()
	cfg.Run.QuantumCycles = 300_000
	return Options{
		Config:     &cfg,
		Benchmarks: []string{"crafty", "mcf"},
		Warmup:     100_000,
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
		Notes:   []string{"n"},
	}
	out := tb.String()
	for _, want := range []string{"T\n", "a", "bb", "xxx", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable1(t *testing.T) {
	tb, err := Table1(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 15 {
		t.Errorf("only %d parameter rows", len(tb.Rows))
	}
	if !strings.Contains(tb.String(), "6, out-of-order") {
		t.Error("issue width missing")
	}
}

func TestFigure3Smoke(t *testing.T) {
	tb, err := Figure3(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// 2 benchmarks + 3 variants.
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	rates := map[string]float64{}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad rate %q", row[1])
		}
		rates[row[0]] = v
	}
	if rates["crafty"] <= rates["mcf"] {
		t.Error("crafty should out-access mcf at the register file")
	}
	for name, r := range rates {
		if r < 0 || r > 20 {
			t.Errorf("%s rate %f implausible", name, r)
		}
	}
}

func TestFigure4Smoke(t *testing.T) {
	tb, err := Figure4(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 || len(tb.Columns) != 4 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if _, err := strconv.Atoi(cell); err != nil {
				t.Errorf("non-integer emergency count %q", cell)
			}
		}
	}
}

func TestFigure5Smoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	tb, err := Figure5(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Columns) != 12 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
	if len(tb.Notes) == 0 {
		t.Error("figure 5 should carry the degradation note")
	}
}

func TestFigure6Smoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"mcf"}
	tb, err := Figure6(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, cell := range tb.Rows[0][1:] {
		if !strings.HasSuffix(cell, "%") {
			t.Errorf("breakdown cell %q not a percentage", cell)
		}
	}
}

func TestThresholdsSmoke(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	tb, err := Thresholds(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 || len(tb.Columns) != 7 {
		t.Fatalf("shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
}

func TestSpecPairsSmoke(t *testing.T) {
	tb, err := SpecPairs(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	if _, err := SpecPairs(context.Background(), o); err == nil {
		t.Error("single benchmark should fail")
	}
}

func TestAblationMultiCulpritSmoke(t *testing.T) {
	o := tinyOptions()
	tb, err := AblationMultiCulprit(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d (want 4 threads)", len(tb.Rows))
	}
}

func TestRunDispatch(t *testing.T) {
	if len(Names()) != 17 {
		t.Errorf("names = %v", Names())
	}
	if _, err := Run("nonsense", tinyOptions()); err == nil {
		t.Error("unknown experiment should fail")
	}
	tb, err := Run(NameTable1, tinyOptions())
	if err != nil || tb == nil {
		t.Errorf("dispatch failed: %v", err)
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Config == nil || len(o.Benchmarks) < 16 || o.Quantum <= 0 || o.Parallelism < 1 || o.Warmup <= 0 {
		t.Errorf("normalized = %+v", o)
	}
	sub := Options{Benchmarks: []string{"a", "b", "c", "d", "e", "f", "g", "h"}}.subset()
	if len(sub) == 0 || len(sub) > 6 {
		t.Errorf("subset = %v", sub)
	}
}

func TestRunSweepPropagatesErrors(t *testing.T) {
	o := tinyOptions().normalized()
	spec, err := specThread("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	good := soloJob(o, "good", spec, dtm.StopAndGo, false)
	bad := soloJob(o, "bad", spec, "voodoo-policy", false)
	o.Parallelism = 1
	results, sum, err := runSweep(context.Background(), []job{good, bad}, o)
	if err == nil {
		t.Error("bad policy job should surface an error")
	}
	if results != nil {
		t.Errorf("results should be nil on error, got %v", results)
	}
	// The summary still accounts for the work that did complete.
	if sum == nil || sum.Jobs != 2 || sum.Succeeded != 1 || sum.Failed != 1 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestRunSweepCancellation(t *testing.T) {
	o := tinyOptions().normalized()
	spec, err := specThread("crafty", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var jobs []job
	for i := 0; i < 4; i++ {
		jobs = append(jobs, soloJob(o, fmt.Sprintf("j%d", i), spec, dtm.StopAndGo, false))
	}
	_, sum, err := runSweep(ctx, jobs, o)
	if err == nil {
		t.Error("cancelled sweep should return an error")
	}
	if sum.Skipped == 0 {
		t.Errorf("cancelled sweep should skip jobs: %+v", sum)
	}
}

func TestSeedSentinelAndSeedSet(t *testing.T) {
	cfg := config.Default()
	cfg.Run.Seed = 42

	// Historical behaviour: Seed 0 without SeedSet falls back to the
	// config's seed.
	o := Options{Config: &cfg}.normalized()
	if o.Seed != 42 {
		t.Errorf("Seed 0 should normalize to config seed 42, got %d", o.Seed)
	}
	// SeedSet makes literal seed 0 requestable.
	o = Options{Config: &cfg, SeedSet: true}.normalized()
	if o.Seed != 0 {
		t.Errorf("SeedSet Seed 0 should stay 0, got %d", o.Seed)
	}
	// Nonzero seeds pass through either way.
	o = Options{Config: &cfg, Seed: 7}.normalized()
	if o.Seed != 7 {
		t.Errorf("Seed 7 should stay 7, got %d", o.Seed)
	}

	// ResolvedSeed mirrors normalization without mutating.
	cases := []struct {
		o    Options
		want int64
	}{
		{Options{Config: &cfg}, 42},
		{Options{Config: &cfg, SeedSet: true}, 0},
		{Options{Config: &cfg, Seed: 9}, 9},
		{Options{Config: &cfg, Seed: 9, SeedSet: true}, 9},
		{Options{}, config.Default().Run.Seed},
	}
	for i, c := range cases {
		if got := c.o.ResolvedSeed(); got != c.want {
			t.Errorf("case %d: ResolvedSeed = %d, want %d", i, got, c.want)
		}
	}
}

// TestSeedZeroRunnable: a literal seed-0 experiment must actually run
// (the server round-trips seed 0 through cache keys).
func TestSeedZeroRunnable(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	o.SeedSet = true
	tb, err := Figure3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 { // 1 benchmark + 3 variants
		t.Errorf("rows = %d", len(tb.Rows))
	}
}

func TestRegistryMetadata(t *testing.T) {
	infos := Infos()
	if len(infos) != len(Names()) {
		t.Fatalf("%d infos for %d names", len(infos), len(Names()))
	}
	for i, name := range Names() {
		if infos[i].Name != name {
			t.Errorf("info %d: name %q out of order (want %q)", i, infos[i].Name, name)
		}
		in, ok := Describe(name)
		if !ok || in.Title == "" || in.Description == "" {
			t.Errorf("Describe(%q) = %+v, %v", name, in, ok)
		}
		// Every registered experiment must dispatch.
		if _, err := RunContext(context.Background(), name, Options{}); err != nil && strings.Contains(err.Error(), "unknown experiment") {
			t.Errorf("registered experiment %q does not dispatch", name)
		}
		break // dispatching all 14 for real would be slow; table1 suffices
	}
	if _, ok := Describe("nope"); ok {
		t.Error("Describe should reject unknown names")
	}
}

// TestExperimentProgress: the Options.Progress hook sees one monotonic
// event per simulation with the sweep's metrics attached.
func TestExperimentProgress(t *testing.T) {
	o := tinyOptions()
	o.Benchmarks = []string{"crafty"}
	var events []int
	var lastPeak float64
	o.Progress = func(p sweep.Progress) {
		events = append(events, p.Completed)
		if p.Total != 4 {
			t.Errorf("Total = %d, want 4", p.Total)
		}
		if v, ok := p.Metrics[sweep.MetricPeakTempK]; ok {
			lastPeak = v
		}
	}
	if _, err := Figure3(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d progress events, want 4", len(events))
	}
	for i, c := range events {
		if c != i+1 {
			t.Errorf("event %d: Completed = %d", i, c)
		}
	}
	if lastPeak == 0 {
		t.Error("progress events carried no peak temperature metric")
	}
}
