package experiment

import (
	"bytes"
	"context"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// TestTracingDoesNotPerturbResults is the observer-effect gate: an
// experiment run under a live tracer (every sweep.job, warmup, and
// sim.quantum span recorded) renders a byte-identical table to the
// same run with tracing absent. Spans observe the simulation; they
// must never feed back into it.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for _, name := range []string{NameFigure3, NameFigure4} {
		name := name
		t.Run(name, func(t *testing.T) {
			render := func(ctx context.Context) string {
				o := tinyOptions()
				o.Seed = 11
				o.Parallelism = 2
				tb, err := RunContext(ctx, name, o)
				if err != nil {
					t.Fatal(err)
				}
				var csv bytes.Buffer
				if err := tb.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				return tb.String() + csv.String()
			}

			plain := render(context.Background())

			tr := tracing.NewTracer("test", 0)
			tctx, root := tracing.StartSpan(tracing.ContextWithTracer(context.Background(), tr), "experiment.test")
			traced := render(tctx)
			root.End()

			if plain != traced {
				t.Errorf("tracing perturbed the rendered result:\n--- off\n%s\n--- on\n%s", plain, traced)
			}
			if tr.Recorded() == 0 {
				t.Error("tracer recorded no spans: the traced run was not actually traced")
			}
		})
	}
}
