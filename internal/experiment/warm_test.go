package experiment

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
)

// warmJobs builds ten jobs sharing one warm key: same config, threads,
// and warmup, differing only in DTM policy and observation options —
// exactly the axes a warm key must ignore.
func warmJobs(t *testing.T, o Options) []job {
	t.Helper()
	spec, err := specThread("crafty", o.Seed)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := variantThread(2, o.Config.Thermal.Scale)
	if err != nil {
		t.Fatal(err)
	}
	var jobs []job
	for _, policy := range dtm.Kinds() {
		for _, events := range []bool{false, true} {
			j := pairJob(o, string(policy)+map[bool]string{false: "", true: "/ev"}[events],
				spec, v2, policy, false)
			j.opts.CollectEvents = events
			jobs = append(jobs, j)
		}
	}
	return jobs
}

// TestSweepWarmupReuse is the acceptance test for warmup-snapshot
// reuse: ten jobs sharing one warm key run warmup exactly once, and
// every result is identical to the cold-warmup path.
func TestSweepWarmupReuse(t *testing.T) {
	o := tinyOptions().normalized()
	o.Parallelism = 4
	jobs := warmJobs(t, o)
	if len(jobs) < 8 {
		t.Fatalf("only %d jobs", len(jobs))
	}
	key := warmKey(o, jobs[0])
	for _, j := range jobs[1:] {
		if warmKey(o, j) != key {
			t.Fatalf("job %s has a different warm key", j.key)
		}
	}

	restores := 0
	var mu sync.Mutex
	o.OnRestore = func(float64) { mu.Lock(); restores++; mu.Unlock() }

	warmed, sum, err := runSweep(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if sum.WarmupRuns != 1 || sum.WarmupReused != len(jobs)-1 {
		t.Fatalf("warmups = %d runs / %d reused, want 1 / %d",
			sum.WarmupRuns, sum.WarmupReused, len(jobs)-1)
	}
	if restores != len(jobs) {
		t.Fatalf("OnRestore fired %d times, want %d", restores, len(jobs))
	}

	cold := o
	cold.DisableWarmupReuse = true
	cold.OnRestore = func(float64) { t.Error("cold path must not restore") }
	coldRes, coldSum, err := runSweep(context.Background(), jobs, cold)
	if err != nil {
		t.Fatal(err)
	}
	if coldSum.WarmupRuns != 0 || coldSum.WarmupReused != 0 {
		t.Fatalf("cold path reported warmup sharing: %d/%d", coldSum.WarmupRuns, coldSum.WarmupReused)
	}
	for k, want := range coldRes {
		if got := warmed[k]; !reflect.DeepEqual(want, got) {
			t.Errorf("job %s: warm-reused result differs from cold run", k)
		}
	}
}

// TestWarmKeySeparatesMachines: anything that changes the post-warmup
// state — config, programs, warmup length, code version — must change
// the key.
func TestWarmKeySeparates(t *testing.T) {
	o := tinyOptions().normalized()
	jobs := warmJobs(t, o)
	base := warmKey(o, jobs[0])

	ideal := jobs[0]
	ideal.cfg.Thermal.IdealSink = true
	if warmKey(o, ideal) == base {
		t.Error("ideal-sink config shares the real-sink key")
	}

	solo := jobs[0]
	solo.threads = solo.threads[:1]
	if warmKey(o, solo) == base {
		t.Error("different threads share a key")
	}

	longer := jobs[0]
	longer.opts.WarmupCycles++
	if warmKey(o, longer) == base {
		t.Error("different warmup lengths share a key")
	}

	ov := o
	ov.CodeVersion = "other"
	if warmKey(ov, jobs[0]) == base {
		t.Error("different code versions share a key")
	}
}

// memStore is an in-memory SnapshotStore.
type memStore struct {
	mu   sync.Mutex
	m    map[string]*sim.MachineState
	hits int
	puts int
}

func (s *memStore) Get(key string) (*sim.MachineState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms, ok := s.m[key]
	if ok {
		s.hits++
	}
	return ms, ok
}

func (s *memStore) Put(key string, ms *sim.MachineState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m == nil {
		s.m = make(map[string]*sim.MachineState)
	}
	s.m[key] = ms
	s.puts++
}

// TestWarmupCacheAcrossRuns: a persistent store turns the second run's
// warmup into a cache hit, with identical results.
func TestWarmupCacheAcrossRuns(t *testing.T) {
	o := tinyOptions().normalized()
	o.Parallelism = 2
	store := &memStore{}
	o.WarmupCache = store
	jobs := warmJobs(t, o)[:4]

	first, sum1, err := runSweep(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if store.puts != 1 {
		t.Fatalf("first run put %d snapshots, want 1", store.puts)
	}
	if sum1.WarmupRuns != 1 {
		t.Fatalf("first run warmups = %d", sum1.WarmupRuns)
	}

	second, sum2, err := runSweep(context.Background(), jobs, o)
	if err != nil {
		t.Fatal(err)
	}
	if store.hits == 0 {
		t.Fatal("second run never hit the cache")
	}
	if store.puts != 1 {
		t.Fatalf("second run re-put the snapshot (%d puts)", store.puts)
	}
	// The cache-served warm state still counts as this sweep's one
	// warmup execution slot; no extra warmups run.
	if sum2.WarmupRuns != 1 {
		t.Fatalf("second run warmups = %d", sum2.WarmupRuns)
	}
	for k, want := range first {
		if !reflect.DeepEqual(want, second[k]) {
			t.Errorf("job %s: cached-warmup result differs", k)
		}
	}
}
