package experiment

import (
	"context"
	"fmt"
	"testing"
)

// forkEquivOptions keeps the differential runs fast: two benchmarks,
// short quanta, explicit quantum so ablations don't raise it.
func forkEquivOptions(benches ...string) Options {
	o := tinyOptions()
	o.Quantum = 300_000
	if len(benches) > 0 {
		o.Benchmarks = benches
	}
	return o
}

// TestForkTreeEquivalence is the differential equivalence suite: for
// each experiment rewired through the fork tree, the fork-tree table
// must be byte-for-byte identical to the cold per-variant run it
// replaces. The policies experiment covers all five DTM kinds; the
// fast-forward switch is exercised on both settings for the threshold
// and policy sweeps, so equivalence is proven on both simulator code
// paths. Gated in CI by the standard test job.
func TestForkTreeEquivalence(t *testing.T) {
	cases := []struct {
		experiment string
		opts       Options
		noFF       []bool
	}{
		{NameThresholds, forkEquivOptions(), []bool{false, true}},
		{NamePolicies, forkEquivOptions(), []bool{false, true}},
		{NameThresholdsDense, forkEquivOptions("crafty"), []bool{false}},
		{NameFlatAvg, forkEquivOptions(), []bool{false}},
		{NameAbsThresh, forkEquivOptions(), []bool{false}},
	}
	for _, tc := range cases {
		for _, noFF := range tc.noFF {
			tc, noFF := tc, noFF
			name := fmt.Sprintf("%s/ff=%v", tc.experiment, !noFF)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				o := tc.opts
				o.DisableFastForward = noFF

				cold := o
				cold.DisableWarmupReuse = true
				coldTb, err := RunContext(context.Background(), tc.experiment, cold)
				if err != nil {
					t.Fatal(err)
				}

				fork := o
				fork.ForkTree = true
				forkTb, err := RunContext(context.Background(), tc.experiment, fork)
				if err != nil {
					t.Fatal(err)
				}

				if coldTb.String() != forkTb.String() {
					t.Errorf("fork-tree table differs from cold run:\n--- cold\n%s\n--- fork\n%s",
						coldTb.String(), forkTb.String())
				}
				if forkTb.Summary.ForkPrefixes == 0 || forkTb.Summary.ForkReused == 0 {
					t.Errorf("fork tree shared nothing: %d prefixes, %d reused",
						forkTb.Summary.ForkPrefixes, forkTb.Summary.ForkReused)
				}
				if forkTb.Summary.ForkPrefixes >= forkTb.Summary.Jobs {
					t.Errorf("fork tree ran %d prefixes for %d jobs — no sharing",
						forkTb.Summary.ForkPrefixes, forkTb.Summary.Jobs)
				}
				if coldTb.Summary.ForkPrefixes != 0 || coldTb.Summary.WarmupRuns != 0 {
					t.Errorf("cold run reported sharing: %+v", coldTb.Summary)
				}
			})
		}
	}
}

// TestForkTreeSharesAcrossThresholds pins the WarmDigest relaxation's
// payoff: the dense threshold grid's 14 variants of one benchmark fork
// from a single warm prefix instead of warming 14 times.
func TestForkTreeSharesAcrossThresholds(t *testing.T) {
	o := forkEquivOptions("crafty")
	o.ForkTree = true
	tb, err := RunContext(context.Background(), NameThresholdsDense, o)
	if err != nil {
		t.Fatal(err)
	}
	// 15 jobs (1 solo + 14 threshold pairs), 2 prefixes (solo has one
	// thread, the pairs share one two-thread warm state).
	if tb.Summary.Jobs != 15 {
		t.Fatalf("jobs = %d, want 15", tb.Summary.Jobs)
	}
	if tb.Summary.ForkPrefixes != 2 {
		t.Errorf("ForkPrefixes = %d, want 2 (one per thread set, not one per grid point)", tb.Summary.ForkPrefixes)
	}
	if tb.Summary.ForkReused != 13 {
		t.Errorf("ForkReused = %d, want 13", tb.Summary.ForkReused)
	}
}
