package experiment

import (
	"context"

	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/stats"
)

// Timing measures the heat-stroke duty cycle the paper derives in
// Section 3.1: how long the attack takes to heat the register file to
// the emergency temperature, how long each forced cooling stall lasts,
// and the resulting duty cycle ("1.2/(1.2+12.5) = 0.09" in the paper,
// at the paper's time base). Times are reported both in scaled cycles
// (as simulated) and milliseconds at the paper's 4 GHz / scale-1 base.
func Timing(ctx context.Context, o Options) (*Table, error) {
	explicitQuantum := o.Quantum > 0
	o = o.normalized()
	benches := o.subset()
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		j := pairJob(o, b, spec, v2, dtm.StopAndGo, false)
		j.opts.TraceTemps = true
		// Timing statistics want several heat-cool cycles, so the
		// config default is raised — but an explicitly requested
		// quantum is honoured as-is.
		if !explicitQuantum && j.cfg.Run.QuantumCycles < 12_000_000 {
			j.cfg.Run.QuantumCycles = 12_000_000
		}
		jobs = append(jobs, j)
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Section 3.1 timing: heat-up and cooling durations under Variant2 (stop-and-go)",
		Columns: []string{
			"benchmark", "emergencies", "heat (Mcycles)", "cool (Mcycles)",
			"heat (ms @ scale 1)", "cool (ms @ scale 1)", "duty cycle",
		},
	}
	interval := float64(o.Config.Thermal.SensorIntervalCycles)
	scale := o.Config.Thermal.Scale
	freq := o.Config.Power.FrequencyHz
	toMs := func(cycles float64) float64 { return cycles * scale / freq * 1e3 }
	for _, b := range benches {
		r := results[b]
		heat, cool := heatCoolDurations(r, o.Config.Thermal.EmergencyK, interval)
		if len(heat) == 0 {
			table.Rows = append(table.Rows, []string{b, "0", "-", "-", "-", "-", "1.00"})
			continue
		}
		h, c := stats.Mean(heat), stats.Mean(cool)
		duty := h / (h + c)
		table.Rows = append(table.Rows, []string{
			b,
			fmt.Sprintf("%d", r.Emergencies),
			f2(h / 1e6), f2(c / 1e6),
			f2(toMs(h)), f2(toMs(c)),
			f2(duty),
		})
	}
	table.Notes = append(table.Notes,
		"paper (Section 3.1): a mildly malicious thread heats the register file in ~1.2 ms, each cooling stall is ~12.5 ms, duty cycle ~0.09")
	table.Summary = sum
	return table, nil
}

// heatCoolDurations extracts heat-up runs (resume -> emergency) and
// cooling stalls from the register-file temperature trace. The trace is
// sampled once per sensor interval; a cooling stall is the fixed
// cooling period, recovered from the result's stall accounting.
func heatCoolDurations(r *sim.Result, emergencyK, intervalCycles float64) (heat, cool []float64) {
	trace := r.RFTrace
	if len(trace) == 0 {
		return nil, nil
	}
	heatStart := 0
	above := false
	for i, temp := range trace {
		if !above && temp >= emergencyK {
			above = true
			heat = append(heat, float64(i-heatStart)*intervalCycles)
		} else if above && temp < emergencyK {
			above = false
			heatStart = i
		}
	}
	if r.Emergencies > 0 {
		per := float64(r.StopGoCycles) / float64(r.Emergencies)
		for i := 0; i < r.Emergencies; i++ {
			cool = append(cool, per)
		}
	}
	return heat, cool
}

// AblationFetchPolicy isolates the ICOUNT fetch policy's role: Variant1
// (the high-IPC aggressor) monopolizes fetch under ICOUNT but not under
// round-robin, yet heat stroke persists either way — the paper's
// argument that the attack "does not exploit ICOUNT in any way"
// (Section 1) made concrete.
func AblationFetchPolicy(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v1, err := variantThread(1, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		for _, pol := range []string{"icount", "rr"} {
			ideal := pairJob(o, b+"/"+pol+"/ideal", spec, v1, dtm.None, true)
			ideal.cfg.Pipeline.FetchPolicy = pol
			real := pairJob(o, b+"/"+pol+"/real", spec, v1, dtm.StopAndGo, false)
			real.cfg.Pipeline.FetchPolicy = pol
			jobs = append(jobs, ideal, real)
		}
		jobs = append(jobs, soloJob(o, b+"/solo", spec, dtm.None, true))
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title: "Ablation: fetch policy (victim IPC with Variant1)",
		Columns: []string{
			"benchmark", "solo",
			"icount ideal-sink", "icount realistic",
			"rr ideal-sink", "rr realistic",
		},
	}
	for _, b := range benches {
		table.Rows = append(table.Rows, []string{
			b,
			f2(results[b+"/solo"].Threads[0].IPC),
			f2(results[b+"/icount/ideal"].Threads[0].IPC),
			f2(results[b+"/icount/real"].Threads[0].IPC),
			f2(results[b+"/rr/ideal"].Threads[0].IPC),
			f2(results[b+"/rr/real"].Threads[0].IPC),
		})
	}
	table.Notes = append(table.Notes,
		"ideal-sink columns show the pure fetch-competition cost; realistic columns add the thermal attack, which survives the round-robin policy")
	table.Summary = sum
	return table, nil
}

// Policies compares every DTM baseline against the same Variant2
// attack: the victim's IPC and the machine's emergency behaviour under
// no management, stop-and-go, DVS, TTDFS, and selective sedation.
func Policies(ctx context.Context, o Options) (*Table, error) {
	o = o.normalized()
	benches := o.subset()
	kinds := []dtm.Kind{dtm.None, dtm.StopAndGo, dtm.DVS, dtm.TTDFS, dtm.SelectiveSedation}
	var jobs []job
	for _, b := range benches {
		spec, err := specThread(b, o.Seed)
		if err != nil {
			return nil, err
		}
		v2, err := variantThread(2, o.Config.Thermal.Scale)
		if err != nil {
			return nil, err
		}
		for _, k := range kinds {
			jobs = append(jobs, pairJob(o, b+"/"+string(k), spec, v2, k, false))
		}
	}
	results, sum, err := runSweep(ctx, jobs, o)
	if err != nil {
		return nil, err
	}
	table := &Table{
		Title:   "DTM policy comparison under Variant2 (victim IPC / peak K)",
		Columns: []string{"benchmark", "none", "stopgo", "dvs", "ttdfs", "sedation"},
	}
	for _, b := range benches {
		row := []string{b}
		for _, k := range kinds {
			r := results[b+"/"+string(k)]
			row = append(row, fmt.Sprintf("%s/%.1f", f2(r.Threads[0].IPC), r.PeakTemp))
		}
		table.Rows = append(table.Rows, row)
	}
	table.Notes = append(table.Notes,
		"'none' and 'ttdfs' let the die exceed the emergency temperature (the paper's reason for excluding TTDFS); sedation keeps both the victim fast and the die cool")
	table.Summary = sum
	return table, nil
}
