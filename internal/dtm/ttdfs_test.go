package dtm

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

func TestTTDFSThrottleTracksTemperature(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{}
	p := NewTTDFS(pipe, th)
	if p.Name() != TTDFS || p.Engine() != nil {
		t.Fatal("identity wrong")
	}
	trigger := th.EmergencyK - 2.5

	p.Tick(0, trigger-0.5, flatTemps(0))
	if pipe.thDen != 0 && pipe.thNum != 0 {
		t.Fatal("should not throttle below trigger")
	}
	p.Tick(1, trigger+0.5, flatTemps(0))
	lvl1 := pipe.thNum
	if lvl1 < 1 {
		t.Fatal("should throttle above trigger")
	}
	p.Tick(2, trigger+2.5, flatTemps(0))
	if pipe.thNum <= lvl1 {
		t.Fatalf("deeper throttle expected: %d -> %d", lvl1, pipe.thNum)
	}
	// The defining flaw: no global stall even far above the emergency
	// temperature.
	p.Tick(3, th.EmergencyK+10, flatTemps(0))
	if pipe.stalled {
		t.Fatal("TTDFS must not stall (its documented flaw)")
	}
	if pipe.thNum > ttdfsMaxLevel {
		t.Fatalf("throttle level %d beyond max", pipe.thNum)
	}
	// Cooling releases the throttle.
	p.Tick(4, trigger-1, flatTemps(0))
	if pipe.thNum != 0 {
		t.Fatal("throttle should release when cool")
	}
}
