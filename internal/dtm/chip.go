// Chip-wide DTM scope. The paper's five policies each watch one
// core's sensors and actuate that core's pipeline; on a multi-core
// die that is the "per-core" scope and they run unchanged, one
// instance per core. The chip scope instead observes every core and
// decides globally — the CoMeT-style round-robin throttle below —
// trading single-core responsiveness for fairness: the throttle burden
// rotates over the whole die instead of pinning whichever core happens
// to host the hot spot (which, under a neighbor-heat attack, is the
// victim rather than the attacker).
package dtm

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// Scope selects whether DTM observes and actuates one core or the
// whole chip.
type Scope string

// Scopes.
const (
	ScopePerCore Scope = "per-core"
	ScopeChip    Scope = "chip"
)

// ChipRoundRobin is the chip-scope policy kind.
const ChipRoundRobin Kind = "chip-rr"

// ChipPolicy reacts to the whole die's temperatures once per sensor
// interval.
type ChipPolicy interface {
	// Name returns the policy kind.
	Name() Kind
	// TickChip observes each core's hottest-unit temperature and
	// actuates the per-core pipelines. len(coreMaxT) matches the
	// pipeline count the policy was built with.
	TickChip(cycle int64, coreMaxT []float64)
}

// chipRR is the CoMeT-style chip round-robin throttle (SNIPPETS.md
// #3): the number of simultaneously throttled cores follows how far
// the chip's hottest sensor sits above the trigger, in bandK steps,
// and *which* cores take the throttle rotates one position per tick.
// A chip-wide stop-and-go safety net underneath halts every core at
// the emergency temperature, mirroring the per-core policies.
type chipRR struct {
	pipes   []Pipeline
	trigger float64
	bandK   float64
	cursor  int
	depth   int

	emergency     float64
	coolingCycles int64
	engaged       bool
	resumeAt      int64
	Engagements   uint64
	events        *telemetry.EventLog
}

// NewChipRoundRobin builds the chip round-robin throttle over one
// pipeline per core. coolingCycles is the package's thermal-RC cooling
// time in (scaled) cycles, shared with the per-core policies.
func NewChipRoundRobin(pipes []Pipeline, t config.Thermal, coolingCycles int64) (ChipPolicy, error) {
	if len(pipes) == 0 {
		return nil, fmt.Errorf("dtm: chip policy needs at least one pipeline")
	}
	return &chipRR{
		pipes:         pipes,
		trigger:       t.EmergencyK - 2.5,
		bandK:         0.5,
		emergency:     t.EmergencyK,
		coolingCycles: coolingCycles,
	}, nil
}

func (c *chipRR) Name() Kind { return ChipRoundRobin }

func (c *chipRR) TickChip(cycle int64, coreMaxT []float64) {
	maxT := coreMaxT[0]
	for _, t := range coreMaxT[1:] {
		if t > maxT {
			maxT = t
		}
	}

	// Chip-wide stop-and-go safety net.
	if c.engaged {
		if cycle >= c.resumeAt {
			c.engaged = false
			for _, p := range c.pipes {
				p.SetGlobalStall(false)
			}
			c.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindStopGoRelease,
				Thread: -1, TempK: maxT})
		}
		return
	}
	if maxT >= c.emergency {
		c.engaged = true
		c.Engagements++
		c.resumeAt = cycle + c.coolingCycles
		for _, p := range c.pipes {
			p.SetGlobalStall(true)
		}
		c.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindStopGoEngage,
			Thread: -1, TempK: maxT})
		return
	}

	// Throttle depth from the hottest sensor's excess, one extra core
	// per band, saturating at the whole chip.
	depth := 0
	if maxT > c.trigger {
		depth = 1 + int((maxT-c.trigger)/c.bandK)
		if depth > len(c.pipes) {
			depth = len(c.pipes)
		}
	}
	c.depth = depth
	// Rotate the burden: cores cursor..cursor+depth-1 (mod n) take the
	// half-speed throttle this interval, everyone else runs free.
	n := len(c.pipes)
	for i, p := range c.pipes {
		throttled := false
		for k := 0; k < depth; k++ {
			if (c.cursor+k)%n == i {
				throttled = true
				break
			}
		}
		if throttled {
			p.SetThrottle(1, 2)
		} else {
			p.SetThrottle(0, 0)
		}
	}
	c.cursor = (c.cursor + 1) % n
}

// ChipState is the serializable actuation state of a chip policy. The
// per-pipeline actuator side effects (stall flags, throttles) live in
// the core states and are restored with them.
type ChipState struct {
	Kind   Kind
	StopGo *StopGoState
	Cursor int
	Depth  int
}

// Clone returns a deep copy.
func (st ChipState) Clone() ChipState {
	out := st
	if st.StopGo != nil {
		sg := *st.StopGo
		out.StopGo = &sg
	}
	return out
}

// SnapshotChip returns a chip policy's actuation state.
func SnapshotChip(p ChipPolicy) (ChipState, error) {
	switch v := p.(type) {
	case *chipRR:
		return ChipState{
			Kind:   ChipRoundRobin,
			StopGo: &StopGoState{Engaged: v.engaged, ResumeAt: v.resumeAt, Engagements: v.Engagements},
			Cursor: v.cursor,
			Depth:  v.depth,
		}, nil
	default:
		return ChipState{}, fmt.Errorf("dtm: cannot snapshot chip policy type %T", p)
	}
}

// RestoreChip loads st into p, which must be a built-in chip policy of
// the matching kind.
func RestoreChip(p ChipPolicy, st ChipState) error {
	if p.Name() != st.Kind {
		return fmt.Errorf("dtm: restoring %q state into %q policy", st.Kind, p.Name())
	}
	switch v := p.(type) {
	case *chipRR:
		if st.StopGo == nil {
			return fmt.Errorf("dtm: %s state missing stop-and-go fields", ChipRoundRobin)
		}
		if st.Cursor < 0 || st.Cursor >= len(v.pipes) || st.Depth < 0 || st.Depth > len(v.pipes) {
			return fmt.Errorf("dtm: chip-rr cursor %d / depth %d invalid for %d cores",
				st.Cursor, st.Depth, len(v.pipes))
		}
		v.engaged = st.StopGo.Engaged
		v.resumeAt = st.StopGo.ResumeAt
		v.Engagements = st.StopGo.Engagements
		v.cursor = st.Cursor
		v.depth = st.Depth
		return nil
	default:
		return fmt.Errorf("dtm: cannot restore chip policy type %T", p)
	}
}

// SetChipEventLog wires a chip policy's safety net to the typed event
// stream.
func SetChipEventLog(p ChipPolicy, log *telemetry.EventLog) {
	if v, ok := p.(*chipRR); ok {
		v.events = log
	}
}

// ChipSafetyNetEngagements returns how many times a chip policy's
// stop-and-go safety net fired.
func ChipSafetyNetEngagements(p ChipPolicy) uint64 {
	if v, ok := p.(*chipRR); ok {
		return v.Engagements
	}
	return 0
}
