// Package dtm implements the dynamic thermal management policies the
// paper evaluates:
//
//   - None: no management (paired with an ideal heat sink for the
//     Figure 5 baseline bars);
//   - StopAndGo: global clock gating, the paper's base case — halt the
//     whole pipeline at the emergency temperature until the hot spot
//     cools to the normal operating temperature;
//   - DVS: throttle frequency and drop Vdd while hot (kept as an
//     ablation baseline; the paper argues it performs like stop-and-go
//     and scales worse);
//   - SelectiveSedation: the paper's contribution (package core), with
//     stop-and-go retained underneath as a safety net.
package dtm

import (
	"fmt"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/power"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

// Kind names a policy.
type Kind string

// Policy kinds.
const (
	None              Kind = "none"
	StopAndGo         Kind = "stopgo"
	DVS               Kind = "dvs"
	TTDFS             Kind = "ttdfs"
	SelectiveSedation Kind = "sedation"
)

// Kinds lists the available policies.
func Kinds() []Kind { return []Kind{None, StopAndGo, DVS, TTDFS, SelectiveSedation} }

// Pipeline is the slice of the core a policy drives.
type Pipeline interface {
	SetGlobalStall(stall bool)
	GlobalStalled() bool
	SetThrottle(num, den int)
}

// VddControl lets the DVS policy scale the supply voltage.
type VddControl interface {
	SetVdd(v float64)
	Vdd() float64
}

// Policy reacts to temperatures once per sensor interval.
type Policy interface {
	// Name returns the policy kind.
	Name() Kind
	// Tick observes the sensors and actuates the pipeline. temp reads
	// a unit's current die temperature; maxT is the hottest unit's.
	Tick(cycle int64, maxT float64, temp func(power.Unit) float64)
	// Engine returns the sedation engine, or nil for other policies.
	Engine() *core.Engine
}

// nonePolicy does nothing.
type nonePolicy struct{}

func (nonePolicy) Name() Kind                                    { return None }
func (nonePolicy) Tick(int64, float64, func(power.Unit) float64) {}
func (nonePolicy) Engine() *core.Engine                          { return nil }

// NewNone returns the do-nothing policy.
func NewNone() Policy { return nonePolicy{} }

// stopGo is global clock gating: at the emergency temperature the whole
// pipeline halts for the package's fixed thermal-RC cooling time
// (Section 2.1: "once this cooling time has elapsed, activity at the
// component can be resumed to full speed").
type stopGo struct {
	pipe          Pipeline
	emergency     float64
	coolingCycles int64
	engaged       bool
	resumeAt      int64
	Engagements   uint64
	events        *telemetry.EventLog
}

// newStopGo builds the shared stop-and-go mechanism.
func newStopGo(pipe Pipeline, t config.Thermal, coolingCycles int64) *stopGo {
	return &stopGo{pipe: pipe, emergency: t.EmergencyK, coolingCycles: coolingCycles}
}

// NewStopAndGo returns the stop-and-go base case. coolingCycles is the
// package's thermal-RC cooling time in (scaled) cycles.
func NewStopAndGo(pipe Pipeline, t config.Thermal, coolingCycles int64) Policy {
	return newStopGo(pipe, t, coolingCycles)
}

func (s *stopGo) Name() Kind           { return StopAndGo }
func (s *stopGo) Engine() *core.Engine { return nil }

func (s *stopGo) Tick(cycle int64, maxT float64, _ func(power.Unit) float64) {
	if s.engaged {
		if cycle >= s.resumeAt {
			s.engaged = false
			s.pipe.SetGlobalStall(false)
			s.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindStopGoRelease,
				Thread: -1, TempK: maxT})
		}
		return
	}
	if maxT >= s.emergency {
		s.engaged = true
		s.Engagements++
		s.resumeAt = cycle + s.coolingCycles
		s.pipe.SetGlobalStall(true)
		s.events.Emit(telemetry.Event{Cycle: cycle, Kind: telemetry.KindStopGoEngage,
			Thread: -1, TempK: maxT})
	}
}

// dvs throttles the clock to half speed and drops Vdd while above the
// trigger temperature, with stop-and-go retained at the emergency
// temperature (DVS alone cannot bound a sustained attack).
type dvs struct {
	pipe      Pipeline
	vdd       VddControl
	trigger   float64
	release   float64
	lowVdd    float64
	nomVdd    float64
	stopGo    *stopGo
	throttled bool
}

// NewDVS returns the DVS baseline. trigger engages throttling a little
// below the emergency temperature.
func NewDVS(pipe Pipeline, vdd VddControl, t config.Thermal, coolingCycles int64) Policy {
	return &dvs{
		pipe:    pipe,
		vdd:     vdd,
		trigger: t.EmergencyK - 2.5,
		release: t.StopGoResumeK,
		nomVdd:  vdd.Vdd(),
		lowVdd:  vdd.Vdd() * 0.85,
		stopGo:  newStopGo(pipe, t, coolingCycles),
	}
}

func (d *dvs) Name() Kind           { return DVS }
func (d *dvs) Engine() *core.Engine { return nil }

func (d *dvs) Tick(cycle int64, maxT float64, temp func(power.Unit) float64) {
	d.stopGo.Tick(cycle, maxT, temp)
	if !d.throttled && maxT >= d.trigger {
		d.throttled = true
		d.pipe.SetThrottle(1, 2)
		d.vdd.SetVdd(d.lowVdd)
	} else if d.throttled && maxT <= d.release {
		d.throttled = false
		d.pipe.SetThrottle(0, 0)
		d.vdd.SetVdd(d.nomVdd)
	}
}

// ttdfs is Temperature-Tracking Dynamic Frequency Scaling ([12] via the
// paper's Section 4): the clock slows in proportion to how far the
// hottest sensor sits above the trigger, and — the scheme's defining
// flaw — there is no hard stop: the processor is allowed to keep
// operating above the emergency temperature, because the scheme assumes
// circuit timing is the only constraint. The paper excludes it as a
// base case for exactly that reason ("TTDFS does not reduce maximum
// temperature or prevent physical overheating"); it is kept here as an
// ablation.
type ttdfs struct {
	pipe    Pipeline
	trigger float64
	// step is the temperature band per extra throttle notch.
	step float64
	// level is the current throttle notch (0..maxLevel).
	level int
	// PeakLevel records the deepest throttle reached.
	PeakLevel int
}

const ttdfsMaxLevel = 6 // deepest slowdown: 6/8 cycles gated

// NewTTDFS returns the TTDFS ablation baseline.
func NewTTDFS(pipe Pipeline, t config.Thermal) Policy {
	return &ttdfs{pipe: pipe, trigger: t.EmergencyK - 2.5, step: 1.0}
}

func (d *ttdfs) Name() Kind           { return TTDFS }
func (d *ttdfs) Engine() *core.Engine { return nil }

func (d *ttdfs) Tick(_ int64, maxT float64, _ func(power.Unit) float64) {
	level := 0
	if maxT > d.trigger {
		level = 1 + int((maxT-d.trigger)/d.step)
		if level > ttdfsMaxLevel {
			level = ttdfsMaxLevel
		}
	}
	if level != d.level {
		d.level = level
		if level > d.PeakLevel {
			d.PeakLevel = level
		}
		d.pipe.SetThrottle(level, 8)
	}
}

// sedation wraps the core engine with the stop-and-go safety net: if,
// despite sedation, any resource reaches the emergency temperature
// (e.g. the last un-sedated thread keeps heating it), the whole
// pipeline halts, every sedated thread is restored, and execution
// resumes at the normal operating temperature.
type sedation struct {
	engine *core.Engine
	net    *stopGo
}

// NewSelectiveSedation returns the paper's policy.
func NewSelectiveSedation(pipe Pipeline, t config.Thermal, engine *core.Engine, coolingCycles int64) (Policy, error) {
	if engine == nil {
		return nil, fmt.Errorf("dtm: selective sedation needs an engine")
	}
	return &sedation{
		engine: engine,
		net:    newStopGo(pipe, t, coolingCycles),
	}, nil
}

func (s *sedation) Name() Kind           { return SelectiveSedation }
func (s *sedation) Engine() *core.Engine { return s.engine }

func (s *sedation) Tick(cycle int64, maxT float64, temp func(power.Unit) float64) {
	wasEngaged := s.net.engaged
	s.net.Tick(cycle, maxT, temp)
	if !wasEngaged && s.net.engaged {
		// Safety net fired: restore all sedated threads (they resume
		// when the stall lifts).
		s.engine.ReleaseAll(cycle)
		return
	}
	if s.net.engaged {
		return
	}
	s.engine.Tick(cycle, temp)
}

// SetEventLog wires a policy's stop-and-go mechanism (direct or
// safety-net) to the typed event stream; policies without one are
// unaffected. The sedation engine's stream is wired separately via
// Engine.SetEvents.
func SetEventLog(p Policy, log *telemetry.EventLog) {
	switch v := p.(type) {
	case *stopGo:
		v.events = log
	case *dvs:
		v.stopGo.events = log
	case *sedation:
		v.net.events = log
	}
}

// SafetyNetEngagements returns how many times a policy's underlying
// stop-and-go fired (0 for policies without one).
func SafetyNetEngagements(p Policy) uint64 {
	switch v := p.(type) {
	case *stopGo:
		return v.Engagements
	case *dvs:
		return v.stopGo.Engagements
	case *sedation:
		return v.net.Engagements
	}
	return 0
}
