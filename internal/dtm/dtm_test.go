package dtm

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	score "github.com/heatstroke-sim/heatstroke/internal/core"
	"github.com/heatstroke-sim/heatstroke/internal/power"
)

// fakePipe implements Pipeline and VddControl.
type fakePipe struct {
	stalled bool
	thNum   int
	thDen   int
	vdd     float64
}

func (f *fakePipe) SetGlobalStall(s bool) { f.stalled = s }
func (f *fakePipe) GlobalStalled() bool   { return f.stalled }
func (f *fakePipe) SetThrottle(n, d int)  { f.thNum, f.thDen = n, d }
func (f *fakePipe) SetVdd(v float64)      { f.vdd = v }
func (f *fakePipe) Vdd() float64          { return f.vdd }

func flatTemps(v float64) func(power.Unit) float64 {
	return func(power.Unit) float64 { return v }
}

func TestStopAndGoFixedCoolingTime(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{}
	p := NewStopAndGo(pipe, th, 1000)
	if p.Name() != StopAndGo || p.Engine() != nil {
		t.Fatal("identity wrong")
	}
	p.Tick(0, th.EmergencyK-1, flatTemps(0))
	if pipe.stalled {
		t.Fatal("stalled below emergency")
	}
	p.Tick(100, th.EmergencyK+0.1, flatTemps(0))
	if !pipe.stalled {
		t.Fatal("must stall at emergency")
	}
	// Stays stalled for the fixed cooling period even if the sensor
	// cools immediately (paper: a fixed thermal-RC timeout).
	p.Tick(600, th.EmergencyK-20, flatTemps(0))
	if !pipe.stalled {
		t.Fatal("resumed before the cooling time elapsed")
	}
	p.Tick(1100, th.EmergencyK-20, flatTemps(0))
	if pipe.stalled {
		t.Fatal("did not resume after the cooling time")
	}
	if SafetyNetEngagements(p) != 1 {
		t.Errorf("engagements = %d", SafetyNetEngagements(p))
	}
	// Re-engages on a second emergency.
	p.Tick(1200, th.EmergencyK+1, flatTemps(0))
	if !pipe.stalled || SafetyNetEngagements(p) != 2 {
		t.Error("second engagement failed")
	}
}

func TestDVSThrottlesAndRestores(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{vdd: 1.1}
	p := NewDVS(pipe, pipe, th, 1000)
	if p.Name() != DVS {
		t.Fatal("name")
	}
	p.Tick(0, th.EmergencyK-2.6, flatTemps(0))
	if pipe.thDen != 0 {
		t.Fatal("throttled below trigger")
	}
	p.Tick(1, th.EmergencyK-2.4, flatTemps(0))
	if pipe.thDen == 0 || pipe.vdd >= 1.1 {
		t.Fatal("DVS should throttle and drop Vdd above trigger")
	}
	p.Tick(2, th.StopGoResumeK-0.1, flatTemps(0))
	if pipe.thDen != 0 || pipe.vdd != 1.1 {
		t.Fatal("DVS should restore below release")
	}
	// Emergency still falls back to stop-and-go.
	p.Tick(3, th.EmergencyK+0.1, flatTemps(0))
	if !pipe.stalled {
		t.Fatal("DVS safety net missing")
	}
}

func TestSelectiveSedationSafetyNet(t *testing.T) {
	cfg := config.Default()
	act := power.NewActivity(2)
	mon, err := score.NewMonitor(cfg.Sedation, act)
	if err != nil {
		t.Fatal(err)
	}
	ctl := &fakeCtl{enabled: []bool{true, true}}
	eng, err := score.NewEngine(cfg.Sedation, mon, ctl, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	pipe := &fakePipe{}
	p, err := NewSelectiveSedation(pipe, cfg.Thermal, eng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Engine() != eng || p.Name() != SelectiveSedation {
		t.Fatal("identity wrong")
	}

	// Prime the monitor so thread 1 is the culprit, then cross the
	// upper threshold at the register file only: engine sedates, no
	// global stall.
	for i := 0; i < 100; i++ {
		act.Add(power.UnitIntReg, 1, 9000)
		mon.Sample()
	}
	rfHot := func(temp float64) func(power.Unit) float64 {
		return func(u power.Unit) float64 {
			if u == power.UnitIntReg {
				return temp
			}
			return 350
		}
	}
	p.Tick(20_000, cfg.Sedation.UpperK+0.1, rfHot(cfg.Sedation.UpperK+0.1))
	if pipe.stalled {
		t.Fatal("sedation should not stall globally below emergency")
	}
	if ctl.enabled[1] {
		t.Fatal("culprit not sedated")
	}

	// Emergency: safety net stalls and releases all sedated threads.
	p.Tick(40_000, cfg.Thermal.EmergencyK+0.1, rfHot(cfg.Thermal.EmergencyK+0.1))
	if !pipe.stalled {
		t.Fatal("safety net did not stall")
	}
	if !ctl.enabled[1] {
		t.Fatal("safety net must restore sedated threads")
	}
	if SafetyNetEngagements(p) != 1 {
		t.Errorf("engagements = %d", SafetyNetEngagements(p))
	}
	if _, err := NewSelectiveSedation(pipe, cfg.Thermal, nil, 1000); err == nil {
		t.Error("nil engine should fail")
	}
}

func TestNonePolicy(t *testing.T) {
	p := NewNone()
	p.Tick(0, 1000, flatTemps(1000))
	if p.Name() != None || p.Engine() != nil {
		t.Error("none policy identity")
	}
	if SafetyNetEngagements(p) != 0 {
		t.Error("none policy has no safety net")
	}
}

func TestKinds(t *testing.T) {
	if len(Kinds()) != 5 {
		t.Errorf("kinds = %v", Kinds())
	}
}

// fakeCtl implements score.CoreControl.
type fakeCtl struct{ enabled []bool }

func (f *fakeCtl) SetFetchEnabled(tid int, e bool) { f.enabled[tid] = e }
func (f *fakeCtl) Threads() int                    { return len(f.enabled) }
func (f *fakeCtl) Active(int) bool                 { return true }
