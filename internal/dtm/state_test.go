package dtm

import (
	"reflect"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
)

func TestStopGoSnapshotRestore(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{}
	a := NewStopAndGo(pipe, th, 1000)
	a.Tick(100, th.EmergencyK+1, flatTemps(0)) // engage
	st, err := Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StopAndGo || st.StopGo == nil || !st.StopGo.Engaged {
		t.Fatalf("snapshot = %+v", st)
	}

	// Restore into a fresh policy: it must hold the stall for the rest
	// of the original cooling window, then release.
	pipe2 := &fakePipe{stalled: true} // the pipeline's own state restores separately
	b := NewStopAndGo(pipe2, th, 1000)
	if err := Restore(b, st); err != nil {
		t.Fatal(err)
	}
	b.Tick(600, th.EmergencyK-20, flatTemps(0))
	if !pipe2.stalled {
		t.Fatal("restored policy released before the cooling window")
	}
	b.Tick(1100, th.EmergencyK-20, flatTemps(0))
	if pipe2.stalled {
		t.Fatal("restored policy held past the cooling window")
	}
	if SafetyNetEngagements(b) != SafetyNetEngagements(a) {
		t.Fatal("engagement count lost in restore")
	}
}

func TestDVSSnapshotRestore(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{vdd: 1.1}
	a := NewDVS(pipe, pipe, th, 1000)
	a.Tick(1, th.EmergencyK-2.4, flatTemps(0)) // throttle
	st, err := Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != DVS || !st.Throttled {
		t.Fatalf("snapshot = %+v", st)
	}

	// Construct at nominal Vdd (as sim.New does), then mirror the
	// actuator state the pipeline/model snapshots would restore.
	pipe2 := &fakePipe{vdd: 1.1}
	b := NewDVS(pipe2, pipe2, th, 1000)
	pipe2.vdd, pipe2.thNum, pipe2.thDen = pipe.vdd, pipe.thNum, pipe.thDen
	if err := Restore(b, st); err != nil {
		t.Fatal(err)
	}
	// Cooling must un-throttle and restore nominal Vdd — proving the
	// restored policy remembered both the throttle and the nominal
	// voltage it must return to.
	a.Tick(2, th.StopGoResumeK-0.1, flatTemps(0))
	b.Tick(2, th.StopGoResumeK-0.1, flatTemps(0))
	if *pipe2 != *pipe {
		t.Fatalf("actuators diverge after restore: %+v vs %+v", pipe2, pipe)
	}
	if pipe2.vdd != 1.1 {
		t.Fatalf("nominal vdd not restored: %g", pipe2.vdd)
	}
}

func TestTTDFSSnapshotRestore(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{}
	a := NewTTDFS(pipe, th)
	for i := int64(0); i < 3; i++ { // escalate a few levels
		a.Tick(i, th.EmergencyK+0.5, flatTemps(0))
	}
	st, err := Snapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != TTDFS || st.Level == 0 || st.PeakLevel < st.Level {
		t.Fatalf("snapshot = %+v", st)
	}

	pipe2 := &fakePipe{thNum: pipe.thNum, thDen: pipe.thDen}
	b := NewTTDFS(pipe2, th)
	if err := Restore(b, st); err != nil {
		t.Fatal(err)
	}
	a.Tick(10, th.EmergencyK+0.5, flatTemps(0))
	b.Tick(10, th.EmergencyK+0.5, flatTemps(0))
	if *pipe2 != *pipe {
		t.Fatalf("throttle settings diverge: %+v vs %+v", pipe2, pipe)
	}
	sa, _ := Snapshot(a)
	sb, _ := Snapshot(b)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("states diverge after one tick: %+v vs %+v", sa, sb)
	}

	bad := st
	bad.Level = ttdfsMaxLevel + 1
	if err := Restore(b, bad); err == nil {
		t.Error("out-of-range level should fail")
	}
	bad = st
	bad.PeakLevel = st.Level - 1
	if err := Restore(b, bad); err == nil {
		t.Error("peak below level should fail")
	}
}

func TestSnapshotRestoreKindMismatch(t *testing.T) {
	th := config.Default().Thermal
	pipe := &fakePipe{}
	st, err := Snapshot(NewStopAndGo(pipe, th, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := Restore(NewDVS(pipe, pipe, th, 1000), st); err == nil {
		t.Error("stopgo state into dvs should fail")
	}
	if err := Restore(NewNone(), State{Kind: None}); err != nil {
		t.Errorf("none restore: %v", err)
	}
	if st, err := Snapshot(NewNone()); err != nil || st.Kind != None {
		t.Errorf("none snapshot: %+v, %v", st, err)
	}
}
