package dtm

import "fmt"

// StopGoState is the serializable state of a stop-and-go mechanism
// (standalone policy or a safety net inside dvs/sedation).
type StopGoState struct {
	Engaged     bool
	ResumeAt    int64
	Engagements uint64
}

// State is the serializable actuation state of any built-in policy.
// Kind selects which fields are meaningful: stopgo uses StopGo, dvs
// uses StopGo+Throttled, ttdfs uses Level/PeakLevel, sedation uses
// StopGo (its safety net; the engine's state is snapshotted separately
// via core.Engine.Snapshot). The actuator side effects — the global
// stall flag, the throttle setting, the DVS supply voltage — live in
// the pipeline and power-model states and are restored with them.
type State struct {
	Kind      Kind
	StopGo    *StopGoState
	Throttled bool
	Level     int
	PeakLevel int
}

// Clone returns a deep copy of the policy state.
func (st State) Clone() State {
	out := st
	if st.StopGo != nil {
		sg := *st.StopGo
		out.StopGo = &sg
	}
	return out
}

func snapshotStopGo(s *stopGo) *StopGoState {
	return &StopGoState{Engaged: s.engaged, ResumeAt: s.resumeAt, Engagements: s.Engagements}
}

func restoreStopGo(s *stopGo, st *StopGoState, kind Kind) error {
	if st == nil {
		return fmt.Errorf("dtm: %s state missing stop-and-go fields", kind)
	}
	s.engaged = st.Engaged
	s.resumeAt = st.ResumeAt
	s.Engagements = st.Engagements
	return nil
}

// Snapshot returns a policy's actuation state.
func Snapshot(p Policy) (State, error) {
	switch v := p.(type) {
	case nonePolicy:
		return State{Kind: None}, nil
	case *stopGo:
		return State{Kind: StopAndGo, StopGo: snapshotStopGo(v)}, nil
	case *dvs:
		return State{Kind: DVS, StopGo: snapshotStopGo(v.stopGo), Throttled: v.throttled}, nil
	case *ttdfs:
		return State{Kind: TTDFS, Level: v.level, PeakLevel: v.PeakLevel}, nil
	case *sedation:
		return State{Kind: SelectiveSedation, StopGo: snapshotStopGo(v.net)}, nil
	default:
		return State{}, fmt.Errorf("dtm: cannot snapshot policy type %T", p)
	}
}

// Restore loads st into p, which must be a built-in policy of the
// matching kind.
func Restore(p Policy, st State) error {
	if p.Name() != st.Kind {
		return fmt.Errorf("dtm: restoring %q state into %q policy", st.Kind, p.Name())
	}
	switch v := p.(type) {
	case nonePolicy:
		return nil
	case *stopGo:
		return restoreStopGo(v, st.StopGo, StopAndGo)
	case *dvs:
		if err := restoreStopGo(v.stopGo, st.StopGo, DVS); err != nil {
			return err
		}
		v.throttled = st.Throttled
		return nil
	case *ttdfs:
		if st.Level < 0 || st.Level > ttdfsMaxLevel || st.PeakLevel < st.Level {
			return fmt.Errorf("dtm: ttdfs level %d / peak %d invalid", st.Level, st.PeakLevel)
		}
		v.level = st.Level
		v.PeakLevel = st.PeakLevel
		return nil
	case *sedation:
		return restoreStopGo(v.net, st.StopGo, SelectiveSedation)
	default:
		return fmt.Errorf("dtm: cannot restore policy type %T", p)
	}
}
