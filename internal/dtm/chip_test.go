package dtm

import (
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
)

func newTestChipRR(t *testing.T, cores int) (ChipPolicy, []*fakePipe) {
	t.Helper()
	pipes := make([]*fakePipe, cores)
	ifaces := make([]Pipeline, cores)
	for i := range pipes {
		pipes[i] = &fakePipe{}
		ifaces[i] = pipes[i]
	}
	p, err := NewChipRoundRobin(ifaces, config.Default().Thermal, 1000)
	if err != nil {
		t.Fatal(err)
	}
	return p, pipes
}

func throttledSet(pipes []*fakePipe) []int {
	var out []int
	for i, p := range pipes {
		if p.thNum != 0 {
			out = append(out, i)
		}
	}
	return out
}

// TestChipRRDepthBands: the number of simultaneously throttled cores
// follows how far the hottest sensor sits above the trigger, in 0.5 K
// bands, saturating at the whole chip.
func TestChipRRDepthBands(t *testing.T) {
	th := config.Default().Thermal
	trigger := th.EmergencyK - 2.5
	cases := []struct {
		maxT  float64
		depth int
	}{
		{trigger - 1.0, 0},
		{trigger + 0.1, 1},
		{trigger + 0.6, 2},
		{trigger + 1.1, 3},
		{trigger + 2.4, 4}, // would be 5 bands; saturates at 4 cores
	}
	for _, tc := range cases {
		p, pipes := newTestChipRR(t, 4)
		p.TickChip(0, []float64{tc.maxT, 300, 300, 300})
		if got := len(throttledSet(pipes)); got != tc.depth {
			t.Errorf("maxT %.2f K: %d cores throttled, want %d", tc.maxT, got, tc.depth)
		}
	}
}

// TestChipRRRotation: the throttle burden rotates one core per tick,
// so over a full revolution every core takes an equal share — the
// fairness property that distinguishes the chip scope from per-core
// policies, which pin the penalty on whichever core hosts the hot spot.
func TestChipRRRotation(t *testing.T) {
	th := config.Default().Thermal
	p, pipes := newTestChipRR(t, 4)
	hot := []float64{th.EmergencyK - 2.3, 300, 300, 300} // one band: depth 1
	counts := make([]int, 4)
	for cycle := int64(0); cycle < 8; cycle++ {
		p.TickChip(cycle, hot)
		set := throttledSet(pipes)
		if len(set) != 1 {
			t.Fatalf("tick %d: throttled %v, want exactly one core", cycle, set)
		}
		counts[set[0]]++
	}
	for i, c := range counts {
		if c != 2 {
			t.Errorf("core %d throttled %d/8 ticks, want 2 (even rotation)", i, c)
		}
	}
	// Cooling below the trigger releases everyone.
	p.TickChip(8, []float64{300, 300, 300, 300})
	if set := throttledSet(pipes); len(set) != 0 {
		t.Errorf("cooled chip still throttles %v", set)
	}
}

// TestChipRRSafetyNet: at the emergency threshold the chip-wide
// stop-and-go halts every core for the cooling time, and the typed
// event stream records the engage/release pair.
func TestChipRRSafetyNet(t *testing.T) {
	th := config.Default().Thermal
	p, pipes := newTestChipRR(t, 2)
	log := &telemetry.EventLog{}
	SetChipEventLog(p, log)

	hot := []float64{300, th.EmergencyK + 1}
	p.TickChip(0, hot)
	for i, fp := range pipes {
		if !fp.stalled {
			t.Errorf("core %d not stalled at emergency", i)
		}
	}
	if ChipSafetyNetEngagements(p) != 1 {
		t.Errorf("engagements %d, want 1", ChipSafetyNetEngagements(p))
	}
	// Still engaged before the cooling time elapses, even if cooled.
	p.TickChip(500, []float64{300, 300})
	if !pipes[0].stalled {
		t.Error("released before the cooling time elapsed")
	}
	p.TickChip(1000, []float64{300, 300})
	for i, fp := range pipes {
		if fp.stalled {
			t.Errorf("core %d still stalled after the cooling time", i)
		}
	}
	if len(log.Events) != 2 ||
		log.Events[0].Kind != telemetry.KindStopGoEngage ||
		log.Events[1].Kind != telemetry.KindStopGoRelease {
		t.Errorf("event stream %+v, want engage then release", log.Events)
	}
}

// TestChipRRSnapshotRestore: cursor, depth, and safety-net state
// survive a snapshot/restore cycle, and mismatched or corrupt states
// are rejected.
func TestChipRRSnapshotRestore(t *testing.T) {
	th := config.Default().Thermal
	p, _ := newTestChipRR(t, 4)
	hot := []float64{th.EmergencyK - 2.3, 300, 300, 300}
	p.TickChip(0, hot)
	p.TickChip(1, hot)
	p.TickChip(2, hot)

	st, err := SnapshotChip(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != ChipRoundRobin || st.Cursor != 3 || st.Depth != 1 {
		t.Errorf("snapshot %+v, want cursor 3 depth 1", st)
	}
	cl := st.Clone()
	cl.StopGo.Engagements = 99
	if st.StopGo.Engagements == 99 {
		t.Error("Clone shares StopGo state")
	}

	// Restore into a fresh policy and check the rotation continues in
	// phase with the original: after three ticks the cursor sits at 3,
	// so the next depth-1 tick throttles core 3 on both.
	q, qp := newTestChipRR(t, 4)
	if err := RestoreChip(q, st); err != nil {
		t.Fatal(err)
	}
	q.TickChip(3, hot)
	if got := throttledSet(qp); len(got) != 1 || got[0] != 3 {
		t.Errorf("restored policy throttled %v, want core 3", got)
	}

	// Kind and range checks.
	bad := st
	bad.Kind = SelectiveSedation
	if err := RestoreChip(q, bad); err == nil {
		t.Error("cross-kind restore accepted")
	}
	bad = st.Clone()
	bad.Cursor = 9
	if err := RestoreChip(q, bad); err == nil {
		t.Error("out-of-range cursor accepted")
	}
	bad = st.Clone()
	bad.StopGo = nil
	if err := RestoreChip(q, bad); err == nil {
		t.Error("missing stop-and-go state accepted")
	}
}

// TestNewChipRoundRobinRejectsEmpty: a chip policy over zero pipelines
// is a construction error, not a latent panic.
func TestNewChipRoundRobinRejectsEmpty(t *testing.T) {
	if _, err := NewChipRoundRobin(nil, config.Default().Thermal, 1000); err == nil {
		t.Error("chip policy over zero pipelines accepted")
	}
}
