package sweep

import (
	"context"
	"fmt"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// ForkNode is one node of a fork tree: a sweep whose jobs share
// simulation prefixes. An internal node's Prefix produces a shared
// state from its parent's (run once, on demand, by the first leaf that
// needs it); a leaf's Leaf runs one measurement from its parent's
// state. Exactly one of Prefix and Leaf must be set, and only Prefix
// nodes may have children.
//
// Ownership rules (copy-on-fork safety): a node's state is produced
// once and then handed, concurrently, to every descendant — Prefix and
// Leaf must treat the parent value as read-only and copy whatever they
// mutate. The engine releases a node's state as soon as its last
// descendant leaf finishes, so a tree's memory high-water mark is
// bounded by the active frontier, not the whole tree.
type ForkNode[T any] struct {
	Key string
	// Prefix produces this node's shared state from the parent's
	// (parent is nil for a root). Runs at most once per sweep; a
	// failure is sticky and fails every descendant leaf.
	Prefix func(ctx context.Context, parent any) (any, error)
	// Leaf runs this node's measurement from the parent's shared state
	// (nil for a root leaf — a job with no shared prefix).
	Leaf func(ctx context.Context, parent any) (T, error)
	// Children are the subtrees forked from this node's state.
	Children []*ForkNode[T]
}

// PrefixNode builds an internal fork node.
func PrefixNode[T any](key string, prefix func(ctx context.Context, parent any) (any, error), children ...*ForkNode[T]) *ForkNode[T] {
	return &ForkNode[T]{Key: key, Prefix: prefix, Children: children}
}

// LeafNode builds a leaf fork node.
func LeafNode[T any](key string, leaf func(ctx context.Context, parent any) (T, error)) *ForkNode[T] {
	return &ForkNode[T]{Key: key, Leaf: leaf}
}

// nodeEntry is the engine's bookkeeping for one internal node: a
// singleflight slot for its state plus a refcount of unfinished
// descendant leaves.
type nodeEntry[T any] struct {
	parent  *ForkNode[T]
	done    chan struct{}
	claimed bool
	val     any
	err     error
	// pending counts descendant leaves that have not finished; when it
	// reaches zero the state is dropped so long sweeps don't pin every
	// prefix in memory.
	pending int
	// span identifies the prefix-production span (zero when tracing is
	// off) so leaves that fork from the shared state can link to it.
	span tracing.SpanContext
}

// treeState coordinates prefix production across the tree's leaves.
type treeState[T any] struct {
	mu     sync.Mutex
	info   map[*ForkNode[T]]*nodeEntry[T]
	runs   int
	reused int
}

// resolve returns n's shared state, running its Prefix (and,
// recursively, its ancestors') exactly once across the sweep. shared
// reports whether this caller found the state claimed by another leaf.
// Waiting is context-aware; prefix errors are sticky.
func (ts *treeState[T]) resolve(ctx context.Context, n *ForkNode[T]) (val any, shared bool, err error) {
	if n == nil {
		return nil, false, nil
	}
	ts.mu.Lock()
	e := ts.info[n]
	if e.claimed {
		ts.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, true, context.Cause(ctx)
		}
		return e.val, true, e.err
	}
	e.claimed = true
	ts.mu.Unlock()

	parentVal, _, perr := ts.resolve(ctx, e.parent)
	if perr != nil {
		e.err = perr
	} else {
		pctx, sp := tracing.StartSpan(ctx, "fork.prefix")
		sp.SetAttr("key", n.Key)
		e.val, e.err = n.Prefix(pctx, parentVal)
		sp.EndErr(e.err)
		e.span = sp.Context()
		ts.mu.Lock()
		ts.runs++
		ts.mu.Unlock()
	}
	close(e.done)
	return e.val, false, e.err
}

// release marks one descendant leaf of parent (and all its ancestors)
// finished, dropping any node state whose whole subtree is done.
func (ts *treeState[T]) release(parent *ForkNode[T]) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for n := parent; n != nil; {
		e := ts.info[n]
		e.pending--
		if e.pending == 0 {
			e.val = nil
		}
		n = e.parent
	}
}

// leafRun adapts a leaf node into a flat sweep job: resolve the shared
// prefix chain, then run the leaf's measurement from it.
func (ts *treeState[T]) leafRun(n, parent *ForkNode[T]) func(context.Context) (T, error) {
	first := true // attempts run serially in one worker; no lock needed
	return func(ctx context.Context) (T, error) {
		pv, shared, err := ts.resolve(ctx, parent)
		if first {
			first = false
			if parent != nil && shared {
				ts.mu.Lock()
				ts.reused++
				ts.mu.Unlock()
			}
		}
		if parent != nil && shared && err == nil {
			// The leaf runs from a prefix another leaf produced: record
			// the causal edge the parent/child tree can't express.
			ts.mu.Lock()
			psc := ts.info[parent].span
			ts.mu.Unlock()
			tracing.Active(ctx).Link(psc, tracing.LinkForkPrefix)
		}
		if err != nil {
			var zero T
			return zero, fmt.Errorf("fork prefix %q: %w", parent.Key, err)
		}
		return n.Leaf(ctx, pv)
	}
}

func (ts *treeState[T]) counts() (runs, reused int) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.runs, ts.reused
}

// RunTree executes a fork-tree sweep: the tree's leaves become jobs of
// an ordinary Run (bounded workers, cancellation, retries, metrics,
// progress — all Options apply unchanged), in depth-first order, and
// shared prefixes are produced on demand, exactly once each, by the
// first leaf to need them. Results are deterministic for deterministic
// nodes regardless of Parallelism: job outcomes are stored at their
// DFS index, and which leaf happened to produce a prefix is invisible
// in the results (only the Summary's ForkPrefixes/ForkReused counters
// and timing reflect scheduling).
//
// A malformed tree (a node with both or neither of Prefix/Leaf set, a
// leaf with children, an internal node without children, or a node
// reachable twice) fails up front with a nil Result, before anything
// runs.
func RunTree[T any](ctx context.Context, roots []*ForkNode[T], o Options[T]) (*Result[T], error) {
	ts := &treeState[T]{info: make(map[*ForkNode[T]]*nodeEntry[T])}
	var jobs []Job[T]
	var parents []*ForkNode[T]

	var walk func(n, parent *ForkNode[T]) error
	walk = func(n, parent *ForkNode[T]) error {
		if n == nil {
			return fmt.Errorf("sweep: nil fork node")
		}
		if _, dup := ts.info[n]; dup {
			return fmt.Errorf("sweep: fork node %q reachable twice", n.Key)
		}
		ts.info[n] = &nodeEntry[T]{parent: parent, done: make(chan struct{})}
		switch {
		case n.Prefix != nil && n.Leaf != nil:
			return fmt.Errorf("sweep: fork node %q sets both Prefix and Leaf", n.Key)
		case n.Leaf != nil:
			if len(n.Children) > 0 {
				return fmt.Errorf("sweep: leaf node %q has children", n.Key)
			}
			jobs = append(jobs, Job[T]{Key: n.Key, Run: ts.leafRun(n, parent)})
			parents = append(parents, parent)
			for a := parent; a != nil; a = ts.info[a].parent {
				ts.info[a].pending++
			}
		case n.Prefix != nil:
			if len(n.Children) == 0 {
				return fmt.Errorf("sweep: prefix node %q has no children", n.Key)
			}
			for _, c := range n.Children {
				if err := walk(c, n); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("sweep: fork node %q sets neither Prefix nor Leaf", n.Key)
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, nil); err != nil {
			return nil, err
		}
	}

	topts := o
	inner := o.OnDone
	topts.OnDone = func(r JobResult[T]) {
		if p := parents[r.Index]; p != nil {
			ts.release(p)
		}
		if inner != nil {
			inner(r)
		}
	}
	res, err := Run(ctx, jobs, topts)
	res.Summary.ForkPrefixes, res.Summary.ForkReused = ts.counts()
	return res, err
}
