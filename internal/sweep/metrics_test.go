package sweep

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// TestAggWelford checks the streaming variance against the naive
// two-pass reference on a deterministic pseudo-random stream.
func TestAggWelford(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var a Agg
	var vals []float64
	for i := 0; i < 1000; i++ {
		v := 300 + 50*rng.Float64()
		vals = append(vals, v)
		a.Add(v)
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	variance := 0.0
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(vals))
	if got := a.Mean(); math.Abs(got-mean) > 1e-9 {
		t.Errorf("mean = %v, reference %v", got, mean)
	}
	if got := a.Variance(); math.Abs(got-variance) > 1e-6 {
		t.Errorf("variance = %v, reference %v", got, variance)
	}
	if got := a.Stddev(); math.Abs(got-math.Sqrt(variance)) > 1e-8 {
		t.Errorf("stddev = %v, reference %v", got, math.Sqrt(variance))
	}
}

func TestAggEdgeCases(t *testing.T) {
	var a Agg
	if a.Variance() != 0 || a.Stddev() != 0 {
		t.Error("empty aggregate has nonzero spread")
	}
	a.Add(7)
	if a.Variance() != 0 {
		t.Errorf("single sample variance = %v", a.Variance())
	}
	a.Add(7)
	a.Add(7)
	if a.Variance() != 0 || a.M2 != 0 {
		t.Errorf("constant stream variance = %v M2 = %v", a.Variance(), a.M2)
	}
}

// TestAggJSONRoundTrip: M2 must survive serialization so cached
// summaries keep their spread.
func TestAggJSONRoundTrip(t *testing.T) {
	var a Agg
	for _, v := range []float64{1, 2, 4, 8} {
		a.Add(v)
	}
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Agg
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Count != a.Count || back.Sum != a.Sum || math.Abs(back.M2-a.M2) > 1e-12 {
		t.Errorf("round trip: got %+v want %+v", back, a)
	}
	if math.Abs(back.Stddev()-a.Stddev()) > 1e-12 {
		t.Errorf("stddev after round trip: %v vs %v", back.Stddev(), a.Stddev())
	}
}
