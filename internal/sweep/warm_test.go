package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWarmupSharedAcrossJobs(t *testing.T) {
	var warmRuns atomic.Int64
	jobs := make([]Job[int], 12)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key:     fmt.Sprintf("job%d", i),
			WarmKey: "shared",
			Warm: func(ctx context.Context) (any, error) {
				warmRuns.Add(1)
				return 40, nil
			},
			RunWarm: func(ctx context.Context, warm any) (int, error) {
				return warm.(int) + i, nil
			},
		}
	}
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 6})
	if err != nil {
		t.Fatal(err)
	}
	if warmRuns.Load() != 1 {
		t.Fatalf("warm ran %d times, want 1", warmRuns.Load())
	}
	if res.Summary.WarmupRuns != 1 || res.Summary.WarmupReused != len(jobs)-1 {
		t.Fatalf("summary warmups = %d/%d, want 1/%d",
			res.Summary.WarmupRuns, res.Summary.WarmupReused, len(jobs)-1)
	}
	reused := 0
	for i, j := range res.Jobs {
		if j.Value != 40+i {
			t.Fatalf("job %d value %d", i, j.Value)
		}
		if j.WarmKey != "shared" {
			t.Fatalf("job %d warm key %q", i, j.WarmKey)
		}
		if j.WarmReused {
			reused++
		}
	}
	if reused != len(jobs)-1 {
		t.Fatalf("%d jobs reused, want %d", reused, len(jobs)-1)
	}
}

func TestWarmupDistinctKeys(t *testing.T) {
	var warmRuns atomic.Int64
	jobs := make([]Job[int], 6)
	for i := range jobs {
		key := fmt.Sprintf("warm%d", i%2)
		jobs[i] = Job[int]{
			Key:     fmt.Sprintf("job%d", i),
			WarmKey: key,
			Warm: func(ctx context.Context) (any, error) {
				warmRuns.Add(1)
				return key, nil
			},
			RunWarm: func(ctx context.Context, warm any) (int, error) { return 0, nil },
		}
	}
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if warmRuns.Load() != 2 || res.Summary.WarmupRuns != 2 || res.Summary.WarmupReused != 4 {
		t.Fatalf("warmups = %d (summary %d/%d), want 2 runs 4 reuses",
			warmRuns.Load(), res.Summary.WarmupRuns, res.Summary.WarmupReused)
	}
}

func TestWarmupErrorIsSticky(t *testing.T) {
	boom := errors.New("boom")
	var warmRuns atomic.Int64
	jobs := make([]Job[int], 4)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key:     fmt.Sprintf("job%d", i),
			WarmKey: "shared",
			Warm: func(ctx context.Context) (any, error) {
				warmRuns.Add(1)
				return nil, boom
			},
			RunWarm: func(ctx context.Context, warm any) (int, error) {
				t.Error("RunWarm must not run after a failed warmup")
				return 0, nil
			},
		}
	}
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 1, Policy: Collect})
	if err == nil {
		t.Fatal("want error")
	}
	if warmRuns.Load() != 1 {
		t.Fatalf("failed warmup re-ran: %d", warmRuns.Load())
	}
	for _, j := range res.Jobs {
		if !errors.Is(j.Err, boom) {
			t.Fatalf("job %s err = %v", j.Key, j.Err)
		}
	}
}

func TestWarmKeyWithoutFuncsFails(t *testing.T) {
	jobs := []Job[int]{{Key: "a", WarmKey: "k"}}
	res, _ := Run(context.Background(), jobs, Options[int]{})
	if res.Jobs[0].Err == nil {
		t.Fatal("warm key without Warm/RunWarm should fail the job")
	}
}

// TestWarmupRetryDoesNotCountAsReuse: a job whose RunWarm fails and is
// retried reuses the state it itself produced — that must not report
// as a shared reuse.
func TestWarmupRetryDoesNotCountAsReuse(t *testing.T) {
	attempts := 0
	jobs := []Job[int]{{
		Key:     "a",
		WarmKey: "k",
		Warm:    func(ctx context.Context) (any, error) { return 1, nil },
		RunWarm: func(ctx context.Context, warm any) (int, error) {
			attempts++
			if attempts == 1 {
				return 0, errors.New("flaky")
			}
			return warm.(int), nil
		},
	}}
	res, err := Run(context.Background(), jobs, Options[int]{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].WarmReused {
		t.Fatal("retry marked as warm reuse")
	}
	if res.Summary.WarmupRuns != 1 {
		t.Fatalf("warmup runs %d", res.Summary.WarmupRuns)
	}
}
