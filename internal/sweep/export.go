package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is a rendered sweep artifact: the rows of one of the paper's
// tables or figures, plus free-form notes and the sweep's execution
// Summary. The Summary carries timing and is excluded from Render and
// String so rendered tables are byte-identical for deterministic
// sweeps regardless of parallelism; the JSON export includes it under
// a separate key.
type Table struct {
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Summary *Summary   `json:"summary,omitempty"`
}

// Format identifies an artifact encoding.
type Format string

const (
	FormatTable Format = "table" // aligned ASCII (Render)
	FormatJSON  Format = "json"
	FormatCSV   Format = "csv"
)

// Formats lists the supported artifact encodings.
func Formats() []Format { return []Format{FormatTable, FormatJSON, FormatCSV} }

// ParseFormat validates a format name.
func ParseFormat(s string) (Format, error) {
	for _, f := range Formats() {
		if string(f) == strings.ToLower(strings.TrimSpace(s)) {
			return f, nil
		}
	}
	return "", fmt.Errorf("sweep: unknown format %q (have %v)", s, Formats())
}

// Ext is the conventional file extension for the format.
func (f Format) Ext() string {
	if f == FormatTable {
		return "txt"
	}
	return string(f)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// WriteJSON writes the table (title, columns, rows, notes, summary) as
// indented JSON.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// WriteCSV writes the column header and rows as RFC-4180 CSV. Notes
// and the Summary are not representable in CSV; use JSON for them.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// Write encodes the table in the given format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return t.WriteJSON(w)
	case FormatCSV:
		return t.WriteCSV(w)
	case FormatTable:
		t.Render(w)
		return nil
	default:
		return fmt.Errorf("sweep: unknown format %q", f)
	}
}

// Writer returns a function that encodes the table in the given
// format, for callers that plumb artifacts through a generic
// destination (stdout, a file, an HTTP response).
func (t *Table) Writer(f Format) func(io.Writer) error {
	return func(w io.Writer) error { return t.Write(w, f) }
}
