package sweep

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Agg is a running aggregate of one named metric across a sweep.
// M2 is the Welford sum of squared deviations from the running mean;
// it is exported (and serialized) so aggregates persisted to JSON —
// e.g. the daemon's cached summaries — round-trip with their spread.
type Agg struct {
	Count int
	Sum   float64
	Min   float64
	Max   float64
	M2    float64
}

// Add folds one value into the aggregate. Exported so consumers that
// receive per-job metrics incrementally (e.g. a progress stream) can
// build the same aggregates Summary would.
func (a *Agg) Add(v float64) {
	if a.Count == 0 || v < a.Min {
		a.Min = v
	}
	if a.Count == 0 || v > a.Max {
		a.Max = v
	}
	old := a.Count
	a.Count++
	a.Sum += v
	if old > 0 {
		// Welford's update, phrased in terms of the stored Sum: the
		// deviation from the pre-update mean times the deviation from
		// the post-update mean.
		a.M2 += (v - (a.Sum-v)/float64(old)) * (v - a.Sum/float64(a.Count))
	}
}

// Mean is the average of the recorded values (0 when empty).
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}

// Variance is the population variance of the recorded values (0 when
// fewer than two).
func (a Agg) Variance() float64 {
	if a.Count < 2 {
		return 0
	}
	return a.M2 / float64(a.Count)
}

// Stddev is the population standard deviation of the recorded values.
func (a Agg) Stddev() float64 { return math.Sqrt(a.Variance()) }

// MarshalJSON renders the aggregate with its derived mean and spread.
func (a Agg) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Count  int     `json:"count"`
		Sum    float64 `json:"sum"`
		Min    float64 `json:"min"`
		Max    float64 `json:"max"`
		M2     float64 `json:"m2"`
		Mean   float64 `json:"mean"`
		Stddev float64 `json:"stddev"`
	}{a.Count, a.Sum, a.Min, a.Max, a.M2, a.Mean(), a.Stddev()})
}

// Summary aggregates a sweep's execution metrics: job counts, wall
// times, retry totals, and any custom metrics extracted by
// Options.Metrics. Timing fields vary run to run; everything else is
// deterministic for deterministic jobs.
type Summary struct {
	Jobs        int `json:"jobs"`
	Succeeded   int `json:"succeeded"`
	Failed      int `json:"failed"`
	Skipped     int `json:"skipped"`
	Retries     int `json:"retries"`
	Parallelism int `json:"parallelism"`
	// WallTime is the sweep's end-to-end duration; JobTime is the sum
	// of per-job durations (JobTime/WallTime ~ effective parallelism).
	WallTime   time.Duration `json:"wall_ns"`
	JobTime    time.Duration `json:"job_ns"`
	MaxJobTime time.Duration `json:"max_job_ns"`
	// WarmupRuns counts warmups actually executed; WarmupReused counts
	// jobs that started from another job's warm state instead. Both are
	// zero when no job carries a warm key.
	WarmupRuns   int `json:"warmup_runs,omitempty"`
	WarmupReused int `json:"warmup_reused,omitempty"`
	// ForkPrefixes counts fork-tree prefix simulations actually
	// executed; ForkReused counts leaves that started from a prefix
	// state produced for an earlier leaf. Both are zero for flat
	// sweeps (see RunTree).
	ForkPrefixes int `json:"fork_prefixes,omitempty"`
	ForkReused   int `json:"fork_reused,omitempty"`
	// Metrics holds the custom per-job measurements, aggregated in
	// input order.
	Metrics map[string]Agg `json:"metrics,omitempty"`
}

// Throughput is the summed value of the named metric per wall-clock
// second (e.g. simulated cycles/sec for a "sim_cycles" metric).
func (s *Summary) Throughput(metric string) float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.Metrics[metric].Sum / s.WallTime.Seconds()
}

// String renders a one-line human-readable summary.
func (s *Summary) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d jobs (%d ok", s.Jobs, s.Succeeded)
	if s.Failed > 0 {
		fmt.Fprintf(&sb, ", %d failed", s.Failed)
	}
	if s.Skipped > 0 {
		fmt.Fprintf(&sb, ", %d skipped", s.Skipped)
	}
	if s.Retries > 0 {
		fmt.Fprintf(&sb, ", %d retries", s.Retries)
	}
	fmt.Fprintf(&sb, ") in %.1fs wall / %.1fs job-time at parallelism %d",
		s.WallTime.Seconds(), s.JobTime.Seconds(), s.Parallelism)
	if s.WarmupRuns > 0 || s.WarmupReused > 0 {
		fmt.Fprintf(&sb, ", %d warmups (%d reused)", s.WarmupRuns, s.WarmupReused)
	}
	if s.ForkPrefixes > 0 || s.ForkReused > 0 {
		fmt.Fprintf(&sb, ", %d fork prefixes (%d forks reused)", s.ForkPrefixes, s.ForkReused)
	}
	if cycles, ok := s.Metrics[MetricSimCycles]; ok && cycles.Sum > 0 {
		fmt.Fprintf(&sb, ", %.1f Mcycles/s", s.Throughput(MetricSimCycles)/1e6)
	}
	if peak, ok := s.Metrics[MetricPeakTempK]; ok && peak.Count > 0 {
		fmt.Fprintf(&sb, ", peak %.1f K", peak.Max)
	}
	return sb.String()
}

// MetricNames lists the metrics present, sorted.
func (s *Summary) MetricNames() []string {
	names := make([]string, 0, len(s.Metrics))
	for n := range s.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Conventional metric names used by the simulation harness.
const (
	// MetricSimCycles is the number of cycles a job simulated.
	MetricSimCycles = "sim_cycles"
	// MetricCyclesPerSec is a job's simulation speed.
	MetricCyclesPerSec = "cycles_per_sec"
	// MetricPeakTempK is a job's hottest sensor observation.
	MetricPeakTempK = "peak_temp_k"
	// MetricEmergencies is a job's thermal emergency count.
	MetricEmergencies = "emergencies"
)

// summarize folds the finished job results into a Summary. It walks
// the jobs in input order so metric aggregation is deterministic.
func summarize[T any](r *Result[T], parallelism int, wall time.Duration, metrics func(JobResult[T]) map[string]float64) Summary {
	s := Summary{Jobs: len(r.Jobs), Parallelism: parallelism, WallTime: wall}
	for _, j := range r.Jobs {
		switch {
		case j.Skipped:
			s.Skipped++
		case j.Err != nil:
			s.Failed++
		default:
			s.Succeeded++
		}
		if j.Attempts > 1 {
			s.Retries += j.Attempts - 1
		}
		s.JobTime += j.Elapsed
		if j.Elapsed > s.MaxJobTime {
			s.MaxJobTime = j.Elapsed
		}
		if metrics == nil || j.Err != nil || j.Skipped {
			continue
		}
		for name, v := range metrics(j) {
			if s.Metrics == nil {
				s.Metrics = make(map[string]Agg)
			}
			agg := s.Metrics[name]
			agg.Add(v)
			s.Metrics[name] = agg
		}
	}
	return s
}
