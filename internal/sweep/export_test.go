package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleTable() *Table {
	return &Table{
		Title:   "Figure X: sample",
		Columns: []string{"benchmark", "ipc", "peak K"},
		Rows: [][]string{
			{"crafty", "1.93", "356.2"},
			{"mcf", "0.41", "351.0"},
			{"name,with\"quirks", "0.00", "0.0"},
		},
		Notes: []string{"paper claim: sample"},
	}
}

// TestRenderGolden locks the exact ASCII rendering so format drift is
// caught before it corrupts exported artifacts.
func TestRenderGolden(t *testing.T) {
	want := "Figure X: sample\n" +
		"  benchmark         ipc   peak K\n" +
		"  ----------------  ----  ------\n" +
		"  crafty            1.93  356.2\n" +
		"  mcf               0.41  351.0\n" +
		"  name,with\"quirks  0.00  0.0\n" +
		"  note: paper claim: sample\n"
	if got := sampleTable().String(); got != want {
		t.Errorf("render drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tb := sampleTable()
	tb.Summary = &Summary{
		Jobs: 3, Succeeded: 3, Parallelism: 2,
		WallTime: time.Second, JobTime: 2 * time.Second,
		Metrics: map[string]Agg{MetricPeakTempK: {Count: 3, Sum: 707.2, Min: 0, Max: 356.2}},
	}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
		Summary struct {
			Jobs    int `json:"jobs"`
			Metrics map[string]struct {
				Count int     `json:"count"`
				Mean  float64 `json:"mean"`
				Max   float64 `json:"max"`
			} `json:"metrics"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact not parseable: %v\n%s", err, buf.String())
	}
	if decoded.Title != tb.Title || len(decoded.Rows) != 3 || decoded.Rows[2][0] != "name,with\"quirks" {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Summary.Jobs != 3 || decoded.Summary.Metrics[MetricPeakTempK].Count != 3 {
		t.Errorf("summary lost in JSON: %+v", decoded.Summary)
	}
	if decoded.Summary.Metrics[MetricPeakTempK].Max != 356.2 {
		t.Errorf("metric max = %v", decoded.Summary.Metrics[MetricPeakTempK])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV not parseable: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %v", records)
	}
	if records[0][1] != "ipc" || records[3][0] != "name,with\"quirks" {
		t.Errorf("records = %v", records)
	}
}

func TestWriteDispatchAndFormats(t *testing.T) {
	tb := sampleTable()
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := tb.Write(&buf, f); err != nil {
			t.Errorf("write %s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("write %s produced nothing", f)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("yaml should be rejected")
	}
	f, err := ParseFormat(" JSON ")
	if err != nil || f != FormatJSON {
		t.Errorf("ParseFormat = %v, %v", f, err)
	}
	if FormatTable.Ext() != "txt" || FormatCSV.Ext() != "csv" {
		t.Error("unexpected extensions")
	}
	var bad bytes.Buffer
	if err := tb.Write(&bad, Format("nope")); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("bad format err = %v", err)
	}
}

// TestWriteCSVEscaping locks RFC-4180 behaviour for the cell contents
// that break naive writers: embedded commas, double quotes, and
// newlines must be quoted/doubled so a conforming reader recovers the
// exact cells.
func TestWriteCSVEscaping(t *testing.T) {
	tb := &Table{
		Title:   "escaping",
		Columns: []string{"key", "value"},
		Rows: [][]string{
			{"comma", "a,b,c"},
			{"quote", `say "heat stroke"`},
			{"newline", "line1\nline2"},
			{"all", "a,\"b\"\nc"},
			{"empty", ""},
		},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"a,b,c"`, `"say ""heat stroke"""`, "\"line1\nline2\""} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing escaped form %q in:\n%s", want, out)
		}
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV not parseable: %v\n%s", err, out)
	}
	if len(records) != len(tb.Rows)+1 {
		t.Fatalf("got %d records, want %d", len(records), len(tb.Rows)+1)
	}
	for i, row := range tb.Rows {
		for j, cell := range row {
			if records[i+1][j] != cell {
				t.Errorf("row %d col %d: round-tripped %q, want %q", i, j, records[i+1][j], cell)
			}
		}
	}
}

// TestJSONSummaryRoundTrip re-encodes a decoded artifact and checks the
// Summary aggregates survive a full Table -> JSON -> Table cycle (the
// serving layer persists cached results this way).
func TestJSONSummaryRoundTrip(t *testing.T) {
	tb := sampleTable()
	tb.Summary = &Summary{
		Jobs: 4, Succeeded: 3, Failed: 1, Retries: 2, Parallelism: 2,
		WallTime: 1500 * time.Millisecond, JobTime: 3 * time.Second, MaxJobTime: 2 * time.Second,
		Metrics: map[string]Agg{
			MetricPeakTempK:   {Count: 3, Sum: 1061.4, Min: 351.0, Max: 356.2},
			MetricEmergencies: {Count: 3, Sum: 0, Min: 0, Max: 0},
		},
	}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Summary == nil {
		t.Fatal("summary lost")
	}
	if back.Summary.Jobs != 4 || back.Summary.Failed != 1 || back.Summary.Retries != 2 {
		t.Errorf("counts drifted: %+v", back.Summary)
	}
	if back.Summary.WallTime != tb.Summary.WallTime || back.Summary.MaxJobTime != tb.Summary.MaxJobTime {
		t.Errorf("durations drifted: %+v", back.Summary)
	}
	peak := back.Summary.Metrics[MetricPeakTempK]
	if peak.Count != 3 || peak.Min != 351.0 || peak.Max != 356.2 {
		t.Errorf("aggregate drifted: %+v", peak)
	}
	if got, want := peak.Mean(), tb.Summary.Metrics[MetricPeakTempK].Mean(); got != want {
		t.Errorf("mean drifted: %v != %v", got, want)
	}
	// A second encode must be byte-identical to the first: the decoded
	// Agg re-derives the same mean, so persistence is idempotent.
	var buf2 bytes.Buffer
	if err := back.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Errorf("re-encode not idempotent:\n%s\nvs\n%s", buf.String(), buf2.String())
	}
}

// TestEmptyRowTables: a table with columns but no rows must render and
// encode in every format without panicking, and CSV/JSON must preserve
// the header/structure.
func TestEmptyRowTables(t *testing.T) {
	tb := &Table{Title: "empty", Columns: []string{"a", "b"}}
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := tb.Write(&buf, f); err != nil {
			t.Errorf("write %s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("write %s produced nothing", f)
		}
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0][0] != "a" {
		t.Errorf("records = %v", records)
	}
	var back Table
	buf.Reset()
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Columns) != 2 || len(back.Rows) != 0 || back.Summary != nil {
		t.Errorf("round-trip = %+v", back)
	}
}
