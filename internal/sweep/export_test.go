package sweep

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleTable() *Table {
	return &Table{
		Title:   "Figure X: sample",
		Columns: []string{"benchmark", "ipc", "peak K"},
		Rows: [][]string{
			{"crafty", "1.93", "356.2"},
			{"mcf", "0.41", "351.0"},
			{"name,with\"quirks", "0.00", "0.0"},
		},
		Notes: []string{"paper claim: sample"},
	}
}

// TestRenderGolden locks the exact ASCII rendering so format drift is
// caught before it corrupts exported artifacts.
func TestRenderGolden(t *testing.T) {
	want := "Figure X: sample\n" +
		"  benchmark         ipc   peak K\n" +
		"  ----------------  ----  ------\n" +
		"  crafty            1.93  356.2\n" +
		"  mcf               0.41  351.0\n" +
		"  name,with\"quirks  0.00  0.0\n" +
		"  note: paper claim: sample\n"
	if got := sampleTable().String(); got != want {
		t.Errorf("render drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	tb := sampleTable()
	tb.Summary = &Summary{
		Jobs: 3, Succeeded: 3, Parallelism: 2,
		WallTime: time.Second, JobTime: 2 * time.Second,
		Metrics: map[string]Agg{MetricPeakTempK: {Count: 3, Sum: 707.2, Min: 0, Max: 356.2}},
	}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
		Summary struct {
			Jobs    int `json:"jobs"`
			Metrics map[string]struct {
				Count int     `json:"count"`
				Mean  float64 `json:"mean"`
				Max   float64 `json:"max"`
			} `json:"metrics"`
		} `json:"summary"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("artifact not parseable: %v\n%s", err, buf.String())
	}
	if decoded.Title != tb.Title || len(decoded.Rows) != 3 || decoded.Rows[2][0] != "name,with\"quirks" {
		t.Errorf("decoded = %+v", decoded)
	}
	if decoded.Summary.Jobs != 3 || decoded.Summary.Metrics[MetricPeakTempK].Count != 3 {
		t.Errorf("summary lost in JSON: %+v", decoded.Summary)
	}
	if decoded.Summary.Metrics[MetricPeakTempK].Max != 356.2 {
		t.Errorf("metric max = %v", decoded.Summary.Metrics[MetricPeakTempK])
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("CSV not parseable: %v", err)
	}
	if len(records) != 4 {
		t.Fatalf("records = %v", records)
	}
	if records[0][1] != "ipc" || records[3][0] != "name,with\"quirks" {
		t.Errorf("records = %v", records)
	}
}

func TestWriteDispatchAndFormats(t *testing.T) {
	tb := sampleTable()
	for _, f := range Formats() {
		var buf bytes.Buffer
		if err := tb.Write(&buf, f); err != nil {
			t.Errorf("write %s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Errorf("write %s produced nothing", f)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("yaml should be rejected")
	}
	f, err := ParseFormat(" JSON ")
	if err != nil || f != FormatJSON {
		t.Errorf("ParseFormat = %v, %v", f, err)
	}
	if FormatTable.Ext() != "txt" || FormatCSV.Ext() != "csv" {
		t.Error("unexpected extensions")
	}
	var bad bytes.Buffer
	if err := tb.Write(&bad, Format("nope")); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("bad format err = %v", err)
	}
}
