package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// counterPrefix returns a Prefix that counts its executions and
// produces base+parent (treating a nil parent as 0).
func counterPrefix(calls *atomic.Int64, base int) func(context.Context, any) (any, error) {
	return func(_ context.Context, parent any) (any, error) {
		calls.Add(1)
		v := base
		if parent != nil {
			v += parent.(int)
		}
		return v, nil
	}
}

// addLeaf returns a Leaf producing add+parent (nil parent as 0).
func addLeaf(add int) func(context.Context, any) (int, error) {
	return func(_ context.Context, parent any) (int, error) {
		v := add
		if parent != nil {
			v += parent.(int)
		}
		return v, nil
	}
}

func TestRunTreeSharesPrefixes(t *testing.T) {
	var a, b atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode("warm-a", counterPrefix(&a, 100),
			LeafNode("a0", addLeaf(0)),
			LeafNode("a1", addLeaf(1)),
			LeafNode("a2", addLeaf(2)),
		),
		PrefixNode("warm-b", counterPrefix(&b, 200),
			LeafNode("b0", addLeaf(0)),
			LeafNode("b1", addLeaf(1)),
		),
		LeafNode[int]("solo", addLeaf(999)),
	}
	res, err := RunTree(context.Background(), roots, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"a0": 100, "a1": 101, "a2": 102, "b0": 200, "b1": 201, "solo": 999}
	got := res.ByKey()
	if len(got) != len(want) {
		t.Fatalf("results = %v", got)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %d, want %d", k, got[k], v)
		}
	}
	if a.Load() != 1 || b.Load() != 1 {
		t.Errorf("prefix executions a=%d b=%d, want 1 each", a.Load(), b.Load())
	}
	s := res.Summary
	if s.ForkPrefixes != 2 {
		t.Errorf("ForkPrefixes = %d, want 2", s.ForkPrefixes)
	}
	// 6 leaves, 2 of which produced a prefix, 1 of which has none.
	if s.ForkReused != 3 {
		t.Errorf("ForkReused = %d, want 3", s.ForkReused)
	}
	if !strings.Contains(s.String(), "2 fork prefixes (3 forks reused)") {
		t.Errorf("summary string %q missing fork counters", s.String())
	}
}

func TestRunTreeLeafOrderIsDFS(t *testing.T) {
	var c atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode("p", counterPrefix(&c, 0),
			LeafNode("x", addLeaf(1)),
			PrefixNode("q", counterPrefix(&c, 10),
				LeafNode("y", addLeaf(2)),
			),
			LeafNode("z", addLeaf(3)),
		),
		LeafNode[int]("w", addLeaf(4)),
	}
	res, err := RunTree(context.Background(), roots, Options[int]{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, j := range res.Jobs {
		keys = append(keys, j.Key)
	}
	want := []string{"x", "y", "z", "w"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Errorf("leaf order = %v, want %v", keys, want)
	}
	if res.Jobs[1].Value != 12 { // y = root 0 + mid 10 + leaf 2
		t.Errorf("nested leaf = %d, want 12", res.Jobs[1].Value)
	}
}

func TestRunTreeMultiLevelRunsAncestorsOnce(t *testing.T) {
	var root, mid1, mid2 atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode("root", counterPrefix(&root, 1000),
			PrefixNode("mid1", counterPrefix(&mid1, 100),
				LeafNode("l0", addLeaf(0)),
				LeafNode("l1", addLeaf(1)),
			),
			PrefixNode("mid2", counterPrefix(&mid2, 200),
				LeafNode("l2", addLeaf(2)),
				LeafNode("l3", addLeaf(3)),
			),
		),
	}
	for _, par := range []int{1, 4} {
		root.Store(0)
		mid1.Store(0)
		mid2.Store(0)
		res, err := RunTree(context.Background(), roots, Options[int]{Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		got := res.ByKey()
		want := map[string]int{"l0": 1100, "l1": 1101, "l2": 1202, "l3": 1203}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("par %d: %s = %d, want %d", par, k, got[k], v)
			}
		}
		if root.Load() != 1 || mid1.Load() != 1 || mid2.Load() != 1 {
			t.Errorf("par %d: prefix runs root=%d mid1=%d mid2=%d, want 1 each",
				par, root.Load(), mid1.Load(), mid2.Load())
		}
		if res.Summary.ForkPrefixes != 3 || res.Summary.ForkReused != 2 {
			t.Errorf("par %d: fork counters = %d/%d, want 3/2",
				par, res.Summary.ForkPrefixes, res.Summary.ForkReused)
		}
		// RunTree must not mutate the tree: a second run with the same
		// nodes re-validates and re-executes from scratch.
	}
}

func TestRunTreePrefixErrorIsSticky(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode[int]("bad", func(context.Context, any) (any, error) {
			calls.Add(1)
			return nil, boom
		},
			LeafNode("b0", addLeaf(0)),
			LeafNode("b1", addLeaf(1)),
			LeafNode("b2", addLeaf(2)),
		),
		PrefixNode("good", counterPrefix(new(atomic.Int64), 7),
			LeafNode("g0", addLeaf(0)),
		),
	}
	res, err := RunTree(context.Background(), roots, Options[int]{Parallelism: 2, Policy: Collect, Retries: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if calls.Load() != 1 {
		t.Errorf("failing prefix ran %d times, want 1 (sticky across leaves and retries)", calls.Load())
	}
	for _, j := range res.Jobs[:3] {
		if !errors.Is(j.Err, boom) {
			t.Errorf("leaf %s err = %v, want boom", j.Key, j.Err)
		}
		if !strings.Contains(j.Err.Error(), `fork prefix "bad"`) {
			t.Errorf("leaf %s err %q not attributed to prefix", j.Key, j.Err)
		}
	}
	if g := res.Jobs[3]; g.Err != nil || g.Value != 7 {
		t.Errorf("good subtree = %+v, want value 7", g)
	}
}

func TestRunTreeNestedPrefixErrorPropagates(t *testing.T) {
	boom := errors.New("root boom")
	roots := []*ForkNode[int]{
		PrefixNode[int]("root", func(context.Context, any) (any, error) { return nil, boom },
			PrefixNode[int]("mid", func(_ context.Context, parent any) (any, error) {
				t.Error("child prefix ran despite parent failure")
				return parent, nil
			},
				LeafNode("leaf", addLeaf(0)),
			),
		),
	}
	res, err := RunTree(context.Background(), roots, Options[int]{Policy: Collect})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !errors.Is(res.Jobs[0].Err, boom) {
		t.Errorf("leaf err = %v", res.Jobs[0].Err)
	}
	if res.Summary.ForkPrefixes != 1 {
		t.Errorf("ForkPrefixes = %d, want 1 (root ran and failed; mid never ran)", res.Summary.ForkPrefixes)
	}
}

func TestRunTreeValidation(t *testing.T) {
	shared := LeafNode[int]("shared", addLeaf(0))
	cases := []struct {
		name string
		tree []*ForkNode[int]
		want string
	}{
		{"nil node", []*ForkNode[int]{nil}, "nil fork node"},
		{"neither", []*ForkNode[int]{{Key: "empty"}}, "neither Prefix nor Leaf"},
		{"both", []*ForkNode[int]{{
			Key:    "both",
			Prefix: func(context.Context, any) (any, error) { return nil, nil },
			Leaf:   addLeaf(0),
		}}, "both Prefix and Leaf"},
		{"leaf with children", []*ForkNode[int]{{
			Key:      "leafkids",
			Leaf:     addLeaf(0),
			Children: []*ForkNode[int]{LeafNode[int]("c", addLeaf(0))},
		}}, "has children"},
		{"childless prefix", []*ForkNode[int]{
			PrefixNode[int]("lonely", func(context.Context, any) (any, error) { return nil, nil }),
		}, "no children"},
		{"shared node", []*ForkNode[int]{
			PrefixNode("p", counterPrefix(new(atomic.Int64), 0), shared, shared),
		}, "reachable twice"},
	}
	for _, tc := range cases {
		res, err := RunTree(context.Background(), tc.tree, Options[int]{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
		if res != nil {
			t.Errorf("%s: result = %+v, want nil", tc.name, res)
		}
	}
}

func TestRunTreeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var after atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode[int]("p", func(ctx context.Context, _ any) (any, error) {
			close(started)
			<-ctx.Done() // a prefix stuck until the sweep is cancelled
			return nil, ctx.Err()
		},
			LeafNode[int]("l0", func(context.Context, any) (int, error) {
				after.Add(1)
				return 0, nil
			}),
			LeafNode[int]("l1", func(context.Context, any) (int, error) {
				after.Add(1)
				return 0, nil
			}),
		),
	}
	go func() {
		<-started
		cancel()
	}()
	res, err := RunTree(ctx, roots, Options[int]{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if after.Load() != 0 {
		t.Errorf("%d leaves ran despite prefix cancellation", after.Load())
	}
	for _, j := range res.Jobs {
		if j.Err == nil {
			t.Errorf("leaf %s has nil error after cancellation", j.Key)
		}
	}
}

func TestRunTreeReleasesStates(t *testing.T) {
	// Leaves observe their prefix value through a pointer; once every
	// leaf under a node has finished, the engine must drop its own
	// reference so the tree's memory scales with the frontier. We can't
	// observe the GC directly, so assert the bookkeeping: pending hits
	// zero and val is nil for every entry after the run.
	var c atomic.Int64
	roots := []*ForkNode[int]{
		PrefixNode("root", counterPrefix(&c, 1),
			PrefixNode("mid", counterPrefix(&c, 2),
				LeafNode("l0", addLeaf(0)),
				LeafNode("l1", addLeaf(1)),
			),
			LeafNode("l2", addLeaf(2)),
		),
	}
	ts := &treeState[int]{info: make(map[*ForkNode[int]]*nodeEntry[int])}
	// Re-run the internal pieces RunTree composes, so the test sees the
	// entries: build jobs via the same walk by calling RunTree on a
	// parallel structure is not possible without exporting internals, so
	// drive resolve/release by hand in DFS leaf order.
	root, mid := roots[0], roots[0].Children[0]
	ts.info[root] = &nodeEntry[int]{parent: nil, done: make(chan struct{}), pending: 3}
	ts.info[mid] = &nodeEntry[int]{parent: root, done: make(chan struct{}), pending: 2}
	ctx := context.Background()
	if _, _, err := ts.resolve(ctx, mid); err != nil {
		t.Fatal(err)
	}
	if ts.info[mid].val != 3 { // 1 + 2
		t.Fatalf("mid val = %v", ts.info[mid].val)
	}
	ts.release(mid)
	ts.release(mid)
	if ts.info[mid].val != nil || ts.info[mid].pending != 0 {
		t.Errorf("mid not released: val=%v pending=%d", ts.info[mid].val, ts.info[mid].pending)
	}
	if ts.info[root].val != 1 || ts.info[root].pending != 1 {
		t.Errorf("root released early: val=%v pending=%d", ts.info[root].val, ts.info[root].pending)
	}
	ts.release(root)
	if ts.info[root].val != nil || ts.info[root].pending != 0 {
		t.Errorf("root not released: val=%v pending=%d", ts.info[root].val, ts.info[root].pending)
	}
}

func TestRunTreeConcurrentStress(t *testing.T) {
	// Wide two-level tree under high parallelism: exercised by the race
	// detector in CI. Values must still be deterministic.
	var roots []*ForkNode[int]
	for g := 0; g < 8; g++ {
		g := g
		var leaves []*ForkNode[int]
		for l := 0; l < 8; l++ {
			leaves = append(leaves, LeafNode(fmt.Sprintf("g%dl%d", g, l), addLeaf(l)))
		}
		roots = append(roots, PrefixNode(fmt.Sprintf("g%d", g), counterPrefix(new(atomic.Int64), g*100), leaves...))
	}
	res, err := RunTree(context.Background(), roots, Options[int]{Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		for l := 0; l < 8; l++ {
			key := fmt.Sprintf("g%dl%d", g, l)
			if v := res.ByKey()[key]; v != g*100+l {
				t.Errorf("%s = %d, want %d", key, v, g*100+l)
			}
		}
	}
	if res.Summary.ForkPrefixes != 8 || res.Summary.ForkReused != 56 {
		t.Errorf("fork counters = %d/%d, want 8/56", res.Summary.ForkPrefixes, res.Summary.ForkReused)
	}
}
