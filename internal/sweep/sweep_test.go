package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func nJobs(n int, run func(i int) (int, error)) []Job[int] {
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{
			Key: fmt.Sprintf("job%03d", i),
			Run: func(context.Context) (int, error) { return run(i) },
		}
	}
	return jobs
}

func TestRunAllSucceed(t *testing.T) {
	jobs := nJobs(20, func(i int) (int, error) { return i * i, nil })
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 20 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for i, j := range res.Jobs {
		if j.Index != i || j.Value != i*i || j.Err != nil || j.Skipped || j.Attempts != 1 {
			t.Errorf("job %d = %+v", i, j)
		}
	}
	m := res.ByKey()
	if m["job007"] != 49 {
		t.Errorf("ByKey[job007] = %d", m["job007"])
	}
	s := res.Summary
	if s.Jobs != 20 || s.Succeeded != 20 || s.Failed != 0 || s.Skipped != 0 || s.Parallelism != 4 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRunBoundsParallelism(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := nJobs(32, func(i int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(2 * time.Millisecond)
		cur.Add(-1)
		return i, nil
	})
	if _, err := Run(context.Background(), jobs, Options[int]{Parallelism: 3}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("observed parallelism %d > bound 3", p)
	}
}

func TestFailFastKeepsPartialResults(t *testing.T) {
	// Serial execution: job 5 fails, so jobs 0-4 complete, 5 fails, and
	// 6+ are never started.
	boom := errors.New("boom")
	jobs := nJobs(20, func(i int) (int, error) {
		if i == 5 {
			return 0, boom
		}
		return i, nil
	})
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 1})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	for i := 0; i < 5; i++ {
		if res.Jobs[i].Err != nil || res.Jobs[i].Value != i {
			t.Errorf("completed job %d lost: %+v", i, res.Jobs[i])
		}
	}
	if res.Jobs[5].Err == nil || res.Jobs[5].Skipped {
		t.Errorf("failing job = %+v", res.Jobs[5])
	}
	skipped := 0
	for _, j := range res.Jobs[6:] {
		if j.Skipped {
			skipped++
			if !errors.Is(j.Err, context.Canceled) {
				t.Errorf("skipped job err = %v", j.Err)
			}
		}
	}
	if skipped == 0 {
		t.Error("no jobs were skipped after the failure")
	}
	if res.Summary.Failed != 1 || res.Summary.Succeeded != 5 || res.Summary.Skipped != 14 {
		t.Errorf("summary = %+v", res.Summary)
	}
}

func TestCollectRunsEverything(t *testing.T) {
	boom := errors.New("boom")
	jobs := nJobs(10, func(i int) (int, error) {
		if i%3 == 0 {
			return 0, boom
		}
		return i, nil
	})
	res, err := Run(context.Background(), jobs, Options[int]{Parallelism: 2, Policy: Collect})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if res.Summary.Skipped != 0 || res.Summary.Failed != 4 || res.Summary.Succeeded != 6 {
		t.Errorf("summary = %+v", res.Summary)
	}
	if len(res.ByKey()) != 6 {
		t.Errorf("ByKey = %v", res.ByKey())
	}
}

func TestRetries(t *testing.T) {
	var tries atomic.Int64
	jobs := []Job[int]{{
		Key: "flaky",
		Run: func(context.Context) (int, error) {
			if tries.Add(1) < 3 {
				return 0, errors.New("transient")
			}
			return 42, nil
		},
	}}
	res, err := Run(context.Background(), jobs, Options[int]{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Value != 42 || res.Jobs[0].Attempts != 3 {
		t.Errorf("job = %+v", res.Jobs[0])
	}
	if res.Summary.Retries != 2 {
		t.Errorf("summary retries = %d", res.Summary.Retries)
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	jobs := nJobs(50, func(i int) (int, error) {
		once.Do(func() { close(started) })
		time.Sleep(time.Millisecond)
		return i, nil
	})
	go func() {
		<-started
		cancel()
	}()
	res, err := Run(ctx, jobs, Options[int]{Parallelism: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if res.Summary.Skipped == 0 {
		t.Error("cancellation should skip pending jobs")
	}
	if res.Summary.Succeeded+res.Summary.Failed+res.Summary.Skipped != 50 {
		t.Errorf("summary does not account for all jobs: %+v", res.Summary)
	}
}

func TestOnDoneAndMetrics(t *testing.T) {
	var calls atomic.Int64
	jobs := nJobs(8, func(i int) (int, error) { return i + 1, nil })
	res, err := Run(context.Background(), jobs, Options[int]{
		Parallelism: 4,
		OnDone:      func(JobResult[int]) { calls.Add(1) },
		Metrics: func(r JobResult[int]) map[string]float64 {
			return map[string]float64{"value": float64(r.Value)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Errorf("OnDone calls = %d", calls.Load())
	}
	agg := res.Summary.Metrics["value"]
	if agg.Count != 8 || agg.Sum != 36 || agg.Min != 1 || agg.Max != 8 || agg.Mean() != 4.5 {
		t.Errorf("agg = %+v", agg)
	}
	if got := res.Summary.MetricNames(); len(got) != 1 || got[0] != "value" {
		t.Errorf("metric names = %v", got)
	}
}

// TestDeterminismAcrossParallelism locks in the engine's core
// guarantee: deterministic jobs produce identical Results (values,
// ordering, keys, metrics) at any worker count.
func TestDeterminismAcrossParallelism(t *testing.T) {
	mk := func() []Job[int64] {
		jobs := make([]Job[int64], 64)
		for i := range jobs {
			key := fmt.Sprintf("cfg-%d", i)
			jobs[i] = Job[int64]{
				Key: key,
				Run: func(context.Context) (int64, error) {
					return DeriveSeed(99, key), nil
				},
			}
		}
		return jobs
	}
	strip := func(r *Result[int64]) ([]JobResult[int64], map[string]Agg) {
		jobs := make([]JobResult[int64], len(r.Jobs))
		for i, j := range r.Jobs {
			j.Elapsed = 0
			jobs[i] = j
		}
		return jobs, r.Summary.Metrics
	}
	metrics := func(r JobResult[int64]) map[string]float64 {
		return map[string]float64{"seed_low": float64(uint16(r.Value))}
	}
	r1, err1 := Run(context.Background(), mk(), Options[int64]{Parallelism: 1, Metrics: metrics})
	r8, err8 := Run(context.Background(), mk(), Options[int64]{Parallelism: 8, Metrics: metrics})
	if err1 != nil || err8 != nil {
		t.Fatal(err1, err8)
	}
	j1, m1 := strip(r1)
	j8, m8 := strip(r8)
	if !reflect.DeepEqual(j1, j8) {
		t.Error("job results differ across parallelism")
	}
	if !reflect.DeepEqual(m1, m8) {
		t.Error("aggregated metrics differ across parallelism")
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Error("distinct keys should give distinct seeds")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Error("distinct bases should give distinct seeds")
	}
	if DeriveSeed(7, "crafty") != DeriveSeed(7, "crafty") {
		t.Error("derivation must be stable")
	}
	// Base 0 is a legitimate base for derivation.
	if DeriveSeed(0, "a") == DeriveSeed(0, "b") {
		t.Error("base 0 must still separate keys")
	}
	seen := map[int64]string{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("job-%d", i)
		s := DeriveSeed(12345, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %s and %s", prev, k)
		}
		seen[s] = k
	}
}

func TestEmptySweep(t *testing.T) {
	res, err := Run(context.Background(), nil, Options[int]{})
	if err != nil || len(res.Jobs) != 0 || res.Summary.Jobs != 0 {
		t.Errorf("empty sweep: res=%+v err=%v", res, err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{
		Jobs: 4, Succeeded: 3, Failed: 1, Retries: 2, Parallelism: 2,
		WallTime: 2 * time.Second, JobTime: 4 * time.Second,
		Metrics: map[string]Agg{
			MetricSimCycles: {Count: 3, Sum: 6e6, Min: 1e6, Max: 3e6},
			MetricPeakTempK: {Count: 3, Sum: 1000, Min: 300, Max: 360},
		},
	}
	out := s.String()
	for _, want := range []string{"4 jobs", "3 ok", "1 failed", "2 retries", "3.0 Mcycles/s", "peak 360.0 K"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
	if s.Throughput(MetricSimCycles) != 3e6 {
		t.Errorf("throughput = %f", s.Throughput(MetricSimCycles))
	}
}

// TestOnProgress checks the progress stream: one event per executed
// job, strictly monotonic Completed reaching Total, and per-job
// metrics matching what the Summary later aggregates.
func TestOnProgress(t *testing.T) {
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) { return i * 10, nil }}
	}
	var events []Progress
	res, err := Run(context.Background(), jobs, Options[int]{
		Parallelism: 4,
		Metrics: func(r JobResult[int]) map[string]float64 {
			return map[string]float64{"value": float64(r.Value)}
		},
		OnProgress: func(p Progress) { events = append(events, p) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(jobs) {
		t.Fatalf("got %d progress events, want %d", len(events), len(jobs))
	}
	var sum float64
	for i, p := range events {
		if p.Completed != i+1 {
			t.Errorf("event %d: Completed = %d, want %d (monotonic)", i, p.Completed, i+1)
		}
		if p.Total != len(jobs) {
			t.Errorf("event %d: Total = %d", i, p.Total)
		}
		if p.Err != nil || p.Metrics == nil {
			t.Errorf("event %d: err=%v metrics=%v", i, p.Err, p.Metrics)
		}
		sum += p.Metrics["value"]
	}
	if agg := res.Summary.Metrics["value"]; agg.Sum != sum {
		t.Errorf("progress metrics sum %v != summary sum %v", sum, agg.Sum)
	}
}

// TestOnProgressCancelled: skipped jobs emit no events, so a cancelled
// sweep's progress stops short of Total but stays monotonic.
func TestOnProgressCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	jobs := make([]Job[int], 16)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) {
			if i == 0 {
				cancel()
			}
			return i, nil
		}}
	}
	var events []Progress
	res, _ := Run(ctx, jobs, Options[int]{
		Parallelism: 2,
		OnProgress:  func(p Progress) { events = append(events, p) },
	})
	if len(events) == 0 || len(events) >= len(jobs) {
		t.Fatalf("got %d events for a sweep cancelled early (want >0, <%d)", len(events), len(jobs))
	}
	for i, p := range events {
		if p.Completed != i+1 {
			t.Errorf("event %d: Completed = %d, want %d", i, p.Completed, i+1)
		}
	}
	if res.Summary.Skipped == 0 {
		t.Errorf("expected skipped jobs, summary = %+v", res.Summary)
	}
}

// TestOnProgressAndOnDoneInterlock: both hooks fire under one lock, so
// an OnDone observer and an OnProgress observer never interleave and
// see the same completion order.
func TestOnProgressAndOnDoneInterlock(t *testing.T) {
	jobs := make([]Job[int], 12)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: fmt.Sprintf("j%d", i), Run: func(context.Context) (int, error) { return i, nil }}
	}
	var doneOrder, progOrder []string
	_, err := Run(context.Background(), jobs, Options[int]{
		Parallelism: 6,
		OnDone:      func(r JobResult[int]) { doneOrder = append(doneOrder, r.Key) },
		OnProgress:  func(p Progress) { progOrder = append(progOrder, p.Key) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(doneOrder) != len(progOrder) {
		t.Fatalf("hook counts differ: %d vs %d", len(doneOrder), len(progOrder))
	}
	for i := range doneOrder {
		if doneOrder[i] != progOrder[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, doneOrder, progOrder)
		}
	}
}
