package sweep

// DeriveSeed deterministically derives a per-job seed from a base seed
// and the job's key. The derivation depends only on its inputs — never
// on worker count, scheduling order, or wall time — so a sweep that
// seeds its jobs through DeriveSeed is bit-for-bit reproducible at any
// Parallelism. Distinct keys give well-separated seeds even for a base
// seed of 0 (base 0 is a valid, meaningful base here, unlike
// experiment.Options.Seed where 0 selects the config default).
func DeriveSeed(base int64, key string) int64 {
	// FNV-1a over the key, then a splitmix64 finalization mixing in
	// the base, so nearby bases and similar keys decorrelate.
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	z := h + uint64(base)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
