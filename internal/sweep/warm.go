package sweep

import (
	"context"
	"sync"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// warmer deduplicates warm-state production within one sweep: the
// first job to ask for a key runs the Warm function; every later job
// sharing the key blocks until that run finishes and then reuses its
// value. Errors are sticky — if a warmup fails, every sharer of the
// key fails with the same error rather than re-running a warmup that
// is deterministic and would fail again.
type warmer struct {
	mu      sync.Mutex
	entries map[string]*warmEntry
	// runs counts warm functions actually executed; reused counts jobs
	// that waited for (or found) a finished entry instead.
	runs   int
	reused int
}

type warmEntry struct {
	done chan struct{}
	val  any
	err  error
	// span identifies the warmup-build span (zero when tracing is off)
	// so jobs that reuse the state can link to the build that made it.
	span tracing.SpanContext
}

func newWarmer() *warmer {
	return &warmer{entries: make(map[string]*warmEntry)}
}

// get returns the warm state for key, running warm exactly once per
// key across the sweep. reused reports whether this caller shared an
// entry it did not produce. count marks a job's first attempt — only
// those update the runs/reused totals, so retries neither double-count
// a reuse nor report a job reusing its own earlier warmup. Waiting is
// context-aware: a cancelled waiter returns the context error.
func (w *warmer) get(ctx context.Context, key string, warm func(context.Context) (any, error), count bool) (val any, reused bool, err error) {
	w.mu.Lock()
	if e, ok := w.entries[key]; ok {
		w.mu.Unlock()
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, false, context.Cause(ctx)
		}
		if count {
			w.mu.Lock()
			w.reused++
			w.mu.Unlock()
		}
		tracing.Active(ctx).Link(e.span, tracing.LinkWarmReuse)
		return e.val, true, e.err
	}
	e := &warmEntry{done: make(chan struct{})}
	w.entries[key] = e
	w.runs++
	w.mu.Unlock()

	wctx, sp := tracing.StartSpan(ctx, "sweep.warmup")
	sp.SetAttr("warm_key", shortKey(key))
	e.val, e.err = warm(wctx)
	sp.EndErr(e.err)
	e.span = sp.Context()
	close(e.done)
	return e.val, false, e.err
}

// shortKey truncates a sha256-hex sharing key for span attributes.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

// counts returns the executed / reused warmup totals so far.
func (w *warmer) counts() (runs, reused int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.runs, w.reused
}
