// Package sweep is the parallel execution substrate for the evaluation
// harness: every figure and table of the paper is a sweep of
// independent simulations, and this package runs such sweeps with
// bounded workers, context cancellation, a per-job error policy,
// per-job metrics aggregated into a Summary, deterministic seed
// derivation, and structured artifact export (ASCII, JSON, CSV).
//
// The engine guarantees determinism of the *results*: job outcomes are
// stored at their input index, so a sweep over deterministic jobs
// produces identical Results regardless of Parallelism or goroutine
// scheduling. Only timing fields (Elapsed, Summary wall times) vary
// between runs.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"github.com/heatstroke-sim/heatstroke/internal/telemetry/tracing"
)

// ErrorPolicy selects how a sweep reacts to a failing job.
type ErrorPolicy int

const (
	// FailFast cancels the remaining jobs after the first failure.
	// Jobs already running are allowed to finish and their results are
	// kept; jobs not yet started are marked Skipped. Run returns the
	// first error in input order.
	FailFast ErrorPolicy = iota
	// Collect runs every job regardless of failures and returns the
	// joined error of all failures (nil if none).
	Collect
)

// Job is one independent unit of work. Run receives the sweep context
// and should return promptly once it is cancelled; long-running jobs
// that ignore the context still complete and have their result kept.
type Job[T any] struct {
	Key string
	Run func(ctx context.Context) (T, error)

	// WarmKey, when non-empty, opts the job into warmup-state sharing:
	// jobs with equal WarmKeys share one Warm result. The key must
	// capture everything the warm state depends on (configuration,
	// programs, warmup length, code version) — the engine trusts it.
	WarmKey string
	// Warm produces the shared warm state for WarmKey. It runs at most
	// once per distinct key per sweep (on the first job to need it);
	// a failure is sticky and fails every job sharing the key.
	Warm func(ctx context.Context) (any, error)
	// RunWarm runs the job starting from the shared warm state. It must
	// treat warm as read-only — many jobs receive the same value,
	// possibly concurrently. When WarmKey is set, RunWarm is called
	// instead of Run; both Warm and RunWarm must then be non-nil.
	RunWarm func(ctx context.Context, warm any) (T, error)
}

// JobResult is the outcome of one job.
type JobResult[T any] struct {
	Key   string
	Index int
	Value T
	Err   error
	// Skipped marks a job that was never started because the sweep was
	// cancelled first (its Err is the cancellation cause).
	Skipped bool
	// Elapsed is the job's wall time across all attempts.
	Elapsed time.Duration
	// Attempts counts executions (1 + retries actually used).
	Attempts int
	// WarmKey echoes the job's warmup-sharing key.
	WarmKey string
	// WarmReused is true when the job started from a warm state
	// produced by another job in the sweep instead of running its own
	// warmup (decided on the job's first attempt).
	WarmReused bool
}

// Options tune a sweep.
type Options[T any] struct {
	// Parallelism bounds concurrent jobs (<=0: GOMAXPROCS).
	Parallelism int
	// Policy is the error policy (default FailFast).
	Policy ErrorPolicy
	// Retries is the number of extra attempts after a failed run.
	Retries int
	// Metrics, when set, extracts named measurements from each
	// successful job; they are aggregated into Summary.Metrics in
	// input order (so the aggregation is deterministic).
	Metrics func(r JobResult[T]) map[string]float64
	// OnDone, when set, is called after each job finishes (serially,
	// in completion order) — for progress reporting.
	OnDone func(r JobResult[T])
	// OnProgress, when set, is called after each job finishes with a
	// snapshot of the sweep so far (serially, in completion order; the
	// same lock as OnDone, so the two never interleave). Completed is
	// monotonically non-decreasing across calls. The snapshot carries
	// the finished job's measurements as extracted by Metrics, so a
	// live consumer (progress bar, SSE stream) sees the same numbers
	// the final Summary will aggregate.
	OnProgress func(p Progress)
}

// Progress is a point-in-time snapshot of a running sweep, delivered
// to Options.OnProgress after each job finishes. Skipped jobs never
// ran and produce no Progress event, so Completed reaches Total only
// when every job actually executed.
type Progress struct {
	// Completed counts jobs finished so far (succeeded or failed).
	Completed int
	// Total is the number of jobs in the sweep.
	Total int
	// Key and Err identify the job that just finished and its outcome.
	Key string
	Err error
	// Elapsed is the finished job's wall time across all attempts, so a
	// live consumer can feed latency metrics without re-timing.
	Elapsed time.Duration
	// Metrics are the finished job's measurements as extracted by
	// Options.Metrics (nil when unset or the job failed).
	Metrics map[string]float64
	// WarmKey and WarmReused mirror the finished job's warmup-sharing
	// outcome, so a live consumer can count cache effectiveness.
	WarmKey    string
	WarmReused bool
}

// Result is the outcome of a sweep: one JobResult per input job, in
// input order, plus the aggregated Summary.
type Result[T any] struct {
	Jobs    []JobResult[T]
	Summary Summary
}

// ByKey returns the successful job values keyed by Job.Key. Later
// duplicates of a key overwrite earlier ones.
func (r *Result[T]) ByKey() map[string]T {
	m := make(map[string]T, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Err == nil && !j.Skipped {
			m[j.Key] = j.Value
		}
	}
	return m
}

// FirstErr returns the first non-cancellation job error in input
// order, or the first cancellation error if that is all there is.
func (r *Result[T]) FirstErr() error {
	var cancelErr error
	for _, j := range r.Jobs {
		if j.Err == nil {
			continue
		}
		if j.Skipped || errors.Is(j.Err, context.Canceled) || errors.Is(j.Err, context.DeadlineExceeded) {
			if cancelErr == nil {
				cancelErr = j.Err
			}
			continue
		}
		return fmt.Errorf("sweep: job %s: %w", j.Key, j.Err)
	}
	return cancelErr
}

// Run executes the jobs with bounded parallelism. It always returns a
// non-nil Result holding whatever completed; the error is the
// policy's verdict (first failure for FailFast, joined failures for
// Collect, or the context's error if the caller cancelled).
func Run[T any](ctx context.Context, jobs []Job[T], o Options[T]) (*Result[T], error) {
	par := o.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(jobs) {
		par = len(jobs)
	}
	if par < 1 {
		par = 1
	}

	start := time.Now()
	res := &Result[T]{Jobs: make([]JobResult[T], len(jobs))}
	for i, j := range jobs {
		res.Jobs[i] = JobResult[T]{Key: j.Key, Index: i, Skipped: true}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The feeder hands out input indices; it stops at cancellation so
	// unstarted jobs stay Skipped instead of burning a worker slot.
	next := make(chan int)
	go func() {
		defer close(next)
		for i := range jobs {
			select {
			case next <- i:
			case <-runCtx.Done():
				return
			}
		}
	}()

	warm := newWarmer()
	var doneMu sync.Mutex
	completed := 0
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				jr := runOne(runCtx, jobs[i], i, o.Retries, warm)
				res.Jobs[i] = jr
				if jr.Err != nil && o.Policy == FailFast {
					cancel()
				}
				if o.OnDone != nil || o.OnProgress != nil {
					doneMu.Lock()
					if o.OnDone != nil {
						o.OnDone(jr)
					}
					if o.OnProgress != nil && !jr.Skipped {
						completed++
						p := Progress{Completed: completed, Total: len(jobs), Key: jr.Key, Err: jr.Err, Elapsed: jr.Elapsed,
							WarmKey: jr.WarmKey, WarmReused: jr.WarmReused}
						if o.Metrics != nil && jr.Err == nil {
							p.Metrics = o.Metrics(jr)
						}
						o.OnProgress(p)
					}
					doneMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Attribute the cancellation cause to the jobs it prevented.
	if err := runCtx.Err(); err != nil {
		if cause := context.Cause(runCtx); cause != nil {
			err = cause
		}
		for i := range res.Jobs {
			if res.Jobs[i].Skipped && res.Jobs[i].Err == nil {
				res.Jobs[i].Err = err
			}
		}
	}

	res.Summary = summarize(res, par, time.Since(start), o.Metrics)
	res.Summary.WarmupRuns, res.Summary.WarmupReused = warm.counts()

	switch o.Policy {
	case Collect:
		var errs []error
		for _, j := range res.Jobs {
			if j.Err != nil && !j.Skipped {
				errs = append(errs, fmt.Errorf("sweep: job %s: %w", j.Key, j.Err))
			}
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			errs = append(errs, ctxErr)
		}
		return res, errors.Join(errs...)
	default:
		return res, res.FirstErr()
	}
}

// runOne executes a single job, honouring retries, cancellation, and
// warmup sharing.
func runOne[T any](ctx context.Context, j Job[T], idx, retries int, w *warmer) JobResult[T] {
	jr := JobResult[T]{Key: j.Key, Index: idx, WarmKey: j.WarmKey}
	if j.WarmKey != "" && (j.Warm == nil || j.RunWarm == nil) {
		jr.Err = fmt.Errorf("warm key %q set without Warm and RunWarm", j.WarmKey)
		return jr
	}
	start := time.Now()
	// prev carries the previous attempt's span so a retry links to the
	// attempt it replaces (zero when tracing is off or on attempt 1).
	var prev tracing.SpanContext
	for attempt := 0; attempt <= retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if jr.Attempts == 0 {
				jr.Skipped = true
			}
			jr.Err = err
			break
		}
		jr.Attempts++
		actx, sp := tracing.StartSpan(ctx, "sweep.job")
		sp.SetAttr("key", j.Key)
		sp.SetAttr("attempt", strconv.Itoa(jr.Attempts))
		if jr.Attempts > 1 {
			sp.Link(prev, tracing.LinkRetry)
		}
		var v T
		var err error
		if j.WarmKey != "" {
			var warm any
			var reused bool
			warm, reused, err = w.get(actx, j.WarmKey, j.Warm, jr.Attempts == 1)
			if jr.Attempts == 1 {
				// Retries reuse the state this very job produced; only
				// the first attempt says whether the warmup was shared.
				jr.WarmReused = reused
			}
			sp.SetAttr("warm_reused", strconv.FormatBool(reused))
			if err == nil {
				v, err = j.RunWarm(actx, warm)
			}
		} else {
			v, err = j.Run(actx)
		}
		sp.EndErr(err)
		prev = sp.Context()
		jr.Value, jr.Err = v, err
		if err == nil {
			break
		}
	}
	if !jr.Skipped {
		jr.Elapsed = time.Since(start)
	}
	return jr
}
