// Golden pins for the canonical attacker+victim sedation run: the
// NDJSON event timeline and the Perfetto trace must be byte-identical
// run to run (the simulator is deterministic and both exporters render
// deterministically). Lives in an external package because it drives
// the full simulator, which itself imports telemetry.
package telemetry_test

import (
	"bytes"
	"flag"

	"os"
	"path/filepath"
	"testing"

	"github.com/heatstroke-sim/heatstroke/internal/config"
	"github.com/heatstroke-sim/heatstroke/internal/dtm"
	"github.com/heatstroke-sim/heatstroke/internal/sim"
	"github.com/heatstroke-sim/heatstroke/internal/telemetry"
	"github.com/heatstroke-sim/heatstroke/internal/trace"
	"github.com/heatstroke-sim/heatstroke/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// canonicalRun is the attack pair of the paper's Figure 4 discussion:
// crafty as the victim, variant 2 as the attacker, selective sedation
// with the stop-and-go safety net.
func canonicalRun(t *testing.T) (*sim.Result, *trace.Recorder, config.Config, []string) {
	t.Helper()
	cfg := config.Default()
	cfg.Run.QuantumCycles = 4_000_000
	victim, err := workload.Spec("crafty", cfg.Run.Seed)
	if err != nil {
		t.Fatal(err)
	}
	attacker, err := workload.VariantForScale(2, cfg.Thermal.Scale)
	if err != nil {
		t.Fatal(err)
	}
	threads := []sim.Thread{{Name: "crafty", Prog: victim}, {Name: "variant2", Prog: attacker}}
	rec := &trace.Recorder{Stride: 4}
	s, err := sim.New(cfg, threads, sim.Options{
		Policy:        dtm.SelectiveSedation,
		WarmupCycles:  500_000,
		Recorder:      rec,
		CollectEvents: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("canonical run produced no events; goldens would be vacuous")
	}
	return res, rec, cfg, []string{"crafty", "variant2"}
}

func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d bytes vs %d); run with -update if intentional",
			name, len(got), len(want))
	}
}

func TestGoldenExports(t *testing.T) {
	res, rec, cfg, names := canonicalRun(t)

	var ndjson bytes.Buffer
	if err := telemetry.WriteNDJSON(&ndjson, res.Events); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "sedation_events.ndjson", ndjson.Bytes())

	var perfetto bytes.Buffer
	if err := telemetry.WritePerfetto(&perfetto, telemetry.TraceOptions{
		FrequencyHz: cfg.Power.FrequencyHz,
		ThreadNames: names,
		Events:      res.Events,
		Samples:     rec.Samples,
	}); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "sedation_trace.perfetto.json", perfetto.Bytes())
}

// TestGoldenEventsMatchTrace is the acceptance cross-check at golden
// scale: reconstructing each thread's sedated state from the event
// stream must agree with the recorder's sampled flags at every
// retained sensor boundary.
func TestGoldenEventsMatchTrace(t *testing.T) {
	res, rec, _, _ := canonicalRun(t)
	sedated := map[int]bool{}
	i := 0
	checked := 0
	for _, smp := range rec.Samples {
		for ; i < len(res.Events) && res.Events[i].Cycle <= smp.Cycle; i++ {
			switch res.Events[i].Kind {
			case telemetry.KindSedate:
				sedated[res.Events[i].Thread] = true
			case telemetry.KindResume:
				sedated[res.Events[i].Thread] = false
			}
		}
		for tid, want := range smp.ThreadSedated {
			if sedated[tid] != want {
				t.Fatalf("cycle %d thread %d: events say sedated=%v, trace says %v",
					smp.Cycle, tid, sedated[tid], want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no samples cross-checked")
	}
	var sawSedated bool
	for _, smp := range rec.Samples {
		for _, s := range smp.ThreadSedated {
			sawSedated = sawSedated || s
		}
	}
	if !sawSedated {
		t.Error("canonical run never sedated anyone; the cross-check is vacuous")
	}
}
